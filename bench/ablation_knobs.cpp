// Ablation of the design choices docs/ARCHITECTURE.md note D4 calls out
// (not in the paper):
//   * leader fast path on/off — the §4.1 optimization that skips the
//     prepare phase for the first claimant;
//   * combination on/off — CP with promotion only;
//   * promotion cap — 0 turns CP into basic-plus-combination; the paper
//     effectively uses an unlimited cap.
#include "experiment_common.h"

using namespace paxoscp;

int main(int argc, char** argv) {
  bench::PerfReporter perf(&argc, argv, "ablation_knobs");
  workload::PrintExperimentHeader(
      "Ablation - leader fast path / combination / promotion cap "
      "(VVV, 100 attrs, 500 txns)",
      "repo-specific ablation; not a paper figure");

  std::vector<std::vector<std::string>> rows;
  auto run = [&rows, &perf](const std::string& label,
                            txn::ClientOptions options) {
    workload::RunnerConfig config =
        bench::PaperWorkload(options.protocol);
    config.client = options;
    workload::RunStats stats =
        perf.Run(label, bench::PaperCluster("VVV"), config);
    rows.push_back(bench::ResultRow(label, options.protocol, stats));
  };

  txn::ClientOptions base;
  base.protocol = txn::Protocol::kPaxosCP;

  run("cp/default", base);

  txn::ClientOptions no_leader = base;
  no_leader.leader_optimization = false;
  run("cp/no-leader-opt", no_leader);

  txn::ClientOptions no_combine = base;
  no_combine.combine.enabled = false;
  run("cp/no-combination", no_combine);

  for (int cap : {0, 1, 2, 7}) {
    txn::ClientOptions capped = base;
    capped.promotion_cap = cap;
    run("cp/promotion-cap=" + std::to_string(cap), capped);
  }

  txn::ClientOptions basic;
  basic.protocol = txn::Protocol::kBasicPaxos;
  run("basic/default", basic);

  txn::ClientOptions basic_no_leader = basic;
  basic_no_leader.leader_optimization = false;
  run("basic/no-leader-opt", basic_no_leader);

  workload::PrintTable(bench::ResultHeaders("configuration"), rows);
  return 0;
}
