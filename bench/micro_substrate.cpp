// Microbenchmarks of the substrates (google-benchmark): the multi-version
// store's three atomic operations plus the COW merge/read paths, the
// log-entry codec and streamed fingerprint, the conflict / combination
// machinery, the simulator's event throughput and cancel-heavy churn, and a
// full end-to-end commit (virtual-time protocol run, measured in wall time).
//
// Pass `--json <path>` to also write a perf-trajectory snapshot
// (name → ns/op, items/s); the schema is documented in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "common/random.h"
#include "core/cluster.h"
#include "experiment_common.h"
#include "kvstore/store.h"
#include "paxos/ballot.h"
#include "paxos/value_selection.h"
#include "sim/coro.h"
#include "txn/txn.h"
#include "wal/log_entry.h"
#include "workload/generator.h"

namespace paxoscp {
namespace {

using AttrMap = kvstore::AttributeMap;

// ---------------------------------------------------------------- kvstore

void BM_StoreWrite(benchmark::State& state) {
  kvstore::MultiVersionStore store;
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.Write("row" + std::to_string(i % 64), {{"a", "value"}}));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreWrite);

/// 16-attribute rows: the snapshot-read cost that matters is handing the
/// version's attribute map to the caller (deep copy before D5, shared
/// pointer after), so the row must have realistic width.
void BM_StoreReadSnapshot(benchmark::State& state) {
  kvstore::MultiVersionStore store;
  for (Timestamp ts = 1; ts <= state.range(0); ++ts) {
    AttrMap attrs;
    for (int a = 0; a < 16; ++a) {
      // += instead of `"a" + std::to_string(a)`: GCC 12 -O2 flags the
      // prepend-into-temporary form with a spurious -Wrestrict.
      std::string name = "a";
      name += std::to_string(a);
      std::string value = "value-";
      value += std::to_string(ts);
      attrs[name] = value;
    }
    (void)store.Write("row", std::move(attrs), ts);
  }
  Rng rng(1);
  for (auto _ : state) {
    const Timestamp ts = 1 + static_cast<Timestamp>(
                                 rng.Uniform(state.range(0)));
    benchmark::DoNotOptimize(store.Read("row", ts));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreReadSnapshot)->Arg(8)->Arg(128)->Arg(2048);

void BM_StoreReadAttrView(benchmark::State& state) {
  kvstore::MultiVersionStore store;
  AttrMap attrs;
  for (int a = 0; a < 16; ++a) attrs["a" + std::to_string(a)] = "sixteen-b-value";
  (void)store.Write("row", std::move(attrs));
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.ReadAttrView("row", "a7"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreReadAttrView);

void BM_StoreCheckAndWrite(benchmark::State& state) {
  kvstore::MultiVersionStore store;
  (void)store.Write("row", {{"counter", "0"}});
  int64_t value = 0;
  for (auto _ : state) {
    Status s = store.CheckAndWrite("row", "counter", std::to_string(value),
                                   {{"counter", std::to_string(value + 1)}});
    benchmark::DoNotOptimize(s);
    ++value;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreCheckAndWrite);

/// The log-applier hot path: overlay a handful of updates on a wide row.
void BM_StoreMergeWriteWide(benchmark::State& state) {
  kvstore::MultiVersionStore store;
  AttrMap base;
  for (int a = 0; a < state.range(0); ++a) {
    base["a" + std::to_string(a)] = "value-" + std::to_string(a);
  }
  (void)store.Write("row", std::move(base), 1);
  const AttrMap updates = {{"a1", "update-value-1"}, {"a2", "update-value-2"},
                           {"a3", "update-value-3"}, {"a4", "update-value-4"}};
  Timestamp ts = 1;
  for (auto _ : state) {
    ++ts;
    benchmark::DoNotOptimize(store.MergeWrite("row", updates, ts));
    // Periodic GC keeps memory bounded without dominating the loop.
    if ((ts & 1023) == 0) store.TruncateVersions("row", ts - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreMergeWriteWide)->Arg(64)->Arg(256);

// ------------------------------------------------------------- log codec

wal::LogEntry MakeEntry(int txns, int ops) {
  Rng rng(7);
  wal::LogEntry entry;
  entry.winner_dc = 1;
  for (int t = 0; t < txns; ++t) {
    wal::TxnRecord record;
    record.id = MakeTxnId(1, t + 1);
    record.origin_dc = 1;
    record.read_pos = 41;
    for (int i = 0; i < ops / 2; ++i) {
      record.reads.push_back(wal::ReadRecord{
          {"row", "a" + std::to_string(rng.Uniform(100))}, MakeTxnId(2, 9),
          40});
    }
    for (int i = 0; i < ops / 2; ++i) {
      record.writes.push_back(wal::WriteRecord{
          {"row", "a" + std::to_string(rng.Uniform(100))},
          "sixteen-byte-val"});
    }
    entry.txns.push_back(std::move(record));
  }
  return entry;
}

void BM_LogEntryEncode(benchmark::State& state) {
  const wal::LogEntry entry =
      MakeEntry(static_cast<int>(state.range(0)), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(entry.Encode());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(entry.Encode().size()));
}
BENCHMARK(BM_LogEntryEncode)->Arg(1)->Arg(4);

void BM_LogEntryDecode(benchmark::State& state) {
  const std::string encoded =
      MakeEntry(static_cast<int>(state.range(0)), 10).Encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal::LogEntry::Decode(encoded));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(encoded.size()));
}
BENCHMARK(BM_LogEntryDecode)->Arg(1)->Arg(4);

void BM_LogEntryFingerprint(benchmark::State& state) {
  const wal::LogEntry entry = MakeEntry(2, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(entry.Fingerprint());
  }
}
BENCHMARK(BM_LogEntryFingerprint);

void BM_BallotEncodeDecode(benchmark::State& state) {
  const paxos::Ballot b{42, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(paxos::Ballot::Decode(b.Encode()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BallotEncodeDecode);

// --------------------------------------------------- conflict/combination

void BM_PromotionConflictCheck(benchmark::State& state) {
  const wal::LogEntry winners = MakeEntry(3, 10);
  const wal::LogEntry own = MakeEntry(1, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(winners.WritesItemReadBy(own.txns.front()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PromotionConflictCheck);

void BM_CombineExhaustive(benchmark::State& state) {
  const wal::LogEntry own = MakeEntry(1, 10);
  std::vector<wal::TxnRecord> candidates;
  for (int i = 0; i < state.range(0); ++i) {
    wal::LogEntry e = MakeEntry(1, 10);
    e.txns[0].id = MakeTxnId(2, 100 + i);
    candidates.push_back(e.txns[0]);
  }
  paxos::CombinePolicy policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        paxos::CombineTransactions(own, candidates, policy));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CombineExhaustive)->Arg(2)->Arg(4);

void BM_CombineGreedy(benchmark::State& state) {
  const wal::LogEntry own = MakeEntry(1, 10);
  std::vector<wal::TxnRecord> candidates;
  for (int i = 0; i < 16; ++i) {  // above the exhaustive limit
    wal::LogEntry e = MakeEntry(1, 10);
    e.txns[0].id = MakeTxnId(2, 100 + i);
    candidates.push_back(e.txns[0]);
  }
  paxos::CombinePolicy policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        paxos::CombineTransactions(own, candidates, policy));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CombineGreedy);

// -------------------------------------------------------------- simulator

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int counter = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.ScheduleAt(i, [&counter] { ++counter; });
    }
    sim.Run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventThroughput);

/// The RPC-timeout pattern: most scheduled timers are cancelled before they
/// fire. 8 schedules, 7 cancels, 1 execution per iteration.
void BM_SimulatorScheduleCancelChurn(benchmark::State& state) {
  sim::Simulator sim;
  int counter = 0;
  for (auto _ : state) {
    sim::EventId ids[8];
    for (int i = 0; i < 8; ++i) {
      ids[i] = sim.ScheduleAfter(100 + i, [&counter] { ++counter; });
    }
    for (int i = 0; i < 7; ++i) sim.Cancel(ids[i]);
    sim.Step();  // drains the cancelled timers, runs the survivor
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_SimulatorScheduleCancelChurn);

// ----------------------------------------------------- end-to-end commit

sim::Task CommitOne(txn::Session* session, std::string value, bool* done) {
  txn::Txn txn = co_await session->Begin("g");
  if (!txn.active()) co_return;
  (void)co_await txn.Read("r", "a0");
  (void)txn.Write("r", "a1", value);
  (void)co_await txn.Commit();
  *done = true;
}

void BM_EndToEndCommit(benchmark::State& state) {
  // Wall-clock cost of simulating one full commit (protocol messages,
  // acceptor state machine, log apply) on a three-replica cluster.
  for (auto _ : state) {
    state.PauseTiming();
    core::ClusterConfig config = *core::ClusterConfig::FromCode("VVV");
    config.seed = 5;
    core::Cluster cluster(config);
    (void)cluster.LoadInitialRow("g", "r", {{"a0", "x"}, {"a1", "y"}});
    txn::Session session = cluster.CreateSession(0);
    bool done = false;
    state.ResumeTiming();

    CommitOne(&session, "value", &done);
    cluster.RunToCompletion();
    if (!done) state.SkipWithError("commit did not complete");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EndToEndCommit)->Unit(benchmark::kMicrosecond);

// ------------------------------------------------------- --json reporter

/// Console reporter that additionally accumulates every run into a
/// PerfJsonWriter snapshot.
class JsonSnapshotReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonSnapshotReporter(bench::PerfJsonWriter* writer)
      : writer_(writer) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const double iters = static_cast<double>(run.iterations);
      const double ns_per_op =
          iters > 0 ? run.real_accumulated_time * 1e9 / iters : 0;
      double items_per_s = 0;
      if (auto it = run.counters.find("items_per_second");
          it != run.counters.end()) {
        items_per_s = it->second;
      }
      writer_->Add(run.benchmark_name(), ns_per_op, items_per_s);
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  bench::PerfJsonWriter* writer_;
};

}  // namespace
}  // namespace paxoscp

int main(int argc, char** argv) {
  const std::string json_path = paxoscp::bench::TakeJsonPathArg(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (json_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    paxoscp::bench::PerfJsonWriter writer("micro_substrate");
    paxoscp::JsonSnapshotReporter reporter(&writer);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    if (!writer.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("perf snapshot written to %s\n", json_path.c_str());
  }
  benchmark::Shutdown();
  return 0;
}
