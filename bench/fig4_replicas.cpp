// Reproduces paper Figure 4: commit count (a) and commit latency (b) as
// the number of replica datacenters grows from 2 to 5, drawing nodes from
// the paper's deployment order (V, V, V, O, C).
//
// Paper result (shape): basic Paxos commits 284-292/500 regardless of
// replica count; Paxos-CP totals 434-445/500, also insensitive to replica
// count, with first-round commits below the basic total (promoted
// transactions win out over some first-round transactions). Latency grows
// mildly with replica count; each promotion round adds latency.
#include "experiment_common.h"

using namespace paxoscp;

int main(int argc, char** argv) {
  bench::PerfReporter perf(&argc, argv, "fig4_replicas");
  workload::PrintExperimentHeader(
      "Figure 4 - commits and latency vs number of replicas (500 txns)",
      "basic ~284-292/500 flat; CP ~434-445/500 flat; latency grows mildly "
      "with replicas; promotion rounds stack latency");

  std::vector<std::vector<std::string>> rows;
  for (const std::string code : {"VV", "VVV", "VVVO", "VVVOC"}) {
    for (txn::Protocol protocol :
         {txn::Protocol::kBasicPaxos, txn::Protocol::kPaxosCP}) {
      workload::RunnerConfig config = bench::PaperWorkload(protocol);
      workload::RunStats stats =
          perf.Run(code + "/" + txn::ProtocolName(protocol),
                   bench::PaperCluster(code), config);
      rows.push_back(bench::ResultRow(
          std::to_string(code.size()) + " (" + code + ")", protocol, stats));
    }
  }
  workload::PrintTable(bench::ResultHeaders("replicas"), rows);

  std::printf(
      "\nLatency by promotion round (Paxos-CP, committed txns, mean ms):\n");
  std::vector<std::vector<std::string>> latency_rows;
  for (const std::string code : {"VV", "VVV", "VVVO", "VVVOC"}) {
    workload::RunnerConfig config =
        bench::PaperWorkload(txn::Protocol::kPaxosCP);
    workload::RunStats stats =
        perf.Run(code + "/cp-latency", bench::PaperCluster(code), config);
    latency_rows.push_back(
        {code, workload::LatencyByRound(stats, 6),
         workload::CommitsByRound(stats)});
  }
  workload::PrintTable({"cluster", "latency r0/r1/r2/...", "commits by round"},
                       latency_rows);
  return 0;
}
