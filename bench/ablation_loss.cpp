// Ablation: sensitivity to message loss (the paper's UDP transport with
// 2-second loss-detection timeouts, §6). Loss stretches tail latency (a
// lost prepare/accept stalls that round until the timeout) but must never
// break serializability; the invariant checker runs on every cell.
#include "experiment_common.h"

using namespace paxoscp;

int main(int argc, char** argv) {
  bench::PerfReporter perf(&argc, argv, "ablation_loss");
  workload::PrintExperimentHeader(
      "Ablation - message loss rate (VVV, 100 attrs, 500 txns)",
      "repo-specific ablation; loss adds timeout stalls, never "
      "inconsistency");

  std::vector<std::vector<std::string>> rows;
  for (double loss : {0.0, 0.01, 0.05, 0.10}) {
    for (txn::Protocol protocol :
         {txn::Protocol::kBasicPaxos, txn::Protocol::kPaxosCP}) {
      workload::RunnerConfig config = bench::PaperWorkload(protocol);
      core::ClusterConfig cluster = bench::PaperCluster("VVV");
      cluster.loss_probability = loss;
      workload::RunStats stats = perf.Run(
          workload::FormatDouble(loss * 100, 0) + "pct/" +
              txn::ProtocolName(protocol),
          cluster, config);
      rows.push_back(bench::ResultRow(
          workload::FormatDouble(loss * 100, 0) + "% loss", protocol, stats));
    }
  }
  workload::PrintTable(bench::ResultHeaders("loss rate"), rows);
  return 0;
}
