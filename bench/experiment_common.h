// Shared harness for the figure-reproduction benches: the paper's standard
// workload (§6) — 500 transactions, 10 ops each, 50/50 read-write over a
// single row, 4 concurrent staggered threads at 1 txn/s each — plus row
// formatting used by every fig*/table* binary and the `--json <path>`
// perf-snapshot reporter (schema documented in EXPERIMENTS.md).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "workload/generator.h"
#include "workload/report.h"
#include "workload/runner.h"

namespace paxoscp::bench {

// ------------------------------------------------------- perf snapshots

/// Accumulates name → (ns/op, items/s) entries and writes the repo's
/// perf-trajectory JSON snapshot ("paxoscp-perf-v1"; see EXPERIMENTS.md).
class PerfJsonWriter {
 public:
  explicit PerfJsonWriter(std::string binary) : binary_(std::move(binary)) {}

  void Add(const std::string& name, double ns_per_op, double items_per_s) {
    entries_.push_back(Entry{name, ns_per_op, items_per_s});
  }

  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"schema\": \"paxoscp-perf-v1\",\n");
    std::fprintf(f, "  \"binary\": \"%s\",\n", Escaped(binary_).c_str());
    std::fprintf(f, "  \"benchmarks\": {\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f,
                   "    \"%s\": {\"ns_per_op\": %.2f, \"items_per_s\": %.2f}%s\n",
                   Escaped(e.name).c_str(), e.ns_per_op, e.items_per_s,
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Entry {
    std::string name;
    double ns_per_op;
    double items_per_s;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;  // drop controls
      out.push_back(c);
    }
    return out;
  }

  std::string binary_;
  std::vector<Entry> entries_;
};

/// Extracts `--json <path>` (or `--json=<path>`) from argv, removing the
/// consumed arguments so later flag parsers never see them. Returns "" when
/// the flag is absent.
inline std::string TakeJsonPathArg(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
      path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

/// Wall-clock wrapper around workload::RunExperiment for the fig benches:
/// each labelled run is recorded as "<label>" → ns per attempted txn and
/// attempted txns per wall-second. On destruction the snapshot is written
/// to the `--json` path (no-op when the flag was absent).
class PerfReporter {
 public:
  PerfReporter(int* argc, char** argv, std::string binary)
      : json_path_(TakeJsonPathArg(argc, argv)),
        writer_(std::move(binary)) {}

  ~PerfReporter() {
    if (json_path_.empty()) return;
    if (writer_.WriteTo(json_path_)) {
      std::printf("perf snapshot written to %s\n", json_path_.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path_.c_str());
    }
  }

  workload::RunStats Run(const std::string& label,
                         const core::ClusterConfig& cluster,
                         const workload::RunnerConfig& config) {
    core::Cluster built(cluster);
    return Run(label, &built, config);
  }

  /// Variant for experiments that prepare the cluster first (e.g. arm a
  /// fault plan with Cluster::ApplyFaultPlan before the workload starts).
  workload::RunStats Run(const std::string& label, core::Cluster* cluster,
                         const workload::RunnerConfig& config) {
    const auto start = std::chrono::steady_clock::now();
    workload::RunStats stats = workload::RunExperiment(cluster, config);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double txns = stats.attempted > 0 ? stats.attempted : 1;
    writer_.Add(label, seconds * 1e9 / txns, txns / seconds);
    return stats;
  }

 private:
  std::string json_path_;
  PerfJsonWriter writer_;
};

/// The paper's standard experiment configuration.
inline workload::RunnerConfig PaperWorkload(txn::Protocol protocol,
                                            uint64_t seed = 7) {
  workload::RunnerConfig config;
  config.workload.num_attributes = 100;
  config.workload.ops_per_txn = 10;
  config.workload.read_fraction = 0.5;
  config.total_txns = 500;
  config.num_threads = 4;
  config.stagger = 250 * kMillisecond;
  config.target_rate_tps = 1.0;
  config.client.protocol = protocol;
  config.seed = seed;
  return config;
}

inline core::ClusterConfig PaperCluster(const std::string& code,
                                        uint64_t seed = 11) {
  core::ClusterConfig config = *core::ClusterConfig::FromCode(code);
  config.seed = seed;
  return config;
}

/// One row of a results table for a single run.
inline std::vector<std::string> ResultRow(const std::string& label,
                                          const txn::Protocol protocol,
                                          const workload::RunStats& stats) {
  return {
      label,
      txn::ProtocolName(protocol),
      std::to_string(stats.committed),
      std::to_string(stats.aborted),
      workload::CommitsByRound(stats),
      workload::FormatDouble(stats.MeanLatencyMs(0), 0) + " ms",
      workload::FormatDouble(stats.MeanLatencyMs(), 0) + " ms",
      std::to_string(stats.combined_entries),
      workload::FormatDouble(stats.messages_per_attempt, 1),
      stats.check.ok ? "OK" : "VIOLATED",
  };
}

inline std::vector<std::string> ResultHeaders(const std::string& first) {
  return {first,        "protocol", "commits", "aborts",
          "by-round",   "lat(r0)",  "lat(all)", "combined",
          "msgs/txn",   "serializability"};
}

}  // namespace paxoscp::bench
