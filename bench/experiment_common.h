// Shared harness for the figure-reproduction benches: the paper's standard
// workload (§6) — 500 transactions, 10 ops each, 50/50 read-write over a
// single row, 4 concurrent staggered threads at 1 txn/s each — plus row
// formatting used by every fig*/table* binary.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/config.h"
#include "workload/generator.h"
#include "workload/report.h"
#include "workload/runner.h"

namespace paxoscp::bench {

/// The paper's standard experiment configuration.
inline workload::RunnerConfig PaperWorkload(txn::Protocol protocol,
                                            uint64_t seed = 7) {
  workload::RunnerConfig config;
  config.workload.num_attributes = 100;
  config.workload.ops_per_txn = 10;
  config.workload.read_fraction = 0.5;
  config.total_txns = 500;
  config.num_threads = 4;
  config.stagger = 250 * kMillisecond;
  config.target_rate_tps = 1.0;
  config.client.protocol = protocol;
  config.seed = seed;
  return config;
}

inline core::ClusterConfig PaperCluster(const std::string& code,
                                        uint64_t seed = 11) {
  core::ClusterConfig config = *core::ClusterConfig::FromCode(code);
  config.seed = seed;
  return config;
}

/// One row of a results table for a single run.
inline std::vector<std::string> ResultRow(const std::string& label,
                                          const txn::Protocol protocol,
                                          const workload::RunStats& stats) {
  return {
      label,
      txn::ProtocolName(protocol),
      std::to_string(stats.committed),
      std::to_string(stats.aborted),
      workload::CommitsByRound(stats),
      workload::FormatDouble(stats.MeanLatencyMs(0), 0) + " ms",
      workload::FormatDouble(stats.MeanLatencyMs(), 0) + " ms",
      std::to_string(stats.combined_entries),
      workload::FormatDouble(stats.messages_per_attempt, 1),
      stats.check.ok ? "OK" : "VIOLATED",
  };
}

inline std::vector<std::string> ResultHeaders(const std::string& first) {
  return {first,        "protocol", "commits", "aborts",
          "by-round",   "lat(r0)",  "lat(all)", "combined",
          "msgs/txn",   "serializability"};
}

}  // namespace paxoscp::bench
