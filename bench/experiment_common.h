// Shared harness for the figure-reproduction benches: the paper's standard
// workload (§6) — 500 transactions, 10 ops each, 50/50 read-write over a
// single row, 4 concurrent staggered threads at 1 txn/s each — plus row
// formatting used by every fig*/table* binary, the `--json <path>`
// perf-snapshot reporter (schema documented in EXPERIMENTS.md), and the
// `--shuffle-seed <N>` tie-shuffle knob (design note D12 mode 2) that every
// PerfReporter-driven bench inherits for schedule-order invariance checks.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "workload/generator.h"
#include "workload/report.h"
#include "workload/runner.h"

namespace paxoscp::bench {

// ------------------------------------------------------- perf snapshots

/// Accumulates name → (ns/op, items/s) entries and writes the repo's
/// perf-trajectory JSON snapshot ("paxoscp-perf-v1"; see EXPERIMENTS.md).
/// When the entry came from a workload run, a nested "shape" object records
/// the run's deterministic outcome counters — everything about the result
/// EXCEPT wall-clock perf. scripts/shuffle_invariance.py strips the two
/// perf fields and byte-compares the rest across tie-shuffle seeds, so the
/// shape object is what makes "snapshots modulo perf" a meaningful claim.
/// scripts/perf_compare.py reads only ns_per_op and ignores extra keys.
class PerfJsonWriter {
 public:
  explicit PerfJsonWriter(std::string binary) : binary_(std::move(binary)) {}

  void Add(const std::string& name, double ns_per_op, double items_per_s) {
    entries_.push_back(Entry{name, ns_per_op, items_per_s, false, {}});
  }

  void Add(const std::string& name, double ns_per_op, double items_per_s,
           const workload::RunStats& stats) {
    entries_.push_back(Entry{name, ns_per_op, items_per_s, true, stats});
  }

  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"schema\": \"paxoscp-perf-v1\",\n");
    std::fprintf(f, "  \"binary\": \"%s\",\n", Escaped(binary_).c_str());
    std::fprintf(f, "  \"benchmarks\": {\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f, "    \"%s\": {\"ns_per_op\": %.2f, \"items_per_s\": %.2f",
                   Escaped(e.name).c_str(), e.ns_per_op, e.items_per_s);
      if (e.has_shape) {
        const workload::RunStats& s = e.stats;
        std::fprintf(
            f,
            ", \"shape\": {\"attempted\": %d, \"committed\": %d, "
            "\"read_only\": %d, \"aborted\": %d, \"failed\": %d, "
            "\"combined_entries\": %d, \"cross_attempted\": %d, "
            "\"cross_committed\": %d, \"cross_aborted\": %d, "
            "\"check_ok\": %s, \"all_threads_finished\": %s}",
            s.attempted, s.committed, s.read_only, s.aborted, s.failed,
            s.combined_entries, s.cross_attempted, s.cross_committed,
            s.cross_aborted, s.check.ok ? "true" : "false",
            s.all_threads_finished ? "true" : "false");
      }
      std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Entry {
    std::string name;
    double ns_per_op;
    double items_per_s;
    bool has_shape;
    workload::RunStats stats;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;  // drop controls
      out.push_back(c);
    }
    return out;
  }

  std::string binary_;
  std::vector<Entry> entries_;
};

/// Extracts `--json <path>` (or `--json=<path>`) from argv, removing the
/// consumed arguments so later flag parsers never see them. Returns "" when
/// the flag is absent.
inline std::string TakeJsonPathArg(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
      path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

/// Extracts `--shuffle-seed <N>` (or `--shuffle-seed=<N>`) from argv, same
/// contract as TakeJsonPathArg. Returns 0 (FIFO tie-break, the production
/// schedule) when the flag is absent.
inline uint64_t TakeShuffleSeedArg(int* argc, char** argv) {
  uint64_t seed = 0;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--shuffle-seed") == 0 && i + 1 < *argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--shuffle-seed=", 15) == 0) {
      seed = std::strtoull(argv[i] + 15, nullptr, 10);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return seed;
}

/// Wall-clock wrapper around workload::RunExperiment for the fig benches:
/// each labelled run is recorded as "<label>" → ns per attempted txn and
/// attempted txns per wall-second. On destruction the snapshot is written
/// to the `--json` path (no-op when the flag was absent).
class PerfReporter {
 public:
  PerfReporter(int* argc, char** argv, std::string binary)
      : json_path_(TakeJsonPathArg(argc, argv)),
        shuffle_seed_(TakeShuffleSeedArg(argc, argv)),
        writer_(std::move(binary)) {
    if (shuffle_seed_ != 0) {
      std::printf("tie-shuffle seed %llu (D12 mode 2)\n",
                  static_cast<unsigned long long>(shuffle_seed_));
    }
  }

  ~PerfReporter() {
    if (json_path_.empty()) return;
    if (writer_.WriteTo(json_path_)) {
      std::printf("perf snapshot written to %s\n", json_path_.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path_.c_str());
    }
  }

  workload::RunStats Run(const std::string& label,
                         const core::ClusterConfig& cluster,
                         const workload::RunnerConfig& config) {
    core::Cluster built(cluster);
    return Run(label, &built, config);
  }

  /// Variant for experiments that prepare the cluster first (e.g. arm a
  /// fault plan with Cluster::ApplyFaultPlan before the workload starts).
  workload::RunStats Run(const std::string& label, core::Cluster* cluster,
                         const workload::RunnerConfig& config) {
    // Applied per-run so every cell of a sweep replays under the same
    // permutation family; seed 0 is a no-op (FIFO).
    cluster->simulator()->SetTieShuffle(shuffle_seed_);
    const auto start = std::chrono::steady_clock::now();
    workload::RunStats stats = workload::RunExperiment(cluster, config);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double txns = stats.attempted > 0 ? stats.attempted : 1;
    writer_.Add(label, seconds * 1e9 / txns, txns / seconds, stats);
    return stats;
  }

 private:
  std::string json_path_;
  uint64_t shuffle_seed_;
  PerfJsonWriter writer_;
};

/// The paper's standard experiment configuration.
inline workload::RunnerConfig PaperWorkload(txn::Protocol protocol,
                                            uint64_t seed = 7) {
  workload::RunnerConfig config;
  config.workload.num_attributes = 100;
  config.workload.ops_per_txn = 10;
  config.workload.read_fraction = 0.5;
  config.total_txns = 500;
  config.num_threads = 4;
  config.stagger = 250 * kMillisecond;
  config.target_rate_tps = 1.0;
  config.client.protocol = protocol;
  config.seed = seed;
  return config;
}

inline core::ClusterConfig PaperCluster(const std::string& code,
                                        uint64_t seed = 11) {
  core::ClusterConfig config = *core::ClusterConfig::FromCode(code);
  config.seed = seed;
  return config;
}

/// One row of a results table for a single run.
inline std::vector<std::string> ResultRow(const std::string& label,
                                          const txn::Protocol protocol,
                                          const workload::RunStats& stats) {
  return {
      label,
      txn::ProtocolName(protocol),
      std::to_string(stats.committed),
      std::to_string(stats.aborted),
      workload::CommitsByRound(stats),
      workload::FormatDouble(stats.MeanLatencyMs(0), 0) + " ms",
      workload::FormatDouble(stats.MeanLatencyMs(), 0) + " ms",
      std::to_string(stats.combined_entries),
      workload::FormatDouble(stats.messages_per_attempt, 1),
      stats.check.ok ? "OK" : "VIOLATED",
  };
}

inline std::vector<std::string> ResultHeaders(const std::string& first) {
  return {first,        "protocol", "commits", "aborts",
          "by-round",   "lat(r0)",  "lat(all)", "combined",
          "msgs/txn",   "serializability"};
}

}  // namespace paxoscp::bench
