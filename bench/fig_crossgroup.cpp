// Cross-group transactions (design note D8): commit rate and latency as
// the fraction of transactions spanning entity groups sweeps 0 -> 100%,
// under the paper's service-time model on the three-Virginia-replica
// cluster. This is the experiment the paper could not run: it inherits
// Megastore's one-entity-group-per-transaction restriction, while our 2PC
// coordinator commits atomically across the per-group Paxos-CP logs.
//
// Expected shape (D9, parallel fan-out): single-group transactions are
// unaffected at 0%; cross commits reach their commit point (the canonical
// decide) in ~2 wide-area rounds — one parallel prepare fan-out plus the
// decide — REGARDLESS of participant count, where the sequential
// coordinator paid roughly (#groups+1) rounds. The commit rate dips
// slightly with the extra conflict surface (prepare conflicts in any leg,
// commit-order aborts) — but every cell stays one-copy serializable
// across the union of the groups' logs, which the extended checker
// verifies cell by cell.
//
// The second sweep holds the fraction at 50% and widens transactions from
// 2 to 4 participants; a hard gate fails the run (non-zero exit) if the
// commit-point latency grows materially with participant count, i.e. if
// the fan-out ever regresses to sequential legs.
//
//   ./build/bench/fig_crossgroup [--json <path>]
#include "core/checker.h"
#include "experiment_common.h"

using namespace paxoscp;

int main(int argc, char** argv) {
  bench::PerfReporter perf(&argc, argv, "fig_crossgroup");
  workload::PrintExperimentHeader(
      "Cross-group 2PC - commit rate and latency vs cross-group fraction "
      "(VVV, 3 groups, 240 txns)",
      "2PC over Paxos-CP lifts the paper's one-group-per-txn restriction "
      "(D8); serializability holds across groups at every fraction");

  const double fractions[] = {0.0, 0.1, 0.25, 0.5, 0.75, 1.0};
  std::vector<std::vector<std::string>> rows;
  bool all_ok = true;
  int total_cross_committed = 0;

  for (double fraction : fractions) {
    core::Cluster cluster(bench::PaperCluster("VVV"));
    workload::RunnerConfig config =
        bench::PaperWorkload(txn::Protocol::kPaxosCP);
    config.workload.num_groups = 3;
    config.workload.cross_fraction = fraction;
    config.workload.groups_per_cross_txn = 2;
    // Keep the per-group item count at the paper's contention level.
    config.workload.num_attributes = 60;
    config.total_txns = 240;

    char label[32];
    std::snprintf(label, sizeof(label), "cross/%d",
                  static_cast<int>(fraction * 100));
    workload::RunStats stats = perf.Run(label, &cluster, config);

    // Each cell must be serializable AND, at non-zero fractions, actually
    // commit cross-group transactions (a cell that silently aborts every
    // cross txn would render the figure meaningless while keeping the
    // checker green).
    const bool ok = stats.check.ok && stats.all_threads_finished &&
                    (fraction == 0.0 || stats.cross_committed > 0);
    all_ok = all_ok && ok;
    total_cross_committed += stats.cross_committed;
    const int single_committed = stats.committed - stats.cross_committed;
    rows.push_back(
        {std::to_string(static_cast<int>(fraction * 100)) + "%",
         std::to_string(stats.committed) + "/" +
             std::to_string(stats.attempted),
         workload::FormatDouble(100 * stats.CommitRate(), 0) + "%",
         std::to_string(stats.cross_committed) + "/" +
             std::to_string(stats.cross_attempted),
         workload::FormatDouble(100 * stats.CrossCommitRate(), 0) + "%",
         single_committed > 0
             ? workload::FormatDouble(
                   stats.latency_single_multi.Mean() / 1000.0, 0) + " ms"
             : "-",
         stats.cross_committed > 0
             ? workload::FormatDouble(stats.latency_cross.Mean() / 1000.0,
                                      0) + " ms"
             : "-",
         std::to_string(stats.cross_aborted),
         std::to_string(stats.cross_unknown),
         ok ? "OK" : "VIOLATED"});
  }

  workload::PrintTable({"cross", "commits", "rate", "x-commits", "x-rate",
                        "lat(1g)", "lat(xg)", "x-abort", "x-unknown",
                        "serializability"},
                       rows);

  // ---- Participant-count sweep: commit-point latency must stay flat.
  // With the parallel fan-out (D9) every prepare leg runs concurrently,
  // so the time to the canonical decide is ~2 wide-area rounds whether a
  // transaction spans 2 groups or 4. The sequential coordinator's
  // signature — decision latency growing by ~1 round per extra
  // participant — is the regression this gate pins out.
  workload::PrintExperimentHeader(
      "Cross-group 2PC - commit-point latency vs participant count "
      "(VVV, 4 groups, 50% cross, 160 txns)",
      "parallel prepare fan-out (D9): ~2 wide-area rounds to the decide, "
      "flat in participant count");

  std::vector<std::vector<std::string>> prows;
  std::vector<double> decision_means;  // by participants: 2, 3, 4
  for (int participants = 2; participants <= 4; ++participants) {
    core::Cluster cluster(bench::PaperCluster("VVV"));
    workload::RunnerConfig config =
        bench::PaperWorkload(txn::Protocol::kPaxosCP);
    config.workload.num_groups = 4;
    config.workload.cross_fraction = 0.5;
    config.workload.groups_per_cross_txn = participants;
    config.workload.num_attributes = 60;
    config.total_txns = 160;

    char label[32];
    std::snprintf(label, sizeof(label), "participants/%d", participants);
    workload::RunStats stats = perf.Run(label, &cluster, config);

    const bool ok = stats.check.ok && stats.all_threads_finished &&
                    stats.cross_committed > 0;
    all_ok = all_ok && ok;
    total_cross_committed += stats.cross_committed;
    decision_means.push_back(stats.latency_cross_decision.Mean());
    prows.push_back(
        {std::to_string(participants),
         std::to_string(stats.cross_committed) + "/" +
             std::to_string(stats.cross_attempted),
         workload::FormatDouble(100 * stats.CrossCommitRate(), 0) + "%",
         workload::FormatDouble(
             stats.latency_cross_decision.Mean() / 1000.0, 0) + " ms",
         workload::FormatDouble(stats.latency_cross.Mean() / 1000.0, 0) +
             " ms",
         ok ? "OK" : "VIOLATED"});
  }
  workload::PrintTable({"participants", "x-commits", "x-rate",
                        "lat(decide)", "lat(total)", "serializability"},
                       prows);

  // The gate: widening 2 -> 4 participants may not grow the commit-point
  // latency beyond 1.6x. Parallel fan-out measures ~1.3x (slowest-of-N
  // prepare legs plus 4-way conflict pressure — flat in rounds, mildly
  // super-flat in the tail); the sequential coordinator measures ~3x
  // (one full prepare walk per extra participant, compounded by the
  // longer conflict window). 1.6 sits between the shapes with wide
  // margin on both sides.
  const double flat_ratio =
      decision_means.front() > 0 ? decision_means.back() /
                                       decision_means.front()
                                 : 0.0;
  const bool flat = flat_ratio > 0 && flat_ratio <= 1.6;
  std::printf("\ncommit-point latency 4p/2p = %.2fx -> %s\n", flat_ratio,
              flat ? "flat in participant count (parallel fan-out, D9)"
                   : "REGRESSION: decision latency grows with participants "
                     "(sequential-leg shape)");

  // Shape gates: the checker must be green in every cell, the sweep must
  // actually commit cross-group transactions once the fraction is
  // non-zero (a sweep that silently aborts every cross txn would render
  // the figure meaningless), and the commit-point latency must stay flat
  // in participant count.
  std::printf("%d cross-group commits across the sweeps -> %s\n",
              total_cross_committed,
              all_ok && total_cross_committed > 0
                  ? "cross-group 2PC commits and stays serializable (D8)"
                  : "UNEXPECTED: cross-group shape not reproduced");
  return all_ok && flat && total_cross_committed > 0 ? 0 : 1;
}
