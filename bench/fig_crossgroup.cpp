// Cross-group transactions (design note D8): commit rate and latency as
// the fraction of transactions spanning entity groups sweeps 0 -> 100%,
// under the paper's service-time model on the three-Virginia-replica
// cluster. This is the experiment the paper could not run: it inherits
// Megastore's one-entity-group-per-transaction restriction, while our 2PC
// coordinator commits atomically across the per-group Paxos-CP logs.
//
// Expected shape: single-group transactions are unaffected at 0%; as the
// cross fraction grows, cross commits pay the sequential prepare legs plus
// the decide round (latency multiplier roughly #groups+1 over a
// single-group commit), and the commit rate dips slightly with the extra
// conflict surface (prepare conflicts in any leg, commit-order aborts) —
// but every cell stays one-copy serializable across the union of the
// groups' logs, which the extended checker verifies cell by cell.
//
//   ./build/bench/fig_crossgroup [--json <path>]
#include "core/checker.h"
#include "experiment_common.h"

using namespace paxoscp;

int main(int argc, char** argv) {
  bench::PerfReporter perf(&argc, argv, "fig_crossgroup");
  workload::PrintExperimentHeader(
      "Cross-group 2PC - commit rate and latency vs cross-group fraction "
      "(VVV, 3 groups, 240 txns)",
      "2PC over Paxos-CP lifts the paper's one-group-per-txn restriction "
      "(D8); serializability holds across groups at every fraction");

  const double fractions[] = {0.0, 0.1, 0.25, 0.5, 0.75, 1.0};
  std::vector<std::vector<std::string>> rows;
  bool all_ok = true;
  int total_cross_committed = 0;

  for (double fraction : fractions) {
    core::Cluster cluster(bench::PaperCluster("VVV"));
    workload::RunnerConfig config =
        bench::PaperWorkload(txn::Protocol::kPaxosCP);
    config.workload.num_groups = 3;
    config.workload.cross_fraction = fraction;
    config.workload.groups_per_cross_txn = 2;
    // Keep the per-group item count at the paper's contention level.
    config.workload.num_attributes = 60;
    config.total_txns = 240;

    char label[32];
    std::snprintf(label, sizeof(label), "cross/%d",
                  static_cast<int>(fraction * 100));
    workload::RunStats stats = perf.Run(label, &cluster, config);

    // Each cell must be serializable AND, at non-zero fractions, actually
    // commit cross-group transactions (a cell that silently aborts every
    // cross txn would render the figure meaningless while keeping the
    // checker green).
    const bool ok = stats.check.ok && stats.all_threads_finished &&
                    (fraction == 0.0 || stats.cross_committed > 0);
    all_ok = all_ok && ok;
    total_cross_committed += stats.cross_committed;
    const int single_committed = stats.committed - stats.cross_committed;
    rows.push_back(
        {std::to_string(static_cast<int>(fraction * 100)) + "%",
         std::to_string(stats.committed) + "/" +
             std::to_string(stats.attempted),
         workload::FormatDouble(100 * stats.CommitRate(), 0) + "%",
         std::to_string(stats.cross_committed) + "/" +
             std::to_string(stats.cross_attempted),
         workload::FormatDouble(100 * stats.CrossCommitRate(), 0) + "%",
         single_committed > 0
             ? workload::FormatDouble(
                   stats.latency_single_multi.Mean() / 1000.0, 0) + " ms"
             : "-",
         stats.cross_committed > 0
             ? workload::FormatDouble(stats.latency_cross.Mean() / 1000.0,
                                      0) + " ms"
             : "-",
         std::to_string(stats.cross_aborted),
         std::to_string(stats.cross_unknown),
         ok ? "OK" : "VIOLATED"});
  }

  workload::PrintTable({"cross", "commits", "rate", "x-commits", "x-rate",
                        "lat(1g)", "lat(xg)", "x-abort", "x-unknown",
                        "serializability"},
                       rows);

  // Shape gates: the checker must be green in every cell, and the sweep
  // must actually commit cross-group transactions once the fraction is
  // non-zero (a sweep that silently aborts every cross txn would render
  // the figure meaningless).
  std::printf("\n%d cross-group commits across the sweep -> %s\n",
              total_cross_committed,
              all_ok && total_cross_committed > 0
                  ? "cross-group 2PC commits and stays serializable (D8)"
                  : "UNEXPECTED: cross-group shape not reproduced");
  return all_ok && total_cross_committed > 0 ? 0 : 1;
}
