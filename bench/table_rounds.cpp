// Reproduces the §6 in-text statistics the paper reports alongside the
// figures:
//   * promotion-round distribution — "no transaction was able to execute
//     more than seven promotions before aborting due to a conflict. The
//     majority of transactions commit or abort within two promotions";
//   * combination counts — "At most, 24 combinations were performed per
//     experiment, and the average number of combinations was only 6.8";
//   * message complexity — Paxos-CP "requires the same per instance message
//     complexity as the basic Paxos protocol".
#include "experiment_common.h"

using namespace paxoscp;

int main(int argc, char** argv) {
  bench::PerfReporter perf(&argc, argv, "table_rounds");
  workload::PrintExperimentHeader(
      "Section 6 statistics - promotion rounds, combinations, messages",
      "majority of txns settle within 2 promotions, none beyond ~7; "
      "combinations rare; CP message cost per attempt ~= basic");

  // Aggregate over several seeds, as the paper averages repeated runs.
  constexpr int kRuns = 5;
  std::vector<int> round_histogram;
  int total_combined_entries = 0, total_combined_txns = 0;
  int max_promotions = 0;
  double basic_msgs = 0, cp_msgs = 0;

  for (int run = 0; run < kRuns; ++run) {
    workload::RunnerConfig basic =
        bench::PaperWorkload(txn::Protocol::kBasicPaxos, 100 + run);
    workload::RunStats basic_stats = perf.Run(
        "run" + std::to_string(run) + "/basic",
        bench::PaperCluster("VVV", 200 + run), basic);
    basic_msgs += basic_stats.messages_per_attempt;

    workload::RunnerConfig cp =
        bench::PaperWorkload(txn::Protocol::kPaxosCP, 100 + run);
    workload::RunStats stats = perf.Run(
        "run" + std::to_string(run) + "/cp",
        bench::PaperCluster("VVV", 200 + run), cp);
    cp_msgs += stats.messages_per_attempt;
    total_combined_entries += stats.combined_entries;
    total_combined_txns += stats.combined_txns;
    max_promotions = std::max(max_promotions, stats.max_promotions);
    if (stats.commits_by_round.size() > round_histogram.size()) {
      round_histogram.resize(stats.commits_by_round.size(), 0);
    }
    for (size_t r = 0; r < stats.commits_by_round.size(); ++r) {
      round_histogram[r] += stats.commits_by_round[r];
    }
  }

  std::printf("\nPaxos-CP commits by promotion round (%d runs x 500 txns):\n",
              kRuns);
  std::vector<std::vector<std::string>> rows;
  int cumulative = 0, total = 0;
  for (int c : round_histogram) total += c;
  for (size_t r = 0; r < round_histogram.size(); ++r) {
    cumulative += round_histogram[r];
    rows.push_back({"round " + std::to_string(r),
                    std::to_string(round_histogram[r]),
                    workload::FormatDouble(100.0 * cumulative / total, 1) +
                        "%"});
  }
  workload::PrintTable({"promotions", "commits", "cumulative"}, rows);

  std::printf("\nmax promotions observed before abort/commit: %d\n",
              max_promotions);
  std::printf("combined entries per run (avg): %.1f  (txns merged: %.1f)\n",
              double(total_combined_entries) / kRuns,
              double(total_combined_txns) / kRuns);
  std::printf("messages per transaction attempt: basic %.1f vs CP %.1f "
              "(+%.0f%%)\n",
              basic_msgs / kRuns, cp_msgs / kRuns,
              100.0 * (cp_msgs - basic_msgs) / basic_msgs);
  return 0;
}
