// Reproduces paper Figure 8: one YCSB instance per datacenter on a VOC
// cluster, all three updating the same 100-attribute entity group at a
// target rate of one transaction per second each (500 transactions per
// instance).
//
// Paper result (shape): Oregon and California are geographically closer
// (20 ms RTT), so their instances reach a quorum more easily and commit
// slightly more; for every datacenter Paxos-CP commits at least 200% of
// basic Paxos, at the cost of ~100% higher all-rounds latency (~50% for
// the first round).
#include "experiment_common.h"

using namespace paxoscp;

int main(int argc, char** argv) {
  bench::PerfReporter perf(&argc, argv, "fig8_multi_ycsb");
  workload::PrintExperimentHeader(
      "Figure 8 - per-datacenter YCSB instances (VOC, 500 txns each)",
      "O & C commit slightly more (closer quorum); CP >= 2x basic commits "
      "per DC; CP latency ~+100% all rounds, ~+50% first round");

  const char* kDcNames[] = {"V", "O", "C"};
  std::vector<std::vector<std::string>> rows;
  for (txn::Protocol protocol :
       {txn::Protocol::kBasicPaxos, txn::Protocol::kPaxosCP}) {
    workload::RunnerConfig config = bench::PaperWorkload(protocol);
    // One 500-txn instance per datacenter: 4 threads per DC, each thread at
    // 0.25 txn/s so each instance offers 1 txn/s aggregate.
    config.total_txns = 1500;
    config.num_threads = 12;
    config.target_rate_tps = 0.25;
    config.thread_dcs = {0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2};
    workload::RunStats stats =
        perf.Run(std::string("VOC/") + txn::ProtocolName(protocol),
                 bench::PaperCluster("VOC"), config);

    for (DcId dc = 0; dc < 3; ++dc) {
      const int attempted = stats.attempted_by_dc.count(dc)
                                ? stats.attempted_by_dc.at(dc)
                                : 0;
      const int committed = stats.committed_by_dc.count(dc)
                                ? stats.committed_by_dc.at(dc)
                                : 0;
      const double latency_ms =
          stats.latency_by_dc.count(dc)
              ? stats.latency_by_dc.at(dc).Mean() / 1000.0
              : 0;
      rows.push_back({kDcNames[dc], txn::ProtocolName(protocol),
                      std::to_string(committed) + "/" +
                          std::to_string(attempted),
                      workload::FormatDouble(latency_ms, 0) + " ms",
                      workload::CommitsByRound(stats),
                      stats.check.ok ? "OK" : "VIOLATED"});
    }
  }
  workload::PrintTable({"datacenter", "protocol", "commits/attempted",
                        "mean latency", "total by-round", "serializability"},
                       rows);
  return 0;
}
