// Self-healing 2PC (docs/ARCHITECTURE.md, D10): a coordinator that crashes
// between prepare and decide leaves a pending prepare pinning every
// replica's SafeReadPos until *someone* finishes the transaction. This
// bench runs a cross-group workload whose coordinators always crash
// mid-2PC and compares the read-frontier pin time with the service-side
// recovery daemon off (pins survive to the end of the run; only the
// post-run client quiesce heals them) and on (each pin is closed within
// the recovery-timer envelope, with no client help at all — the post-run
// quiesce is disabled to prove it).
//
// Expected shape: daemon-off max pin is essentially the distance from the
// first crash to the end of the run (tens of seconds); daemon-on max pin
// is bounded by base timer + jitter + a couple of recovery rounds.
//
//   ./build/bench/fig_recovery [--json <path>]
#include "core/checker.h"
#include "experiment_common.h"

using namespace paxoscp;

namespace {

constexpr TimeMicros kRecoveryTimer = 1 * kSecond;
/// Daemon-on pin bound: base timer (1s) + default jitter (<= 0.5s) + slack
/// for the query/decide walk and a few backoff retries (the decide walk
/// can lose Paxos rounds to the live workload). Well above anything a
/// healthy daemon produces, well below the daemon-off end-of-run pins.
constexpr TimeMicros kPinBound = 8 * kSecond;

workload::RunnerConfig RecoveryWorkload() {
  workload::RunnerConfig config =
      bench::PaperWorkload(txn::Protocol::kPaxosCP);
  config.workload.num_groups = 2;
  config.workload.cross_fraction = 0.3;
  config.workload.groups_per_cross_txn = 2;
  config.workload.num_attributes = 60;
  config.total_txns = 240;
  // Every cross coordinator abandons its transaction once one prepare has
  // been decided, leaving the other group's prepare unfinished — recovery
  // must force-abort through the missing leg (the hard recovery path).
  config.client.crash_after_prepares = 1;
  return config;
}

std::string Seconds(TimeMicros t) {
  return workload::FormatDouble(static_cast<double>(t) / kSecond, 2) + " s";
}

}  // namespace

int main(int argc, char** argv) {
  bench::PerfReporter perf(&argc, argv, "fig_recovery");
  workload::PrintExperimentHeader(
      "Self-healing 2PC - SafeReadPos pin time with the recovery daemon "
      "off vs on (VVV, 2 groups, 30% cross, every coordinator crashes "
      "mid-prepare, 240 txns)",
      "daemon off: pending prepares pin the read frontier until the "
      "post-run quiesce; daemon on: replicas decide crashed transactions "
      "themselves within the timer envelope (D10), no client recovery");

  // Daemon off: the client-driven post-run quiesce (D8) is the only thing
  // that ever heals the stranded prepares, so the checker stays green but
  // every pin measured during the run survives to the end of it.
  core::Cluster off_cluster(bench::PaperCluster("VVV"));
  workload::RunnerConfig off_config = RecoveryWorkload();
  workload::RunStats off =
      perf.Run("recovery/daemon_off", &off_cluster, off_config);

  // Daemon on, client quiesce disabled: only the service-side daemon may
  // heal — green checker here *is* the self-healing claim.
  core::Cluster on_cluster(bench::PaperCluster("VVV"));
  workload::RunnerConfig on_config = RecoveryWorkload();
  on_config.recovery_timer = kRecoveryTimer;
  on_config.quiesce_recovery = false;
  workload::RunStats on =
      perf.Run("recovery/daemon_on", &on_cluster, on_config);

  std::vector<std::vector<std::string>> rows;
  for (const auto& [label, stats] :
       {std::pair<const char*, const workload::RunStats*>{"daemon off", &off},
        {"daemon on", &on}}) {
    rows.push_back(
        {label, std::to_string(stats->cross_attempted),
         std::to_string(stats->cross_committed),
         std::to_string(stats->recoveries_started),
         std::to_string(stats->recoveries_decided),
         std::to_string(stats->recoveries_forced_abort),
         Seconds(stats->max_safe_read_pin),
         stats->check.ok ? "OK" : "VIOLATED"});
  }
  workload::PrintTable({"cell", "x-attempts", "x-commits", "rec-start",
                        "rec-decided", "rec-forced-abort", "max pin",
                        "serializability"},
                       rows);

  // Shape gates. Daemon-off pins must dwarf the daemon-on envelope (they
  // last to the end of the run), daemon-on pins must fit inside it, and
  // the daemon must actually have decided transactions — including at
  // least one it could only finish by forcing an abort.
  const bool off_pins_long = off.max_safe_read_pin >= 2 * kPinBound;
  const bool on_pins_bounded =
      on.max_safe_read_pin > 0 && on.max_safe_read_pin <= kPinBound;
  const bool daemon_worked =
      on.recoveries_decided >= 1 && on.recoveries_forced_abort >= 1;
  std::printf(
      "\nmax SafeReadPos pin: daemon off %s, daemon on %s (bound %s) -> %s\n",
      Seconds(off.max_safe_read_pin).c_str(),
      Seconds(on.max_safe_read_pin).c_str(), Seconds(kPinBound).c_str(),
      off_pins_long && on_pins_bounded && daemon_worked
          ? "daemon keeps the read frontier fresh (D10 shape)"
          : "UNEXPECTED: recovery shape not reproduced");

  const bool ok = off.check.ok && on.check.ok && off.all_threads_finished &&
                  on.all_threads_finished && off_pins_long &&
                  on_pins_bounded && daemon_worked;
  return ok ? 0 : 1;
}
