// The missing availability experiment (paper §1/§5 headline claim): a
// Paxos-replicated log keeps committing transactions while an entire
// datacenter is down, because any majority of replicas can decide log
// positions — where a 2PC-style blocking commit would stall. This bench
// kills one datacenter mid-run and reports the commit rate per 10-second
// window before / during / after the outage for basic Paxos and Paxos-CP.
//
// Expected shape: both protocols stay available (no window of zero commits
// for Paxos-CP), but during the outage every commit phase waits out the
// 2-second RPC timeout of the dead replica, so transactions pile up and
// contention spikes; basic Paxos — which aborts every conflict loser —
// degrades far more than Paxos-CP, which keeps combining and promoting the
// pile-up into committed log entries. After recovery both return to their
// baseline, and the recovered datacenter catches up via learning instances.
//
//   ./build/bench/fig_availability [--json <path>]
#include "core/checker.h"
#include "experiment_common.h"
#include "fault/fault_plan.h"

using namespace paxoscp;

namespace {

constexpr TimeMicros kWindow = 10 * kSecond;
constexpr TimeMicros kOutageStart = 40 * kSecond;
constexpr TimeMicros kOutageEnd = 80 * kSecond;
constexpr DcId kVictim = 2;  // not the clients' home (dc 0)

const char* Phase(TimeMicros window_start) {
  if (window_start < kOutageStart) return "up";
  if (window_start < kOutageEnd) return "DOWN";
  return "recovered";
}

}  // namespace

int main(int argc, char** argv) {
  bench::PerfReporter perf(&argc, argv, "fig_availability");
  workload::PrintExperimentHeader(
      "Availability - commit rate across a single-datacenter outage "
      "(VVV, dc2 down 40s-80s, 500 txns)",
      "majority commit keeps both protocols live through the outage; "
      "basic's commit rate collapses under the pile-up, Paxos-CP keeps "
      "committing (paper SS1/SS5)");

  fault::FaultPlan plan;
  plan.events.push_back(
      {kOutageStart, fault::FaultKind::kDatacenterDown, kVictim, kNoDc, 0});
  plan.events.push_back(
      {kOutageEnd, fault::FaultKind::kDatacenterUp, kVictim, kNoDc, 0});

  std::printf("fault plan:\n%s\n", plan.ToString().c_str());

  std::map<txn::Protocol, workload::RunStats> stats;
  for (txn::Protocol protocol :
       {txn::Protocol::kBasicPaxos, txn::Protocol::kPaxosCP}) {
    core::Cluster cluster(bench::PaperCluster("VVV"));
    cluster.ApplyFaultPlan(plan);
    workload::RunnerConfig config = bench::PaperWorkload(protocol);
    config.availability_window = kWindow;
    stats[protocol] =
        perf.Run(std::string("avail/") + txn::ProtocolName(protocol),
                 &cluster, config);
  }
  const workload::RunStats& basic = stats[txn::Protocol::kBasicPaxos];
  const workload::RunStats& cp = stats[txn::Protocol::kPaxosCP];

  std::vector<std::vector<std::string>> rows;
  const size_t windows = std::max(basic.windows.size(), cp.windows.size());
  workload::WindowCounts basic_outage, cp_outage;
  bool cp_committed_every_outage_window = true;
  for (size_t i = 0; i < windows; ++i) {
    const TimeMicros window_start = static_cast<TimeMicros>(i) * kWindow;
    workload::WindowCounts b, c;
    if (i < basic.windows.size()) b = basic.windows[i];
    if (i < cp.windows.size()) c = cp.windows[i];
    // "Commits" everywhere below means committed + read_only — the
    // repo-wide CommitRate() definition (shared by WindowCounts and
    // RunStats since the unification), so columns stay internally
    // consistent (read-only commits are ~1/1024 of this workload, but a
    // commit is a commit).
    if (Phase(window_start)[0] == 'D') {
      basic_outage.attempted += b.attempted;
      basic_outage.committed += b.committed + b.read_only;
      cp_outage.attempted += c.attempted;
      cp_outage.committed += c.committed + c.read_only;
      if (c.committed + c.read_only == 0) {
        cp_committed_every_outage_window = false;
      }
    }
    rows.push_back({std::to_string(window_start / kSecond) + "s",
                    Phase(window_start),
                    std::to_string(b.committed + b.read_only) + "/" +
                        std::to_string(b.attempted),
                    workload::FormatDouble(100 * b.CommitRate(), 0) + "%",
                    std::to_string(c.committed + c.read_only) + "/" +
                        std::to_string(c.attempted),
                    workload::FormatDouble(100 * c.CommitRate(), 0) + "%"});
  }
  workload::PrintTable({"window", "dc2", "basic commits", "basic rate",
                        "cp commits", "cp rate"},
                       rows);

  std::printf("\n");
  workload::PrintTable(
      bench::ResultHeaders("phase"),
      {bench::ResultRow("whole run", txn::Protocol::kBasicPaxos, basic),
       bench::ResultRow("whole run", txn::Protocol::kPaxosCP, cp)});

  // The headline claim is per-window: no outage window may pass without a
  // Paxos-CP commit (a single straggler commit at the outage's edge must
  // not keep CI green).
  const bool cp_available_throughout =
      cp_outage.committed > 0 && cp_committed_every_outage_window;
  const bool cp_beats_basic_during_outage =
      cp_outage.committed > basic_outage.committed;
  std::printf(
      "\nduring outage: basic committed %d/%d, Paxos-CP committed %d/%d "
      "-> %s\n",
      basic_outage.committed, basic_outage.attempted, cp_outage.committed,
      cp_outage.attempted,
      cp_available_throughout && cp_beats_basic_during_outage
          ? "Paxos-CP stays available and ahead (paper SS5 shape)"
          : "UNEXPECTED: availability shape not reproduced");
  const bool ok = basic.check.ok && cp.check.ok && cp_available_throughout &&
                  cp_beats_basic_during_outage;
  return ok ? 0 : 1;
}
