// Reproduces paper Figure 5: commits (a) and average transaction latency
// (b) for different datacenter combinations. V = Virginia (three distinct
// availability zones, ~1.5 ms RTT between them), O = Oregon, C = northern
// California (V-O and V-C ~90 ms, O-C ~20 ms).
//
// Paper result (shape): Virginia-only clusters (VV, VVV) have far lower
// latency than geo-spread ones (OV, COV); the commit improvement of
// Paxos-CP over basic Paxos stays roughly constant across combinations,
// despite the higher latency of geo-spread quorums.
#include "experiment_common.h"

using namespace paxoscp;

int main(int argc, char** argv) {
  bench::PerfReporter perf(&argc, argv, "fig5_clusters");
  workload::PrintExperimentHeader(
      "Figure 5 - commits and latency by datacenter combination (500 txns)",
      "V-only clusters much faster; CP improvement roughly constant across "
      "combinations");

  std::vector<std::vector<std::string>> rows;
  for (const std::string code :
       {"VV", "OV", "VVV", "COV", "VVVO", "COVVV"}) {
    for (txn::Protocol protocol :
         {txn::Protocol::kBasicPaxos, txn::Protocol::kPaxosCP}) {
      workload::RunnerConfig config = bench::PaperWorkload(protocol);
      workload::RunStats stats =
          perf.Run(code + "/" + txn::ProtocolName(protocol),
                   bench::PaperCluster(code), config);
      rows.push_back(bench::ResultRow(code, protocol, stats));
    }
  }
  workload::PrintTable(bench::ResultHeaders("cluster"), rows);
  return 0;
}
