// Reproduces paper Figure 6: data contention sweep. Three Virginia
// replicas; the total number of attributes in the entity group varies from
// 20 (each 10-op transaction touches 50% of items => heavy contention) to
// 500 (2% => minimal contention). Basic Paxos commits are insensitive to
// contention (it aborts on any log-position collision); Paxos-CP recovers
// nearly all non-conflicting transactions via promotion and combination.
//
// Paper result (shape): basic ~290-295/500 flat across the sweep; CP rises
// from 370/500 at 20 attributes to 494/500 at 500 attributes.
#include "experiment_common.h"

using namespace paxoscp;

int main(int argc, char** argv) {
  bench::PerfReporter perf(&argc, argv, "fig6_contention");
  workload::PrintExperimentHeader(
      "Figure 6 - commits vs data contention (VVV, 500 txns)",
      "basic flat ~290/500; CP 370/500 @20 attrs -> 494/500 @500 attrs");

  std::vector<std::vector<std::string>> rows;
  for (int attributes : {20, 50, 100, 200, 500}) {
    for (txn::Protocol protocol :
         {txn::Protocol::kBasicPaxos, txn::Protocol::kPaxosCP}) {
      workload::RunnerConfig config = bench::PaperWorkload(protocol);
      config.workload.num_attributes = attributes;
      workload::RunStats stats =
          perf.Run(std::to_string(attributes) + "attrs/" +
                       txn::ProtocolName(protocol),
                   bench::PaperCluster("VVV"), config);
      rows.push_back(bench::ResultRow(std::to_string(attributes) + " attrs",
                                      protocol, stats));
    }
  }
  workload::PrintTable(bench::ResultHeaders("contention"), rows);
  return 0;
}
