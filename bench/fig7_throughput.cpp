// Reproduces paper Figure 7: the impact of increased concurrency. A single
// YCSB instance on a VVV cluster (100 attributes) raises its target
// throughput; competition for log positions grows with offered load.
//
// Paper result (shape): both protocols commit less as throughput rises;
// Paxos-CP consistently commits more than basic Paxos, and promotions play
// a larger role as the competition for each log position increases.
#include "experiment_common.h"

using namespace paxoscp;

int main(int argc, char** argv) {
  bench::PerfReporter perf(&argc, argv, "fig7_throughput");
  workload::PrintExperimentHeader(
      "Figure 7 - commits vs offered load (VVV, 100 attrs, 500 txns)",
      "both degrade with load; CP consistently above basic; promotions grow "
      "with load");

  std::vector<std::vector<std::string>> rows;
  for (double aggregate_tps : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    for (txn::Protocol protocol :
         {txn::Protocol::kBasicPaxos, txn::Protocol::kPaxosCP}) {
      workload::RunnerConfig config = bench::PaperWorkload(protocol);
      config.target_rate_tps = aggregate_tps / config.num_threads;
      config.stagger =
          static_cast<TimeMicros>(1e6 / aggregate_tps);  // even spacing
      workload::RunStats stats =
          perf.Run(workload::FormatDouble(aggregate_tps, 1) + "tps/" +
                       txn::ProtocolName(protocol),
                   bench::PaperCluster("VVV"), config);
      rows.push_back(bench::ResultRow(
          workload::FormatDouble(aggregate_tps, 1) + " txn/s", protocol,
          stats));
    }
  }
  workload::PrintTable(bench::ResultHeaders("offered load"), rows);
  return 0;
}
