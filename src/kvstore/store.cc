#include "kvstore/store.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace paxoscp::kvstore {

namespace {

std::string KeyMessage(const char* prefix, std::string_view key) {
  std::string msg(prefix);
  msg += key;
  return msg;
}

}  // namespace

uint64_t MultiVersionStore::NextInstanceId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

const RowVersion* MultiVersionStore::FindVersion(const VersionChain& chain,
                                                 Timestamp timestamp) {
  if (chain.empty()) return nullptr;
  if (timestamp == kLatestTimestamp) return &chain.back();
  // Binary search: last version with ts <= timestamp.
  auto it = std::upper_bound(
      chain.begin(), chain.end(), timestamp,
      [](Timestamp ts, const RowVersion& v) { return ts < v.timestamp; });
  if (it == chain.begin()) return nullptr;
  return &*std::prev(it);
}

MultiVersionStore::VersionChain& MultiVersionStore::ChainFor(
    std::string_view key) {
  auto it = rows_.lower_bound(key);
  if (it == rows_.end() || it->first != key) {
    it = rows_.emplace_hint(it, std::string(key), VersionChain{});
  }
  return it->second;
}

Result<RowVersion> MultiVersionStore::Read(std::string_view key,
                                           Timestamp timestamp) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kRead, {"kv", instance_id_, key});
  }
  auto it = rows_.find(key);
  if (it == rows_.end()) return Status::NotFound(KeyMessage("no such key: ", key));
  const RowVersion* v = FindVersion(it->second, timestamp);
  if (v == nullptr) {
    return Status::NotFound(KeyMessage("no version at requested ts of key: ", key));
  }
  return *v;  // cheap: shared snapshot, no attribute copy
}

Result<std::string> MultiVersionStore::ReadAttr(std::string_view key,
                                                std::string_view attribute,
                                                Timestamp timestamp) const {
  Result<AttrView> view = ReadAttrView(key, attribute, timestamp);
  if (!view.ok()) return view.status();
  return std::string(view->value);
}

Result<AttrView> MultiVersionStore::ReadAttrView(std::string_view key,
                                                 std::string_view attribute,
                                                 Timestamp timestamp) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kRead, {"kv", instance_id_, key});
  }
  auto it = rows_.find(key);
  if (it == rows_.end()) return Status::NotFound(KeyMessage("no such key: ", key));
  const RowVersion* v = FindVersion(it->second, timestamp);
  if (v == nullptr) {
    return Status::NotFound(KeyMessage("no version at requested ts of key: ", key));
  }
  auto attr = v->attributes->find(attribute);
  if (attr == v->attributes->end()) {
    return Status::NotFound(KeyMessage("attribute not found on key: ", key));
  }
  return AttrView{v->attributes, attr->second};
}

Status MultiVersionStore::Write(std::string_view key, AttributeMap attributes,
                                Timestamp timestamp) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kWrite, {"kv", instance_id_, key});
  }
  VersionChain& chain = ChainFor(key);
  Timestamp ts = timestamp;
  if (ts == kLatestTimestamp) {
    ts = chain.empty() ? 1 : chain.back().timestamp + 1;
  } else if (!chain.empty() && chain.back().timestamp >= ts) {
    return Status::Conflict(
        "version with timestamp >= " + std::to_string(ts) +
        " already exists for key '" + std::string(key) + "'");
  }
  chain.push_back(
      RowVersion{ts, std::make_shared<const AttributeMap>(std::move(attributes))});
  return Status::OK();
}

Status MultiVersionStore::CheckAndWrite(std::string_view key,
                                        std::string_view test_attribute,
                                        std::string_view test_value,
                                        AttributeMap attributes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kWrite, {"kv", instance_id_, key});
  }
  std::string_view current;  // missing row/attribute reads as ""
  VersionChain& chain = ChainFor(key);
  if (!chain.empty()) {
    const AttributeMap& latest = *chain.back().attributes;
    auto it = latest.find(test_attribute);
    if (it != latest.end()) current = it->second;
  }
  if (current != test_value) {
    std::string msg("checkAndWrite mismatch: '");
    msg += key;
    msg += '.';
    msg += test_attribute;
    msg += "' is '";
    msg += current;
    msg += "', expected '";
    msg += test_value;
    msg += '\'';
    return Status::Conflict(std::move(msg));
  }
  const Timestamp ts = chain.empty() ? 1 : chain.back().timestamp + 1;
  chain.push_back(
      RowVersion{ts, std::make_shared<const AttributeMap>(std::move(attributes))});
  return Status::OK();
}

Status MultiVersionStore::MergeWrite(std::string_view key,
                                     const AttributeMap& updates,
                                     Timestamp timestamp) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kWrite, {"kv", instance_id_, key});
  }
  VersionChain& chain = ChainFor(key);
  if (!chain.empty() && chain.back().timestamp >= timestamp) {
    // Idempotent replay: the log applier may re-apply a position after a
    // catch-up; an existing version at or past this timestamp means the
    // write already happened.
    return Status::Conflict("merge-write below existing timestamp");
  }
  AttributeMapPtr merged;
  if (chain.empty()) {
    merged = std::make_shared<const AttributeMap>(updates);
  } else if (updates.empty()) {
    merged = chain.back().attributes;  // pure share: no copy at all
  } else {
    // Structural clone of the base (std::map's copy constructor rebuilds
    // the tree with no comparisons or rebalancing — measurably faster than
    // element-wise merged construction), then overlay the few updates.
    auto out = std::make_shared<AttributeMap>(*chain.back().attributes);
    for (const auto& [attr, value] : updates) {
      out->insert_or_assign(attr, value);
    }
    merged = std::move(out);
  }
  chain.push_back(RowVersion{timestamp, std::move(merged)});
  return Status::OK();
}

bool MultiVersionStore::Contains(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kRead, {"kv", instance_id_, key});
  }
  auto it = rows_.find(key);
  return it != rows_.end() && !it->second.empty();
}

size_t MultiVersionStore::VersionCount(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kRead, {"kv", instance_id_, key});
  }
  auto it = rows_.find(key);
  return it == rows_.end() ? 0 : it->second.size();
}

size_t MultiVersionStore::TruncateVersions(std::string_view key,
                                           Timestamp watermark) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kWrite, {"kv", instance_id_, key});
  }
  auto it = rows_.find(key);
  if (it == rows_.end()) return 0;
  VersionChain& chain = it->second;
  const RowVersion* keep = FindVersion(chain, watermark);
  if (keep == nullptr) return 0;
  const size_t removed =
      static_cast<size_t>(keep - chain.data());  // versions strictly older
  chain.erase(chain.begin(), chain.begin() + removed);
  return removed;
}

size_t MultiVersionStore::TruncateAllVersions(Timestamp watermark) {
  std::vector<std::string> keys;
  {
    std::lock_guard<std::mutex> lock(mu_);
    keys.reserve(rows_.size());
    for (const auto& [key, chain] : rows_) keys.push_back(key);
  }
  size_t removed = 0;
  for (const auto& key : keys) removed += TruncateVersions(key, watermark);
  return removed;
}

std::vector<std::string> MultiVersionStore::KeysWithPrefix(
    std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kRead, {"kv", instance_id_, "prefix", prefix});
  }
  std::vector<std::string> out;
  for (auto it = rows_.lower_bound(prefix); it != rows_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix.data(), prefix.size()) !=
        0) {
      break;
    }
    if (!it->second.empty()) out.push_back(it->first);
  }
  return out;
}

size_t MultiVersionStore::KeyCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [key, chain] : rows_) {
    if (!chain.empty()) ++n;
  }
  return n;
}

}  // namespace paxoscp::kvstore
