#include "kvstore/store.h"

#include <algorithm>

namespace paxoscp::kvstore {

const RowVersion* MultiVersionStore::FindVersion(const VersionChain& chain,
                                                 Timestamp timestamp) {
  if (chain.empty()) return nullptr;
  if (timestamp == kLatestTimestamp) return &chain.back();
  // Last version with ts <= timestamp.
  auto it = std::upper_bound(
      chain.begin(), chain.end(), timestamp,
      [](Timestamp ts, const RowVersion& v) { return ts < v.timestamp; });
  if (it == chain.begin()) return nullptr;
  return &*std::prev(it);
}

Result<RowVersion> MultiVersionStore::Read(const std::string& key,
                                           Timestamp timestamp) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rows_.find(key);
  if (it == rows_.end()) return Status::NotFound("no such key: " + key);
  const RowVersion* v = FindVersion(it->second, timestamp);
  if (v == nullptr) {
    return Status::NotFound("no version of '" + key + "' at ts <= " +
                            std::to_string(timestamp));
  }
  return *v;
}

Result<std::string> MultiVersionStore::ReadAttr(const std::string& key,
                                                const std::string& attribute,
                                                Timestamp timestamp) const {
  Result<RowVersion> row = Read(key, timestamp);
  if (!row.ok()) return row.status();
  auto it = row->attributes.find(attribute);
  if (it == row->attributes.end()) {
    return Status::NotFound("key '" + key + "' has no attribute '" +
                            attribute + "'");
  }
  return it->second;
}

Status MultiVersionStore::Write(const std::string& key,
                                std::map<std::string, std::string> attributes,
                                Timestamp timestamp) {
  std::lock_guard<std::mutex> lock(mu_);
  VersionChain& chain = rows_[key];
  Timestamp ts = timestamp;
  if (ts == kLatestTimestamp) {
    ts = chain.empty() ? 1 : chain.back().timestamp + 1;
  } else if (!chain.empty() && chain.back().timestamp >= ts) {
    return Status::Conflict(
        "version with timestamp >= " + std::to_string(ts) +
        " already exists for key '" + key + "'");
  }
  chain.push_back(RowVersion{ts, std::move(attributes)});
  return Status::OK();
}

Status MultiVersionStore::CheckAndWrite(
    const std::string& key, const std::string& test_attribute,
    const std::string& test_value,
    std::map<std::string, std::string> attributes) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string current;  // missing row/attribute reads as ""
  VersionChain& chain = rows_[key];
  if (!chain.empty()) {
    const auto& latest = chain.back().attributes;
    auto it = latest.find(test_attribute);
    if (it != latest.end()) current = it->second;
  }
  if (current != test_value) {
    return Status::Conflict("checkAndWrite: '" + key + "." + test_attribute +
                            "' is '" + current + "', expected '" + test_value +
                            "'");
  }
  const Timestamp ts = chain.empty() ? 1 : chain.back().timestamp + 1;
  chain.push_back(RowVersion{ts, std::move(attributes)});
  return Status::OK();
}

Status MultiVersionStore::MergeWrite(
    const std::string& key, const std::map<std::string, std::string>& updates,
    Timestamp timestamp) {
  std::lock_guard<std::mutex> lock(mu_);
  VersionChain& chain = rows_[key];
  if (!chain.empty() && chain.back().timestamp >= timestamp) {
    // Idempotent replay: the log applier may re-apply a position after a
    // catch-up; an existing version at or past this timestamp means the
    // write already happened.
    return Status::Conflict("merge-write below existing timestamp");
  }
  std::map<std::string, std::string> merged =
      chain.empty() ? std::map<std::string, std::string>{}
                    : chain.back().attributes;
  for (const auto& [attr, value] : updates) merged[attr] = value;
  chain.push_back(RowVersion{timestamp, std::move(merged)});
  return Status::OK();
}

bool MultiVersionStore::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rows_.find(key);
  return it != rows_.end() && !it->second.empty();
}

size_t MultiVersionStore::VersionCount(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rows_.find(key);
  return it == rows_.end() ? 0 : it->second.size();
}

size_t MultiVersionStore::TruncateVersions(const std::string& key,
                                           Timestamp watermark) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rows_.find(key);
  if (it == rows_.end()) return 0;
  VersionChain& chain = it->second;
  const RowVersion* keep = FindVersion(chain, watermark);
  if (keep == nullptr) return 0;
  const Timestamp keep_ts = keep->timestamp;
  size_t removed = 0;
  auto first_kept = std::find_if(
      chain.begin(), chain.end(),
      [keep_ts](const RowVersion& v) { return v.timestamp >= keep_ts; });
  removed = static_cast<size_t>(std::distance(chain.begin(), first_kept));
  chain.erase(chain.begin(), first_kept);
  return removed;
}

size_t MultiVersionStore::TruncateAllVersions(Timestamp watermark) {
  std::vector<std::string> keys;
  {
    std::lock_guard<std::mutex> lock(mu_);
    keys.reserve(rows_.size());
    for (const auto& [key, chain] : rows_) keys.push_back(key);
  }
  size_t removed = 0;
  for (const auto& key : keys) removed += TruncateVersions(key, watermark);
  return removed;
}

std::vector<std::string> MultiVersionStore::KeysWithPrefix(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (auto it = rows_.lower_bound(prefix); it != rows_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    if (!it->second.empty()) out.push_back(it->first);
  }
  return out;
}

size_t MultiVersionStore::KeyCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [key, chain] : rows_) {
    if (!chain.empty()) ++n;
  }
  return n;
}

}  // namespace paxoscp::kvstore
