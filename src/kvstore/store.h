// Multi-version key-value store: the per-datacenter storage substrate.
//
// Substitutes for HBase in the paper. Paper §2.2 requires exactly three
// atomic operations plus multi-version rows; this store implements that
// contract precisely:
//
//   * Read(key, timestamp)  — most recent version with ts <= timestamp
//                             (kLatestTimestamp => newest version).
//   * Write(key, row, ts)   — creates a new version stamped `ts`; rejected
//                             if a version with a greater timestamp exists
//                             (kLatestTimestamp => auto-assign ts greater
//                             than all existing versions).
//   * CheckAndWrite(...)    — atomic test-and-set on one attribute of the
//                             latest version, then Write on success.
//
// Rows are maps from attribute (column) name to value; each write stores a
// complete row snapshot, mirroring the paper's "new version of the row".
// Version payloads are copy-on-write (docs/ARCHITECTURE.md, design note
// D5): a version holds a shared_ptr<const AttributeMap>, so Read hands out
// a reference to the immutable snapshot instead of deep-copying it, and a
// snapshot stays valid (and bit-identical) for as long as the caller holds
// it — even across later writes or garbage collection of the chain.
// All operations are atomic with respect to one another (single mutex; the
// simulator is single-threaded but the store is independently thread-safe
// so it can be exercised standalone).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sim/race_hooks.h"

namespace paxoscp::kvstore {

/// Attribute (column) name → value. The transparent comparator enables
/// heterogeneous lookup, so hot callers probe with string_views instead of
/// constructing temporary std::string keys.
using AttributeMap = std::map<std::string, std::string, std::less<>>;

/// Immutable shared snapshot of a row version's attributes.
using AttributeMapPtr = std::shared_ptr<const AttributeMap>;

/// A row version: the version timestamp plus a shared immutable attribute
/// snapshot. Copying a RowVersion is two words plus a refcount bump; the
/// attribute map itself is never copied. `attributes` is never null when
/// returned by the store.
struct RowVersion {
  Timestamp timestamp = 0;
  AttributeMapPtr attributes;
};

/// A borrowed attribute value: `value` points into `version`'s map and
/// remains valid for as long as `version` is held.
struct AttrView {
  AttributeMapPtr version;
  std::string_view value;
};

class MultiVersionStore {
 public:
  MultiVersionStore() = default;
  MultiVersionStore(const MultiVersionStore&) = delete;
  MultiVersionStore& operator=(const MultiVersionStore&) = delete;

  /// Process-wide construction ordinal: the store discriminator in race-
  /// detector cell names ("kv/<id>/<key>", design note D12). Deliberately
  /// NOT the object's address — cell names must be identical across runs.
  uint64_t instance_id() const { return instance_id_; }

  /// Reads the most recent version of `key` with timestamp <= `timestamp`.
  /// kLatestTimestamp reads the newest version. NotFound if no such version.
  Result<RowVersion> Read(std::string_view key,
                          Timestamp timestamp = kLatestTimestamp) const;

  /// Reads a single attribute at the given snapshot; NotFound if the row has
  /// no qualifying version or the version lacks the attribute. Copies the
  /// value; use ReadAttrView for the no-copy path.
  Result<std::string> ReadAttr(std::string_view key, std::string_view attribute,
                               Timestamp timestamp = kLatestTimestamp) const;

  /// No-copy variant of ReadAttr: returns a view into the shared version
  /// (valid while the returned AttrView is held) instead of copying the
  /// value out.
  Result<AttrView> ReadAttrView(std::string_view key,
                                std::string_view attribute,
                                Timestamp timestamp = kLatestTimestamp) const;

  /// Creates a new version of `key`. With an explicit timestamp, fails with
  /// Conflict if any version with a timestamp >= `timestamp` exists (the
  /// paper: "If a version with greater timestamp exists, an error is
  /// returned"). With kLatestTimestamp, assigns max-existing + 1.
  Status Write(std::string_view key, AttributeMap attributes,
               Timestamp timestamp = kLatestTimestamp);

  /// Atomically: if the latest version of `key` has `test_attribute` equal
  /// to `test_value`, apply Write(key, attributes) and return OK; otherwise
  /// Conflict. A missing row or attribute compares equal to the empty
  /// string, so initializing writes can use test_value = "".
  Status CheckAndWrite(std::string_view key, std::string_view test_attribute,
                       std::string_view test_value, AttributeMap attributes);

  /// Merge-write convenience used by the log applier: reads the latest
  /// version <= `timestamp`, overlays `updates`, writes at `timestamp`.
  /// The merged map is a structural clone of the base with the updates
  /// overlaid; with empty `updates` the new version shares the previous
  /// snapshot outright (no copy).
  Status MergeWrite(std::string_view key, const AttributeMap& updates,
                    Timestamp timestamp);

  /// True if the key has at least one version.
  bool Contains(std::string_view key) const;

  /// Number of stored versions of `key` (0 if absent).
  size_t VersionCount(std::string_view key) const;

  /// Garbage-collects versions of `key` strictly older than the newest
  /// version with timestamp <= `watermark` (that version stays readable).
  /// Snapshots already handed out by Read stay valid: they share the
  /// attribute map, which outlives its chain entry. Returns the number of
  /// versions removed.
  size_t TruncateVersions(std::string_view key, Timestamp watermark);

  /// Applies TruncateVersions to every key. Returns total removed.
  size_t TruncateAllVersions(Timestamp watermark);

  /// All keys with the given prefix, sorted.
  std::vector<std::string> KeysWithPrefix(std::string_view prefix) const;

  size_t KeyCount() const;

 private:
  using VersionChain = std::vector<RowVersion>;  // ascending by timestamp

  /// Binary-searches the ascending chain for the newest version with
  /// ts <= timestamp; nullptr if none qualifies.
  static const RowVersion* FindVersion(const VersionChain& chain,
                                       Timestamp timestamp);

  /// Chain for `key`, created empty on first use (callers hold mu_).
  VersionChain& ChainFor(std::string_view key);

  static uint64_t NextInstanceId();

  const uint64_t instance_id_ = NextInstanceId();
  mutable std::mutex mu_;
  std::map<std::string, VersionChain, std::less<>> rows_;
};

}  // namespace paxoscp::kvstore
