// Multi-version key-value store: the per-datacenter storage substrate.
//
// Substitutes for HBase in the paper. Paper §2.2 requires exactly three
// atomic operations plus multi-version rows; this store implements that
// contract precisely:
//
//   * Read(key, timestamp)  — most recent version with ts <= timestamp
//                             (kLatestTimestamp => newest version).
//   * Write(key, row, ts)   — creates a new version stamped `ts`; rejected
//                             if a version with a greater timestamp exists
//                             (kLatestTimestamp => auto-assign ts greater
//                             than all existing versions).
//   * CheckAndWrite(...)    — atomic test-and-set on one attribute of the
//                             latest version, then Write on success.
//
// Rows are maps from attribute (column) name to value; each Write stores a
// complete row snapshot, mirroring the paper's "new version of the row".
// All operations are atomic with respect to one another (single mutex; the
// simulator is single-threaded but the store is independently thread-safe
// so it can be exercised standalone).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace paxoscp::kvstore {

/// A row version: full attribute map plus the version timestamp.
struct RowVersion {
  Timestamp timestamp = 0;
  std::map<std::string, std::string> attributes;
};

class MultiVersionStore {
 public:
  MultiVersionStore() = default;
  MultiVersionStore(const MultiVersionStore&) = delete;
  MultiVersionStore& operator=(const MultiVersionStore&) = delete;

  /// Reads the most recent version of `key` with timestamp <= `timestamp`.
  /// kLatestTimestamp reads the newest version. NotFound if no such version.
  Result<RowVersion> Read(const std::string& key,
                          Timestamp timestamp = kLatestTimestamp) const;

  /// Reads a single attribute at the given snapshot; NotFound if the row has
  /// no qualifying version or the version lacks the attribute.
  Result<std::string> ReadAttr(const std::string& key,
                               const std::string& attribute,
                               Timestamp timestamp = kLatestTimestamp) const;

  /// Creates a new version of `key`. With an explicit timestamp, fails with
  /// Conflict if any version with a timestamp >= `timestamp` exists (the
  /// paper: "If a version with greater timestamp exists, an error is
  /// returned"). With kLatestTimestamp, assigns max-existing + 1.
  Status Write(const std::string& key,
               std::map<std::string, std::string> attributes,
               Timestamp timestamp = kLatestTimestamp);

  /// Atomically: if the latest version of `key` has `test_attribute` equal
  /// to `test_value`, apply Write(key, attributes) and return OK; otherwise
  /// Conflict. A missing row or attribute compares equal to the empty
  /// string, so initializing writes can use test_value = "".
  Status CheckAndWrite(const std::string& key,
                       const std::string& test_attribute,
                       const std::string& test_value,
                       std::map<std::string, std::string> attributes);

  /// Merge-write convenience used by the log applier: reads the latest
  /// version <= `timestamp`, overlays `updates`, writes at `timestamp`.
  Status MergeWrite(const std::string& key,
                    const std::map<std::string, std::string>& updates,
                    Timestamp timestamp);

  /// True if the key has at least one version.
  bool Contains(const std::string& key) const;

  /// Number of stored versions of `key` (0 if absent).
  size_t VersionCount(const std::string& key) const;

  /// Garbage-collects versions of `key` strictly older than the newest
  /// version with timestamp <= `watermark` (that version stays readable).
  /// Returns the number of versions removed.
  size_t TruncateVersions(const std::string& key, Timestamp watermark);

  /// Applies TruncateVersions to every key. Returns total removed.
  size_t TruncateAllVersions(Timestamp watermark);

  /// All keys with the given prefix, sorted.
  std::vector<std::string> KeysWithPrefix(const std::string& prefix) const;

  size_t KeyCount() const;

 private:
  using VersionChain = std::vector<RowVersion>;  // ascending by timestamp

  /// Returns the newest version with ts <= timestamp, or nullptr.
  static const RowVersion* FindVersion(const VersionChain& chain,
                                       Timestamp timestamp);

  mutable std::mutex mu_;
  std::map<std::string, VersionChain> rows_;
};

}  // namespace paxoscp::kvstore
