// Deterministic, seedable random number generation. Every source of
// randomness in the simulator (latency jitter, message loss, workload
// generation, backoff) draws from an explicitly seeded Rng so that whole
// experiments replay bit-identically from a seed.
#pragma once

#include <cstdint>
#include <vector>

namespace paxoscp {

/// xoshiro256** seeded via SplitMix64. Not cryptographic; fast and well
/// distributed, which is all a simulator needs.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (p clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  /// Forks an independent stream; deterministic given this Rng's state.
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Zipfian generator over [0, n) with parameter theta, using the
/// Gray/YCSB rejection-free construction. theta in (0, 1); larger theta is
/// more skewed. Used by the workload generator's skewed access mode.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99);

  uint64_t Next(Rng* rng);

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace paxoscp
