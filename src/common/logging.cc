#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace paxoscp {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }
bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level.load()) &&
         level != LogLevel::kOff;
}

void LogMessage(LogLevel level, const std::string& msg) {
  if (!LogEnabled(level)) return;
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace paxoscp
