#include "common/coding.h"

#include <cstring>

namespace paxoscp {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(value >> (8 * i));
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(value >> (8 * i));
  dst->append(buf, 8);
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

bool GetFixed32(std::string_view* input, uint32_t* value) {
  if (input->size() < 4) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>((*input)[i]))
         << (8 * i);
  }
  *value = v;
  input->remove_prefix(4);
  return true;
}

bool GetFixed64(std::string_view* input, uint64_t* value) {
  if (input->size() < 8) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>((*input)[i]))
         << (8 * i);
  }
  *value = v;
  input->remove_prefix(8);
  return true;
}

bool GetVarint64(std::string_view* input, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    const uint64_t byte = static_cast<unsigned char>(input->front());
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return true;
    }
  }
  return false;  // ran out of input or > 10 bytes
}

bool GetVarint32(std::string_view* input, uint32_t* value) {
  uint64_t v = 0;
  if (!GetVarint64(input, &v) || v > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v);
  return true;
}

bool GetLengthPrefixed(std::string_view* input, std::string_view* value) {
  uint64_t len = 0;
  if (!GetVarint64(input, &len)) return false;
  if (input->size() < len) return false;
  *value = input->substr(0, len);
  input->remove_prefix(len);
  return true;
}

void PutVarsint64(std::string* dst, int64_t value) {
  PutVarint64(dst, ZigZagEncode(value));
}

bool GetVarsint64(std::string_view* input, int64_t* value) {
  uint64_t v = 0;
  if (!GetVarint64(input, &v)) return false;
  *value = ZigZagDecode(v);
  return true;
}

namespace {

constexpr uint64_t kMul1 = 0x9e3779b185ebca87ULL;  // xxHash64 primes
constexpr uint64_t kMul2 = 0xc2b2ae3d27d4eb4fULL;

inline uint64_t Rotl(uint64_t v, int s) { return (v << s) | (v >> (64 - s)); }

inline uint64_t Avalanche(uint64_t h) {
  h ^= h >> 33;
  h *= kMul1;
  h ^= h >> 29;
  h *= kMul2;
  h ^= h >> 32;
  return h;
}

}  // namespace

void Fingerprinter::Mix(uint64_t word) {
  state_ = Rotl(state_ ^ (word * kMul1), 31) * kMul2;
}

namespace {

inline uint64_t LoadWordLE(const char* p) {
  uint64_t word;
  std::memcpy(&word, p, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  word = __builtin_bswap64(word);  // match the little-endian byte packing
#endif
  return word;
}

}  // namespace

void Fingerprinter::Add(std::string_view data) {
  const char* p = data.data();
  size_t n = data.size();
  total_len_ += n;
  if (pending_len_ > 0 && n >= 8) {
    // Unaligned bulk path: merge each input word into the partial word by
    // shifting, instead of re-packing byte by byte. pending_len_ is
    // invariant through the loop.
    const uint32_t shift = 8 * pending_len_;
    const uint32_t inv = 64 - shift;  // both in [8, 56]: shifts well-defined
    do {
      const uint64_t word = LoadWordLE(p);
      Mix(pending_ | (word << shift));
      pending_ = word >> inv;
      p += 8;
      n -= 8;
    } while (n >= 8);
  } else {
    while (n >= 8) {
      Mix(LoadWordLE(p));
      p += 8;
      n -= 8;
    }
  }
  while (n > 0) {
    pending_ |= static_cast<uint64_t>(static_cast<unsigned char>(*p))
                << (8 * pending_len_);
    if (++pending_len_ == 8) {
      Mix(pending_);
      pending_ = 0;
      pending_len_ = 0;
    }
    ++p;
    --n;
  }
}

void Fingerprinter::AddFixed64(uint64_t v) {
  total_len_ += 8;
  if (pending_len_ == 0) {
    // Aligned: a fixed64's little-endian bytes are exactly one word.
    Mix(v);
    return;
  }
  // Unaligned: low bytes of v complete the partial word; the rest carries.
  const uint32_t shift = 8 * pending_len_;
  Mix(pending_ | (v << shift));
  pending_ = v >> (64 - shift);
}

uint64_t Fingerprinter::Finish() const {
  uint64_t h = state_;
  if (pending_len_ > 0) {
    // total_len_ below disambiguates a padded tail from literal zero bytes.
    h = Rotl(h ^ (pending_ * kMul1), 31) * kMul2;
  }
  return Avalanche(h ^ total_len_);
}

uint64_t Fingerprint64(std::string_view data) {
  Fingerprinter fp;
  fp.Add(data);
  return fp.Finish();
}

}  // namespace paxoscp
