#include "common/coding.h"

namespace paxoscp {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(value >> (8 * i));
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(value >> (8 * i));
  dst->append(buf, 8);
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

bool GetFixed32(std::string_view* input, uint32_t* value) {
  if (input->size() < 4) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>((*input)[i]))
         << (8 * i);
  }
  *value = v;
  input->remove_prefix(4);
  return true;
}

bool GetFixed64(std::string_view* input, uint64_t* value) {
  if (input->size() < 8) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>((*input)[i]))
         << (8 * i);
  }
  *value = v;
  input->remove_prefix(8);
  return true;
}

bool GetVarint64(std::string_view* input, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint64_t byte = static_cast<unsigned char>(input->front());
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return true;
    }
  }
  return false;  // ran out of input or > 10 bytes
}

bool GetVarint32(std::string_view* input, uint32_t* value) {
  uint64_t v = 0;
  if (!GetVarint64(input, &v) || v > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v);
  return true;
}

bool GetLengthPrefixed(std::string_view* input, std::string_view* value) {
  uint64_t len = 0;
  if (!GetVarint64(input, &len)) return false;
  if (input->size() < len) return false;
  *value = input->substr(0, len);
  input->remove_prefix(len);
  return true;
}

void PutVarsint64(std::string* dst, int64_t value) {
  PutVarint64(dst, ZigZagEncode(value));
}

bool GetVarsint64(std::string_view* input, int64_t* value) {
  uint64_t v = 0;
  if (!GetVarint64(input, &v)) return false;
  *value = ZigZagDecode(v);
  return true;
}

uint64_t Fingerprint64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

}  // namespace paxoscp
