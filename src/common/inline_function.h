// Move-only callable wrapper with small-buffer optimization.
//
// The discrete-event simulator schedules millions of short-lived callbacks
// per run; wrapping each in std::function costs a heap allocation whenever
// the capture exceeds the (implementation-defined, ~16-byte) inline buffer.
// InlineFunction widens the inline buffer (48 bytes by default — enough for
// every callback the protocol layer schedules) and drops the copyability
// requirement, so scheduling an event allocates nothing in the common case.
// Oversized or over-aligned callables transparently fall back to the heap.
//
// See docs/ARCHITECTURE.md, design note D5 (substrate fast paths).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace paxoscp {

template <typename Signature, size_t kInlineBytes = 48>
class InlineFunction;

template <typename R, typename... Args, size_t kInlineBytes>
class InlineFunction<R(Args...), kInlineBytes> {
 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(runtime/explicit)
    if constexpr (sizeof(D) <= kStorageBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = &InlineInvoke<D>;
      manage_ = &InlineManage<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      invoke_ = &HeapInvoke<D>;
      manage_ = &HeapManage<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  InlineFunction& operator=(std::nullptr_t) noexcept {
    Reset();
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { Reset(); }

  R operator()(Args... args) {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

 private:
  // The buffer must at least fit the heap fallback's pointer.
  static constexpr size_t kStorageBytes =
      kInlineBytes < sizeof(void*) ? sizeof(void*) : kInlineBytes;

  enum class Op { kRelocateTo, kDestroy };
  using InvokeFn = R (*)(void*, Args&&...);
  using ManageFn = void (*)(void* self, void* dst, Op op);

  template <typename D>
  static R InlineInvoke(void* p, Args&&... args) {
    return (*std::launder(reinterpret_cast<D*>(p)))(
        std::forward<Args>(args)...);
  }
  template <typename D>
  static void InlineManage(void* self, void* dst, Op op) {
    D* f = std::launder(reinterpret_cast<D*>(self));
    if (op == Op::kRelocateTo) ::new (dst) D(std::move(*f));
    f->~D();  // relocation destroys the source as well
  }
  template <typename D>
  static R HeapInvoke(void* p, Args&&... args) {
    return (**std::launder(reinterpret_cast<D**>(p)))(
        std::forward<Args>(args)...);
  }
  template <typename D>
  static void HeapManage(void* self, void* dst, Op op) {
    D** slot = std::launder(reinterpret_cast<D**>(self));
    if (op == Op::kRelocateTo) {
      ::new (dst) D*(*slot);  // relocate by stealing the pointer
    } else {
      delete *slot;
    }
  }

  void MoveFrom(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) {
      manage_(other.storage_, storage_, Op::kRelocateTo);
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void Reset() noexcept {
    if (manage_ != nullptr) manage_(storage_, nullptr, Op::kDestroy);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kStorageBytes];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace paxoscp
