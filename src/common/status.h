// Status / Result error-handling primitives (RocksDB/Arrow idiom: no
// exceptions on library paths; every fallible call returns a Status or a
// Result<T>).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace paxoscp {

/// Outcome of a fallible operation. Cheap to copy when OK (no allocation).
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kConflict,            // kvstore version conflict / checkAndWrite failure
    kTimedOut,            // message or operation deadline expired
    kUnavailable,         // endpoint down / no quorum reachable
    kAborted,             // transaction aborted by concurrency control
    kInvalidArgument,
    kFailedPrecondition,  // protocol state does not permit the operation
    kCorruption,          // decode failure / invariant violation in data
    kInternal,
  };

  Status() = default;  // OK

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Conflict(std::string msg = "") {
    return Status(Code::kConflict, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(Code::kTimedOut, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg = "") {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsConflict() const { return code_ == Code::kConflict; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsAborted() const { return code_ == Code::kAborted; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Either a value of type T or a non-OK Status explaining its absence.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}              // NOLINT
  Result(Status status) : status_(std::move(status)) {       // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when not OK.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `expr` (a Status expression) and early-returns it when not OK.
#define PAXOSCP_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::paxoscp::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace paxoscp
