// Binary encoding helpers (varint / fixed / length-prefixed), used by the
// write-ahead-log codec and message serialization. Follows the RocksDB
// coding.h style: Put* appends to a std::string, Get* consumes from a
// string_view and returns false on underflow or malformed input.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace paxoscp {

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
/// Appends a varint length followed by the raw bytes.
void PutLengthPrefixed(std::string* dst, std::string_view value);

bool GetFixed32(std::string_view* input, uint32_t* value);
bool GetFixed64(std::string_view* input, uint64_t* value);
bool GetVarint32(std::string_view* input, uint32_t* value);
bool GetVarint64(std::string_view* input, uint64_t* value);
bool GetLengthPrefixed(std::string_view* input, std::string_view* value);

/// ZigZag transform so small negative numbers encode compactly as varints.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void PutVarsint64(std::string* dst, int64_t value);
bool GetVarsint64(std::string_view* input, int64_t* value);

/// Upper bound on the encoded size of one varint64.
inline constexpr int kMaxVarint64Bytes = 10;

/// Writes `value` as a varint into `dst` (which must have at least
/// kMaxVarint64Bytes available) and returns one past the last byte written.
/// The raw-buffer form lets hot encoders (Ballot::Encode) build fixed-size
/// encodings entirely on the stack.
inline char* EncodeVarint64To(char* dst, uint64_t value) {
  unsigned char* p = reinterpret_cast<unsigned char*>(dst);
  while (value >= 0x80) {
    *p++ = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  *p++ = static_cast<unsigned char>(value);
  return reinterpret_cast<char*>(p);
}

/// Streaming 64-bit content fingerprint. Produces the same digest for the
/// same byte stream no matter how the stream is chunked across Add* calls,
/// so codecs can fingerprint their encoded form field by field without
/// materializing it (LogEntry::Fingerprint). Internally hashes 8-byte words
/// (an xxHash64-style round) instead of single bytes, which is ~4x faster
/// than byte-at-a-time FNV on typical log entries. The digest is stable only
/// within one process lifetime — it is never persisted.
class Fingerprinter {
 public:
  /// Mixes raw bytes into the digest.
  void Add(std::string_view data);
  /// Mixes the varint encoding of `v` (same bytes PutVarint64 would append).
  /// Single-byte varints — the overwhelming majority in a log entry — skip
  /// the encode-buffer round trip.
  void AddVarint64(uint64_t v) {
    if (v < 0x80) {
      AddByte(static_cast<unsigned char>(v));
      return;
    }
    char buf[kMaxVarint64Bytes];
    Add(std::string_view(buf, static_cast<size_t>(EncodeVarint64To(buf, v) -
                                                  buf)));
  }
  /// Mixes the zigzag varint encoding of `v` (as PutVarsint64).
  void AddVarsint64(int64_t v) { AddVarint64(ZigZagEncode(v)); }
  /// Mixes the little-endian fixed encoding of `v` (as PutFixed64).
  void AddFixed64(uint64_t v);
  /// Mixes a varint length followed by the bytes (as PutLengthPrefixed).
  void AddLengthPrefixed(std::string_view v) {
    AddVarint64(v.size());
    Add(v);
  }
  /// Final digest; the Fingerprinter may keep accumulating afterwards.
  uint64_t Finish() const;

 private:
  void Mix(uint64_t word);

  void AddByte(unsigned char b) {
    ++total_len_;
    pending_ |= static_cast<uint64_t>(b) << (8 * pending_len_);
    if (++pending_len_ == 8) {
      Mix(pending_);
      pending_ = 0;
      pending_len_ = 0;
    }
  }

  uint64_t state_ = 0x9e3779b97f4a7c15ULL;
  uint64_t pending_ = 0;  // partial little-endian word, low bytes first
  uint32_t pending_len_ = 0;
  uint64_t total_len_ = 0;
};

/// 64-bit fingerprint of a byte string; used for log-entry fingerprints.
/// Equals Fingerprinter{Add(data)}.Finish(), so streamed field-by-field
/// fingerprints match fingerprints of the materialized encoding.
uint64_t Fingerprint64(std::string_view data);

}  // namespace paxoscp
