// Binary encoding helpers (varint / fixed / length-prefixed), used by the
// write-ahead-log codec and message serialization. Follows the RocksDB
// coding.h style: Put* appends to a std::string, Get* consumes from a
// string_view and returns false on underflow or malformed input.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace paxoscp {

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
/// Appends a varint length followed by the raw bytes.
void PutLengthPrefixed(std::string* dst, std::string_view value);

bool GetFixed32(std::string_view* input, uint32_t* value);
bool GetFixed64(std::string_view* input, uint64_t* value);
bool GetVarint32(std::string_view* input, uint32_t* value);
bool GetVarint64(std::string_view* input, uint64_t* value);
bool GetLengthPrefixed(std::string_view* input, std::string_view* value);

/// ZigZag transform so small negative numbers encode compactly as varints.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void PutVarsint64(std::string* dst, int64_t value);
bool GetVarsint64(std::string_view* input, int64_t* value);

/// 64-bit FNV-1a over a byte string; used for log-entry fingerprints.
uint64_t Fingerprint64(std::string_view data);

}  // namespace paxoscp
