#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

namespace paxoscp {

namespace {

/// Precomputed bucket upper bounds: 1, 2, 3, 4, 6, 8, 12, 16, ... —
/// powers of two interleaved with 1.5x values, ~2 buckets per octave up
/// to ~5e18, the tail padded with INT64_MAX.
const std::vector<int64_t>& BucketLimits() {
  static const std::vector<int64_t> kLimits = [] {
    std::vector<int64_t> limits;
    int64_t v = 1;
    while (static_cast<int>(limits.size()) < Histogram::kNumBuckets) {
      limits.push_back(v);
      const int64_t mid = v + v / 2;
      if (mid > v &&
          static_cast<int>(limits.size()) < Histogram::kNumBuckets) {
        limits.push_back(mid);
      }
      if (v > std::numeric_limits<int64_t>::max() / 2) {
        while (static_cast<int>(limits.size()) < Histogram::kNumBuckets) {
          limits.push_back(std::numeric_limits<int64_t>::max());
        }
        break;
      }
      v *= 2;
    }
    return limits;
  }();
  return kLimits;
}

}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) { Clear(); }

void Histogram::Clear() {
  count_ = 0;
  min_ = std::numeric_limits<int64_t>::max();
  max_ = 0;
  sum_ = 0;
  sum_squares_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

int64_t Histogram::min() const { return count_ == 0 ? 0 : min_; }

int Histogram::BucketFor(int64_t value) {
  if (value <= 0) return 0;
  // Bucket i covers (limit(i-1), limit(i)]: the answer is the first limit
  // >= value. Binary search instead of a linear scan over all 128 limits —
  // Record() runs once per transaction in the runner and every bench. The
  // tail is padded with INT64_MAX, so lower_bound always finds a slot.
  const std::vector<int64_t>& limits = BucketLimits();
  return static_cast<int>(
      std::lower_bound(limits.begin(), limits.end(), value) - limits.begin());
}

int64_t Histogram::BucketLimit(int i) { return BucketLimits()[i]; }

void Histogram::Record(int64_t value) {
  assert(value >= 0 &&
         "Histogram::Record: negative value (latencies and sizes are "
         "non-negative); clamped to 0 in release builds");
  if (value < 0) value = 0;
  buckets_[BucketFor(value)]++;
  count_++;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value);
  sum_squares_ += static_cast<double>(value) * static_cast<double>(value);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  if (other.count_ > 0) {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  const double threshold = static_cast<double>(count_) * (p / 100.0);
  double cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += static_cast<double>(buckets_[i]);
    if (cumulative >= threshold) {
      // Linear interpolation inside the bucket.
      const double left = cumulative - static_cast<double>(buckets_[i]);
      const int64_t lo = i == 0 ? 0 : BucketLimit(i - 1);
      const int64_t hi = BucketLimit(i);
      const double frac =
          buckets_[i] == 0
              ? 0
              : (threshold - left) / static_cast<double>(buckets_[i]);
      double r = static_cast<double>(lo) +
                 frac * static_cast<double>(hi - lo);
      r = std::min(r, static_cast<double>(max_));
      r = std::max(r, static_cast<double>(min()));
      return r;
    }
  }
  return static_cast<double>(max_);
}

double Histogram::StdDev() const {
  if (count_ == 0) return 0;
  const double n = static_cast<double>(count_);
  const double variance = (sum_squares_ * n - sum_ * sum_) / (n * n);
  return variance <= 0 ? 0 : std::sqrt(variance);
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << Mean() << " p50=" << Percentile(50)
     << " p95=" << Percentile(95) << " p99=" << Percentile(99)
     << " max=" << max_;
  return os.str();
}

}  // namespace paxoscp
