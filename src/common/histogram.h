// Log-bucketed latency histogram (RocksDB HistogramImpl style): constant
// memory, approximate percentiles, exact count/mean/min/max.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace paxoscp {

class Histogram {
 public:
  Histogram();

  /// Records a sample. Values are durations/sizes and must be
  /// non-negative: a negative value is a caller bug — it asserts in debug
  /// builds and is clamped to 0 in release builds (count/min/max/mean and
  /// the buckets all see 0, so every statistic stays sign-consistent).
  void Record(int64_t value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  int64_t min() const;
  int64_t max() const { return max_; }
  double Mean() const;
  /// Approximate p-th percentile, p in [0, 100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50); }
  double StdDev() const;

  /// One-line summary: count, mean, p50/p95/p99, max.
  std::string ToString() const;

  static constexpr int kNumBuckets = 128;
  /// Index of the bucket whose upper bound is the smallest >= value —
  /// a binary search over the precomputed limits (this sits on the
  /// per-transaction latency hot path of the runner and every bench).
  /// Public so the regression test can pin it against the reference
  /// linear scan.
  static int BucketFor(int64_t value);
  /// Upper bound of bucket i.
  static int64_t BucketLimit(int i);

 private:
  uint64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0;
  double sum_squares_ = 0;
  std::vector<uint64_t> buckets_;
};

}  // namespace paxoscp
