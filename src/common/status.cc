#include "common/status.h"

#include "common/types.h"

namespace paxoscp {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kConflict:
      return "Conflict";
    case Status::Code::kTimedOut:
      return "TimedOut";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::string TxnIdToString(TxnId id) {
  return std::to_string(TxnIdDc(id)) + "." + std::to_string(TxnIdSeq(id));
}

}  // namespace paxoscp
