#include "common/random.h"

#include <cassert>
#include <cmath>

namespace paxoscp {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  // Guard log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(Next() ^ 0x5851f42d4c957f2dULL); }

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1 - std::pow(2.0 / double(n_), 1 - theta_)) /
         (1 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng* rng) {
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t v = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace paxoscp
