// Minimal leveled logger. Protocol-level traces are invaluable when
// debugging distributed interleavings, but must cost nothing when disabled,
// so call sites guard with IsEnabled() before building strings.
#pragma once

#include <sstream>
#include <string>

namespace paxoscp {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log level; defaults to kWarn so tests and benches stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
bool LogEnabled(LogLevel level);

/// Writes one line to stderr, prefixed with the level name.
void LogMessage(LogLevel level, const std::string& msg);

namespace logging_internal {

/// Builds a log line from stream-style arguments, then emits it.
class LineBuilder {
 public:
  explicit LineBuilder(LogLevel level) : level_(level) {}
  ~LineBuilder() { LogMessage(level_, os_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace logging_internal
}  // namespace paxoscp

/// Usage: PAXOSCP_LOG(kDebug) << "proposer " << id << " promoted";
#define PAXOSCP_LOG(level)                                        \
  if (!::paxoscp::LogEnabled(::paxoscp::LogLevel::level)) {       \
  } else                                                          \
    ::paxoscp::logging_internal::LineBuilder(::paxoscp::LogLevel::level)
