// Core identifier and time types shared by every paxoscp module.
#pragma once

#include <cstdint>
#include <string>

namespace paxoscp {

/// Identifier of a datacenter (index into the cluster's datacenter list).
using DcId = int32_t;

/// Sentinel for "no datacenter".
inline constexpr DcId kNoDc = -1;

/// Globally unique transaction identifier. The high 16 bits carry the
/// originating datacenter, the low 48 bits a per-client sequence number.
using TxnId = uint64_t;

/// Position in a transaction group's write-ahead log. Positions start at 1;
/// position 0 means "empty log".
using LogPos = uint64_t;

/// Logical timestamp used by the multi-version key-value store. The
/// transaction tier uses the commit log position as the write timestamp.
using Timestamp = int64_t;

/// Sentinel timestamp meaning "latest version" on reads and "auto-assign a
/// timestamp greater than all existing versions" on writes.
inline constexpr Timestamp kLatestTimestamp = -1;

/// Simulated time in microseconds since the start of the run.
using TimeMicros = int64_t;

inline constexpr TimeMicros kMicrosecond = 1;
inline constexpr TimeMicros kMillisecond = 1000;
inline constexpr TimeMicros kSecond = 1000 * 1000;

/// Builds a TxnId from an originating datacenter and a local sequence number.
constexpr TxnId MakeTxnId(DcId dc, uint64_t seq) {
  return (static_cast<TxnId>(static_cast<uint16_t>(dc)) << 48) |
         (seq & ((uint64_t{1} << 48) - 1));
}

/// Extracts the originating datacenter from a TxnId.
constexpr DcId TxnIdDc(TxnId id) { return static_cast<DcId>(id >> 48); }

/// Extracts the per-client sequence number from a TxnId.
constexpr uint64_t TxnIdSeq(TxnId id) {
  return id & ((uint64_t{1} << 48) - 1);
}

/// Human-readable rendering of a TxnId as "dc.seq".
std::string TxnIdToString(TxnId id);

}  // namespace paxoscp
