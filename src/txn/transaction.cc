#include "txn/transaction.h"

#include <algorithm>

namespace paxoscp::txn {

const char* ProtocolName(Protocol protocol) {
  switch (protocol) {
    case Protocol::kBasicPaxos:
      return "paxos";
    case Protocol::kPaxosCP:
      return "paxos-cp";
  }
  return "?";
}

bool ActiveTxn::Read(const wal::ItemId& item, std::string* value) const {
  auto it = writes.find(item);
  if (it == writes.end()) return false;
  *value = it->second;
  return true;
}

bool ActiveTxn::HasRecordedRead(const wal::ItemId& item) const {
  for (const wal::ReadRecord& r : reads) {
    if (r.item == item) return true;
  }
  return false;
}

wal::TxnRecord ActiveTxn::ToRecord(DcId origin_dc) const {
  wal::TxnRecord record;
  record.id = id;
  record.origin_dc = origin_dc;
  record.read_pos = read_pos;
  record.reads = reads;
  // Canonical item order: the read-set is a set (conflict checks are
  // membership-only), but the parallel read fan-out appends entries in
  // response-arrival order, which would leak schedule order into the
  // record's encoding and hence the Paxos value identity. Writes keep
  // program order — apply order is list order.
  std::sort(record.reads.begin(), record.reads.end(),
            [](const wal::ReadRecord& a, const wal::ReadRecord& b) {
              return a.item < b.item;
            });
  record.writes.reserve(writes.size());
  for (const auto& [item, value] : writes) {
    record.writes.push_back(wal::WriteRecord{item, value});
  }
  return record;
}

bool PromotionConflicts(const wal::TxnRecord& txn,
                        const wal::LogEntry& winners) {
  return winners.WritesItemReadBy(txn);
}

std::vector<wal::ItemId> ConflictingItems(const wal::TxnRecord& txn,
                                          const wal::LogEntry& winners) {
  std::vector<wal::ItemId> out;
  for (const wal::ReadRecord& r : txn.reads) {
    for (const wal::TxnRecord& w : winners.txns) {
      if (w.Writes(r.item)) {
        out.push_back(r.item);
        break;
      }
    }
  }
  return out;
}

}  // namespace paxoscp::txn
