// Cross-group transactions: two-phase commit layered over the per-group
// Paxos-CP logs (design note D8; lineage: Spinnaker's key-range sharding
// across Paxos cohorts, Consus' commit coordination over multiple Paxos
// groups).
//
// A `CrossTxn` spans a fixed set of entity groups. Reads and writes are
// routed to per-group legs, each with its own read position obtained at
// `Session::BeginCross`. Commit runs 2PC in which every phase is a
// replicated log entry:
//
//   phase 1  A PREPARE record (the leg's reads + writes + the full
//            participant list) is committed into each group's log through
//            the ordinary Paxos-CP protocol — promotion, combination, and
//            the read-write conflict check all apply unchanged. A decided
//            prepare's writes are *held back*: the group's applied
//            watermark and every new read position stay below the prepare
//            until its fate is known.
//   phase 2  A DECIDE record (commit iff every group prepared) is
//            committed into the *commit group* (the first participant in
//            sorted order) and then propagated to the other participants.
//            The canonical outcome of the transaction is the lowest-
//            position decide record in the commit group's log, so the
//            coordinator is stateless: any party can learn — or, by
//            proposing an abort decide, force — the outcome through the
//            existing log machinery, and a crashed coordinator blocks
//            nothing beyond the log decision itself.
//
// Global one-copy serializability needs more than per-group checks: two
// transactions can interleave in opposite orders in two groups with no
// per-group conflict (cross-group write skew). Every cross transaction
// therefore carries a commit-order timestamp `cross_ts` chosen above the
// watermark of every participant's log prefix, and a prepare aborts if a
// younger (greater (cross_ts, id)) prepare already sits before it in any
// group's log — committed prepares appear in every log in one shared
// order, which makes the union of the per-group serial orders acyclic.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sim/coro.h"
#include "txn/txn.h"

namespace paxoscp::txn {

/// Result of CrossTxn::Commit. Cross transactions never report read-only:
/// even a pure-read transaction replicates its prepares (its reads must
/// occupy one position in every participant's serial order).
struct CrossCommitResult {
  /// OK => canonically committed. Aborted => canonically aborted (conflict,
  /// commit-order violation, or an unreachable participant — all certain:
  /// the coordinator never proposed commit, or the canonical decide says
  /// abort). Unavailable with `unknown` => fate not learned.
  Status status;
  bool committed = false;
  /// True when the commit protocol started but the coordinator gave up
  /// without learning the canonical decision (a retry could commit twice).
  bool unknown = false;
  /// Prepare position per group whose prepare was decided.
  std::map<std::string, LogPos> prepare_positions;
  /// Position of the canonical decide in the commit group (0 if unknown).
  LogPos decide_pos = 0;
  int promotions = 0;      // prepare-walk promotions only (decide walks
                           // advance positions without counting: decides
                           // never conflict, so their walk length is not
                           // a contention signal)
  int prepare_rounds = 0;  // summed Paxos prepare rounds, all walks
  /// Wall-clock from commit start until Commit resumed the caller —
  /// includes Phase-2 propagation to the non-commit participants, which
  /// Commit awaits so that a transaction begun after commit returns
  /// observes the effects on every group.
  TimeMicros latency = 0;
  /// Wall-clock from commit start until the canonical decide landed in
  /// the commit group — the commit point, after which the outcome is
  /// durable and recovery can only confirm it. With parallel fan-out
  /// (D9) this is ~2 wide-area rounds regardless of participant count.
  /// 0 when no decide landed (crash / unknown).
  TimeMicros decision_latency = 0;
};

/// Maps a finished cross-group commit onto the shared outcome taxonomy.
TxnOutcome ClassifyCrossCommit(const CrossCommitResult& result);

/// One read spec of CrossTxn::ReadMany: an item on one participant leg.
struct CrossRead {
  std::string group;
  std::string row;
  std::string attribute;
};

/// Client-side state of one active cross-group transaction: one
/// single-group leg (read position, read set, buffered writes) per
/// participant. Heap-allocated for the same handle-move stability as
/// TxnState.
struct CrossTxnState {
  TxnId id = 0;
  /// Commit-order timestamp: strictly above every participant's prepare
  /// watermark at begin time.
  uint64_t cross_ts = 0;
  /// Sorted, unique; front() is the commit group.
  std::vector<std::string> groups;
  std::map<std::string, TxnState> legs;
};

/// Movable RAII handle for one active cross-group transaction, mirroring
/// `Txn` (txn/txn.h): dropping an active handle aborts it locally, a
/// moved-from handle is inert, use-after-Commit asserts in debug builds.
class CrossTxn {
 public:
  CrossTxn() = default;
  ~CrossTxn();
  CrossTxn(CrossTxn&& other) noexcept;
  CrossTxn& operator=(CrossTxn&& other) noexcept;
  CrossTxn(const CrossTxn&) = delete;
  CrossTxn& operator=(const CrossTxn&) = delete;

  bool active() const { return phase_ == Phase::kActive; }
  const Status& begin_status() const { return begin_status_; }

  TxnId id() const;
  uint64_t cross_ts() const;
  const std::vector<std::string>& groups() const;
  /// Read position of the leg on `group` (0 if not a participant).
  LogPos read_pos(const std::string& group) const;

  /// Snapshot read on one participant group (A1/A2 semantics per leg).
  sim::Coro<Result<std::string>> Read(std::string group, std::string row,
                                      std::string attribute);

  /// Batched snapshot read: issues the specs' reads concurrently (joined
  /// with sim::Gather) and returns one Result per spec, in spec order —
  /// an invalid spec (reserved attribute, non-participant group) fails
  /// only its own slot. `reads` must stay alive while the caller awaits
  /// (it does when the caller owns it and awaits immediately).
  sim::Coro<std::vector<Result<std::string>>> ReadMany(
      const std::vector<CrossRead>* reads);

  /// Buffers a write on one participant group.
  Status Write(const std::string& group, const std::string& row,
               const std::string& attribute, std::string value);

  /// Runs 2PC over the participant logs. The handle is finished
  /// afterwards; the returned coroutine must be awaited immediately.
  sim::Coro<CrossCommitResult> Commit();

  /// Discards the transaction without committing (purely local).
  void Abort();

 private:
  friend class TransactionClient;
  friend class Session;

  enum class Phase { kInert, kActive, kFinished };

  explicit CrossTxn(Status begin_error)
      : begin_status_(std::move(begin_error)) {}
  CrossTxn(TransactionClient* client, std::unique_ptr<CrossTxnState> state);

  void Release();
  bool Usable(const char* op) const;

  TransactionClient* client_ = nullptr;
  std::unique_ptr<CrossTxnState> state_;
  Phase phase_ = Phase::kInert;
  Status begin_status_;
};

/// Unified result of Session::RunTransaction over a group set.
struct CrossTxnResult {
  TxnOutcome outcome = TxnOutcome::kUnavailable;
  Status status;
  int attempts = 0;
  CrossCommitResult commit;

  bool committed() const { return outcome == TxnOutcome::kCommitted; }
};

// The cross-group body alias (CrossTxnBody) lives in txn/txn.h beside
// TxnBody so Session can declare both RunTransaction overloads.

}  // namespace paxoscp::txn
