#include "txn/txn.h"

#include <utility>

#include "txn/client.h"

namespace paxoscp::txn {

namespace {

Status InertError(const char* op) {
  return Status::FailedPrecondition(std::string("inert transaction handle: ") +
                                    op + " requires an active transaction");
}

/// Immediately-failing coroutines for operations on unusable handles (the
/// caller still gets a real awaitable, so misuse fails gracefully instead
/// of crashing in release builds).
sim::Coro<Result<std::string>> FailedRead(Status status) {
  co_return Result<std::string>(std::move(status));
}

sim::Coro<Result<kvstore::AttributeMap>> FailedReadRow(Status status) {
  co_return Result<kvstore::AttributeMap>(std::move(status));
}

sim::Coro<CommitResult> FailedCommit(Status status) {
  CommitResult result;
  result.status = std::move(status);
  co_return result;
}

}  // namespace

const char* OutcomeName(TxnOutcome outcome) {
  switch (outcome) {
    case TxnOutcome::kCommitted: return "committed";
    case TxnOutcome::kReadOnly: return "read-only";
    case TxnOutcome::kConflict: return "conflict";
    case TxnOutcome::kUnavailable: return "unavailable";
    case TxnOutcome::kUnknownOutcome: return "unknown-outcome";
  }
  return "?";
}

TxnOutcome ClassifyCommit(const CommitResult& result) {
  if (result.read_only) return TxnOutcome::kReadOnly;
  if (result.committed) return TxnOutcome::kCommitted;
  if (result.status.IsAborted()) return TxnOutcome::kConflict;
  return TxnOutcome::kUnknownOutcome;
}

// ------------------------------------------------------------------- Txn

Txn::Txn(TransactionClient* client, std::unique_ptr<TxnState> state)
    : client_(client), state_(std::move(state)), phase_(Phase::kActive) {}

Txn::~Txn() {
  if (phase_ == Phase::kActive) Release();
}

Txn::Txn(Txn&& other) noexcept
    : client_(std::exchange(other.client_, nullptr)),
      state_(std::move(other.state_)),
      phase_(std::exchange(other.phase_, Phase::kInert)),
      begin_status_(std::move(other.begin_status_)) {}

Txn& Txn::operator=(Txn&& other) noexcept {
  if (this != &other) {
    if (phase_ == Phase::kActive) Release();
    client_ = std::exchange(other.client_, nullptr);
    state_ = std::move(other.state_);
    phase_ = std::exchange(other.phase_, Phase::kInert);
    begin_status_ = std::move(other.begin_status_);
  }
  return *this;
}

void Txn::Release() {
  client_->ReleaseGroup(state_->txn.group);
  state_.reset();
  phase_ = Phase::kFinished;
}

bool Txn::Usable(const char* op) const {
  (void)op;
  assert(phase_ != Phase::kFinished &&
         "use of a transaction handle after Commit/Abort");
  return phase_ == Phase::kActive;
}

TxnId Txn::id() const { return active() ? state_->txn.id : 0; }

LogPos Txn::read_pos() const { return active() ? state_->txn.read_pos : 0; }

const std::string& Txn::group() const {
  static const std::string kEmpty;
  return active() ? state_->txn.group : kEmpty;
}

size_t Txn::read_set_size() const {
  return active() ? state_->txn.reads.size() : 0;
}

sim::Coro<Result<std::string>> Txn::Read(std::string row,
                                         std::string attribute) {
  if (!Usable("Read")) return FailedRead(InertError("Read"));
  if (wal::IsReservedAttribute(attribute)) {
    return FailedRead(wal::ReservedAttributeError());
  }
  // Forwarded (not wrapped in a member coroutine): the returned awaitable
  // binds the heap-stable TxnState, never `this`, so moving the handle
  // between call and await is harmless.
  return client_->ReadItem(state_.get(), std::move(row), std::move(attribute));
}

sim::Coro<Result<kvstore::AttributeMap>> Txn::ReadRow(std::string row) {
  if (!Usable("ReadRow")) return FailedReadRow(InertError("ReadRow"));
  return client_->ReadRowItems(state_.get(), std::move(row));
}

Status Txn::Write(const std::string& row, const std::string& attribute,
                  std::string value) {
  if (!Usable("Write")) return InertError("Write");
  if (wal::IsReservedAttribute(attribute)) {
    return wal::ReservedAttributeError();
  }
  state_->txn.writes[wal::ItemId{row, attribute}] = std::move(value);
  return Status::OK();
}

Status Txn::WriteRow(const std::string& row,
                     const kvstore::AttributeMap& attributes) {
  if (!Usable("WriteRow")) return InertError("WriteRow");
  for (const auto& [attribute, value] : attributes) {
    if (wal::IsReservedAttribute(attribute)) {
      return wal::ReservedAttributeError();
    }
  }
  for (const auto& [attribute, value] : attributes) {
    state_->txn.writes[wal::ItemId{row, attribute}] = value;
  }
  return Status::OK();
}

sim::Coro<CommitResult> Txn::Commit() {
  if (!Usable("Commit")) return FailedCommit(InertError("Commit"));
  // The group slot opens as soon as the commit protocol starts: the
  // transaction's buffered state has been frozen, so a new transaction on
  // the same group may begin while this commit is still in flight.
  client_->ReleaseGroup(state_->txn.group);
  phase_ = Phase::kFinished;
  // state_ stays owned by the handle: the commit coroutine reads it while
  // the caller awaits (the handle must outlive the await, which every
  // `co_await txn.Commit()` guarantees).
  return client_->CommitTxn(state_.get());
}

void Txn::Abort() {
  if (phase_ == Phase::kInert) return;  // idempotent on inert handles
  assert(phase_ == Phase::kActive &&
         "Abort of a transaction handle after Commit/Abort");
  if (phase_ == Phase::kActive) Release();
}

// --------------------------------------------------------------- Session

DcId Session::home() const {
  assert(client_ != nullptr);
  return client_->home();
}

sim::Coro<Txn> Session::FailedBegin(Status status) {
  co_return Txn(std::move(status));
}

sim::Coro<Txn> Session::Begin(std::string group) {
  if (client_ == nullptr) {
    assert(false && "Begin on an invalid (default) Session");
    return FailedBegin(Status::FailedPrecondition("invalid session"));
  }
  return client_->BeginTxn(std::move(group));
}

sim::Coro<TxnResult> Session::RunTransaction(std::string group, TxnBody body,
                                             RetryPolicy retry) {
  if (client_ == nullptr) {
    assert(false && "RunTransaction on an invalid (default) Session");
    TxnResult invalid;
    invalid.attempts = 1;
    invalid.status = Status::FailedPrecondition("invalid session");
    co_return invalid;
  }
  sim::Simulator* sim = client_->simulator();
  const TimeMicros deadline_at =
      retry.deadline > 0 ? sim->Now() + retry.deadline : 0;
  TxnResult result;
  for (;;) {
    ++result.attempts;
    Txn txn = co_await client_->BeginTxn(group);
    if (!txn.active()) {
      result.outcome = TxnOutcome::kUnavailable;
      result.status = txn.begin_status();
      co_return result;
    }
    Status body_status = co_await body(&txn);
    if (!body_status.ok()) {
      // Body errors (failed reads, application rejection) abort the
      // attempt; the transaction certainly did not commit.
      txn.Abort();
      result.outcome = TxnOutcome::kUnavailable;
      result.status = std::move(body_status);
      co_return result;
    }
    result.commit = co_await txn.Commit();
    result.status = result.commit.status;
    result.outcome = ClassifyCommit(result.commit);
    // Only conflicts are retried: kUnknownOutcome may already be decided
    // (a retry could commit twice), kUnavailable cannot make progress.
    if (result.outcome != TxnOutcome::kConflict) co_return result;
    if (result.attempts >= retry.max_attempts) co_return result;
    const TimeMicros backoff =
        client_->RandomBackoffIn(retry.backoff_min, retry.backoff_max);
    if (deadline_at != 0 && sim->Now() + backoff >= deadline_at) {
      co_return result;
    }
    co_await sim::SleepFor(sim, backoff);
  }
}

}  // namespace paxoscp::txn
