// The Transaction Client: the library an application instance links to
// (paper §2.2 / §4). Runs the wire protocol — begin / snapshot read /
// buffered write / commit via either the basic Paxos commit protocol
// (Algorithm 2) or Paxos-CP (§5, combination + promotion) — against the
// Transaction Services of every datacenter.
//
// Applications do not call the client directly: the public transaction
// surface is the `txn::Session` / `txn::Txn` handle API (txn/txn.h),
// which owns the per-transaction state and delegates here. The client
// only enforces the per-group exclusivity rule (at most one active
// transaction per group per client, paper §2.2) via `active_groups_`.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "net/network.h"
#include "sim/coro.h"
#include "txn/messages.h"
#include "txn/transaction.h"
#include "txn/txn.h"

namespace paxoscp::txn {

class CrossTxn;
struct CrossTxnState;
struct CrossCommitResult;
struct CrossRead;

namespace recovery {
class CrossRecovery;
}  // namespace recovery

class TransactionClient {
 public:
  /// `client_uid` must be unique among all clients of this datacenter; it
  /// makes transaction ids globally unique.
  TransactionClient(net::Network* network, DcId home,
                    const ClientOptions& options, uint32_t client_uid,
                    uint64_t seed);

  DcId home() const { return home_; }
  const ClientOptions& options() const { return options_; }
  sim::Simulator* simulator() const { return sim_; }

  /// True while a `Txn` handle holds this client's active slot for
  /// `group` (test hook; released by commit, abort, or handle drop).
  bool HasActiveTxn(const std::string& group) const {
    return active_groups_.count(group) > 0;
  }

  /// Stateless 2PC recovery (D8): resolves cross-group transaction `id`,
  /// observed as prepared-but-undecided in `group`, to its canonical
  /// decision — learning it from the commit group's log, or forcing abort
  /// by proposing an abort decide there — then propagates the canonical
  /// decide to every participant. Safe to run concurrently with a live
  /// coordinator: the lowest-position decide in the commit group always
  /// wins, and every proposer adopts whatever decide it finds first.
  /// Thin wrapper over recovery::CrossRecovery::Run (txn/recovery.h), the
  /// shared core the service-side recovery daemon (D10) also drives.
  sim::Coro<Status> RecoverCrossTxn(std::string group, TxnId id);

 private:
  // The handle API is the only caller of the per-transaction operations.
  friend class Txn;
  friend class CrossTxn;
  friend class Session;
  // The shared recovery core borrows this client as its protocol engine
  // (QueryCrossAll + the ProposeDecide walk).
  friend class recovery::CrossRecovery;

  /// Outcome of running the commit protocol for one log position.
  struct InstanceOutcome {
    enum class Kind { kWon, kLost, kUnavailable } kind = Kind::kUnavailable;
    /// The decided entry (kWon and kLost).
    wal::LogEntry decided;
  };

  /// Starts a transaction on `group` (paper step 1): reserves the
  /// per-group slot, fetches the read position from the local Transaction
  /// Service (failing over to remote ones), and returns the owning
  /// handle. On failure the handle is inactive and carries the status.
  sim::Coro<Txn> BeginTxn(std::string group);

  /// Snapshot read of one item for the transaction in `*state` (which the
  /// awaiting Txn/caller keeps alive; see Txn::Read for A1/A2 semantics).
  sim::Coro<Result<std::string>> ReadItem(TxnState* state, std::string row,
                                          std::string attribute);

  /// Batched snapshot read of all attributes of `row`, overlaid with the
  /// transaction's buffered writes; each snapshot-served attribute is
  /// recorded in the read set.
  sim::Coro<Result<kvstore::AttributeMap>> ReadRowItems(TxnState* state,
                                                        std::string row);

  /// Runs the commit protocol for the transaction in `*state`. The caller
  /// (Txn::Commit) has already released the group slot; the state is
  /// consumed (moved from) by this call.
  sim::Coro<CommitResult> CommitTxn(TxnState* state);

  /// Starts a cross-group transaction (D8): reserves every group's slot,
  /// begins a leg per group (cross begins return the contiguous frontier
  /// and the commit-order watermark), and fixes cross_ts above every
  /// watermark. Requires Protocol::kPaxosCP.
  sim::Coro<CrossTxn> BeginCrossTxn(std::vector<std::string> groups);

  /// Runs 2PC for the cross-group transaction in `*state` (see
  /// txn/cross.h for the protocol). Slots are already released.
  sim::Coro<CrossCommitResult> CommitCrossTxn(CrossTxnState* state);

  /// One begin leg of BeginCrossTxn (fanned out with sim::Gather when
  /// parallel_commit is on).
  struct CrossBeginLeg {
    Status status;  // default OK; the remaining fields valid iff ok()
    LogPos read_pos = 0;
    DcId leader_dc = kNoDc;
    uint64_t max_cross_ts = 0;
  };
  sim::Coro<CrossBeginLeg> BeginCrossLeg(std::string group);

  /// Shared coordinator-crash gate of one cross commit (D9): legs count
  /// landed prepares into it and re-check it between Paxos instances, so
  /// the crash_after_prepares fault trips mid-fan-out — some legs landed,
  /// some abandoned mid-walk, some never proposed — exactly the
  /// partial-parallel-prepare window recovery must close.
  struct CrossCrashGate {
    int threshold = -1;  // -1: never crash
    int landed = 0;
    bool Tripped() const { return threshold >= 0 && landed >= threshold; }
  };

  /// Outcome of one Phase-1 prepare leg.
  struct CrossPrepareOutcome {
    enum class Kind { kPrepared, kConflict, kUnavailable, kAbandoned };
    Kind kind = Kind::kAbandoned;
    /// Prepare position, 0 if none landed. A kConflict leg can still carry
    /// a position: an own-preceded-by-younger prepare is in the log (and
    /// counts toward the crash gate) but must abort.
    LogPos pos = 0;
    int promotions = 0;
    std::string detail;     // failure detail (kConflict / kUnavailable)
    bool attempted = false;  // a prepare was proposed in this group
  };

  /// Walks one group's log until this transaction's prepare lands, a
  /// commit-order or read-write conflict aborts it, the group is
  /// unavailable, or the crash gate trips. Shared by both commit modes:
  /// sequential awaits legs one at a time, parallel joins them with
  /// sim::Gather. `state`, `gate` and `stats` outlive the leg (they live
  /// in the awaiting CommitCrossTxn frame).
  sim::Coro<CrossPrepareOutcome> PrepareCrossLeg(CrossTxnState* state,
                                                 std::string group,
                                                 CrossCrashGate* gate,
                                                 CommitResult* stats);

  /// Batched snapshot read across the legs of a cross transaction
  /// (CrossTxn::ReadMany): one result per spec, in spec order, with the
  /// per-leg reads issued concurrently. `reads` is owned by the awaiting
  /// caller's frame.
  sim::Coro<std::vector<Result<std::string>>> ReadItems(
      CrossTxnState* state, const std::vector<CrossRead>* reads);

  /// Frees the per-group active slot (commit start, abort, handle drop).
  void ReleaseGroup(const std::string& group);

  /// Outcome of one decide walk (see ProposeDecide).
  struct DecideOutcome {
    bool known = false;   // false => walk could not complete
    bool commit = false;  // the first decide record encountered
    LogPos pos = 0;
  };

  /// Walks `group`'s log from `floor`, proposing a decide record
  /// (commit/abort per `commit`) for transaction `id` at each undecided
  /// position until one lands — or until an existing decide for `id` is
  /// encountered, which is then adopted (first decide wins). Decide
  /// records read nothing, so they promote past any conflict.
  sim::Coro<DecideOutcome> ProposeDecide(std::string group, LogPos floor,
                                         TxnId id, bool commit,
                                         CommitResult* stats);

  /// Polls the begin-serving replica path (home datacenter first, same
  /// failover order as CallWithFailover) until `id`'s decide record is in
  /// that replica's log. The instance-level apply is fire-and-forget, so a
  /// decide can be "known" by the coordinator while the replica that will
  /// serve the next begin has not applied it yet — without this barrier a
  /// transaction begun right after Commit returns can read below a still-
  /// pending prepare. Bounded and best-effort: an unreachable replica is
  /// left to recovery.
  sim::Coro<void> AwaitDecideApplied(std::string group, TxnId id);

  /// One Phase-2 propagation leg: lands the canonical decision in `group`
  /// and barriers on its apply (fanned out with sim::WhenAll under
  /// parallel_commit).
  sim::Coro<void> PropagateDecide(std::string group, LogPos floor, TxnId id,
                                  bool commit, CommitResult* stats);

  /// Merged QueryCross over every reachable datacenter: prepare metadata
  /// from the first replica that has it, the canonical decision if any
  /// replica can vouch for one, and the highest safe read position seen
  /// (the floor recovery decide-walks start from).
  struct CrossQueryResult {
    bool has_prepare = false;
    LogPos prepare_pos = 0;
    uint64_t cross_ts = 0;
    std::vector<std::string> participants;
    bool has_canonical_decision = false;
    bool decision_commit = false;
    LogPos safe_pos = 0;
  };
  sim::Coro<CrossQueryResult> QueryCrossAll(std::string group, TxnId id);

  /// Uniform draw from the client's RNG (Session retry backoff shares the
  /// protocol RNG so a workload run consumes one deterministic stream).
  TimeMicros RandomBackoffIn(TimeMicros lo, TimeMicros hi);

  /// Runs one Paxos instance for `pos`, proposing `own`. Implements
  /// Algorithm 2 (prepare / accept / apply with randomized backoff), the
  /// leader fast path, and — for Paxos-CP — combination via
  /// EnhancedFindWinningValue.
  // NOTE on coroutine parameters: never references (a caller temporary
  // bound to a reference parameter dies before the frame does) and never
  // aggregate class types by value (miscompiled parameter-copy lifetime on
  // GCC 12 — see tests/sim_test.cc). Aggregates are passed as pointers to
  // objects owned by the awaiting coroutine's frame, which always outlives
  // the child.
  sim::Coro<InstanceOutcome> RunInstance(std::string group, LogPos pos,
                                         const wal::LogEntry* own,
                                         DcId leader_dc, CommitResult* stats);

  /// Accept + apply with a given ballot and value. Returns kWon/kLost when
  /// the value is decided (checking that a record with own id AND own kind
  /// landed — id alone would mistake a recovery decide for a landed
  /// prepare), nullopt when the accept round failed to reach a majority
  /// (caller re-prepares).
  sim::Coro<std::optional<InstanceOutcome>> AcceptAndApply(
      std::string group, LogPos pos, paxos::Ballot ballot,
      const wal::LogEntry* proposal, TxnId own_id, wal::RecordKind own_kind,
      paxos::Ballot* max_seen);

  /// Calls the home service first, then fails over to the others.
  sim::Coro<net::CallResult> CallWithFailover(const ServiceRequest* request);

  sim::Coro<net::BroadcastResult> BroadcastToAll(const ServiceRequest* request);

  TimeMicros RandomBackoff();

  net::Network* network_;
  sim::Simulator* sim_;
  DcId home_;
  ClientOptions options_;
  Rng rng_;
  uint32_t client_uid_;
  uint64_t next_seq_ = 1;
  std::vector<DcId> all_dcs_;
  int majority_;

  /// Groups with a live `Txn` handle (the state itself lives in the
  /// handle; only the exclusivity slot is tracked here).
  std::set<std::string> active_groups_;
};

}  // namespace paxoscp::txn
