// The Transaction Client: the library an application instance links to
// (paper §2.2 / §4). Provides begin / read / write / commit, buffers the
// read and write sets locally, and on commit runs either the basic Paxos
// commit protocol (Algorithm 2) or Paxos-CP (§5, combination + promotion)
// against the Transaction Services of every datacenter.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "net/network.h"
#include "sim/coro.h"
#include "txn/messages.h"
#include "txn/transaction.h"

namespace paxoscp::txn {

class TransactionClient {
 public:
  /// `client_uid` must be unique among all clients of this datacenter; it
  /// makes transaction ids globally unique.
  TransactionClient(net::Network* network, DcId home,
                    const ClientOptions& options, uint32_t client_uid,
                    uint64_t seed);

  DcId home() const { return home_; }
  const ClientOptions& options() const { return options_; }

  /// Starts a transaction on `group`: fetches the read position from the
  /// local Transaction Service (failing over to remote ones, paper step 1).
  /// At most one active transaction per group per client (paper §2.2).
  sim::Coro<Status> Begin(std::string group);

  /// Snapshot read at the transaction's read position. Reads of items the
  /// transaction already wrote return the buffered value (property A1);
  /// all other reads observe the read-position snapshot (property A2).
  /// A never-written item reads as the empty string.
  sim::Coro<Result<std::string>> Read(std::string group, std::string row,
                                      std::string attribute);

  /// Buffers a write locally (paper step 3: writes are handled locally by
  /// the Transaction Client until commit).
  Status Write(const std::string& group, const std::string& row,
               const std::string& attribute, std::string value);

  /// Runs the commit protocol. Read-only transactions commit immediately
  /// with no messages. Always clears the active transaction.
  sim::Coro<CommitResult> Commit(std::string group);

  /// Discards the active transaction without committing.
  Status Abort(const std::string& group);

  bool HasActiveTxn(const std::string& group) const {
    return active_.count(group) > 0;
  }
  /// Read position of the active transaction (test hook).
  LogPos ActiveReadPos(const std::string& group) const;
  /// Id of the active transaction (0 if none); harnesses record it before
  /// Commit so outcomes can be cross-checked against the log.
  TxnId ActiveTxnId(const std::string& group) const;
  /// Number of recorded snapshot reads in the active transaction.
  size_t ActiveReadSetSize(const std::string& group) const;

 private:
  /// Outcome of running the commit protocol for one log position.
  struct InstanceOutcome {
    enum class Kind { kWon, kLost, kUnavailable } kind = Kind::kUnavailable;
    /// The decided entry (kWon and kLost).
    wal::LogEntry decided;
  };

  /// Runs one Paxos instance for `pos`, proposing `own`. Implements
  /// Algorithm 2 (prepare / accept / apply with randomized backoff), the
  /// leader fast path, and — for Paxos-CP — combination via
  /// EnhancedFindWinningValue.
  // NOTE on coroutine parameters: never references (a caller temporary
  // bound to a reference parameter dies before the frame does) and never
  // aggregate class types by value (miscompiled parameter-copy lifetime on
  // GCC 12 — see tests/sim_test.cc). Aggregates are passed as pointers to
  // objects owned by the awaiting coroutine's frame, which always outlives
  // the child.
  sim::Coro<InstanceOutcome> RunInstance(std::string group, LogPos pos,
                                         const wal::LogEntry* own,
                                         DcId leader_dc, CommitResult* stats);

  /// Accept + apply with a given ballot and value. Returns kWon/kLost when
  /// the value is decided (checking own-membership), nullopt when the
  /// accept round failed to reach a majority (caller re-prepares).
  sim::Coro<std::optional<InstanceOutcome>> AcceptAndApply(
      std::string group, LogPos pos, paxos::Ballot ballot,
      const wal::LogEntry* proposal, TxnId own_id, paxos::Ballot* max_seen);

  /// Calls the home service first, then fails over to the others.
  sim::Coro<net::CallResult> CallWithFailover(const ServiceRequest* request);

  sim::Coro<net::BroadcastResult> BroadcastToAll(const ServiceRequest* request);

  TimeMicros RandomBackoff();

  net::Network* network_;
  sim::Simulator* sim_;
  DcId home_;
  ClientOptions options_;
  Rng rng_;
  uint32_t client_uid_;
  uint64_t next_seq_ = 1;
  std::vector<DcId> all_dcs_;
  int majority_;

  struct ActiveState {
    ActiveTxn txn;
    /// Cache of snapshot values already read (for repeated reads).
    std::map<wal::ItemId, std::string> read_cache;
  };
  std::map<std::string, ActiveState> active_;
};

}  // namespace paxoscp::txn
