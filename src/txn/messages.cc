#include "txn/messages.h"

namespace paxoscp::txn {

const char* RequestName(const ServiceRequest& request) {
  struct Visitor {
    const char* operator()(const BeginRequest&) const { return "begin"; }
    const char* operator()(const ReadRequest&) const { return "read"; }
    const char* operator()(const ReadRowRequest&) const { return "read_row"; }
    const char* operator()(const PrepareRequest&) const { return "prepare"; }
    const char* operator()(const AcceptRequest&) const { return "accept"; }
    const char* operator()(const ApplyRequest&) const { return "apply"; }
    const char* operator()(const ClaimLeaderRequest&) const {
      return "claim_leader";
    }
    const char* operator()(const QueryCrossRequest&) const {
      return "query_cross";
    }
  };
  return std::visit(Visitor{}, request);
}

}  // namespace paxoscp::txn
