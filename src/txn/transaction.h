// Client-side transaction state and commit-outcome types.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "net/network.h"
#include "paxos/value_selection.h"
#include "wal/log_entry.h"

namespace paxoscp::txn {

/// Which commit protocol a client runs (paper §4 vs §5).
enum class Protocol {
  kBasicPaxos,
  kPaxosCP,
};

const char* ProtocolName(Protocol protocol);

/// An active (uncommitted) transaction: buffered read provenance and writes.
/// Exists only inside one application instance (paper §2.2); lost state
/// means an implicit abort.
struct ActiveTxn {
  std::string group;
  TxnId id = 0;
  LogPos read_pos = 0;
  DcId leader_dc = kNoDc;  // leader for read_pos + 1
  std::vector<wal::ReadRecord> reads;
  /// Buffered writes, keyed by item; last write wins (ordered map gives the
  /// record a deterministic encoding).
  std::map<wal::ItemId, std::string> writes;

  bool Read(const wal::ItemId& item, std::string* value) const;
  bool HasRecordedRead(const wal::ItemId& item) const;

  /// Freezes this transaction into the replicable record.
  wal::TxnRecord ToRecord(DcId origin_dc) const;
};

/// Result of TransactionClient::Commit, with the bookkeeping the paper's
/// evaluation reports (promotion rounds, combination, latency).
struct CommitResult {
  /// OK => committed. Aborted => lost to a conflicting transaction.
  /// Unavailable/TimedOut => could not complete the protocol.
  Status status;
  bool committed = false;
  bool read_only = false;
  /// Log position where the transaction was written (committed only).
  LogPos position = 0;
  /// Number of promotions taken (0 = won its first commit position).
  int promotions = 0;
  /// Transactions this client merged into its winning proposal.
  int combined_others = 0;
  /// True if the transaction committed inside an entry proposed by another
  /// client (our record was combined into someone else's winning list).
  bool committed_via_other = false;
  /// True if the leader fast path (skip prepare) was used successfully.
  bool fast_path = false;
  int prepare_rounds = 0;
  TimeMicros latency = 0;
};

/// Knobs of the client commit protocol. Defaults reproduce the paper's
/// configuration; ablation benches override individual fields.
struct ClientOptions {
  Protocol protocol = Protocol::kPaxosCP;
  /// Maximum number of promotions before giving up (-1 = unlimited, as in
  /// the paper's evaluation).
  int promotion_cap = -1;
  /// Per-message timeout (paper: two seconds).
  TimeMicros rpc_timeout = 2 * kSecond;
  /// Randomized retry backoff bounds (Algorithm 2: "sleep for random time
  /// period").
  TimeMicros backoff_min = 5 * kMillisecond;
  TimeMicros backoff_max = 50 * kMillisecond;
  /// Leader-per-log-position fast path (paper §4.1). On by default, as in
  /// the paper's prototype.
  bool leader_optimization = true;
  paxos::CombinePolicy combine;
  /// How long to wait for prepare/accept responses.
  net::WaitPolicy wait_policy = net::WaitPolicy::kAll;
  TimeMicros quorum_grace = 0;  // for WaitPolicy::kQuorumEarly
  /// Safety valve: give up with Unavailable after this many prepare rounds
  /// for a single log position.
  int max_rounds_per_position = 32;
  /// Fault-injection hook (D8, tests/chaos only): the coordinator of a
  /// cross-group transaction crashes — abandons the commit, reporting
  /// kUnknownOutcome, without proposing any decide — once this many
  /// prepares have been decided. -1 = never. This is how the harness
  /// creates the "coordinator dies between prepare and decide" window
  /// that 2PC recovery must close.
  int crash_after_prepares = -1;
  /// Cross-group fan-out (D9): begin legs, Phase-1 prepares, and Phase-2
  /// decide propagation run concurrently (joined with sim::Gather), so a
  /// cross commit costs ~flat wide-area rounds regardless of participant
  /// count. Off restores the sequential walk in sorted group order —
  /// kept for tests that need the exact partial-prepare windows of a
  /// one-group-at-a-time coordinator.
  bool parallel_commit = true;
};

/// True if `txn` reads any item written by a transaction in `winners` — the
/// promotion conflict check (paper §5): a losing transaction may only be
/// promoted past entries whose writes it did not read.
bool PromotionConflicts(const wal::TxnRecord& txn,
                        const wal::LogEntry& winners);

/// Items both read by `txn` and written by `winners` (diagnostics/tests).
std::vector<wal::ItemId> ConflictingItems(const wal::TxnRecord& txn,
                                          const wal::LogEntry& winners);

}  // namespace paxoscp::txn
