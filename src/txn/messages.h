// Wire messages exchanged between the Transaction Client and the
// Transaction Services (paper Figure 3): begin/read on the transaction
// path, prepare/accept/apply for the Paxos commit protocol, plus the
// leader-claim message of the per-log-position leader optimization.
//
// Messages travel through net::Network as std::any holding a
// ServiceRequest / ServiceResponse variant.
#pragma once

#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "paxos/acceptor.h"
#include "paxos/ballot.h"
#include "wal/log.h"
#include "wal/log_entry.h"

namespace paxoscp::txn {

/// begin(groupKey): fetch the read position (paper transaction protocol
/// step 1). The response also names the leader for the next log position
/// (the datacenter that won the last decided entry).
///
/// `cross` marks a cross-group begin (D8): the read position is then the
/// replica's *contiguous* frontier (still held below pending prepares), so
/// the commit-order watermark returned alongside provably covers every
/// prepare in the log prefix the transaction will read under.
struct BeginRequest {
  std::string group;
  bool cross = false;
};
struct BeginResponse {
  LogPos read_pos = 0;
  DcId leader_dc = kNoDc;
  /// Cross-group begins only: max cross_ts over the cross prepares this
  /// replica has seen. A new cross transaction picks a cross_ts strictly
  /// above every participant's watermark, so it sorts after all of them
  /// (the (cross_ts, id) tie-break only ever arbitrates between
  /// concurrent transactions that drew the same fresh timestamp).
  uint64_t max_cross_ts = 0;
};

/// queryCross(groupKey, txn): cross-group transaction status at one
/// replica — used by the stateless 2PC recovery path (D8) to locate a
/// pending transaction's participant list and learn its canonical
/// decision. `decision_canonical` is true only when the replica's log is
/// contiguous through the decide position, which makes its (lowest-seen)
/// decision marker provably the lowest decide in the log.
struct QueryCrossRequest {
  std::string group;
  TxnId txn = 0;
};
struct QueryCrossResponse {
  bool has_prepare = false;
  LogPos prepare_pos = 0;
  uint64_t cross_ts = 0;
  std::vector<std::string> participants;
  bool has_decision = false;
  bool decision_commit = false;
  bool decision_canonical = false;
  /// The replica's safe read position (floor for recovery decide walks).
  LogPos safe_pos = 0;
};

/// read(groupKey, key): snapshot read at the transaction's read position
/// (step 2). The service catches its log up through read_pos first.
struct ReadRequest {
  std::string group;
  wal::ItemId item;
  LogPos read_pos = 0;
};
struct ReadResponse {
  Status status;
  wal::ItemRead read;
};

/// readRow(groupKey, row): batched snapshot read of every attribute of one
/// row at the transaction's read position (one RPC instead of one per
/// attribute; backs Txn::ReadRow). Provenance shadow attributes are
/// decoded into per-attribute ItemReads, never exposed raw.
struct ReadRowRequest {
  std::string group;
  std::string row;
  LogPos read_pos = 0;
};
struct ReadRowResponse {
  Status status;
  /// (attribute, read) pairs for every value attribute of the row.
  std::vector<std::pair<std::string, wal::ItemRead>> attrs;
};

/// Paxos prepare (Algorithm 1, receive(cid, prepare, propNum)).
struct PrepareRequest {
  std::string group;
  LogPos pos = 0;
  paxos::Ballot ballot;
};
struct PrepareResponse {
  paxos::PrepareResult result;
};

/// Paxos accept (Algorithm 1, receive(cid, accept, propNum, value)).
struct AcceptRequest {
  std::string group;
  LogPos pos = 0;
  paxos::Ballot ballot;
  wal::LogEntry value;
};
struct AcceptResponse {
  paxos::AcceptResult result;
};

/// Paxos apply (Algorithm 1, receive(cid, apply, propNum, value)).
struct ApplyRequest {
  std::string group;
  LogPos pos = 0;
  paxos::Ballot ballot;
  wal::LogEntry value;
};
struct ApplyResponse {
  bool ok = false;
};

/// Leader fast-path claim (paper §4.1): the first claimant of a position at
/// the leader datacenter may skip the prepare phase and use ballot round 0.
struct ClaimLeaderRequest {
  std::string group;
  LogPos pos = 0;
};
struct ClaimLeaderResponse {
  bool granted = false;
};

using ServiceRequest =
    std::variant<BeginRequest, ReadRequest, ReadRowRequest, PrepareRequest,
                 AcceptRequest, ApplyRequest, ClaimLeaderRequest,
                 QueryCrossRequest>;
using ServiceResponse =
    std::variant<BeginResponse, ReadResponse, ReadRowResponse,
                 PrepareResponse, AcceptResponse, ApplyResponse,
                 ClaimLeaderResponse, QueryCrossResponse>;

/// Human-readable message-type name (for traces and message accounting).
const char* RequestName(const ServiceRequest& request);

}  // namespace paxoscp::txn
