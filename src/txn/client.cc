#include "txn/client.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "paxos/value_selection.h"

namespace paxoscp::txn {

TransactionClient::TransactionClient(net::Network* network, DcId home,
                                     const ClientOptions& options,
                                     uint32_t client_uid, uint64_t seed)
    : network_(network),
      sim_(network->simulator()),
      home_(home),
      options_(options),
      rng_(seed),
      client_uid_(client_uid) {
  const int d = network_->num_datacenters();
  all_dcs_.resize(d);
  std::iota(all_dcs_.begin(), all_dcs_.end(), 0);
  majority_ = d / 2 + 1;
}

TimeMicros TransactionClient::RandomBackoff() {
  return rng_.UniformRange(options_.backoff_min, options_.backoff_max);
}

TimeMicros TransactionClient::RandomBackoffIn(TimeMicros lo, TimeMicros hi) {
  return rng_.UniformRange(lo, hi);
}

void TransactionClient::ReleaseGroup(const std::string& group) {
  active_groups_.erase(group);
}

sim::Coro<net::CallResult> TransactionClient::CallWithFailover(
    const ServiceRequest* request) {
  // Home datacenter first (the paper's locality optimization), then every
  // other Transaction Service until one answers.
  net::CallResult last{Status::Unavailable("no datacenters"), {}};
  for (int attempt = 0; attempt < network_->num_datacenters(); ++attempt) {
    const DcId target = (home_ + attempt) % network_->num_datacenters();
    const std::any payload(*request);
    last = co_await network_->Call(home_, target, payload,
                                   options_.rpc_timeout);
    if (last.status.ok()) co_return last;
  }
  co_return last;
}

sim::Coro<net::BroadcastResult> TransactionClient::BroadcastToAll(
    const ServiceRequest* request) {
  net::BroadcastOptions bopts;
  bopts.policy = options_.wait_policy;
  bopts.quorum = majority_;
  bopts.grace = options_.quorum_grace;
  bopts.timeout = options_.rpc_timeout;
  const std::any payload(*request);
  co_return co_await network_->Broadcast(home_, all_dcs_, payload, bopts);
}

sim::Coro<Txn> TransactionClient::BeginTxn(std::string group) {
  if (active_groups_.count(group) > 0) {
    co_return Txn(Status::FailedPrecondition(
        "client already has an active transaction on group '" + group + "'"));
  }
  active_groups_.insert(group);
  ServiceRequest begin_request = BeginRequest{group};
  net::CallResult result = co_await CallWithFailover(&begin_request);
  if (!result.status.ok()) {
    active_groups_.erase(group);
    co_return Txn(result.status);
  }
  const auto& response = std::any_cast<const ServiceResponse&>(result.response);
  const auto& begin = std::get<BeginResponse>(response);

  auto state = std::make_unique<TxnState>();
  state->txn.group = std::move(group);
  state->txn.id = MakeTxnId(
      home_, (static_cast<uint64_t>(client_uid_) << 24) | (next_seq_++));
  state->txn.read_pos = begin.read_pos;
  state->txn.leader_dc = begin.leader_dc;
  co_return Txn(this, std::move(state));
}

sim::Coro<Result<std::string>> TransactionClient::ReadItem(
    TxnState* state, std::string row, std::string attribute) {
  const wal::ItemId item{row, attribute};

  // (A1) read-own-writes from the local buffer.
  std::string buffered;
  if (state->txn.Read(item, &buffered)) co_return buffered;

  // Repeated snapshot reads return the cached first observation (the
  // snapshot cannot change: all reads use one read position, property A2).
  if (auto cached = state->read_cache.find(item);
      cached != state->read_cache.end()) {
    co_return cached->second;
  }

  ServiceRequest read_request =
      ReadRequest{state->txn.group, item, state->txn.read_pos};
  net::CallResult result = co_await CallWithFailover(&read_request);
  if (!result.status.ok()) co_return result.status;
  const auto& response = std::any_cast<const ServiceResponse&>(result.response);
  const auto& read = std::get<ReadResponse>(response);
  if (!read.status.ok()) co_return read.status;

  // Record the read (with observed provenance) in the read set.
  if (!state->txn.HasRecordedRead(item)) {
    state->txn.reads.push_back(wal::ReadRecord{item, read.read.writer,
                                               read.read.written_pos});
  }
  state->read_cache[item] = read.read.value;
  co_return read.read.value;
}

sim::Coro<Result<kvstore::AttributeMap>> TransactionClient::ReadRowItems(
    TxnState* state, std::string row) {
  ServiceRequest read_request =
      ReadRowRequest{state->txn.group, row, state->txn.read_pos};
  net::CallResult result = co_await CallWithFailover(&read_request);
  if (!result.status.ok()) co_return result.status;
  const auto& response = std::any_cast<const ServiceResponse&>(result.response);
  const auto& read = std::get<ReadRowResponse>(response);
  if (!read.status.ok()) co_return read.status;

  kvstore::AttributeMap out;
  for (const auto& [attribute, item_read] : read.attrs) {
    const wal::ItemId item{row, attribute};
    // (A1) attributes this transaction already wrote are served from the
    // buffer (the overlay loop below supplies the value) and never enter
    // the read set.
    std::string buffered;
    if (state->txn.Read(item, &buffered)) continue;
    if (!state->txn.HasRecordedRead(item)) {
      state->txn.reads.push_back(
          wal::ReadRecord{item, item_read.writer, item_read.written_pos});
    }
    state->read_cache[item] = item_read.value;
    out[attribute] = item_read.value;
  }
  // Buffered writes of attributes absent from the snapshot still belong
  // to the row this transaction observes.
  for (const auto& [item, value] : state->txn.writes) {
    if (item.row == row) out[item.attribute] = value;
  }
  // Reading the whole row also observes which attributes exist, so record
  // a row-level predicate read: a concurrent transaction creating an
  // attribute this one saw as absent is a genuine conflict (phantom
  // protection; TxnRecord::Writes matches it against any write to the
  // row). The single-item path gets this for free by recording absent
  // reads with provenance 0/0.
  const wal::ItemId row_predicate{row, wal::kWholeRowAttribute};
  if (!state->txn.HasRecordedRead(row_predicate)) {
    state->txn.reads.push_back(wal::ReadRecord{row_predicate, 0, 0});
  }
  co_return out;
}

sim::Coro<CommitResult> TransactionClient::CommitTxn(TxnState* state) {
  CommitResult result;
  ActiveTxn txn = std::move(state->txn);
  const TimeMicros start = sim_->Now();

  // Read-only transactions commit automatically with no replication
  // (paper §2.2: "If the transaction is read-only, commit automatically
  // succeeds, and no communication with the Transaction Service is
  // needed").
  if (txn.writes.empty()) {
    result.status = Status::OK();
    result.committed = true;
    result.read_only = true;
    result.latency = sim_->Now() - start;
    co_return result;
  }

  const wal::TxnRecord record = txn.ToRecord(home_);
  wal::LogEntry own;
  own.txns.push_back(record);
  own.winner_dc = home_;

  LogPos pos = txn.read_pos + 1;  // commit position = read position + 1
  DcId leader = txn.leader_dc;

  for (;;) {
    InstanceOutcome outcome =
        co_await RunInstance(txn.group, pos, &own, leader, &result);
    if (outcome.kind == InstanceOutcome::Kind::kUnavailable) {
      result.status =
          Status::Unavailable("commit protocol could not reach a quorum");
      co_return result;
    }
    if (outcome.kind == InstanceOutcome::Kind::kWon ||
        outcome.decided.ContainsRecord(record.id, record.kind)) {
      result.status = Status::OK();
      result.committed = true;
      result.position = pos;
      result.combined_others =
          static_cast<int>(outcome.decided.txns.size()) - 1;
      result.committed_via_other = outcome.decided.winner_dc != home_;
      result.latency = sim_->Now() - start;
      co_return result;
    }

    // Lost the position. Basic Paxos aborts here ("All other competing
    // transactions receive an abort response", paper §4.1).
    if (options_.protocol == Protocol::kBasicPaxos) {
      result.status = Status::Aborted("lost log position " +
                                      std::to_string(pos));
      result.latency = sim_->Now() - start;
      co_return result;
    }
    // Paxos-CP promotion (§5): retry at the next position unless we read
    // something the winners wrote.
    if (PromotionConflicts(record, outcome.decided)) {
      result.status = Status::Aborted(
          "read-write conflict with winner of position " +
          std::to_string(pos));
      result.latency = sim_->Now() - start;
      co_return result;
    }
    if (options_.promotion_cap >= 0 &&
        result.promotions >= options_.promotion_cap) {
      result.status = Status::Aborted("promotion cap reached at position " +
                                      std::to_string(pos));
      result.latency = sim_->Now() - start;
      co_return result;
    }
    ++result.promotions;
    leader = outcome.decided.winner_dc;
    ++pos;
  }
}

sim::Coro<std::optional<TransactionClient::InstanceOutcome>>
TransactionClient::AcceptAndApply(std::string group, LogPos pos,
                                  paxos::Ballot ballot,
                                  const wal::LogEntry* proposal, TxnId own_id,
                                  wal::RecordKind own_kind,
                                  paxos::Ballot* max_seen) {
  ServiceRequest accept_request = AcceptRequest{group, pos, ballot, *proposal};
  net::BroadcastResult aresults = co_await BroadcastToAll(&accept_request);
  int accepted = 0;
  for (net::TargetResult& tr : aresults) {
    if (!tr.status.ok()) continue;
    const auto& response = std::any_cast<const ServiceResponse&>(tr.response);
    const paxos::AcceptResult& ar = std::get<AcceptResponse>(response).result;
    if (ar.accepted) {
      ++accepted;
    } else {
      *max_seen = std::max(*max_seen, ar.next_bal);
    }
  }
  if (accepted < majority_) co_return std::nullopt;

  // Decided. Send apply to every replica (Step 5; fire-and-forget — the
  // client does not need the acknowledgements to report its outcome).
  net::BroadcastOptions bopts;
  bopts.timeout = options_.rpc_timeout;
  network_->Broadcast(home_, all_dcs_,
                      std::any(ServiceRequest(
                          ApplyRequest{group, pos, ballot, *proposal})),
                      bopts);
  InstanceOutcome outcome;
  outcome.kind = proposal->ContainsRecord(own_id, own_kind)
                     ? InstanceOutcome::Kind::kWon
                     : InstanceOutcome::Kind::kLost;
  outcome.decided = *proposal;
  co_return outcome;
}

sim::Coro<TransactionClient::InstanceOutcome> TransactionClient::RunInstance(
    std::string group, LogPos pos, const wal::LogEntry* own, DcId leader_dc,
    CommitResult* stats) {
  const TxnId own_id = own->txns.front().id;
  // Won/lost is judged on (id, kind), not id alone: a recovery daemon's
  // forced-abort decide carries the txn id of the prepare it resolves, and
  // a prepare walk that took such a decide entry for its own landed
  // prepare would commit above a canonical abort (split-brain).
  const wal::RecordKind own_kind = own->txns.front().kind;
  paxos::Ballot max_seen;  // null

  // Leader fast path (§4.1): ask the leader of this position whether we are
  // first; if so, skip the prepare phase and propose with ballot round 0.
  if (options_.leader_optimization) {
    // kNoDc should not happen (begin always names a leader); fall back to
    // the canonical bootstrap leader, never to home_, to preserve the
    // uniqueness of round-0 grants.
    const DcId leader = leader_dc == kNoDc ? 0 : leader_dc;
    const std::any claim_payload(
        ServiceRequest(ClaimLeaderRequest{group, pos}));
    net::CallResult claim = co_await network_->Call(home_, leader,
                                                    claim_payload,
                                                    options_.rpc_timeout);
    if (claim.status.ok()) {
      const auto& response =
          std::any_cast<const ServiceResponse&>(claim.response);
      if (std::get<ClaimLeaderResponse>(response).granted) {
        std::optional<InstanceOutcome> outcome = co_await AcceptAndApply(
            group, pos, paxos::Ballot{0, home_}, own, own_id, own_kind,
            &max_seen);
        if (outcome.has_value()) {
          stats->fast_path = true;
          co_return *outcome;
        }
        // Contention: fall through to the full protocol.
      }
    }
  }

  for (int round = 0; round < options_.max_rounds_per_position; ++round) {
    ++stats->prepare_rounds;
    const paxos::Ballot ballot = paxos::NextBallot(max_seen, home_);

    // Prepare phase (Step 1/2).
    ServiceRequest prepare_request = PrepareRequest{group, pos, ballot};
    net::BroadcastResult presults =
        co_await BroadcastToAll(&prepare_request);
    std::vector<paxos::LastVote> votes;
    std::optional<wal::LogEntry> decided;
    int promised = 0;
    for (net::TargetResult& tr : presults) {
      if (!tr.status.ok()) continue;
      const auto& response =
          std::any_cast<const ServiceResponse&>(tr.response);
      const paxos::PrepareResult& pr =
          std::get<PrepareResponse>(response).result;
      if (pr.decided.has_value() && !decided.has_value()) decided = pr.decided;
      max_seen = std::max(max_seen, pr.next_bal);
      if (pr.promised) {
        ++promised;
        votes.push_back(paxos::LastVote{tr.dc, pr.vote_ballot, pr.vote_value});
      }
    }

    // Catch-up short circuit: a replica already knows the decided value.
    if (decided.has_value()) {
      InstanceOutcome outcome;
      outcome.kind = decided->ContainsRecord(own_id, own_kind)
                         ? InstanceOutcome::Kind::kWon
                         : InstanceOutcome::Kind::kLost;
      outcome.decided = *std::move(decided);
      co_return outcome;
    }

    if (promised < majority_) {
      co_await sim::SleepFor(sim_, RandomBackoff());
      continue;
    }

    // Choose the value to propose (Step 3).
    wal::LogEntry proposal;
    if (options_.protocol == Protocol::kPaxosCP) {
      paxos::SelectionDecision decision = paxos::EnhancedFindWinningValue(
          votes, promised, network_->num_datacenters(), *own,
          options_.combine);
      if (decision.kind == paxos::SelectionKind::kLost) {
        // A competing value certainly won; stop before the accept phase
        // (§5: the promoted client "stops executing the Paxos protocol
        // before sending accept messages for the winning value").
        InstanceOutcome outcome;
        outcome.kind = InstanceOutcome::Kind::kLost;
        outcome.decided = std::move(decision.value);
        co_return outcome;
      }
      proposal = std::move(decision.value);
    } else {
      std::optional<wal::LogEntry> winning = paxos::FindWinningValue(votes);
      proposal = winning.has_value() ? *std::move(winning) : *own;
    }

    // Accept + apply (Steps 3-5).
    std::optional<InstanceOutcome> outcome = co_await AcceptAndApply(
        group, pos, ballot, &proposal, own_id, own_kind, &max_seen);
    if (outcome.has_value()) co_return *outcome;

    co_await sim::SleepFor(sim_, RandomBackoff());
  }

  InstanceOutcome outcome;
  outcome.kind = InstanceOutcome::Kind::kUnavailable;
  co_return outcome;
}

}  // namespace paxoscp::txn
