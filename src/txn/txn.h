// First-class transaction handles (paper §2.2 / §4): `Txn` is a movable
// RAII handle owning the client-side state of one active transaction —
// read position, read set, buffered writes — obtained from
// `Session::Begin(group)`. Dropping an active handle aborts it (an abort
// is purely local: buffered state is discarded, no messages are sent).
//
// `Session` is the per-application-instance entry point: it wraps a
// cluster-owned TransactionClient and adds `RunTransaction`, the retry
// combinator every consumer of the old string-keyed API hand-rolled —
// re-run the body on conflict aborts with randomized backoff, bounded by
// attempts and a virtual-time deadline, and report one unified
// `TxnResult`.
//
// Misuse rules: committing twice or operating on a committed handle is a
// programming error (assert in debug builds, FailedPrecondition in
// release). A moved-from or default-constructed handle is *inert*: every
// operation fails gracefully and destruction is a no-op.
#pragma once

#include <cassert>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "kvstore/store.h"
#include "sim/coro.h"
#include "txn/transaction.h"
#include "wal/log_entry.h"

namespace paxoscp::txn {

class TransactionClient;
class Session;
class CrossTxn;
struct CrossTxnResult;

/// Unified transaction-fate taxonomy (paper §2.2/§4 outcomes), collapsing
/// the old Status / CommitResult::committed / read_only triage:
///   kCommitted      — read/write transaction decided into the log.
///   kReadOnly       — committed locally with no replication (paper §2.2:
///                     read-only commit automatically succeeds).
///   kConflict       — aborted by concurrency control (lost its log
///                     position to a conflicting transaction). Retryable:
///                     the transaction certainly did not commit.
///   kUnavailable    — the attempt never reached a commit decision (begin
///                     or read could not be served anywhere, or the body
///                     failed). The transaction certainly did not commit.
///   kUnknownOutcome — the commit protocol started but the client gave up
///                     without learning the decision (outage / no quorum).
///                     The cohort may still have decided the transaction;
///                     retrying could commit it twice.
enum class TxnOutcome {
  kCommitted,
  kReadOnly,
  kConflict,
  kUnavailable,
  kUnknownOutcome,
};

const char* OutcomeName(TxnOutcome outcome);

/// Maps a finished commit protocol run onto the taxonomy. Never returns
/// kUnavailable: a commit that ran but produced no decision is
/// kUnknownOutcome (the begin/read paths, which cannot have proposed
/// anything, are the only sources of kUnavailable).
TxnOutcome ClassifyCommit(const CommitResult& result);

/// Client-side state of one active transaction, owned by its `Txn` handle
/// (this is the payload the old API kept in a string-keyed map inside the
/// client). Heap-allocated so the address stays stable across handle
/// moves — in-flight operation coroutines hold a pointer to it.
struct TxnState {
  ActiveTxn txn;
  /// Cache of snapshot values already read (for repeated reads).
  std::map<wal::ItemId, std::string> read_cache;
};

/// Movable RAII handle for one active transaction on one group.
class Txn {
 public:
  /// Inert handle: every operation returns FailedPrecondition.
  Txn() = default;
  /// Aborts the transaction if still active (local state drop, no
  /// messages — lost client state is an implicit abort, paper §2.2).
  ~Txn();
  Txn(Txn&& other) noexcept;
  Txn& operator=(Txn&& other) noexcept;
  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;

  /// True while the handle owns a live, uncommitted transaction.
  bool active() const { return phase_ == Phase::kActive; }
  /// Why Session::Begin produced an inactive handle (OK when active).
  const Status& begin_status() const { return begin_status_; }

  TxnId id() const;
  LogPos read_pos() const;
  const std::string& group() const;
  /// Number of recorded snapshot reads (test hook; buffered-write reads
  /// never enter the read set, property A1).
  size_t read_set_size() const;

  /// Snapshot read at the transaction's read position. Reads of items the
  /// transaction already wrote return the buffered value (property A1);
  /// all other reads observe the read-position snapshot (property A2).
  /// A never-written item reads as the empty string.
  sim::Coro<Result<std::string>> Read(std::string row, std::string attribute);

  /// Batched snapshot read of every attribute of `row` in one RPC,
  /// overlaid with this transaction's buffered writes. Every attribute
  /// served from the snapshot enters the read set, plus one whole-row
  /// predicate read (wal::kWholeRowAttribute): reading the row observes
  /// which attributes exist, so a concurrent creation of an attribute
  /// this transaction saw as absent is a detected conflict.
  sim::Coro<Result<kvstore::AttributeMap>> ReadRow(std::string row);

  /// Buffers a write locally (paper step 3: writes are handled locally by
  /// the Transaction Client until commit).
  Status Write(const std::string& row, const std::string& attribute,
               std::string value);

  /// Buffers one write per attribute of `attributes`.
  Status WriteRow(const std::string& row,
                  const kvstore::AttributeMap& attributes);

  /// Runs the commit protocol. Read-only transactions commit immediately
  /// with no messages. The handle is finished afterwards: any further
  /// operation (including a second Commit) is a programming error. The
  /// returned coroutine must be awaited immediately.
  sim::Coro<CommitResult> Commit();

  /// Discards the transaction without committing (idempotent on inert
  /// handles; a programming error on finished ones).
  void Abort();

 private:
  friend class TransactionClient;
  friend class Session;

  enum class Phase { kInert, kActive, kFinished };

  /// Inert handle carrying the begin failure.
  explicit Txn(Status begin_error) : begin_status_(std::move(begin_error)) {}
  /// Active handle (built by TransactionClient::BeginTxn).
  Txn(TransactionClient* client, std::unique_ptr<TxnState> state);

  /// Releases the per-group active slot and drops local state.
  void Release();
  /// Asserts the handle is not being used after Commit/Abort; returns
  /// whether it is usable (kActive).
  bool Usable(const char* op) const;

  TransactionClient* client_ = nullptr;
  std::unique_ptr<TxnState> state_;
  Phase phase_ = Phase::kInert;
  Status begin_status_;
};

/// Retry bounds for Session::RunTransaction. Defaults follow the paper's
/// application model: conflict aborts are expected under optimistic
/// concurrency control and are retried from a fresh snapshot with
/// randomized backoff.
struct RetryPolicy {
  // User-declared ctor keeps this a non-aggregate: aggregates must never
  // be passed to coroutines by value (see the parameter rules in
  // txn/client.h).
  RetryPolicy() = default;

  /// Total begin..commit attempts before giving up with kConflict.
  int max_attempts = 8;
  /// Virtual-time budget measured from the first attempt (0 = none): no
  /// new attempt starts once the deadline has passed.
  TimeMicros deadline = 0;
  /// Randomized backoff between conflicting attempts.
  TimeMicros backoff_min = 20 * kMillisecond;
  TimeMicros backoff_max = 200 * kMillisecond;
};

/// Unified result of Session::RunTransaction.
struct TxnResult {
  TxnOutcome outcome = TxnOutcome::kUnavailable;
  /// Detail behind the outcome (OK iff committed()).
  Status status;
  /// Total begin..commit attempts made.
  int attempts = 0;
  /// Bookkeeping of the last commit protocol run (promotions, latency,
  /// combination — the metrics the paper's evaluation reports).
  CommitResult commit;

  bool committed() const {
    return outcome == TxnOutcome::kCommitted ||
           outcome == TxnOutcome::kReadOnly;
  }
};

/// The transaction body run by Session::RunTransaction: performs reads and
/// writes through the handle and returns OK to request a commit, or any
/// error to abort the attempt (body errors are never retried).
using TxnBody = std::function<sim::Coro<Status>(Txn*)>;

/// Cross-group body (see txn/cross.h for the handle).
using CrossTxnBody = std::function<sim::Coro<Status>(CrossTxn*)>;

/// Per-application-instance session: wraps a cluster-owned
/// TransactionClient (see core::Cluster::CreateSession / Db::Session —
/// the client outlives the session). Lightweight and movable; a session
/// may run one transaction per group at a time (paper §2.2), on any
/// number of groups concurrently.
class Session {
 public:
  Session() = default;
  explicit Session(TransactionClient* client) : client_(client) {}

  bool valid() const { return client_ != nullptr; }
  DcId home() const;
  TransactionClient* client() const { return client_; }

  /// Starts a transaction on `group`: fetches the read position from the
  /// local Transaction Service (failing over to remote ones, paper
  /// step 1). The returned handle is inactive — with begin_status()
  /// explaining why — if the slot is taken or no service answered.
  sim::Coro<Txn> Begin(std::string group);

  /// Runs `body` as a serializable transaction on `group`, retrying
  /// conflict aborts (fresh snapshot each attempt, randomized backoff)
  /// within `retry`'s attempt/deadline bounds. Infrastructure failures
  /// (kUnavailable, kUnknownOutcome) are returned immediately — retrying
  /// an unknown outcome could commit the transaction twice.
  sim::Coro<TxnResult> RunTransaction(std::string group, TxnBody body,
                                      RetryPolicy retry = {});

  /// Starts a cross-group transaction spanning `groups` (D8): one leg —
  /// read position, read set, buffered writes — per group, committed via
  /// 2PC over the participants' Paxos-CP logs (txn/cross.h). Requires
  /// Protocol::kPaxosCP; the returned handle is inactive (with
  /// begin_status() explaining why) if any group's slot is taken, any
  /// begin failed, or the protocol is wrong.
  sim::Coro<CrossTxn> BeginCross(std::vector<std::string> groups);

  /// Cross-group overload of the retry combinator: runs `body` over a
  /// fresh BeginCross(groups) per attempt, retrying conflict aborts
  /// (including commit-order aborts) under the same policy as the
  /// single-group overload. kUnknownOutcome is never retried.
  sim::Coro<CrossTxnResult> RunTransaction(std::vector<std::string> groups,
                                           CrossTxnBody body,
                                           RetryPolicy retry = {});

 private:
  /// Immediately-inactive handles for misuse of an invalid session.
  static sim::Coro<Txn> FailedBegin(Status status);
  static sim::Coro<CrossTxn> FailedBeginCross(Status status);

  TransactionClient* client_ = nullptr;
};

}  // namespace paxoscp::txn
