// Cross-group 2PC over Paxos-CP (design note D8): the CrossTxn handle, the
// coordinator state machine (TransactionClient::BeginCrossTxn /
// CommitCrossTxn / ProposeDecide), stateless recovery, and the Session
// entry points.
#include "txn/cross.h"

#include <algorithm>
#include <any>
#include <utility>

#include "common/logging.h"
#include "txn/client.h"

namespace paxoscp::txn {

namespace {

Status InertError(const char* op) {
  return Status::FailedPrecondition(
      std::string("inert cross-group transaction handle: ") + op +
      " requires an active transaction");
}

sim::Coro<Result<std::string>> FailedRead(Status status) {
  co_return Result<std::string>(std::move(status));
}

sim::Coro<CrossCommitResult> FailedCommit(Status status) {
  CrossCommitResult result;
  result.status = std::move(status);
  co_return result;
}

/// Shared commit order of cross-group transactions: (cross_ts, id),
/// lexicographic. Committed prepares must appear in every participant
/// log in increasing order of this key.
bool OrderedAfter(uint64_t ts_a, TxnId id_a, uint64_t ts_b, TxnId id_b) {
  if (ts_a != ts_b) return ts_a > ts_b;
  return id_a > id_b;
}

/// True if `entry` contains a cross prepare (other than `self`) that is
/// younger than (ordered after) the (ts, id) key — meaning `self` landing
/// at or after this entry would violate the shared commit order.
bool HasYoungerPrepare(const wal::LogEntry& entry, uint64_t ts, TxnId id) {
  for (const wal::TxnRecord& t : entry.txns) {
    if (t.kind != wal::RecordKind::kPrepare || t.id == id) continue;
    if (OrderedAfter(t.cross_ts, t.id, ts, id)) return true;
  }
  return false;
}

/// True if, within `entry`, a younger cross prepare precedes `id`'s own
/// prepare record in list order (combination can order records freely;
/// a transaction whose record landed behind a younger one must abort).
bool OwnPrecededByYounger(const wal::LogEntry& entry, uint64_t ts, TxnId id) {
  for (const wal::TxnRecord& t : entry.txns) {
    if (t.kind == wal::RecordKind::kPrepare && t.id == id) return false;
    if (t.kind == wal::RecordKind::kPrepare &&
        OrderedAfter(t.cross_ts, t.id, ts, id)) {
      return true;
    }
  }
  return false;
}

}  // namespace

TxnOutcome ClassifyCrossCommit(const CrossCommitResult& result) {
  if (result.committed) return TxnOutcome::kCommitted;
  if (result.unknown) return TxnOutcome::kUnknownOutcome;
  if (result.status.IsAborted()) return TxnOutcome::kConflict;
  return TxnOutcome::kUnknownOutcome;
}

// -------------------------------------------------------------- CrossTxn

CrossTxn::CrossTxn(TransactionClient* client,
                   std::unique_ptr<CrossTxnState> state)
    : client_(client), state_(std::move(state)), phase_(Phase::kActive) {}

CrossTxn::~CrossTxn() {
  if (phase_ == Phase::kActive) Release();
}

CrossTxn::CrossTxn(CrossTxn&& other) noexcept
    : client_(std::exchange(other.client_, nullptr)),
      state_(std::move(other.state_)),
      phase_(std::exchange(other.phase_, Phase::kInert)),
      begin_status_(std::move(other.begin_status_)) {}

CrossTxn& CrossTxn::operator=(CrossTxn&& other) noexcept {
  if (this != &other) {
    if (phase_ == Phase::kActive) Release();
    client_ = std::exchange(other.client_, nullptr);
    state_ = std::move(other.state_);
    phase_ = std::exchange(other.phase_, Phase::kInert);
    begin_status_ = std::move(other.begin_status_);
  }
  return *this;
}

void CrossTxn::Release() {
  for (const std::string& group : state_->groups) {
    client_->ReleaseGroup(group);
  }
  state_.reset();
  phase_ = Phase::kFinished;
}

bool CrossTxn::Usable(const char* op) const {
  (void)op;
  assert(phase_ != Phase::kFinished &&
         "use of a cross-group transaction handle after Commit/Abort");
  return phase_ == Phase::kActive;
}

TxnId CrossTxn::id() const { return active() ? state_->id : 0; }

uint64_t CrossTxn::cross_ts() const { return active() ? state_->cross_ts : 0; }

const std::vector<std::string>& CrossTxn::groups() const {
  static const std::vector<std::string> kEmpty;
  return active() ? state_->groups : kEmpty;
}

LogPos CrossTxn::read_pos(const std::string& group) const {
  if (!active()) return 0;
  auto it = state_->legs.find(group);
  return it == state_->legs.end() ? 0 : it->second.txn.read_pos;
}

sim::Coro<Result<std::string>> CrossTxn::Read(std::string group,
                                              std::string row,
                                              std::string attribute) {
  if (!Usable("Read")) return FailedRead(InertError("Read"));
  if (wal::IsReservedAttribute(attribute)) {
    return FailedRead(wal::ReservedAttributeError());
  }
  auto it = state_->legs.find(group);
  if (it == state_->legs.end()) {
    return FailedRead(Status::InvalidArgument(
        "group '" + group + "' is not a participant of this transaction"));
  }
  // Forwarded like Txn::Read: the awaitable binds the heap-stable leg
  // state, never `this`.
  return client_->ReadItem(&it->second, std::move(row), std::move(attribute));
}

Status CrossTxn::Write(const std::string& group, const std::string& row,
                       const std::string& attribute, std::string value) {
  if (!Usable("Write")) return InertError("Write");
  if (wal::IsReservedAttribute(attribute)) {
    return wal::ReservedAttributeError();
  }
  auto it = state_->legs.find(group);
  if (it == state_->legs.end()) {
    return Status::InvalidArgument(
        "group '" + group + "' is not a participant of this transaction");
  }
  it->second.txn.writes[wal::ItemId{row, attribute}] = std::move(value);
  return Status::OK();
}

sim::Coro<CrossCommitResult> CrossTxn::Commit() {
  if (!Usable("Commit")) return FailedCommit(InertError("Commit"));
  // Like Txn::Commit: slots open as soon as the protocol starts; the
  // handle keeps the state alive while the caller awaits.
  for (const std::string& group : state_->groups) {
    client_->ReleaseGroup(group);
  }
  phase_ = Phase::kFinished;
  return client_->CommitCrossTxn(state_.get());
}

void CrossTxn::Abort() {
  if (phase_ == Phase::kInert) return;
  assert(phase_ == Phase::kActive &&
         "Abort of a cross-group transaction handle after Commit/Abort");
  if (phase_ == Phase::kActive) Release();
}

// ------------------------------------------------- client: begin + 2PC

sim::Coro<CrossTxn> TransactionClient::BeginCrossTxn(
    std::vector<std::string> groups) {
  if (options_.protocol != Protocol::kPaxosCP) {
    co_return CrossTxn(Status::InvalidArgument(
        "cross-group transactions require Paxos-CP (promotion drives both "
        "the prepare walk and the decide walk)"));
  }
  std::sort(groups.begin(), groups.end());
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  if (groups.empty()) {
    co_return CrossTxn(
        Status::InvalidArgument("cross-group begin needs at least one group"));
  }
  for (const std::string& group : groups) {
    if (active_groups_.count(group) > 0) {
      co_return CrossTxn(Status::FailedPrecondition(
          "client already has an active transaction on group '" + group +
          "'"));
    }
  }
  for (const std::string& group : groups) active_groups_.insert(group);

  auto state = std::make_unique<CrossTxnState>();
  state->id = MakeTxnId(
      home_, (static_cast<uint64_t>(client_uid_) << 24) | (next_seq_++));
  state->groups = std::move(groups);
  // Commit-order timestamp: start from virtual now, then raise above every
  // participant's watermark so this transaction sorts after every prepare
  // already in any prefix it will read under.
  uint64_t cross_ts = static_cast<uint64_t>(sim_->Now()) + 1;

  for (const std::string& group : state->groups) {
    ServiceRequest begin_request = BeginRequest{group, /*cross=*/true};
    net::CallResult result = co_await CallWithFailover(&begin_request);
    if (!result.status.ok()) {
      for (const std::string& g : state->groups) active_groups_.erase(g);
      co_return CrossTxn(result.status);
    }
    const auto& response =
        std::any_cast<const ServiceResponse&>(result.response);
    const auto& begin = std::get<BeginResponse>(response);
    TxnState& leg = state->legs[group];
    leg.txn.group = group;
    leg.txn.id = state->id;
    leg.txn.read_pos = begin.read_pos;
    leg.txn.leader_dc = begin.leader_dc;
    if (begin.max_cross_ts >= cross_ts) cross_ts = begin.max_cross_ts + 1;
  }
  state->cross_ts = cross_ts;
  co_return CrossTxn(this, std::move(state));
}

sim::Coro<CrossCommitResult> TransactionClient::CommitCrossTxn(
    CrossTxnState* state) {
  CrossCommitResult result;
  CommitResult scratch;  // per-walk Paxos bookkeeping
  const TimeMicros start = sim_->Now();
  const TxnId id = state->id;
  const uint64_t ts = state->cross_ts;

  // ---- Phase 1: commit a PREPARE record into every participant log.
  // Sequential in sorted group order (deterministic; the latency cost is
  // the price of 2PC). Stops at the first conflict or unknown leg.
  bool conflict = false;
  bool prepare_unknown = false;
  bool coordinator_crashed = false;
  std::string fail_detail;
  std::vector<std::string> attempted;  // groups where a prepare was proposed
  // Fault-injection hook (evaluated before the first leg and after each
  // landed prepare, so partially-prepared crashes — group A prepared,
  // group B never contacted — are reachable): the coordinator walks away
  // mid-2PC, leaving no decide anywhere, for recovery to clean up.
  auto crash_now = [&]() {
    return options_.crash_after_prepares >= 0 &&
           static_cast<int>(result.prepare_positions.size()) >=
               options_.crash_after_prepares;
  };
  for (const std::string& group : state->groups) {
    if (crash_now()) {
      coordinator_crashed = true;
      break;
    }
    TxnState& leg = state->legs[group];
    wal::TxnRecord record = leg.txn.ToRecord(home_);
    record.kind = wal::RecordKind::kPrepare;
    record.cross_ts = ts;
    record.participants = state->groups;
    wal::LogEntry own;
    own.txns.push_back(record);
    own.winner_dc = home_;

    attempted.push_back(group);
    LogPos pos = leg.txn.read_pos + 1;
    DcId leader = leg.txn.leader_dc;
    for (;;) {
      InstanceOutcome outcome =
          co_await RunInstance(group, pos, &own, leader, &scratch);
      if (outcome.kind == InstanceOutcome::Kind::kUnavailable) {
        prepare_unknown = true;
        fail_detail = "prepare on '" + group + "' reached no quorum";
        break;
      }
      if (outcome.kind == InstanceOutcome::Kind::kWon ||
          outcome.decided.ContainsTxn(id)) {
        // Landed (possibly combined into another proposer's entry). A
        // younger prepare ahead of ours *within* the entry still violates
        // the shared commit order — the prepare stays in the log but the
        // transaction must abort (the decide makes it a no-op).
        if (OwnPrecededByYounger(outcome.decided, ts, id)) {
          conflict = true;
          fail_detail = "commit-order violation inside entry " +
                        std::to_string(pos) + " of '" + group + "'";
        }
        result.prepare_positions[group] = pos;
        break;
      }
      // Lost the position. A younger cross prepare already in the log
      // means landing anywhere later would violate the shared order.
      if (HasYoungerPrepare(outcome.decided, ts, id)) {
        conflict = true;
        fail_detail = "younger cross-group prepare at position " +
                      std::to_string(pos) + " of '" + group + "'";
        break;
      }
      if (PromotionConflicts(record, outcome.decided)) {
        conflict = true;
        fail_detail = "read-write conflict with winner of position " +
                      std::to_string(pos) + " in '" + group + "'";
        break;
      }
      ++result.promotions;
      leader = outcome.decided.winner_dc;
      ++pos;
    }
    if (conflict || prepare_unknown) break;
  }
  if (!coordinator_crashed && crash_now()) coordinator_crashed = true;

  if (coordinator_crashed) {
    result.unknown = true;
    result.prepare_rounds = scratch.prepare_rounds;
    result.status = Status::Unavailable(
        "coordinator crashed after " +
        std::to_string(result.prepare_positions.size()) + " of " +
        std::to_string(state->groups.size()) + " prepares");
    result.latency = sim_->Now() - start;
    co_return result;
  }

  // ---- Phase 2: commit the DECIDE into the commit group, adopt the
  // canonical outcome, then propagate it to the other participants.
  // The decision is commit iff every leg prepared cleanly. On any failure
  // the coordinator proposes abort — and since nobody else ever proposes
  // commit, abort is certain even if the decide cannot be delivered now
  // (recovery will land it).
  const bool want_commit = !conflict && !prepare_unknown;
  const std::string& commit_group = state->groups.front();
  LogPos floor = state->legs[commit_group].txn.read_pos + 1;
  if (auto it = result.prepare_positions.find(commit_group);
      it != result.prepare_positions.end()) {
    floor = it->second + 1;
  }
  DecideOutcome decide =
      co_await ProposeDecide(commit_group, floor, id, want_commit, &scratch);

  result.prepare_rounds = scratch.prepare_rounds;
  if (!decide.known) {
    if (want_commit) {
      // The commit decide may or may not have been decided: truly unknown.
      result.unknown = true;
      result.status = Status::Unavailable(
          "cross-group decide reached no quorum; outcome unknown");
    } else {
      result.status =
          Status::Aborted("cross-group transaction aborted (" + fail_detail +
                          "); abort decide not yet delivered");
    }
    result.latency = sim_->Now() - start;
    co_return result;
  }
  result.decide_pos = decide.pos;

  // Propagate the canonical decision to every group where a prepare was
  // (or may later be) in the log. Best effort: an unreachable participant
  // is resolved by recovery against the commit group's canonical decide.
  for (const std::string& group : attempted) {
    if (group == commit_group) continue;
    LogPos gfloor = state->legs[group].txn.read_pos + 1;
    if (auto it = result.prepare_positions.find(group);
        it != result.prepare_positions.end()) {
      gfloor = it->second + 1;
    }
    (void)co_await ProposeDecide(group, gfloor, id, decide.commit, &scratch);
  }
  result.prepare_rounds = scratch.prepare_rounds;

  if (decide.commit) {
    result.committed = true;
    result.status = Status::OK();
  } else if (want_commit) {
    // Overruled: a recovery abort reached the commit group's log first.
    result.status = Status::Aborted(
        "cross-group transaction aborted by recovery before the commit "
        "decide landed");
  } else {
    result.status =
        Status::Aborted("cross-group transaction aborted (" + fail_detail +
                        ")");
  }
  result.latency = sim_->Now() - start;
  co_return result;
}

sim::Coro<TransactionClient::DecideOutcome> TransactionClient::ProposeDecide(
    std::string group, LogPos floor, TxnId id, bool commit,
    CommitResult* stats) {
  wal::TxnRecord record;
  record.id = id;
  record.origin_dc = home_;
  record.kind = wal::RecordKind::kDecide;
  record.commit_decision = commit;
  wal::LogEntry own;
  own.txns.push_back(record);
  own.winner_dc = home_;

  DecideOutcome out;
  LogPos pos = floor;
  DcId leader = kNoDc;
  // Decide records read nothing, so they can promote past any entry; the
  // cap only bounds a runaway walk across a pathologically hot log. It
  // must comfortably exceed any real log length: recovery's forced-abort
  // path can floor at position 1 (commit-group prepare hidden by a
  // partition), and a walk that gives up inside the decided prefix would
  // leave the pending prepare holding the group's read frontier forever.
  constexpr int kMaxDecideWalk = 1 << 16;
  for (int step = 0; step < kMaxDecideWalk; ++step) {
    InstanceOutcome outcome =
        co_await RunInstance(group, pos, &own, leader, stats);
    if (outcome.kind == InstanceOutcome::Kind::kUnavailable) co_return out;
    // First decide for this transaction in the walk — ours or someone
    // else's — is the decision (walks start at or below every possible
    // decide position, so the first one encountered is the lowest).
    if (const wal::TxnRecord* found = outcome.decided.FindDecide(id)) {
      out.known = true;
      out.commit = found->commit_decision;
      out.pos = pos;
      co_return out;
    }
    leader = outcome.decided.winner_dc;
    ++pos;
  }
  co_return out;
}

// ------------------------------------------------------------- recovery

sim::Coro<TransactionClient::CrossQueryResult>
TransactionClient::QueryCrossAll(std::string group, TxnId id) {
  CrossQueryResult out;
  for (int dc = 0; dc < network_->num_datacenters(); ++dc) {
    const std::any payload(ServiceRequest(QueryCrossRequest{group, id}));
    net::CallResult r = co_await network_->Call(
        home_, (home_ + dc) % network_->num_datacenters(), payload,
        options_.rpc_timeout);
    if (!r.status.ok()) continue;
    const auto& resp = std::any_cast<const ServiceResponse&>(r.response);
    const auto& q = std::get<QueryCrossResponse>(resp);
    if (q.has_prepare && !out.has_prepare) {
      out.has_prepare = true;
      out.prepare_pos = q.prepare_pos;
      out.cross_ts = q.cross_ts;
      out.participants = q.participants;
    }
    if (q.has_decision && q.decision_canonical &&
        !out.has_canonical_decision) {
      out.has_canonical_decision = true;
      out.decision_commit = q.decision_commit;
    }
    out.safe_pos = std::max(out.safe_pos, q.safe_pos);
  }
  co_return out;
}

sim::Coro<Status> TransactionClient::RecoverCrossTxn(std::string group,
                                                     TxnId id) {
  CommitResult scratch;
  // 1. Locate the prepare (participant list + commit group). The caller
  // observed it pending in `group`, so some replica there knows it.
  CrossQueryResult at_group = co_await QueryCrossAll(group, id);
  if (!at_group.has_prepare || at_group.participants.empty()) {
    co_return Status::NotFound("no replica knows the prepare of txn " +
                               TxnIdToString(id) + " in group '" + group +
                               "'");
  }
  const std::string commit_group = at_group.participants.front();

  // 2. Learn the canonical decision from the commit group — a replica
  // whose log is contiguous through its decision marker answers
  // authoritatively. (Plain if/else, not a conditional expression: a
  // co_await inside a ternary arm is a temporary-across-suspension
  // hazard under GCC 12 — see the parameter rules in client.h.)
  CrossQueryResult at_cg;
  if (commit_group == group) {
    at_cg = at_group;
  } else {
    at_cg = co_await QueryCrossAll(commit_group, id);
  }
  bool decision_commit = at_cg.decision_commit;

  // 3. No canonical decision anywhere: force abort by proposing an abort
  // decide in the commit group. Whatever decide lands lowest wins — if a
  // slow coordinator's commit decide got there first, the walk adopts it.
  // The floor must be at or below every possible decide position: after
  // the commit-group prepare if it landed, else the log's start (the
  // rare crashed-before-its-first-prepare case).
  if (!at_cg.has_canonical_decision) {
    const LogPos cg_floor = at_cg.has_prepare ? at_cg.prepare_pos + 1 : 1;
    DecideOutcome forced = co_await ProposeDecide(
        commit_group, cg_floor, id, /*commit=*/false, &scratch);
    if (!forced.known) {
      co_return Status::Unavailable(
          "recovery could not decide txn " + TxnIdToString(id) +
          " in commit group '" + commit_group + "'");
    }
    decision_commit = forced.commit;
  }

  // 4. Propagate the canonical decision to every other participant —
  // their own pending prepares unblock on the same decide. Decides in
  // participant groups are idempotent canonical copies, so the walk may
  // start from the participant's frontier (its prepare position, else
  // the safe read position a replica reports) instead of position 1 —
  // no need to find an existing lower decide, only to land one.
  for (const std::string& participant : at_group.participants) {
    if (participant == commit_group) continue;
    CrossQueryResult at_part;
    if (participant == group) {
      at_part = at_group;
    } else {
      at_part = co_await QueryCrossAll(participant, id);
    }
    LogPos floor = 1;
    if (at_part.has_prepare) {
      floor = at_part.prepare_pos + 1;
    } else if (at_part.safe_pos > 0) {
      floor = at_part.safe_pos + 1;
    }
    DecideOutcome propagated = co_await ProposeDecide(
        participant, floor, id, decision_commit, &scratch);
    if (!propagated.known) {
      co_return Status::Unavailable("recovery could not propagate decide of " +
                                    TxnIdToString(id) + " to '" +
                                    participant + "'");
    }
  }
  co_return Status::OK();
}

// -------------------------------------------------------------- Session

sim::Coro<CrossTxn> Session::FailedBeginCross(Status status) {
  co_return CrossTxn(std::move(status));
}

sim::Coro<CrossTxn> Session::BeginCross(std::vector<std::string> groups) {
  if (client_ == nullptr) {
    assert(false && "BeginCross on an invalid (default) Session");
    return FailedBeginCross(Status::FailedPrecondition("invalid session"));
  }
  return client_->BeginCrossTxn(std::move(groups));
}

sim::Coro<CrossTxnResult> Session::RunTransaction(
    std::vector<std::string> groups, CrossTxnBody body, RetryPolicy retry) {
  CrossTxnResult result;
  if (client_ == nullptr) {
    assert(false && "RunTransaction on an invalid (default) Session");
    result.attempts = 1;
    result.status = Status::FailedPrecondition("invalid session");
    co_return result;
  }
  sim::Simulator* sim = client_->simulator();
  const TimeMicros deadline_at =
      retry.deadline > 0 ? sim->Now() + retry.deadline : 0;
  for (;;) {
    ++result.attempts;
    CrossTxn txn = co_await client_->BeginCrossTxn(groups);
    if (!txn.active()) {
      result.outcome = TxnOutcome::kUnavailable;
      result.status = txn.begin_status();
      co_return result;
    }
    Status body_status = co_await body(&txn);
    if (!body_status.ok()) {
      txn.Abort();
      result.outcome = TxnOutcome::kUnavailable;
      result.status = std::move(body_status);
      co_return result;
    }
    result.commit = co_await txn.Commit();
    result.status = result.commit.status;
    result.outcome = ClassifyCrossCommit(result.commit);
    if (result.outcome != TxnOutcome::kConflict) co_return result;
    if (result.attempts >= retry.max_attempts) co_return result;
    const TimeMicros backoff =
        client_->RandomBackoffIn(retry.backoff_min, retry.backoff_max);
    if (deadline_at != 0 && sim->Now() + backoff >= deadline_at) {
      co_return result;
    }
    co_await sim::SleepFor(sim, backoff);
  }
}

}  // namespace paxoscp::txn
