// Cross-group 2PC over Paxos-CP (design note D8): the CrossTxn handle, the
// coordinator state machine (TransactionClient::BeginCrossTxn /
// CommitCrossTxn / ProposeDecide), stateless recovery, and the Session
// entry points.
#include "txn/cross.h"

#include <algorithm>
#include <any>
#include <utility>

#include "common/logging.h"
#include "txn/client.h"
#include "txn/recovery.h"

namespace paxoscp::txn {

namespace {

Status InertError(const char* op) {
  return Status::FailedPrecondition(
      std::string("inert cross-group transaction handle: ") + op +
      " requires an active transaction");
}

sim::Coro<Result<std::string>> FailedRead(Status status) {
  co_return Result<std::string>(std::move(status));
}

sim::Coro<CrossCommitResult> FailedCommit(Status status) {
  CrossCommitResult result;
  result.status = std::move(status);
  co_return result;
}

sim::Coro<std::vector<Result<std::string>>> FailedReadMany(Status status,
                                                           size_t n) {
  std::vector<Result<std::string>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.emplace_back(status);
  co_return out;
}

/// Shared commit order of cross-group transactions: (cross_ts, id),
/// lexicographic. Committed prepares must appear in every participant
/// log in increasing order of this key.
bool OrderedAfter(uint64_t ts_a, TxnId id_a, uint64_t ts_b, TxnId id_b) {
  if (ts_a != ts_b) return ts_a > ts_b;
  return id_a > id_b;
}

/// True if `entry` contains a cross prepare (other than `self`) that is
/// younger than (ordered after) the (ts, id) key — meaning `self` landing
/// at or after this entry would violate the shared commit order.
bool HasYoungerPrepare(const wal::LogEntry& entry, uint64_t ts, TxnId id) {
  for (const wal::TxnRecord& t : entry.txns) {
    if (t.kind != wal::RecordKind::kPrepare || t.id == id) continue;
    if (OrderedAfter(t.cross_ts, t.id, ts, id)) return true;
  }
  return false;
}

/// True if, within `entry`, a younger cross prepare precedes `id`'s own
/// prepare record in list order (combination can order records freely;
/// a transaction whose record landed behind a younger one must abort).
bool OwnPrecededByYounger(const wal::LogEntry& entry, uint64_t ts, TxnId id) {
  for (const wal::TxnRecord& t : entry.txns) {
    if (t.kind == wal::RecordKind::kPrepare && t.id == id) return false;
    if (t.kind == wal::RecordKind::kPrepare &&
        OrderedAfter(t.cross_ts, t.id, ts, id)) {
      return true;
    }
  }
  return false;
}

}  // namespace

TxnOutcome ClassifyCrossCommit(const CrossCommitResult& result) {
  if (result.committed) return TxnOutcome::kCommitted;
  if (result.unknown) return TxnOutcome::kUnknownOutcome;
  if (result.status.IsAborted()) return TxnOutcome::kConflict;
  return TxnOutcome::kUnknownOutcome;
}

// -------------------------------------------------------------- CrossTxn

CrossTxn::CrossTxn(TransactionClient* client,
                   std::unique_ptr<CrossTxnState> state)
    : client_(client), state_(std::move(state)), phase_(Phase::kActive) {}

CrossTxn::~CrossTxn() {
  if (phase_ == Phase::kActive) Release();
}

CrossTxn::CrossTxn(CrossTxn&& other) noexcept
    : client_(std::exchange(other.client_, nullptr)),
      state_(std::move(other.state_)),
      phase_(std::exchange(other.phase_, Phase::kInert)),
      begin_status_(std::move(other.begin_status_)) {}

CrossTxn& CrossTxn::operator=(CrossTxn&& other) noexcept {
  if (this != &other) {
    if (phase_ == Phase::kActive) Release();
    client_ = std::exchange(other.client_, nullptr);
    state_ = std::move(other.state_);
    phase_ = std::exchange(other.phase_, Phase::kInert);
    begin_status_ = std::move(other.begin_status_);
  }
  return *this;
}

void CrossTxn::Release() {
  for (const std::string& group : state_->groups) {
    client_->ReleaseGroup(group);
  }
  state_.reset();
  phase_ = Phase::kFinished;
}

bool CrossTxn::Usable(const char* op) const {
  (void)op;
  assert(phase_ != Phase::kFinished &&
         "use of a cross-group transaction handle after Commit/Abort");
  return phase_ == Phase::kActive;
}

TxnId CrossTxn::id() const { return active() ? state_->id : 0; }

uint64_t CrossTxn::cross_ts() const { return active() ? state_->cross_ts : 0; }

const std::vector<std::string>& CrossTxn::groups() const {
  static const std::vector<std::string> kEmpty;
  return active() ? state_->groups : kEmpty;
}

LogPos CrossTxn::read_pos(const std::string& group) const {
  if (!active()) return 0;
  auto it = state_->legs.find(group);
  return it == state_->legs.end() ? 0 : it->second.txn.read_pos;
}

sim::Coro<Result<std::string>> CrossTxn::Read(std::string group,
                                              std::string row,
                                              std::string attribute) {
  if (!Usable("Read")) return FailedRead(InertError("Read"));
  if (wal::IsReservedAttribute(attribute)) {
    return FailedRead(wal::ReservedAttributeError());
  }
  auto it = state_->legs.find(group);
  if (it == state_->legs.end()) {
    return FailedRead(Status::InvalidArgument(
        "group '" + group + "' is not a participant of this transaction"));
  }
  // Forwarded like Txn::Read: the awaitable binds the heap-stable leg
  // state, never `this`.
  return client_->ReadItem(&it->second, std::move(row), std::move(attribute));
}

sim::Coro<std::vector<Result<std::string>>> CrossTxn::ReadMany(
    const std::vector<CrossRead>* reads) {
  if (!Usable("ReadMany")) {
    return FailedReadMany(InertError("ReadMany"), reads->size());
  }
  // Forwarded like Read: the awaitable binds the heap-stable state, never
  // `this`; per-spec validation happens inside (a bad spec fails only its
  // own slot).
  return client_->ReadItems(state_.get(), reads);
}

Status CrossTxn::Write(const std::string& group, const std::string& row,
                       const std::string& attribute, std::string value) {
  if (!Usable("Write")) return InertError("Write");
  if (wal::IsReservedAttribute(attribute)) {
    return wal::ReservedAttributeError();
  }
  auto it = state_->legs.find(group);
  if (it == state_->legs.end()) {
    return Status::InvalidArgument(
        "group '" + group + "' is not a participant of this transaction");
  }
  it->second.txn.writes[wal::ItemId{row, attribute}] = std::move(value);
  return Status::OK();
}

sim::Coro<CrossCommitResult> CrossTxn::Commit() {
  if (!Usable("Commit")) return FailedCommit(InertError("Commit"));
  // Like Txn::Commit: slots open as soon as the protocol starts; the
  // handle keeps the state alive while the caller awaits.
  for (const std::string& group : state_->groups) {
    client_->ReleaseGroup(group);
  }
  phase_ = Phase::kFinished;
  return client_->CommitCrossTxn(state_.get());
}

void CrossTxn::Abort() {
  if (phase_ == Phase::kInert) return;
  assert(phase_ == Phase::kActive &&
         "Abort of a cross-group transaction handle after Commit/Abort");
  if (phase_ == Phase::kActive) Release();
}

// ------------------------------------------------- client: begin + 2PC

sim::Coro<CrossTxn> TransactionClient::BeginCrossTxn(
    std::vector<std::string> groups) {
  if (options_.protocol != Protocol::kPaxosCP) {
    co_return CrossTxn(Status::InvalidArgument(
        "cross-group transactions require Paxos-CP (promotion drives both "
        "the prepare walk and the decide walk)"));
  }
  std::sort(groups.begin(), groups.end());
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  if (groups.empty()) {
    co_return CrossTxn(
        Status::InvalidArgument("cross-group begin needs at least one group"));
  }
  for (const std::string& group : groups) {
    if (active_groups_.count(group) > 0) {
      co_return CrossTxn(Status::FailedPrecondition(
          "client already has an active transaction on group '" + group +
          "'"));
    }
  }
  for (const std::string& group : groups) active_groups_.insert(group);

  auto state = std::make_unique<CrossTxnState>();
  state->id = MakeTxnId(
      home_, (static_cast<uint64_t>(client_uid_) << 24) | (next_seq_++));
  state->groups = std::move(groups);
  // Commit-order timestamp: start from virtual now, then raise above every
  // participant's watermark so this transaction sorts after every prepare
  // already in any prefix it will read under.
  uint64_t cross_ts = static_cast<uint64_t>(sim_->Now()) + 1;

  // One begin leg per participant — fanned out concurrently under
  // parallel_commit (D9), sequential in sorted order otherwise. Gather
  // returns the legs in input order, so the cross_ts fold and the error
  // choice below are deterministic regardless of completion order.
  std::vector<CrossBeginLeg> begins;
  if (options_.parallel_commit) {
    std::vector<sim::Coro<CrossBeginLeg>> legs;
    legs.reserve(state->groups.size());
    for (const std::string& group : state->groups) {
      legs.push_back(BeginCrossLeg(group));
    }
    sim::Gather<CrossBeginLeg> join(sim_, std::move(legs));
    begins = co_await std::move(join);
  } else {
    for (const std::string& group : state->groups) {
      CrossBeginLeg leg = co_await BeginCrossLeg(group);
      const bool failed = !leg.status.ok();
      begins.push_back(std::move(leg));
      if (failed) break;
    }
  }
  for (const CrossBeginLeg& leg : begins) {
    if (!leg.status.ok()) {
      for (const std::string& g : state->groups) active_groups_.erase(g);
      co_return CrossTxn(leg.status);
    }
  }
  for (size_t i = 0; i < state->groups.size(); ++i) {
    const std::string& group = state->groups[i];
    TxnState& leg = state->legs[group];
    leg.txn.group = group;
    leg.txn.id = state->id;
    leg.txn.read_pos = begins[i].read_pos;
    leg.txn.leader_dc = begins[i].leader_dc;
    if (begins[i].max_cross_ts >= cross_ts) {
      cross_ts = begins[i].max_cross_ts + 1;
    }
  }
  state->cross_ts = cross_ts;
  co_return CrossTxn(this, std::move(state));
}

sim::Coro<TransactionClient::CrossBeginLeg> TransactionClient::BeginCrossLeg(
    std::string group) {
  CrossBeginLeg leg;
  ServiceRequest begin_request = BeginRequest{group, /*cross=*/true};
  net::CallResult result = co_await CallWithFailover(&begin_request);
  if (!result.status.ok()) {
    leg.status = result.status;
    co_return leg;
  }
  const auto& response = std::any_cast<const ServiceResponse&>(result.response);
  const auto& begin = std::get<BeginResponse>(response);
  leg.read_pos = begin.read_pos;
  leg.leader_dc = begin.leader_dc;
  leg.max_cross_ts = begin.max_cross_ts;
  co_return leg;
}

sim::Coro<std::vector<Result<std::string>>> TransactionClient::ReadItems(
    CrossTxnState* state, const std::vector<CrossRead>* reads) {
  std::vector<sim::Coro<Result<std::string>>> kids;
  kids.reserve(reads->size());
  for (const CrossRead& r : *reads) {
    if (wal::IsReservedAttribute(r.attribute)) {
      kids.push_back(FailedRead(wal::ReservedAttributeError()));
      continue;
    }
    auto it = state->legs.find(r.group);
    if (it == state->legs.end()) {
      kids.push_back(FailedRead(Status::InvalidArgument(
          "group '" + r.group +
          "' is not a participant of this transaction")));
      continue;
    }
    // Concurrent reads on one leg are safe: they share the leg's snapshot
    // position, and the read set dedupes repeated observations of an item.
    kids.push_back(ReadItem(&it->second, r.row, r.attribute));
  }
  sim::Gather<Result<std::string>> join(sim_, std::move(kids));
  std::vector<Result<std::string>> out = co_await std::move(join);
  co_return out;
}

sim::Coro<CrossCommitResult> TransactionClient::CommitCrossTxn(
    CrossTxnState* state) {
  CrossCommitResult result;
  CommitResult scratch;  // per-walk Paxos bookkeeping, shared by all legs
  const TimeMicros start = sim_->Now();
  const TxnId id = state->id;

  // ---- Phase 1: commit a PREPARE record into every participant log.
  // Concurrent under parallel_commit (D9): one leg coroutine per group,
  // joined with sim::Gather, so the phase costs one prepare walk of
  // wide-area rounds regardless of participant count. The sequential mode
  // awaits the same legs one at a time in sorted group order and stops at
  // the first failure, reproducing the one-group-at-a-time coordinator.
  // Either way the outcomes are aggregated below in sorted group order,
  // so conflict choice and failure detail are deterministic under any
  // completion order.
  CrossCrashGate gate;  // crash_after_prepares fault hook (see client.h)
  gate.threshold = options_.crash_after_prepares;
  std::vector<CrossPrepareOutcome> outcomes;
  if (options_.parallel_commit) {
    std::vector<sim::Coro<CrossPrepareOutcome>> legs;
    legs.reserve(state->groups.size());
    for (const std::string& group : state->groups) {
      legs.push_back(PrepareCrossLeg(state, group, &gate, &scratch));
    }
    sim::Gather<CrossPrepareOutcome> join(sim_, std::move(legs));
    outcomes = co_await std::move(join);
  } else {
    for (const std::string& group : state->groups) {
      CrossPrepareOutcome leg =
          co_await PrepareCrossLeg(state, group, &gate, &scratch);
      const bool stop = leg.kind != CrossPrepareOutcome::Kind::kPrepared;
      outcomes.push_back(std::move(leg));
      if (stop) break;
    }
  }

  bool conflict = false;
  bool prepare_unknown = false;
  std::string fail_detail;
  std::vector<std::string> attempted;  // groups where a prepare was proposed
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const CrossPrepareOutcome& leg = outcomes[i];
    if (leg.attempted) attempted.push_back(state->groups[i]);
    if (leg.pos != 0) result.prepare_positions[state->groups[i]] = leg.pos;
    result.promotions += leg.promotions;
    if (conflict || prepare_unknown) continue;  // first failure (in sorted
                                                // group order) wins
    if (leg.kind == CrossPrepareOutcome::Kind::kConflict) {
      conflict = true;
      fail_detail = leg.detail;
    } else if (leg.kind == CrossPrepareOutcome::Kind::kUnavailable) {
      prepare_unknown = true;
      fail_detail = leg.detail;
    }
  }

  if (gate.Tripped()) {
    result.unknown = true;
    result.prepare_rounds = scratch.prepare_rounds;
    result.status = Status::Unavailable(
        "coordinator crashed after " +
        std::to_string(result.prepare_positions.size()) + " of " +
        std::to_string(state->groups.size()) + " prepares");
    result.latency = sim_->Now() - start;
    co_return result;
  }

  // ---- Phase 2: commit the DECIDE into the commit group, adopt the
  // canonical outcome, then propagate it to the other participants.
  // The decision is commit iff every leg prepared cleanly. On any failure
  // the coordinator proposes abort — and since nobody else ever proposes
  // commit, abort is certain even if the decide cannot be delivered now
  // (recovery will land it).
  const bool want_commit = !conflict && !prepare_unknown;
  const std::string& commit_group = state->groups.front();
  LogPos floor = state->legs[commit_group].txn.read_pos + 1;
  if (auto it = result.prepare_positions.find(commit_group);
      it != result.prepare_positions.end()) {
    floor = it->second + 1;
  }
  DecideOutcome decide =
      co_await ProposeDecide(commit_group, floor, id, want_commit, &scratch);

  result.prepare_rounds = scratch.prepare_rounds;
  if (!decide.known) {
    if (want_commit) {
      // The commit decide may or may not have been decided: truly unknown.
      result.unknown = true;
      result.status = Status::Unavailable(
          "cross-group decide reached no quorum; outcome unknown");
    } else {
      result.status =
          Status::Aborted("cross-group transaction aborted (" + fail_detail +
                          "); abort decide not yet delivered");
    }
    result.latency = sim_->Now() - start;
    co_return result;
  }
  result.decide_pos = decide.pos;
  // The canonical decide is the commit point: the outcome is durable from
  // here, whatever happens to the propagation below.
  result.decision_latency = sim_->Now() - start;

  // Propagate the canonical decision to every group where a prepare was
  // (or may later be) in the log — concurrently under parallel_commit
  // (one extra round flat in participant count). Must start only AFTER
  // the canonical decide is known: a participant-group decide is a copy
  // of the canonical one, and fanning out the *proposed* outcome early
  // could race a recovery abort in the commit group into divergence.
  // Each leg barriers on the begin-serving replica applying its decide
  // (AwaitDecideApplied), and the commit group gets the same barrier, so
  // Commit's read-your-effects promise holds: a begin issued after this
  // returns sees every group's new frontier. Best effort: an unreachable
  // participant is resolved by recovery against the commit group's
  // canonical decide.
  if (options_.parallel_commit) {
    sim::WhenAll join(sim_);
    join.Add(AwaitDecideApplied(commit_group, id));
    for (const std::string& group : attempted) {
      if (group == commit_group) continue;
      LogPos gfloor = state->legs[group].txn.read_pos + 1;
      if (auto it = result.prepare_positions.find(group);
          it != result.prepare_positions.end()) {
        gfloor = it->second + 1;
      }
      join.Add(PropagateDecide(group, gfloor, id, decide.commit, &scratch));
    }
    co_await join;
  } else {
    co_await AwaitDecideApplied(commit_group, id);
    for (const std::string& group : attempted) {
      if (group == commit_group) continue;
      LogPos gfloor = state->legs[group].txn.read_pos + 1;
      if (auto it = result.prepare_positions.find(group);
          it != result.prepare_positions.end()) {
        gfloor = it->second + 1;
      }
      co_await PropagateDecide(group, gfloor, id, decide.commit, &scratch);
    }
  }
  result.prepare_rounds = scratch.prepare_rounds;

  if (decide.commit) {
    result.committed = true;
    result.status = Status::OK();
  } else if (want_commit) {
    // Overruled: a recovery abort reached the commit group's log first.
    result.status = Status::Aborted(
        "cross-group transaction aborted by recovery before the commit "
        "decide landed");
  } else {
    result.status =
        Status::Aborted("cross-group transaction aborted (" + fail_detail +
                        ")");
  }
  result.latency = sim_->Now() - start;
  co_return result;
}

sim::Coro<TransactionClient::CrossPrepareOutcome>
TransactionClient::PrepareCrossLeg(CrossTxnState* state, std::string group,
                                   CrossCrashGate* gate,
                                   CommitResult* stats) {
  CrossPrepareOutcome out;
  const TxnId id = state->id;
  const uint64_t ts = state->cross_ts;
  // Crash gate, checked before proposing anything: in sequential mode
  // this is the classic "crashed before contacting the next group"
  // window; in parallel mode it only fires here when the threshold is
  // zero (all legs start before any prepare lands).
  if (gate->Tripped()) co_return out;  // kAbandoned, attempted=false

  TxnState& leg = state->legs[group];
  wal::TxnRecord record = leg.txn.ToRecord(home_);
  record.kind = wal::RecordKind::kPrepare;
  record.cross_ts = ts;
  record.participants = state->groups;
  wal::LogEntry own;
  own.txns.push_back(record);
  own.winner_dc = home_;

  out.attempted = true;
  LogPos pos = leg.txn.read_pos + 1;
  DcId leader = leg.txn.leader_dc;
  for (;;) {
    InstanceOutcome outcome =
        co_await RunInstance(group, pos, &own, leader, stats);
    if (outcome.kind == InstanceOutcome::Kind::kUnavailable) {
      out.kind = CrossPrepareOutcome::Kind::kUnavailable;
      out.detail = "prepare on '" + group + "' reached no quorum";
      co_return out;
    }
    // A decide for OUR OWN transaction in the walked entries means the
    // recovery daemon already resolved us (it concluded the coordinator
    // crashed while we were merely slow). That decide is canonical — this
    // leg's prepare did NOT land (a decide and a prepare share the txn id,
    // which is exactly why the landed check below matches on kind too).
    // Report a conflict: the coordinator then proposes abort, and its
    // decide walk floors at or below this position, finds the recovery's
    // decide first, and adopts the canonical fate — never committing
    // above it.
    if (outcome.decided.FindDecide(id) != nullptr) {
      out.kind = CrossPrepareOutcome::Kind::kConflict;
      out.detail = "recovery already decided txn at position " +
                   std::to_string(pos) + " of '" + group + "'";
      co_return out;
    }
    if (outcome.kind == InstanceOutcome::Kind::kWon ||
        outcome.decided.FindPrepare(id) != nullptr) {
      // Landed (possibly combined into another proposer's entry). A
      // younger prepare ahead of ours *within* the entry still violates
      // the shared commit order — the prepare stays in the log but the
      // transaction must abort (the decide makes it a no-op).
      out.pos = pos;
      ++gate->landed;
      if (OwnPrecededByYounger(outcome.decided, ts, id)) {
        out.kind = CrossPrepareOutcome::Kind::kConflict;
        out.detail = "commit-order violation inside entry " +
                     std::to_string(pos) + " of '" + group + "'";
      } else {
        out.kind = CrossPrepareOutcome::Kind::kPrepared;
      }
      co_return out;
    }
    // Lost the position. A younger cross prepare already in the log
    // means landing anywhere later would violate the shared order.
    if (HasYoungerPrepare(outcome.decided, ts, id)) {
      out.kind = CrossPrepareOutcome::Kind::kConflict;
      out.detail = "younger cross-group prepare at position " +
                   std::to_string(pos) + " of '" + group + "'";
      co_return out;
    }
    if (PromotionConflicts(record, outcome.decided)) {
      out.kind = CrossPrepareOutcome::Kind::kConflict;
      out.detail = "read-write conflict with winner of position " +
                   std::to_string(pos) + " in '" + group + "'";
      co_return out;
    }
    // Re-check the gate before walking on: in parallel mode, prepares
    // landing on other legs can trip the coordinator mid-walk, leaving
    // this leg abandoned between positions — the partial-parallel-prepare
    // window. (Never fires in sequential mode: earlier legs' landings
    // would have tripped the gate before this leg started, and this leg's
    // own landing exits above.)
    if (gate->Tripped()) {
      out.kind = CrossPrepareOutcome::Kind::kAbandoned;
      co_return out;
    }
    ++out.promotions;
    leader = outcome.decided.winner_dc;
    ++pos;
  }
}

sim::Coro<TransactionClient::DecideOutcome> TransactionClient::ProposeDecide(
    std::string group, LogPos floor, TxnId id, bool commit,
    CommitResult* stats) {
  wal::TxnRecord record;
  record.id = id;
  record.origin_dc = home_;
  record.kind = wal::RecordKind::kDecide;
  record.commit_decision = commit;
  wal::LogEntry own;
  own.txns.push_back(record);
  own.winner_dc = home_;

  DecideOutcome out;
  LogPos pos = floor;
  DcId leader = kNoDc;
  // Decide records read nothing, so they can promote past any entry; the
  // cap only bounds a runaway walk across a pathologically hot log. It
  // must comfortably exceed any real log length: recovery's forced-abort
  // path can floor at position 1 (commit-group prepare hidden by a
  // partition), and a walk that gives up inside the decided prefix would
  // leave the pending prepare holding the group's read frontier forever.
  constexpr int kMaxDecideWalk = 1 << 16;
  for (int step = 0; step < kMaxDecideWalk; ++step) {
    InstanceOutcome outcome =
        co_await RunInstance(group, pos, &own, leader, stats);
    if (outcome.kind == InstanceOutcome::Kind::kUnavailable) co_return out;
    // First decide for this transaction in the walk — ours or someone
    // else's — is the decision (walks start at or below every possible
    // decide position, so the first one encountered is the lowest).
    if (const wal::TxnRecord* found = outcome.decided.FindDecide(id)) {
      out.known = true;
      out.commit = found->commit_decision;
      out.pos = pos;
      co_return out;
    }
    leader = outcome.decided.winner_dc;
    ++pos;
  }
  co_return out;
}

sim::Coro<void> TransactionClient::AwaitDecideApplied(std::string group,
                                                      TxnId id) {
  // The apply broadcast (AcceptAndApply step 5) is fire-and-forget, and
  // message delivery is not FIFO: a begin issued right after Commit
  // returns can overtake the in-flight apply and read below the still-
  // pending prepare. Poll the same replica path begins use until the
  // decide is in its log. One round suffices unless the apply is delayed;
  // the bound only guards against a replica that never catches up (its
  // pending prepare is then recovery's problem, not Commit's).
  constexpr int kMaxApplyPolls = 64;
  for (int i = 0; i < kMaxApplyPolls; ++i) {
    ServiceRequest query = QueryCrossRequest{group, id};
    net::CallResult result = co_await CallWithFailover(&query);
    if (!result.status.ok()) co_return;
    const auto& response =
        std::any_cast<const ServiceResponse&>(result.response);
    if (std::get<QueryCrossResponse>(response).has_decision) co_return;
    co_await sim::SleepFor(sim_, RandomBackoff());
  }
}

sim::Coro<void> TransactionClient::PropagateDecide(std::string group,
                                                   LogPos floor, TxnId id,
                                                   bool commit,
                                                   CommitResult* stats) {
  DecideOutcome landed = co_await ProposeDecide(group, floor, id, commit,
                                                stats);
  if (landed.known) co_await AwaitDecideApplied(group, id);
}

// ------------------------------------------------------------- recovery

sim::Coro<TransactionClient::CrossQueryResult>
TransactionClient::QueryCrossAll(std::string group, TxnId id) {
  CrossQueryResult out;
  for (int dc = 0; dc < network_->num_datacenters(); ++dc) {
    const std::any payload(ServiceRequest(QueryCrossRequest{group, id}));
    net::CallResult r = co_await network_->Call(
        home_, (home_ + dc) % network_->num_datacenters(), payload,
        options_.rpc_timeout);
    if (!r.status.ok()) continue;
    const auto& resp = std::any_cast<const ServiceResponse&>(r.response);
    const auto& q = std::get<QueryCrossResponse>(resp);
    if (q.has_prepare && !out.has_prepare) {
      out.has_prepare = true;
      out.prepare_pos = q.prepare_pos;
      out.cross_ts = q.cross_ts;
      out.participants = q.participants;
    }
    if (q.has_decision && q.decision_canonical &&
        !out.has_canonical_decision) {
      out.has_canonical_decision = true;
      out.decision_commit = q.decision_commit;
    }
    out.safe_pos = std::max(out.safe_pos, q.safe_pos);
  }
  co_return out;
}

sim::Coro<Status> TransactionClient::RecoverCrossTxn(std::string group,
                                                     TxnId id) {
  // The learn-or-force decide walk lives in the shared recovery core
  // (txn/recovery.cc) so the service-side recovery daemon (D10) runs the
  // exact same protocol; this client entry point only keeps its Status
  // signature for existing callers.
  recovery::RecoveryResult result =
      co_await recovery::CrossRecovery::Run(this, std::move(group), id);
  co_return result.status;
}

// -------------------------------------------------------------- Session

sim::Coro<CrossTxn> Session::FailedBeginCross(Status status) {
  co_return CrossTxn(std::move(status));
}

sim::Coro<CrossTxn> Session::BeginCross(std::vector<std::string> groups) {
  if (client_ == nullptr) {
    assert(false && "BeginCross on an invalid (default) Session");
    return FailedBeginCross(Status::FailedPrecondition("invalid session"));
  }
  return client_->BeginCrossTxn(std::move(groups));
}

sim::Coro<CrossTxnResult> Session::RunTransaction(
    std::vector<std::string> groups, CrossTxnBody body, RetryPolicy retry) {
  CrossTxnResult result;
  if (client_ == nullptr) {
    assert(false && "RunTransaction on an invalid (default) Session");
    result.attempts = 1;
    result.status = Status::FailedPrecondition("invalid session");
    co_return result;
  }
  sim::Simulator* sim = client_->simulator();
  const TimeMicros deadline_at =
      retry.deadline > 0 ? sim->Now() + retry.deadline : 0;
  for (;;) {
    ++result.attempts;
    CrossTxn txn = co_await client_->BeginCrossTxn(groups);
    if (!txn.active()) {
      result.outcome = TxnOutcome::kUnavailable;
      result.status = txn.begin_status();
      co_return result;
    }
    Status body_status = co_await body(&txn);
    if (!body_status.ok()) {
      txn.Abort();
      result.outcome = TxnOutcome::kUnavailable;
      result.status = std::move(body_status);
      co_return result;
    }
    result.commit = co_await txn.Commit();
    result.status = result.commit.status;
    result.outcome = ClassifyCrossCommit(result.commit);
    if (result.outcome != TxnOutcome::kConflict) co_return result;
    if (result.attempts >= retry.max_attempts) co_return result;
    const TimeMicros backoff =
        client_->RandomBackoffIn(retry.backoff_min, retry.backoff_max);
    if (deadline_at != 0 && sim->Now() + backoff >= deadline_at) {
      co_return result;
    }
    co_await sim::SleepFor(sim, backoff);
  }
}

}  // namespace paxoscp::txn
