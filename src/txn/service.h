// The Transaction Service: one per datacenter (paper §2.2). Serves begin
// and snapshot-read requests against the local key-value store, hosts the
// Paxos acceptor for every transaction group's log, and — for fault
// tolerance — learns missing log entries by running Paxos instances of its
// own ("If a Transaction Service does not receive all Paxos messages for a
// log position ... it executes a Paxos instance for the missing log entry
// to learn the winning value", paper §4.1).
//
// Service processes are stateless: all durable state lives in the
// key-value store (acceptor rows, the replicated log, data rows), so a
// Simulate[d] restart loses nothing but in-flight requests.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "kvstore/store.h"
#include "net/network.h"
#include "paxos/acceptor.h"
#include "sim/coro.h"
#include "txn/messages.h"
#include "wal/log.h"

namespace paxoscp::txn {

/// Simulated processing cost of each request type, calibrated in
/// EXPERIMENTS.md against the paper's testbed (HBase on EBS-backed EC2
/// c1.medium nodes in 2012; storage operations dominated intra-datacenter
/// network hops). The calibration targets the paper's observed contention
/// regime: ~42% of basic-Paxos transactions abort with 4 staggered clients
/// at 1 txn/s each, which requires a transaction to span more than one
/// inter-arrival gap.
struct ServiceTimeModel {
  TimeMicros begin = 10 * kMillisecond;    // read log metadata
  TimeMicros read = 60 * kMillisecond;     // snapshot read incl. apply
  TimeMicros prepare = 15 * kMillisecond;  // acceptor-state read + CAS
  TimeMicros accept = 15 * kMillisecond;
  TimeMicros apply = 20 * kMillisecond;    // log write
  TimeMicros claim = 5 * kMillisecond;
};

class TransactionService {
 public:
  TransactionService(DcId dc, net::Network* network,
                     kvstore::MultiVersionStore* store,
                     const ServiceTimeModel& model, uint64_t seed);

  DcId dc() const { return dc_; }
  kvstore::MultiVersionStore* store() const { return store_; }

  /// Network entry point: dispatches a ServiceRequest and produces the
  /// matching ServiceResponse. Registered as the datacenter's endpoint.
  /// `request` is owned by the network layer and outlives this coroutine.
  sim::Coro<std::any> Handle(DcId from, const std::any* request);

  /// Direct access to a group's log / acceptor (creating them on first
  /// use). Used by the cluster for setup and by invariant checkers.
  wal::WriteAheadLog* GroupLog(const std::string& group);
  paxos::Acceptor* GroupAcceptor(const std::string& group);

  /// Makes sure this replica knows the decided entry at `pos`, running a
  /// learning Paxos instance against the other datacenters if necessary.
  /// Unavailable when no quorum is reachable; NotFound when the position is
  /// genuinely undecided.
  sim::Coro<Status> LearnEntry(std::string group, LogPos pos);

  /// Statistics.
  uint64_t learn_instances() const { return learn_instances_; }
  uint64_t reads_served() const { return reads_served_; }
  uint64_t background_applies() const { return background_applies_; }

  /// Starts the paper's background application process (§3.2: committed
  /// writes "may be performed later by a background process"): every
  /// `interval`, applies decided log entries of every known group to the
  /// data rows and, when `gc_keep_versions` >= 0, garbage-collects row
  /// versions older than (applied watermark - gc_keep_versions).
  void StartBackgroundApplier(TimeMicros interval,
                              int64_t gc_keep_versions = -1);
  /// Stops the periodic applier immediately: the generation bump turns any
  /// tick already scheduled on the simulator into a no-op, so no apply or
  /// GC runs after Stop returns (needed before a post-run recovery quiesce
  /// can assume the store is no longer mutating underneath it).
  void StopBackgroundApplier() {
    applier_interval_ = 0;
    ++applier_generation_;
  }

 private:
  struct GroupState {
    explicit GroupState(kvstore::MultiVersionStore* store,
                        const std::string& group)
        : log(store, group), acceptor(store, &log) {}
    wal::WriteAheadLog log;
    paxos::Acceptor acceptor;
  };

  GroupState* Group(const std::string& group);

  // Sub-handlers take a pointer to the request held in Handle's frame:
  // coroutine parameters must be neither references nor by-value aggregates
  // (lifetime hazards; see client.h).
  sim::Coro<ServiceResponse> HandleBegin(const BeginRequest* request);
  sim::Coro<ServiceResponse> HandleRead(const ReadRequest* request);
  sim::Coro<ServiceResponse> HandleReadRow(const ReadRowRequest* request);
  sim::Coro<ServiceResponse> HandlePrepare(const PrepareRequest* request);
  sim::Coro<ServiceResponse> HandleAccept(const AcceptRequest* request);
  sim::Coro<ServiceResponse> HandleApply(const ApplyRequest* request);
  sim::Coro<ServiceResponse> HandleClaimLeader(
      const ClaimLeaderRequest* request);
  sim::Coro<ServiceResponse> HandleQueryCross(const QueryCrossRequest* request);

  /// Brings the group's applied watermark up to `target`, learning missing
  /// entries on the way. When the watermark is held by an undecided
  /// cross-group prepare (D8), the missing piece is the decide record in a
  /// *later* entry: the learner fills the gap between the prepare and the
  /// target instead of re-learning the (present) stalled position.
  sim::Coro<Status> CatchUp(GroupState* group_state, LogPos target);

  DcId dc_;
  net::Network* network_;
  kvstore::MultiVersionStore* store_;
  ServiceTimeModel model_;
  Rng rng_;
  std::map<std::string, std::unique_ptr<GroupState>> groups_;

  void BackgroundApplyTick(uint64_t generation);

  uint64_t learn_instances_ = 0;
  uint64_t reads_served_ = 0;
  uint64_t background_applies_ = 0;
  TimeMicros applier_interval_ = 0;
  /// Bumped by Start/Stop; a tick whose generation no longer matches is
  /// stale (scheduled before a Stop) and must do nothing.
  uint64_t applier_generation_ = 0;
  int64_t gc_keep_versions_ = -1;
};

}  // namespace paxoscp::txn
