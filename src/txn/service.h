// The Transaction Service: one per datacenter (paper §2.2). Serves begin
// and snapshot-read requests against the local key-value store, hosts the
// Paxos acceptor for every transaction group's log, and — for fault
// tolerance — learns missing log entries by running Paxos instances of its
// own ("If a Transaction Service does not receive all Paxos messages for a
// log position ... it executes a Paxos instance for the missing log entry
// to learn the winning value", paper §4.1).
//
// Service processes are stateless: all durable state lives in the
// key-value store (acceptor rows, the replicated log, data rows), so a
// Simulate[d] restart loses nothing but in-flight requests.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "kvstore/store.h"
#include "net/network.h"
#include "paxos/acceptor.h"
#include "sim/coro.h"
#include "txn/messages.h"
#include "txn/transaction.h"
#include "wal/log.h"

namespace paxoscp::txn {

class TransactionClient;

/// Options of the service-side 2PC recovery daemon (docs/ARCHITECTURE.md,
/// design note D10). All timers are deterministic: the per-transaction
/// jitter is hash-derived from (service seed, txn id), never drawn from an
/// RNG stream, so a seeded run with the daemon on replays bit-identically.
struct RecoveryDaemonOptions {
  /// Delay between a pending prepare appearing in the WAL side table and
  /// the first recovery consideration — a live coordinator gets this long
  /// to decide on its own before any replica interferes.
  TimeMicros base_delay = 1 * kSecond;
  /// Upper bound on the deterministic per-(replica, txn) jitter added to
  /// base_delay, desynchronizing the replicas' timers.
  TimeMicros max_jitter = 500 * kMillisecond;
  /// Backoff before re-considering a transaction whose recovery attempt
  /// failed or was deferred to the arbiter; doubles per attempt, capped.
  TimeMicros retry_backoff = 1 * kSecond;
  TimeMicros max_backoff = 8 * kSecond;
  /// Attempt cap per pending transaction: bounds the timer chain so an
  /// unresolvable transaction (e.g. under a permanent partition) cannot
  /// keep the simulator's event queue alive forever.
  int max_attempts = 16;
  /// Attempt index from which a non-arbiter replica drives recovery itself
  /// instead of deferring: the arbiter may never have seen this prepare
  /// (its replica can be missing the entry), so pure deference could stall
  /// forever. Escalated duplicate drives are safe — recovery is idempotent;
  /// arbitration only avoids the common-case recovery storm.
  int escalate_after = 4;
  /// Options of the daemon's internal recovery client (protocol is forced
  /// to Paxos-CP, crash faults are stripped).
  ClientOptions client;
};

/// Simulated processing cost of each request type, calibrated in
/// EXPERIMENTS.md against the paper's testbed (HBase on EBS-backed EC2
/// c1.medium nodes in 2012; storage operations dominated intra-datacenter
/// network hops). The calibration targets the paper's observed contention
/// regime: ~42% of basic-Paxos transactions abort with 4 staggered clients
/// at 1 txn/s each, which requires a transaction to span more than one
/// inter-arrival gap.
struct ServiceTimeModel {
  TimeMicros begin = 10 * kMillisecond;    // read log metadata
  TimeMicros read = 60 * kMillisecond;     // snapshot read incl. apply
  TimeMicros prepare = 15 * kMillisecond;  // acceptor-state read + CAS
  TimeMicros accept = 15 * kMillisecond;
  TimeMicros apply = 20 * kMillisecond;    // log write
  TimeMicros claim = 5 * kMillisecond;
};

class TransactionService {
 public:
  TransactionService(DcId dc, net::Network* network,
                     kvstore::MultiVersionStore* store,
                     const ServiceTimeModel& model, uint64_t seed);
  ~TransactionService();

  DcId dc() const { return dc_; }
  kvstore::MultiVersionStore* store() const { return store_; }

  /// Network entry point: dispatches a ServiceRequest and produces the
  /// matching ServiceResponse. Registered as the datacenter's endpoint.
  /// `request` is owned by the network layer and outlives this coroutine.
  sim::Coro<std::any> Handle(DcId from, const std::any* request);

  /// Direct access to a group's log / acceptor (creating them on first
  /// use). Used by the cluster for setup and by invariant checkers.
  wal::WriteAheadLog* GroupLog(const std::string& group);
  paxos::Acceptor* GroupAcceptor(const std::string& group);

  /// Makes sure this replica knows the decided entry at `pos`, running a
  /// learning Paxos instance against the other datacenters if necessary.
  /// Unavailable when no quorum is reachable; NotFound when the position is
  /// genuinely undecided.
  sim::Coro<Status> LearnEntry(std::string group, LogPos pos);

  /// Statistics.
  uint64_t learn_instances() const { return learn_instances_; }
  uint64_t reads_served() const { return reads_served_; }
  uint64_t background_applies() const { return background_applies_; }

  /// Starts the paper's background application process (§3.2: committed
  /// writes "may be performed later by a background process"): every
  /// `interval`, applies decided log entries of every known group to the
  /// data rows and, when `gc_keep_versions` >= 0, garbage-collects row
  /// versions older than (applied watermark - gc_keep_versions).
  void StartBackgroundApplier(TimeMicros interval,
                              int64_t gc_keep_versions = -1);
  /// Stops the periodic applier immediately: the generation bump turns any
  /// tick already scheduled on the simulator into a no-op, so no apply or
  /// GC runs after Stop returns (needed before a post-run recovery quiesce
  /// can assume the store is no longer mutating underneath it).
  void StopBackgroundApplier() {
    applier_interval_ = 0;
    ++applier_generation_;
  }

  // -- Service-side 2PC recovery daemon (D10) -------------------------------

  /// Arms a seed-derived deterministic timer whenever a pending prepare
  /// appears in a group's WAL side table; on expiry, a single deterministic
  /// arbiter per group (the lowest live datacenter) drives the shared
  /// recovery core (txn/recovery.h) while the other replicas watch with
  /// backoff — re-arbitrating when the arbiter goes down, and escalating to
  /// drive themselves after `escalate_after` deferrals. Also adopts pending
  /// prepares already in the side tables (daemon transfer across a service
  /// restart).
  void StartRecoveryDaemon(const RecoveryDaemonOptions& options);
  /// Stops the daemon: the generation bump turns every queued timer and the
  /// completion of any in-flight drive into a no-op.
  void StopRecoveryDaemon();
  bool recovery_daemon_running() const { return recovery_running_; }
  const RecoveryDaemonOptions& recovery_daemon_options() const {
    return recovery_options_;
  }

  /// Names of the groups this replica has state for (used by the cluster to
  /// rebuild a restarted service's group map before re-starting its daemon).
  std::vector<std::string> KnownGroups() const;

  /// Recovery accounting.
  uint64_t recoveries_started() const { return recoveries_started_; }
  uint64_t recoveries_decided() const { return recoveries_decided_; }
  uint64_t recoveries_forced_abort() const { return recoveries_forced_abort_; }

  /// Longest time a pending prepare has pinned this replica's SafeReadPos:
  /// the max over closed pins and pins still open at `now`. Tracked whether
  /// or not the daemon runs (pure map bookkeeping on the apply path — no
  /// events, no RNG — so daemon-off runs stay bit-identical).
  TimeMicros MaxSafeReadPosPin(TimeMicros now) const;

 private:
  struct GroupState {
    explicit GroupState(kvstore::MultiVersionStore* store,
                        const std::string& group)
        : log(store, group), acceptor(store, &log) {}
    wal::WriteAheadLog log;
    paxos::Acceptor acceptor;
  };

  GroupState* Group(const std::string& group);

  // Sub-handlers take a pointer to the request held in Handle's frame:
  // coroutine parameters must be neither references nor by-value aggregates
  // (lifetime hazards; see client.h).
  sim::Coro<ServiceResponse> HandleBegin(const BeginRequest* request);
  sim::Coro<ServiceResponse> HandleRead(const ReadRequest* request);
  sim::Coro<ServiceResponse> HandleReadRow(const ReadRowRequest* request);
  sim::Coro<ServiceResponse> HandlePrepare(const PrepareRequest* request);
  sim::Coro<ServiceResponse> HandleAccept(const AcceptRequest* request);
  sim::Coro<ServiceResponse> HandleApply(const ApplyRequest* request);
  sim::Coro<ServiceResponse> HandleClaimLeader(
      const ClaimLeaderRequest* request);
  sim::Coro<ServiceResponse> HandleQueryCross(const QueryCrossRequest* request);

  /// Brings the group's applied watermark up to `target`, learning missing
  /// entries on the way. When the watermark is held by an undecided
  /// cross-group prepare (D8), the missing piece is the decide record in a
  /// *later* entry: the learner fills the gap between the prepare and the
  /// target instead of re-learning the (present) stalled position.
  sim::Coro<Status> CatchUp(GroupState* group_state, LogPos target);

  // -- Recovery daemon internals (D10) --------------------------------------

  /// A pending prepare is identified by (group, txn id).
  using PendingKey = std::pair<std::string, TxnId>;

  /// Called after every successful acceptor OnApply: syncs the SafeReadPos
  /// pin table with the group's WAL side table (opening pins for newly
  /// pending prepares, closing pins whose decide entry just landed) and,
  /// when the daemon runs, arms the recovery timer of each new pending.
  void NoteEntryLanded(const std::string& group);
  /// Deterministic per-(replica, txn) jitter in [0, max_jitter).
  TimeMicros RecoveryJitter(TxnId id) const;
  /// Doubling backoff for attempt index `attempt`, capped at max_backoff.
  TimeMicros RecoveryBackoff(int attempt) const;
  void ArmRecoveryTimer(const std::string& group, TxnId id, int attempt,
                        TimeMicros delay);
  void RecoveryTimerFired(const std::string& group, TxnId id, int attempt,
                          uint64_t generation);
  /// Detached drive of the shared recovery core for one pending prepare;
  /// re-arms its timer chain on failure.
  sim::Task DriveRecovery(std::string group, TxnId id, int attempt,
                          uint64_t generation);
  /// The daemon's lazily-built protocol engine: a TransactionClient homed at
  /// this datacenter that only ever runs query/decide walks (it never mints
  /// transaction ids or touches active-transaction state).
  TransactionClient* RecoveryClient();

  DcId dc_;
  net::Network* network_;
  kvstore::MultiVersionStore* store_;
  ServiceTimeModel model_;
  Rng rng_;
  /// Construction seed, kept for hash-derived recovery jitter (which must
  /// not consume the rng_ stream: arming a timer may not perturb replay).
  uint64_t seed_;
  std::map<std::string, std::unique_ptr<GroupState>> groups_;

  void BackgroundApplyTick(uint64_t generation);

  uint64_t learn_instances_ = 0;
  uint64_t reads_served_ = 0;
  uint64_t background_applies_ = 0;
  TimeMicros applier_interval_ = 0;
  /// Bumped by Start/Stop; a tick whose generation no longer matches is
  /// stale (scheduled before a Stop) and must do nothing.
  uint64_t applier_generation_ = 0;
  int64_t gc_keep_versions_ = -1;

  bool recovery_running_ = false;
  RecoveryDaemonOptions recovery_options_;
  /// Bumped by Start/StopRecoveryDaemon; queued timers and in-flight drives
  /// carrying a stale generation do nothing.
  uint64_t recovery_generation_ = 0;
  std::unique_ptr<TransactionClient> recovery_client_;
  /// Pending prepares currently pinning SafeReadPos, with the virtual time
  /// each pin opened. Maintained daemon-on and -off.
  std::map<PendingKey, TimeMicros> pin_open_;
  TimeMicros max_closed_pin_ = 0;
  /// Keys with a live timer chain (guards double-arming) and keys with an
  /// in-flight recovery drive (guards concurrent duplicate drives from the
  /// same replica; cross-replica duplicates are handled by idempotence).
  std::set<PendingKey> recovery_timed_;
  std::set<PendingKey> recovery_inflight_;
  uint64_t recoveries_started_ = 0;
  uint64_t recoveries_decided_ = 0;
  uint64_t recoveries_forced_abort_ = 0;
};

}  // namespace paxoscp::txn
