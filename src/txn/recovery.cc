#include "txn/recovery.h"

#include <utility>

#include "txn/client.h"

namespace paxoscp::txn::recovery {

sim::Coro<RecoveryResult> CrossRecovery::Run(TransactionClient* engine,
                                             std::string group, TxnId id) {
  RecoveryResult out;
  CommitResult scratch;
  // 1. Locate the prepare (participant list + commit group). The caller
  // observed it pending in `group`, so some replica there knows it.
  TransactionClient::CrossQueryResult at_group =
      co_await engine->QueryCrossAll(group, id);
  if (!at_group.has_prepare || at_group.participants.empty()) {
    out.status = Status::NotFound("no replica knows the prepare of txn " +
                                  TxnIdToString(id) + " in group '" + group +
                                  "'");
    co_return out;
  }
  const std::string commit_group = at_group.participants.front();

  // 2. Learn the canonical decision from the commit group — a replica
  // whose log is contiguous through its decision marker answers
  // authoritatively. (Plain if/else, not a conditional expression: a
  // co_await inside a ternary arm is a temporary-across-suspension
  // hazard under GCC 12 — see the parameter rules in client.h.)
  TransactionClient::CrossQueryResult at_cg;
  if (commit_group == group) {
    at_cg = at_group;
  } else {
    at_cg = co_await engine->QueryCrossAll(commit_group, id);
  }
  bool decision_commit = at_cg.decision_commit;

  // 3. No canonical decision anywhere: force abort by proposing an abort
  // decide in the commit group. Whatever decide lands lowest wins — if a
  // slow coordinator's commit decide got there first, the walk adopts it.
  // The floor must be at or below every possible decide position: after
  // the commit-group prepare if it landed, else the log's start (the
  // rare crashed-before-its-first-prepare case).
  if (!at_cg.has_canonical_decision) {
    const LogPos cg_floor = at_cg.has_prepare ? at_cg.prepare_pos + 1 : 1;
    TransactionClient::DecideOutcome forced = co_await engine->ProposeDecide(
        commit_group, cg_floor, id, /*commit=*/false, &scratch);
    if (!forced.known) {
      out.status = Status::Unavailable(
          "recovery could not decide txn " + TxnIdToString(id) +
          " in commit group '" + commit_group + "'");
      co_return out;
    }
    decision_commit = forced.commit;
    out.forced_abort = !forced.commit;
  }

  // 4. Propagate the canonical decision to every other participant —
  // their own pending prepares unblock on the same decide. Decides in
  // participant groups are idempotent canonical copies, so the walk may
  // start from the participant's frontier (its prepare position, else
  // the safe read position a replica reports) instead of position 1 —
  // no need to find an existing lower decide, only to land one.
  for (const std::string& participant : at_group.participants) {
    if (participant == commit_group) continue;
    TransactionClient::CrossQueryResult at_part;
    if (participant == group) {
      at_part = at_group;
    } else {
      at_part = co_await engine->QueryCrossAll(participant, id);
    }
    LogPos floor = 1;
    if (at_part.has_prepare) {
      floor = at_part.prepare_pos + 1;
    } else if (at_part.safe_pos > 0) {
      floor = at_part.safe_pos + 1;
    }
    TransactionClient::DecideOutcome propagated =
        co_await engine->ProposeDecide(participant, floor, id, decision_commit,
                                       &scratch);
    if (!propagated.known) {
      out.status = Status::Unavailable(
          "recovery could not propagate decide of " + TxnIdToString(id) +
          " to '" + participant + "'");
      co_return out;
    }
  }
  out.decided = true;
  out.commit = decision_commit;
  out.status = Status::OK();
  co_return out;
}

}  // namespace paxoscp::txn::recovery
