#include "txn/service.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/logging.h"
#include "paxos/value_selection.h"
#include "txn/client.h"
#include "txn/recovery.h"

namespace paxoscp::txn {

namespace {

constexpr int kMaxLearnAttempts = 8;
constexpr int kMaxCatchUpSteps = 4096;

std::vector<DcId> AllDatacenters(int d) {
  std::vector<DcId> all(d);
  std::iota(all.begin(), all.end(), 0);
  return all;
}

/// SplitMix64 finalizer: the recovery daemon's timer jitter is a pure hash
/// of (service seed, datacenter, txn id) — deterministic and stream-free.
uint64_t HashMix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

TransactionService::TransactionService(DcId dc, net::Network* network,
                                       kvstore::MultiVersionStore* store,
                                       const ServiceTimeModel& model,
                                       uint64_t seed)
    : dc_(dc),
      network_(network),
      store_(store),
      model_(model),
      rng_(seed),
      seed_(seed) {}

// Out of line: recovery_client_ is a unique_ptr to the forward-declared
// TransactionClient.
TransactionService::~TransactionService() = default;

TransactionService::GroupState* TransactionService::Group(
    const std::string& group) {
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    it = groups_.emplace(group, std::make_unique<GroupState>(store_, group))
             .first;
  }
  return it->second.get();
}

wal::WriteAheadLog* TransactionService::GroupLog(const std::string& group) {
  return &Group(group)->log;
}

paxos::Acceptor* TransactionService::GroupAcceptor(const std::string& group) {
  return &Group(group)->acceptor;
}

sim::Coro<std::any> TransactionService::Handle(DcId from,
                                               const std::any* request) {
  (void)from;
  const ServiceRequest& req = std::any_cast<const ServiceRequest&>(*request);
  ServiceResponse response;
  if (const auto* begin = std::get_if<BeginRequest>(&req)) {
    response = co_await HandleBegin(begin);
  } else if (const auto* read = std::get_if<ReadRequest>(&req)) {
    response = co_await HandleRead(read);
  } else if (const auto* read_row = std::get_if<ReadRowRequest>(&req)) {
    response = co_await HandleReadRow(read_row);
  } else if (const auto* prepare = std::get_if<PrepareRequest>(&req)) {
    response = co_await HandlePrepare(prepare);
  } else if (const auto* accept = std::get_if<AcceptRequest>(&req)) {
    response = co_await HandleAccept(accept);
  } else if (const auto* apply = std::get_if<ApplyRequest>(&req)) {
    response = co_await HandleApply(apply);
  } else if (const auto* claim = std::get_if<ClaimLeaderRequest>(&req)) {
    response = co_await HandleClaimLeader(claim);
  } else if (const auto* query = std::get_if<QueryCrossRequest>(&req)) {
    response = co_await HandleQueryCross(query);
  }
  co_return std::any(std::move(response));
}

sim::Coro<ServiceResponse> TransactionService::HandleBegin(
    const BeginRequest* request) {
  co_await sim::SleepFor(network_->simulator(), model_.begin);
  GroupState* gs = Group(request->group);
  BeginResponse response;
  if (request->cross) {
    // Cross-group begin (D8): the read position must be covered by the
    // commit-order watermark, which only sees entries this replica has —
    // so use the contiguous frontier (and stay below pending prepares).
    response.read_pos =
        std::min(gs->log.ContiguousFrontier(), gs->log.SafeReadPos());
    TxnId max_id = 0;  // watermark id: only used replica-side (NoteCross)
    gs->log.MaxCrossOrder(&response.max_cross_ts, &max_id);
  } else {
    // Single-group path: MaxDecided, held below any prepared-but-undecided
    // cross-group prepare (identical to MaxDecided when none is pending).
    response.read_pos = gs->log.SafeReadPos();
  }
  // Leader for the next position = datacenter of the previous winner. For
  // position 1 of a fresh log there is no previous winner; the leader MUST
  // still be the same at every datacenter (datacenter 0 by convention) —
  // otherwise two clients could each obtain a round-0 fast-path grant from
  // "their" leader and produce two distinct round-0 ballots, which the
  // recovery rule (max ballot wins) cannot arbitrate safely.
  response.leader_dc = 0;
  if (response.read_pos > 0) {
    Result<wal::LogEntry> last = gs->log.GetEntry(response.read_pos);
    if (last.ok() && last->winner_dc != kNoDc) {
      response.leader_dc = last->winner_dc;
    }
  }
  co_return ServiceResponse(std::move(response));
}

sim::Coro<ServiceResponse> TransactionService::HandleRead(
    const ReadRequest* request) {
  co_await sim::SleepFor(network_->simulator(), model_.read);
  GroupState* gs = Group(request->group);
  ReadResponse response;
  response.status = co_await CatchUp(gs, request->read_pos);
  if (response.status.ok()) {
    response.read = gs->log.ReadItem(request->item, request->read_pos);
    ++reads_served_;
  }
  co_return ServiceResponse(std::move(response));
}

sim::Coro<ServiceResponse> TransactionService::HandleReadRow(
    const ReadRowRequest* request) {
  // One full-row read costs one storage operation, like an item read (in
  // the paper's HBase testbed both fetch one row).
  co_await sim::SleepFor(network_->simulator(), model_.read);
  GroupState* gs = Group(request->group);
  ReadRowResponse response;
  response.status = co_await CatchUp(gs, request->read_pos);
  if (response.status.ok()) {
    response.attrs = gs->log.ReadRow(request->row, request->read_pos);
    ++reads_served_;
  }
  co_return ServiceResponse(std::move(response));
}

sim::Coro<ServiceResponse> TransactionService::HandlePrepare(
    const PrepareRequest* request) {
  co_await sim::SleepFor(network_->simulator(), model_.prepare);
  GroupState* gs = Group(request->group);
  PrepareResponse response;
  response.result = gs->acceptor.OnPrepare(request->pos, request->ballot);
  co_return ServiceResponse(std::move(response));
}

sim::Coro<ServiceResponse> TransactionService::HandleAccept(
    const AcceptRequest* request) {
  co_await sim::SleepFor(network_->simulator(), model_.accept);
  GroupState* gs = Group(request->group);
  AcceptResponse response;
  response.result =
      gs->acceptor.OnAccept(request->pos, request->ballot, request->value);
  co_return ServiceResponse(std::move(response));
}

sim::Coro<ServiceResponse> TransactionService::HandleApply(
    const ApplyRequest* request) {
  co_await sim::SleepFor(network_->simulator(), model_.apply);
  GroupState* gs = Group(request->group);
  const Status s =
      gs->acceptor.OnApply(request->pos, request->ballot, request->value);
  if (s.ok()) {
    NoteEntryLanded(request->group);
  } else {
    PAXOSCP_LOG(kError) << "dc " << dc_ << " apply failed at "
                        << request->group << "[" << request->pos
                        << "]: " << s.ToString();
  }
  co_return ServiceResponse(ApplyResponse{s.ok()});
}

sim::Coro<ServiceResponse> TransactionService::HandleClaimLeader(
    const ClaimLeaderRequest* request) {
  co_await sim::SleepFor(network_->simulator(), model_.claim);
  GroupState* gs = Group(request->group);
  ClaimLeaderResponse response;
  response.granted = gs->acceptor.TryClaimLeadership(request->pos);
  co_return ServiceResponse(std::move(response));
}

sim::Coro<ServiceResponse> TransactionService::HandleQueryCross(
    const QueryCrossRequest* request) {
  co_await sim::SleepFor(network_->simulator(), model_.begin);
  GroupState* gs = Group(request->group);
  QueryCrossResponse response;
  const wal::PrepareInfo prep = gs->log.PrepareFor(request->txn);
  if (prep.known) {
    response.has_prepare = true;
    response.prepare_pos = prep.pos;
    response.cross_ts = prep.cross_ts;
    response.participants = prep.participants;
  }
  const wal::CrossDecision decision = gs->log.DecisionFor(request->txn);
  if (decision.known) {
    response.has_decision = true;
    response.decision_commit = decision.commit;
    // Canonical = provably the lowest decide in the log: this replica has
    // every entry up to the decide position, so no lower decide can be
    // hiding in an entry it has not seen.
    response.decision_canonical =
        gs->log.ContiguousFrontier() >= decision.pos;
  }
  response.safe_pos = gs->log.SafeReadPos();
  co_return ServiceResponse(std::move(response));
}

void TransactionService::StartBackgroundApplier(TimeMicros interval,
                                                int64_t gc_keep_versions) {
  const bool was_running = applier_interval_ > 0;
  applier_interval_ = interval;
  gc_keep_versions_ = gc_keep_versions;
  // Only bump the generation when arming a fresh tick chain: re-tuning a
  // running applier must not orphan its already-queued tick.
  if (!was_running && interval > 0) {
    const uint64_t generation = ++applier_generation_;
    network_->simulator()->ScheduleAfter(
        interval, [this, generation] { BackgroundApplyTick(generation); },
        "txn/applier-tick");
  }
}

void TransactionService::BackgroundApplyTick(uint64_t generation) {
  // A tick scheduled before Stop (or before a later Start) is stale: it
  // must neither apply nor reschedule, or "stopped" appliers would keep
  // mutating the store during a post-run recovery quiesce.
  if (generation != applier_generation_ || applier_interval_ <= 0) return;
  for (auto& [group, gs] : groups_) {
    // Apply as far as contiguous entries allow; gaps (and undecided
    // cross-group prepares, which hold the watermark) are left for the
    // read-path learner (the background process never runs Paxos).
    LogPos missing = 0;
    const Status s = gs->log.ApplyThrough(gs->log.MaxDecided(), &missing);
    (void)s;  // FailedPrecondition on a gap is expected and fine
    ++background_applies_;
    if (gc_keep_versions_ >= 0) {
      const LogPos applied = gs->log.AppliedThrough();
      if (applied > static_cast<LogPos>(gc_keep_versions_)) {
        store_->TruncateAllVersions(
            static_cast<Timestamp>(applied - gc_keep_versions_));
      }
    }
  }
  network_->simulator()->ScheduleAfter(
      applier_interval_,
      [this, generation] { BackgroundApplyTick(generation); },
      "txn/applier-tick");
}

// ------------------------------------------- recovery daemon (D10)

void TransactionService::NoteEntryLanded(const std::string& group) {
  GroupState* gs = Group(group);
  const TimeMicros now = network_->simulator()->Now();
  // Sync the pin table with the WAL side table. Pure bookkeeping — no
  // events scheduled, no RNG consumed — so this hook leaves daemon-off runs
  // bit-identical. Pending prepares are rare and short-lived; the scan is
  // cheap.
  std::set<TxnId> live;
  for (const wal::PendingPrepare& p : gs->log.PendingPrepares()) {
    live.insert(p.txn);
    const PendingKey key{group, p.txn};
    if (pin_open_.emplace(key, now).second && recovery_running_ &&
        recovery_timed_.insert(key).second) {
      ArmRecoveryTimer(group, p.txn, 0,
                       recovery_options_.base_delay + RecoveryJitter(p.txn));
    }
  }
  for (auto it = pin_open_.begin(); it != pin_open_.end();) {
    if (it->first.first == group && live.count(it->first.second) == 0) {
      max_closed_pin_ = std::max(max_closed_pin_, now - it->second);
      recovery_timed_.erase(it->first);
      it = pin_open_.erase(it);
    } else {
      ++it;
    }
  }
}

TimeMicros TransactionService::RecoveryJitter(TxnId id) const {
  if (recovery_options_.max_jitter <= 0) return 0;
  const uint64_t h = HashMix(seed_ ^ (id * 0x9e3779b97f4a7c15ULL) ^
                             (static_cast<uint64_t>(dc_) << 32));
  return static_cast<TimeMicros>(
      h % static_cast<uint64_t>(recovery_options_.max_jitter));
}

TimeMicros TransactionService::RecoveryBackoff(int attempt) const {
  TimeMicros backoff = recovery_options_.retry_backoff;
  for (int i = 0; i < attempt; ++i) {
    backoff *= 2;
    if (backoff >= recovery_options_.max_backoff) {
      return recovery_options_.max_backoff;
    }
  }
  return std::min(backoff, recovery_options_.max_backoff);
}

void TransactionService::ArmRecoveryTimer(const std::string& group, TxnId id,
                                          int attempt, TimeMicros delay) {
  const uint64_t generation = recovery_generation_;
  network_->simulator()->ScheduleAfter(
      std::max<TimeMicros>(delay, 1),
      [this, group, id, attempt, generation] {
        RecoveryTimerFired(group, id, attempt, generation);
      },
      "txn/recovery-timer");
}

void TransactionService::RecoveryTimerFired(const std::string& group,
                                            TxnId id, int attempt,
                                            uint64_t generation) {
  if (!recovery_running_ || generation != recovery_generation_) return;
  const PendingKey key{group, id};
  if (pin_open_.count(key) == 0) {
    // Resolved while the timer was queued (coordinator finished, another
    // replica's recovery landed the decide here, client quiesce ran).
    recovery_timed_.erase(key);
    return;
  }
  if (attempt >= recovery_options_.max_attempts) {
    // Give up: bounds the timer chain under a permanent partition. The
    // post-run quiesce (when enabled) can still resolve the transaction.
    recovery_timed_.erase(key);
    return;
  }
  // Arbitration: the lowest *live* datacenter drives; everyone else backs
  // off and re-checks — when the arbiter goes down, the next timer firing
  // re-arbitrates and a new replica takes over. After `escalate_after`
  // deferrals a watcher drives regardless: the arbiter may not know this
  // prepare at all (it can be missing the entry), and duplicate drives are
  // harmless — the recovery core is idempotent.
  bool arbiter = true;
  for (DcId dc = 0; dc < dc_; ++dc) {
    if (!network_->IsDatacenterDown(dc)) {
      arbiter = false;
      break;
    }
  }
  if ((arbiter || attempt >= recovery_options_.escalate_after) &&
      recovery_inflight_.count(key) == 0) {
    DriveRecovery(group, id, attempt, generation);
    return;  // DriveRecovery re-arms the chain if the pin survives
  }
  ArmRecoveryTimer(group, id, attempt + 1, RecoveryBackoff(attempt));
}

sim::Task TransactionService::DriveRecovery(std::string group, TxnId id,
                                            int attempt, uint64_t generation) {
  const PendingKey key{group, id};
  recovery_inflight_.insert(key);
  ++recoveries_started_;
  recovery::RecoveryResult result =
      co_await recovery::CrossRecovery::Run(RecoveryClient(), group, id);
  recovery_inflight_.erase(key);
  if (generation != recovery_generation_) co_return;  // daemon stopped
  if (result.status.ok()) {
    ++recoveries_decided_;
    if (result.forced_abort) ++recoveries_forced_abort_;
    // The canonical decide now exists in every participant group, but this
    // replica's own log may still miss the decide *entry* (the instance
    // apply broadcast is fire-and-forget): learn forward until the local
    // pending entry clears, bounded by the decided frontier.
    GroupState* gs = Group(group);
    for (int step = 0; step < kMaxCatchUpSteps; ++step) {
      if (pin_open_.count(key) == 0) break;
      LogPos to_learn = 0;
      const LogPos limit = gs->log.MaxDecided() + 1;
      for (LogPos q = 1; q <= limit; ++q) {
        if (!gs->log.HasEntry(q)) {
          to_learn = q;
          break;
        }
      }
      if (to_learn == 0) break;
      const Status learned = co_await LearnEntry(group, to_learn);
      if (!learned.ok()) break;
    }
  }
  if (pin_open_.count(key) != 0) {
    // Still pending: recovery failed, or the decide entry has not reached
    // this replica yet. Retry with backoff (the attempt cap ends the chain).
    if (recovery_running_ && generation == recovery_generation_) {
      ArmRecoveryTimer(group, id, attempt + 1, RecoveryBackoff(attempt));
    }
  } else {
    recovery_timed_.erase(key);
  }
}

TransactionClient* TransactionService::RecoveryClient() {
  if (!recovery_client_) {
    ClientOptions copts = recovery_options_.client;
    copts.protocol = Protocol::kPaxosCP;   // decide walks need CP promotion
    copts.crash_after_prepares = -1;       // the daemon never self-crashes
    recovery_client_ = std::make_unique<TransactionClient>(
        network_, dc_, copts,
        /*client_uid=*/0xFF0000u | static_cast<uint32_t>(dc_),
        /*seed=*/HashMix(seed_ ^ 0x5851f42d4c957f2dULL));
  }
  return recovery_client_.get();
}

void TransactionService::StartRecoveryDaemon(
    const RecoveryDaemonOptions& options) {
  recovery_options_ = options;
  recovery_running_ = true;
  ++recovery_generation_;
  recovery_timed_.clear();
  // Adopt pending prepares that predate the daemon (start-of-run, or a
  // daemon transferred across a service restart re-reading the durable WAL
  // side tables): open their pins and arm fresh timers.
  const TimeMicros now = network_->simulator()->Now();
  for (auto& [group, gs] : groups_) {
    for (const wal::PendingPrepare& p : gs->log.PendingPrepares()) {
      const PendingKey key{group, p.txn};
      pin_open_.emplace(key, now);  // keeps an earlier open time if present
      if (recovery_timed_.insert(key).second) {
        ArmRecoveryTimer(group, p.txn, 0,
                         options.base_delay + RecoveryJitter(p.txn));
      }
    }
  }
}

void TransactionService::StopRecoveryDaemon() {
  recovery_running_ = false;
  ++recovery_generation_;
  recovery_timed_.clear();
}

std::vector<std::string> TransactionService::KnownGroups() const {
  std::vector<std::string> names;
  names.reserve(groups_.size());
  for (const auto& [name, gs] : groups_) {
    (void)gs;
    names.push_back(name);
  }
  return names;
}

TimeMicros TransactionService::MaxSafeReadPosPin(TimeMicros now) const {
  TimeMicros max_pin = max_closed_pin_;
  for (const auto& [key, opened] : pin_open_) {
    (void)key;
    max_pin = std::max(max_pin, now - opened);
  }
  return max_pin;
}

sim::Coro<Status> TransactionService::CatchUp(GroupState* gs, LogPos target) {
  for (int step = 0; step < kMaxCatchUpSteps; ++step) {
    LogPos missing = 0;
    TxnId undecided = 0;
    Status s = gs->log.ApplyThrough(target, &missing, &undecided);
    if (s.ok()) co_return s;
    if (s.code() != Status::Code::kFailedPrecondition) co_return s;
    if (undecided != 0) {
      // The watermark is held by a prepared-but-undecided cross-group
      // transaction at `missing`. Any legally issued read position at or
      // past the prepare implies a decide record exists at a position
      // <= target, so learn the gap between the prepare and the target —
      // the decide is in one of those entries.
      LogPos to_learn = 0;
      for (LogPos q = missing + 1; q <= target; ++q) {
        if (!gs->log.HasEntry(q)) {
          to_learn = q;
          break;
        }
      }
      if (to_learn == 0) {
        // Every entry through the target is present and none decides the
        // transaction: the position is genuinely undecided — the caller
        // cannot be served here until 2PC recovery resolves it.
        co_return Status::Unavailable(
            "cross-group txn " + TxnIdToString(undecided) +
            " prepared at position " + std::to_string(missing) +
            " is undecided");
      }
      Status learned = co_await LearnEntry(gs->log.group(), to_learn);
      if (!learned.ok()) co_return learned;
      continue;
    }
    Status learned = co_await LearnEntry(gs->log.group(), missing);
    if (!learned.ok()) co_return learned;
  }
  co_return Status::Internal("catch-up did not converge");
}

sim::Coro<Status> TransactionService::LearnEntry(std::string group,
                                                 LogPos pos) {
  GroupState* gs = Group(group);
  if (gs->log.HasEntry(pos)) co_return Status::OK();
  ++learn_instances_;
  const int d = network_->num_datacenters();
  const int majority = d / 2 + 1;
  const std::vector<DcId> all = AllDatacenters(d);
  sim::Simulator* sim = network_->simulator();

  paxos::Ballot ballot =
      paxos::NextBallot(gs->acceptor.ReadState(pos).next_bal, dc_);
  net::BroadcastOptions bopts;  // wait for all (or per-call timeout)

  for (int attempt = 0; attempt < kMaxLearnAttempts; ++attempt) {
    if (gs->log.HasEntry(pos)) co_return Status::OK();  // learned meanwhile
    // Prepare phase: discover the decided value or the highest vote.
    const std::any prepare_payload(
        ServiceRequest(PrepareRequest{group, pos, ballot}));
    net::BroadcastResult presults =
        co_await network_->Broadcast(dc_, all, prepare_payload, bopts);

    std::vector<paxos::LastVote> votes;
    std::optional<wal::LogEntry> decided;
    paxos::Ballot max_seen = ballot;
    int promised = 0;
    for (net::TargetResult& tr : presults) {
      if (!tr.status.ok()) continue;
      const auto& resp = std::any_cast<const ServiceResponse&>(tr.response);
      const paxos::PrepareResult& pr =
          std::get<PrepareResponse>(resp).result;
      if (pr.decided.has_value() && !decided.has_value()) {
        decided = pr.decided;
      }
      max_seen = std::max(max_seen, pr.next_bal);
      if (pr.promised) {
        ++promised;
        votes.push_back(
            paxos::LastVote{tr.dc, pr.vote_ballot, pr.vote_value});
      }
    }
    if (decided.has_value()) {
      Status applied = gs->acceptor.OnApply(pos, ballot, *decided);
      if (applied.ok()) NoteEntryLanded(group);
      co_return applied;
    }
    if (promised >= majority) {
      std::optional<wal::LogEntry> winning = paxos::FindWinningValue(votes);
      if (!winning.has_value()) {
        // A quorum reports bottom: the position is genuinely undecided. The
        // learner must not invent a value; the caller's read fails until
        // some client decides the position.
        co_return Status::NotFound("log position " + std::to_string(pos) +
                                   " is undecided");
      }
      const std::any accept_payload(
          ServiceRequest(AcceptRequest{group, pos, ballot, *winning}));
      net::BroadcastResult aresults =
          co_await network_->Broadcast(dc_, all, accept_payload, bopts);
      int accepted = 0;
      for (net::TargetResult& tr : aresults) {
        if (!tr.status.ok()) continue;
        const auto& resp = std::any_cast<const ServiceResponse&>(tr.response);
        const paxos::AcceptResult& ar = std::get<AcceptResponse>(resp).result;
        if (ar.accepted) {
          ++accepted;
        } else {
          max_seen = std::max(max_seen, ar.next_bal);
        }
      }
      if (accepted >= majority) {
        // Decided: propagate the outcome (fire-and-forget) and record it.
        ServiceRequest apply = ApplyRequest{group, pos, ballot, *winning};
        network_->Broadcast(dc_, all, std::any(apply), bopts);
        Status applied = gs->acceptor.OnApply(pos, ballot, *winning);
        if (applied.ok()) NoteEntryLanded(group);
        co_return applied;
      }
    }
    co_await sim::SleepFor(
        sim, rng_.UniformRange(5 * kMillisecond, 50 * kMillisecond));
    ballot = paxos::NextBallot(max_seen, dc_);
  }
  co_return Status::Unavailable("could not learn log position " +
                                std::to_string(pos));
}

}  // namespace paxoscp::txn
