// Shared cross-group 2PC recovery core (docs/ARCHITECTURE.md, design notes
// D8 + D10). The learn-or-force decide walk that resolves a prepared-but-
// undecided cross-group transaction lives here so that both entry points —
// the client-driven `TransactionClient::RecoverCrossTxn` and the
// service-side recovery daemon (`TransactionService::StartRecoveryDaemon`)
// — run the exact same protocol.
//
// The walk is stateless and idempotent: every invocation re-derives the
// commit group from the prepare's participant list, adopts whatever decide
// already sits lowest in the commit group's log (first decide wins), and
// only forces an abort decide when no canonical decision exists anywhere.
// Concurrent invocations — a live coordinator racing the daemon, two
// replicas' daemons escalating at once, or a duplicated recovery RPC —
// all converge on the same canonical decision.
#pragma once

#include <string>

#include "common/status.h"
#include "common/types.h"
#include "sim/coro.h"

namespace paxoscp::txn {

class TransactionClient;

namespace recovery {

/// Outcome of one recovery drive.
struct RecoveryResult {
  /// OK once the canonical decision is landed in every participant group.
  Status status;
  /// status.ok(): the transaction is decided everywhere.
  bool decided = false;
  /// The decision was reached through the force path (no canonical decision
  /// existed when this drive looked) and resolved to abort. False when the
  /// drive merely learned or propagated an existing decision.
  bool forced_abort = false;
  /// The canonical decision (valid iff decided).
  bool commit = false;
};

/// The recovery engine. Borrow any TransactionClient as the protocol engine
/// (it supplies QueryCrossAll and the ProposeDecide walk); `Run` never
/// touches the client's active-transaction state.
class CrossRecovery {
 public:
  /// Resolves cross-group transaction `id`, observed as prepared in
  /// `group`, to its canonical decision and propagates it to every
  /// participant. See TransactionClient::RecoverCrossTxn for the caller
  /// contract; this is its moved body.
  static sim::Coro<RecoveryResult> Run(TransactionClient* engine,
                                       std::string group, TxnId id);
};

}  // namespace recovery
}  // namespace paxoscp::txn
