// Simulated multi-datacenter network. Substitutes for the paper's EC2
// deployment (Virginia x3, Oregon, California over UDP): point-to-point
// latencies come from an RTT matrix, messages can be lost or delayed, whole
// datacenters and individual links can be taken down, and every request is
// bounded by a timeout — exactly the failure model in paper §2.2 ("either
// the message arrives before a known timeout or it is lost").
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/coro.h"
#include "sim/simulator.h"

namespace paxoscp::net {

/// Outcome of a single RPC.
struct CallResult {
  Status status;       // OK, TimedOut, or Unavailable
  std::any response;   // valid iff status.ok()
};

/// Outcome of one target within a Broadcast.
struct TargetResult {
  DcId dc = kNoDc;
  Status status;
  std::any response;
};
using BroadcastResult = std::vector<TargetResult>;

/// A service endpoint: receives a request (with the caller's DcId) and
/// produces a response, possibly suspending (e.g. to learn a log entry).
/// The request is passed by pointer — it is owned by the network layer and
/// outlives the handler coroutine. (Coroutine parameters must be trivially
/// destructible on this toolchain; see sim/coro.h.)
using ServiceHandler =
    std::function<sim::Coro<std::any>(DcId from, const std::any* request)>;

/// How long to wait for broadcast responses.
enum class WaitPolicy {
  /// Wait until every target either responded or timed out (paper default:
  /// the client keeps collecting votes until the timeout window closes, so
  /// in practice it sees "more than a simple majority" of responses, §5).
  kAll,
  /// Resume as soon as `quorum` successful responses arrived (plus an
  /// optional grace period); stragglers are marked Unavailable. Used by the
  /// wait-policy ablation.
  kQuorumEarly,
};

struct NetworkOptions {
  /// Probability that any single one-way message is silently dropped.
  double loss_probability = 0.0;
  /// One-way delay is rtt/2 * (1 + U(-jitter, +jitter)).
  double latency_jitter = 0.10;
  /// Per-call timeout when the caller passes 0 (paper: 2 seconds).
  TimeMicros default_timeout = 2 * kSecond;
  /// RNG seed for delay jitter and loss decisions.
  uint64_t seed = 1;

  // -- Adversarial delivery faults (docs/ARCHITECTURE.md, D10) --------------
  // All randomness below draws from a dedicated fault stream (never the
  // jitter/loss stream), so enabling these faults does not perturb the
  // delivery schedule of the messages they leave alone, and plans without
  // them replay byte-identically to a network that predates the feature.

  /// Probability that an inter-datacenter request is delivered twice: the
  /// copy travels independently (same outage-epoch capture, own delivery
  /// event), so the destination handler runs twice — the service-side
  /// idempotence this repo's 2PC records must provide.
  double duplicate_probability = 0.0;
  /// Probability that a one-way message is held back by an extra delay in
  /// (0, reorder_extra_max], letting later sends overtake it (delivery is
  /// already not FIFO under jitter; this widens the window adversarially).
  double reorder_probability = 0.0;
  /// Max extra delay of a reordered message, and max lag of a duplicate
  /// copy behind its original.
  TimeMicros reorder_extra_max = 200 * kMillisecond;
};

struct BroadcastOptions {
  WaitPolicy policy = WaitPolicy::kAll;
  int quorum = 0;                 // used by kQuorumEarly
  TimeMicros grace = 0;           // extra wait after quorum reached
  TimeMicros timeout = 0;         // 0 => NetworkOptions::default_timeout
};

class Network {
 public:
  /// `rtt_matrix[a][b]` is the round-trip time between datacenters a and b
  /// in microseconds; the diagonal models intra-datacenter hops.
  Network(sim::Simulator* sim, std::vector<std::vector<TimeMicros>> rtt_matrix,
          NetworkOptions options);

  int num_datacenters() const { return static_cast<int>(rtt_.size()); }

  /// Installs the handler that serves requests arriving at `dc`.
  void RegisterEndpoint(DcId dc, ServiceHandler handler);

  /// Sends `request` from `from` to `to`; resolves with the response or
  /// TimedOut. `timeout` of 0 uses the default (2 s). The request is taken
  /// by reference and copied internally — callers in coroutines must pass a
  /// named object, never a temporary inside a co_await expression (see
  /// sim/coro.h on GCC 12 cross-suspension temporary hazards).
  sim::Future<CallResult> Call(DcId from, DcId to, const std::any& request,
                               TimeMicros timeout = 0);

  /// Sends `request` to every target in parallel and gathers the results
  /// according to the wait policy. The result vector is ordered as `targets`.
  sim::Future<BroadcastResult> Broadcast(DcId from,
                                         const std::vector<DcId>& targets,
                                         const std::any& request,
                                         const BroadcastOptions& options);

  // -- Fault injection ------------------------------------------------------
  //
  // In-flight semantics (docs/ARCHITECTURE.md, design note D6): a message is
  // lost if its destination datacenter, or the directed link it travels,
  // goes down at any point between send and delivery — even if the fault
  // heals before the scheduled arrival (a down->up flap inside one flight
  // window still loses the message). A message whose *source* goes down
  // after it left is delivered normally, and responses already delivered to
  // the caller are never retracted. Implemented with per-destination and
  // per-directed-link outage epochs captured at send time.

  /// Takes a whole datacenter off the network (drops inbound and outbound).
  void SetDatacenterDown(DcId dc, bool down);
  bool IsDatacenterDown(DcId dc) const { return dc_down_[dc]; }

  /// Severs the (bidirectional) link between two datacenters.
  void SetLinkDown(DcId a, DcId b, bool down);

  /// Severs only the `from` -> `to` direction (asymmetric cut: requests one
  /// way still flow while the reverse direction is black-holed).
  void SetLinkOneWayDown(DcId from, DcId to, bool down);
  bool IsLinkDown(DcId from, DcId to) const { return link_down_[from][to]; }

  void set_loss_probability(double p) { options_.loss_probability = p; }
  double loss_probability() const { return options_.loss_probability; }

  // Adversarial delivery faults (see NetworkOptions). Setters are used by
  // the fault injector for kDuplicateBurst / kReorderBurst episodes.
  void set_duplicate_probability(double p) {
    options_.duplicate_probability = p;
  }
  double duplicate_probability() const { return options_.duplicate_probability; }
  void set_reorder_probability(double p) { options_.reorder_probability = p; }
  double reorder_probability() const { return options_.reorder_probability; }
  void set_reorder_extra_max(TimeMicros t) { options_.reorder_extra_max = t; }
  TimeMicros reorder_extra_max() const { return options_.reorder_extra_max; }

  // -- Statistics (used to verify the paper's message-complexity claim) -----

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  uint64_t calls_started() const { return calls_started_; }
  uint64_t messages_duplicated() const { return messages_duplicated_; }
  uint64_t messages_reordered() const { return messages_reordered_; }
  void ResetStats();

  sim::Simulator* simulator() const { return sim_; }
  TimeMicros default_timeout() const { return options_.default_timeout; }

 private:
  /// Samples the one-way delay from `from` to `to` using `rng` (the main
  /// jitter stream for regular legs, the fault stream for duplicate copies).
  TimeMicros SampleDelayFrom(Rng* rng, DcId from, DcId to);
  /// Samples the one-way delay from `from` to `to`.
  TimeMicros SampleDelay(DcId from, DcId to) {
    return SampleDelayFrom(&rng_, from, to);
  }
  /// True if the message should be dropped (loss, outage, severed link),
  /// drawing the loss decision from `rng`.
  bool ShouldDropFrom(Rng* rng, DcId from, DcId to);
  /// True if the message should be dropped (loss, outage, severed link).
  bool ShouldDrop(DcId from, DcId to) { return ShouldDropFrom(&rng_, from, to); }
  /// Extra reorder delay for one leg: 0 unless a reorder fault is active, in
  /// which case a Bernoulli(reorder_probability) draw from the fault stream
  /// holds the message back by U(1, reorder_extra_max). Never touches rng_.
  TimeMicros MaybeReorderExtra(DcId from, DcId to);
  /// Schedules the independent second delivery of a duplicated request. All
  /// of its randomness (lag behind the original, loss on both legs, response
  /// delay) comes from the fault stream so the original's schedule — and
  /// every other message's — is unchanged.
  void ScheduleDuplicateRequest(DcId from, DcId to, TimeMicros original_delay,
                                uint64_t request_epoch, const std::any& request,
                                sim::Promise<CallResult> promise);
  /// Outage epoch of the `from` -> `to` channel. Captured when a message is
  /// sent; if it changed by delivery time the message crossed a fault window
  /// and is lost (see the in-flight semantics note above).
  uint64_t ChannelEpoch(DcId from, DcId to) const {
    return dc_epoch_[to] + link_epoch_[from][to];
  }

  sim::Simulator* sim_;
  std::vector<std::vector<TimeMicros>> rtt_;
  NetworkOptions options_;
  Rng rng_;
  /// Dedicated stream for duplication/reorder faults; only advanced while
  /// the corresponding probability is non-zero, so fault-free runs are
  /// bit-identical with the feature compiled in.
  Rng fault_rng_;
  std::vector<ServiceHandler> handlers_;
  std::vector<bool> dc_down_;
  std::vector<std::vector<bool>> link_down_;
  /// Incremented every time the datacenter / directed link goes down.
  std::vector<uint64_t> dc_epoch_;
  std::vector<std::vector<uint64_t>> link_epoch_;

  uint64_t messages_sent_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t calls_started_ = 0;
  uint64_t messages_duplicated_ = 0;
  uint64_t messages_reordered_ = 0;
};

}  // namespace paxoscp::net
