#include "net/network.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "sim/race_hooks.h"

namespace paxoscp::net {

namespace {

/// Everything a handler invocation needs, heap-owned so the coroutine only
/// carries a trivially-destructible pointer parameter (GCC 12 miscompiles
/// frame copies of std::any / std::variant parameters; see sim/coro.h).
struct HandlerContext {
  ServiceHandler handler;
  DcId from = kNoDc;
  std::any request;
  std::function<void(std::any)> done;
};

/// Glue: runs a handler coroutine to completion, then hands the response to
/// `done`. Task is eager, so calling this starts the handler immediately.
/// Takes ownership of `raw_context`.
sim::Task RunHandler(HandlerContext* raw_context) {
  std::unique_ptr<HandlerContext> context(raw_context);
  std::any response =
      co_await context->handler(context->from, &context->request);
  context->done(std::move(response));
}

struct BroadcastAggregator {
  std::vector<TargetResult> results;
  int resolved = 0;
  int successes = 0;
  bool grace_scheduled = false;
};

}  // namespace

Network::Network(sim::Simulator* sim,
                 std::vector<std::vector<TimeMicros>> rtt_matrix,
                 NetworkOptions options)
    : sim_(sim),
      rtt_(std::move(rtt_matrix)),
      options_(options),
      rng_(options.seed),
      fault_rng_(options.seed ^ 0xd1b54a32d192ed03ULL) {
  const size_t n = rtt_.size();
  for (const auto& row : rtt_) {
    assert(row.size() == n && "rtt matrix must be square");
    (void)row;
  }
  handlers_.resize(n);
  dc_down_.assign(n, false);
  link_down_.assign(n, std::vector<bool>(n, false));
  dc_epoch_.assign(n, 0);
  link_epoch_.assign(n, std::vector<uint64_t>(n, 0));
}

void Network::RegisterEndpoint(DcId dc, ServiceHandler handler) {
  assert(dc >= 0 && dc < num_datacenters());
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kWrite, {"net", "endpoint", dc});
  }
  handlers_[dc] = std::move(handler);
}

TimeMicros Network::SampleDelayFrom(Rng* rng, DcId from, DcId to) {
  const TimeMicros one_way = rtt_[from][to] / 2;
  if (options_.latency_jitter <= 0 || one_way == 0) {
    return std::max<TimeMicros>(one_way, 1);
  }
  // A consequential draw mutates the shared stream: two same-time events
  // both sampling here observe swapped values under a tie reorder.
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kWrite,
                      {rng == &rng_ ? "net/rng" : "net/fault-rng"});
  }
  const double j = (rng->NextDouble() * 2 - 1) * options_.latency_jitter;
  const auto delayed = static_cast<TimeMicros>(
      static_cast<double>(one_way) * (1.0 + j));
  return std::max<TimeMicros>(delayed, 1);
}

bool Network::ShouldDropFrom(Rng* rng, DcId from, DcId to) {
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kRead, {"net", "dc", from});
    sim::race::Record(sim::race::AccessKind::kRead, {"net", "dc", to});
    sim::race::Record(sim::race::AccessKind::kRead, {"net", "link", from, to});
  }
  if (dc_down_[from] || dc_down_[to]) return true;
  if (link_down_[from][to]) return true;
  if (from != to && options_.loss_probability > 0) {
    // The Bernoulli below consumes a draw (Bernoulli(0) never does, so the
    // restructuring preserves the stream position of loss-free runs).
    if (sim::race::Active()) {
      sim::race::Record(sim::race::AccessKind::kWrite,
                        {rng == &rng_ ? "net/rng" : "net/fault-rng"});
    }
    if (rng->Bernoulli(options_.loss_probability)) return true;
  }
  return false;
}

TimeMicros Network::MaybeReorderExtra(DcId from, DcId to) {
  if (options_.reorder_probability <= 0 || from == to) return 0;
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kWrite, {"net/fault-rng"});
  }
  if (!fault_rng_.Bernoulli(options_.reorder_probability)) return 0;
  ++messages_reordered_;
  const TimeMicros max_extra =
      std::max<TimeMicros>(options_.reorder_extra_max, 1);
  return 1 + static_cast<TimeMicros>(
                 fault_rng_.Uniform(static_cast<uint64_t>(max_extra)));
}

sim::Future<CallResult> Network::Call(DcId from, DcId to,
                                      const std::any& request,
                                      TimeMicros timeout) {
  assert(from >= 0 && from < num_datacenters());
  assert(to >= 0 && to < num_datacenters());
  if (timeout <= 0) timeout = options_.default_timeout;
  ++calls_started_;

  sim::Promise<CallResult> promise(sim_);

  // Timeout: fires unless a response won the race first.
  sim_->ScheduleAfter(
      timeout,
      [promise] {
        promise.Set(CallResult{Status::TimedOut("rpc timeout"), {}});
      },
      "net/timeout");

  // Request leg.
  ++messages_sent_;
  if (ShouldDrop(from, to)) {
    ++messages_dropped_;
    return promise.GetFuture();
  }
  const TimeMicros request_delay =
      SampleDelay(from, to) + MaybeReorderExtra(from, to);
  const uint64_t request_epoch = ChannelEpoch(from, to);
  sim_->ScheduleAfter(
      request_delay,
      [this, from, to, promise, request_epoch, request = request]() mutable {
        // Delivery-time check: drop if the destination is down, or if it
        // (or the link traversed) went down at any point while the message
        // was in flight — a heal before arrival does not resurrect it.
        if (sim::race::Active()) {
          sim::race::Record(sim::race::AccessKind::kRead, {"net", "dc", to});
          sim::race::Record(sim::race::AccessKind::kRead,
                            {"net", "link", from, to});
          sim::race::Record(sim::race::AccessKind::kRead,
                            {"net", "endpoint", to});
        }
        if (dc_down_[to] || ChannelEpoch(from, to) != request_epoch) {
          ++messages_dropped_;
          return;
        }
        if (!handlers_[to]) {
          ++messages_dropped_;
          return;
        }
        auto* context = new HandlerContext;
        context->handler = handlers_[to];
        context->from = from;
        context->request = std::move(request);
        context->done = [this, from, to, promise](std::any response) {
                     // Response leg.
                     ++messages_sent_;
                     if (ShouldDrop(to, from)) {
                       ++messages_dropped_;
                       return;
                     }
                     const TimeMicros response_delay =
                         SampleDelay(to, from) + MaybeReorderExtra(to, from);
                     const uint64_t response_epoch = ChannelEpoch(to, from);
                     sim_->ScheduleAfter(
                         response_delay,
                         [this, from, to, promise, response_epoch,
                          response = std::move(response)]() mutable {
                           if (sim::race::Active()) {
                             sim::race::Record(sim::race::AccessKind::kRead,
                                               {"net", "dc", from});
                             sim::race::Record(sim::race::AccessKind::kRead,
                                               {"net", "link", to, from});
                           }
                           if (dc_down_[from] ||
                               ChannelEpoch(to, from) != response_epoch) {
                             ++messages_dropped_;
                             return;
                           }
                           promise.Set(CallResult{Status::OK(),
                                                  std::move(response)});
                         },
                         "net/response-leg");
        };
        RunHandler(context);
      },
      "net/request-leg");

  // Duplicate-delivery fault: with probability duplicate_probability (fault
  // stream), the request also arrives a second time, a little behind the
  // original. The destination handler runs twice — exactly the re-delivered
  // prepare/decide/apply the 2PC records must tolerate.
  if (options_.duplicate_probability > 0 && from != to) {
    if (sim::race::Active()) {
      sim::race::Record(sim::race::AccessKind::kWrite, {"net/fault-rng"});
    }
    if (fault_rng_.Bernoulli(options_.duplicate_probability)) {
      ScheduleDuplicateRequest(from, to, request_delay, request_epoch, request,
                               promise);
    }
  }
  return promise.GetFuture();
}

void Network::ScheduleDuplicateRequest(DcId from, DcId to,
                                       TimeMicros original_delay,
                                       uint64_t request_epoch,
                                       const std::any& request,
                                       sim::Promise<CallResult> promise) {
  // The copy is a message of its own: counted, lossy, and epoch-checked like
  // any other — it captured the same send-time epoch as the original, so it
  // still respects outage windows and heal gaps. Every random draw on either
  // of its legs comes from the fault stream, leaving the schedule of all
  // non-duplicated traffic untouched.
  ++messages_sent_;
  ++messages_duplicated_;
  if (ShouldDropFrom(&fault_rng_, from, to)) {
    ++messages_dropped_;
    return;
  }
  const TimeMicros max_lag =
      std::max<TimeMicros>(options_.reorder_extra_max, 1);
  const TimeMicros delay =
      original_delay + 1 +
      static_cast<TimeMicros>(fault_rng_.Uniform(static_cast<uint64_t>(max_lag)));
  sim_->ScheduleAfter(
      delay,
      [this, from, to, promise, request_epoch, request = request]() mutable {
    if (sim::race::Active()) {
      sim::race::Record(sim::race::AccessKind::kRead, {"net", "dc", to});
      sim::race::Record(sim::race::AccessKind::kRead,
                        {"net", "link", from, to});
      sim::race::Record(sim::race::AccessKind::kRead, {"net", "endpoint", to});
    }
    if (dc_down_[to] || ChannelEpoch(from, to) != request_epoch) {
      ++messages_dropped_;
      return;
    }
    if (!handlers_[to]) {
      ++messages_dropped_;
      return;
    }
    auto* context = new HandlerContext;
    context->handler = handlers_[to];
    context->from = from;
    context->request = std::move(request);
    context->done = [this, from, to, promise](std::any response) {
      // Response leg of the copy. Client-side a second response is invisible
      // anyway (sim::Promise is first-set-wins), but it still costs a
      // message and can be lost.
      ++messages_sent_;
      if (ShouldDropFrom(&fault_rng_, to, from)) {
        ++messages_dropped_;
        return;
      }
      const TimeMicros response_delay = SampleDelayFrom(&fault_rng_, to, from);
      const uint64_t response_epoch = ChannelEpoch(to, from);
      sim_->ScheduleAfter(
          response_delay,
          [this, from, to, promise, response_epoch,
           response = std::move(response)]() mutable {
            if (sim::race::Active()) {
              sim::race::Record(sim::race::AccessKind::kRead,
                                {"net", "dc", from});
              sim::race::Record(sim::race::AccessKind::kRead,
                                {"net", "link", to, from});
            }
            if (dc_down_[from] || ChannelEpoch(to, from) != response_epoch) {
              ++messages_dropped_;
              return;
            }
            promise.Set(CallResult{Status::OK(), std::move(response)});
          },
          "net/dup-response");
    };
    RunHandler(context);
  },
      "net/dup-request");
}

sim::Future<BroadcastResult> Network::Broadcast(
    DcId from, const std::vector<DcId>& targets, const std::any& request,
    const BroadcastOptions& options) {
  sim::Promise<BroadcastResult> promise(sim_);
  auto agg = std::make_shared<BroadcastAggregator>();
  const int n = static_cast<int>(targets.size());
  agg->results.resize(n);
  for (int i = 0; i < n; ++i) {
    agg->results[i].dc = targets[i];
    agg->results[i].status = Status::Unavailable("no response collected");
  }
  if (n == 0) {
    promise.Set(BroadcastResult{});
    return promise.GetFuture();
  }

  auto finish = [promise, agg] { promise.Set(agg->results); };

  for (int i = 0; i < n; ++i) {
    Call(from, targets[i], request, options.timeout)
        .OnReady([this, i, n, agg, finish, options,
                  promise](CallResult&& result) {
          if (promise.IsSet()) return;  // already resolved (quorum early)
          agg->results[i].status = result.status;
          agg->results[i].response = std::move(result.response);
          agg->resolved++;
          if (result.status.ok()) agg->successes++;

          if (agg->resolved == n) {
            finish();
            return;
          }
          if (options.policy == WaitPolicy::kQuorumEarly &&
              agg->successes >= options.quorum && !agg->grace_scheduled) {
            agg->grace_scheduled = true;
            if (options.grace <= 0) {
              finish();
            } else {
              sim_->ScheduleAfter(options.grace, finish,
                                  "net/broadcast-grace");
            }
          }
        });
  }
  return promise.GetFuture();
}

void Network::SetDatacenterDown(DcId dc, bool down) {
  assert(dc >= 0 && dc < num_datacenters());
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kWrite, {"net", "dc", dc});
  }
  if (down && !dc_down_[dc]) ++dc_epoch_[dc];
  dc_down_[dc] = down;
}

void Network::SetLinkDown(DcId a, DcId b, bool down) {
  SetLinkOneWayDown(a, b, down);
  SetLinkOneWayDown(b, a, down);
}

void Network::SetLinkOneWayDown(DcId from, DcId to, bool down) {
  assert(from >= 0 && from < num_datacenters());
  assert(to >= 0 && to < num_datacenters());
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kWrite, {"net", "link", from, to});
  }
  if (down && !link_down_[from][to]) ++link_epoch_[from][to];
  link_down_[from][to] = down;
}

void Network::ResetStats() {
  messages_sent_ = 0;
  messages_dropped_ = 0;
  calls_started_ = 0;
  messages_duplicated_ = 0;
  messages_reordered_ = 0;
}

}  // namespace paxoscp::net
