// Transactional YCSB-like workload generator (substitutes for the extended
// YCSB of paper ref [12]). Reproduces the evaluation workload of §6: each
// transaction performs `ops_per_txn` operations, each a read or a write of
// an attribute chosen at random from a single-row entity group; the level
// of data contention is set by the total number of attributes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "kvstore/store.h"

namespace paxoscp::workload {

struct WorkloadConfig {
  std::string group = "entity_group";
  std::string row = "row0";
  /// Total attributes in the entity group (paper Figure 6 sweeps this:
  /// 20 => each 10-op txn touches 50% of the items, 500 => 2%).
  int num_attributes = 100;
  int ops_per_txn = 10;
  /// Probability an operation is a read (paper: 50% reads, 50% writes).
  double read_fraction = 0.5;
  /// Uniform attribute choice by default (as in the paper); optionally
  /// Zipfian-skewed for the contention-skew extension benches.
  bool zipfian = false;
  double zipf_theta = 0.99;
  /// Length of generated attribute values.
  int value_size = 16;

  /// Sharded keyspace (D8): number of entity groups, each its own row and
  /// Paxos-CP log, named Generator::GroupName(config, i). 1 keeps the
  /// paper's single-group workload (and its exact RNG stream) unchanged.
  int num_groups = 1;
  /// Probability a transaction spans groups (cross-group 2PC; effective
  /// only when num_groups > 1).
  double cross_fraction = 0.0;
  /// Participants per cross-group transaction (clamped to num_groups).
  int groups_per_cross_txn = 2;
};

/// One generated operation.
struct Op {
  bool is_read = true;
  std::string attribute;
  std::string value;  // writes only
  /// Index into the transaction's participating-group list (always 0 for
  /// single-group transactions).
  int group = 0;
};

/// One generated transaction in a (possibly sharded) keyspace.
struct TxnPlan {
  bool cross = false;
  /// Participating group indexes (one entry unless cross).
  std::vector<int> groups;
  std::vector<Op> ops;
};

class Generator {
 public:
  Generator(const WorkloadConfig& config, uint64_t seed);

  /// Operations of one transaction.
  std::vector<Op> NextTxnOps();

  /// One transaction over the sharded keyspace: draws whether it is
  /// cross-group, which groups it touches, and the per-op group routing.
  /// With num_groups <= 1 this is exactly NextTxnOps (same RNG stream).
  TxnPlan NextTxnPlan();

  /// Initial attribute map for pre-loading the entity-group row.
  kvstore::AttributeMap InitialRow();

  /// Attribute name for index i ("a0", "a1", ...).
  static std::string AttributeName(int i);

  /// Name of entity group `i`: the configured group name when num_groups
  /// is 1, "<group>#<i>" in a sharded keyspace.
  static std::string GroupName(const WorkloadConfig& config, int i);

  std::string RandomValue();

 private:
  int NextAttributeIndex();

  WorkloadConfig config_;
  Rng rng_;
  ZipfianGenerator zipf_;
};

}  // namespace paxoscp::workload
