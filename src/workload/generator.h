// Transactional YCSB-like workload generator (substitutes for the extended
// YCSB of paper ref [12]). Reproduces the evaluation workload of §6: each
// transaction performs `ops_per_txn` operations, each a read or a write of
// an attribute chosen at random from a single-row entity group; the level
// of data contention is set by the total number of attributes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "kvstore/store.h"

namespace paxoscp::workload {

struct WorkloadConfig {
  std::string group = "entity_group";
  std::string row = "row0";
  /// Total attributes in the entity group (paper Figure 6 sweeps this:
  /// 20 => each 10-op txn touches 50% of the items, 500 => 2%).
  int num_attributes = 100;
  int ops_per_txn = 10;
  /// Probability an operation is a read (paper: 50% reads, 50% writes).
  double read_fraction = 0.5;
  /// Uniform attribute choice by default (as in the paper); optionally
  /// Zipfian-skewed for the contention-skew extension benches.
  bool zipfian = false;
  double zipf_theta = 0.99;
  /// Length of generated attribute values.
  int value_size = 16;
};

/// One generated operation.
struct Op {
  bool is_read = true;
  std::string attribute;
  std::string value;  // writes only
};

class Generator {
 public:
  Generator(const WorkloadConfig& config, uint64_t seed);

  /// Operations of one transaction.
  std::vector<Op> NextTxnOps();

  /// Initial attribute map for pre-loading the entity-group row.
  kvstore::AttributeMap InitialRow();

  /// Attribute name for index i ("a0", "a1", ...).
  static std::string AttributeName(int i);

  std::string RandomValue();

 private:
  int NextAttributeIndex();

  WorkloadConfig config_;
  Rng rng_;
  ZipfianGenerator zipf_;
};

}  // namespace paxoscp::workload
