// Experiment runner: drives N concurrent client "threads" (simulation
// tasks) through a transactional YCSB workload against a cluster, exactly
// as the paper's evaluation does — staggered starts, a per-thread target
// transaction rate, 500 transactions per experiment — and gathers the
// metrics every figure reports (commits by promotion round, latency by
// round, combinations) plus a full invariant check of the resulting logs.
#pragma once

#include <map>
#include <vector>

#include "common/histogram.h"
#include "core/checker.h"
#include "core/cluster.h"
#include "txn/transaction.h"
#include "workload/generator.h"

namespace paxoscp::workload {

struct RunnerConfig {
  WorkloadConfig workload;
  txn::ClientOptions client;
  /// Total transactions across all threads (paper: 500 per experiment).
  int total_txns = 500;
  /// Concurrent client threads (paper: 4, staggered).
  int num_threads = 4;
  TimeMicros stagger = 250 * kMillisecond;
  /// Per-thread target rate (paper: one transaction per second). Arrivals
  /// are open-loop: a late transaction starts immediately but the schedule
  /// does not drift.
  double target_rate_tps = 1.0;
  /// Home datacenter for all threads...
  DcId client_dc = 0;
  /// ...unless per-thread homes are given (Figure 8 runs one YCSB instance
  /// per datacenter).
  std::vector<DcId> thread_dcs;
  uint64_t seed = 7;
  /// Run the full invariant checker after the workload (on by default; the
  /// serializability check is part of every experiment in this repo).
  bool check_invariants = true;
  /// When > 0, bucket per-transaction outcomes into fixed windows of this
  /// width (virtual time since the run started, keyed by each transaction's
  /// start time) so availability-over-time is observable — the accounting
  /// behind bench/fig_availability and the chaos harness.
  TimeMicros availability_window = 0;
  /// Run the client-driven post-run 2PC recovery quiesce (on by default;
  /// requires check_invariants and a multi-group workload). Turn OFF to
  /// prove the service-side recovery daemon heals pending prepares without
  /// client help — the chaos harness's daemon slice does exactly that.
  bool quiesce_recovery = true;
  /// When > 0, every replica runs the service-side recovery daemon (D10)
  /// during the workload with this base timer (jitter/backoff at their
  /// RecoveryDaemonOptions defaults). 0 leaves the daemon off.
  TimeMicros recovery_timer = 0;
};

/// Outcome counts for one availability window ([i*w, (i+1)*w) since run
/// start). attempted = committed + read_only + aborted + unavailable.
struct WindowCounts {
  int attempted = 0;
  int committed = 0;    // read/write commits
  int read_only = 0;    // read-only commits (no log entry)
  int aborted = 0;      // lost to a conflicting transaction
  int unavailable = 0;  // protocol could not complete (outage / no quorum)

  /// Fraction of attempted transactions that committed, read-only commits
  /// included (a commit is a commit). This is the repo-wide definition —
  /// RunStats::CommitRate() uses the same one.
  double CommitRate() const {
    return attempted == 0
               ? 0
               : static_cast<double>(committed + read_only) / attempted;
  }
};

struct RunStats {
  int attempted = 0;
  int committed = 0;       // read/write commits (excludes read-only)
  int read_only = 0;
  int aborted = 0;
  int failed = 0;          // protocol could not complete (no quorum)
  bool all_threads_finished = false;

  /// commits_by_round[r] = transactions that committed after r promotions
  /// (r = 0 is the first attempt; basic Paxos only ever populates r = 0).
  std::vector<int> commits_by_round;
  std::vector<Histogram> latency_by_round;  // committed txns, microseconds
  Histogram latency_committed;              // all rounds
  Histogram latency_aborted;
  int max_promotions = 0;
  int fast_path_commits = 0;

  /// From the post-run log inspection.
  int combined_entries = 0;
  int combined_txns = 0;

  /// Cross-group transactions (D8; populated when workload.num_groups > 1
  /// and cross_fraction > 0). Cross txns are also counted in the overall
  /// attempted/committed/aborted/failed tallies.
  int cross_attempted = 0;
  int cross_committed = 0;
  int cross_aborted = 0;     // conflict aborts, incl. commit-order aborts
  int cross_unknown = 0;     // coordinator never learned the fate
  int cross_unavailable = 0;
  Histogram latency_cross;          // committed cross txns, microseconds
  Histogram latency_single_multi;   // committed single-group txns, same runs
  /// Commit-point latency of committed cross txns (CrossCommitResult::
  /// decision_latency): time until the canonical decide landed, excluding
  /// the awaited Phase-2 propagation. With parallel fan-out (D9) this
  /// stays ~2 wide-area rounds regardless of participant count.
  Histogram latency_cross_decision;

  /// Commit rate over cross-group transactions only.
  double CrossCommitRate() const {
    return cross_attempted == 0
               ? 0
               : static_cast<double>(cross_committed) / cross_attempted;
  }

  /// Service-side recovery daemon accounting (D10), summed over the
  /// replicas live at the end of the main run. `max_safe_read_pin` — the
  /// longest any pending prepare pinned a replica's SafeReadPos, open pins
  /// measured at end-of-run — is tracked whether or not the daemon runs:
  /// it is the headline number of bench/fig_recovery.
  uint64_t recoveries_started = 0;
  uint64_t recoveries_decided = 0;
  uint64_t recoveries_forced_abort = 0;
  TimeMicros max_safe_read_pin = 0;

  uint64_t messages_sent = 0;
  double messages_per_attempt = 0;
  TimeMicros virtual_duration = 0;

  /// Per-datacenter breakdown (Figure 8).
  std::map<DcId, int> attempted_by_dc;
  std::map<DcId, int> committed_by_dc;
  std::map<DcId, Histogram> latency_by_dc;

  /// Availability over time (populated when RunnerConfig::
  /// availability_window > 0; window i covers [i*w, (i+1)*w) of virtual
  /// time since the run began, keyed by transaction start).
  TimeMicros window_width = 0;
  std::vector<WindowCounts> windows;

  std::vector<core::ClientOutcome> outcomes;
  core::CheckReport check;

  /// Fraction of attempted transactions that committed, read-only commits
  /// included — the same definition as WindowCounts::CommitRate(), so
  /// whole-run and per-window rates are comparable.
  double CommitRate() const {
    return attempted == 0
               ? 0
               : static_cast<double>(committed + read_only) / attempted;
  }
  /// Commit rate over read/write transactions only (read-only commits
  /// never contend, so this isolates what concurrency control did).
  double ReadWriteCommitRate() const {
    const int rw = attempted - read_only;
    return rw == 0 ? 0 : static_cast<double>(committed) / rw;
  }
  double MeanLatencyMs(int round = -1) const;
};

/// Runs the workload on an existing cluster. The cluster must be fresh
/// (this seeds the initial row).
RunStats RunExperiment(core::Cluster* cluster, const RunnerConfig& config);

/// Convenience: builds the cluster from `cluster_config` and runs.
RunStats RunExperiment(const core::ClusterConfig& cluster_config,
                       const RunnerConfig& config);

}  // namespace paxoscp::workload
