#include "workload/generator.h"

#include <algorithm>
#include <map>
#include <set>

namespace paxoscp::workload {

Generator::Generator(const WorkloadConfig& config, uint64_t seed)
    : config_(config),
      rng_(seed),
      zipf_(static_cast<uint64_t>(
                config.num_attributes > 0 ? config.num_attributes : 1),
            config.zipf_theta) {}

std::string Generator::AttributeName(int i) {
  // += instead of `"a" + std::to_string(i)`: GCC 12 -O2 flags the
  // prepend-into-temporary form with a spurious -Wrestrict.
  std::string name = "a";
  name += std::to_string(i);
  return name;
}

std::string Generator::GroupName(const WorkloadConfig& config, int i) {
  if (config.num_groups <= 1) return config.group;
  std::string name = config.group;
  name += '#';
  name += std::to_string(i);
  return name;
}

std::string Generator::RandomValue() {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::string out;
  out.reserve(config_.value_size);
  for (int i = 0; i < config_.value_size; ++i) {
    out.push_back(kAlphabet[rng_.Uniform(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

int Generator::NextAttributeIndex() {
  if (config_.zipfian) return static_cast<int>(zipf_.Next(&rng_));
  return static_cast<int>(rng_.Uniform(config_.num_attributes));
}

std::vector<Op> Generator::NextTxnOps() {
  std::vector<Op> ops;
  ops.reserve(config_.ops_per_txn);
  for (int i = 0; i < config_.ops_per_txn; ++i) {
    Op op;
    op.is_read = rng_.Bernoulli(config_.read_fraction);
    op.attribute = AttributeName(NextAttributeIndex());
    if (!op.is_read) op.value = RandomValue();
    ops.push_back(std::move(op));
  }
  return ops;
}

TxnPlan Generator::NextTxnPlan() {
  TxnPlan plan;
  if (config_.num_groups <= 1) {
    plan.groups = {0};
    plan.ops = NextTxnOps();
    return plan;
  }
  plan.cross = rng_.Bernoulli(config_.cross_fraction);
  if (plan.cross) {
    // Draw k distinct groups (sorted for deterministic begin order).
    const int k = std::min(std::max(config_.groups_per_cross_txn, 2),
                           config_.num_groups);
    std::set<int> chosen;
    while (static_cast<int>(chosen.size()) < k) {
      chosen.insert(static_cast<int>(rng_.Uniform(config_.num_groups)));
    }
    plan.groups.assign(chosen.begin(), chosen.end());
  } else {
    plan.groups = {static_cast<int>(rng_.Uniform(config_.num_groups))};
  }
  plan.ops.reserve(config_.ops_per_txn);
  for (int i = 0; i < config_.ops_per_txn; ++i) {
    Op op;
    op.is_read = rng_.Bernoulli(config_.read_fraction);
    op.attribute = AttributeName(NextAttributeIndex());
    if (!op.is_read) op.value = RandomValue();
    op.group = plan.groups.size() > 1
                   ? static_cast<int>(rng_.Uniform(plan.groups.size()))
                   : 0;
    plan.ops.push_back(std::move(op));
  }
  return plan;
}

kvstore::AttributeMap Generator::InitialRow() {
  kvstore::AttributeMap row;
  for (int i = 0; i < config_.num_attributes; ++i) {
    row[AttributeName(i)] = RandomValue();
  }
  return row;
}

}  // namespace paxoscp::workload
