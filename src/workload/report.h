// Plain-text table formatting for the figure-reproduction benches: prints
// the same rows/series the paper's figures plot.
#pragma once

#include <string>
#include <vector>

#include "workload/runner.h"

namespace paxoscp::workload {

/// Prints "== <title> ==" followed by the paper reference line.
void PrintExperimentHeader(const std::string& title,
                           const std::string& paper_reference);

/// Fixed-width table: header row then data rows. Column widths adapt to the
/// longest cell.
void PrintTable(const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows);

/// Renders commits-by-promotion-round as "r0+r1+r2+... = total".
std::string CommitsByRound(const RunStats& stats, int max_rounds = 8);

/// Mean latency per round as "l0/l1/... ms" (committed transactions).
std::string LatencyByRound(const RunStats& stats, int max_rounds = 4);

std::string FormatDouble(double v, int precision = 1);

/// One-line invariant summary ("serializability OK" or the violations).
std::string CheckSummary(const RunStats& stats);

}  // namespace paxoscp::workload
