#include "workload/report.h"

#include <cstdio>
#include <sstream>

namespace paxoscp::workload {

void PrintExperimentHeader(const std::string& title,
                           const std::string& paper_reference) {
  std::printf("\n== %s ==\n", title.c_str());
  if (!paper_reference.empty()) {
    std::printf("   (paper: %s)\n", paper_reference.c_str());
  }
}

void PrintTable(const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(headers.size());
  for (size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows) print_row(row);
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string CommitsByRound(const RunStats& stats, int max_rounds) {
  std::ostringstream os;
  int shown = 0;
  for (int r = 0; r < static_cast<int>(stats.commits_by_round.size()) &&
                  r < max_rounds;
       ++r) {
    if (r > 0) os << "+";
    os << stats.commits_by_round[r];
    shown += stats.commits_by_round[r];
  }
  if (shown < stats.committed) os << "+...";
  os << " = " << stats.committed;
  return os.str();
}

std::string LatencyByRound(const RunStats& stats, int max_rounds) {
  std::ostringstream os;
  for (int r = 0; r < static_cast<int>(stats.latency_by_round.size()) &&
                  r < max_rounds;
       ++r) {
    if (stats.latency_by_round[r].count() == 0) break;
    if (r > 0) os << "/";
    os << FormatDouble(stats.latency_by_round[r].Mean() / 1000.0, 0);
  }
  os << " ms";
  return os.str();
}

std::string CheckSummary(const RunStats& stats) {
  if (stats.check.ok) return "serializability OK";
  return "INVARIANT VIOLATIONS: " + stats.check.ToString();
}

}  // namespace paxoscp::workload
