#include "workload/runner.h"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>

#include "common/logging.h"
#include "sim/coro.h"
#include "txn/cross.h"

namespace paxoscp::workload {

namespace {

/// Shared mutable state of one experiment run.
struct RunContext {
  core::Cluster* cluster = nullptr;
  RunnerConfig config;
  RunStats stats;
  int threads_done = 0;
  TimeMicros run_start = 0;
  /// Entity-group names (one entry in single-group runs).
  std::vector<std::string> group_names;
};

/// Ensures a slot exists in the by-round vectors.
void EnsureRound(RunStats* stats, int round) {
  while (static_cast<int>(stats->commits_by_round.size()) <= round) {
    stats->commits_by_round.push_back(0);
    stats->latency_by_round.emplace_back();
  }
}

/// Availability window covering `started_at`, or nullptr when windowed
/// accounting is off.
WindowCounts* WindowFor(RunContext* ctx, TimeMicros started_at) {
  const TimeMicros width = ctx->config.availability_window;
  if (width <= 0) return nullptr;
  const size_t index =
      static_cast<size_t>((started_at - ctx->run_start) / width);
  if (ctx->stats.windows.size() <= index) {
    ctx->stats.windows.resize(index + 1);
  }
  return &ctx->stats.windows[index];
}

/// Runs one single-group transaction. `planned` (multi-group runs only)
/// supplies pre-drawn ops and the target shard; without it, ops come from
/// generator->NextTxnOps() on the configured single group — the exact
/// legacy path, same RNG draw order.
sim::Coro<void> RunOneTxn(RunContext* ctx, txn::Session* session,
                          Generator* generator,
                          const TxnPlan* planned = nullptr) {
  const bool multi = planned != nullptr;
  const std::string& group = multi
                                 ? ctx->group_names[planned->groups.front()]
                                 : ctx->config.workload.group;
  const std::string& row = ctx->config.workload.row;
  RunStats& stats = ctx->stats;
  const DcId dc = session->home();

  ++stats.attempted;
  ++stats.attempted_by_dc[dc];
  const TimeMicros started_at = ctx->cluster->simulator()->Now();
  if (WindowCounts* w = WindowFor(ctx, started_at)) ++w->attempted;

  txn::Txn txn = co_await session->Begin(group);
  if (!txn.active()) {
    ++stats.failed;
    if (WindowCounts* w = WindowFor(ctx, started_at)) ++w->unavailable;
    co_return;
  }
  const TxnId id = txn.id();

  std::vector<Op> drawn;
  if (!multi) drawn = generator->NextTxnOps();
  const std::vector<Op>& ops = multi ? planned->ops : drawn;
  for (const Op& op : ops) {
    if (op.is_read) {
      Result<std::string> value = co_await txn.Read(row, op.attribute);
      if (!value.ok()) {
        // Read could not be served anywhere (e.g. total outage): abandon.
        txn.Abort();
        ++stats.failed;
        if (WindowCounts* w = WindowFor(ctx, started_at)) ++w->unavailable;
        core::ClientOutcome outcome;
        outcome.id = id;
        outcome.committed = false;
        if (multi) outcome.group = group;
        stats.outcomes.push_back(outcome);
        co_return;
      }
    } else {
      (void)txn.Write(row, op.attribute, op.value);
    }
  }

  txn::CommitResult result = co_await txn.Commit();
  const txn::TxnOutcome fate = txn::ClassifyCommit(result);

  core::ClientOutcome outcome;
  outcome.id = id;
  outcome.committed = result.committed;
  outcome.read_only = result.read_only;
  outcome.position = result.position;
  outcome.unknown = fate == txn::TxnOutcome::kUnknownOutcome;
  if (multi) outcome.group = group;
  stats.outcomes.push_back(outcome);

  if (WindowCounts* w = WindowFor(ctx, started_at)) {
    switch (fate) {
      case txn::TxnOutcome::kReadOnly: ++w->read_only; break;
      case txn::TxnOutcome::kCommitted: ++w->committed; break;
      case txn::TxnOutcome::kConflict: ++w->aborted; break;
      default: ++w->unavailable; break;
    }
  }

  switch (fate) {
    case txn::TxnOutcome::kReadOnly:
      ++stats.read_only;
      break;
    case txn::TxnOutcome::kCommitted:
      ++stats.committed;
      ++stats.committed_by_dc[dc];
      EnsureRound(&stats, result.promotions);
      ++stats.commits_by_round[result.promotions];
      stats.latency_by_round[result.promotions].Record(result.latency);
      stats.latency_committed.Record(result.latency);
      if (multi) stats.latency_single_multi.Record(result.latency);
      stats.latency_by_dc[dc].Record(result.latency);
      stats.max_promotions = std::max(stats.max_promotions,
                                      result.promotions);
      if (result.fast_path) ++stats.fast_path_commits;
      break;
    case txn::TxnOutcome::kConflict:
      ++stats.aborted;
      stats.latency_aborted.Record(result.latency);
      break;
    default:
      ++stats.failed;
      break;
  }
}

/// Multi-group variant of RunOneTxn (D8): draws the generator's TxnPlan
/// and either delegates a single-group transaction to RunOneTxn (same
/// code path as the unsharded workload, routed to the planned shard) or
/// runs a cross-group transaction committed via 2PC over the
/// participants' logs.
sim::Coro<void> RunOneTxnMulti(RunContext* ctx, txn::Session* session,
                               Generator* generator) {
  const std::string& row = ctx->config.workload.row;
  RunStats& stats = ctx->stats;
  const DcId dc = session->home();

  const TxnPlan plan = generator->NextTxnPlan();
  if (!plan.cross) {
    co_await RunOneTxn(ctx, session, generator, &plan);
    co_return;
  }

  ++stats.attempted;
  ++stats.attempted_by_dc[dc];
  const TimeMicros started_at = ctx->cluster->simulator()->Now();
  if (WindowCounts* w = WindowFor(ctx, started_at)) ++w->attempted;

  // ---- Cross-group transaction: one leg per participating shard.
  ++stats.cross_attempted;
  std::vector<std::string> groups;
  groups.reserve(plan.groups.size());
  for (int g : plan.groups) groups.push_back(ctx->group_names[g]);

  txn::CrossTxn txn = co_await session->BeginCross(groups);
  if (!txn.active()) {
    ++stats.failed;
    ++stats.cross_unavailable;
    if (WindowCounts* w = WindowFor(ctx, started_at)) ++w->unavailable;
    co_return;
  }
  const TxnId id = txn.id();
  // Ops run in plan order, but each maximal run of consecutive reads is
  // batched into one ReadMany fan-out — the legs' snapshot reads go out
  // concurrently (D9). A write ends the batch, so read-your-writes
  // ordering within the transaction is untouched.
  for (size_t op_index = 0; op_index < plan.ops.size();) {
    if (!plan.ops[op_index].is_read) {
      const Op& op = plan.ops[op_index];
      (void)txn.Write(groups[op.group], row, op.attribute, op.value);
      ++op_index;
      continue;
    }
    std::vector<txn::CrossRead> batch;
    while (op_index < plan.ops.size() && plan.ops[op_index].is_read) {
      const Op& op = plan.ops[op_index];
      batch.push_back(txn::CrossRead{groups[op.group], row, op.attribute});
      ++op_index;
    }
    std::vector<Result<std::string>> values = co_await txn.ReadMany(&batch);
    bool read_failed = false;
    for (const Result<std::string>& value : values) {
      if (!value.ok()) read_failed = true;
    }
    if (read_failed) {
      txn.Abort();
      ++stats.failed;
      ++stats.cross_unavailable;
      if (WindowCounts* w = WindowFor(ctx, started_at)) ++w->unavailable;
      core::ClientOutcome outcome;
      outcome.id = id;
      outcome.committed = false;
      outcome.groups = groups;
      stats.outcomes.push_back(outcome);
      co_return;
    }
  }

  txn::CrossCommitResult result = co_await txn.Commit();
  const txn::TxnOutcome fate = txn::ClassifyCrossCommit(result);

  core::ClientOutcome outcome;
  outcome.id = id;
  outcome.committed = result.committed;
  outcome.unknown = fate == txn::TxnOutcome::kUnknownOutcome;
  outcome.groups = groups;
  stats.outcomes.push_back(outcome);

  if (WindowCounts* w = WindowFor(ctx, started_at)) {
    switch (fate) {
      case txn::TxnOutcome::kCommitted: ++w->committed; break;
      case txn::TxnOutcome::kConflict: ++w->aborted; break;
      default: ++w->unavailable; break;
    }
  }
  switch (fate) {
    case txn::TxnOutcome::kCommitted:
      ++stats.committed;
      ++stats.cross_committed;
      ++stats.committed_by_dc[dc];
      EnsureRound(&stats, result.promotions);
      ++stats.commits_by_round[result.promotions];
      stats.latency_by_round[result.promotions].Record(result.latency);
      stats.latency_committed.Record(result.latency);
      stats.latency_cross.Record(result.latency);
      stats.latency_cross_decision.Record(result.decision_latency);
      stats.latency_by_dc[dc].Record(result.latency);
      stats.max_promotions = std::max(stats.max_promotions,
                                      result.promotions);
      break;
    case txn::TxnOutcome::kConflict:
      ++stats.aborted;
      ++stats.cross_aborted;
      stats.latency_aborted.Record(result.latency);
      break;
    case txn::TxnOutcome::kUnknownOutcome:
      ++stats.failed;
      ++stats.cross_unknown;
      break;
    default:
      ++stats.failed;
      ++stats.cross_unavailable;
      break;
  }
}

/// Post-run recovery quiesce (paper §4.1's learning obligation): a value
/// can be decided — a majority accepted it, the client reported commit —
/// while every fire-and-forget apply message was lost to an outage, leaving
/// the entry in no replica's log. The hole can even sit *below* a replica's
/// frontier: a Paxos-CP contender that saw the decision promotes past it
/// and applies the next position, while the decided entry itself reaches no
/// log. Each service therefore learns every missing position from 1 through
/// its frontier and then forward until it hits a genuinely undecided one,
/// materializing every decided entry so the (L1) check compares client
/// outcomes against the history a recovered system would actually serve.
sim::Coro<void> RecoverOneTail(core::Cluster* cluster, std::string group,
                               DcId dc) {
  txn::TransactionService* service = cluster->service(dc);
  for (LogPos pos = 1;; ++pos) {
    if (service->GroupLog(group)->HasEntry(pos)) continue;
    const Status learned = co_await service->LearnEntry(group, pos);
    if (learned.ok()) continue;
    if (pos > service->GroupLog(group)->MaxDecided()) {
      break;  // undecided tail (or unhealed partition)
    }
    // A hole below the frontier should always be learnable once the
    // network heals; if it is not, keep going and let the checker
    // report the gap honestly.
  }
}

sim::Task RecoverDecidedTail(RunContext* ctx) {
  // One learner per (group, replica), joined with WhenAll: each learns
  // only its own log, so the fan-out cannot interfere with itself and the
  // quiesce costs one tail walk of wall-clock instead of groups × dcs.
  core::Cluster* cluster = ctx->cluster;
  sim::WhenAll all(cluster->simulator());
  for (const std::string& group : ctx->group_names) {
    for (DcId dc = 0; dc < cluster->num_datacenters(); ++dc) {
      all.Add(RecoverOneTail(cluster, group, dc));
    }
  }
  co_await std::move(all);
}

/// Second quiesce stage for cross-group runs: resolves every prepared-but-
/// undecided cross transaction through the stateless 2PC recovery path
/// (learn-or-force the canonical decision in the commit group, propagate
/// it to the participants), exactly what a recovering production system
/// would do before serving reads past the prepare.
sim::Coro<void> RecoverOneCross(txn::TransactionClient* recovery_client,
                                std::string group, TxnId id) {
  const Status resolved =
      co_await recovery_client->RecoverCrossTxn(group, id);
  if (!resolved.ok()) {
    PAXOSCP_LOG(kWarn) << "cross recovery of " << TxnIdToString(id) << " in "
                       << group << ": " << resolved.ToString();
  }
}

/// Pending cross transactions, deduplicated by id (one recovery resolves
/// the canonical decision and propagates it to every participant, so the
/// old once-per-replica sweep was pure redundancy), each tagged with the
/// first group it was observed pending in.
std::vector<std::pair<std::string, TxnId>> PendingCrossWork(RunContext* ctx) {
  core::Cluster* cluster = ctx->cluster;
  std::set<TxnId> seen;
  std::vector<std::pair<std::string, TxnId>> work;
  for (const std::string& group : ctx->group_names) {
    for (DcId dc = 0; dc < cluster->num_datacenters(); ++dc) {
      for (const wal::PendingPrepare& p :
           cluster->service(dc)->GroupLog(group)->PendingPrepares()) {
        if (seen.insert(p.txn).second) work.emplace_back(group, p.txn);
      }
    }
  }
  return work;
}

sim::Task ResolveCrossPending(RunContext* ctx,
                              txn::TransactionClient* recovery_client) {
  // First pass: all pending transactions recovered concurrently (they are
  // independent: distinct ids, and concurrent decide walks on one log are
  // ordinary Paxos traffic). A second sweep catches anything the first
  // pass could not resolve — e.g. a replica still partitioned during the
  // fan-out — after the first pass's decides have settled.
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<std::pair<std::string, TxnId>> work = PendingCrossWork(ctx);
    if (work.empty()) co_return;
    sim::WhenAll all(ctx->cluster->simulator());
    for (const auto& [group, id] : work) {
      all.Add(RecoverOneCross(recovery_client, group, id));
    }
    co_await std::move(all);
  }
}

sim::Task RunThread(RunContext* ctx, int thread_index, int txns,
                    uint64_t seed) {
  sim::Simulator* sim = ctx->cluster->simulator();
  const RunnerConfig& config = ctx->config;

  const DcId home = config.thread_dcs.empty()
                        ? config.client_dc
                        : config.thread_dcs[thread_index %
                                            config.thread_dcs.size()];
  txn::Session session = ctx->cluster->CreateSession(home, config.client);
  Generator generator(config.workload, seed);

  co_await sim::SleepFor(sim, config.stagger * thread_index);

  const auto interarrival = static_cast<TimeMicros>(
      1e6 / std::max(config.target_rate_tps, 1e-9));
  const bool multi_group = config.workload.num_groups > 1;
  TimeMicros next_start = sim->Now();
  for (int i = 0; i < txns; ++i) {
    if (sim->Now() < next_start) {
      co_await sim::SleepFor(sim, next_start - sim->Now());
    }
    next_start += interarrival;  // open loop: schedule does not drift
    if (multi_group) {
      co_await RunOneTxnMulti(ctx, &session, &generator);
    } else {
      co_await RunOneTxn(ctx, &session, &generator);
    }
  }
  ++ctx->threads_done;
}

}  // namespace

double RunStats::MeanLatencyMs(int round) const {
  if (round < 0) return latency_committed.Mean() / 1000.0;
  if (round >= static_cast<int>(latency_by_round.size())) return 0;
  return latency_by_round[round].Mean() / 1000.0;
}

RunStats RunExperiment(core::Cluster* cluster, const RunnerConfig& config) {
  auto ctx = std::make_unique<RunContext>();
  ctx->cluster = cluster;
  ctx->config = config;
  const int num_groups = std::max(config.workload.num_groups, 1);
  ctx->group_names.reserve(num_groups);
  for (int g = 0; g < num_groups; ++g) {
    ctx->group_names.push_back(Generator::GroupName(config.workload, g));
  }

  // Pre-load each entity group's row into every datacenter (position 0).
  Generator loader(config.workload, config.seed);
  for (const std::string& group : ctx->group_names) {
    Status loaded = cluster->LoadInitialRow(group, config.workload.row,
                                            loader.InitialRow());
    if (!loaded.ok()) {
      ctx->stats.check.Violation("initial load failed: " + loaded.ToString());
      return std::move(ctx->stats);
    }
  }

  Rng seeds(config.seed ^ 0x9e3779b97f4a7c15ULL);
  const int per_thread = config.total_txns / config.num_threads;
  const int remainder = config.total_txns % config.num_threads;
  cluster->network()->ResetStats();
  const TimeMicros start = cluster->simulator()->Now();
  ctx->run_start = start;
  ctx->stats.window_width = config.availability_window;

  // Service-side recovery daemon (D10): when requested, every replica arms
  // deterministic timers for pending prepares throughout the run, so a
  // crashed coordinator's transaction is decided without client help.
  if (config.recovery_timer > 0) {
    txn::RecoveryDaemonOptions daemon_options;
    daemon_options.base_delay = config.recovery_timer;
    daemon_options.client = config.client;
    for (DcId dc = 0; dc < cluster->num_datacenters(); ++dc) {
      cluster->service(dc)->StartRecoveryDaemon(daemon_options);
    }
  }

  for (int t = 0; t < config.num_threads; ++t) {
    const int txns = per_thread + (t < remainder ? 1 : 0);
    RunThread(ctx.get(), t, txns, seeds.Next());
  }
  cluster->RunToCompletion();

  RunStats& stats = ctx->stats;
  stats.all_threads_finished = ctx->threads_done == config.num_threads;
  stats.virtual_duration = cluster->simulator()->Now() - start;
  stats.messages_sent = cluster->network()->messages_sent();
  stats.messages_per_attempt =
      stats.attempted == 0
          ? 0
          : static_cast<double>(stats.messages_sent) / stats.attempted;

  // Recovery accounting (D10), snapshotted before the post-run quiesce so
  // the numbers reflect what the daemon (or nothing) achieved during the
  // run itself. Restarted replicas' retired processes are not counted: the
  // stats describe the services live at end-of-run.
  {
    const TimeMicros now = cluster->simulator()->Now();
    for (DcId dc = 0; dc < cluster->num_datacenters(); ++dc) {
      txn::TransactionService* service = cluster->service(dc);
      stats.recoveries_started += service->recoveries_started();
      stats.recoveries_decided += service->recoveries_decided();
      stats.recoveries_forced_abort += service->recoveries_forced_abort();
      stats.max_safe_read_pin =
          std::max(stats.max_safe_read_pin, service->MaxSafeReadPosPin(now));
    }
  }
  if (config.recovery_timer > 0) {
    for (DcId dc = 0; dc < cluster->num_datacenters(); ++dc) {
      cluster->service(dc)->StopRecoveryDaemon();
    }
  }

  if (config.check_invariants) {
    RecoverDecidedTail(ctx.get());
    cluster->RunToCompletion();
    if (ctx->group_names.size() > 1) {
      if (config.quiesce_recovery) {
        // Cross-group quiesce (D8): resolve every prepared-but-undecided
        // cross transaction (crashed coordinators included) through 2PC
        // recovery, then learn the new decide entries everywhere so the
        // checker sees the history a recovered system would serve. With
        // quiesce_recovery off this step is skipped entirely: only the
        // service-side daemon (D10) may have healed pending prepares, which
        // is exactly what the chaos harness's daemon slice asserts.
        txn::ClientOptions recovery_options = config.client;
        recovery_options.protocol = txn::Protocol::kPaxosCP;
        txn::TransactionClient* recovery_client =
            cluster->CreateClient(config.client_dc, recovery_options);
        ResolveCrossPending(ctx.get(), recovery_client);
        cluster->RunToCompletion();
        RecoverDecidedTail(ctx.get());
        cluster->RunToCompletion();
      }
      core::Checker checker(cluster);
      stats.check = checker.CheckAllCross(ctx->group_names, stats.outcomes);
    } else {
      core::Checker checker(cluster);
      stats.check = checker.CheckAll(config.workload.group, stats.outcomes);
    }
    stats.combined_entries = stats.check.combined_entries;
    stats.combined_txns = stats.check.combined_txns;
    if (!stats.check.ok) {
      PAXOSCP_LOG(kError) << "invariant violations:\n"
                          << stats.check.ToString();
    }
  }
  return std::move(stats);
}

RunStats RunExperiment(const core::ClusterConfig& cluster_config,
                       const RunnerConfig& config) {
  core::Cluster cluster(cluster_config);
  return RunExperiment(&cluster, config);
}

}  // namespace paxoscp::workload
