// Proposer-side value selection: findWinningVal (Algorithm 2, lines 66-75)
// for basic Paxos and enhancedFindWinningVal (lines 76-87) for Paxos-CP.
// Pure functions over the collected last-vote responses, so every branch is
// unit-testable without a network.
#pragma once

#include <optional>
#include <vector>

#include "common/types.h"
#include "paxos/ballot.h"
#include "wal/log_entry.h"

namespace paxoscp::paxos {

/// One acceptor's last-vote response collected during the prepare phase.
struct LastVote {
  DcId dc = kNoDc;
  Ballot ballot;                          // null if the acceptor never voted
  std::optional<wal::LogEntry> value;     // nullopt == bottom
};

/// Basic Paxos: the value of the highest-ballot vote, or nullopt when every
/// response carried bottom (in which case the proposer is free to use its
/// own value).
std::optional<wal::LogEntry> FindWinningValue(
    const std::vector<LastVote>& votes);

/// What the enhanced selection decided to do.
enum class SelectionKind {
  /// Propose `value` (own transaction, an adopted prior value, or a
  /// combined list) in the accept phase.
  kPropose,
  /// Another value has certainly won this position (a majority voted for
  /// it at a single ballot) and our transaction is not in it; `value` holds
  /// the winning value so the caller can run the promotion conflict check
  /// (paper §5, "Promotion"). Note: this is a sound refinement of the
  /// paper's `maxVotes > D/2` trigger — see docs/ARCHITECTURE.md, note D1.
  kLost,
};

struct SelectionDecision {
  SelectionKind kind = SelectionKind::kPropose;
  wal::LogEntry value;
  bool combined = false;        // true when kPropose proposes a merged list
  int combined_txns = 0;        // transactions merged in beyond our own
};

struct CombinePolicy {
  bool enabled = true;
  /// Up to this many candidate transactions the search over subsets and
  /// orders is exhaustive ("in practice, the number of transactions to
  /// compare is small, only two or three"); beyond it a greedy single pass
  /// is used, as the paper prescribes.
  int exhaustive_limit = 5;
};

/// enhancedFindWinningVal. `responses_received` is the number of successful
/// prepare responses (|responseSet|); `total_datacenters` is D. `own` must
/// be a single-transaction entry containing the caller's transaction.
SelectionDecision EnhancedFindWinningValue(const std::vector<LastVote>& votes,
                                           int responses_received,
                                           int total_datacenters,
                                           const wal::LogEntry& own,
                                           const CombinePolicy& policy);

/// Builds the longest one-copy-serializable ordered list starting with the
/// transactions of `own`: candidates are appended (subset search, every
/// order, exhaustive up to policy.exhaustive_limit, greedy beyond) such that
/// no transaction in the list reads an item written by any preceding
/// transaction in the list. Returns the combined entry.
wal::LogEntry CombineTransactions(const wal::LogEntry& own,
                                  const std::vector<wal::TxnRecord>& candidates,
                                  const CombinePolicy& policy);

/// True if appending `txn` to `list` keeps the list one-copy serializable
/// (txn reads no item written by a transaction already in the list).
bool CanAppend(const std::vector<wal::TxnRecord>& list,
               const wal::TxnRecord& txn);

}  // namespace paxoscp::paxos
