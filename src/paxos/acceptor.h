// The acceptor side of the Paxos commit protocol (paper Algorithm 1),
// executed by the Transaction Service of each datacenter.
//
// Faithful to the paper, acceptor state for log position P lives in the
// local key-value store as a row <nextBal, ballotNumber, value>, initially
// <-1, -1, bottom>, and every mutation goes through CheckAndWrite so that
// concurrent service processes (the service is stateless; any process may
// handle any request) update it atomically.
#pragma once

#include <optional>
#include <string>

#include "common/status.h"
#include "common/types.h"
#include "kvstore/store.h"
#include "paxos/ballot.h"
#include "wal/log.h"
#include "wal/log_entry.h"

namespace paxoscp::paxos {

/// Acceptor reply to a prepare message.
struct PrepareResult {
  bool promised = false;          // true => this acceptor granted the ballot
  Ballot next_bal;                // promise now held (hint on rejection)
  Ballot vote_ballot;             // last vote cast (null if none)
  std::optional<wal::LogEntry> vote_value;
  /// Set when this replica already knows the decided value for the
  /// position; lets proposers skip straight to the outcome (catch-up hint).
  std::optional<wal::LogEntry> decided;
};

/// Acceptor reply to an accept message.
struct AcceptResult {
  bool accepted = false;
  Ballot next_bal;  // hint for the proposer's next round on rejection
};

class Acceptor {
 public:
  /// `log` must outlive the acceptor and wrap the same store.
  Acceptor(kvstore::MultiVersionStore* store, wal::WriteAheadLog* log);

  /// Algorithm 1, lines 3-15. Grants the ballot iff b > nextBal.
  PrepareResult OnPrepare(LogPos pos, const Ballot& b);

  /// Algorithm 1, lines 16-19 (plus the leader fast-path: a round-0 ballot
  /// is accepted by an acceptor that has made no promise and cast no vote).
  AcceptResult OnAccept(LogPos pos, const Ballot& b,
                        const wal::LogEntry& value);

  /// Algorithm 1, lines 20-21: writes the decided value into the log and
  /// refreshes the vote state so later prepares discover the decision.
  Status OnApply(LogPos pos, const Ballot& b, const wal::LogEntry& value);

  /// Leader-per-log-position grant (paper §4.1 "Paxos Optimizations"): the
  /// first claimant of a position at the leading datacenter may skip the
  /// prepare phase. Persisted via CheckAndWrite so duplicate grants are
  /// impossible even across service restarts (grants are what keep the
  /// round-0 fast path safe).
  bool TryClaimLeadership(LogPos pos);

  /// Reads current acceptor state (test hook).
  struct State {
    Ballot next_bal;
    Ballot vote_ballot;
    std::optional<wal::LogEntry> vote_value;
  };
  State ReadState(LogPos pos) const;

 private:
  std::string StateKey(LogPos pos) const;
  std::string LeaderKey(LogPos pos) const;

  kvstore::MultiVersionStore* store_;
  wal::WriteAheadLog* log_;
};

}  // namespace paxoscp::paxos
