// Paxos proposal numbers. A ballot is a (round, proposer) pair ordered
// lexicographically, which makes proposal numbers unique across clients as
// Algorithm 2 requires. Round 0 is reserved for the leader fast-path (the
// one client granted the position by the per-position leader may start at
// the accept phase with ballot {0, its dc}; everyone else begins prepare
// with round >= 1).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/types.h"

namespace paxoscp::paxos {

struct Ballot {
  int64_t round = -1;   // -1 == null ballot (no promise / no vote)
  DcId proposer = kNoDc;

  bool IsNull() const { return round < 0; }
  bool IsFastPath() const { return round == 0; }

  friend auto operator<=>(const Ballot& a, const Ballot& b) = default;

  /// Compact binary form (zigzag varints of round then proposer) used when
  /// persisting acceptor state in the key-value store (Algorithm 1 keeps it
  /// in datastore rows). Built in a fixed-size stack buffer — no temporary
  /// heap strings. The null ballot encodes as the empty string, matching the
  /// store's "missing attribute reads as empty" convention, so acceptor
  /// CheckAndWrite tests against unset state need no special casing.
  std::string Encode() const;
  static Ballot Decode(std::string_view s);

  /// Human-readable "round.proposer" (e.g. "3.1"; "null" for the null
  /// ballot) for logs and test output. NOT the persisted encoding — see
  /// Encode() for that.
  std::string ToString() const;
};

inline constexpr Ballot kNullBallot{};

/// The next proposal number to use after observing `max_seen`: one round
/// above anything seen, tagged with this proposer (Algorithm 2,
/// nextPropNumber).
Ballot NextBallot(const Ballot& max_seen, DcId proposer);

}  // namespace paxoscp::paxos
