#include "paxos/ballot.h"

#include <algorithm>

#include "common/coding.h"

namespace paxoscp::paxos {

std::string Ballot::Encode() const {
  if (IsNull()) return std::string();
  char buf[2 * kMaxVarint64Bytes];
  char* p = EncodeVarint64To(buf, ZigZagEncode(round));
  p = EncodeVarint64To(p, ZigZagEncode(proposer));
  return std::string(buf, static_cast<size_t>(p - buf));
}

Ballot Ballot::Decode(std::string_view s) {
  Ballot b;
  if (s.empty()) return b;  // null ballot
  int64_t round = 0;
  int64_t proposer = 0;
  if (!GetVarsint64(&s, &round) || !GetVarsint64(&s, &proposer) ||
      !s.empty()) {
    return Ballot{};  // malformed: treat as null
  }
  b.round = round;
  b.proposer = static_cast<DcId>(proposer);
  return b;
}

std::string Ballot::ToString() const {
  if (IsNull()) return "null";
  std::string out = std::to_string(round);
  out += '.';
  out += std::to_string(proposer);
  return out;
}

Ballot NextBallot(const Ballot& max_seen, DcId proposer) {
  return Ballot{std::max<int64_t>(max_seen.round, 0) + 1, proposer};
}

}  // namespace paxoscp::paxos
