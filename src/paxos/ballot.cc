#include "paxos/ballot.h"

#include <algorithm>
#include <cstdlib>

namespace paxoscp::paxos {

std::string Ballot::Encode() const {
  return std::to_string(round) + "." + std::to_string(proposer);
}

Ballot Ballot::Decode(std::string_view s) {
  Ballot b;
  if (s.empty()) return b;
  const size_t dot = s.find('.');
  if (dot == std::string_view::npos) return b;
  b.round = std::strtoll(std::string(s.substr(0, dot)).c_str(), nullptr, 10);
  b.proposer = static_cast<DcId>(
      std::strtol(std::string(s.substr(dot + 1)).c_str(), nullptr, 10));
  return b;
}

Ballot NextBallot(const Ballot& max_seen, DcId proposer) {
  return Ballot{std::max<int64_t>(max_seen.round, 0) + 1, proposer};
}

}  // namespace paxoscp::paxos
