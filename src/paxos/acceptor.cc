#include "paxos/acceptor.h"

#include <cassert>

namespace paxoscp::paxos {

namespace {

constexpr char kNextBalAttr[] = "next_bal";
constexpr char kVoteBalAttr[] = "vote_bal";
constexpr char kVoteValAttr[] = "vote_val";
constexpr char kClaimedAttr[] = "claimed";

}  // namespace

Acceptor::Acceptor(kvstore::MultiVersionStore* store, wal::WriteAheadLog* log)
    : store_(store), log_(log) {}

std::string Acceptor::StateKey(LogPos pos) const {
  return "!paxos/" + log_->group() + "/" + wal::PadPos(pos);
}

std::string Acceptor::LeaderKey(LogPos pos) const {
  return "!leader/" + log_->group() + "/" + wal::PadPos(pos);
}

Acceptor::State Acceptor::ReadState(LogPos pos) const {
  State state;
  Result<kvstore::RowVersion> row = store_->Read(StateKey(pos));
  if (!row.ok()) return state;  // initial <-1, -1, bottom>
  const kvstore::AttributeMap& attrs = *row->attributes;
  if (auto it = attrs.find(kNextBalAttr); it != attrs.end()) {
    state.next_bal = Ballot::Decode(it->second);
  }
  if (auto it = attrs.find(kVoteBalAttr); it != attrs.end()) {
    state.vote_ballot = Ballot::Decode(it->second);
  }
  if (auto it = attrs.find(kVoteValAttr);
      it != attrs.end() && !it->second.empty()) {
    Result<wal::LogEntry> value = wal::LogEntry::Decode(it->second);
    if (value.ok()) state.vote_value = *std::move(value);
  }
  return state;
}

PrepareResult Acceptor::OnPrepare(LogPos pos, const Ballot& b) {
  // keepTrying loop of Algorithm 1: re-read and retry when the
  // CheckAndWrite loses a race with a concurrent service process.
  for (;;) {
    const State state = ReadState(pos);
    PrepareResult result;
    result.vote_ballot = state.vote_ballot;
    result.vote_value = state.vote_value;
    if (Result<wal::LogEntry> entry = log_->GetEntry(pos); entry.ok()) {
      result.decided = *std::move(entry);
    }
    if (b > state.next_bal) {
      // Encode() of the null ballot is "" — the store's missing-attribute
      // convention — so unset state needs no special casing.
      const std::string old_next = state.next_bal.Encode();
      Status s = store_->CheckAndWrite(
          StateKey(pos), kNextBalAttr, old_next,
          {{kNextBalAttr, b.Encode()},
           {kVoteBalAttr, state.vote_ballot.Encode()},
           {kVoteValAttr,
            state.vote_value ? state.vote_value->Encode() : std::string()}});
      if (!s.ok()) continue;  // lost the race; retry with fresh state
      result.promised = true;
      result.next_bal = b;
      return result;
    }
    result.promised = false;
    result.next_bal = state.next_bal;
    return result;
  }
}

AcceptResult Acceptor::OnAccept(LogPos pos, const Ballot& b,
                                const wal::LogEntry& value) {
  for (;;) {
    const State state = ReadState(pos);
    AcceptResult result;
    result.next_bal = state.next_bal;
    // Algorithm 1 line 18: vote iff propNum matches the most recent promise.
    // Fast path: a round-0 ballot is also acceptable when this acceptor is
    // untouched (no promise, no vote) — only one client per position can
    // ever hold round 0 thanks to the persisted leader grant.
    const bool normal_path = !b.IsNull() && b == state.next_bal;
    const bool fast_path = b.IsFastPath() && state.next_bal.IsNull() &&
                           state.vote_ballot.IsNull();
    const bool revote = b == state.vote_ballot;  // duplicate accept; idempotent
    if (!(normal_path || fast_path || revote)) {
      result.accepted = false;
      return result;
    }
    const std::string old_next = state.next_bal.Encode();
    const Ballot new_next = std::max(state.next_bal, b);
    Status s = store_->CheckAndWrite(StateKey(pos), kNextBalAttr, old_next,
                                     {{kNextBalAttr, new_next.Encode()},
                                      {kVoteBalAttr, b.Encode()},
                                      {kVoteValAttr, value.Encode()}});
    if (!s.ok()) continue;  // raced; retry
    result.accepted = true;
    result.next_bal = new_next;
    return result;
  }
}

Status Acceptor::OnApply(LogPos pos, const Ballot& b,
                         const wal::LogEntry& value) {
  // Record the decision in the write-ahead log (idempotent; Corruption on a
  // conflicting decision, which would be a Paxos safety violation).
  PAXOSCP_RETURN_IF_ERROR(log_->SetEntry(pos, value));
  // Refresh the vote state so later prepares on this position report the
  // decided value (Algorithm 1 line 21 writes <propNum, value>).
  for (;;) {
    const State state = ReadState(pos);
    if (state.vote_value && state.vote_value->Fingerprint() ==
                                value.Fingerprint()) {
      return Status::OK();
    }
    const std::string old_next = state.next_bal.Encode();
    const Ballot new_next = std::max(state.next_bal, b);
    const Ballot new_vote = std::max(state.vote_ballot, b);
    Status s = store_->CheckAndWrite(StateKey(pos), kNextBalAttr, old_next,
                                     {{kNextBalAttr, new_next.Encode()},
                                      {kVoteBalAttr, new_vote.Encode()},
                                      {kVoteValAttr, value.Encode()}});
    if (s.ok()) return Status::OK();
  }
}

bool Acceptor::TryClaimLeadership(LogPos pos) {
  // First caller flips claimed "" -> "1"; everyone after gets Conflict.
  return store_
      ->CheckAndWrite(LeaderKey(pos), kClaimedAttr, "", {{kClaimedAttr, "1"}})
      .ok();
}

}  // namespace paxoscp::paxos
