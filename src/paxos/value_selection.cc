#include "paxos/value_selection.h"

#include <algorithm>
#include <map>
#include <set>

namespace paxoscp::paxos {

std::optional<wal::LogEntry> FindWinningValue(
    const std::vector<LastVote>& votes) {
  const LastVote* best = nullptr;
  for (const LastVote& v : votes) {
    if (!v.value.has_value()) continue;
    if (best == nullptr || v.ballot > best->ballot) best = &v;
  }
  if (best == nullptr) return std::nullopt;
  return *best->value;
}

bool CanAppend(const std::vector<wal::TxnRecord>& list,
               const wal::TxnRecord& txn) {
  for (const wal::ReadRecord& r : txn.reads) {
    for (const wal::TxnRecord& earlier : list) {
      if (earlier.Writes(r.item)) return false;
    }
  }
  return true;
}

namespace {

/// Depth-first search over subsets and orders of `candidates`, extending
/// `list` in place; tracks the best (longest) extension found.
void SearchOrders(std::vector<wal::TxnRecord>* list,
                  std::vector<wal::TxnRecord>* candidates,
                  std::vector<bool>* used, size_t base_size,
                  std::vector<wal::TxnRecord>* best) {
  if (list->size() > best->size()) *best = *list;
  if (best->size() == base_size + candidates->size()) return;  // all placed
  for (size_t i = 0; i < candidates->size(); ++i) {
    if ((*used)[i]) continue;
    if (!CanAppend(*list, (*candidates)[i])) continue;
    (*used)[i] = true;
    list->push_back((*candidates)[i]);
    SearchOrders(list, candidates, used, base_size, best);
    list->pop_back();
    (*used)[i] = false;
  }
}

}  // namespace

wal::LogEntry CombineTransactions(const wal::LogEntry& own,
                                  const std::vector<wal::TxnRecord>& candidates,
                                  const CombinePolicy& policy) {
  wal::LogEntry combined = own;
  // Deduplicate candidates against our own transactions and one another.
  std::set<TxnId> seen;
  for (const wal::TxnRecord& t : combined.txns) seen.insert(t.id);
  std::vector<wal::TxnRecord> pool;
  for (const wal::TxnRecord& t : candidates) {
    if (seen.insert(t.id).second) pool.push_back(t);
  }
  if (pool.empty() || !policy.enabled) return combined;

  if (static_cast<int>(pool.size()) <= policy.exhaustive_limit) {
    std::vector<wal::TxnRecord> best = combined.txns;
    std::vector<bool> used(pool.size(), false);
    std::vector<wal::TxnRecord> list = combined.txns;
    SearchOrders(&list, &pool, &used, combined.txns.size(), &best);
    combined.txns = std::move(best);
  } else {
    // Greedy single pass (paper: "a simple greedy approach can be used,
    // making one pass over the transaction list").
    for (const wal::TxnRecord& t : pool) {
      if (CanAppend(combined.txns, t)) combined.txns.push_back(t);
    }
  }
  return combined;
}

SelectionDecision EnhancedFindWinningValue(const std::vector<LastVote>& votes,
                                           int responses_received,
                                           int total_datacenters,
                                           const wal::LogEntry& own,
                                           const CombinePolicy& policy) {
  const int d = total_datacenters;
  // Tally votes per distinct value (by fingerprint) — used for the
  // combination window — and per (ballot, value) pair — used for the
  // promotion trigger. The paper promotes whenever one value has more than
  // D/2 votes across any mix of ballots, but only a majority of votes at
  // the *same* ballot proves the value is chosen (votes for one value cast
  // at different ballots can still lose to a competing adoption), so we
  // promote on the sound same-ballot condition and otherwise fall through
  // to the basic rule, which drives the instance to its decided outcome —
  // after which the client promotes with certainty (see
  // docs/ARCHITECTURE.md, note D1).
  std::map<uint64_t, int> tally;
  std::map<uint64_t, const wal::LogEntry*> values;
  std::map<std::pair<int64_t, uint64_t>, int> ballot_tally;
  int max_same_ballot = 0;
  const wal::LogEntry* same_ballot_value = nullptr;
  for (const LastVote& v : votes) {
    if (!v.value.has_value()) continue;
    const uint64_t fp = v.value->Fingerprint();
    tally[fp]++;
    values[fp] = &*v.value;
    const int n = ++ballot_tally[{v.ballot.round * 1000 + v.ballot.proposer,
                                  fp}];
    if (n > max_same_ballot) {
      max_same_ballot = n;
      same_ballot_value = &*v.value;
    }
  }
  int max_votes = 0;
  const wal::LogEntry* max_value = nullptr;
  for (const auto& [fp, count] : tally) {
    if (count > max_votes) {
      max_votes = count;
      max_value = values[fp];
    }
  }

  SelectionDecision decision;
  const bool own_in_same_ballot_value =
      same_ballot_value != nullptr && !own.txns.empty() &&
      std::all_of(own.txns.begin(), own.txns.end(),
                  [&](const wal::TxnRecord& t) {
                    // Id AND kind: a recovery decide reuses the id of the
                    // prepare it resolves, and must read as a loss here.
                    return same_ballot_value->ContainsRecord(t.id, t.kind);
                  });
  if (max_same_ballot > d / 2 && !own_in_same_ballot_value) {
    // A majority voted for this value at one ballot: it is decided.
    decision.kind = SelectionKind::kLost;
    decision.value = *same_ballot_value;
    return decision;
  }

  if (max_votes + (d - responses_received) <= d / 2) {
    // No value can have reached a majority: the proposer may choose freely,
    // so it combines every compatible discovered transaction with its own
    // (paper §5 "Combination").
    std::vector<wal::TxnRecord> candidates;
    for (const auto& [fp, entry] : values) {
      for (const wal::TxnRecord& t : entry->txns) candidates.push_back(t);
    }
    wal::LogEntry combined = CombineTransactions(own, candidates, policy);
    decision.kind = SelectionKind::kPropose;
    decision.combined_txns = static_cast<int>(combined.txns.size()) -
                             static_cast<int>(own.txns.size());
    decision.combined = decision.combined_txns > 0;
    decision.value = std::move(combined);
    return decision;
  }

  // A value may be ahead (max_votes > d/2 across mixed ballots) without
  // being decided; revert to the basic Paxos selection rule, which adopts
  // the highest-ballot vote and drives the instance to its outcome.
  (void)max_value;
  std::optional<wal::LogEntry> winning = FindWinningValue(votes);
  decision.kind = SelectionKind::kPropose;
  decision.value = winning.has_value() ? *std::move(winning) : own;
  return decision;
}

}  // namespace paxoscp::paxos
