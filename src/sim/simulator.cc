#include "sim/simulator.h"

#include <algorithm>
#include <utility>

namespace paxoscp::sim {

namespace {
thread_local Simulator* t_current_simulator = nullptr;
}  // namespace

Simulator::Simulator() : previous_current_(t_current_simulator) {
  t_current_simulator = this;
}

Simulator::~Simulator() { t_current_simulator = previous_current_; }

Simulator* Simulator::Current() { return t_current_simulator; }

bool Simulator::SlotLess(uint32_t a, uint32_t b) const {
  const Slot& x = slots_[a];
  const Slot& y = slots_[b];
  if (x.time != y.time) return x.time < y.time;
  return x.seq < y.seq;  // FIFO among equal timestamps
}

void Simulator::HeapPush(uint32_t slot) {
  heap_.push_back(slot);
  size_t i = heap_.size() - 1;
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!SlotLess(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

uint32_t Simulator::HeapPop() {
  const uint32_t top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  size_t i = 0;
  for (;;) {
    const size_t left = 2 * i + 1;
    const size_t right = left + 1;
    size_t smallest = i;
    if (left < n && SlotLess(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && SlotLess(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
  return top;
}

uint32_t Simulator::AllocSlot() {
  if (free_head_ != kNoSlot) {
    const uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    return index;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void Simulator::FreeSlot(uint32_t index) {
  Slot& s = slots_[index];
  s.fn = nullptr;
  s.in_use = false;
  s.cancelled = false;
  ++s.generation;  // invalidate outstanding EventIds for this slot
  s.next_free = free_head_;
  free_head_ = index;
}

EventId Simulator::ScheduleAt(TimeMicros when, EventFn fn) {
  const uint32_t index = AllocSlot();
  Slot& s = slots_[index];
  s.time = std::max(when, now_);
  s.seq = next_seq_++;
  s.fn = std::move(fn);
  s.in_use = true;
  s.cancelled = false;
  HeapPush(index);
  ++live_;
  return MakeId(s.generation, index);
}

EventId Simulator::ScheduleAfter(TimeMicros delay, EventFn fn) {
  return ScheduleAt(now_ + std::max<TimeMicros>(delay, 0), std::move(fn));
}

void Simulator::Cancel(EventId id) {
  if (id == kInvalidEventId) return;
  const uint32_t index = static_cast<uint32_t>(id);
  const uint32_t generation = static_cast<uint32_t>(id >> 32);
  if (index >= slots_.size()) return;
  Slot& s = slots_[index];
  // Generation mismatch means the event already ran (or its slot was
  // recycled): exact no-op, never an accounting tombstone.
  if (!s.in_use || s.generation != generation || s.cancelled) return;
  s.cancelled = true;
  s.fn = nullptr;  // release captured state eagerly
  --live_;
}

uint32_t Simulator::PeekLive() {
  while (!heap_.empty()) {
    const uint32_t top = heap_.front();
    if (!slots_[top].cancelled) return top;
    FreeSlot(HeapPop());
  }
  return kNoSlot;
}

bool Simulator::Step() {
  const uint32_t index = PeekLive();
  if (index == kNoSlot) return false;
  HeapPop();
  Slot& s = slots_[index];
  now_ = s.time;
  ++executed_;
  --live_;
  EventFn fn = std::move(s.fn);
  // Free before running: the callback may schedule (and even cancel) new
  // events, which can recycle this slot under a fresh generation.
  FreeSlot(index);
  // Events may run coroutines belonging to this simulator even when
  // another Simulator was constructed more recently on this thread.
  Simulator* prev = t_current_simulator;
  t_current_simulator = this;
  fn();
  t_current_simulator = prev;
  return true;
}

uint64_t Simulator::Run(uint64_t max_events) {
  uint64_t n = 0;
  while (n < max_events && Step()) ++n;
  return n;
}

uint64_t Simulator::RunUntil(TimeMicros deadline) {
  uint64_t n = 0;
  for (;;) {
    const uint32_t index = PeekLive();
    if (index == kNoSlot || slots_[index].time > deadline) break;
    Step();
    ++n;
  }
  now_ = std::max(now_, deadline);
  return n;
}

}  // namespace paxoscp::sim
