#include "sim/simulator.h"

#include <algorithm>
#include <utility>

namespace paxoscp::sim {

namespace {
thread_local Simulator* t_current_simulator = nullptr;
}  // namespace

Simulator::Simulator() : previous_current_(t_current_simulator) {
  t_current_simulator = this;
}

Simulator::~Simulator() { t_current_simulator = previous_current_; }

Simulator* Simulator::Current() { return t_current_simulator; }

EventId Simulator::ScheduleAt(TimeMicros when, std::function<void()> fn) {
  const EventId id = next_id_++;
  queue_.push(Event{std::max(when, now_), next_seq_++, id, std::move(fn)});
  return id;
}

EventId Simulator::ScheduleAfter(TimeMicros delay, std::function<void()> fn) {
  return ScheduleAt(now_ + std::max<TimeMicros>(delay, 0), std::move(fn));
}

void Simulator::Cancel(EventId id) {
  if (id != kInvalidEventId) cancelled_.insert(id);
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    // std::priority_queue::top is const; move via const_cast is the standard
    // pattern for pop-and-run queues.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.time;
    ++executed_;
    // Events may run coroutines belonging to this simulator even when
    // another Simulator was constructed more recently on this thread.
    Simulator* prev = t_current_simulator;
    t_current_simulator = this;
    ev.fn();
    t_current_simulator = prev;
    return true;
  }
  return false;
}

uint64_t Simulator::Run(uint64_t max_events) {
  uint64_t n = 0;
  while (n < max_events && Step()) ++n;
  return n;
}

uint64_t Simulator::RunUntil(TimeMicros deadline) {
  uint64_t n = 0;
  while (!queue_.empty()) {
    // Skip leading cancelled events so top() reflects a real event time.
    const Event& top = queue_.top();
    if (cancelled_.count(top.id) > 0) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.time > deadline) break;
    Step();
    ++n;
  }
  now_ = std::max(now_, deadline);
  return n;
}

}  // namespace paxoscp::sim
