#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "sim/race_detector.h"

namespace paxoscp::sim {

namespace {

thread_local Simulator* t_current_simulator = nullptr;

/// splitmix64 finalizer: the bit mixer behind the tie-shuffle permutation.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Simulator::Simulator() : previous_current_(t_current_simulator) {
  t_current_simulator = this;
}

Simulator::~Simulator() { t_current_simulator = previous_current_; }

Simulator* Simulator::Current() { return t_current_simulator; }

bool Simulator::SlotLess(uint32_t a, uint32_t b) const {
  const Slot& x = slots_[a];
  const Slot& y = slots_[b];
  if (x.time != y.time) return x.time < y.time;
  if (shuffle_seed_ != 0 && x.time < shuffle_horizon_) {
    // Tie-shuffle exploration (D12): equal-time events are ordered by a
    // per-(seed, time) pseudo-random permutation of their seqs instead of
    // FIFO. Any run-level divergence under a different seed is a real
    // schedule-order race.
    const uint64_t kx = ShuffleKey(x.time, x.seq);
    const uint64_t ky = ShuffleKey(y.time, y.seq);
    if (kx != ky) return kx < ky;
  }
  return x.seq < y.seq;  // FIFO among equal timestamps
}

uint64_t Simulator::ShuffleKey(TimeMicros time, uint64_t seq) const {
  return Mix64(shuffle_seed_ ^ Mix64(static_cast<uint64_t>(time)) ^
               (seq * 0x9e3779b97f4a7c15ULL));
}

void Simulator::SetTieShuffle(uint64_t seed, TimeMicros horizon) {
  shuffle_seed_ = seed;
  shuffle_horizon_ = horizon;
  // The order predicate changed: rebuild the pending heap. std::make_heap
  // builds a max-heap w.r.t. its comparator, so invert SlotLess.
  std::make_heap(heap_.begin(), heap_.end(),
                 [this](uint32_t a, uint32_t b) { return SlotLess(b, a); });
}

void Simulator::HeapPush(uint32_t slot) {
  heap_.push_back(slot);
  size_t i = heap_.size() - 1;
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!SlotLess(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

uint32_t Simulator::HeapPop() {
  const uint32_t top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  const size_t n = heap_.size();
  size_t i = 0;
  for (;;) {
    const size_t left = 2 * i + 1;
    const size_t right = left + 1;
    size_t smallest = i;
    if (left < n && SlotLess(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && SlotLess(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
  return top;
}

uint32_t Simulator::AllocSlot() {
  if (free_head_ != kNoSlot) {
    const uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    return index;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void Simulator::FreeSlot(uint32_t index) {
  Slot& s = slots_[index];
  s.fn = nullptr;
  s.in_use = false;
  s.cancelled = false;
  ++s.generation;  // invalidate outstanding EventIds for this slot
  s.next_free = free_head_;
  free_head_ = index;
}

EventId Simulator::ScheduleAt(TimeMicros when, EventFn fn, const char* tag) {
  const uint32_t index = AllocSlot();
  Slot& s = slots_[index];
  s.time = std::max(when, now_);
  s.seq = next_seq_++;
  s.fn = std::move(fn);
  s.tag = tag;
  s.parent_seq = current_event_seq_;
  s.in_use = true;
  s.cancelled = false;
  HeapPush(index);
  ++live_;
  return MakeId(s.generation, index);
}

EventId Simulator::ScheduleAfter(TimeMicros delay, EventFn fn,
                                 const char* tag) {
  return ScheduleAt(now_ + std::max<TimeMicros>(delay, 0), std::move(fn), tag);
}

void Simulator::NoteEdgeToLastScheduledSlow(uint64_t from_seq) {
  if (from_seq == kNoEventSeq || next_seq_ == 0) return;
  race_detector_->AddEdge(from_seq, next_seq_ - 1);
}

void Simulator::Cancel(EventId id) {
  if (id == kInvalidEventId) return;
  const uint32_t index = static_cast<uint32_t>(id);
  const uint32_t generation = static_cast<uint32_t>(id >> 32);
  if (index >= slots_.size()) return;
  Slot& s = slots_[index];
  // Generation mismatch means the event already ran (or its slot was
  // recycled): exact no-op, never an accounting tombstone.
  if (!s.in_use || s.generation != generation || s.cancelled) return;
  s.cancelled = true;
  s.fn = nullptr;  // release captured state eagerly
  --live_;
}

uint32_t Simulator::PeekLive() {
  while (!heap_.empty()) {
    const uint32_t top = heap_.front();
    if (!slots_[top].cancelled) return top;
    FreeSlot(HeapPop());
  }
  return kNoSlot;
}

bool Simulator::Step() {
  const uint32_t index = PeekLive();
  if (index == kNoSlot) return false;
  HeapPop();
  Slot& s = slots_[index];
  now_ = s.time;
  ++executed_;
  --live_;
  EventFn fn = std::move(s.fn);
  const uint64_t seq = s.seq;
  const char* tag = s.tag;
  const uint64_t parent_seq = s.parent_seq;
  // Free before running: the callback may schedule (and even cancel) new
  // events, which can recycle this slot under a fresh generation.
  FreeSlot(index);
  // Events may run coroutines belonging to this simulator even when
  // another Simulator was constructed more recently on this thread.
  Simulator* prev = t_current_simulator;
  t_current_simulator = this;
  const uint64_t prev_seq = current_event_seq_;
  current_event_seq_ = seq;
  // Publish this simulator's detector (usually nullptr) for the duration
  // of the callback so sim::race hooks attribute accesses to this event —
  // and so a nested simulator's accesses never leak into an outer one.
  RaceDetector* prev_detector = race::g_active_detector;
  race::g_active_detector = race_detector_;
  if (race_detector_ != nullptr) {
    race_detector_->OnEventBegin(seq, now_, tag, parent_seq);
  }
  fn();
  race::g_active_detector = prev_detector;
  current_event_seq_ = prev_seq;
  t_current_simulator = prev;
  return true;
}

uint64_t Simulator::Run(uint64_t max_events) {
  uint64_t n = 0;
  while (n < max_events && Step()) ++n;
  return n;
}

uint64_t Simulator::RunUntil(TimeMicros deadline) {
  uint64_t n = 0;
  for (;;) {
    const uint32_t index = PeekLive();
    if (index == kNoSlot || slots_[index].time > deadline) break;
    Step();
    ++n;
  }
  now_ = std::max(now_, deadline);
  return n;
}

}  // namespace paxoscp::sim
