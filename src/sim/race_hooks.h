// Lightweight instrumentation hooks for the schedule-order race detector
// (docs/ARCHITECTURE.md, design note D12). Shared-state layers (kvstore,
// wal, net) record cell accesses through this header so they never include
// the detector itself; when no detector is attached the cost of a hook site
// is one thread-local load and a predictable branch — no string is built,
// no function is called.
//
// Usage at an instrumentation site:
//
//   if (sim::race::Active()) {
//     sim::race::Record(sim::race::AccessKind::kWrite, {"kv", id_, key});
//   }
//
// The initializer list's parts are joined with '/' into a cell name
// ("kv/3/account:7") only inside Record, i.e. only when a detector is
// active. Accesses recorded outside any simulator event are dropped: they
// belong to test setup / teardown code that runs sequentially by
// construction.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <type_traits>

namespace paxoscp::sim {

class RaceDetector;

namespace race {

enum class AccessKind : uint8_t { kRead, kWrite };

/// The detector attached to the simulator whose event is currently
/// executing on this thread (nullptr when detached — the common case).
/// Maintained by Simulator::Step around every event callback.
extern thread_local RaceDetector* g_active_detector;

inline bool Active() { return g_active_detector != nullptr; }

/// One '/'-separated component of a cell name: a string piece or an
/// integer id. Integers are widened through int64 so every integral type
/// the layers use (GroupId, LogPos, size_t counters) converts silently.
/// Constructors are deliberately implicit: cell parts are spelled inline
/// at hook sites ({"kv", id_, key}).
struct CellPart {
  CellPart(std::string_view s) : str(s) {}
  CellPart(const char* s) : str(s) {}
  CellPart(const std::string& s) : str(s) {}
  template <typename I, std::enable_if_t<std::is_integral_v<I>, int> = 0>
  CellPart(I v)
      : num(static_cast<uint64_t>(static_cast<int64_t>(v))), is_num(true) {}

  std::string_view str;
  uint64_t num = 0;
  bool is_num = false;
};

/// Records one access against the active detector. Call only after
/// checking Active() (re-checked defensively). Out-of-line: the cell-name
/// string is built here, never at a detached hook site.
void Record(AccessKind kind, std::initializer_list<CellPart> parts);

}  // namespace race
}  // namespace paxoscp::sim
