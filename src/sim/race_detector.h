// Schedule-order race detector (docs/ARCHITECTURE.md, design note D12).
//
// The simulator executes events in (time, seq) order where seq is
// *insertion order* — deterministic, but arbitrary: two events at the same
// virtual time whose handlers touch shared state without a true ordering
// constraint produce a result that silently depends on which Schedule call
// ran first in the source. This detector makes that dependence visible.
//
// Model:
//  * Cell   — a named unit of shared state ("kv/3/account:7",
//             "wal/1/2/pending", "net/dc/0"). Layers record reads/writes
//             through the hooks in race_hooks.h.
//  * Event  — one simulator callback execution, identified by its seq and
//             carrying the creation-site tag threaded through Schedule.
//  * Edge   — a happens-before constraint between two events at the SAME
//             virtual time: parent→spawned-child (an event scheduled
//             during another's execution can never run before it at an
//             equal timestamp) and promise-completion (suspend-event →
//             resume-event, contributed by the coroutine layer).
//  * Race   — two events at the same virtual time, neither an HB ancestor
//             of the other, accessing the same cell with at least one
//             write. Events at different virtual times are always ordered
//             by time and never conflict.
//
// Because virtual time is monotone, all events of one timestamp execute
// contiguously; the detector buffers one time-group at a time and analyzes
// it when time advances, so memory stays bounded by the widest group.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/types.h"
#include "sim/race_hooks.h"
#include "sim/simulator.h"

namespace paxoscp::sim {

class RaceDetector {
 public:
  using AccessKind = race::AccessKind;

  /// Access mask bits (an event may both read and write one cell).
  static constexpr uint8_t kReadBit = 1;
  static constexpr uint8_t kWriteBit = 2;

  struct Report {
    TimeMicros time = 0;
    std::string cell;
    uint64_t seq_first = 0;  ///< lower-seq (earlier-executed) event
    uint64_t seq_second = 0;
    std::string tag_first;
    std::string tag_second;
    uint8_t mask_first = 0;
    uint8_t mask_second = 0;

    /// One-line human-readable form for logs and test failure messages.
    std::string Describe() const;
  };

  RaceDetector() = default;
  RaceDetector(const RaceDetector&) = delete;
  RaceDetector& operator=(const RaceDetector&) = delete;

  // --- configuration -------------------------------------------------

  /// Ignores cells whose name starts with `prefix`. Suppressions are for
  /// cells whose same-time access order is proven irrelevant (documented
  /// at the suppression site); they must name the narrowest prefix that
  /// covers the cell family.
  void SuppressCellPrefix(std::string prefix);

  /// Dumps the full time-group at virtual time `t` to stderr when it
  /// flushes (every event's seq, tag, parent, extra HB predecessors, and
  /// cell accesses). The divergence-diagnosis companion to the shuffle
  /// minimizer: minimize to the first diverging timestamp, then trace it.
  void TraceTime(TimeMicros t) { trace_time_ = t; trace_armed_ = true; }

  // --- simulator lifecycle (called by Simulator, not by users) --------

  /// A new event started executing. Flushes the previous time-group when
  /// `time` advanced. `tag` is the creation-site tag (may be null) and
  /// must outlive the detector (string literals at every call site).
  void OnEventBegin(uint64_t seq, TimeMicros time, const char* tag,
                    uint64_t parent_seq);

  /// Adds a happens-before edge from an already-executed event to a
  /// not-yet-executed one (promise-completion: suspend → resume).
  void AddEdge(uint64_t from_seq, uint64_t to_seq);

  /// Records one shared-state access by the currently executing event.
  void RecordAccess(std::string cell, AccessKind kind);

  // --- results --------------------------------------------------------

  /// Flushes the open time-group. Call after the run completes and before
  /// reading reports().
  void Finalize();

  const std::vector<Report>& reports() const { return reports_; }

  /// True when the report list hit its cap and further conflicts were
  /// dropped (the run is racy enough that more reports add nothing).
  bool truncated() const { return truncated_; }

  uint64_t events_observed() const { return events_observed_; }
  uint64_t accesses_recorded() const { return accesses_recorded_; }

 private:
  struct EventRec {
    uint64_t seq = 0;
    const char* tag = nullptr;
    uint64_t parent_seq = kNoEventSeq;
    std::vector<uint64_t> extra_pred_seqs;  // promise-completion edges
    std::map<std::string, uint8_t> cells;   // cell -> access mask
  };

  void FlushGroup();
  bool Suppressed(const std::string& cell) const;
  static std::string TagOf(const EventRec& rec);

  bool group_open_ = false;
  TimeMicros group_time_ = 0;
  TimeMicros trace_time_ = 0;
  bool trace_armed_ = false;
  std::vector<EventRec> group_;             // execution order == topo order
  std::map<uint64_t, size_t> group_index_;  // seq -> index into group_
  /// Edges whose target event has not begun yet, keyed by target seq.
  std::map<uint64_t, std::vector<uint64_t>> pending_edges_;
  std::vector<std::string> suppress_prefixes_;
  /// Dedup key: (cell, tag_first, tag_second) — one report per distinct
  /// provenance pair per cell, not one per dynamic occurrence.
  std::set<std::tuple<std::string, std::string, std::string>> seen_;
  std::vector<Report> reports_;
  bool truncated_ = false;
  uint64_t events_observed_ = 0;
  uint64_t accesses_recorded_ = 0;
  static constexpr size_t kMaxReports = 1000;
};

}  // namespace paxoscp::sim
