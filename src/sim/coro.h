// C++20 coroutine primitives layered on the discrete-event Simulator.
//
//  * Task       — detached, eagerly-started top-level coroutine (a "client
//                 process" in the simulation). Progress happens only through
//                 scheduled events, so Simulator::Run() drains all Tasks.
//  * Coro<T>    — lazy child coroutine; `co_await` starts it and resumes the
//                 parent (symmetric transfer) when it co_returns.
//  * Future<T> / Promise<T>
//               — one-shot rendezvous. Set() is first-wins (later Sets are
//                 ignored), which is how response-vs-timeout races resolve.
//                 Waiters are resumed through the event queue, never inline,
//                 preserving deterministic execution order.
//  * WhenAll / Gather<T>
//               — fan-out join: runs N child coroutines (and, for WhenAll,
//                 Future<T> dependencies) concurrently and completes when
//                 every one has resolved. Gather additionally collects the
//                 children's results in input order, independent of
//                 completion order. The joined waiter is resumed only
//                 through the event queue, so fan-out stays deterministic.
//  * SleepFor   — awaitable virtual-time delay.
#pragma once

#include <cassert>
#include <coroutine>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/simulator.h"

namespace paxoscp::sim {

namespace internal {

/// Destroys a finished coroutine frame *safely*: never inline, because the
/// destructor typically runs from within the frame's own resume chain
/// (symmetric transfer resumed the parent from inside the child's resume
/// activation, and GCC 12 does not guarantee a true tail call there).
/// Destruction is deferred through the current simulator's event queue;
/// outside a simulator the destroy happens inline (only safe when no
/// symmetric transfer is on the stack — all library code runs under a
/// Simulator).
inline void DestroyFrameDeferred(std::coroutine_handle<> h) {
  if (!h) return;
  if (Simulator* sim = Simulator::Current()) {
    sim->ScheduleAfter(0, [h] { h.destroy(); }, "coro/frame-destroy");
  } else {
    h.destroy();
  }
}

}  // namespace internal

/// Detached top-level coroutine handle. The coroutine starts running as soon
/// as it is called and destroys its own frame when it finishes.
struct Task {
  struct promise_type {
    promise_type() = default;

    Task get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

/// Lazy child coroutine returning T. Must be awaited exactly once; the
/// awaiting coroutine owns the frame for the duration of the await.
template <typename T>
class [[nodiscard]] Coro {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  struct promise_type {
    // Explicitly declared so the promise is not an aggregate: otherwise GCC
    // tries to aggregate-initialize it from the coroutine's parameters,
    // which explodes when T is std::any (constructible from anything).
    promise_type() = default;

    std::optional<T> value;
    std::coroutine_handle<> continuation;

    Coro get_return_object() { return Coro(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { std::terminate(); }
  };

  explicit Coro(Handle h) : handle_(h) {}
  Coro(Coro&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Coro(const Coro&) = delete;
  Coro& operator=(const Coro&) = delete;
  Coro& operator=(Coro&& other) noexcept {
    if (this != &other) {
      internal::DestroyFrameDeferred(handle_);
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Coro() { internal::DestroyFrameDeferred(handle_); }

  // Awaiter interface.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    handle_.promise().continuation = cont;
    return handle_;  // start the child
  }
  T await_resume() {
    assert(handle_.promise().value.has_value());
    return std::move(*handle_.promise().value);
  }

 private:
  Handle handle_;
};

/// Coro<void> specialization.
template <>
class [[nodiscard]] Coro<void> {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  struct promise_type {
    promise_type() = default;

    std::coroutine_handle<> continuation;

    Coro get_return_object() { return Coro(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };

  explicit Coro(Handle h) : handle_(h) {}
  Coro(Coro&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Coro(const Coro&) = delete;
  Coro& operator=(const Coro&) = delete;
  ~Coro() { internal::DestroyFrameDeferred(handle_); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    handle_.promise().continuation = cont;
    return handle_;
  }
  void await_resume() {}

 private:
  Handle handle_;
};

namespace internal {

template <typename T>
struct FutureState {
  explicit FutureState(Simulator* s) : sim(s) {}

  Simulator* sim;
  std::optional<T> value;
  std::coroutine_handle<> waiter;
  std::function<void(T&&)> callback;
  bool delivered = false;
  /// Seq of the event in which the waiter suspended (or the callback was
  /// registered): the source of the promise-completion happens-before
  /// edge to the resume/delivery event (race detector, D12).
  uint64_t origin_seq = kNoEventSeq;

  void Set(T v) {
    if (value.has_value()) return;  // first-wins
    value = std::move(v);
    MaybeDeliver();
  }

  void MaybeDeliver() {
    if (!value.has_value() || delivered) return;
    if (waiter) {
      delivered = true;
      auto h = waiter;
      waiter = nullptr;
      sim->ScheduleAfter(0, [h] { h.resume(); }, "future/resume");
      sim->NoteEdgeToLastScheduled(origin_seq);
    } else if (callback) {
      delivered = true;
      auto cb = std::move(callback);
      callback = nullptr;
      // Deliver through the event queue for deterministic ordering. The
      // state must stay alive until the event runs; the lambda's shared_ptr
      // is added by the caller (Future/Promise both hold one).
      auto* self = this;
      sim->ScheduleAfter(0, [cb = std::move(cb), self] {
        cb(std::move(*self->value));
      }, "future/callback");
      sim->NoteEdgeToLastScheduled(origin_seq);
    }
  }
};

}  // namespace internal

template <typename T>
class Promise;

/// Awaitable one-shot value. Obtained from Promise<T>::GetFuture(). Await it
/// from a coroutine, or attach a plain callback with OnReady().
template <typename T>
class Future {
 public:
  Future() = default;

  bool valid() const { return state_ != nullptr; }

  bool await_ready() const noexcept {
    return state_->value.has_value() && !state_->delivered;
  }
  void await_suspend(std::coroutine_handle<> h) {
    assert(!state_->waiter && !state_->callback && "future already awaited");
    state_->waiter = h;
    state_->origin_seq = state_->sim->CurrentEventSeq();
  }
  T await_resume() {
    state_->delivered = true;
    return std::move(*state_->value);
  }

  /// Callback alternative to awaiting; runs through the event queue.
  void OnReady(std::function<void(T&&)> cb) {
    assert(!state_->waiter && !state_->callback && "future already awaited");
    state_->callback = [keep = state_, cb = std::move(cb)](T&& v) mutable {
      cb(std::move(v));
    };
    state_->origin_seq = state_->sim->CurrentEventSeq();
    state_->MaybeDeliver();
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<internal::FutureState<T>> s)
      : state_(std::move(s)) {}
  std::shared_ptr<internal::FutureState<T>> state_;
};

/// Producer side of Future<T>. Copyable: multiple events (e.g. a response
/// and a timeout) may race to Set(); the first wins.
template <typename T>
class Promise {
 public:
  explicit Promise(Simulator* sim)
      : state_(std::make_shared<internal::FutureState<T>>(sim)) {}

  Future<T> GetFuture() const { return Future<T>(state_); }

  void Set(T value) const { state_->Set(std::move(value)); }

  bool IsSet() const { return state_->value.has_value(); }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

namespace internal {

/// Shared bookkeeping of one WhenAll/Gather join: a countdown of
/// unresolved dependencies plus the (single) party waiting on the join.
/// Delivery mirrors FutureState: the waiter is resumed through the event
/// queue, never inline, and — when the join completes into a Promise —
/// the Promise's own first-wins Set provides the race semantics.
struct JoinCore {
  explicit JoinCore(Simulator* s) : sim(s) {}

  Simulator* sim;
  size_t remaining = 0;
  /// Set once the join has been awaited or Start()ed; dependencies that
  /// resolve earlier only count down, they never deliver.
  bool armed = false;
  bool delivered = false;
  std::coroutine_handle<> waiter;
  /// Seq of the event in which the waiter suspended — promise-completion
  /// edge source for the join's resume event (race detector, D12).
  uint64_t waiter_seq = kNoEventSeq;
  std::optional<Promise<bool>> done;

  void AddDependency() { ++remaining; }

  void ChildDone() {
    assert(remaining > 0 && "join countdown underflow");
    --remaining;
    MaybeDeliver();
  }

  void MaybeDeliver() {
    if (remaining != 0 || delivered || !armed) return;
    delivered = true;
    if (waiter) {
      auto h = waiter;
      waiter = nullptr;
      sim->ScheduleAfter(0, [h] { h.resume(); }, "join/resume");
      sim->NoteEdgeToLastScheduled(waiter_seq);
    } else if (done.has_value()) {
      done->Set(true);  // first-wins: a racing timeout may already have won
    }
  }
};

/// Detached driver of one WhenAll child: owns the child's frame for its
/// whole run, then counts the join down. The frame is destroyed through
/// the event queue (Coro's destructor defers), so teardown is safe even
/// at the end of a symmetric-transfer chain.
inline Task RunJoinChild(Coro<void> child, std::shared_ptr<JoinCore> core) {
  co_await child;
  core->ChildDone();
}

template <typename T>
struct GatherState {
  GatherState(Simulator* s, size_t n) : core(s), results(n) {}
  JoinCore core;
  /// Slot per child, in input order; optional because T (e.g. Result<V>)
  /// need not be default-constructible.
  std::vector<std::optional<T>> results;
};

template <typename T>
Task RunGatherChild(Coro<T> child, std::shared_ptr<GatherState<T>> state,
                    size_t index) {
  state->results[index] = co_await child;
  state->core.ChildDone();
}

}  // namespace internal

/// Join of N dependencies — child coroutines and/or Futures — that
/// completes when ALL of them have resolved. Usage:
///
///   WhenAll all(sim);
///   all.Add(DoThing(a));            // lazy child: starts at await/Start
///   all.Add(network->Call(...));    // hot future: already in flight
///   co_await std::move(all);        // resumes (via the event queue) when
///                                   // every dependency has resolved
///
/// To race the join against a timeout, complete it into a caller-owned
/// Promise instead of awaiting — the Promise's first-wins Set is exactly
/// the response-vs-timeout idiom the network layer uses:
///
///   Promise<bool> done(sim);
///   all.Start(done);                               // Set(true) on join
///   sim->ScheduleAfter(t, [done] { done.Set(false); });  // Set(false) on
///   bool completed = co_await done.GetFuture();          // timeout
///
/// An abandoned join (the timeout won) keeps its children running in the
/// background; they resolve through their own timeouts and their frames
/// are reclaimed normally — no dependency may block forever, the same
/// invariant every await in this codebase already relies on. A WhenAll
/// destroyed without being awaited or Start()ed never starts its queued
/// children; their frames are destroyed (deferred) with it.
///
/// Add() must not be called after the join was awaited or Start()ed, and
/// the simulator must not run between the first Add and the await/Start
/// (dependencies added in one synchronous block, as all call sites do).
class [[nodiscard]] WhenAll {
 public:
  explicit WhenAll(Simulator* sim)
      : core_(std::make_shared<internal::JoinCore>(sim)) {}

  WhenAll(Simulator* sim, std::vector<Coro<void>> children) : WhenAll(sim) {
    for (Coro<void>& child : children) Add(std::move(child));
  }

  WhenAll(WhenAll&&) = default;
  WhenAll(const WhenAll&) = delete;
  WhenAll& operator=(const WhenAll&) = delete;

  /// Adds a lazy child coroutine; it starts when the join is awaited or
  /// Start()ed, in Add order.
  void Add(Coro<void> child) {
    assert(!core_->armed && "Add after the join was awaited/started");
    core_->AddDependency();
    pending_.push_back(std::move(child));
  }

  /// Adds an already-in-flight Future dependency. Resolution is observed
  /// through OnReady, i.e. through the event queue.
  template <typename T>
  void Add(Future<T> f) {
    assert(!core_->armed && "Add after the join was awaited/started");
    core_->AddDependency();
    f.OnReady([core = core_](T&&) { core->ChildDone(); });
  }

  size_t size() const { return core_->remaining; }

  /// Starts the children and arranges for `done` to be Set(true) once all
  /// dependencies have resolved. `done` stays first-wins: anything else
  /// (e.g. a timeout) may Set it first and the join's Set is ignored.
  void Start(Promise<bool> done) {
    core_->done = std::move(done);
    Arm();
  }

  // Awaiter interface: `co_await std::move(when_all)`.
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    core_->waiter = h;
    core_->waiter_seq = core_->sim->CurrentEventSeq();
    Arm();
  }
  void await_resume() noexcept {}

 private:
  void Arm() {
    assert(!core_->armed && "join awaited/started twice");
    core_->armed = true;
    for (Coro<void>& child : pending_) {
      internal::RunJoinChild(std::move(child), core_);
    }
    pending_.clear();
    core_->MaybeDeliver();  // empty join (or all futures already resolved)
  }

  std::shared_ptr<internal::JoinCore> core_;
  std::vector<Coro<void>> pending_;
};

/// WhenAll variant that collects the children's results:
/// `std::vector<T> out = co_await Gather<T>(sim, std::move(children));`
/// Results are ordered by input index, not completion order. An empty
/// input completes (through the event queue) with an empty vector.
template <typename T>
class [[nodiscard]] Gather {
 public:
  Gather(Simulator* sim, std::vector<Coro<T>> children)
      : state_(std::make_shared<internal::GatherState<T>>(sim,
                                                          children.size())),
        pending_(std::move(children)) {
    state_->core.remaining = pending_.size();
  }

  Gather(Gather&&) = default;
  Gather(const Gather&) = delete;
  Gather& operator=(const Gather&) = delete;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    state_->core.waiter = h;
    state_->core.waiter_seq = state_->core.sim->CurrentEventSeq();
    state_->core.armed = true;
    for (size_t i = 0; i < pending_.size(); ++i) {
      internal::RunGatherChild<T>(std::move(pending_[i]), state_, i);
    }
    pending_.clear();
    state_->core.MaybeDeliver();  // empty join
  }
  std::vector<T> await_resume() {
    std::vector<T> out;
    out.reserve(state_->results.size());
    for (std::optional<T>& slot : state_->results) {
      assert(slot.has_value());
      out.push_back(std::move(*slot));
    }
    return out;
  }

 private:
  std::shared_ptr<internal::GatherState<T>> state_;
  std::vector<Coro<T>> pending_;
};

/// Awaitable virtual-time delay: `co_await SleepFor(sim, 10 * kMillisecond)`.
struct SleepFor {
  SleepFor(Simulator* sim, TimeMicros delay) : sim_(sim), delay_(delay) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    sim_->ScheduleAfter(delay_, [h] { h.resume(); }, "sim/sleep");
  }
  void await_resume() const noexcept {}

 private:
  Simulator* sim_;
  TimeMicros delay_;
};

}  // namespace paxoscp::sim
