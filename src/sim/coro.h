// C++20 coroutine primitives layered on the discrete-event Simulator.
//
//  * Task       — detached, eagerly-started top-level coroutine (a "client
//                 process" in the simulation). Progress happens only through
//                 scheduled events, so Simulator::Run() drains all Tasks.
//  * Coro<T>    — lazy child coroutine; `co_await` starts it and resumes the
//                 parent (symmetric transfer) when it co_returns.
//  * Future<T> / Promise<T>
//               — one-shot rendezvous. Set() is first-wins (later Sets are
//                 ignored), which is how response-vs-timeout races resolve.
//                 Waiters are resumed through the event queue, never inline,
//                 preserving deterministic execution order.
//  * SleepFor   — awaitable virtual-time delay.
#pragma once

#include <cassert>
#include <coroutine>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "sim/simulator.h"

namespace paxoscp::sim {

namespace internal {

/// Destroys a finished coroutine frame *safely*: never inline, because the
/// destructor typically runs from within the frame's own resume chain
/// (symmetric transfer resumed the parent from inside the child's resume
/// activation, and GCC 12 does not guarantee a true tail call there).
/// Destruction is deferred through the current simulator's event queue;
/// outside a simulator the destroy happens inline (only safe when no
/// symmetric transfer is on the stack — all library code runs under a
/// Simulator).
inline void DestroyFrameDeferred(std::coroutine_handle<> h) {
  if (!h) return;
  if (Simulator* sim = Simulator::Current()) {
    sim->ScheduleAfter(0, [h] { h.destroy(); });
  } else {
    h.destroy();
  }
}

}  // namespace internal

/// Detached top-level coroutine handle. The coroutine starts running as soon
/// as it is called and destroys its own frame when it finishes.
struct Task {
  struct promise_type {
    promise_type() = default;

    Task get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

/// Lazy child coroutine returning T. Must be awaited exactly once; the
/// awaiting coroutine owns the frame for the duration of the await.
template <typename T>
class [[nodiscard]] Coro {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  struct promise_type {
    // Explicitly declared so the promise is not an aggregate: otherwise GCC
    // tries to aggregate-initialize it from the coroutine's parameters,
    // which explodes when T is std::any (constructible from anything).
    promise_type() = default;

    std::optional<T> value;
    std::coroutine_handle<> continuation;

    Coro get_return_object() { return Coro(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { std::terminate(); }
  };

  explicit Coro(Handle h) : handle_(h) {}
  Coro(Coro&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Coro(const Coro&) = delete;
  Coro& operator=(const Coro&) = delete;
  Coro& operator=(Coro&& other) noexcept {
    if (this != &other) {
      internal::DestroyFrameDeferred(handle_);
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Coro() { internal::DestroyFrameDeferred(handle_); }

  // Awaiter interface.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    handle_.promise().continuation = cont;
    return handle_;  // start the child
  }
  T await_resume() {
    assert(handle_.promise().value.has_value());
    return std::move(*handle_.promise().value);
  }

 private:
  Handle handle_;
};

/// Coro<void> specialization.
template <>
class [[nodiscard]] Coro<void> {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  struct promise_type {
    promise_type() = default;

    std::coroutine_handle<> continuation;

    Coro get_return_object() { return Coro(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };

  explicit Coro(Handle h) : handle_(h) {}
  Coro(Coro&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Coro(const Coro&) = delete;
  Coro& operator=(const Coro&) = delete;
  ~Coro() { internal::DestroyFrameDeferred(handle_); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    handle_.promise().continuation = cont;
    return handle_;
  }
  void await_resume() {}

 private:
  Handle handle_;
};

namespace internal {

template <typename T>
struct FutureState {
  explicit FutureState(Simulator* s) : sim(s) {}

  Simulator* sim;
  std::optional<T> value;
  std::coroutine_handle<> waiter;
  std::function<void(T&&)> callback;
  bool delivered = false;

  void Set(T v) {
    if (value.has_value()) return;  // first-wins
    value = std::move(v);
    MaybeDeliver();
  }

  void MaybeDeliver() {
    if (!value.has_value() || delivered) return;
    if (waiter) {
      delivered = true;
      auto h = waiter;
      waiter = nullptr;
      sim->ScheduleAfter(0, [h] { h.resume(); });
    } else if (callback) {
      delivered = true;
      auto cb = std::move(callback);
      callback = nullptr;
      // Deliver through the event queue for deterministic ordering. The
      // state must stay alive until the event runs; the lambda's shared_ptr
      // is added by the caller (Future/Promise both hold one).
      auto* self = this;
      sim->ScheduleAfter(0, [cb = std::move(cb), self] {
        cb(std::move(*self->value));
      });
    }
  }
};

}  // namespace internal

template <typename T>
class Promise;

/// Awaitable one-shot value. Obtained from Promise<T>::GetFuture(). Await it
/// from a coroutine, or attach a plain callback with OnReady().
template <typename T>
class Future {
 public:
  Future() = default;

  bool valid() const { return state_ != nullptr; }

  bool await_ready() const noexcept {
    return state_->value.has_value() && !state_->delivered;
  }
  void await_suspend(std::coroutine_handle<> h) {
    assert(!state_->waiter && !state_->callback && "future already awaited");
    state_->waiter = h;
  }
  T await_resume() {
    state_->delivered = true;
    return std::move(*state_->value);
  }

  /// Callback alternative to awaiting; runs through the event queue.
  void OnReady(std::function<void(T&&)> cb) {
    assert(!state_->waiter && !state_->callback && "future already awaited");
    state_->callback = [keep = state_, cb = std::move(cb)](T&& v) mutable {
      cb(std::move(v));
    };
    state_->MaybeDeliver();
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<internal::FutureState<T>> s)
      : state_(std::move(s)) {}
  std::shared_ptr<internal::FutureState<T>> state_;
};

/// Producer side of Future<T>. Copyable: multiple events (e.g. a response
/// and a timeout) may race to Set(); the first wins.
template <typename T>
class Promise {
 public:
  explicit Promise(Simulator* sim)
      : state_(std::make_shared<internal::FutureState<T>>(sim)) {}

  Future<T> GetFuture() const { return Future<T>(state_); }

  void Set(T value) const { state_->Set(std::move(value)); }

  bool IsSet() const { return state_->value.has_value(); }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

/// Awaitable virtual-time delay: `co_await SleepFor(sim, 10 * kMillisecond)`.
struct SleepFor {
  SleepFor(Simulator* sim, TimeMicros delay) : sim_(sim), delay_(delay) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    sim_->ScheduleAfter(delay_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Simulator* sim_;
  TimeMicros delay_;
};

}  // namespace paxoscp::sim
