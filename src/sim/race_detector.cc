#include "sim/race_detector.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>

namespace paxoscp::sim {

namespace race {

thread_local RaceDetector* g_active_detector = nullptr;

void Record(AccessKind kind, std::initializer_list<CellPart> parts) {
  RaceDetector* detector = g_active_detector;
  if (detector == nullptr) return;
  std::string cell;
  cell.reserve(48);
  bool first = true;
  for (const CellPart& part : parts) {
    if (!first) cell.push_back('/');
    first = false;
    if (part.is_num) {
      cell.append(std::to_string(part.num));
    } else {
      cell.append(part.str);
    }
  }
  detector->RecordAccess(std::move(cell), kind);
}

}  // namespace race

namespace {

const char* MaskName(uint8_t mask) {
  switch (mask) {
    case RaceDetector::kReadBit:
      return "read";
    case RaceDetector::kWriteBit:
      return "write";
    default:
      return "read+write";
  }
}

}  // namespace

std::string RaceDetector::Report::Describe() const {
  std::string out = "race @t=" + std::to_string(time) + "us cell=" + cell;
  out += std::string(" [") + MaskName(mask_first) +
         " seq=" + std::to_string(seq_first) + " tag=" + tag_first + "]";
  out += std::string(" vs [") + MaskName(mask_second) +
         " seq=" + std::to_string(seq_second) + " tag=" + tag_second + "]";
  return out;
}

void RaceDetector::SuppressCellPrefix(std::string prefix) {
  suppress_prefixes_.push_back(std::move(prefix));
}

bool RaceDetector::Suppressed(const std::string& cell) const {
  for (const std::string& prefix : suppress_prefixes_) {
    if (cell.compare(0, prefix.size(), prefix) == 0) return true;
  }
  return false;
}

std::string RaceDetector::TagOf(const EventRec& rec) {
  return rec.tag != nullptr ? std::string(rec.tag) : std::string("untagged");
}

void RaceDetector::OnEventBegin(uint64_t seq, TimeMicros time, const char* tag,
                                uint64_t parent_seq) {
  if (group_open_ && time != group_time_) FlushGroup();
  group_open_ = true;
  group_time_ = time;
  ++events_observed_;

  EventRec rec;
  rec.seq = seq;
  rec.tag = tag;
  rec.parent_seq = parent_seq;
  if (auto it = pending_edges_.find(seq); it != pending_edges_.end()) {
    rec.extra_pred_seqs = std::move(it->second);
    pending_edges_.erase(it);
  }
  group_index_[seq] = group_.size();
  group_.push_back(std::move(rec));
}

void RaceDetector::AddEdge(uint64_t from_seq, uint64_t to_seq) {
  if (from_seq == kNoEventSeq) return;
  pending_edges_[to_seq].push_back(from_seq);
}

void RaceDetector::RecordAccess(std::string cell, AccessKind kind) {
  if (group_.empty()) return;  // outside any event: sequential by construction
  ++accesses_recorded_;
  const uint8_t bit = kind == AccessKind::kWrite ? kWriteBit : kReadBit;
  group_.back().cells[std::move(cell)] |= bit;
}

void RaceDetector::Finalize() {
  if (group_open_) FlushGroup();
  group_open_ = false;
  pending_edges_.clear();
}

void RaceDetector::FlushGroup() {
  const size_t n = group_.size();
  if (n == 0) return;

  if (trace_armed_ && group_time_ == trace_time_) {
    std::fprintf(stderr, "-- time-group @t=%lldus (%zu events) --\n",
                 static_cast<long long>(group_time_), n);
    for (const EventRec& rec : group_) {
      std::string line = "  seq=" + std::to_string(rec.seq) +
                         " tag=" + TagOf(rec);
      if (rec.parent_seq != kNoEventSeq) {
        line += " parent=" + std::to_string(rec.parent_seq);
      }
      for (const uint64_t pred : rec.extra_pred_seqs) {
        line += " pred=" + std::to_string(pred);
      }
      for (const auto& [cell, mask] : rec.cells) {
        line += std::string(" ") + MaskName(mask) + ":" + cell;
      }
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }

  // Ancestor closure over intra-group happens-before edges. Execution
  // order is a topological order (every edge points from an event that
  // already ran to one that ran later), so one forward pass suffices.
  // ancestors[i] is a bitset over group indices, packed into words.
  const size_t words = (n + 63) / 64;
  std::vector<uint64_t> ancestors(n * words, 0);
  auto mark = [&](size_t i, size_t pred) {
    // pred and all of pred's ancestors become ancestors of i.
    for (size_t w = 0; w < words; ++w) {
      ancestors[i * words + w] |= ancestors[pred * words + w];
    }
    ancestors[i * words + pred / 64] |= uint64_t{1} << (pred % 64);
  };
  for (size_t i = 0; i < n; ++i) {
    const EventRec& rec = group_[i];
    if (auto it = group_index_.find(rec.parent_seq); it != group_index_.end()) {
      mark(i, it->second);
    }
    for (const uint64_t pred_seq : rec.extra_pred_seqs) {
      if (auto it = group_index_.find(pred_seq); it != group_index_.end()) {
        mark(i, it->second);
      }
    }
  }
  auto is_ancestor = [&](size_t maybe_pred, size_t i) {
    return (ancestors[i * words + maybe_pred / 64] >>
            (maybe_pred % 64)) & 1U;
  };

  // Group accessors by cell, then flag unordered conflicting pairs.
  std::map<std::string, std::vector<std::pair<size_t, uint8_t>>> by_cell;
  for (size_t i = 0; i < n; ++i) {
    for (const auto& [cell, mask] : group_[i].cells) {
      by_cell[cell].push_back({i, mask});
    }
  }
  for (const auto& [cell, accessors] : by_cell) {
    if (accessors.size() < 2 || Suppressed(cell)) continue;
    for (size_t a = 0; a < accessors.size(); ++a) {
      for (size_t b = a + 1; b < accessors.size(); ++b) {
        const auto [i, mask_i] = accessors[a];
        const auto [j, mask_j] = accessors[b];
        if (((mask_i | mask_j) & kWriteBit) == 0) continue;  // read-read
        // i executed before j; they are ordered iff i is an HB ancestor
        // of j (j can never be an ancestor of i: edges point forward).
        if (is_ancestor(i, j)) continue;
        if (reports_.size() >= kMaxReports) {
          truncated_ = true;
          continue;
        }
        Report report;
        report.time = group_time_;
        report.cell = cell;
        report.seq_first = group_[i].seq;
        report.seq_second = group_[j].seq;
        report.tag_first = TagOf(group_[i]);
        report.tag_second = TagOf(group_[j]);
        report.mask_first = mask_i;
        report.mask_second = mask_j;
        if (!seen_.insert({report.cell, report.tag_first, report.tag_second})
                 .second) {
          continue;  // same provenance pair already reported for this cell
        }
        reports_.push_back(std::move(report));
      }
    }
  }

  group_.clear();
  group_index_.clear();
}

}  // namespace paxoscp::sim
