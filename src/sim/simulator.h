// Deterministic discrete-event simulator. All "time" in the system is
// virtual: events execute in (time, insertion-order) order on a single
// thread, so a whole multi-datacenter run is reproducible from a seed.
//
// Implementation (docs/ARCHITECTURE.md, design note D5): events live in a
// recycled slot pool indexed by a binary heap of slot indices keyed on
// (time, seq) — no per-event container allocations. Event handles carry a
// per-slot generation counter, so Cancel of an event that already ran (or
// whose slot was recycled) is an exact no-op instead of a tombstone that
// could skew PendingEvents(). Callbacks are InlineFunctions: scheduling does
// not heap-allocate unless a capture exceeds the inline buffer.
#pragma once

#include <cstdint>
#include <vector>

#include "common/inline_function.h"
#include "common/types.h"

namespace paxoscp::sim {

/// Handle for cancelling a scheduled event.
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/// Event callback. 48 inline bytes covers every callback the protocol layer
/// schedules; larger captures transparently go to the heap.
using EventFn = InlineFunction<void()>;

class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The innermost live Simulator on this thread (nullptr outside any).
  /// Used by the coroutine layer to defer frame destruction through the
  /// event queue: destroying a frame from inside its own resume chain is
  /// unsafe when the compiler's symmetric transfer is not a true tail call
  /// (observed with GCC 12), so Coro destructors schedule the destroy as a
  /// zero-delay event instead.
  static Simulator* Current();

  /// Current virtual time in microseconds.
  TimeMicros Now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `when` (clamped to Now()).
  EventId ScheduleAt(TimeMicros when, EventFn fn);

  /// Schedules `fn` to run `delay` microseconds from now.
  EventId ScheduleAfter(TimeMicros delay, EventFn fn);

  /// Cancels a pending event. No-op if it already ran or was cancelled.
  void Cancel(EventId id);

  /// Runs events until the queue is empty or `max_events` have executed.
  /// Returns the number of events executed.
  uint64_t Run(uint64_t max_events = UINT64_MAX);

  /// Runs events with time <= deadline. Virtual time advances to `deadline`
  /// even if the queue drains earlier. Returns events executed.
  uint64_t RunUntil(TimeMicros deadline);

  /// Executes the single next event, if any. Returns false when idle.
  bool Step();

  /// Number of pending (scheduled, not yet run, not cancelled) events.
  size_t PendingEvents() const { return live_; }

  /// Total events executed since construction.
  uint64_t EventsExecuted() const { return executed_; }

 private:
  static constexpr uint32_t kNoSlot = UINT32_MAX;

  /// One pooled event. `generation` advances every time the slot is
  /// recycled, invalidating stale EventIds.
  struct Slot {
    TimeMicros time = 0;
    uint64_t seq = 0;
    EventFn fn;
    uint32_t generation = 1;
    uint32_t next_free = kNoSlot;
    bool in_use = false;
    bool cancelled = false;
  };

  static EventId MakeId(uint32_t generation, uint32_t slot) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  bool SlotLess(uint32_t a, uint32_t b) const;
  void HeapPush(uint32_t slot);
  uint32_t HeapPop();
  uint32_t AllocSlot();
  void FreeSlot(uint32_t index);
  /// Drops cancelled events off the heap top; returns the top live slot
  /// index or kNoSlot when the heap is empty.
  uint32_t PeekLive();

  TimeMicros now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  size_t live_ = 0;
  Simulator* previous_current_ = nullptr;
  std::vector<Slot> slots_;
  std::vector<uint32_t> heap_;  // slot indices, min-heap on (time, seq)
  uint32_t free_head_ = kNoSlot;
};

}  // namespace paxoscp::sim
