// Deterministic discrete-event simulator. All "time" in the system is
// virtual: events execute in (time, insertion-order) order on a single
// thread, so a whole multi-datacenter run is reproducible from a seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace paxoscp::sim {

/// Handle for cancelling a scheduled event.
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The innermost live Simulator on this thread (nullptr outside any).
  /// Used by the coroutine layer to defer frame destruction through the
  /// event queue: destroying a frame from inside its own resume chain is
  /// unsafe when the compiler's symmetric transfer is not a true tail call
  /// (observed with GCC 12), so Coro destructors schedule the destroy as a
  /// zero-delay event instead.
  static Simulator* Current();

  /// Current virtual time in microseconds.
  TimeMicros Now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `when` (clamped to Now()).
  EventId ScheduleAt(TimeMicros when, std::function<void()> fn);

  /// Schedules `fn` to run `delay` microseconds from now.
  EventId ScheduleAfter(TimeMicros delay, std::function<void()> fn);

  /// Cancels a pending event. No-op if it already ran or was cancelled.
  void Cancel(EventId id);

  /// Runs events until the queue is empty or `max_events` have executed.
  /// Returns the number of events executed.
  uint64_t Run(uint64_t max_events = UINT64_MAX);

  /// Runs events with time <= deadline. Virtual time advances to `deadline`
  /// even if the queue drains earlier. Returns events executed.
  uint64_t RunUntil(TimeMicros deadline);

  /// Executes the single next event, if any. Returns false when idle.
  bool Step();

  /// Number of pending (non-cancelled) events.
  size_t PendingEvents() const { return queue_.size() - cancelled_.size(); }

  /// Total events executed since construction.
  uint64_t EventsExecuted() const { return executed_; }

 private:
  struct Event {
    TimeMicros time;
    uint64_t seq;  // tie-breaker: FIFO among equal timestamps
    EventId id;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  TimeMicros now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  Simulator* previous_current_ = nullptr;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace paxoscp::sim
