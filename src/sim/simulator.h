// Deterministic discrete-event simulator. All "time" in the system is
// virtual: events execute in (time, insertion-order) order on a single
// thread, so a whole multi-datacenter run is reproducible from a seed.
//
// Implementation (docs/ARCHITECTURE.md, design note D5): events live in a
// recycled slot pool indexed by a binary heap of slot indices keyed on
// (time, seq) — no per-event container allocations. Event handles carry a
// per-slot generation counter, so Cancel of an event that already ran (or
// whose slot was recycled) is an exact no-op instead of a tombstone that
// could skew PendingEvents(). Callbacks are InlineFunctions: scheduling does
// not heap-allocate unless a capture exceeds the inline buffer.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/inline_function.h"
#include "common/types.h"

namespace paxoscp::sim {

class RaceDetector;

/// Handle for cancelling a scheduled event.
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/// Sentinel event sequence number: "no event" (outside any callback).
inline constexpr uint64_t kNoEventSeq = UINT64_MAX;

/// Event callback. 48 inline bytes covers every callback the protocol layer
/// schedules; larger captures transparently go to the heap.
using EventFn = InlineFunction<void()>;

class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The innermost live Simulator on this thread (nullptr outside any).
  /// Used by the coroutine layer to defer frame destruction through the
  /// event queue: destroying a frame from inside its own resume chain is
  /// unsafe when the compiler's symmetric transfer is not a true tail call
  /// (observed with GCC 12), so Coro destructors schedule the destroy as a
  /// zero-delay event instead.
  static Simulator* Current();

  /// Current virtual time in microseconds.
  TimeMicros Now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `when` (clamped to
  /// Now()). `tag` names the creation site for race-detector provenance
  /// (design note D12); it must be a string literal (or otherwise outlive
  /// the event) and costs nothing when no detector is attached.
  EventId ScheduleAt(TimeMicros when, EventFn fn, const char* tag = nullptr);

  /// Schedules `fn` to run `delay` microseconds from now.
  EventId ScheduleAfter(TimeMicros delay, EventFn fn,
                        const char* tag = nullptr);

  /// Cancels a pending event. No-op if it already ran or was cancelled.
  void Cancel(EventId id);

  /// Runs events until the queue is empty or `max_events` have executed.
  /// Returns the number of events executed.
  uint64_t Run(uint64_t max_events = UINT64_MAX);

  /// Runs events with time <= deadline. Virtual time advances to `deadline`
  /// even if the queue drains earlier. Returns events executed.
  uint64_t RunUntil(TimeMicros deadline);

  /// Executes the single next event, if any. Returns false when idle.
  bool Step();

  /// Number of pending (scheduled, not yet run, not cancelled) events.
  size_t PendingEvents() const { return live_; }

  /// Total events executed since construction.
  uint64_t EventsExecuted() const { return executed_; }

  /// Sequence number of the event currently executing on this simulator
  /// (kNoEventSeq outside any callback). Used by the coroutine layer to
  /// record promise-completion happens-before edges.
  uint64_t CurrentEventSeq() const { return current_event_seq_; }

  // --- schedule-order race detection (design note D12) ----------------

  /// Attaches a race detector: every subsequent event begin and every
  /// shared-state access recorded through sim::race hooks while this
  /// simulator's events execute is reported to `detector`. Pass nullptr
  /// to detach. The detector must outlive the attachment.
  void AttachRaceDetector(RaceDetector* detector) {
    race_detector_ = detector;
  }
  RaceDetector* race_detector() const { return race_detector_; }

  /// Records a happens-before edge from `from_seq` (an already-executed
  /// event) to the most recently scheduled event. Called by the coroutine
  /// layer right after scheduling a promise/join resume; no-op when no
  /// detector is attached or `from_seq` is kNoEventSeq.
  void NoteEdgeToLastScheduled(uint64_t from_seq) {
    if (race_detector_ != nullptr) NoteEdgeToLastScheduledSlow(from_seq);
  }

  // --- tie-shuffle exploration (design note D12) ----------------------

  /// Replaces the FIFO tie-break among equal-time events with a seeded
  /// pseudo-random permutation (seed 0 restores FIFO). Events with
  /// time >= `horizon` keep the FIFO order — shrinking the horizon is how
  /// a divergence is minimized to the first diverging time. The pending
  /// heap is rebuilt under the new order, so this may be called at any
  /// point of a run.
  void SetTieShuffle(uint64_t seed,
                     TimeMicros horizon = kMaxTimeMicros);
  uint64_t tie_shuffle_seed() const { return shuffle_seed_; }

  static constexpr TimeMicros kMaxTimeMicros =
      std::numeric_limits<TimeMicros>::max();

 private:
  static constexpr uint32_t kNoSlot = UINT32_MAX;

  /// One pooled event. `generation` advances every time the slot is
  /// recycled, invalidating stale EventIds. `tag` / `parent_seq` feed the
  /// race detector's provenance and parent-spawned-child edges; they are
  /// stamped unconditionally (two stores) so attaching a detector never
  /// perturbs the schedule.
  struct Slot {
    TimeMicros time = 0;
    uint64_t seq = 0;
    EventFn fn;
    const char* tag = nullptr;
    uint64_t parent_seq = kNoEventSeq;
    uint32_t generation = 1;
    uint32_t next_free = kNoSlot;
    bool in_use = false;
    bool cancelled = false;
  };

  static EventId MakeId(uint32_t generation, uint32_t slot) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  bool SlotLess(uint32_t a, uint32_t b) const;
  void HeapPush(uint32_t slot);
  uint32_t HeapPop();
  uint32_t AllocSlot();
  void FreeSlot(uint32_t index);
  /// Drops cancelled events off the heap top; returns the top live slot
  /// index or kNoSlot when the heap is empty.
  uint32_t PeekLive();
  void NoteEdgeToLastScheduledSlow(uint64_t from_seq);
  /// Per-(seed, time) pseudo-random rank of `seq` among its time-group:
  /// the tie-shuffle comparison key.
  uint64_t ShuffleKey(TimeMicros time, uint64_t seq) const;

  TimeMicros now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  size_t live_ = 0;
  uint64_t current_event_seq_ = kNoEventSeq;
  RaceDetector* race_detector_ = nullptr;
  uint64_t shuffle_seed_ = 0;  // 0 = FIFO tie-break (the default)
  TimeMicros shuffle_horizon_ = kMaxTimeMicros;
  Simulator* previous_current_ = nullptr;
  std::vector<Slot> slots_;
  std::vector<uint32_t> heap_;  // slot indices, min-heap on (time, seq)
  uint32_t free_head_ = kNoSlot;
};

}  // namespace paxoscp::sim
