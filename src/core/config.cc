#include "core/config.h"

namespace paxoscp::core {

char RegionCode(Region region) {
  switch (region) {
    case Region::kVirginia:
      return 'V';
    case Region::kOregon:
      return 'O';
    case Region::kCalifornia:
      return 'C';
  }
  return '?';
}

Result<Region> RegionFromCode(char code) {
  switch (code) {
    case 'V':
    case 'v':
      return Region::kVirginia;
    case 'O':
    case 'o':
      return Region::kOregon;
    case 'C':
    case 'c':
      return Region::kCalifornia;
  }
  return Status::InvalidArgument(std::string("unknown region code '") + code +
                                 "'");
}

TimeMicros RegionRtt(Region a, Region b) {
  if (a == b) {
    // Same region: the paper's Virginia nodes sit in distinct availability
    // zones with ~1.5 ms round trips; we use the same figure for
    // same-region pairs in general.
    return 1500;
  }
  const bool has_virginia = a == Region::kVirginia || b == Region::kVirginia;
  if (has_virginia) return 90 * kMillisecond;  // V-O and V-C ~90 ms
  return 20 * kMillisecond;                    // O-C ~20 ms
}

Result<ClusterConfig> ClusterConfig::FromCode(const std::string& code) {
  if (code.empty()) {
    return Status::InvalidArgument("cluster code must not be empty");
  }
  ClusterConfig config;
  for (size_t i = 0; i < code.size(); ++i) {
    Result<Region> region = RegionFromCode(code[i]);
    if (!region.ok()) return region.status();
    // Built with += (not a chained rvalue operator+): GCC 12 -O2 emits a
    // spurious -Wrestrict for the temporary-string concatenation.
    std::string name(1, code[i]);
    name += std::to_string(i);
    config.datacenters.push_back(DatacenterSpec{std::move(name), *region});
  }
  return config;
}

ClusterConfig ClusterConfig::PaperTestbed() {
  return *FromCode("VVVOC");
}

std::vector<std::vector<TimeMicros>> ClusterConfig::RttMatrix() const {
  const int d = num_datacenters();
  std::vector<std::vector<TimeMicros>> rtt(
      d, std::vector<TimeMicros>(d, kIntraDatacenterRtt));
  for (int a = 0; a < d; ++a) {
    for (int b = 0; b < d; ++b) {
      if (a == b) continue;
      rtt[a][b] = RegionRtt(datacenters[a].region, datacenters[b].region);
    }
  }
  return rtt;
}

}  // namespace paxoscp::core
