#include "core/cluster.h"

namespace paxoscp::core {

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)), seed_rng_(config_.seed) {
  net::NetworkOptions net_options;
  net_options.loss_probability = config_.loss_probability;
  net_options.latency_jitter = config_.latency_jitter;
  net_options.default_timeout = config_.message_timeout;
  net_options.seed = NextSeed();
  network_ = std::make_unique<net::Network>(&simulator_, config_.RttMatrix(),
                                            net_options);
  const int d = config_.num_datacenters();
  stores_.reserve(d);
  services_.reserve(d);
  for (DcId dc = 0; dc < d; ++dc) {
    stores_.push_back(std::make_unique<kvstore::MultiVersionStore>());
    services_.push_back(std::make_unique<txn::TransactionService>(
        dc, network_.get(), stores_.back().get(), config_.service_times,
        NextSeed()));
    txn::TransactionService* service = services_.back().get();
    network_->RegisterEndpoint(
        dc, [service](DcId from, const std::any* request) {
          return service->Handle(from, request);
        });
  }
}

uint64_t Cluster::NextSeed() { return seed_rng_.Next(); }

txn::TransactionClient* Cluster::CreateClient(
    DcId dc, const txn::ClientOptions& options) {
  clients_.push_back(std::make_unique<txn::TransactionClient>(
      network_.get(), dc, options, next_client_uid_++, NextSeed()));
  return clients_.back().get();
}

Status Cluster::LoadInitialRow(const std::string& group,
                               const std::string& row,
                               const kvstore::AttributeMap& attributes) {
  for (DcId dc = 0; dc < num_datacenters(); ++dc) {
    PAXOSCP_RETURN_IF_ERROR(
        services_[dc]->GroupLog(group)->LoadInitialRow(row, attributes));
  }
  return Status::OK();
}

uint64_t Cluster::RunToCompletion(uint64_t max_events) {
  return simulator_.Run(max_events);
}

}  // namespace paxoscp::core
