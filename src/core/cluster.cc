#include "core/cluster.h"

#include <cstdlib>

#include "common/logging.h"
#include "fault/injector.h"

namespace paxoscp::core {

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)), seed_rng_(config_.seed) {
  net::NetworkOptions net_options;
  net_options.loss_probability = config_.loss_probability;
  net_options.latency_jitter = config_.latency_jitter;
  net_options.default_timeout = config_.message_timeout;
  net_options.seed = NextSeed();
  network_ = std::make_unique<net::Network>(&simulator_, config_.RttMatrix(),
                                            net_options);
  const int d = config_.num_datacenters();
  stores_.reserve(d);
  services_.reserve(d);
  for (DcId dc = 0; dc < d; ++dc) {
    stores_.push_back(std::make_unique<kvstore::MultiVersionStore>());
    services_.emplace_back();
    RestartService(dc);
  }
}

void Cluster::RestartService(DcId dc) {
  // The recovery daemon (D10) survives a restart like the rest of the
  // service's durable responsibilities: capture its state (and the group
  // names, which live only in the in-memory group map) before retiring the
  // old process, then re-discover pending prepares from the durable WAL
  // side tables on the new one.
  bool daemon_was_running = false;
  txn::RecoveryDaemonOptions daemon_options;
  std::vector<std::string> known_groups;
  if (services_[dc] != nullptr) {
    daemon_was_running = services_[dc]->recovery_daemon_running();
    if (daemon_was_running) {
      daemon_options = services_[dc]->recovery_daemon_options();
    }
    known_groups = services_[dc]->KnownGroups();
    services_[dc]->StopRecoveryDaemon();  // queued timers become no-ops
    retired_services_.push_back(std::move(services_[dc]));
  }
  services_[dc] = std::make_unique<txn::TransactionService>(
      dc, network_.get(), stores_[dc].get(), config_.service_times,
      NextSeed());
  txn::TransactionService* service = services_[dc].get();
  network_->RegisterEndpoint(
      dc, [service](DcId from, const std::any* request) {
        return service->Handle(from, request);
      });
  for (const std::string& group : known_groups) service->GroupLog(group);
  if (daemon_was_running) service->StartRecoveryDaemon(daemon_options);
}

fault::FaultInjector* Cluster::ApplyFaultPlan(const fault::FaultPlan& plan) {
  if (injector_ == nullptr) {
    injector_ = std::make_unique<fault::FaultInjector>(
        network_.get(), [this](DcId dc) { RestartService(dc); });
  }
  injector_->Arm(plan);
  return injector_.get();
}

Cluster::~Cluster() = default;

uint64_t Cluster::NextSeed() { return seed_rng_.Next(); }

txn::TransactionClient* Cluster::CreateClient(
    DcId dc, const txn::ClientOptions& options) {
  if (dc < 0 || dc >= num_datacenters()) {
    PAXOSCP_LOG(kError) << "CreateClient: datacenter " << dc
                        << " out of range [0, " << num_datacenters() << ")";
    std::abort();
  }
  clients_.push_back(std::make_unique<txn::TransactionClient>(
      network_.get(), dc, options, next_client_uid_++, NextSeed()));
  return clients_.back().get();
}

txn::Session Cluster::CreateSession(DcId dc,
                                    const txn::ClientOptions& options) {
  return txn::Session(CreateClient(dc, options));
}

Status Cluster::LoadInitialRow(const std::string& group,
                               const std::string& row,
                               const kvstore::AttributeMap& attributes) {
  // The whole-row predicate marker must stay out of data rows everywhere,
  // not just in Txn::Write: a loaded "*" attribute would be read back as
  // a row-level predicate by the conflict checks.
  for (const auto& [attribute, value] : attributes) {
    if (wal::IsReservedAttribute(attribute)) {
      return wal::ReservedAttributeError();
    }
  }
  for (DcId dc = 0; dc < num_datacenters(); ++dc) {
    PAXOSCP_RETURN_IF_ERROR(
        services_[dc]->GroupLog(group)->LoadInitialRow(row, attributes));
  }
  return Status::OK();
}

uint64_t Cluster::RunToCompletion(uint64_t max_events) {
  return simulator_.Run(max_events);
}

}  // namespace paxoscp::core
