// Cluster configuration: datacenter placement, latency model, failure
// knobs. Latency presets reproduce the paper's testbed (§6): three nodes in
// Virginia (distinct availability zones), one in Oregon, one in northern
// California, with the published round-trip times.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "txn/service.h"
#include "txn/transaction.h"

namespace paxoscp::core {

/// The regions of the paper's evaluation. A single-letter code names a
/// node's region: V = Virginia, O = Oregon, C = California.
enum class Region { kVirginia, kOregon, kCalifornia };

char RegionCode(Region region);
Result<Region> RegionFromCode(char code);

/// Round-trip time between two regions (paper §6): V-V ~1.5 ms (distinct
/// availability zones), V-O and V-C ~90 ms, O-C ~20 ms. Same-node
/// (intra-datacenter) hops use kIntraDatacenterRtt.
TimeMicros RegionRtt(Region a, Region b);

inline constexpr TimeMicros kIntraDatacenterRtt = 300;  // 0.3 ms

struct DatacenterSpec {
  std::string name;
  Region region = Region::kVirginia;
};

struct ClusterConfig {
  std::vector<DatacenterSpec> datacenters;

  /// Per-message loss probability (the paper's UDP transport loses
  /// messages; 0 models a quiet network).
  double loss_probability = 0.0;
  /// One-way latency jitter fraction.
  double latency_jitter = 0.10;
  /// Message timeout (paper: two seconds).
  TimeMicros message_timeout = 2 * kSecond;
  /// Simulated service processing costs.
  txn::ServiceTimeModel service_times;
  /// Master seed; everything (jitter, loss, backoff, workload) derives
  /// from it, so runs are reproducible.
  uint64_t seed = 42;

  int num_datacenters() const {
    return static_cast<int>(datacenters.size());
  }

  /// Builds a cluster from a region string such as "VVV", "VOC", "COVVV"
  /// (one letter per datacenter, paper Figure 5 naming).
  static Result<ClusterConfig> FromCode(const std::string& code);

  /// The paper's five-node deployment: V, V, V, O, C.
  static ClusterConfig PaperTestbed();

  /// The RTT matrix implied by the datacenter regions.
  std::vector<std::vector<TimeMicros>> RttMatrix() const;
};

}  // namespace paxoscp::core
