// Correctness checkers for the replicated log and the executed history.
//
// After a run, these validate the paper's correctness obligations (§3):
//   (R1)     no two datacenter logs disagree on a position;
//   (L1/L2)  exactly the committed transactions appear in the log, each in
//            exactly one position;
//   (L3)     the log is a one-copy serializable history: replaying entries
//            in log order (transactions within an entry in list order),
//            every read of every committed transaction observed precisely
//            the latest preceding write of that item in the serial order;
//   plus an independent multi-version serialization graph (MVSG) build
//   whose acyclicity re-confirms one-copy serializability.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/cluster.h"
#include "wal/log_entry.h"

namespace paxoscp::core {

/// What the test/benchmark harness observed for one transaction attempt,
/// used to cross-check client-visible outcomes against the log.
struct ClientOutcome {
  TxnId id = 0;
  bool committed = false;
  bool read_only = false;
  /// Client-reported commit position (committed read/write txns only).
  LogPos position = 0;
  /// True when the client never learned its outcome (crash / unavailable);
  /// such transactions may legitimately appear in the log or not.
  bool unknown = false;
  /// Multi-group runs: the group a single-group transaction ran on (empty
  /// in single-group harnesses, where the checked group is implied).
  std::string group;
  /// Cross-group transactions: the participant groups (empty = single).
  std::vector<std::string> groups;
};

/// Canonical fate of a cross-group transaction (D8): determined by the
/// first decide record in its commit group's log.
enum class CrossFate { kCommitted, kAborted, kUndecided };

struct CheckReport {
  bool ok = true;
  std::vector<std::string> violations;

  // Statistics gathered while checking.
  LogPos max_position = 0;
  int committed_txns_in_log = 0;
  int combined_entries = 0;   // entries carrying more than one transaction
  int combined_txns = 0;      // transactions beyond the first, summed

  void Violation(std::string message);
  std::string ToString() const;
};

class Checker {
 public:
  explicit Checker(Cluster* cluster) : cluster_(cluster) {}

  /// Runs every check for `group`. `outcomes` may be empty, in which case
  /// the client-visible cross-checks are skipped.
  CheckReport CheckAll(const std::string& group,
                       const std::vector<ClientOutcome>& outcomes);

  /// Full multi-group check (D8): per-group R1/contiguity and decision-
  /// aware L3 replay, plus the cross-group obligations — atomicity (a
  /// canonically committed transaction prepared in every participant
  /// group; no group applies a decision other than the canonical one),
  /// the shared commit order of committed prepares, and a *global* MVSG
  /// over the union of all groups (cross transactions are shared nodes;
  /// the union must be acyclic for one-copy serializability of the whole
  /// sharded history, not just of each group).
  CheckReport CheckAllCross(const std::vector<std::string>& groups,
                            const std::vector<ClientOutcome>& outcomes);

  /// (R1) + log contiguity. Also merges all replicas' entries into one
  /// global log (any replica may be missing suffix entries).
  CheckReport CheckReplication(const std::string& group,
                               std::map<LogPos, wal::LogEntry>* global_log);

  /// (L1)/(L2) against client outcomes.
  static void CheckOutcomes(const std::map<LogPos, wal::LogEntry>& log,
                            const std::vector<ClientOutcome>& outcomes,
                            CheckReport* report);

  /// Fate of every cross-group transaction prepared in `log`, resolved
  /// against that log's decide records (in a participant group all decides
  /// are canonical copies; in the commit group the first decide wins).
  static std::map<TxnId, CrossFate> ResolveDecisions(
      const std::map<LogPos, wal::LogEntry>& log);

  /// (L3): serial replay validating every read's observed provenance.
  /// `decisions` resolves cross-group prepares: committed prepares take
  /// effect at their prepare position, aborted/undecided ones are no-ops,
  /// decide records are never effectful. Single-group histories pass an
  /// empty map.
  static void CheckOneCopySerializability(
      const std::map<LogPos, wal::LogEntry>& log,
      const std::map<TxnId, CrossFate>& decisions, CheckReport* report);

  /// MVSG acyclicity (independent validation path), same decision
  /// semantics as the serial replay.
  static void CheckSerializationGraph(
      const std::map<LogPos, wal::LogEntry>& log,
      const std::map<TxnId, CrossFate>& decisions, CheckReport* report);

  /// Convenience overloads resolving decisions from the log itself (the
  /// right thing for a standalone group: its decide records are canonical
  /// copies). Identical to the old behavior on cross-free histories.
  static void CheckOneCopySerializability(
      const std::map<LogPos, wal::LogEntry>& log, CheckReport* report) {
    CheckOneCopySerializability(log, ResolveDecisions(log), report);
  }
  static void CheckSerializationGraph(
      const std::map<LogPos, wal::LogEntry>& log, CheckReport* report) {
    CheckSerializationGraph(log, ResolveDecisions(log), report);
  }

 private:
  Cluster* cluster_;
};

}  // namespace paxoscp::core
