// Correctness checkers for the replicated log and the executed history.
//
// After a run, these validate the paper's correctness obligations (§3):
//   (R1)     no two datacenter logs disagree on a position;
//   (L1/L2)  exactly the committed transactions appear in the log, each in
//            exactly one position;
//   (L3)     the log is a one-copy serializable history: replaying entries
//            in log order (transactions within an entry in list order),
//            every read of every committed transaction observed precisely
//            the latest preceding write of that item in the serial order;
//   plus an independent multi-version serialization graph (MVSG) build
//   whose acyclicity re-confirms one-copy serializability.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/cluster.h"
#include "wal/log_entry.h"

namespace paxoscp::core {

/// What the test/benchmark harness observed for one transaction attempt,
/// used to cross-check client-visible outcomes against the log.
struct ClientOutcome {
  TxnId id = 0;
  bool committed = false;
  bool read_only = false;
  /// Client-reported commit position (committed read/write txns only).
  LogPos position = 0;
  /// True when the client never learned its outcome (crash / unavailable);
  /// such transactions may legitimately appear in the log or not.
  bool unknown = false;
};

struct CheckReport {
  bool ok = true;
  std::vector<std::string> violations;

  // Statistics gathered while checking.
  LogPos max_position = 0;
  int committed_txns_in_log = 0;
  int combined_entries = 0;   // entries carrying more than one transaction
  int combined_txns = 0;      // transactions beyond the first, summed

  void Violation(std::string message);
  std::string ToString() const;
};

class Checker {
 public:
  explicit Checker(Cluster* cluster) : cluster_(cluster) {}

  /// Runs every check for `group`. `outcomes` may be empty, in which case
  /// the client-visible cross-checks are skipped.
  CheckReport CheckAll(const std::string& group,
                       const std::vector<ClientOutcome>& outcomes);

  /// (R1) + log contiguity. Also merges all replicas' entries into one
  /// global log (any replica may be missing suffix entries).
  CheckReport CheckReplication(const std::string& group,
                               std::map<LogPos, wal::LogEntry>* global_log);

  /// (L1)/(L2) against client outcomes.
  static void CheckOutcomes(const std::map<LogPos, wal::LogEntry>& log,
                            const std::vector<ClientOutcome>& outcomes,
                            CheckReport* report);

  /// (L3): serial replay validating every read's observed provenance.
  static void CheckOneCopySerializability(
      const std::map<LogPos, wal::LogEntry>& log, CheckReport* report);

  /// MVSG acyclicity (independent validation path).
  static void CheckSerializationGraph(
      const std::map<LogPos, wal::LogEntry>& log, CheckReport* report);

 private:
  Cluster* cluster_;
};

}  // namespace paxoscp::core
