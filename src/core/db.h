// paxoscp::Db — the application-facing entry point (what Spinnaker and
// Consus present as "the client library"): wraps cluster construction,
// initial data loading, and session creation behind one object, so an
// application touches exactly three types — Db, txn::Session, txn::Txn —
// instead of wiring Cluster / TransactionClient / group strings by hand.
//
//   Db db(config);
//   db.Load("accounts", "row", {{"alice", "100"}});
//   txn::Session session = db.Session(/*dc=*/0);
//   ... co_await session.Begin("accounts") / session.RunTransaction(...)
//   db.Run();  // drain the simulation
#pragma once

#include <string>
#include <vector>

#include "core/checker.h"
#include "core/cluster.h"
#include "txn/cross.h"
#include "txn/txn.h"

namespace paxoscp {

class Db {
 public:
  explicit Db(core::ClusterConfig config) : cluster_(std::move(config)) {}

  /// The underlying cluster, for fault injection, per-DC inspection, and
  /// the workload runner.
  core::Cluster* cluster() { return &cluster_; }
  sim::Simulator* simulator() { return cluster_.simulator(); }
  int num_datacenters() const { return cluster_.num_datacenters(); }

  /// Seeds the same initial data row into every datacenter (position-0
  /// state; the pre-transaction snapshot every workload starts from).
  Status Load(const std::string& group, const std::string& row,
              const kvstore::AttributeMap& attributes) {
    return cluster_.LoadInitialRow(group, row, attributes);
  }

  /// Opens a session homed at datacenter `dc`. The session (and every
  /// handle it yields) borrows a client owned by the cluster, so it must
  /// not outlive this Db; `dc` must be a valid datacenter index.
  txn::Session Session(DcId dc, const txn::ClientOptions& options = {}) {
    return cluster_.CreateSession(dc, options);
  }

  /// Runs the simulation until no events remain (all application
  /// coroutines finished). Returns the number of events executed.
  uint64_t Run(uint64_t max_events = UINT64_MAX) {
    return cluster_.RunToCompletion(max_events);
  }

  /// Full invariant check of `group`'s replicated history (R1, L1-L3,
  /// MVSG acyclicity) — the paper's correctness obligations.
  core::CheckReport Check(const std::string& group) {
    core::Checker checker(&cluster_);
    return checker.CheckAll(group, {});
  }

  /// Multi-group check (D8): per-group obligations plus cross-group
  /// atomicity, the shared commit order, and global one-copy
  /// serializability over the union of the groups' logs.
  core::CheckReport Check(const std::vector<std::string>& groups) {
    core::Checker checker(&cluster_);
    return checker.CheckAllCross(groups, {});
  }

 private:
  core::Cluster cluster_;
};

}  // namespace paxoscp
