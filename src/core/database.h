// Application-facing convenience facade: a Database wraps a
// TransactionClient with the retry loop real applications write by hand —
// aborted transactions (the expected outcome of optimistic concurrency
// control) are re-executed from a fresh snapshot with randomized backoff,
// exactly the pattern the paper assumes application instances follow.
#pragma once

#include <functional>
#include <string>

#include "common/random.h"
#include "core/cluster.h"
#include "sim/coro.h"
#include "txn/client.h"

namespace paxoscp::core {

/// Handle passed to a transaction body: reads/writes one transaction group.
class TxnHandle {
 public:
  TxnHandle(txn::TransactionClient* client, const std::string* group)
      : client_(client), group_(group) {}

  sim::Coro<Result<std::string>> Read(const std::string& row,
                                      const std::string& attribute) {
    co_return co_await client_->Read(*group_, row, attribute);
  }

  Status Write(const std::string& row, const std::string& attribute,
               std::string value) {
    return client_->Write(*group_, row, attribute, std::move(value));
  }

 private:
  txn::TransactionClient* client_;
  const std::string* group_;
};

/// The transaction body: performs reads/writes through the handle and
/// returns OK to request a commit or any error to abort the attempt.
using TxnBody = std::function<sim::Coro<Status>(TxnHandle*)>;

struct RetryOptions {
  int max_attempts = 8;
  TimeMicros backoff_min = 20 * kMillisecond;
  TimeMicros backoff_max = 200 * kMillisecond;
};

struct TxnResult {
  Status status;             // OK iff the transaction finally committed
  int attempts = 0;          // total begin..commit attempts
  txn::CommitResult commit;  // last commit outcome
};

class Database {
 public:
  /// Creates a client homed at `dc`; the cluster owns the client.
  Database(Cluster* cluster, DcId dc, const txn::ClientOptions& options = {})
      : cluster_(cluster),
        client_(cluster->CreateClient(dc, options)),
        rng_(cluster->NextSeed()) {}

  txn::TransactionClient* client() { return client_; }

  /// Runs `body` as a serializable transaction on `group`, retrying aborts
  /// (fresh snapshot each attempt) per `retry`.
  sim::Coro<TxnResult> RunTransaction(std::string group, TxnBody body,
                                      RetryOptions retry = {}) {
    TxnResult result;
    for (result.attempts = 1; result.attempts <= retry.max_attempts;
         ++result.attempts) {
      Status begin = co_await client_->Begin(group);
      if (!begin.ok()) {
        result.status = begin;
        co_return result;
      }
      Status body_status = co_await body(&handle_ptr(group));
      if (!body_status.ok()) {
        (void)client_->Abort(group);
        result.status = body_status;
        co_return result;
      }
      result.commit = co_await client_->Commit(group);
      result.status = result.commit.status;
      if (result.commit.committed) co_return result;
      if (!result.commit.status.IsAborted()) co_return result;  // infra error
      // Concurrency-control abort: retry from a fresh snapshot.
      co_await sim::SleepFor(
          cluster_->simulator(),
          rng_.UniformRange(retry.backoff_min, retry.backoff_max));
    }
    result.attempts = retry.max_attempts;
    co_return result;
  }

 private:
  // The handle must outlive the body's coroutine frame; it lives here and
  // is re-pointed per transaction (coroutine parameters must be pointers
  // to stable storage; see txn/client.h).
  TxnHandle& handle_ptr(const std::string& group) {
    group_storage_ = group;
    handle_ = TxnHandle(client_, &group_storage_);
    return handle_;
  }

  Cluster* cluster_;
  txn::TransactionClient* client_;
  Rng rng_;
  std::string group_storage_;
  TxnHandle handle_{nullptr, nullptr};
};

}  // namespace paxoscp::core
