// Cluster: owns the simulator, the network, and one key-value store +
// Transaction Service per datacenter; creates Transaction Clients. This is
// the top-level object examples and benches instantiate (paper Figure 1).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "fault/fault_plan.h"
#include "kvstore/store.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "txn/client.h"
#include "txn/service.h"

namespace paxoscp::fault {
class FaultInjector;
}

namespace paxoscp::core {

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();  // out-of-line: FaultInjector is incomplete here
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterConfig& config() const { return config_; }
  int num_datacenters() const { return config_.num_datacenters(); }

  sim::Simulator* simulator() { return &simulator_; }
  net::Network* network() { return network_.get(); }
  kvstore::MultiVersionStore* store(DcId dc) { return stores_[dc].get(); }
  txn::TransactionService* service(DcId dc) { return services_[dc].get(); }

  /// Creates a Transaction Client homed at `dc` (which must be a valid
  /// datacenter index; out-of-range aborts). The returned pointer is owned
  /// by the cluster and stays valid until the cluster is destroyed —
  /// callers must never delete it. Application code should not use this
  /// directly: prefer CreateSession / Db::Session, whose handles cannot
  /// outlive or double-free the client.
  txn::TransactionClient* CreateClient(DcId dc,
                                       const txn::ClientOptions& options);

  /// Opens a session (the public transaction API, txn/txn.h) homed at
  /// `dc`, backed by a fresh cluster-owned client.
  txn::Session CreateSession(DcId dc, const txn::ClientOptions& options = {});

  /// Seeds the same initial data row into every datacenter (position-0
  /// state, the workload's pre-loaded YCSB row).
  Status LoadInitialRow(const std::string& group, const std::string& row,
                        const kvstore::AttributeMap& attributes);

  /// Runs the simulation until no events remain (all client coroutines
  /// finished). Returns the number of events executed.
  uint64_t RunToCompletion(uint64_t max_events = UINT64_MAX);

  // Fault injection passthrough.
  void SetDatacenterDown(DcId dc, bool down) {
    network_->SetDatacenterDown(dc, down);
  }
  void SetLinkDown(DcId a, DcId b, bool down) {
    network_->SetLinkDown(a, b, down);
  }
  void SetLinkOneWayDown(DcId from, DcId to, bool down) {
    network_->SetLinkOneWayDown(from, to, down);
  }

  /// Restarts the Transaction Service at `dc`: the replacement serves all
  /// new requests against the same (durable) key-value store, so it
  /// recovers the group logs and acceptor state, while requests already in
  /// flight complete against the retired instance (a restart loses nothing
  /// but in-flight work — services are stateless, see txn/service.h). Any
  /// background applier must be re-started by the caller.
  void RestartService(DcId dc);

  /// Arms `plan` on this cluster's fault injector: every event fires at
  /// Now() + event.at, service restarts routed through RestartService.
  /// Returns the injector (owned by the cluster) for inspection.
  fault::FaultInjector* ApplyFaultPlan(const fault::FaultPlan& plan);

  /// Fresh RNG seed derived deterministically from the cluster seed.
  uint64_t NextSeed();

 private:
  ClusterConfig config_;
  sim::Simulator simulator_;
  Rng seed_rng_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<kvstore::MultiVersionStore>> stores_;
  std::vector<std::unique_ptr<txn::TransactionService>> services_;
  /// Replaced service instances, kept alive because in-flight handler
  /// coroutines still reference them.
  std::vector<std::unique_ptr<txn::TransactionService>> retired_services_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::vector<std::unique_ptr<txn::TransactionClient>> clients_;
  uint32_t next_client_uid_ = 1;
};

}  // namespace paxoscp::core
