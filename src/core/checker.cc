#include "core/checker.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace paxoscp::core {

void CheckReport::Violation(std::string message) {
  ok = false;
  violations.push_back(std::move(message));
}

std::string CheckReport::ToString() const {
  std::ostringstream os;
  os << (ok ? "OK" : "VIOLATIONS") << " (log through " << max_position << ", "
     << committed_txns_in_log << " committed txns, " << combined_entries
     << " combined entries)";
  for (const std::string& v : violations) os << "\n  - " << v;
  return os.str();
}

CheckReport Checker::CheckReplication(
    const std::string& group, std::map<LogPos, wal::LogEntry>* global_log) {
  CheckReport report;
  global_log->clear();
  std::map<LogPos, uint64_t> fingerprints;
  for (DcId dc = 0; dc < cluster_->num_datacenters(); ++dc) {
    const std::map<LogPos, wal::LogEntry> entries =
        cluster_->service(dc)->GroupLog(group)->AllEntries();
    for (const auto& [pos, entry] : entries) {
      const uint64_t fp = entry.Fingerprint();
      auto it = fingerprints.find(pos);
      if (it == fingerprints.end()) {
        fingerprints.emplace(pos, fp);
        global_log->emplace(pos, entry);
      } else if (it->second != fp) {
        report.Violation("(R1) datacenter " + std::to_string(dc) +
                         " disagrees on log position " + std::to_string(pos));
      }
    }
  }
  // Contiguity: positions are contested strictly in order (commit position
  // = read position + 1; promotion only advances past decided positions),
  // so the merged log must have no gaps.
  LogPos expected = 1;
  for (const auto& [pos, entry] : *global_log) {
    if (pos != expected) {
      report.Violation("log gap: expected position " +
                       std::to_string(expected) + ", found " +
                       std::to_string(pos));
    }
    expected = pos + 1;
  }
  report.max_position =
      global_log->empty() ? 0 : global_log->rbegin()->first;
  for (const auto& [pos, entry] : *global_log) {
    // Decide records are protocol bookkeeping, not transactions — they
    // count neither as committed transactions nor toward combination.
    int real_txns = 0;
    for (const wal::TxnRecord& t : entry.txns) {
      if (t.kind != wal::RecordKind::kDecide) ++real_txns;
    }
    report.committed_txns_in_log += real_txns;
    if (real_txns > 1) {
      report.combined_entries++;
      report.combined_txns += real_txns - 1;
    }
  }
  return report;
}

void Checker::CheckOutcomes(const std::map<LogPos, wal::LogEntry>& log,
                            const std::vector<ClientOutcome>& outcomes,
                            CheckReport* report) {
  // Index: txn id -> position(s) in the log. Decide records are not
  // transaction appearances (a cross txn's prepare and its decide share
  // the id by design).
  std::map<TxnId, std::vector<LogPos>> where;
  for (const auto& [pos, entry] : log) {
    for (const wal::TxnRecord& t : entry.txns) {
      if (t.kind != wal::RecordKind::kDecide) where[t.id].push_back(pos);
    }
  }
  std::set<TxnId> known;
  for (const ClientOutcome& o : outcomes) {
    known.insert(o.id);
    const auto it = where.find(o.id);
    const int appearances =
        it == where.end() ? 0 : static_cast<int>(it->second.size());
    if (appearances > 1) {
      report->Violation("(L2) txn " + TxnIdToString(o.id) + " appears in " +
                        std::to_string(appearances) + " log positions");
    }
    if (o.unknown) continue;  // crashed client: either outcome is legal
    if (o.read_only) {
      if (appearances != 0) {
        report->Violation("read-only txn " + TxnIdToString(o.id) +
                          " appears in the log");
      }
      continue;
    }
    if (o.committed && appearances == 0) {
      report->Violation("(L1) committed txn " + TxnIdToString(o.id) +
                        " missing from the log");
    }
    if (!o.committed && appearances != 0) {
      report->Violation("(L1) aborted txn " + TxnIdToString(o.id) +
                        " present in the log at position " +
                        std::to_string(it->second.front()));
    }
    if (o.committed && appearances == 1 && o.position != 0 &&
        it->second.front() != o.position) {
      report->Violation("txn " + TxnIdToString(o.id) +
                        " reported position " + std::to_string(o.position) +
                        " but is at " + std::to_string(it->second.front()));
    }
  }
  // Transactions in the log but never reported by any client are fine only
  // if the harness passed an incomplete outcome list; flag duplicates
  // within single entries regardless.
  for (const auto& [pos, entry] : log) {
    std::set<TxnId> in_entry;
    for (const wal::TxnRecord& t : entry.txns) {
      if (!in_entry.insert(t.id).second) {
        report->Violation("txn " + TxnIdToString(t.id) +
                          " duplicated within log position " +
                          std::to_string(pos));
      }
    }
  }
}

namespace {

/// Replay state per item: who wrote it last (serially) and where.
struct LastWrite {
  TxnId writer = 0;
  LogPos pos = 0;
};

/// True when `t`'s reads and writes take part in the serial history:
/// ordinary records always do; cross-group prepares only with a canonical
/// commit decision; decide records never (they carry no reads or writes).
bool Effectful(const wal::TxnRecord& t,
               const std::map<TxnId, CrossFate>& decisions) {
  if (t.kind == wal::RecordKind::kData) return true;
  if (t.kind == wal::RecordKind::kDecide) return false;
  auto it = decisions.find(t.id);
  return it != decisions.end() && it->second == CrossFate::kCommitted;
}

}  // namespace

std::map<TxnId, CrossFate> Checker::ResolveDecisions(
    const std::map<LogPos, wal::LogEntry>& log) {
  std::map<TxnId, CrossFate> decisions;
  // First pass: every prepare starts undecided.
  for (const auto& [pos, entry] : log) {
    for (const wal::TxnRecord& t : entry.txns) {
      if (t.kind == wal::RecordKind::kPrepare) {
        decisions.emplace(t.id, CrossFate::kUndecided);
      }
    }
  }
  // Second pass, in log order: the first decide for a transaction wins
  // (in the commit group that makes it canonical by definition; in a
  // participant group every decide is a propagated canonical copy).
  for (const auto& [pos, entry] : log) {
    for (const wal::TxnRecord& t : entry.txns) {
      if (t.kind != wal::RecordKind::kDecide) continue;
      auto [it, inserted] = decisions.emplace(
          t.id,
          t.commit_decision ? CrossFate::kCommitted : CrossFate::kAborted);
      if (!inserted && it->second == CrossFate::kUndecided) {
        it->second =
            t.commit_decision ? CrossFate::kCommitted : CrossFate::kAborted;
      }
    }
  }
  return decisions;
}

void Checker::CheckOneCopySerializability(
    const std::map<LogPos, wal::LogEntry>& log,
    const std::map<TxnId, CrossFate>& decisions, CheckReport* report) {
  // Serial order S: entries by position, transactions within an entry in
  // list order. For each transaction, every read must have observed the
  // latest write to that item preceding the transaction in S — that is the
  // reads-x-from equivalence of Definition 1.
  std::map<wal::ItemId, LastWrite> state;
  /// Last position (in serial order so far) writing any attribute of a
  /// row — validates whole-row predicate reads (Txn::ReadRow).
  std::map<std::string, LogPos> row_last_write;
  for (const auto& [pos, entry] : log) {
    for (const wal::TxnRecord& t : entry.txns) {
      if (!Effectful(t, decisions)) continue;
      for (const wal::ReadRecord& r : t.reads) {
        if (r.item.attribute == wal::kWholeRowAttribute) {
          // Whole-row predicate read (phantom protection): the reader
          // observed the row's attribute set at its read position, so no
          // write to the row may precede it in serial order beyond that
          // snapshot — otherwise an attribute it saw as absent may have
          // been created behind its back.
          auto rw = row_last_write.find(r.item.row);
          if (rw != row_last_write.end() && rw->second > t.read_pos) {
            report->Violation(
                "(L3) txn " + TxnIdToString(t.id) + " at position " +
                std::to_string(pos) + " read whole row '" + r.item.row +
                "' at snapshot " + std::to_string(t.read_pos) +
                " but the row was written at position " +
                std::to_string(rw->second));
          }
          continue;
        }
        LastWrite expected;  // initial state: writer 0 at position 0
        auto it = state.find(r.item);
        if (it != state.end()) expected = it->second;
        if (r.observed_writer != expected.writer ||
            r.observed_pos != expected.pos) {
          report->Violation(
              "(L3) txn " + TxnIdToString(t.id) + " at position " +
              std::to_string(pos) + " read " + r.item.ToString() +
              " from txn " + TxnIdToString(r.observed_writer) + "@" +
              std::to_string(r.observed_pos) + " but serial order expects " +
              TxnIdToString(expected.writer) + "@" +
              std::to_string(expected.pos));
        }
      }
      for (const wal::WriteRecord& w : t.writes) {
        state[w.item] = LastWrite{t.id, pos};
        row_last_write[w.item.row] = pos;
      }
    }
  }
}

namespace {

/// One group's log plus the item namespace its rows live in (groups are
/// independent keyspaces: "row0" in group A and "row0" in group B are
/// different items in the global graph).
struct NamespacedLog {
  const std::map<LogPos, wal::LogEntry>* log = nullptr;
  std::string ns;
};

/// Builds the MVSG over the union of the given logs and reports cycles.
/// Cross-group transactions appear in several logs under one id, so they
/// are shared nodes — exactly what stitches the per-group serial orders
/// into one global graph.
void CheckMvsgOver(const std::vector<NamespacedLog>& logs,
                   const std::map<TxnId, CrossFate>& decisions,
                   CheckReport* report) {
  // Version order per item is the serial apply order. Edges:
  //   WW: each writer -> the next writer of the same item;
  //   WR: writer -> each reader of its version;
  //   RW: each reader of a version -> the writer of the next version.
  // One-copy serializability of the (global) history implies this graph
  // is acyclic.
  struct VersionInfo {
    TxnId writer;
    std::vector<TxnId> readers;
  };
  struct GlobalItem {
    std::string ns;
    wal::ItemId item;
    bool operator<(const GlobalItem& other) const {
      if (ns != other.ns) return ns < other.ns;
      return item < other.item;
    }
  };
  std::map<GlobalItem, std::vector<VersionInfo>> versions;
  std::vector<TxnId> order;
  std::map<TxnId, size_t> index;

  for (const NamespacedLog& nl : logs) {
    for (const auto& [pos, entry] : *nl.log) {
      for (const wal::TxnRecord& t : entry.txns) {
        if (!Effectful(t, decisions)) continue;
        if (index.count(t.id) == 0) {
          index[t.id] = order.size();
          order.push_back(t.id);
        }
        for (const wal::ReadRecord& r : t.reads) {
          auto& chain = versions[GlobalItem{nl.ns, r.item}];
          if (r.observed_writer == 0) {
            // Initial version: model as a virtual version 0 at the front.
            if (chain.empty() || chain.front().writer != 0) {
              chain.insert(chain.begin(), VersionInfo{0, {}});
            }
            chain.front().readers.push_back(t.id);
          } else {
            bool found = false;
            for (VersionInfo& v : chain) {
              if (v.writer == r.observed_writer) {
                v.readers.push_back(t.id);
                found = true;
                break;
              }
            }
            if (!found) {
              report->Violation("MVSG: txn " + TxnIdToString(t.id) +
                                " reads version of " + r.item.ToString() +
                                " written by unknown txn " +
                                TxnIdToString(r.observed_writer));
            }
          }
        }
        for (const wal::WriteRecord& w : t.writes) {
          versions[GlobalItem{nl.ns, w.item}].push_back(VersionInfo{t.id, {}});
        }
      }
    }
  }

  // Adjacency over txn indices (0 = virtual initial txn gets no node).
  const size_t n = order.size();
  std::vector<std::vector<size_t>> adj(n);
  auto add_edge = [&](TxnId from, TxnId to) {
    if (from == 0 || to == 0 || from == to) return;
    adj[index[from]].push_back(index[to]);
  };
  for (const auto& [item, chain] : versions) {
    for (size_t i = 0; i < chain.size(); ++i) {
      if (i + 1 < chain.size()) {
        add_edge(chain[i].writer, chain[i + 1].writer);  // WW
        for (TxnId reader : chain[i].readers) {
          add_edge(reader, chain[i + 1].writer);  // RW
        }
      }
      for (TxnId reader : chain[i].readers) {
        add_edge(chain[i].writer, reader);  // WR
      }
    }
  }

  // Cycle detection via iterative DFS with colors.
  enum Color : uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color(n, kWhite);
  for (size_t start = 0; start < n; ++start) {
    if (color[start] != kWhite) continue;
    std::vector<std::pair<size_t, size_t>> stack{{start, 0}};
    color[start] = kGray;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      if (next < adj[node].size()) {
        const size_t child = adj[node][next++];
        if (color[child] == kGray) {
          report->Violation("MVSG cycle involving txn " +
                            TxnIdToString(order[child]));
          color[child] = kBlack;  // report once
        } else if (color[child] == kWhite) {
          color[child] = kGray;
          stack.emplace_back(child, 0);
        }
      } else {
        color[node] = kBlack;
        stack.pop_back();
      }
    }
  }
}

}  // namespace

void Checker::CheckSerializationGraph(
    const std::map<LogPos, wal::LogEntry>& log,
    const std::map<TxnId, CrossFate>& decisions, CheckReport* report) {
  CheckMvsgOver({NamespacedLog{&log, ""}}, decisions, report);
}

CheckReport Checker::CheckAll(const std::string& group,
                              const std::vector<ClientOutcome>& outcomes) {
  std::map<LogPos, wal::LogEntry> log;
  CheckReport report = CheckReplication(group, &log);
  if (!outcomes.empty()) CheckOutcomes(log, outcomes, &report);
  const std::map<TxnId, CrossFate> decisions = ResolveDecisions(log);
  CheckOneCopySerializability(log, decisions, &report);
  CheckSerializationGraph(log, decisions, &report);
  return report;
}

CheckReport Checker::CheckAllCross(const std::vector<std::string>& groups,
                                   const std::vector<ClientOutcome>& outcomes) {
  CheckReport report;
  std::map<std::string, std::map<LogPos, wal::LogEntry>> logs;
  for (const std::string& group : groups) {
    CheckReport group_report = CheckReplication(group, &logs[group]);
    for (std::string& v : group_report.violations) {
      report.Violation("[" + group + "] " + std::move(v));
    }
    report.max_position =
        std::max(report.max_position, group_report.max_position);
    report.committed_txns_in_log += group_report.committed_txns_in_log;
    report.combined_entries += group_report.combined_entries;
    report.combined_txns += group_report.combined_txns;
  }

  // ---- Cross-group bookkeeping: prepares per transaction per group, and
  // the canonical fate from each transaction's commit group.
  struct PrepareSite {
    std::string group;
    LogPos pos = 0;
    size_t entry_index = 0;
    const wal::TxnRecord* record = nullptr;
  };
  std::map<TxnId, std::vector<PrepareSite>> prepares;
  for (const auto& [group, log] : logs) {
    for (const auto& [pos, entry] : log) {
      for (size_t i = 0; i < entry.txns.size(); ++i) {
        const wal::TxnRecord& t = entry.txns[i];
        if (t.kind == wal::RecordKind::kPrepare) {
          prepares[t.id].push_back(PrepareSite{group, pos, i, &t});
        }
      }
    }
  }

  std::map<TxnId, CrossFate> canonical;
  for (const auto& [id, sites] : prepares) {
    const wal::TxnRecord& first = *sites.front().record;
    // Participant lists must agree across every prepare of the txn.
    for (const PrepareSite& site : sites) {
      if (site.record->participants != first.participants ||
          site.record->cross_ts != first.cross_ts) {
        report.Violation("cross txn " + TxnIdToString(id) +
                         " has inconsistent prepare metadata across groups");
      }
    }
    if (first.participants.empty()) {
      report.Violation("cross txn " + TxnIdToString(id) +
                       " has an empty participant list");
      canonical[id] = CrossFate::kAborted;
      continue;
    }
    const std::string& commit_group = first.participants.front();
    auto cg = logs.find(commit_group);
    if (cg == logs.end()) {
      report.Violation("cross txn " + TxnIdToString(id) + " names '" +
                       commit_group +
                       "' as commit group, which is not among the checked "
                       "groups");
      canonical[id] = CrossFate::kAborted;
      continue;
    }
    // Canonical fate: the first decide record in the commit group's log.
    CrossFate fate = CrossFate::kUndecided;
    for (const auto& [pos, entry] : cg->second) {
      if (const wal::TxnRecord* d = entry.FindDecide(id)) {
        fate = d->commit_decision ? CrossFate::kCommitted
                                  : CrossFate::kAborted;
        break;
      }
    }
    canonical[id] = fate;

    // Atomicity: a committed transaction prepared in *every* participant
    // group, exactly once per group.
    if (fate == CrossFate::kCommitted) {
      for (const std::string& participant : first.participants) {
        int count = 0;
        for (const PrepareSite& site : sites) {
          if (site.group == participant) ++count;
        }
        if (count != 1) {
          report.Violation("atomicity: committed cross txn " +
                           TxnIdToString(id) + " has " +
                           std::to_string(count) + " prepares in group '" +
                           participant + "' (expected 1)");
        }
      }
    }
    // Prepares only in declared participant groups.
    for (const PrepareSite& site : sites) {
      if (std::find(first.participants.begin(), first.participants.end(),
                    site.group) == first.participants.end()) {
        report.Violation("cross txn " + TxnIdToString(id) +
                         " prepared in non-participant group '" + site.group +
                         "'");
      }
    }
    // Decision consistency: outside the commit group every decide record
    // must carry the canonical decision (they are propagated copies, and
    // they are what each group's replicas apply). Inside the commit group
    // later conflicting decides are legal race artifacts — only the first
    // counts.
    for (const auto& [group, log] : logs) {
      if (group == commit_group) continue;
      for (const auto& [pos, entry] : log) {
        for (const wal::TxnRecord& t : entry.txns) {
          if (t.kind != wal::RecordKind::kDecide || t.id != id) continue;
          const CrossFate recorded = t.commit_decision
                                         ? CrossFate::kCommitted
                                         : CrossFate::kAborted;
          if (fate == CrossFate::kUndecided || recorded != fate) {
            report.Violation(
                "atomicity: decide for cross txn " + TxnIdToString(id) +
                " in group '" + group + "' at position " +
                std::to_string(pos) +
                " disagrees with the commit group's canonical decision");
          }
        }
      }
    }
  }

  // ---- Shared commit order: committed prepares must appear in every
  // group's log in increasing (cross_ts, id) order (D8 — this is what
  // makes the union of the per-group serial orders acyclic).
  for (const auto& [group, log] : logs) {
    uint64_t last_ts = 0;
    TxnId last_id = 0;
    bool have_last = false;
    for (const auto& [pos, entry] : log) {
      for (const wal::TxnRecord& t : entry.txns) {
        if (t.kind != wal::RecordKind::kPrepare) continue;
        auto fate = canonical.find(t.id);
        if (fate == canonical.end() || fate->second != CrossFate::kCommitted) {
          continue;  // aborted/undecided prepares may be out of order
        }
        if (have_last && (t.cross_ts < last_ts ||
                          (t.cross_ts == last_ts && t.id < last_id))) {
          report.Violation("commit order: committed cross txn " +
                           TxnIdToString(t.id) + " at position " +
                           std::to_string(pos) + " of group '" + group +
                           "' is ordered before an older committed prepare");
        }
        last_ts = t.cross_ts;
        last_id = t.id;
        have_last = true;
      }
    }
  }

  // ---- Client-visible fates of cross transactions.
  for (const ClientOutcome& o : outcomes) {
    if (o.groups.empty()) continue;
    auto fate = canonical.find(o.id);
    const CrossFate f =
        fate == canonical.end() ? CrossFate::kUndecided : fate->second;
    if (o.unknown) continue;
    if (o.committed && f != CrossFate::kCommitted) {
      report.Violation("(L1) committed cross txn " + TxnIdToString(o.id) +
                       " is not canonically committed in the log");
    }
    if (!o.committed && f == CrossFate::kCommitted) {
      report.Violation("(L1) aborted cross txn " + TxnIdToString(o.id) +
                       " is canonically committed in the log");
    }
  }

  // ---- Per-group checks with canonical decisions, then the global MVSG.
  for (const auto& [group, log] : logs) {
    std::vector<ClientOutcome> group_outcomes;
    for (const ClientOutcome& o : outcomes) {
      if (o.groups.empty() && o.group == group) group_outcomes.push_back(o);
    }
    CheckReport group_report;
    if (!group_outcomes.empty()) {
      CheckOutcomes(log, group_outcomes, &group_report);
    }
    CheckOneCopySerializability(log, canonical, &group_report);
    for (std::string& v : group_report.violations) {
      report.Violation("[" + group + "] " + std::move(v));
    }
  }
  std::vector<NamespacedLog> namespaced;
  namespaced.reserve(logs.size());
  for (const auto& [group, log] : logs) {
    namespaced.push_back(NamespacedLog{&log, group});
  }
  CheckMvsgOver(namespaced, canonical, &report);
  return report;
}

}  // namespace paxoscp::core
