#include "core/checker.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace paxoscp::core {

void CheckReport::Violation(std::string message) {
  ok = false;
  violations.push_back(std::move(message));
}

std::string CheckReport::ToString() const {
  std::ostringstream os;
  os << (ok ? "OK" : "VIOLATIONS") << " (log through " << max_position << ", "
     << committed_txns_in_log << " committed txns, " << combined_entries
     << " combined entries)";
  for (const std::string& v : violations) os << "\n  - " << v;
  return os.str();
}

CheckReport Checker::CheckReplication(
    const std::string& group, std::map<LogPos, wal::LogEntry>* global_log) {
  CheckReport report;
  global_log->clear();
  std::map<LogPos, uint64_t> fingerprints;
  for (DcId dc = 0; dc < cluster_->num_datacenters(); ++dc) {
    const std::map<LogPos, wal::LogEntry> entries =
        cluster_->service(dc)->GroupLog(group)->AllEntries();
    for (const auto& [pos, entry] : entries) {
      const uint64_t fp = entry.Fingerprint();
      auto it = fingerprints.find(pos);
      if (it == fingerprints.end()) {
        fingerprints.emplace(pos, fp);
        global_log->emplace(pos, entry);
      } else if (it->second != fp) {
        report.Violation("(R1) datacenter " + std::to_string(dc) +
                         " disagrees on log position " + std::to_string(pos));
      }
    }
  }
  // Contiguity: positions are contested strictly in order (commit position
  // = read position + 1; promotion only advances past decided positions),
  // so the merged log must have no gaps.
  LogPos expected = 1;
  for (const auto& [pos, entry] : *global_log) {
    if (pos != expected) {
      report.Violation("log gap: expected position " +
                       std::to_string(expected) + ", found " +
                       std::to_string(pos));
    }
    expected = pos + 1;
  }
  report.max_position =
      global_log->empty() ? 0 : global_log->rbegin()->first;
  for (const auto& [pos, entry] : *global_log) {
    report.committed_txns_in_log += static_cast<int>(entry.txns.size());
    if (entry.txns.size() > 1) {
      report.combined_entries++;
      report.combined_txns += static_cast<int>(entry.txns.size()) - 1;
    }
  }
  return report;
}

void Checker::CheckOutcomes(const std::map<LogPos, wal::LogEntry>& log,
                            const std::vector<ClientOutcome>& outcomes,
                            CheckReport* report) {
  // Index: txn id -> position(s) in the log.
  std::map<TxnId, std::vector<LogPos>> where;
  for (const auto& [pos, entry] : log) {
    for (const wal::TxnRecord& t : entry.txns) where[t.id].push_back(pos);
  }
  std::set<TxnId> known;
  for (const ClientOutcome& o : outcomes) {
    known.insert(o.id);
    const auto it = where.find(o.id);
    const int appearances =
        it == where.end() ? 0 : static_cast<int>(it->second.size());
    if (appearances > 1) {
      report->Violation("(L2) txn " + TxnIdToString(o.id) + " appears in " +
                        std::to_string(appearances) + " log positions");
    }
    if (o.unknown) continue;  // crashed client: either outcome is legal
    if (o.read_only) {
      if (appearances != 0) {
        report->Violation("read-only txn " + TxnIdToString(o.id) +
                          " appears in the log");
      }
      continue;
    }
    if (o.committed && appearances == 0) {
      report->Violation("(L1) committed txn " + TxnIdToString(o.id) +
                        " missing from the log");
    }
    if (!o.committed && appearances != 0) {
      report->Violation("(L1) aborted txn " + TxnIdToString(o.id) +
                        " present in the log at position " +
                        std::to_string(it->second.front()));
    }
    if (o.committed && appearances == 1 && o.position != 0 &&
        it->second.front() != o.position) {
      report->Violation("txn " + TxnIdToString(o.id) +
                        " reported position " + std::to_string(o.position) +
                        " but is at " + std::to_string(it->second.front()));
    }
  }
  // Transactions in the log but never reported by any client are fine only
  // if the harness passed an incomplete outcome list; flag duplicates
  // within single entries regardless.
  for (const auto& [pos, entry] : log) {
    std::set<TxnId> in_entry;
    for (const wal::TxnRecord& t : entry.txns) {
      if (!in_entry.insert(t.id).second) {
        report->Violation("txn " + TxnIdToString(t.id) +
                          " duplicated within log position " +
                          std::to_string(pos));
      }
    }
  }
}

namespace {

/// Replay state per item: who wrote it last (serially) and where.
struct LastWrite {
  TxnId writer = 0;
  LogPos pos = 0;
};

}  // namespace

void Checker::CheckOneCopySerializability(
    const std::map<LogPos, wal::LogEntry>& log, CheckReport* report) {
  // Serial order S: entries by position, transactions within an entry in
  // list order. For each transaction, every read must have observed the
  // latest write to that item preceding the transaction in S — that is the
  // reads-x-from equivalence of Definition 1.
  std::map<wal::ItemId, LastWrite> state;
  /// Last position (in serial order so far) writing any attribute of a
  /// row — validates whole-row predicate reads (Txn::ReadRow).
  std::map<std::string, LogPos> row_last_write;
  for (const auto& [pos, entry] : log) {
    for (const wal::TxnRecord& t : entry.txns) {
      for (const wal::ReadRecord& r : t.reads) {
        if (r.item.attribute == wal::kWholeRowAttribute) {
          // Whole-row predicate read (phantom protection): the reader
          // observed the row's attribute set at its read position, so no
          // write to the row may precede it in serial order beyond that
          // snapshot — otherwise an attribute it saw as absent may have
          // been created behind its back.
          auto rw = row_last_write.find(r.item.row);
          if (rw != row_last_write.end() && rw->second > t.read_pos) {
            report->Violation(
                "(L3) txn " + TxnIdToString(t.id) + " at position " +
                std::to_string(pos) + " read whole row '" + r.item.row +
                "' at snapshot " + std::to_string(t.read_pos) +
                " but the row was written at position " +
                std::to_string(rw->second));
          }
          continue;
        }
        LastWrite expected;  // initial state: writer 0 at position 0
        auto it = state.find(r.item);
        if (it != state.end()) expected = it->second;
        if (r.observed_writer != expected.writer ||
            r.observed_pos != expected.pos) {
          report->Violation(
              "(L3) txn " + TxnIdToString(t.id) + " at position " +
              std::to_string(pos) + " read " + r.item.ToString() +
              " from txn " + TxnIdToString(r.observed_writer) + "@" +
              std::to_string(r.observed_pos) + " but serial order expects " +
              TxnIdToString(expected.writer) + "@" +
              std::to_string(expected.pos));
        }
      }
      for (const wal::WriteRecord& w : t.writes) {
        state[w.item] = LastWrite{t.id, pos};
        row_last_write[w.item.row] = pos;
      }
    }
  }
}

void Checker::CheckSerializationGraph(
    const std::map<LogPos, wal::LogEntry>& log, CheckReport* report) {
  // Build the MVSG over committed transactions. Version order per item is
  // the serial apply order. Edges:
  //   WW: each writer -> the next writer of the same item;
  //   WR: writer -> each reader of its version;
  //   RW: each reader of a version -> the writer of the next version.
  // One-copy serializability of the log implies this graph, with nodes in
  // log order, is acyclic.
  struct VersionInfo {
    TxnId writer;
    std::vector<TxnId> readers;
  };
  std::map<wal::ItemId, std::vector<VersionInfo>> versions;
  std::vector<TxnId> order;
  std::map<TxnId, size_t> index;

  for (const auto& [pos, entry] : log) {
    for (const wal::TxnRecord& t : entry.txns) {
      if (index.count(t.id) > 0) continue;  // duplicate flagged elsewhere
      index[t.id] = order.size();
      order.push_back(t.id);
      for (const wal::ReadRecord& r : t.reads) {
        auto& chain = versions[r.item];
        if (r.observed_writer == 0) {
          // Initial version: model as a virtual version 0 at the front.
          if (chain.empty() || chain.front().writer != 0) {
            chain.insert(chain.begin(), VersionInfo{0, {}});
          }
          chain.front().readers.push_back(t.id);
        } else {
          bool found = false;
          for (VersionInfo& v : chain) {
            if (v.writer == r.observed_writer) {
              v.readers.push_back(t.id);
              found = true;
              break;
            }
          }
          if (!found) {
            report->Violation("MVSG: txn " + TxnIdToString(t.id) +
                              " reads version of " + r.item.ToString() +
                              " written by unknown txn " +
                              TxnIdToString(r.observed_writer));
          }
        }
      }
      for (const wal::WriteRecord& w : t.writes) {
        versions[w.item].push_back(VersionInfo{t.id, {}});
      }
    }
  }

  // Adjacency over txn indices (0 = virtual initial txn gets no node).
  const size_t n = order.size();
  std::vector<std::vector<size_t>> adj(n);
  auto add_edge = [&](TxnId from, TxnId to) {
    if (from == 0 || to == 0 || from == to) return;
    adj[index[from]].push_back(index[to]);
  };
  for (const auto& [item, chain] : versions) {
    for (size_t i = 0; i < chain.size(); ++i) {
      if (i + 1 < chain.size()) {
        add_edge(chain[i].writer, chain[i + 1].writer);  // WW
        for (TxnId reader : chain[i].readers) {
          add_edge(reader, chain[i + 1].writer);  // RW
        }
      }
      for (TxnId reader : chain[i].readers) {
        add_edge(chain[i].writer, reader);  // WR
      }
    }
  }

  // Cycle detection via iterative DFS with colors.
  enum Color : uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color(n, kWhite);
  for (size_t start = 0; start < n; ++start) {
    if (color[start] != kWhite) continue;
    std::vector<std::pair<size_t, size_t>> stack{{start, 0}};
    color[start] = kGray;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      if (next < adj[node].size()) {
        const size_t child = adj[node][next++];
        if (color[child] == kGray) {
          report->Violation("MVSG cycle involving txn " +
                            TxnIdToString(order[child]));
          color[child] = kBlack;  // report once
        } else if (color[child] == kWhite) {
          color[child] = kGray;
          stack.emplace_back(child, 0);
        }
      } else {
        color[node] = kBlack;
        stack.pop_back();
      }
    }
  }
}

CheckReport Checker::CheckAll(const std::string& group,
                              const std::vector<ClientOutcome>& outcomes) {
  std::map<LogPos, wal::LogEntry> log;
  CheckReport report = CheckReplication(group, &log);
  if (!outcomes.empty()) CheckOutcomes(log, outcomes, &report);
  CheckOneCopySerializability(log, &report);
  CheckSerializationGraph(log, &report);
  return report;
}

}  // namespace paxoscp::core
