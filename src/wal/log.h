// Per-datacenter replicated write-ahead log, stored inside the local
// multi-version key-value store (as Megastore stores its log in Bigtable).
//
// The log provides:
//   * SetEntry / GetEntry — decided values per position, idempotent, with a
//     local (R1) guard: conflicting re-writes of a position are rejected as
//     Corruption, which would indicate a Paxos safety violation.
//   * ApplyThrough — the "background process or as needed to serve a read
//     request" application of committed writes to data rows (paper §3.2),
//     stamping each write with its commit log position and recording
//     per-attribute provenance so reads can report which transaction's
//     write they observed.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "kvstore/store.h"
#include "wal/log_entry.h"

namespace paxoscp::wal {

/// Value + provenance returned by snapshot reads. A read of a never-written
/// item yields the initial state: empty value, writer 0, position 0.
struct ItemRead {
  std::string value;
  TxnId writer = 0;
  LogPos written_pos = 0;
  bool found = false;  // false => initial state
};

class WriteAheadLog {
 public:
  WriteAheadLog(kvstore::MultiVersionStore* store, std::string group);

  const std::string& group() const { return group_; }

  /// Records the decided entry for `pos`. Idempotent; returns Corruption if
  /// a different value was already decided for this position (R1 violation).
  Status SetEntry(LogPos pos, const LogEntry& entry);

  /// Reads the decided entry at `pos`; NotFound if this replica has not
  /// learned it yet.
  Result<LogEntry> GetEntry(LogPos pos) const;

  bool HasEntry(LogPos pos) const;

  /// Highest position this replica knows to be decided (0 = none). This is
  /// the "read position" handed to new transactions (paper step 1).
  LogPos MaxDecided() const;

  /// Highest position whose writes have been applied to the data rows.
  LogPos AppliedThrough() const;

  /// Applies decided entries (AppliedThrough, target] to the data rows.
  /// Returns FailedPrecondition if this replica has a gap — `first_missing`
  /// (when non-null) receives the first missing position, which the caller
  /// (TransactionService) must learn via Paxos before retrying.
  Status ApplyThrough(LogPos target, LogPos* first_missing = nullptr);

  /// Snapshot read of one item at `read_pos` (requires ApplyThrough has
  /// reached read_pos; the TransactionService guarantees this).
  ItemRead ReadItem(const ItemId& item, LogPos read_pos) const;

  /// Snapshot read of every value attribute of `row` at `read_pos`, with
  /// per-attribute provenance decoded from the shadow attributes (which
  /// are not returned). A missing row yields an empty vector.
  std::vector<std::pair<std::string, ItemRead>> ReadRow(
      const std::string& row, LogPos read_pos) const;

  /// Loads initial data rows at position 0 (the pre-transaction state used
  /// by workload setup). Writes value attributes only; provenance is 0/0.
  Status LoadInitialRow(const std::string& row,
                        const kvstore::AttributeMap& attributes);

  /// All decided entries, for invariant checking.
  std::map<LogPos, LogEntry> AllEntries() const;

  /// Key of a data row in the underlying store (exposed for tests).
  std::string DataKey(const std::string& row) const;

 private:
  std::string EntryKey(LogPos pos) const;
  std::string MetaKey() const;
  std::string AppliedKey() const;

  void BumpMaxDecided(LogPos pos);

  kvstore::MultiVersionStore* store_;
  std::string group_;
};

/// Zero-padded decimal rendering of a log position so lexicographic key
/// order matches numeric order in prefix scans.
std::string PadPos(LogPos pos);

}  // namespace paxoscp::wal
