// Per-datacenter replicated write-ahead log, stored inside the local
// multi-version key-value store (as Megastore stores its log in Bigtable).
//
// The log provides:
//   * SetEntry / GetEntry — decided values per position, idempotent, with a
//     local (R1) guard: conflicting re-writes of a position are rejected as
//     Corruption, which would indicate a Paxos safety violation.
//   * ApplyThrough — the "background process or as needed to serve a read
//     request" application of committed writes to data rows (paper §3.2),
//     stamping each write with its commit log position and recording
//     per-attribute provenance so reads can report which transaction's
//     write they observed.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "kvstore/store.h"
#include "wal/log_entry.h"

namespace paxoscp::wal {

/// Value + provenance returned by snapshot reads. A read of a never-written
/// item yields the initial state: empty value, writer 0, position 0.
struct ItemRead {
  std::string value;
  TxnId writer = 0;
  LogPos written_pos = 0;
  bool found = false;  // false => initial state
};

/// A cross-group transaction's commit/abort decision as recorded in one
/// group's log (design note D8). `pos` is the lowest-position decide record
/// this replica has seen; in the transaction's commit group the lowest
/// decide in the log is the canonical outcome.
struct CrossDecision {
  bool known = false;
  bool commit = false;
  LogPos pos = 0;
};

/// A prepared-but-undecided cross-group transaction in this replica's log:
/// its writes are held back from the data rows (and the read position is
/// held below `pos`) until a decide record is learned.
struct PendingPrepare {
  LogPos pos = 0;
  TxnId txn = 0;
};

/// Prepare-record metadata indexed by transaction id (recovery reads this
/// to find the participant list and the commit group).
struct PrepareInfo {
  bool known = false;
  LogPos pos = 0;
  uint64_t cross_ts = 0;
  std::vector<std::string> participants;
};

class WriteAheadLog {
 public:
  WriteAheadLog(kvstore::MultiVersionStore* store, std::string group);

  const std::string& group() const { return group_; }

  /// Records the decided entry for `pos`. Idempotent; returns Corruption if
  /// a different value was already decided for this position (R1 violation).
  Status SetEntry(LogPos pos, const LogEntry& entry);

  /// Reads the decided entry at `pos`; NotFound if this replica has not
  /// learned it yet.
  Result<LogEntry> GetEntry(LogPos pos) const;

  bool HasEntry(LogPos pos) const;

  /// Highest position this replica knows to be decided (0 = none). This is
  /// the "read position" handed to new transactions (paper step 1).
  LogPos MaxDecided() const;

  /// Read position safe to hand to a new transaction: MaxDecided(), held
  /// strictly below the oldest prepared-but-undecided cross-group prepare
  /// (D8: nothing may read at or past a prepare until its fate is known).
  /// Identical to MaxDecided() when no cross-group prepare is pending.
  LogPos SafeReadPos() const;

  /// Highest L such that every position 1..L has a local entry (advances
  /// and persists a marker; cross-group begins use this so the ordering
  /// marker provably covers the whole prefix a transaction reads under).
  LogPos ContiguousFrontier();

  /// Prepared-but-undecided cross-group transactions known to this
  /// replica, ascending by prepare position.
  std::vector<PendingPrepare> PendingPrepares() const;

  /// Lowest-position decide record seen for cross transaction `id`.
  CrossDecision DecisionFor(TxnId id) const;

  /// Prepare-record metadata for cross transaction `id`, if this replica
  /// has its prepare entry.
  PrepareInfo PrepareFor(TxnId id) const;

  /// Max (cross_ts, id) over every cross-group prepare this replica has
  /// seen — the commit-order watermark new cross transactions must exceed.
  void MaxCrossOrder(uint64_t* ts, TxnId* id) const;

  /// Highest position whose writes have been applied to the data rows.
  LogPos AppliedThrough() const;

  /// Applies decided entries (AppliedThrough, target] to the data rows.
  /// Returns FailedPrecondition if this replica has a gap — `first_missing`
  /// (when non-null) receives the first missing position, which the caller
  /// (TransactionService) must learn via Paxos before retrying.
  ///
  /// D8: an entry containing a prepared-but-undecided cross-group record
  /// holds the applied watermark at the position before it — its writes
  /// take effect at this position iff the canonical decision is commit,
  /// so nothing at or beyond it may be applied first. In that case the
  /// status is FailedPrecondition with `first_missing` = the stalled
  /// position and `undecided` (when non-null) = the waiting transaction;
  /// the caller resolves it by learning later entries (which carry the
  /// decide record) rather than the stalled position itself.
  Status ApplyThrough(LogPos target, LogPos* first_missing = nullptr,
                      TxnId* undecided = nullptr);

  /// Snapshot read of one item at `read_pos` (requires ApplyThrough has
  /// reached read_pos; the TransactionService guarantees this).
  ItemRead ReadItem(const ItemId& item, LogPos read_pos) const;

  /// Snapshot read of every value attribute of `row` at `read_pos`, with
  /// per-attribute provenance decoded from the shadow attributes (which
  /// are not returned). A missing row yields an empty vector.
  std::vector<std::pair<std::string, ItemRead>> ReadRow(
      const std::string& row, LogPos read_pos) const;

  /// Loads initial data rows at position 0 (the pre-transaction state used
  /// by workload setup). Writes value attributes only; provenance is 0/0.
  Status LoadInitialRow(const std::string& row,
                        const kvstore::AttributeMap& attributes);

  /// All decided entries, for invariant checking.
  std::map<LogPos, LogEntry> AllEntries() const;

  /// Key of a data row in the underlying store (exposed for tests).
  std::string DataKey(const std::string& row) const;

 private:
  std::string EntryKey(LogPos pos) const;
  std::string MetaKey() const;
  std::string AppliedKey() const;
  std::string PrepareKey(TxnId id) const;
  /// Single row holding the whole pending set: one attribute per
  /// prepared-but-undecided transaction, named "<padded pos>/<id>" so the
  /// map's attribute order is prepare-position order. One key per group
  /// keeps SafeReadPos O(1) in store lookups — it runs on EVERY begin.
  std::string PendingKey() const;
  std::string DecisionKey(TxnId id) const;
  std::string CrossMaxKey() const;
  std::string FrontierKey() const;

  void BumpMaxDecided(LogPos pos);

  /// Maintains the cross-group side tables (prepare index, pending set,
  /// decision markers, commit-order watermark) for a newly stored entry.
  void NoteCrossRecords(LogPos pos, const LogEntry& entry);

  /// Removes `id` from the pending set of prepare position `pos` (no-op if
  /// absent).
  void ClearPending(LogPos pos, TxnId id);

  /// True when every position in (from, to) has a local entry — makes a
  /// decision marker at `to` trustworthy for applying a prepare at `from`
  /// (no lower decide can be hiding in an unseen entry).
  bool HasAllBetween(LogPos from, LogPos to) const;

  kvstore::MultiVersionStore* store_;
  std::string group_;
};

/// Zero-padded decimal rendering of a log position so lexicographic key
/// order matches numeric order in prefix scans.
std::string PadPos(LogPos pos);

}  // namespace paxoscp::wal
