// Write-ahead-log data model (paper §3.2).
//
// Each transaction group has one log; each log position holds one LogEntry;
// a LogEntry is an *ordered list* of transactions (a single transaction
// under basic Paxos; possibly several under Paxos-CP combination). The
// entry is the "value" that a Paxos instance decides for that position.
//
// TxnRecords carry full read provenance (which transaction wrote the version
// each read observed) so that the serializability checker can validate the
// reads-from relation of the final history.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace paxoscp::wal {

/// A data item inside a transaction group: a (row, attribute) pair.
/// The paper's evaluation uses a single row whose attributes are the items.
struct ItemId {
  std::string row;
  std::string attribute;

  bool operator==(const ItemId&) const = default;
  bool operator<(const ItemId& other) const {
    if (row != other.row) return row < other.row;
    return attribute < other.attribute;
  }
  std::string ToString() const { return row + "." + attribute; }
};

/// Reserved attribute name marking a whole-row predicate read in a read
/// set: a transaction that read the entire row (Txn::ReadRow) observed
/// which attributes exist, so its read record must conflict with *any*
/// write to the row — including writes creating attributes it saw as
/// absent (phantom protection). Never used as a real attribute name and
/// never appears in write sets.
inline constexpr char kWholeRowAttribute[] = "*";

/// True for attribute names applications may not use (currently only the
/// whole-row marker). Every entry point accepting user attributes —
/// Txn::Read/Write/WriteRow, Cluster::LoadInitialRow — must reject these
/// with ReservedAttributeError() so the marker never enters data rows.
inline bool IsReservedAttribute(std::string_view attribute) {
  return attribute == kWholeRowAttribute;
}

inline Status ReservedAttributeError() {
  return Status::InvalidArgument(std::string("attribute name '") +
                                 kWholeRowAttribute +
                                 "' is reserved for whole-row reads");
}

/// One read performed by a transaction, with observed provenance:
/// the id of the transaction whose write produced the value we saw and the
/// log position of that write (0/0 for the initial, unwritten state).
struct ReadRecord {
  ItemId item;
  TxnId observed_writer = 0;
  LogPos observed_pos = 0;

  bool operator==(const ReadRecord&) const = default;
};

/// One buffered write of a transaction.
struct WriteRecord {
  ItemId item;
  std::string value;

  bool operator==(const WriteRecord&) const = default;
};

/// What a TxnRecord in the log *is* (design note D8, cross-group commit).
/// Ordinary single-group transactions are kData records — the only kind
/// that existed before cross-group transactions, and the only kind whose
/// entries use the original (v1) wire encoding, so pre-existing logs and
/// fingerprints are unchanged.
enum class RecordKind : uint8_t {
  kData = 0,     // single-group commit: writes take effect at this position
  kPrepare = 1,  // 2PC phase 1 of a cross-group txn: reads/writes of THIS
                 // group, effectful only once a commit decision is decided
  kDecide = 2,   // 2PC phase 2: the commit/abort decision, no reads/writes
};

/// A committed (or commit-attempting) transaction's payload: everything
/// needed to replicate it and to decide conflicts against it.
struct TxnRecord {
  TxnId id = 0;
  DcId origin_dc = kNoDc;
  /// The log position whose snapshot all reads observed (paper (A2)).
  LogPos read_pos = 0;
  std::vector<ReadRecord> reads;
  std::vector<WriteRecord> writes;

  RecordKind kind = RecordKind::kData;
  /// kPrepare only: global commit-ordering timestamp. Committed cross-group
  /// prepares must appear in every group's log in increasing (cross_ts, id)
  /// order — that shared total order is what makes the union of the
  /// per-group serial orders acyclic (D8).
  uint64_t cross_ts = 0;
  /// kPrepare only: every participant group, sorted; front() is the commit
  /// group, whose first (lowest-position) decide record is the canonical
  /// transaction outcome.
  std::vector<std::string> participants;
  /// kDecide only: true = commit, false = abort.
  bool commit_decision = false;

  bool operator==(const TxnRecord&) const = default;

  bool IsCross() const { return kind != RecordKind::kData; }

  /// True if this transaction read item `it`.
  bool Reads(const ItemId& it) const;
  /// True if this transaction writes an item covered by `it`. `it` is a
  /// read-set item: a whole-row predicate read (attribute ==
  /// kWholeRowAttribute) covers every write to that row.
  bool Writes(const ItemId& it) const;
};

/// The value decided for one log position: an ordered list of transactions.
/// Apply order is list order; later writes of the same item win.
struct LogEntry {
  std::vector<TxnRecord> txns;
  /// Datacenter of the client that proposed the winning value; it is the
  /// leader for the next log position (paper §4.1, "Paxos Optimizations").
  DcId winner_dc = kNoDc;

  bool operator==(const LogEntry&) const = default;

  /// Serializes to a compact binary string (varint-based).
  std::string Encode() const;
  /// Parses an encoded entry; Corruption on malformed input.
  static Result<LogEntry> Decode(std::string_view data);

  /// Content fingerprint; two entries are the same Paxos value iff their
  /// fingerprints match (used for vote counting and R1 checks).
  uint64_t Fingerprint() const;

  bool ContainsTxn(TxnId id) const;
  /// True if a record with this id AND kind is present. Proposers must use
  /// this (not ContainsTxn) to decide whether *their* record landed: a
  /// recovery decide carries the same txn id as the prepare it resolves,
  /// so an id-only match would mistake a forced abort for a landed prepare.
  bool ContainsRecord(TxnId id, RecordKind kind) const;
  /// True if transaction `t` reads any item written by any transaction in
  /// this entry (the paper's promotion conflict test).
  bool WritesItemReadBy(const TxnRecord& t) const;

  /// True if any record is a cross-group prepare/decide (selects the v2
  /// wire encoding; plain entries keep the original byte layout).
  bool HasCrossRecords() const;

  /// First decide record for `id` in list order, nullptr if none.
  const TxnRecord* FindDecide(TxnId id) const;
  /// First prepare record for `id` in list order, nullptr if none.
  const TxnRecord* FindPrepare(TxnId id) const;

  std::string ToString() const;
};

}  // namespace paxoscp::wal
