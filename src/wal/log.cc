#include "wal/log.h"

#include <cassert>
#include <charconv>
#include <cstdlib>

#include "common/coding.h"
#include "sim/race_hooks.h"

namespace paxoscp::wal {

namespace {

constexpr char kEntryAttr[] = "entry";
constexpr char kMaxDecidedAttr[] = "max_decided";
constexpr char kAppliedAttr[] = "pos";
/// Prefix for shadow provenance attributes in data rows.
constexpr char kProvenancePrefix[] = "#w/";

std::string EncodeProvenance(TxnId writer, LogPos pos) {
  std::string out;
  PutFixed64(&out, writer);
  PutVarint64(&out, pos);
  return out;
}

bool DecodeProvenance(std::string_view in, TxnId* writer, LogPos* pos) {
  return GetFixed64(&in, writer) && GetVarint64(&in, pos) && in.empty();
}

/// Parses a decimal LogPos straight from a borrowed view (no temporary
/// std::string as std::stoull would need).
LogPos ParsePos(std::string_view s) {
  LogPos pos = 0;
  std::from_chars(s.data(), s.data() + s.size(), pos);
  return pos;
}

/// Zero-pad width shared by PadPos and JoinKey — the two must agree or
/// prefix scans stop matching the keys writes produce.
constexpr size_t kPosPadWidth = 12;

/// Builds "<prefix><group>/<padded pos>" with one allocation.
std::string JoinKey(std::string_view prefix, std::string_view group,
                    LogPos pos) {
  const std::string digits = std::to_string(pos);
  const size_t pad =
      digits.size() >= kPosPadWidth ? 0 : kPosPadWidth - digits.size();
  std::string key;
  key.reserve(prefix.size() + group.size() + 1 + pad + digits.size());
  key.append(prefix);
  key.append(group);
  key.push_back('/');
  key.append(pad, '0');
  key.append(digits);
  return key;
}

}  // namespace

std::string PadPos(LogPos pos) {
  const std::string digits = std::to_string(pos);
  const size_t pad =
      digits.size() >= kPosPadWidth ? 0 : kPosPadWidth - digits.size();
  return std::string(pad, '0') + digits;
}

WriteAheadLog::WriteAheadLog(kvstore::MultiVersionStore* store,
                             std::string group)
    : store_(store), group_(std::move(group)) {}

std::string WriteAheadLog::EntryKey(LogPos pos) const {
  return JoinKey("!log/", group_, pos);
}
std::string WriteAheadLog::MetaKey() const { return "!logmeta/" + group_; }
std::string WriteAheadLog::AppliedKey() const { return "!applied/" + group_; }
std::string WriteAheadLog::PrepareKey(TxnId id) const {
  return "!xprep/" + group_ + "/" + std::to_string(id);
}
std::string WriteAheadLog::PendingKey() const { return "!xpend/" + group_; }
std::string WriteAheadLog::DecisionKey(TxnId id) const {
  return "!xdec/" + group_ + "/" + std::to_string(id);
}
std::string WriteAheadLog::CrossMaxKey() const { return "!xmax/" + group_; }
std::string WriteAheadLog::FrontierKey() const { return "!xfront/" + group_; }
std::string WriteAheadLog::DataKey(const std::string& row) const {
  std::string key;
  key.reserve(2 + group_.size() + 1 + row.size());
  key.append("d/");
  key.append(group_);
  key.push_back('/');
  key.append(row);
  return key;
}

Status WriteAheadLog::SetEntry(LogPos pos, const LogEntry& entry) {
  assert(pos >= 1);
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kWrite,
                      {"wal", store_->instance_id(), group_, "entry", pos});
  }
  const std::string encoded = entry.Encode();
  Result<kvstore::AttrView> existing =
      store_->ReadAttrView(EntryKey(pos), kEntryAttr);
  if (existing.ok()) {
    if (existing->value != encoded) {
      return Status::Corruption(
          "R1 violation: conflicting values decided for " + group_ + "[" +
          std::to_string(pos) + "]");
    }
    return Status::OK();  // idempotent re-apply
  }
  PAXOSCP_RETURN_IF_ERROR(
      store_->Write(EntryKey(pos), {{kEntryAttr, encoded}}));
  BumpMaxDecided(pos);
  if (entry.HasCrossRecords()) NoteCrossRecords(pos, entry);
  return Status::OK();
}

void WriteAheadLog::NoteCrossRecords(LogPos pos, const LogEntry& entry) {
  for (const TxnRecord& t : entry.txns) {
    if (t.kind == RecordKind::kPrepare) {
      if (sim::race::Active()) {
        sim::race::Record(sim::race::AccessKind::kWrite,
                          {"wal", store_->instance_id(), group_, "prepare", t.id});
      }
      std::string groups_encoded;
      for (const std::string& g : t.participants) {
        PutLengthPrefixed(&groups_encoded, g);
      }
      (void)store_->Write(PrepareKey(t.id),
                          {{"pos", std::to_string(pos)},
                           {"ts", std::to_string(t.cross_ts)},
                           {"groups", std::move(groups_encoded)}});
      // Commit-order watermark: max (cross_ts, id) over all prepares seen.
      uint64_t max_ts = 0;
      TxnId max_id = 0;
      MaxCrossOrder(&max_ts, &max_id);
      if (t.cross_ts > max_ts || (t.cross_ts == max_ts && t.id > max_id)) {
        if (sim::race::Active()) {
          sim::race::Record(sim::race::AccessKind::kWrite,
                            {"wal", store_->instance_id(), group_, "crossmax"});
        }
        (void)store_->Write(CrossMaxKey(),
                            {{"ts", std::to_string(t.cross_ts)},
                             {"id", std::to_string(t.id)}});
      }
      // Pending until a decide is learned. Decides may be learned before
      // their prepare (out-of-order learning): then the prepare is born
      // decided and never enters the pending set.
      if (!DecisionFor(t.id).known) {
        if (sim::race::Active()) {
          sim::race::Record(sim::race::AccessKind::kWrite,
                            {"wal", store_->instance_id(), group_, "pending"});
        }
        Result<kvstore::RowVersion> row = store_->Read(PendingKey());
        kvstore::AttributeMap pending =
            row.ok() ? *row->attributes : kvstore::AttributeMap{};
        pending[PadPos(pos) + "/" + std::to_string(t.id)] = "1";
        (void)store_->Write(PendingKey(), std::move(pending));
      }
    } else if (t.kind == RecordKind::kDecide) {
      CrossDecision existing = DecisionFor(t.id);
      if (!existing.known || pos < existing.pos) {
        if (sim::race::Active()) {
          sim::race::Record(sim::race::AccessKind::kWrite,
                            {"wal", store_->instance_id(), group_, "decision", t.id});
        }
        (void)store_->Write(DecisionKey(t.id),
                            {{"d", t.commit_decision ? "c" : "a"},
                             {"pos", std::to_string(pos)}});
      }
      PrepareInfo prep = PrepareFor(t.id);
      if (prep.known) ClearPending(prep.pos, t.id);
    }
  }
  // A prepare arriving after its decide (handled above via the born-decided
  // branch) leaves no pending entry; a prepare in THIS entry whose decide
  // was also in this entry cannot happen (decides are proposed only after
  // the prepare's position is decided).
}

void WriteAheadLog::ClearPending(LogPos pos, TxnId id) {
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kWrite,
                      {"wal", store_->instance_id(), group_, "pending"});
  }
  Result<kvstore::RowVersion> row = store_->Read(PendingKey());
  if (!row.ok()) return;
  kvstore::AttributeMap pending = *row->attributes;
  if (pending.erase(PadPos(pos) + "/" + std::to_string(id)) == 0) return;
  (void)store_->Write(PendingKey(), std::move(pending));
}

std::vector<PendingPrepare> WriteAheadLog::PendingPrepares() const {
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kRead,
                      {"wal", store_->instance_id(), group_, "pending"});
  }
  std::vector<PendingPrepare> out;
  Result<kvstore::RowVersion> row = store_->Read(PendingKey());
  if (!row.ok()) return out;
  for (const auto& [name, unused] : *row->attributes) {
    (void)unused;
    const size_t slash = name.find('/');
    if (slash == std::string::npos) continue;
    PendingPrepare p;
    p.pos = ParsePos(std::string_view(name).substr(0, slash));
    p.txn = std::strtoull(name.c_str() + slash + 1, nullptr, 10);
    out.push_back(std::move(p));
  }
  return out;
}

CrossDecision WriteAheadLog::DecisionFor(TxnId id) const {
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kRead,
                      {"wal", store_->instance_id(), group_, "decision", id});
  }
  CrossDecision out;
  Result<kvstore::RowVersion> row = store_->Read(DecisionKey(id));
  if (!row.ok()) return out;
  const kvstore::AttributeMap& attrs = *row->attributes;
  auto d = attrs.find("d");
  auto pos = attrs.find("pos");
  if (d == attrs.end() || pos == attrs.end()) return out;
  out.known = true;
  out.commit = d->second == "c";
  out.pos = ParsePos(pos->second);
  return out;
}

PrepareInfo WriteAheadLog::PrepareFor(TxnId id) const {
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kRead,
                      {"wal", store_->instance_id(), group_, "prepare", id});
  }
  PrepareInfo out;
  Result<kvstore::RowVersion> row = store_->Read(PrepareKey(id));
  if (!row.ok()) return out;
  const kvstore::AttributeMap& attrs = *row->attributes;
  auto pos = attrs.find("pos");
  auto ts = attrs.find("ts");
  auto groups = attrs.find("groups");
  if (pos == attrs.end() || ts == attrs.end() || groups == attrs.end()) {
    return out;
  }
  out.known = true;
  out.pos = ParsePos(pos->second);
  out.cross_ts = std::strtoull(ts->second.c_str(), nullptr, 10);
  std::string_view encoded = groups->second;
  std::string_view g;
  while (GetLengthPrefixed(&encoded, &g)) out.participants.emplace_back(g);
  return out;
}

void WriteAheadLog::MaxCrossOrder(uint64_t* ts, TxnId* id) const {
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kRead,
                      {"wal", store_->instance_id(), group_, "crossmax"});
  }
  *ts = 0;
  *id = 0;
  Result<kvstore::RowVersion> row = store_->Read(CrossMaxKey());
  if (!row.ok()) return;
  const kvstore::AttributeMap& attrs = *row->attributes;
  auto ts_it = attrs.find("ts");
  auto id_it = attrs.find("id");
  if (ts_it != attrs.end()) {
    *ts = std::strtoull(ts_it->second.c_str(), nullptr, 10);
  }
  if (id_it != attrs.end()) {
    *id = std::strtoull(id_it->second.c_str(), nullptr, 10);
  }
}

LogPos WriteAheadLog::SafeReadPos() const {
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kRead,
                      {"wal", store_->instance_id(), group_, "pending"});
  }
  // One store read: the whole pending set lives in one row whose
  // attribute order is prepare-position order (this runs on every begin).
  LogPos pos = MaxDecided();
  Result<kvstore::RowVersion> row = store_->Read(PendingKey());
  if (!row.ok() || row->attributes->empty()) return pos;
  const std::string& oldest = row->attributes->begin()->first;
  const LogPos pending =
      ParsePos(std::string_view(oldest).substr(0, oldest.find('/')));
  if (pending > 0 && pending - 1 < pos) pos = pending - 1;
  return pos;
}

LogPos WriteAheadLog::ContiguousFrontier() {
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kRead,
                      {"wal", store_->instance_id(), group_, "frontier"});
  }
  LogPos frontier = 0;
  Result<kvstore::AttrView> stored =
      store_->ReadAttrView(FrontierKey(), "pos");
  if (stored.ok()) frontier = ParsePos(stored->value);
  const LogPos start = frontier;
  while (HasEntry(frontier + 1)) ++frontier;
  if (frontier != start) {
    if (sim::race::Active()) {
      sim::race::Record(sim::race::AccessKind::kWrite,
                        {"wal", store_->instance_id(), group_, "frontier"});
    }
    (void)store_->Write(FrontierKey(), {{"pos", std::to_string(frontier)}});
  }
  return frontier;
}

bool WriteAheadLog::HasAllBetween(LogPos from, LogPos to) const {
  for (LogPos q = from + 1; q < to; ++q) {
    if (!HasEntry(q)) return false;
  }
  return true;
}

Result<LogEntry> WriteAheadLog::GetEntry(LogPos pos) const {
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kRead,
                      {"wal", store_->instance_id(), group_, "entry", pos});
  }
  // Decode straight from the shared version — the encoded entry is never
  // copied out of the store.
  Result<kvstore::AttrView> encoded =
      store_->ReadAttrView(EntryKey(pos), kEntryAttr);
  if (!encoded.ok()) return encoded.status();
  return LogEntry::Decode(encoded->value);
}

bool WriteAheadLog::HasEntry(LogPos pos) const {
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kRead,
                      {"wal", store_->instance_id(), group_, "entry", pos});
  }
  return store_->ReadAttrView(EntryKey(pos), kEntryAttr).ok();
}

LogPos WriteAheadLog::MaxDecided() const {
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kRead,
                      {"wal", store_->instance_id(), group_, "meta"});
  }
  Result<kvstore::AttrView> v = store_->ReadAttrView(MetaKey(), kMaxDecidedAttr);
  if (!v.ok()) return 0;
  return ParsePos(v->value);
}

void WriteAheadLog::BumpMaxDecided(LogPos pos) {
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kWrite,
                      {"wal", store_->instance_id(), group_, "meta"});
  }
  // Retry loop around CheckAndWrite mirrors Algorithm 1's update pattern;
  // in the single-threaded simulation it succeeds on the first try.
  for (;;) {
    Result<std::string> cur = store_->ReadAttr(MetaKey(), kMaxDecidedAttr);
    const std::string cur_str = cur.ok() ? *cur : "";
    const LogPos cur_pos = cur.ok() ? ParsePos(*cur) : 0;
    if (pos <= cur_pos) return;
    Status s = store_->CheckAndWrite(MetaKey(), kMaxDecidedAttr, cur_str,
                                     {{kMaxDecidedAttr, std::to_string(pos)}});
    if (s.ok()) return;
  }
}

LogPos WriteAheadLog::AppliedThrough() const {
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kRead,
                      {"wal", store_->instance_id(), group_, "applied"});
  }
  Result<kvstore::AttrView> v = store_->ReadAttrView(AppliedKey(), kAppliedAttr);
  if (!v.ok()) return 0;
  return ParsePos(v->value);
}

Status WriteAheadLog::ApplyThrough(LogPos target, LogPos* first_missing,
                                   TxnId* undecided) {
  const LogPos applied = AppliedThrough();
  for (LogPos pos = applied + 1; pos <= target; ++pos) {
    Result<LogEntry> entry = GetEntry(pos);
    if (!entry.ok()) {
      if (first_missing != nullptr) *first_missing = pos;
      return Status::FailedPrecondition("missing log entry at position " +
                                        std::to_string(pos));
    }
    // D8: resolve every cross-group prepare in this entry before applying
    // anything at this position. A decision marker is trusted only when
    // every position between the prepare and the decide is locally present
    // (everything below `pos` is — the watermark guarantees it — so no
    // lower decide can be hiding in an unseen entry).
    std::map<TxnId, bool> decisions;  // prepare id -> commit?
    for (const TxnRecord& t : entry->txns) {
      if (t.kind != RecordKind::kPrepare) continue;
      const CrossDecision d = DecisionFor(t.id);
      if (!d.known || (d.pos > pos && !HasAllBetween(pos, d.pos))) {
        if (first_missing != nullptr) *first_missing = pos;
        if (undecided != nullptr) *undecided = t.id;
        return Status::FailedPrecondition(
            "undecided cross-group prepare at position " +
            std::to_string(pos));
      }
      decisions[t.id] = d.commit;
    }
    // Merge all writes of the (ordered) transaction list into per-row
    // updates; later transactions overwrite earlier ones, matching the
    // serial order within the entry. Decide records carry no writes;
    // abort-decided prepares are no-ops; commit-decided prepares take
    // effect here, at their prepare position.
    std::map<std::string, kvstore::AttributeMap> row_updates;
    for (const TxnRecord& t : entry->txns) {
      if (t.kind == RecordKind::kDecide) continue;
      if (t.kind == RecordKind::kPrepare && !decisions[t.id]) continue;
      for (const WriteRecord& w : t.writes) {
        auto& updates = row_updates[w.item.row];
        updates[w.item.attribute] = w.value;
        updates[kProvenancePrefix + w.item.attribute] =
            EncodeProvenance(t.id, pos);
      }
    }
    for (const auto& [row, updates] : row_updates) {
      if (sim::race::Active()) {
        sim::race::Record(sim::race::AccessKind::kWrite,
                          {"wal", store_->instance_id(), group_, "data", row});
      }
      Status s = store_->MergeWrite(DataKey(row), updates,
                                    static_cast<Timestamp>(pos));
      // Conflict => this position was already applied to this row by an
      // earlier, partially-completed pass; skipping keeps apply idempotent.
      if (!s.ok() && !s.IsConflict()) return s;
    }
    // Persist the watermark after each position so recovery never re-reads
    // more than one applied entry.
    if (sim::race::Active()) {
      sim::race::Record(sim::race::AccessKind::kWrite,
                        {"wal", store_->instance_id(), group_, "applied"});
    }
    PAXOSCP_RETURN_IF_ERROR(store_->Write(
        AppliedKey(), {{kAppliedAttr, std::to_string(pos)}}));
  }
  return Status::OK();
}

ItemRead WriteAheadLog::ReadItem(const ItemId& item, LogPos read_pos) const {
  ItemRead out;
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kRead,
                      {"wal", store_->instance_id(), group_, "data", item.row});
  }
  Result<kvstore::RowVersion> row =
      store_->Read(DataKey(item.row), static_cast<Timestamp>(read_pos));
  if (!row.ok()) return out;  // initial state
  const kvstore::AttributeMap& attrs = *row->attributes;
  auto it = attrs.find(item.attribute);
  if (it == attrs.end()) return out;
  out.value = it->second;
  out.found = true;
  auto prov = attrs.find(kProvenancePrefix + item.attribute);
  if (prov != attrs.end()) {
    DecodeProvenance(prov->second, &out.writer, &out.written_pos);
  }
  return out;
}

std::vector<std::pair<std::string, ItemRead>> WriteAheadLog::ReadRow(
    const std::string& row, LogPos read_pos) const {
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kRead,
                      {"wal", store_->instance_id(), group_, "data", row});
  }
  std::vector<std::pair<std::string, ItemRead>> out;
  Result<kvstore::RowVersion> version =
      store_->Read(DataKey(row), static_cast<Timestamp>(read_pos));
  if (!version.ok()) return out;  // initial state: no row
  const kvstore::AttributeMap& attrs = *version->attributes;
  constexpr std::string_view kPrefix = kProvenancePrefix;
  for (const auto& [attribute, value] : attrs) {
    if (std::string_view(attribute).substr(0, kPrefix.size()) == kPrefix) {
      continue;  // provenance shadow attribute
    }
    ItemRead read;
    read.value = value;
    read.found = true;
    auto prov = attrs.find(kProvenancePrefix + attribute);
    if (prov != attrs.end()) {
      DecodeProvenance(prov->second, &read.writer, &read.written_pos);
    }
    out.emplace_back(attribute, std::move(read));
  }
  return out;
}

Status WriteAheadLog::LoadInitialRow(const std::string& row,
                                     const kvstore::AttributeMap& attributes) {
  if (sim::race::Active()) {
    sim::race::Record(sim::race::AccessKind::kWrite,
                      {"wal", store_->instance_id(), group_, "data", row});
  }
  return store_->MergeWrite(DataKey(row), attributes, /*timestamp=*/0);
}

std::map<LogPos, LogEntry> WriteAheadLog::AllEntries() const {
  std::map<LogPos, LogEntry> out;
  const std::string prefix = "!log/" + group_ + "/";
  for (const std::string& key : store_->KeysWithPrefix(prefix)) {
    const LogPos pos = ParsePos(std::string_view(key).substr(prefix.size()));
    Result<LogEntry> entry = GetEntry(pos);
    if (entry.ok()) out.emplace(pos, *std::move(entry));
  }
  return out;
}

}  // namespace paxoscp::wal
