#include "wal/log.h"

#include <cassert>

#include "common/coding.h"

namespace paxoscp::wal {

namespace {

constexpr char kEntryAttr[] = "entry";
constexpr char kMaxDecidedAttr[] = "max_decided";
constexpr char kAppliedAttr[] = "pos";
/// Prefix for shadow provenance attributes in data rows.
constexpr char kProvenancePrefix[] = "#w/";

std::string EncodeProvenance(TxnId writer, LogPos pos) {
  std::string out;
  PutFixed64(&out, writer);
  PutVarint64(&out, pos);
  return out;
}

bool DecodeProvenance(std::string_view in, TxnId* writer, LogPos* pos) {
  return GetFixed64(&in, writer) && GetVarint64(&in, pos) && in.empty();
}

}  // namespace

std::string PadPos(LogPos pos) {
  std::string digits = std::to_string(pos);
  return std::string(digits.size() >= 12 ? 0 : 12 - digits.size(), '0') +
         digits;
}

WriteAheadLog::WriteAheadLog(kvstore::MultiVersionStore* store,
                             std::string group)
    : store_(store), group_(std::move(group)) {}

std::string WriteAheadLog::EntryKey(LogPos pos) const {
  return "!log/" + group_ + "/" + PadPos(pos);
}
std::string WriteAheadLog::MetaKey() const { return "!logmeta/" + group_; }
std::string WriteAheadLog::AppliedKey() const { return "!applied/" + group_; }
std::string WriteAheadLog::DataKey(const std::string& row) const {
  return "d/" + group_ + "/" + row;
}

Status WriteAheadLog::SetEntry(LogPos pos, const LogEntry& entry) {
  assert(pos >= 1);
  const std::string encoded = entry.Encode();
  Result<std::string> existing =
      store_->ReadAttr(EntryKey(pos), kEntryAttr);
  if (existing.ok()) {
    if (*existing != encoded) {
      return Status::Corruption(
          "R1 violation: conflicting values decided for " + group_ + "[" +
          std::to_string(pos) + "]");
    }
    return Status::OK();  // idempotent re-apply
  }
  PAXOSCP_RETURN_IF_ERROR(
      store_->Write(EntryKey(pos), {{kEntryAttr, encoded}}));
  BumpMaxDecided(pos);
  return Status::OK();
}

Result<LogEntry> WriteAheadLog::GetEntry(LogPos pos) const {
  Result<std::string> encoded = store_->ReadAttr(EntryKey(pos), kEntryAttr);
  if (!encoded.ok()) return encoded.status();
  return LogEntry::Decode(*encoded);
}

bool WriteAheadLog::HasEntry(LogPos pos) const {
  return store_->ReadAttr(EntryKey(pos), kEntryAttr).ok();
}

LogPos WriteAheadLog::MaxDecided() const {
  Result<std::string> v = store_->ReadAttr(MetaKey(), kMaxDecidedAttr);
  if (!v.ok()) return 0;
  return static_cast<LogPos>(std::stoull(*v));
}

void WriteAheadLog::BumpMaxDecided(LogPos pos) {
  // Retry loop around CheckAndWrite mirrors Algorithm 1's update pattern;
  // in the single-threaded simulation it succeeds on the first try.
  for (;;) {
    Result<std::string> cur = store_->ReadAttr(MetaKey(), kMaxDecidedAttr);
    const std::string cur_str = cur.ok() ? *cur : "";
    const LogPos cur_pos =
        cur.ok() ? static_cast<LogPos>(std::stoull(*cur)) : 0;
    if (pos <= cur_pos) return;
    Status s = store_->CheckAndWrite(MetaKey(), kMaxDecidedAttr, cur_str,
                                     {{kMaxDecidedAttr, std::to_string(pos)}});
    if (s.ok()) return;
  }
}

LogPos WriteAheadLog::AppliedThrough() const {
  Result<std::string> v = store_->ReadAttr(AppliedKey(), kAppliedAttr);
  if (!v.ok()) return 0;
  return static_cast<LogPos>(std::stoull(*v));
}

Status WriteAheadLog::ApplyThrough(LogPos target, LogPos* first_missing) {
  LogPos applied = AppliedThrough();
  for (LogPos pos = applied + 1; pos <= target; ++pos) {
    Result<LogEntry> entry = GetEntry(pos);
    if (!entry.ok()) {
      if (first_missing != nullptr) *first_missing = pos;
      return Status::FailedPrecondition("missing log entry at position " +
                                        std::to_string(pos));
    }
    // Merge all writes of the (ordered) transaction list into per-row
    // updates; later transactions overwrite earlier ones, matching the
    // serial order within the entry.
    std::map<std::string, std::map<std::string, std::string>> row_updates;
    for (const TxnRecord& t : entry->txns) {
      for (const WriteRecord& w : t.writes) {
        auto& updates = row_updates[w.item.row];
        updates[w.item.attribute] = w.value;
        updates[kProvenancePrefix + w.item.attribute] =
            EncodeProvenance(t.id, pos);
      }
    }
    for (const auto& [row, updates] : row_updates) {
      Status s = store_->MergeWrite(DataKey(row), updates,
                                    static_cast<Timestamp>(pos));
      // Conflict => this position was already applied to this row by an
      // earlier, partially-completed pass; skipping keeps apply idempotent.
      if (!s.ok() && !s.IsConflict()) return s;
    }
    // Persist the watermark after each position so recovery never re-reads
    // more than one applied entry.
    PAXOSCP_RETURN_IF_ERROR(store_->Write(
        AppliedKey(), {{kAppliedAttr, std::to_string(pos)}}));
  }
  return Status::OK();
}

ItemRead WriteAheadLog::ReadItem(const ItemId& item, LogPos read_pos) const {
  ItemRead out;
  Result<kvstore::RowVersion> row =
      store_->Read(DataKey(item.row), static_cast<Timestamp>(read_pos));
  if (!row.ok()) return out;  // initial state
  auto it = row->attributes.find(item.attribute);
  if (it == row->attributes.end()) return out;
  out.value = it->second;
  out.found = true;
  auto prov = row->attributes.find(kProvenancePrefix + item.attribute);
  if (prov != row->attributes.end()) {
    DecodeProvenance(prov->second, &out.writer, &out.written_pos);
  }
  return out;
}

Status WriteAheadLog::LoadInitialRow(
    const std::string& row,
    const std::map<std::string, std::string>& attributes) {
  return store_->MergeWrite(DataKey(row), attributes, /*timestamp=*/0);
}

std::map<LogPos, LogEntry> WriteAheadLog::AllEntries() const {
  std::map<LogPos, LogEntry> out;
  const std::string prefix = "!log/" + group_ + "/";
  for (const std::string& key : store_->KeysWithPrefix(prefix)) {
    const LogPos pos =
        static_cast<LogPos>(std::stoull(key.substr(prefix.size())));
    Result<LogEntry> entry = GetEntry(pos);
    if (entry.ok()) out.emplace(pos, *std::move(entry));
  }
  return out;
}

}  // namespace paxoscp::wal
