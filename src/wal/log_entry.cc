#include "wal/log_entry.h"

#include <sstream>

#include "common/coding.h"

namespace paxoscp::wal {

namespace {

void EncodeItem(std::string* dst, const ItemId& item) {
  PutLengthPrefixed(dst, item.row);
  PutLengthPrefixed(dst, item.attribute);
}

bool DecodeItem(std::string_view* in, ItemId* item) {
  std::string_view row, attr;
  if (!GetLengthPrefixed(in, &row)) return false;
  if (!GetLengthPrefixed(in, &attr)) return false;
  item->row = std::string(row);
  item->attribute = std::string(attr);
  return true;
}

}  // namespace

bool TxnRecord::Reads(const ItemId& it) const {
  for (const ReadRecord& r : reads) {
    if (r.item == it) return true;
  }
  return false;
}

bool TxnRecord::Writes(const ItemId& it) const {
  // A whole-row predicate read conflicts with any write to that row (the
  // reader observed the row's attribute set; see kWholeRowAttribute).
  const bool whole_row = it.attribute == kWholeRowAttribute;
  for (const WriteRecord& w : writes) {
    if (whole_row ? w.item.row == it.row : w.item == it) return true;
  }
  return false;
}

std::string LogEntry::Encode() const {
  std::string out;
  // Reserve a close upper bound so appends never reallocate: varints are
  // bounded by kMaxVarint64Bytes and everything else is length-prefixed.
  size_t bound = 2 * kMaxVarint64Bytes;
  for (const TxnRecord& t : txns) {
    bound += 8 + 3 * kMaxVarint64Bytes + 2 * kMaxVarint64Bytes;
    for (const ReadRecord& r : t.reads) {
      bound += r.item.row.size() + r.item.attribute.size() + 8 +
               3 * kMaxVarint64Bytes;
    }
    for (const WriteRecord& w : t.writes) {
      bound += w.item.row.size() + w.item.attribute.size() + w.value.size() +
               3 * kMaxVarint64Bytes;
    }
  }
  out.reserve(bound);
  PutVarsint64(&out, winner_dc);
  PutVarint64(&out, txns.size());
  for (const TxnRecord& t : txns) {
    PutFixed64(&out, t.id);
    PutVarsint64(&out, t.origin_dc);
    PutVarint64(&out, t.read_pos);
    PutVarint64(&out, t.reads.size());
    for (const ReadRecord& r : t.reads) {
      EncodeItem(&out, r.item);
      PutFixed64(&out, r.observed_writer);
      PutVarint64(&out, r.observed_pos);
    }
    PutVarint64(&out, t.writes.size());
    for (const WriteRecord& w : t.writes) {
      EncodeItem(&out, w.item);
      PutLengthPrefixed(&out, w.value);
    }
  }
  return out;
}

Result<LogEntry> LogEntry::Decode(std::string_view data) {
  LogEntry entry;
  int64_t winner = 0;
  if (!GetVarsint64(&data, &winner)) {
    return Status::Corruption("log entry: bad winner_dc");
  }
  entry.winner_dc = static_cast<DcId>(winner);
  uint64_t ntxns = 0;
  if (!GetVarint64(&data, &ntxns)) {
    return Status::Corruption("log entry: bad txn count");
  }
  entry.txns.reserve(ntxns);
  for (uint64_t i = 0; i < ntxns; ++i) {
    TxnRecord t;
    int64_t origin = 0;
    uint64_t nreads = 0, nwrites = 0;
    if (!GetFixed64(&data, &t.id) || !GetVarsint64(&data, &origin) ||
        !GetVarint64(&data, &t.read_pos) || !GetVarint64(&data, &nreads)) {
      return Status::Corruption("log entry: bad txn header");
    }
    t.origin_dc = static_cast<DcId>(origin);
    t.reads.reserve(nreads);
    for (uint64_t j = 0; j < nreads; ++j) {
      ReadRecord r;
      if (!DecodeItem(&data, &r.item) ||
          !GetFixed64(&data, &r.observed_writer) ||
          !GetVarint64(&data, &r.observed_pos)) {
        return Status::Corruption("log entry: bad read record");
      }
      t.reads.push_back(std::move(r));
    }
    if (!GetVarint64(&data, &nwrites)) {
      return Status::Corruption("log entry: bad write count");
    }
    t.writes.reserve(nwrites);
    for (uint64_t j = 0; j < nwrites; ++j) {
      WriteRecord w;
      std::string_view value;
      if (!DecodeItem(&data, &w.item) || !GetLengthPrefixed(&data, &value)) {
        return Status::Corruption("log entry: bad write record");
      }
      w.value = std::string(value);
      t.writes.push_back(std::move(w));
    }
    entry.txns.push_back(std::move(t));
  }
  if (!data.empty()) {
    return Status::Corruption("log entry: trailing bytes");
  }
  return entry;
}

uint64_t LogEntry::Fingerprint() const {
  // Streams exactly the bytes Encode() would produce through a chunking-
  // invariant hasher, so Fingerprint() == Fingerprint64(Encode()) holds
  // (pinned by tests/wal_test.cc) without materializing the encoding.
  Fingerprinter fp;
  fp.AddVarsint64(winner_dc);
  fp.AddVarint64(txns.size());
  for (const TxnRecord& t : txns) {
    fp.AddFixed64(t.id);
    fp.AddVarsint64(t.origin_dc);
    fp.AddVarint64(t.read_pos);
    fp.AddVarint64(t.reads.size());
    for (const ReadRecord& r : t.reads) {
      fp.AddLengthPrefixed(r.item.row);
      fp.AddLengthPrefixed(r.item.attribute);
      fp.AddFixed64(r.observed_writer);
      fp.AddVarint64(r.observed_pos);
    }
    fp.AddVarint64(t.writes.size());
    for (const WriteRecord& w : t.writes) {
      fp.AddLengthPrefixed(w.item.row);
      fp.AddLengthPrefixed(w.item.attribute);
      fp.AddLengthPrefixed(w.value);
    }
  }
  return fp.Finish();
}

bool LogEntry::ContainsTxn(TxnId id) const {
  for (const TxnRecord& t : txns) {
    if (t.id == id) return true;
  }
  return false;
}

bool LogEntry::WritesItemReadBy(const TxnRecord& t) const {
  for (const ReadRecord& r : t.reads) {
    for (const TxnRecord& winner : txns) {
      if (winner.Writes(r.item)) return true;
    }
  }
  return false;
}

std::string LogEntry::ToString() const {
  std::ostringstream os;
  os << "LogEntry{winner_dc=" << winner_dc << ", txns=[";
  for (size_t i = 0; i < txns.size(); ++i) {
    if (i > 0) os << ", ";
    os << TxnIdToString(txns[i].id) << "(r@" << txns[i].read_pos << ","
       << txns[i].reads.size() << "r/" << txns[i].writes.size() << "w)";
  }
  os << "]}";
  return os.str();
}

}  // namespace paxoscp::wal
