#include "wal/log_entry.h"

#include <sstream>

#include "common/coding.h"

namespace paxoscp::wal {

namespace {

void EncodeItem(std::string* dst, const ItemId& item) {
  PutLengthPrefixed(dst, item.row);
  PutLengthPrefixed(dst, item.attribute);
}

bool DecodeItem(std::string_view* in, ItemId* item) {
  std::string_view row, attr;
  if (!GetLengthPrefixed(in, &row)) return false;
  if (!GetLengthPrefixed(in, &attr)) return false;
  item->row = std::string(row);
  item->attribute = std::string(attr);
  return true;
}

/// First-varsint sentinel selecting the v2 (cross-group) entry encoding.
/// winner_dc is always a datacenter index (>= 0) or kNoDc (-1), so -2 can
/// never be mistaken for a v1 winner_dc. Entries without cross records keep
/// the original v1 layout bit-for-bit — existing logs, fingerprints, and
/// the byte-identical fig outputs are unaffected.
constexpr int64_t kCrossFormatMarker = -2;

}  // namespace

bool TxnRecord::Reads(const ItemId& it) const {
  for (const ReadRecord& r : reads) {
    if (r.item == it) return true;
  }
  return false;
}

bool TxnRecord::Writes(const ItemId& it) const {
  // A whole-row predicate read conflicts with any write to that row (the
  // reader observed the row's attribute set; see kWholeRowAttribute).
  const bool whole_row = it.attribute == kWholeRowAttribute;
  for (const WriteRecord& w : writes) {
    if (whole_row ? w.item.row == it.row : w.item == it) return true;
  }
  return false;
}

bool LogEntry::HasCrossRecords() const {
  for (const TxnRecord& t : txns) {
    if (t.kind != RecordKind::kData) return true;
  }
  return false;
}

const TxnRecord* LogEntry::FindDecide(TxnId id) const {
  for (const TxnRecord& t : txns) {
    if (t.kind == RecordKind::kDecide && t.id == id) return &t;
  }
  return nullptr;
}

const TxnRecord* LogEntry::FindPrepare(TxnId id) const {
  for (const TxnRecord& t : txns) {
    if (t.kind == RecordKind::kPrepare && t.id == id) return &t;
  }
  return nullptr;
}

std::string LogEntry::Encode() const {
  std::string out;
  const bool v2 = HasCrossRecords();
  // Reserve a close upper bound so appends never reallocate: varints are
  // bounded by kMaxVarint64Bytes and everything else is length-prefixed.
  size_t bound = 3 * kMaxVarint64Bytes;
  for (const TxnRecord& t : txns) {
    bound += 8 + 3 * kMaxVarint64Bytes + 2 * kMaxVarint64Bytes;
    for (const ReadRecord& r : t.reads) {
      bound += r.item.row.size() + r.item.attribute.size() + 8 +
               3 * kMaxVarint64Bytes;
    }
    for (const WriteRecord& w : t.writes) {
      bound += w.item.row.size() + w.item.attribute.size() + w.value.size() +
               3 * kMaxVarint64Bytes;
    }
    if (v2) {
      bound += 4 * kMaxVarint64Bytes;
      for (const std::string& g : t.participants) {
        bound += g.size() + kMaxVarint64Bytes;
      }
    }
  }
  out.reserve(bound);
  if (v2) PutVarsint64(&out, kCrossFormatMarker);
  PutVarsint64(&out, winner_dc);
  PutVarint64(&out, txns.size());
  for (const TxnRecord& t : txns) {
    if (v2) PutVarint64(&out, static_cast<uint64_t>(t.kind));
    PutFixed64(&out, t.id);
    PutVarsint64(&out, t.origin_dc);
    PutVarint64(&out, t.read_pos);
    PutVarint64(&out, t.reads.size());
    for (const ReadRecord& r : t.reads) {
      EncodeItem(&out, r.item);
      PutFixed64(&out, r.observed_writer);
      PutVarint64(&out, r.observed_pos);
    }
    PutVarint64(&out, t.writes.size());
    for (const WriteRecord& w : t.writes) {
      EncodeItem(&out, w.item);
      PutLengthPrefixed(&out, w.value);
    }
    if (v2 && t.kind == RecordKind::kPrepare) {
      PutVarint64(&out, t.cross_ts);
      PutVarint64(&out, t.participants.size());
      for (const std::string& g : t.participants) PutLengthPrefixed(&out, g);
    }
    if (v2 && t.kind == RecordKind::kDecide) {
      PutVarint64(&out, t.commit_decision ? 1 : 0);
    }
  }
  return out;
}

Result<LogEntry> LogEntry::Decode(std::string_view data) {
  LogEntry entry;
  int64_t winner = 0;
  if (!GetVarsint64(&data, &winner)) {
    return Status::Corruption("log entry: bad winner_dc");
  }
  bool v2 = false;
  if (winner == kCrossFormatMarker) {
    v2 = true;
    if (!GetVarsint64(&data, &winner)) {
      return Status::Corruption("log entry: bad winner_dc");
    }
  }
  entry.winner_dc = static_cast<DcId>(winner);
  uint64_t ntxns = 0;
  if (!GetVarint64(&data, &ntxns)) {
    return Status::Corruption("log entry: bad txn count");
  }
  entry.txns.reserve(ntxns);
  for (uint64_t i = 0; i < ntxns; ++i) {
    TxnRecord t;
    int64_t origin = 0;
    uint64_t nreads = 0, nwrites = 0;
    if (v2) {
      uint64_t kind = 0;
      if (!GetVarint64(&data, &kind) ||
          kind > static_cast<uint64_t>(RecordKind::kDecide)) {
        return Status::Corruption("log entry: bad record kind");
      }
      t.kind = static_cast<RecordKind>(kind);
    }
    if (!GetFixed64(&data, &t.id) || !GetVarsint64(&data, &origin) ||
        !GetVarint64(&data, &t.read_pos) || !GetVarint64(&data, &nreads)) {
      return Status::Corruption("log entry: bad txn header");
    }
    t.origin_dc = static_cast<DcId>(origin);
    t.reads.reserve(nreads);
    for (uint64_t j = 0; j < nreads; ++j) {
      ReadRecord r;
      if (!DecodeItem(&data, &r.item) ||
          !GetFixed64(&data, &r.observed_writer) ||
          !GetVarint64(&data, &r.observed_pos)) {
        return Status::Corruption("log entry: bad read record");
      }
      t.reads.push_back(std::move(r));
    }
    if (!GetVarint64(&data, &nwrites)) {
      return Status::Corruption("log entry: bad write count");
    }
    t.writes.reserve(nwrites);
    for (uint64_t j = 0; j < nwrites; ++j) {
      WriteRecord w;
      std::string_view value;
      if (!DecodeItem(&data, &w.item) || !GetLengthPrefixed(&data, &value)) {
        return Status::Corruption("log entry: bad write record");
      }
      w.value = std::string(value);
      t.writes.push_back(std::move(w));
    }
    if (v2 && t.kind == RecordKind::kPrepare) {
      uint64_t ngroups = 0;
      if (!GetVarint64(&data, &t.cross_ts) || !GetVarint64(&data, &ngroups)) {
        return Status::Corruption("log entry: bad prepare record");
      }
      t.participants.reserve(ngroups);
      for (uint64_t j = 0; j < ngroups; ++j) {
        std::string_view g;
        if (!GetLengthPrefixed(&data, &g)) {
          return Status::Corruption("log entry: bad participant list");
        }
        t.participants.emplace_back(g);
      }
    }
    if (v2 && t.kind == RecordKind::kDecide) {
      uint64_t decision = 0;
      if (!GetVarint64(&data, &decision)) {
        return Status::Corruption("log entry: bad decide record");
      }
      t.commit_decision = decision != 0;
    }
    entry.txns.push_back(std::move(t));
  }
  if (!data.empty()) {
    return Status::Corruption("log entry: trailing bytes");
  }
  return entry;
}

uint64_t LogEntry::Fingerprint() const {
  // Streams exactly the bytes Encode() would produce through a chunking-
  // invariant hasher, so Fingerprint() == Fingerprint64(Encode()) holds
  // (pinned by tests/wal_test.cc) without materializing the encoding.
  const bool v2 = HasCrossRecords();
  Fingerprinter fp;
  if (v2) fp.AddVarsint64(kCrossFormatMarker);
  fp.AddVarsint64(winner_dc);
  fp.AddVarint64(txns.size());
  for (const TxnRecord& t : txns) {
    if (v2) fp.AddVarint64(static_cast<uint64_t>(t.kind));
    fp.AddFixed64(t.id);
    fp.AddVarsint64(t.origin_dc);
    fp.AddVarint64(t.read_pos);
    fp.AddVarint64(t.reads.size());
    for (const ReadRecord& r : t.reads) {
      fp.AddLengthPrefixed(r.item.row);
      fp.AddLengthPrefixed(r.item.attribute);
      fp.AddFixed64(r.observed_writer);
      fp.AddVarint64(r.observed_pos);
    }
    fp.AddVarint64(t.writes.size());
    for (const WriteRecord& w : t.writes) {
      fp.AddLengthPrefixed(w.item.row);
      fp.AddLengthPrefixed(w.item.attribute);
      fp.AddLengthPrefixed(w.value);
    }
    if (v2 && t.kind == RecordKind::kPrepare) {
      fp.AddVarint64(t.cross_ts);
      fp.AddVarint64(t.participants.size());
      for (const std::string& g : t.participants) fp.AddLengthPrefixed(g);
    }
    if (v2 && t.kind == RecordKind::kDecide) {
      fp.AddVarint64(t.commit_decision ? 1 : 0);
    }
  }
  return fp.Finish();
}

bool LogEntry::ContainsTxn(TxnId id) const {
  for (const TxnRecord& t : txns) {
    if (t.id == id) return true;
  }
  return false;
}

bool LogEntry::ContainsRecord(TxnId id, RecordKind kind) const {
  for (const TxnRecord& t : txns) {
    if (t.id == id && t.kind == kind) return true;
  }
  return false;
}

bool LogEntry::WritesItemReadBy(const TxnRecord& t) const {
  for (const ReadRecord& r : t.reads) {
    for (const TxnRecord& winner : txns) {
      if (winner.Writes(r.item)) return true;
    }
  }
  return false;
}

std::string LogEntry::ToString() const {
  std::ostringstream os;
  os << "LogEntry{winner_dc=" << winner_dc << ", txns=[";
  for (size_t i = 0; i < txns.size(); ++i) {
    if (i > 0) os << ", ";
    os << TxnIdToString(txns[i].id);
    if (txns[i].kind == RecordKind::kPrepare) {
      os << "[prep ts=" << txns[i].cross_ts << "]";
    } else if (txns[i].kind == RecordKind::kDecide) {
      os << (txns[i].commit_decision ? "[decide:commit]" : "[decide:abort]");
    }
    os << "(r@" << txns[i].read_pos << "," << txns[i].reads.size() << "r/"
       << txns[i].writes.size() << "w)";
  }
  os << "]}";
  return os.str();
}

}  // namespace paxoscp::wal
