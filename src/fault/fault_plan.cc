#include "fault/fault_plan.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace paxoscp::fault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDatacenterDown: return "dc_down";
    case FaultKind::kDatacenterUp: return "dc_up";
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kLinkOneWayDown: return "oneway_down";
    case FaultKind::kLinkOneWayUp: return "oneway_up";
    case FaultKind::kLossBurst: return "loss_burst";
    case FaultKind::kLossRestore: return "loss_restore";
    case FaultKind::kServiceRestart: return "service_restart";
    case FaultKind::kDuplicateBurst: return "duplicate_burst";
    case FaultKind::kDuplicateRestore: return "duplicate_restore";
    case FaultKind::kReorderBurst: return "reorder_burst";
    case FaultKind::kReorderRestore: return "reorder_restore";
  }
  return "?";
}

std::string FaultEvent::ToString() const {
  char buf[96];
  const double at_s = static_cast<double>(at) / 1e6;
  switch (kind) {
    case FaultKind::kDatacenterDown:
    case FaultKind::kDatacenterUp:
    case FaultKind::kServiceRestart:
      std::snprintf(buf, sizeof(buf), "t=%.3fs %s dc=%d", at_s,
                    FaultKindName(kind), a);
      break;
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp:
      std::snprintf(buf, sizeof(buf), "t=%.3fs %s %d<->%d", at_s,
                    FaultKindName(kind), a, b);
      break;
    case FaultKind::kLinkOneWayDown:
    case FaultKind::kLinkOneWayUp:
      std::snprintf(buf, sizeof(buf), "t=%.3fs %s %d->%d", at_s,
                    FaultKindName(kind), a, b);
      break;
    case FaultKind::kLossBurst:
    case FaultKind::kDuplicateBurst:
      std::snprintf(buf, sizeof(buf), "t=%.3fs %s p=%.3f", at_s,
                    FaultKindName(kind), loss);
      break;
    case FaultKind::kReorderBurst:
      std::snprintf(buf, sizeof(buf), "t=%.3fs %s p=%.3f extra=%.3fs", at_s,
                    FaultKindName(kind), loss,
                    static_cast<double>(extra) / 1e6);
      break;
    case FaultKind::kLossRestore:
    case FaultKind::kDuplicateRestore:
    case FaultKind::kReorderRestore:
      std::snprintf(buf, sizeof(buf), "t=%.3fs %s", at_s,
                    FaultKindName(kind));
      break;
  }
  return buf;
}

void FaultPlan::Normalize() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.at < y.at;
                   });
}

TimeMicros FaultPlan::Horizon() const {
  TimeMicros horizon = 0;
  for (const FaultEvent& e : events) horizon = std::max(horizon, e.at);
  return horizon;
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultEvent& e : events) {
    out += e.ToString();
    out += '\n';
  }
  return out;
}

RandomPlanGenerator::RandomPlanGenerator(PlanEnvelope envelope, uint64_t seed)
    : envelope_(envelope), rng_(seed) {
  assert(envelope_.num_datacenters >= 1);
  assert(envelope_.min_episodes <= envelope_.max_episodes);
  assert(envelope_.min_duration <= envelope_.max_duration);
}

bool RandomPlanGenerator::Admissible(const std::vector<Episode>& taken,
                                     const Episode& e) const {
  const TimeMicros gap = envelope_.min_heal_gap;
  int concurrent_outages = e.is_dc_outage ? 1 : 0;
  for (const Episode& t : taken) {
    // Heal-gap windows: the resource must stay quiet `gap` past recovery.
    const bool busy_overlap =
        e.start <= t.end + gap && t.start <= e.end + gap;
    if (busy_overlap) {
      for (const std::string& r : e.resources) {
        if (std::find(t.resources.begin(), t.resources.end(), r) !=
            t.resources.end()) {
          return false;
        }
      }
    }
    // Concurrency cap: pairwise fault-window overlap of datacenter outages
    // (conservative for caps > 1, exact for the default cap of 1).
    if (e.is_dc_outage && t.is_dc_outage && e.start <= t.end &&
        t.start <= e.end) {
      if (++concurrent_outages > envelope_.max_concurrent_dc_outages) {
        return false;
      }
    }
  }
  return true;
}

FaultPlan RandomPlanGenerator::Generate() {
  enum class Shape { kDcOutage, kLinkCut, kOneWayCut, kBisection, kLossBurst,
                     kRestart, kDuplicateBurst, kReorderBurst };
  const int d = envelope_.num_datacenters;
  std::vector<Shape> shapes;
  if (envelope_.allow_dc_outage) shapes.push_back(Shape::kDcOutage);
  if (d >= 2) {
    if (envelope_.allow_link_cut) shapes.push_back(Shape::kLinkCut);
    if (envelope_.allow_oneway_cut) shapes.push_back(Shape::kOneWayCut);
    if (envelope_.allow_bisection) shapes.push_back(Shape::kBisection);
  }
  if (envelope_.allow_loss_burst) shapes.push_back(Shape::kLossBurst);
  if (envelope_.allow_service_restart) shapes.push_back(Shape::kRestart);
  // New shapes append after the originals so the shapes-vector indices of
  // the pre-existing ones — and thus every historical (seed, envelope)
  // plan with these flags off — are unchanged.
  if (envelope_.allow_duplicate_burst) {
    shapes.push_back(Shape::kDuplicateBurst);
  }
  if (envelope_.allow_reorder_burst) shapes.push_back(Shape::kReorderBurst);

  FaultPlan plan;
  if (shapes.empty()) return plan;

  auto link_token = [](DcId a, DcId b) {
    if (a > b) std::swap(a, b);
    return "link" + std::to_string(a) + "-" + std::to_string(b);
  };

  std::vector<Episode> taken;
  const int episodes = static_cast<int>(
      rng_.UniformRange(envelope_.min_episodes, envelope_.max_episodes));
  for (int i = 0; i < episodes; ++i) {
    // A rejected draw (heal gap / concurrency) is retried with fresh
    // randomness a few times, then the episode is skipped: plans may carry
    // fewer episodes than drawn, never an inadmissible one.
    for (int attempt = 0; attempt < 16; ++attempt) {
      const Shape shape = shapes[rng_.Uniform(shapes.size())];
      const TimeMicros start =
          envelope_.first_fault +
          static_cast<TimeMicros>(rng_.Uniform(
              static_cast<uint64_t>(envelope_.horizon) + 1));
      const TimeMicros duration = static_cast<TimeMicros>(rng_.UniformRange(
          envelope_.min_duration, envelope_.max_duration));

      Episode e;
      e.start = start;
      e.end = start + duration;
      std::vector<FaultEvent> events;
      switch (shape) {
        case Shape::kDcOutage: {
          const DcId dc = static_cast<DcId>(rng_.Uniform(d));
          e.resources = {"dc" + std::to_string(dc)};
          e.is_dc_outage = true;
          events.push_back({start, FaultKind::kDatacenterDown, dc, kNoDc, 0});
          events.push_back(
              {start + duration, FaultKind::kDatacenterUp, dc, kNoDc, 0});
          break;
        }
        case Shape::kLinkCut:
        case Shape::kOneWayCut: {
          const DcId a = static_cast<DcId>(rng_.Uniform(d));
          DcId b = static_cast<DcId>(rng_.Uniform(d - 1));
          if (b >= a) ++b;
          e.resources = {link_token(a, b)};
          const bool oneway = shape == Shape::kOneWayCut;
          events.push_back({start,
                            oneway ? FaultKind::kLinkOneWayDown
                                   : FaultKind::kLinkDown,
                            a, b, 0});
          events.push_back({start + duration,
                            oneway ? FaultKind::kLinkOneWayUp
                                   : FaultKind::kLinkUp,
                            a, b, 0});
          break;
        }
        case Shape::kBisection: {
          // Non-trivial bipartition of the datacenters: cut every crossing
          // link, heal them all together.
          const uint64_t mask = 1 + rng_.Uniform((uint64_t{1} << d) - 2);
          for (DcId a = 0; a < d; ++a) {
            for (DcId b = a + 1; b < d; ++b) {
              const bool a_side = (mask >> a) & 1, b_side = (mask >> b) & 1;
              if (a_side == b_side) continue;
              e.resources.push_back(link_token(a, b));
              events.push_back({start, FaultKind::kLinkDown, a, b, 0});
              events.push_back(
                  {start + duration, FaultKind::kLinkUp, a, b, 0});
            }
          }
          break;
        }
        case Shape::kLossBurst: {
          const double p =
              envelope_.min_loss_burst +
              rng_.NextDouble() *
                  (envelope_.max_loss_burst - envelope_.min_loss_burst);
          e.resources = {"loss"};
          events.push_back(
              {start, FaultKind::kLossBurst, kNoDc, kNoDc, p});
          events.push_back(
              {start + duration, FaultKind::kLossRestore, kNoDc, kNoDc, 0});
          break;
        }
        case Shape::kRestart: {
          const DcId dc = static_cast<DcId>(rng_.Uniform(d));
          e.resources = {"svc" + std::to_string(dc)};
          e.end = e.start;  // instantaneous
          events.push_back(
              {start, FaultKind::kServiceRestart, dc, kNoDc, 0});
          break;
        }
        case Shape::kDuplicateBurst: {
          const double p =
              envelope_.min_duplicate_burst +
              rng_.NextDouble() * (envelope_.max_duplicate_burst -
                                   envelope_.min_duplicate_burst);
          e.resources = {"dup"};
          events.push_back(
              {start, FaultKind::kDuplicateBurst, kNoDc, kNoDc, p});
          events.push_back({start + duration, FaultKind::kDuplicateRestore,
                            kNoDc, kNoDc, 0});
          break;
        }
        case Shape::kReorderBurst: {
          const double p =
              envelope_.min_reorder_burst +
              rng_.NextDouble() *
                  (envelope_.max_reorder_burst - envelope_.min_reorder_burst);
          const TimeMicros extra = static_cast<TimeMicros>(rng_.UniformRange(
              1, std::max<TimeMicros>(envelope_.max_reorder_extra, 1)));
          e.resources = {"reorder"};
          events.push_back(
              {start, FaultKind::kReorderBurst, kNoDc, kNoDc, p, extra});
          events.push_back({start + duration, FaultKind::kReorderRestore,
                            kNoDc, kNoDc, 0});
          break;
        }
      }
      if (!Admissible(taken, e)) continue;
      taken.push_back(std::move(e));
      for (FaultEvent& event : events) plan.events.push_back(event);
      break;
    }
  }
  plan.Normalize();
  return plan;
}

}  // namespace paxoscp::fault
