// FaultInjector: arms a FaultPlan on the simulator, applying each event to
// the network (and, for service restarts, through a caller-supplied
// callback) at its scheduled virtual time. Events are applied relative to
// the virtual time at which Arm() was called, so the same plan can be armed
// at any point of a run. See docs/ARCHITECTURE.md, design note D6.
#pragma once

#include <functional>
#include <vector>

#include "fault/fault_plan.h"
#include "net/network.h"

namespace paxoscp::fault {

class FaultInjector {
 public:
  /// `restart_service(dc)` is invoked for kServiceRestart events; leave it
  /// empty to treat restarts as no-ops (e.g. when driving a bare Network).
  /// core::Cluster::ApplyFaultPlan wires it to Cluster::RestartService.
  explicit FaultInjector(net::Network* network,
                         std::function<void(DcId)> restart_service = {});

  /// Schedules every event of `plan` at Now() + event.at. May be called
  /// multiple times; the baseline loss probability that kLossRestore
  /// returns to is the one captured at construction. Accumulated plans
  /// must not overlap on a resource: the network's fault state is boolean,
  /// so plan B's heal of a datacenter/link that plan A still holds down
  /// would end A's fault early (RandomPlanGenerator's heal-gap rule
  /// guarantees this within one plan; across Arm() calls it is on the
  /// caller).
  void Arm(const FaultPlan& plan);

  /// Events applied so far (in application order) — the injector's replay
  /// log, written into chaos failure artifacts.
  const std::vector<FaultEvent>& applied() const { return applied_; }
  int events_applied() const { return static_cast<int>(applied_.size()); }

 private:
  void Apply(const FaultEvent& event);

  net::Network* network_;
  std::function<void(DcId)> restart_service_;
  // Baselines captured at construction: a later Arm() may land mid-burst,
  // and every *Restore event must return to the true baseline.
  double baseline_loss_;
  double baseline_duplicate_;
  double baseline_reorder_;
  TimeMicros baseline_reorder_extra_;
  std::vector<FaultEvent> applied_;
};

}  // namespace paxoscp::fault
