#include "fault/injector.h"

#include <cassert>

namespace paxoscp::fault {

FaultInjector::FaultInjector(net::Network* network,
                             std::function<void(DcId)> restart_service)
    : network_(network),
      restart_service_(std::move(restart_service)),
      // Captured once: a later Arm() call may land mid-burst, and
      // kLossRestore must return to the true baseline, not the burst.
      baseline_loss_(network->loss_probability()),
      baseline_duplicate_(network->duplicate_probability()),
      baseline_reorder_(network->reorder_probability()),
      baseline_reorder_extra_(network->reorder_extra_max()) {}

void FaultInjector::Arm(const FaultPlan& plan) {
  sim::Simulator* sim = network_->simulator();
  for (const FaultEvent& event : plan.events) {
    assert(event.at >= 0);
    sim->ScheduleAfter(event.at, [this, event] { Apply(event); },
                       "fault/apply");
  }
}

void FaultInjector::Apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kDatacenterDown:
      network_->SetDatacenterDown(event.a, true);
      break;
    case FaultKind::kDatacenterUp:
      network_->SetDatacenterDown(event.a, false);
      break;
    case FaultKind::kLinkDown:
      network_->SetLinkDown(event.a, event.b, true);
      break;
    case FaultKind::kLinkUp:
      network_->SetLinkDown(event.a, event.b, false);
      break;
    case FaultKind::kLinkOneWayDown:
      network_->SetLinkOneWayDown(event.a, event.b, true);
      break;
    case FaultKind::kLinkOneWayUp:
      network_->SetLinkOneWayDown(event.a, event.b, false);
      break;
    case FaultKind::kLossBurst:
      network_->set_loss_probability(event.loss);
      break;
    case FaultKind::kLossRestore:
      network_->set_loss_probability(baseline_loss_);
      break;
    case FaultKind::kServiceRestart:
      if (restart_service_) restart_service_(event.a);
      break;
    case FaultKind::kDuplicateBurst:
      network_->set_duplicate_probability(event.loss);
      break;
    case FaultKind::kDuplicateRestore:
      network_->set_duplicate_probability(baseline_duplicate_);
      break;
    case FaultKind::kReorderBurst:
      network_->set_reorder_probability(event.loss);
      network_->set_reorder_extra_max(event.extra);
      break;
    case FaultKind::kReorderRestore:
      network_->set_reorder_probability(baseline_reorder_);
      network_->set_reorder_extra_max(baseline_reorder_extra_);
      break;
  }
  applied_.push_back(event);
}

}  // namespace paxoscp::fault
