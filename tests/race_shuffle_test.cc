// Tie-shuffle exploration sweep (design note D12, mode 2).
//
// The simulator's FIFO tie-break among same-time events is deterministic
// but arbitrary: nothing in the model says event A "really" precedes
// event B when both fire at the same microsecond. This sweep replays the
// fixed-seed sharded workload and the two chaos slices (cross-group 2PC,
// daemon-heals-alone) under N seeded same-time permutations and requires
// RUN-LEVEL INVARIANCE: identical outcome stats, identical per-(group, dc)
// decided-log digests, identical checker verdicts.
//
// The sweep configs are rng-quiet by construction (latency_jitter = 0,
// loss_probability = 0, no loss/duplicate/reorder bursts): no same-time
// event pair ever draws from a shared rng stream, so a permutation can
// change the outcome only through a schedule-order race. Two kinds exist:
// determinism LEAKS (state that should not depend on arrival order but
// does — e.g. the read-set recorded in response-arrival order, found by
// this sweep and fixed in ActiveTxn::ToRecord) and genuine Paxos position
// CONTENTION (two in-flight transactions racing for one log slot — the
// winner legitimately depends on delivery order; only safety is
// guaranteed). The invariance tests run chaos seeds pinned contention-
// free, where any divergence is a leak; the safety test sweeps wider
// seeds where contention can land on a tie and asserts the checker
// verdict instead. RngQuietSlicesHaveNoRngCellConflicts pins the
// quietness itself.
//
// On divergence the harness minimizes via the shuffle horizon (ties at
// t >= horizon stay FIFO, so a binary search over the horizon isolates the
// first diverging timestamp), writes race_divergence_seed<seed>.txt for CI
// artifact upload, and fails with the replay recipe.
//
// Environment knobs (set by ctest; see CMakeLists.txt):
//   PAXOSCP_SHUFFLE_SEEDS      shuffle seeds per slice      (default 8)
//   PAXOSCP_SHUFFLE_SEED_BASE  first shuffle seed           (default 1)
//   PAXOSCP_SHUFFLE_CHAOS_SEEDS  chaos seeds per chaos slice (default 3)
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "fault/fault_plan.h"
#include "sim/race_detector.h"
#include "sim/simulator.h"
#include "wal/log.h"
#include "workload/generator.h"
#include "workload/runner.h"

namespace paxoscp {
namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

/// Order-independent digest of one group's decided log (the cross_test.cc
/// determinism pattern): fold decided entries' fingerprints by position.
uint64_t LogDigest(const wal::WriteAheadLog* log) {
  uint64_t digest = 1469598103934665603ull;
  for (LogPos pos = 1; pos <= log->MaxDecided(); ++pos) {
    if (!log->HasEntry(pos)) continue;
    Result<wal::LogEntry> entry = log->GetEntry(pos);
    digest ^= pos;
    digest *= 1099511628211ull;
    digest ^= entry.ok() ? entry->Fingerprint() : 0;
    digest *= 1099511628211ull;
  }
  return digest;
}

/// Everything a run must keep invariant under a same-time permutation.
struct RunFingerprint {
  int attempted = 0;
  int committed = 0;
  int aborted = 0;
  int failed = 0;
  int cross_committed = 0;
  int cross_aborted = 0;
  int cross_unknown = 0;
  bool checker_ok = false;
  bool all_threads_finished = false;
  std::vector<uint64_t> log_digests;  // per (group, dc)

  bool operator==(const RunFingerprint& o) const {
    return attempted == o.attempted && committed == o.committed &&
           aborted == o.aborted && failed == o.failed &&
           cross_committed == o.cross_committed &&
           cross_aborted == o.cross_aborted &&
           cross_unknown == o.cross_unknown && checker_ok == o.checker_ok &&
           all_threads_finished == o.all_threads_finished &&
           log_digests == o.log_digests;
  }
  bool operator!=(const RunFingerprint& o) const { return !(*this == o); }

  std::string Describe() const {
    std::string out = "attempted=" + std::to_string(attempted) +
                      " committed=" + std::to_string(committed) +
                      " aborted=" + std::to_string(aborted) +
                      " failed=" + std::to_string(failed) +
                      " cross=" + std::to_string(cross_committed) + "/" +
                      std::to_string(cross_aborted) + "/" +
                      std::to_string(cross_unknown) +
                      " checker_ok=" + std::to_string(checker_ok ? 1 : 0) +
                      " digests=";
    for (uint64_t d : log_digests) out += std::to_string(d) + ",";
    return out;
  }
};

/// Per-position dump of every group's decided log at dc 0 (what the
/// digests summarize), for the divergence artifact: diffing the baseline
/// and shuffled dumps names the first diverging position.
std::string DumpLogs(core::Cluster* cluster, int num_groups,
                     const workload::WorkloadConfig& wconfig) {
  std::string out;
  for (int g = 0; g < num_groups; ++g) {
    const std::string name = workload::Generator::GroupName(wconfig, g);
    const wal::WriteAheadLog* log = cluster->service(0)->GroupLog(name);
    out += "group " + name + " decided=" + std::to_string(log->MaxDecided()) +
           "\n";
    for (LogPos pos = 1; pos <= log->MaxDecided(); ++pos) {
      if (!log->HasEntry(pos)) continue;
      Result<wal::LogEntry> entry = log->GetEntry(pos);
      out += "  pos=" + std::to_string(pos) + " fp=" +
             std::to_string(entry.ok() ? entry->Fingerprint() : 0);
      if (entry.ok()) {
        for (const wal::TxnRecord& t : entry->txns) {
          out += " txn=" + TxnIdToString(t.id) +
                 (t.commit_decision ? "+c" : "-c") +
                 " k=" + std::to_string(static_cast<int>(t.kind)) +
                 " rp=" + std::to_string(t.read_pos) +
                 " xts=" + std::to_string(t.cross_ts);
          for (const wal::ReadRecord& r : t.reads) {
            out += " r(" + r.item.row + "." + r.item.attribute + "@" +
                   TxnIdToString(r.observed_writer) + "/" +
                   std::to_string(r.observed_pos) + ")";
          }
          for (const wal::WriteRecord& w : t.writes) {
            out += " w(" + w.item.row + "." + w.item.attribute + "=" +
                   w.value.substr(0, 8) + ")";
          }
        }
      }
      out += "\n";
    }
  }
  return out;
}

RunFingerprint Fingerprint(core::Cluster* cluster,
                           const workload::RunStats& stats, int num_groups,
                           const workload::WorkloadConfig& wconfig) {
  RunFingerprint fp;
  fp.attempted = stats.attempted;
  fp.committed = stats.committed;
  fp.aborted = stats.aborted;
  fp.failed = stats.failed;
  fp.cross_committed = stats.cross_committed;
  fp.cross_aborted = stats.cross_aborted;
  fp.cross_unknown = stats.cross_unknown;
  fp.checker_ok = stats.check.ok;
  fp.all_threads_finished = stats.all_threads_finished;
  for (int g = 0; g < num_groups; ++g) {
    const std::string name = workload::Generator::GroupName(wconfig, g);
    for (DcId dc = 0; dc < cluster->num_datacenters(); ++dc) {
      fp.log_digests.push_back(
          LogDigest(cluster->service(dc)->GroupLog(name)));
    }
  }
  return fp;
}

enum class Slice { kSharded, kChaosCross, kChaosDaemon };

const char* SliceName(Slice s) {
  switch (s) {
    case Slice::kSharded: return "sharded";
    case Slice::kChaosCross: return "chaos-cross";
    case Slice::kChaosDaemon: return "chaos-daemon";
  }
  return "?";
}

/// One rng-quiet run of a slice under a same-time permutation. A pure
/// function of (slice, chaos_seed, shuffle_seed, horizon): shuffle_seed 0
/// is the FIFO baseline; `horizon` bounds shuffling to ties at t < horizon
/// (the minimizer's lever). `detector`, when non-null, is attached for the
/// quietness proof.
RunFingerprint RunSlice(Slice slice, uint64_t chaos_seed,
                        uint64_t shuffle_seed,
                        TimeMicros horizon = sim::Simulator::kMaxTimeMicros,
                        sim::RaceDetector* detector = nullptr,
                        std::string* log_dump = nullptr) {
  Rng rng(chaos_seed ^ 0x5eedf00dULL);

  static const char* kCodes[] = {"VVV", "VVVO"};
  core::ClusterConfig config = *core::ClusterConfig::FromCode(
      slice == Slice::kSharded ? "VVV" : kCodes[rng.Uniform(2)]);
  config.seed = slice == Slice::kSharded ? 4242 : rng.Next();
  // Rng-quiet: no per-message draws, so no same-time event pair shares a
  // stream and the schedule alone determines the outcome.
  config.latency_jitter = 0;
  config.loss_probability = 0;
  core::Cluster cluster(config);
  if (shuffle_seed != 0) {
    cluster.simulator()->SetTieShuffle(shuffle_seed, horizon);
  }
  // PAXOSCP_SHUFFLE_TRACE_TIME=<us> dumps the full time-group at that
  // timestamp (minimize first, then trace the reported tick).
  sim::RaceDetector trace_detector;
  if (const uint64_t trace = EnvOr("PAXOSCP_SHUFFLE_TRACE_TIME", 0);
      trace != 0 && detector == nullptr) {
    trace_detector.TraceTime(static_cast<TimeMicros>(trace));
    detector = &trace_detector;
  }
  if (detector != nullptr) {
    cluster.simulator()->AttachRaceDetector(detector);
  }

  workload::RunnerConfig runner;
  runner.workload.num_attributes = 10;
  runner.workload.num_groups = 2;
  runner.workload.cross_fraction = 0.3;
  runner.workload.groups_per_cross_txn = 2;
  runner.total_txns = 16;
  runner.num_threads = 2;
  runner.stagger = 200 * kMillisecond;
  runner.seed = slice == Slice::kSharded ? 99 : rng.Next();

  if (slice != Slice::kSharded) {
    // Chaos slice: seeded fault plan, quiet shapes only (outages,
    // partitions, restarts — no loss/duplicate/reorder bursts, which
    // would reintroduce per-message draws).
    fault::PlanEnvelope envelope;
    envelope.num_datacenters = config.num_datacenters();
    envelope.allow_loss_burst = false;
    fault::RandomPlanGenerator generator(envelope, rng.Next());
    cluster.ApplyFaultPlan(generator.Generate());
    runner.workload.num_groups = 2 + static_cast<int>(rng.Uniform(2));
    runner.client.max_rounds_per_position = 32;
    if (rng.Uniform(3) == 0) {
      runner.client.crash_after_prepares = 1 + static_cast<int>(rng.Uniform(2));
    }
    runner.client.parallel_commit = chaos_seed % 4 != 3;
    runner.availability_window = 2 * kSecond;
  }
  if (slice == Slice::kChaosDaemon) {
    runner.quiesce_recovery = false;
    runner.recovery_timer = 1 * kSecond;
    if (runner.client.crash_after_prepares < 0 && rng.Uniform(2) == 0) {
      runner.client.crash_after_prepares = 1 + static_cast<int>(rng.Uniform(2));
    }
  }

  const workload::RunStats stats = workload::RunExperiment(&cluster, runner);
  if (detector != nullptr) detector->Finalize();
  if (log_dump != nullptr) {
    *log_dump = DumpLogs(&cluster, runner.workload.num_groups,
                         runner.workload);
  }
  return Fingerprint(&cluster, stats, runner.workload.num_groups,
                     runner.workload);
}

/// Binary-searches the shuffle horizon for the first diverging timestamp:
/// run(seed, horizon = h) diverges from FIFO iff the first diverging tie
/// is at t < h, so the smallest diverging horizon brackets it.
TimeMicros MinimizeDivergence(Slice slice, uint64_t chaos_seed,
                              uint64_t shuffle_seed,
                              const RunFingerprint& baseline) {
  TimeMicros lo = 0;                    // invariant: horizon lo never diverges
  TimeMicros hi = 60 * kSecond;         // whole-run horizon: known to diverge
  while (hi - lo > 1) {
    const TimeMicros mid = lo + (hi - lo) / 2;
    if (RunSlice(slice, chaos_seed, shuffle_seed, mid) != baseline) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return lo;  // first diverging tie timestamp (hi = lo + 1 diverges)
}

void WriteDivergenceArtifact(Slice slice, uint64_t chaos_seed,
                             uint64_t shuffle_seed, TimeMicros first_time,
                             const RunFingerprint& baseline,
                             const RunFingerprint& shuffled) {
  // Re-run both sides with log dumps so the artifact names the diverging
  // positions, not just the digests.
  std::string baseline_dump;
  std::string shuffled_dump;
  (void)RunSlice(slice, chaos_seed, 0, sim::Simulator::kMaxTimeMicros,
                 nullptr, &baseline_dump);
  (void)RunSlice(slice, chaos_seed, shuffle_seed,
                 sim::Simulator::kMaxTimeMicros, nullptr, &shuffled_dump);
  const std::string path = "race_divergence_seed" +
                           std::to_string(shuffle_seed) + ".txt";
  std::ofstream f(path);
  f << "slice=" << SliceName(slice) << " chaos_seed=" << chaos_seed
    << " shuffle_seed=" << shuffle_seed << "\n"
    << "first diverging tie timestamp (us): " << first_time << "\n"
    << "baseline: " << baseline.Describe() << "\n"
    << "shuffled: " << shuffled.Describe() << "\n"
    << "baseline logs:\n" << baseline_dump
    << "shuffled logs:\n" << shuffled_dump
    << "replay: PAXOSCP_SHUFFLE_SEED_BASE=" << shuffle_seed
    << " PAXOSCP_SHUFFLE_SEEDS=1"
    << " PAXOSCP_SHUFFLE_TRACE_TIME=" << first_time
    << " ./race_shuffle_test\n";
  std::printf("wrote %s\n", path.c_str());
}

void SweepSlice(Slice slice, uint64_t chaos_seed) {
  const uint64_t base = EnvOr("PAXOSCP_SHUFFLE_SEED_BASE", 1);
  const uint64_t count = EnvOr("PAXOSCP_SHUFFLE_SEEDS", 8);
  const RunFingerprint baseline = RunSlice(slice, chaos_seed, 0);
  EXPECT_TRUE(baseline.all_threads_finished);
  EXPECT_TRUE(baseline.checker_ok);
  for (uint64_t seed = base; seed < base + count; ++seed) {
    const RunFingerprint shuffled = RunSlice(slice, chaos_seed, seed);
    if (shuffled != baseline) {
      const TimeMicros first =
          MinimizeDivergence(slice, chaos_seed, seed, baseline);
      WriteDivergenceArtifact(slice, chaos_seed, seed, first, baseline,
                              shuffled);
      FAIL() << SliceName(slice) << " chaos_seed=" << chaos_seed
             << " diverges under shuffle seed " << seed
             << " (first diverging tie at t=" << first << "us)\n"
             << "baseline: " << baseline.Describe() << "\n"
             << "shuffled: " << shuffled.Describe();
    }
  }
}

TEST(RaceShuffleTest, ShardedWorkloadShuffleInvariant) {
  SweepSlice(Slice::kSharded, 0);
}

TEST(RaceShuffleTest, ChaosCrossSliceShuffleInvariant) {
  const uint64_t chaos_seeds = EnvOr("PAXOSCP_SHUFFLE_CHAOS_SEEDS", 3);
  for (uint64_t cs = 0; cs < chaos_seeds; ++cs) {
    SweepSlice(Slice::kChaosCross, 7000 + cs);
  }
}

TEST(RaceShuffleTest, ChaosDaemonSliceShuffleInvariant) {
  const uint64_t chaos_seeds = EnvOr("PAXOSCP_SHUFFLE_CHAOS_SEEDS", 3);
  for (uint64_t cs = 0; cs < chaos_seeds; ++cs) {
    SweepSlice(Slice::kChaosDaemon, 8000 + cs);
  }
}

TEST(RaceShuffleTest, ShufflePreservesSafetyOnWiderChaosSeeds) {
  // Beyond the pinned invariance seeds, run-level invariance is NOT a
  // theorem: with zero jitter, two messages fanned out to the same
  // destination always arrive at the same tick, and when two in-flight
  // transactions contend for the same log position, which prepare lands
  // first decides the winner (chaos seed 7005 under shuffle seed 100 is
  // a minimized example — same attempts, different commit set, both logs
  // self-consistent). That nondeterminism is the protocol's own, so the
  // wide sweep asserts what Paxos actually guarantees under arbitrary
  // same-time delivery order: every run completes, the checker holds,
  // and the attempt count is unchanged.
  const uint64_t chaos_seeds = EnvOr("PAXOSCP_SHUFFLE_SAFETY_CHAOS_SEEDS", 3);
  const uint64_t shuffle_seeds = EnvOr("PAXOSCP_SHUFFLE_SAFETY_SEEDS", 2);
  for (Slice slice : {Slice::kChaosCross, Slice::kChaosDaemon}) {
    const uint64_t chaos_base = slice == Slice::kChaosCross ? 7003 : 8003;
    for (uint64_t cs = 0; cs < chaos_seeds; ++cs) {
      const RunFingerprint baseline = RunSlice(slice, chaos_base + cs, 0);
      for (uint64_t seed = 100; seed < 100 + shuffle_seeds; ++seed) {
        const RunFingerprint shuffled = RunSlice(slice, chaos_base + cs, seed);
        EXPECT_TRUE(shuffled.all_threads_finished)
            << SliceName(slice) << " chaos_seed=" << chaos_base + cs
            << " shuffle_seed=" << seed;
        EXPECT_TRUE(shuffled.checker_ok)
            << SliceName(slice) << " chaos_seed=" << chaos_base + cs
            << " shuffle_seed=" << seed << "\n" << shuffled.Describe();
        EXPECT_EQ(shuffled.attempted, baseline.attempted)
            << SliceName(slice) << " chaos_seed=" << chaos_base + cs
            << " shuffle_seed=" << seed;
      }
    }
  }
}

// Same-time conflicts that cannot affect run outcomes, pinned here so any
// NEW conflict family fails the test below:
//  * "/!paxos/" — acceptor per-position state. Every mutation is a
//    CheckAndWrite CAS inside a retry loop (Algorithm 1's keepTrying), so
//    any interleaving is safe: ballots max-merge and the decide refresh
//    is idempotent. Which proposal WINS a contended slot still depends
//    on arrival order — that is the protocol's own designed-for message
//    race, not schedule-order leakage, and the pinned invariance seeds
//    above are chosen where no contention lands on a tie.
//  * apply path vs versioned reads — "/data/" rows merge-write at
//    timestamp = log position (a merge at-or-below an existing timestamp
//    is a skipped no-op), the "applied" watermark advances monotonically,
//    and readers are pinned to a fixed read_pos, so same-tick apply/read
//    order cannot change what any reader observes.
// The invariance tests above run these exact slices under shuffled ties
// and confirm end-to-end outcomes really are unchanged.
bool BenignUnderShuffle(const std::string& cell) {
  auto has = [&cell](const char* sub) {
    return cell.find(sub) != std::string::npos;
  };
  if (has("/!paxos/")) return true;                    // acceptor CAS state
  if (has("/!applied/") || has("/applied")) return true;  // apply watermark
  if (has("/data/") || has("/d/")) return true;        // MVCC rows
  return false;
}

TEST(RaceShuffleTest, RngQuietSlicesHaveNoRngCellConflicts) {
  // The invariance argument rests on the sweep configs never letting two
  // same-time events share an rng stream. Prove it: the detector with NO
  // suppressions (rng cells armed) must report no rng-cell conflict on any
  // slice — and nothing outside the benign families documented above.
  for (Slice slice :
       {Slice::kSharded, Slice::kChaosCross, Slice::kChaosDaemon}) {
    sim::RaceDetector det;
    const RunFingerprint fp =
        RunSlice(slice, slice == Slice::kSharded ? 0 : 7001, 0,
                 sim::Simulator::kMaxTimeMicros, &det);
    EXPECT_TRUE(fp.checker_ok);
    for (const sim::RaceDetector::Report& r : det.reports()) {
      EXPECT_EQ(r.cell.find("rng"), std::string::npos)
          << SliceName(slice) << ": rng stream shared across a tie:\n"
          << r.Describe();
      EXPECT_TRUE(BenignUnderShuffle(r.cell))
          << SliceName(slice) << ": conflict outside the known-benign "
          << "families (see BenignUnderShuffle):\n" << r.Describe();
    }
  }
}

}  // namespace
}  // namespace paxoscp
