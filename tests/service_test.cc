// TransactionService tests: snapshot reads with catch-up, the learning
// Paxos instance for missed log entries, statelessness (all durable state
// in the key-value store), and multi-row transaction groups.
#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/cluster.h"
#include "sim/coro.h"
#include "txn/service.h"
#include "txn/txn.h"

namespace paxoscp::txn {
namespace {

using core::Cluster;
using core::ClusterConfig;

constexpr char kGroup[] = "g";

ClusterConfig TestConfig(const std::string& code, uint64_t seed = 17) {
  ClusterConfig config = *ClusterConfig::FromCode(code);
  config.seed = seed;
  return config;
}

sim::Task CommitWrite(Session* session, std::string row, std::string attr,
                      std::string value, CommitResult* out) {
  Txn txn = co_await session->Begin(kGroup);
  if (!txn.active()) {
    out->status = txn.begin_status();
    co_return;
  }
  (void)txn.Write(row, attr, value);
  *out = co_await txn.Commit();
}

sim::Task ReadOne(Session* session, std::string row, std::string attr,
                  Result<std::string>* out) {
  Txn txn = co_await session->Begin(kGroup);
  if (!txn.active()) {
    *out = txn.begin_status();
    co_return;
  }
  *out = co_await txn.Read(row, attr);
  (void)co_await txn.Commit();
}

/// Commits `n` sequential writes of "r"/"a" through one session.
sim::Task CommitWrites(Session* session, int n, int* committed) {
  for (int i = 0; i < n; ++i) {
    Txn txn = co_await session->Begin(kGroup);
    if (!txn.active()) continue;
    (void)txn.Write("r", "a", std::to_string(i));
    CommitResult result = co_await txn.Commit();
    if (result.committed) ++*committed;
  }
}

sim::Task DriveLearn(TransactionService* service, LogPos pos, Status* out) {
  *out = co_await service->LearnEntry(kGroup, pos);
}

TEST(ServiceTest, LearnEntryFetchesDecidedValueFromPeers) {
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, "r", {{"a", "0"}}).ok());

  // Commit while DC 2 is offline: it misses the decision.
  cluster.SetDatacenterDown(2, true);
  Session session = cluster.CreateSession(0);
  CommitResult commit;
  CommitWrite(&session, "r", "a", "1", &commit);
  cluster.RunToCompletion();
  ASSERT_TRUE(commit.committed);
  ASSERT_FALSE(cluster.service(2)->GroupLog(kGroup)->HasEntry(1));

  // Recovered DC 2 learns position 1 on demand.
  cluster.SetDatacenterDown(2, false);
  Status learned = Status::Internal("unset");
  DriveLearn(cluster.service(2), 1, &learned);
  cluster.RunToCompletion();
  EXPECT_TRUE(learned.ok()) << learned.ToString();
  EXPECT_TRUE(cluster.service(2)->GroupLog(kGroup)->HasEntry(1));
  EXPECT_GE(cluster.service(2)->learn_instances(), 1u);

  core::Checker checker(&cluster);
  EXPECT_TRUE(checker.CheckAll(kGroup, {}).ok);
}

TEST(ServiceTest, LearnEntryAlreadyKnownIsFreeNoop) {
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, "r", {{"a", "0"}}).ok());
  Session session = cluster.CreateSession(0);
  CommitResult commit;
  CommitWrite(&session, "r", "a", "1", &commit);
  cluster.RunToCompletion();
  ASSERT_TRUE(commit.committed);

  Status learned = Status::Internal("unset");
  DriveLearn(cluster.service(0), 1, &learned);
  cluster.RunToCompletion();
  EXPECT_TRUE(learned.ok());
  EXPECT_EQ(cluster.service(0)->learn_instances(), 0u);
}

TEST(ServiceTest, LearnUndecidedPositionReturnsNotFound) {
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, "r", {{"a", "0"}}).ok());
  Status learned = Status::Internal("unset");
  DriveLearn(cluster.service(0), 1, &learned);
  cluster.RunToCompletion();
  EXPECT_TRUE(learned.IsNotFound()) << learned.ToString();
  // The learner must not have invented a value for the position.
  EXPECT_FALSE(cluster.service(0)->GroupLog(kGroup)->HasEntry(1));
}

TEST(ServiceTest, LearnFailsWithoutQuorum) {
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, "r", {{"a", "0"}}).ok());
  // DC 1 misses the decision...
  cluster.SetDatacenterDown(1, true);
  Session session = cluster.CreateSession(0);
  CommitResult commit;
  CommitWrite(&session, "r", "a", "1", &commit);
  cluster.RunToCompletion();
  ASSERT_TRUE(commit.committed);
  ASSERT_FALSE(cluster.service(1)->GroupLog(kGroup)->HasEntry(1));

  // ...and when it recovers, both peers are gone: no quorum to learn from
  // (its own acceptor alone is not a majority).
  cluster.SetDatacenterDown(1, false);
  cluster.SetDatacenterDown(0, true);
  cluster.SetDatacenterDown(2, true);
  Status learned = Status::Internal("unset");
  DriveLearn(cluster.service(1), 1, &learned);
  cluster.RunToCompletion();
  EXPECT_FALSE(learned.ok()) << learned.ToString();
  EXPECT_FALSE(cluster.service(1)->GroupLog(kGroup)->HasEntry(1));
}

TEST(ServiceTest, DurableStateLivesInTheStoreNotTheService) {
  // The paper's services are stateless processes. Verify the acceptor
  // promise and the leader claim survive through the store alone: a fresh
  // Acceptor object over the same store must observe them.
  Cluster cluster(TestConfig("VV"));
  paxos::Acceptor* acceptor = cluster.service(0)->GroupAcceptor(kGroup);
  ASSERT_TRUE(acceptor->OnPrepare(1, paxos::Ballot{3, 0}).promised);
  ASSERT_TRUE(acceptor->TryClaimLeadership(1));

  wal::WriteAheadLog fresh_log(cluster.store(0), kGroup);
  paxos::Acceptor fresh(cluster.store(0), &fresh_log);
  EXPECT_EQ(fresh.ReadState(1).next_bal, (paxos::Ballot{3, 0}));
  EXPECT_FALSE(fresh.TryClaimLeadership(1));  // claim persisted
  EXPECT_FALSE(fresh.OnPrepare(1, paxos::Ballot{2, 1}).promised);
}

TEST(ServiceTest, MultiRowTransactionGroup) {
  // Transaction groups may span multiple rows (paper §2.1); a transaction
  // updates two rows atomically.
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, "row1", {{"a", "1"}}).ok());
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, "row2", {{"b", "2"}}).ok());

  Session session = cluster.CreateSession(0);
  struct {
    sim::Task operator()(Session* s, CommitResult* out) {
      Txn txn = co_await s->Begin(kGroup);
      if (!txn.active()) co_return;
      Result<std::string> a = co_await txn.Read("row1", "a");
      Result<std::string> b = co_await txn.Read("row2", "b");
      if (!a.ok() || !b.ok()) co_return;
      (void)txn.Write("row1", "a", *b);  // swap the values
      (void)txn.Write("row2", "b", *a);
      *out = co_await txn.Commit();
    }
  } swap_rows;
  CommitResult commit;
  swap_rows(&session, &commit);
  cluster.RunToCompletion();
  ASSERT_TRUE(commit.committed);

  Result<std::string> a = Status::Internal("unset");
  Result<std::string> b = Status::Internal("unset");
  Session r1 = cluster.CreateSession(1);
  ReadOne(&r1, "row1", "a", &a);
  cluster.RunToCompletion();
  Session r2 = cluster.CreateSession(2);
  ReadOne(&r2, "row2", "b", &b);
  cluster.RunToCompletion();
  EXPECT_EQ(*a, "2");
  EXPECT_EQ(*b, "1");

  core::Checker checker(&cluster);
  EXPECT_TRUE(checker.CheckAll(kGroup, {}).ok);
}

TEST(ServiceTest, ReadsServedCounterAdvances) {
  Cluster cluster(TestConfig("VV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, "r", {{"a", "x"}}).ok());
  Result<std::string> value = Status::Internal("unset");
  Session session = cluster.CreateSession(0);
  ReadOne(&session, "r", "a", &value);
  cluster.RunToCompletion();
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(cluster.service(0)->reads_served(), 1u);
  EXPECT_EQ(cluster.service(1)->reads_served(), 0u);
}

TEST(ServiceTest, StaleReplicaBeginServesOldSnapshotSafely) {
  // A begin at a lagging replica returns an old read position; the
  // transaction reads stale data but can never commit a violation — it
  // competes for an already-decided position and gets promoted/aborted.
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, "r", {{"a", "0"}}).ok());

  cluster.SetDatacenterDown(2, true);
  CommitResult first;
  Session s0 = cluster.CreateSession(0);
  CommitWrite(&s0, "r", "a", "fresh", &first);
  cluster.RunToCompletion();
  ASSERT_TRUE(first.committed);
  cluster.SetDatacenterDown(2, false);

  // Client homed at the stale replica writes based on its old snapshot;
  // no read conflict, so CP promotes it to position 2.
  CommitResult second;
  Session s2 = cluster.CreateSession(2);
  CommitWrite(&s2, "r", "b", "later", &second);
  cluster.RunToCompletion();
  EXPECT_TRUE(second.committed) << second.status.ToString();
  EXPECT_GE(second.promotions, 1);

  core::Checker checker(&cluster);
  EXPECT_TRUE(checker.CheckAll(kGroup, {}).ok);
}

// ------------------------------------------------------ background applier

TEST(BackgroundApplierTest, AppliesLogWithoutReads) {
  Cluster cluster(TestConfig("VVV", 37));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, "r", {{"a", "0"}}).ok());
  cluster.service(0)->StartBackgroundApplier(200 * kMillisecond);
  cluster.simulator()->ScheduleAt(30 * kSecond, [&cluster] {
    cluster.service(0)->StopBackgroundApplier();
  });

  int committed = 0;
  Session session = cluster.CreateSession(0);
  CommitWrites(&session, 5, &committed);
  cluster.RunToCompletion();
  ASSERT_EQ(committed, 5);

  // No read ever touched DC 0, yet its data rows are applied.
  wal::WriteAheadLog* log = cluster.service(0)->GroupLog(kGroup);
  EXPECT_EQ(log->AppliedThrough(), log->MaxDecided());
  EXPECT_GT(cluster.service(0)->background_applies(), 0u);
  wal::ItemRead read = log->ReadItem({"r", "a"}, log->MaxDecided());
  EXPECT_EQ(read.value, "4");
}

TEST(BackgroundApplierTest, StopCancelsAlreadyScheduledTick) {
  // Regression: StopBackgroundApplier used to only zero the interval, so
  // the tick already sitting in the simulator's queue still fired once
  // after "stop" — applying and garbage-collecting concurrently with a
  // post-run recovery quiesce. The generation counter must make that
  // stale tick a no-op: after Stop returns, background_applies_ is
  // frozen no matter what is still queued.
  Cluster cluster(TestConfig("VVV", 43));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, "r", {{"a", "0"}}).ok());
  cluster.service(0)->StartBackgroundApplier(200 * kMillisecond);

  uint64_t frozen = 0;
  bool tick_still_queued = false;
  cluster.simulator()->ScheduleAt(30 * kSecond, [&] {
    cluster.service(0)->StopBackgroundApplier();
    frozen = cluster.service(0)->background_applies();
    // The applier's next tick is still sitting in the queue: the whole
    // point is that it must fire as a no-op.
    tick_still_queued = cluster.simulator()->PendingEvents() > 0;
  });

  int committed = 0;
  Session session = cluster.CreateSession(0);
  CommitWrites(&session, 3, &committed);
  cluster.RunToCompletion();
  ASSERT_EQ(committed, 3);
  ASSERT_GT(frozen, 0u);
  EXPECT_TRUE(tick_still_queued);
  EXPECT_EQ(cluster.service(0)->background_applies(), frozen);

  // A restart after stop works (fresh generation) and stops cleanly too.
  uint64_t after_restart = 0;
  cluster.service(0)->StartBackgroundApplier(200 * kMillisecond);
  cluster.simulator()->ScheduleAfter(5 * kSecond, [&] {
    cluster.service(0)->StopBackgroundApplier();
    after_restart = cluster.service(0)->background_applies();
  });
  cluster.RunToCompletion();
  EXPECT_GT(after_restart, frozen);
  EXPECT_EQ(cluster.service(0)->background_applies(), after_restart);
}

TEST(BackgroundApplierTest, GarbageCollectsOldVersions) {
  Cluster cluster(TestConfig("VVV", 41));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, "r", {{"a", "0"}}).ok());
  cluster.service(0)->StartBackgroundApplier(200 * kMillisecond,
                                             /*gc_keep_versions=*/2);
  cluster.simulator()->ScheduleAt(60 * kSecond, [&cluster] {
    cluster.service(0)->StopBackgroundApplier();
  });

  int committed = 0;
  Session session = cluster.CreateSession(0);
  CommitWrites(&session, 10, &committed);
  cluster.RunToCompletion();
  ASSERT_EQ(committed, 10);

  wal::WriteAheadLog* log = cluster.service(0)->GroupLog(kGroup);
  const std::string data_key = log->DataKey("r");
  // Initial version + 10 writes = 11 versions without GC; the collector
  // keeps only the watermark snapshot plus the last two positions.
  EXPECT_LE(cluster.store(0)->VersionCount(data_key), 4u);
  // The latest value is intact.
  EXPECT_EQ(log->ReadItem({"r", "a"}, log->MaxDecided()).value, "9");
}

}  // namespace
}  // namespace paxoscp::txn
