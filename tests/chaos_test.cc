// Chaos / model-checking harness: sweeps many seeded random fault plans
// (datacenter outages, link partitions incl. one-way cuts and bisections,
// loss bursts, service restarts) over real workload runs, and requires the
// full invariant checker (R1, L1-L3, MVSG acyclicity) to pass on every
// explored schedule. Serializability must survive every fault schedule the
// envelope can draw; availability may legitimately dip (that is what the
// unknown/unavailable accounting is for).
//
// Every run is a pure function of its seed: the seed derives the cluster
// shape, the cluster seed, the fault plan, the protocol, and the workload
// seed, so any failure replays bit-identically.
//
// Environment knobs (set by ctest; see CMakeLists.txt):
//   PAXOSCP_CHAOS_SEEDS      number of (seed, plan) runs     (default 25)
//   PAXOSCP_CHAOS_SEED_BASE  first seed of the sweep         (default 1000)
//   PAXOSCP_CHAOS_REPLAY     replay exactly this seed, verbosely
//
// On any violation the harness writes chaos_failure_seed<seed>.txt (seed,
// cluster, protocol, fault plan, checker report) into the working directory
// — CI uploads these as artifacts — and the failure message names the
// replay command.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <string>

#include "core/checker.h"
#include "core/cluster.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "workload/runner.h"

namespace paxoscp {
namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

struct ChaosResult {
  uint64_t seed = 0;
  std::string cluster_code;
  txn::Protocol protocol = txn::Protocol::kPaxosCP;
  fault::FaultPlan plan;
  workload::RunStats stats;
  int unknown_in_log = 0;   // client never learned; txn decided anyway
  int unknown_absent = 0;   // client never learned; txn never decided
  /// Pending prepares left on ANY replica of ANY group after the run (and
  /// its invariant quiesce) finished — the daemon slice requires zero with
  /// the client-side quiesce disabled.
  int pending_after = 0;

  bool ok() const { return stats.check.ok && stats.all_threads_finished; }

  std::string Describe() const {
    std::string out = "seed=" + std::to_string(seed) + " cluster=" +
                      cluster_code + " protocol=" +
                      txn::ProtocolName(protocol) + "\nfault plan:\n" +
                      (plan.events.empty() ? std::string("  (none)\n")
                                           : plan.ToString()) +
                      "checker: " + stats.check.ToString() + "\n";
    return out;
  }
};

/// One chaos run, a pure function of (seed, envelope shaping,
/// max_rounds_per_position). The default round cap means clients outlast
/// every fault episode; a small cap models impatient/crashing clients that
/// give up mid-commit with an unknown outcome.
///
/// `cross` switches the run to a sharded keyspace (2-3 entity groups,
/// >= 25% cross-group transactions committed via 2PC over the per-group
/// logs, D8) with seeded coordinator crashes between prepare and decide —
/// the post-run recovery quiesce must resolve every prepared-but-
/// undecided transaction and the extended checker must prove atomicity +
/// one-copy serializability across the union of the groups.
///
/// `daemon` (implies cross-style workloads) hands healing to the
/// service-side recovery daemon alone (D10): the client-side quiesce is
/// disabled, every replica runs the daemon, the fault envelope adds
/// duplicate-delivery and reorder bursts, and coordinator crashes are
/// drawn more aggressively. All daemon-mode draws happen AFTER the
/// original draw sequence, so historical (seed, mode) runs still replay
/// bit-identically.
ChaosResult RunChaos(uint64_t seed, const fault::PlanEnvelope* shape = nullptr,
                     int max_rounds_per_position = 32, bool cross = false,
                     bool daemon = false) {
  Rng rng(seed ^ 0xc4a05f0dULL);
  ChaosResult result;
  result.seed = seed;

  static const char* kCodes[] = {"VVV", "VVVO", "VVVOC"};
  result.cluster_code = kCodes[rng.Uniform(3)];
  core::ClusterConfig config =
      *core::ClusterConfig::FromCode(result.cluster_code);
  config.seed = rng.Next();
  core::Cluster cluster(config);

  fault::PlanEnvelope envelope;
  if (shape != nullptr) envelope = *shape;
  envelope.num_datacenters = config.num_datacenters();
  if (daemon) {
    envelope.allow_duplicate_burst = true;
    envelope.allow_reorder_burst = true;
  }
  fault::RandomPlanGenerator generator(envelope, rng.Next());
  result.plan = generator.Generate();
  cluster.ApplyFaultPlan(result.plan);

  result.protocol = (!cross && seed % 2 == 0) ? txn::Protocol::kBasicPaxos
                                              : txn::Protocol::kPaxosCP;
  workload::RunnerConfig runner;
  runner.workload.num_attributes = 40;
  runner.total_txns = 24;
  runner.num_threads = 3;
  runner.stagger = 200 * kMillisecond;
  runner.target_rate_tps = 1.0;
  runner.client.protocol = result.protocol;
  runner.client.max_rounds_per_position = max_rounds_per_position;
  runner.seed = rng.Next();
  runner.availability_window = 2 * kSecond;  // exercise window accounting
  if (cross) {
    runner.workload.num_groups = 2 + static_cast<int>(rng.Uniform(2));
    runner.workload.cross_fraction = 0.25 + rng.NextDouble() * 0.25;
    runner.workload.groups_per_cross_txn = 2;
    // A third of the cross runs use a crashing coordinator: it abandons
    // the transaction between prepare and decide (after 1 or 2 prepares
    // landed), leaving the 2PC window for recovery to close — under
    // whatever outages/partitions the fault plan throws at it. Most runs
    // keep the default parallel fan-out (D9), so those crashes land in
    // partial-parallel-prepare windows (every leg in flight when the gate
    // trips); a quarter pin the sequential coordinator to keep the
    // one-group-at-a-time windows covered too.
    if (rng.Uniform(3) == 0) {
      runner.client.crash_after_prepares = 1 + static_cast<int>(rng.Uniform(2));
    }
    runner.client.parallel_commit = seed % 4 != 3;
  }
  if (daemon) {
    runner.quiesce_recovery = false;
    runner.recovery_timer = 1 * kSecond;
    // More crashing coordinators than the plain cross slice (the daemon is
    // what's under test); drawn after all original draws so the plain
    // slices' sequences are untouched.
    if (runner.client.crash_after_prepares < 0 && rng.Uniform(2) == 0) {
      runner.client.crash_after_prepares = 1 + static_cast<int>(rng.Uniform(2));
    }
  }
  result.stats = workload::RunExperiment(&cluster, runner);
  // Count pending prepares surviving on any replica of any group: with the
  // quiesce disabled, only the daemon can have cleared them.
  for (int g = 0; g < std::max(runner.workload.num_groups, 1); ++g) {
    const std::string name = workload::Generator::GroupName(runner.workload, g);
    for (DcId dc = 0; dc < config.num_datacenters(); ++dc) {
      result.pending_after += static_cast<int>(
          cluster.service(dc)->GroupLog(name)->PendingPrepares().size());
    }
  }

  // Classify unknown outcomes (txn::TxnOutcome::kUnknownOutcome — clients
  // that crashed/timed out mid-commit, recorded by the runner via
  // ClassifyCommit): the checker accepts either fate; the sweep
  // additionally proves both fates are actually reached. This is also why
  // Session::RunTransaction never retries kUnknownOutcome — the
  // in-log fate below would become a double commit.
  core::Checker checker(&cluster);
  std::set<TxnId> in_log;
  const int num_groups = std::max(runner.workload.num_groups, 1);
  for (int g = 0; g < num_groups; ++g) {
    std::map<LogPos, wal::LogEntry> global_log;
    (void)checker.CheckReplication(
        workload::Generator::GroupName(runner.workload, g), &global_log);
    for (const auto& [pos, entry] : global_log) {
      for (const wal::TxnRecord& t : entry.txns) in_log.insert(t.id);
    }
  }
  for (const core::ClientOutcome& outcome : result.stats.outcomes) {
    if (!outcome.unknown) continue;
    if (in_log.count(outcome.id) > 0) {
      ++result.unknown_in_log;
    } else {
      ++result.unknown_absent;
    }
  }
  // PAXOSCP_CHAOS_DUMP=1 with PAXOSCP_CHAOS_REPLAY dumps every group's
  // global log records and the cross outcomes — the raw material for
  // diagnosing a checker violation (this is how the prepare-vs-decide
  // id confusion fixed in ContainsRecord was found).
  if (std::getenv("PAXOSCP_CHAOS_DUMP") != nullptr) {
    for (int g = 0; g < num_groups; ++g) {
      const std::string name =
          workload::Generator::GroupName(runner.workload, g);
      std::map<LogPos, wal::LogEntry> global_log;
      (void)checker.CheckReplication(name, &global_log);
      std::printf("-- group %s --\n", name.c_str());
      for (const auto& [pos, entry] : global_log) {
        for (const wal::TxnRecord& t : entry.txns) {
          std::printf("  pos=%llu kind=%d id=%s commit=%d origin=%d\n",
                      static_cast<unsigned long long>(pos),
                      static_cast<int>(t.kind), TxnIdToString(t.id).c_str(),
                      t.commit_decision ? 1 : 0, static_cast<int>(t.origin_dc));
        }
      }
    }
    for (const core::ClientOutcome& o : result.stats.outcomes) {
      if (o.groups.empty()) continue;
      std::printf("outcome id=%s committed=%d unknown=%d groups=%zu\n",
                  TxnIdToString(o.id).c_str(), o.committed ? 1 : 0,
                  o.unknown ? 1 : 0, o.groups.size());
    }
  }
  return result;
}

void WriteFailureArtifact(const ChaosResult& result) {
  const std::string path =
      "chaos_failure_seed" + std::to_string(result.seed) + ".txt";
  std::ofstream f(path);
  f << result.Describe();
  f << "replay: PAXOSCP_CHAOS_REPLAY=" << result.seed << " ./chaos_test\n";
  std::printf("wrote %s\n", path.c_str());
}

TEST(ChaosSweepTest, RandomFaultPlansPreserveSerializability) {
  const uint64_t replay = EnvOr("PAXOSCP_CHAOS_REPLAY", 0);
  const uint64_t base = EnvOr("PAXOSCP_CHAOS_SEED_BASE", 1000);
  const uint64_t count = replay != 0 ? 1 : EnvOr("PAXOSCP_CHAOS_SEEDS", 25);

  int total_committed = 0, total_unavailable = 0, plans_with_faults = 0;
  int unknown_in_log = 0, unknown_absent = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t seed = replay != 0 ? replay : base + i;
    const ChaosResult result = RunChaos(seed);
    if (replay != 0) std::printf("%s", result.Describe().c_str());
    if (!result.ok()) {
      WriteFailureArtifact(result);
      ADD_FAILURE() << "chaos run violated invariants\n"
                    << result.Describe()
                    << "replay with: PAXOSCP_CHAOS_REPLAY=" << seed
                    << " ./chaos_test";
      continue;
    }
    total_committed += result.stats.committed + result.stats.read_only;
    total_unavailable += result.stats.failed;
    if (!result.plan.events.empty()) ++plans_with_faults;
    unknown_in_log += result.unknown_in_log;
    unknown_absent += result.unknown_absent;
  }
  // The sweep must actually exercise faults and still make progress.
  EXPECT_GT(plans_with_faults, 0);
  EXPECT_GT(total_committed, 0);
  std::printf(
      "chaos sweep: %llu runs (seeds %llu..%llu), %d with faults, "
      "%d commits, %d unavailable, unknown outcomes: %d in log / %d absent\n",
      static_cast<unsigned long long>(count),
      static_cast<unsigned long long>(replay != 0 ? replay : base),
      static_cast<unsigned long long>(replay != 0 ? replay
                                                  : base + count - 1),
      plans_with_faults, total_committed, total_unavailable, unknown_in_log,
      unknown_absent);
}

TEST(ChaosSweepTest, AnySeedReplaysBitIdentically) {
  const uint64_t seed = EnvOr("PAXOSCP_CHAOS_SEED_BASE", 1000) + 3;
  const ChaosResult first = RunChaos(seed);
  const ChaosResult second = RunChaos(seed);
  EXPECT_EQ(first.plan.ToString(), second.plan.ToString());
  EXPECT_EQ(first.cluster_code, second.cluster_code);
  EXPECT_EQ(first.stats.attempted, second.stats.attempted);
  EXPECT_EQ(first.stats.committed, second.stats.committed);
  EXPECT_EQ(first.stats.aborted, second.stats.aborted);
  EXPECT_EQ(first.stats.failed, second.stats.failed);
  EXPECT_EQ(first.stats.messages_sent, second.stats.messages_sent);
  EXPECT_EQ(first.stats.virtual_duration, second.stats.virtual_duration);
  EXPECT_EQ(first.unknown_in_log, second.unknown_in_log);
  EXPECT_EQ(first.unknown_absent, second.unknown_absent);
}

// Cross-group chaos (D8): sharded keyspaces with >= 25% cross-group
// transactions, 2PC over the per-group Paxos-CP logs, under the same
// seeded fault plans — datacenter outages and partitions landing anywhere
// in the 2PC window (including between a participant's prepare and the
// decide) — plus seeded coordinator crashes that abandon the transaction
// mid-2PC. The post-run recovery quiesce resolves every prepared-but-
// undecided transaction, and the extended checker must prove cross-group
// atomicity and global one-copy serializability on every seed.
TEST(ChaosSweepTest, CrossGroupPlansPreserveGlobalSerializability) {
  const uint64_t replay = EnvOr("PAXOSCP_CHAOS_REPLAY", 0);
  const uint64_t base = EnvOr("PAXOSCP_CHAOS_SEED_BASE", 1000) + 500000;
  const uint64_t count =
      replay != 0 ? 1 : EnvOr("PAXOSCP_CHAOS_CROSS_SEEDS", 15);

  int cross_committed = 0, cross_unknown = 0, plans_with_faults = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t seed = replay != 0 ? replay : base + i;
    const ChaosResult result =
        RunChaos(seed, nullptr, /*max_rounds=*/32, /*cross=*/true);
    if (replay != 0) std::printf("%s", result.Describe().c_str());
    if (!result.ok()) {
      WriteFailureArtifact(result);
      ADD_FAILURE() << "cross-group chaos run violated invariants\n"
                    << result.Describe()
                    << "replay with: PAXOSCP_CHAOS_REPLAY=" << seed
                    << " ./chaos_test";
      continue;
    }
    cross_committed += result.stats.cross_committed;
    cross_unknown += result.stats.cross_unknown;
    if (!result.plan.events.empty()) ++plans_with_faults;
  }
  // The sweep must exercise faults, commit cross-group transactions, and
  // actually hit the coordinator-crash window (unknown cross outcomes).
  // Aggregate shape assertions only make sense over a sweep — a
  // single-seed replay (PAXOSCP_CHAOS_REPLAY) checks invariants only.
  if (replay == 0) {
    EXPECT_GT(plans_with_faults, 0);
    EXPECT_GT(cross_committed, 0);
    EXPECT_GT(cross_unknown, 0)
        << "no coordinator crash between prepare and decide was exercised";
  }
  std::printf(
      "cross chaos sweep: %llu runs, %d with faults, %d cross commits, "
      "%d coordinator crashes recovered\n",
      static_cast<unsigned long long>(count), plans_with_faults,
      cross_committed, cross_unknown);
}

// Self-healing slice (D10): the client-side quiesce is OFF, so the only
// thing that can resolve a crashed coordinator's pending prepare is the
// service-side recovery daemon — under fault plans that now also duplicate
// and reorder deliveries. Every seed must end with ZERO pending prepares
// on every replica of every group, a green extended checker, and (being a
// pure function of the seed) a bit-identical replay.
TEST(ChaosSweepTest, DaemonAloneHealsPendingPrepares) {
  const uint64_t replay = EnvOr("PAXOSCP_CHAOS_REPLAY", 0);
  const uint64_t base = EnvOr("PAXOSCP_CHAOS_SEED_BASE", 1000) + 900000;
  const uint64_t count =
      replay != 0 ? 1 : EnvOr("PAXOSCP_CHAOS_RECOVERY_SEEDS", 10);

  uint64_t recoveries_decided = 0, recoveries_forced = 0;
  int cross_committed = 0, plans_with_faults = 0, delivery_fault_plans = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t seed = replay != 0 ? replay : base + i;
    const ChaosResult result = RunChaos(seed, nullptr, /*max_rounds=*/32,
                                        /*cross=*/true, /*daemon=*/true);
    if (replay != 0) std::printf("%s", result.Describe().c_str());
    if (!result.ok() || result.pending_after != 0) {
      WriteFailureArtifact(result);
      ADD_FAILURE() << "daemon chaos run violated invariants ("
                    << result.pending_after
                    << " pending prepares survived)\n"
                    << result.Describe()
                    << "replay with: PAXOSCP_CHAOS_REPLAY=" << seed
                    << " ./chaos_test";
      continue;
    }
    recoveries_decided += result.stats.recoveries_decided;
    recoveries_forced += result.stats.recoveries_forced_abort;
    cross_committed += result.stats.cross_committed;
    if (!result.plan.events.empty()) ++plans_with_faults;
    for (const fault::FaultEvent& e : result.plan.events) {
      if (e.kind == fault::FaultKind::kDuplicateBurst ||
          e.kind == fault::FaultKind::kReorderBurst) {
        ++delivery_fault_plans;
        break;
      }
    }
  }
  if (replay == 0) {
    EXPECT_GT(plans_with_faults, 0);
    EXPECT_GT(delivery_fault_plans, 0)
        << "no plan drew a duplicate/reorder burst";
    EXPECT_GT(cross_committed, 0);
    EXPECT_GT(recoveries_decided, 0u)
        << "the daemon never actually recovered a transaction";

    // Replay determinism with the daemon + delivery faults in play: the
    // recovery timers are hash-derived and the fault randomness lives on
    // its own stream, so one seed run twice is bit-identical.
    const ChaosResult first = RunChaos(base, nullptr, 32, true, true);
    const ChaosResult second = RunChaos(base, nullptr, 32, true, true);
    EXPECT_EQ(first.plan.ToString(), second.plan.ToString());
    EXPECT_EQ(first.stats.attempted, second.stats.attempted);
    EXPECT_EQ(first.stats.committed, second.stats.committed);
    EXPECT_EQ(first.stats.messages_sent, second.stats.messages_sent);
    EXPECT_EQ(first.stats.virtual_duration, second.stats.virtual_duration);
    EXPECT_EQ(first.stats.recoveries_started, second.stats.recoveries_started);
    EXPECT_EQ(first.stats.recoveries_decided, second.stats.recoveries_decided);
    EXPECT_EQ(first.stats.max_safe_read_pin, second.stats.max_safe_read_pin);
    EXPECT_EQ(first.pending_after, second.pending_after);
  }
  std::printf(
      "daemon chaos sweep: %llu runs, %d with faults (%d with delivery "
      "faults), %d cross commits, %llu recoveries decided (%llu forced "
      "aborts)\n",
      static_cast<unsigned long long>(count), plans_with_faults,
      delivery_fault_plans, cross_committed,
      static_cast<unsigned long long>(recoveries_decided),
      static_cast<unsigned long long>(recoveries_forced));
}

// A crashed/timed-out client's transaction may legitimately land in the log
// (the cohort decided it, the client just never heard) or vanish. Under a
// hostile envelope — long response-eating loss bursts and outages — the
// sweep must reach BOTH fates, or the checker's unknown path is untested.
TEST(ChaosSweepTest, UnknownOutcomesReachBothFates) {
  fault::PlanEnvelope hostile;
  hostile.first_fault = 500 * kMillisecond;
  hostile.horizon = 10 * kSecond;
  hostile.min_episodes = 3;
  hostile.max_episodes = 6;
  hostile.min_duration = 2 * kSecond;
  hostile.max_duration = 6 * kSecond;
  hostile.min_heal_gap = 200 * kMillisecond;
  hostile.min_loss_burst = 0.6;
  hostile.max_loss_burst = 0.95;

  int in_log = 0, absent = 0;
  uint64_t seeds_used = 0;
  for (uint64_t seed = 50000; seed < 50080; ++seed) {
    ++seeds_used;
    // Round cap 2: a client that cannot finish within two prepare rounds
    // walks away not knowing its fate — the acceptors may have decided it.
    const ChaosResult result = RunChaos(seed, &hostile, /*max_rounds=*/2);
    ASSERT_TRUE(result.ok()) << result.Describe();
    in_log += result.unknown_in_log;
    absent += result.unknown_absent;
    if (in_log > 0 && absent > 0) break;  // both fates reached
  }
  EXPECT_GT(in_log, 0) << "no unknown-but-decided transaction in "
                       << seeds_used << " hostile runs";
  EXPECT_GT(absent, 0) << "no unknown-and-undecided transaction in "
                       << seeds_used << " hostile runs";
}

}  // namespace
}  // namespace paxoscp
