// Fixture suite for the schedule-order race detector (design note D12).
//
// Two halves:
//  * Conflict detection — known-racy fixtures must be flagged with the
//    right cell name and creation-site provenance; race-free fixtures
//    (happens-before via parent-spawn and promise-completion edges,
//    distinct times, read-read sharing, suppressions) must come back
//    clean. A real sharded workload runs under the detector and must be
//    race-free under the documented suppressions.
//  * Tie-shuffle — the seeded same-time permutation must be deterministic
//    per seed, identity at seed 0, time-respecting, horizon-bounded, and
//    switchable mid-run.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/cluster.h"
#include "kvstore/store.h"
#include "sim/coro.h"
#include "sim/race_detector.h"
#include "sim/simulator.h"
#include "workload/runner.h"

namespace paxoscp::sim {
namespace {

using race::AccessKind;

void RecordWrite(const char* cell) {
  if (race::Active()) race::Record(AccessKind::kWrite, {cell});
}

void RecordRead(const char* cell) {
  if (race::Active()) race::Record(AccessKind::kRead, {cell});
}

// --- conflict detection ----------------------------------------------------

TEST(RaceDetectorTest, WriteWriteSameTimeFlagged) {
  Simulator sim;
  RaceDetector det;
  sim.AttachRaceDetector(&det);
  sim.ScheduleAt(10, [] { RecordWrite("x"); }, "writer-a");
  sim.ScheduleAt(10, [] { RecordWrite("x"); }, "writer-b");
  sim.Run();
  det.Finalize();
  ASSERT_EQ(det.reports().size(), 1u) << "write-write tie must be flagged";
  const RaceDetector::Report& r = det.reports()[0];
  EXPECT_EQ(r.cell, "x");
  EXPECT_EQ(r.time, 10);
  EXPECT_EQ(r.tag_first, "writer-a");
  EXPECT_EQ(r.tag_second, "writer-b");
  EXPECT_EQ(r.mask_first, RaceDetector::kWriteBit);
  EXPECT_EQ(r.mask_second, RaceDetector::kWriteBit);
  EXPECT_LT(r.seq_first, r.seq_second);
  EXPECT_NE(r.Describe().find("writer-a"), std::string::npos);
}

TEST(RaceDetectorTest, ReadWriteSameTimeFlagged) {
  Simulator sim;
  RaceDetector det;
  sim.AttachRaceDetector(&det);
  sim.ScheduleAt(5, [] { RecordRead("y"); }, "reader");
  sim.ScheduleAt(5, [] { RecordWrite("y"); }, "writer");
  sim.Run();
  det.Finalize();
  ASSERT_EQ(det.reports().size(), 1u);
  EXPECT_EQ(det.reports()[0].mask_first, RaceDetector::kReadBit);
  EXPECT_EQ(det.reports()[0].mask_second, RaceDetector::kWriteBit);
}

TEST(RaceDetectorTest, ReadReadSameTimeClean) {
  Simulator sim;
  RaceDetector det;
  sim.AttachRaceDetector(&det);
  sim.ScheduleAt(5, [] { RecordRead("y"); });
  sim.ScheduleAt(5, [] { RecordRead("y"); });
  sim.Run();
  det.Finalize();
  EXPECT_TRUE(det.reports().empty());
}

TEST(RaceDetectorTest, DifferentTimesClean) {
  Simulator sim;
  RaceDetector det;
  sim.AttachRaceDetector(&det);
  sim.ScheduleAt(5, [] { RecordWrite("z"); });
  sim.ScheduleAt(6, [] { RecordWrite("z"); });
  sim.Run();
  det.Finalize();
  EXPECT_TRUE(det.reports().empty()) << "time-ordered events never conflict";
}

TEST(RaceDetectorTest, DistinctCellsClean) {
  Simulator sim;
  RaceDetector det;
  sim.AttachRaceDetector(&det);
  sim.ScheduleAt(5, [] { RecordWrite("a"); });
  sim.ScheduleAt(5, [] { RecordWrite("b"); });
  sim.Run();
  det.Finalize();
  EXPECT_TRUE(det.reports().empty());
}

TEST(RaceDetectorTest, ParentChildEdgeClean) {
  // An event spawned during another's execution can never run before it,
  // so parent and child writing the same cell at the same timestamp is
  // ordered, not racy.
  Simulator sim;
  RaceDetector det;
  sim.AttachRaceDetector(&det);
  sim.ScheduleAt(10, [&sim] {
    RecordWrite("pc");
    sim.ScheduleAfter(0, [] { RecordWrite("pc"); }, "child");
  }, "parent");
  sim.Run();
  det.Finalize();
  EXPECT_TRUE(det.reports().empty()) << (det.reports().empty()
                                             ? ""
                                             : det.reports()[0].Describe());
}

TEST(RaceDetectorTest, TransitiveAncestorClean) {
  // Grandparent -> parent -> child: the closure must order grandparent
  // against child even though no direct edge links them.
  Simulator sim;
  RaceDetector det;
  sim.AttachRaceDetector(&det);
  sim.ScheduleAt(10, [&sim] {
    RecordWrite("gc");
    sim.ScheduleAfter(0, [&sim] {
      sim.ScheduleAfter(0, [] { RecordWrite("gc"); }, "grandchild");
    }, "middle");
  }, "grandparent");
  sim.Run();
  det.Finalize();
  EXPECT_TRUE(det.reports().empty()) << (det.reports().empty()
                                             ? ""
                                             : det.reports()[0].Describe());
}

TEST(RaceDetectorTest, SiblingsOfCommonParentStillFlagged) {
  // Two children of the same parent have no order between EACH OTHER.
  Simulator sim;
  RaceDetector det;
  sim.AttachRaceDetector(&det);
  sim.ScheduleAt(10, [&sim] {
    sim.ScheduleAfter(0, [] { RecordWrite("sib"); }, "child-a");
    sim.ScheduleAfter(0, [] { RecordWrite("sib"); }, "child-b");
  }, "parent");
  sim.Run();
  det.Finalize();
  ASSERT_EQ(det.reports().size(), 1u);
  EXPECT_EQ(det.reports()[0].tag_first, "child-a");
  EXPECT_EQ(det.reports()[0].tag_second, "child-b");
}

Task WriteThenAwait(Future<int> f) {
  RecordWrite("promise-cell");
  (void)co_await std::move(f);
}

TEST(RaceDetectorTest, PromiseCompletionEdgeClean) {
  // Event A starts a coroutine that writes the cell and suspends on a
  // future; sibling event B (no parent/child relation to A) completes the
  // promise, and the scheduled resume runs at the same timestamp. The
  // suspend-event -> resume-event edge contributed by the coroutine layer
  // is what orders A against the resume; without it this fixture would be
  // flagged as A-vs-resume.
  Simulator sim;
  RaceDetector det;
  sim.AttachRaceDetector(&det);
  Promise<int> promise(&sim);
  sim.ScheduleAt(10, [&sim, &promise] {
    (void)sim;
    WriteThenAwait(promise.GetFuture());
  }, "suspender");
  sim.ScheduleAt(10, [&promise] {
    promise.Set(1);
  }, "completer");
  sim.Run();
  det.Finalize();
  EXPECT_TRUE(det.reports().empty()) << (det.reports().empty()
                                             ? ""
                                             : det.reports()[0].Describe());
}

Task AwaitThenWrite(Future<int> f) {
  (void)co_await std::move(f);
  RecordWrite("resume-cell");
}

TEST(RaceDetectorTest, ResumeVsUnrelatedSiblingFlagged) {
  // The resumed continuation is ordered after its suspender and its
  // completer — but NOT against an unrelated third event at the same time.
  Simulator sim;
  RaceDetector det;
  sim.AttachRaceDetector(&det);
  Promise<int> promise(&sim);
  sim.ScheduleAt(10, [&promise] {
    AwaitThenWrite(promise.GetFuture());
  }, "suspender");
  sim.ScheduleAt(10, [&promise] { promise.Set(1); }, "completer");
  sim.ScheduleAt(10, [] { RecordWrite("resume-cell"); }, "bystander");
  sim.Run();
  det.Finalize();
  ASSERT_EQ(det.reports().size(), 1u);
  EXPECT_EQ(det.reports()[0].tag_first, "bystander");
  EXPECT_EQ(det.reports()[0].tag_second, "future/resume");
}

TEST(RaceDetectorTest, SuppressionFiltersByPrefix) {
  Simulator sim;
  RaceDetector det;
  det.SuppressCellPrefix("noisy/");
  sim.AttachRaceDetector(&det);
  sim.ScheduleAt(3, [] {
    RecordWrite("noisy/counter");
    RecordWrite("quiet/state");
  });
  sim.ScheduleAt(3, [] {
    RecordWrite("noisy/counter");
    RecordWrite("quiet/state");
  });
  sim.Run();
  det.Finalize();
  ASSERT_EQ(det.reports().size(), 1u);
  EXPECT_EQ(det.reports()[0].cell, "quiet/state");
}

TEST(RaceDetectorTest, DuplicateProvenancePairsDeduped) {
  // One report per (cell, tag, tag) provenance pair, not one per dynamic
  // occurrence: 8 racy pairs with identical provenance yield one report.
  Simulator sim;
  RaceDetector det;
  sim.AttachRaceDetector(&det);
  for (int t = 1; t <= 8; ++t) {
    sim.ScheduleAt(t, [] { RecordWrite("dup"); }, "left");
    sim.ScheduleAt(t, [] { RecordWrite("dup"); }, "right");
  }
  sim.Run();
  det.Finalize();
  EXPECT_EQ(det.reports().size(), 1u);
}

TEST(RaceDetectorTest, UntaggedEventsReportSeqOnly) {
  Simulator sim;
  RaceDetector det;
  sim.AttachRaceDetector(&det);
  sim.ScheduleAt(2, [] { RecordWrite("u"); });
  sim.ScheduleAt(2, [] { RecordWrite("u"); });
  sim.Run();
  det.Finalize();
  ASSERT_EQ(det.reports().size(), 1u);
  EXPECT_FALSE(det.reports()[0].Describe().empty());
}

TEST(RaceDetectorTest, DetachedHooksInert) {
  // Without a detector attached, Active() is false inside events and the
  // hook sites never construct cell names.
  Simulator sim;
  bool saw_active = false;
  sim.ScheduleAt(1, [&saw_active] { saw_active = race::Active(); });
  sim.Run();
  EXPECT_FALSE(saw_active);
}

TEST(RaceDetectorTest, KvStoreCellNamesCarryInstanceAndKey) {
  Simulator sim;
  RaceDetector det;
  sim.AttachRaceDetector(&det);
  kvstore::MultiVersionStore store;
  sim.ScheduleAt(4, [&store] {
    (void)store.Write("k", {{"a", "1"}});
  }, "writer-a");
  sim.ScheduleAt(4, [&store] {
    (void)store.Write("k", {{"a", "2"}});
  }, "writer-b");
  sim.Run();
  det.Finalize();
  ASSERT_EQ(det.reports().size(), 1u);
  const std::string expect =
      "kv/" + std::to_string(store.instance_id()) + "/k";
  EXPECT_EQ(det.reports()[0].cell, expect);
}

// --- real workload under the detector --------------------------------------

/// Runs the fixed-seed sharded (cross-group, 2PC) workload with a detector
/// attached and returns the reports. Jitter and loss stay at the cluster
/// defaults — the detector orders draws via the net/rng cells, so this is
/// where genuinely unordered same-time schedule pairs surface.
std::vector<RaceDetector::Report> RunShardedUnderDetector(
    const std::vector<std::string>& suppressions) {
  core::ClusterConfig config = *core::ClusterConfig::FromCode("VVV");
  config.seed = 4242;
  core::Cluster cluster(config);
  RaceDetector det;
  for (const std::string& p : suppressions) det.SuppressCellPrefix(p);
  cluster.simulator()->AttachRaceDetector(&det);

  workload::RunnerConfig runner;
  runner.workload.num_attributes = 10;
  runner.workload.num_groups = 2;
  runner.workload.cross_fraction = 0.3;
  runner.workload.groups_per_cross_txn = 2;
  runner.total_txns = 16;
  runner.num_threads = 2;
  runner.stagger = 200 * kMillisecond;
  runner.seed = 99;
  const workload::RunStats stats = workload::RunExperiment(&cluster, runner);
  EXPECT_TRUE(stats.check.ok) << stats.check.ToString();
  det.Finalize();
  return det.reports();
}

TEST(RaceDetectorWorkloadTest, ShardedWorkloadRaceFreeUnderSuppressions) {
  // The documented suppression set (design note D12):
  //  * net/rng, net/fault-rng — the shared draw streams: same-time draw
  //    order shifts delays/faults but every (seed, config) run is still a
  //    pure function of the schedule; shuffle-sweep configs silence these
  //    by construction (jitter = loss = 0) and the jittery slices document
  //    them as the expected divergence source.
  std::vector<RaceDetector::Report> reports =
      RunShardedUnderDetector({"net/rng", "net/fault-rng"});
  std::string all;
  for (const RaceDetector::Report& r : reports) all += r.Describe() + "\n";
  EXPECT_TRUE(reports.empty()) << reports.size() << " race report(s):\n"
                               << all;
}

// --- tie-shuffle -----------------------------------------------------------

std::vector<int> RunTies(uint64_t shuffle_seed, int n, TimeMicros at = 50,
                         TimeMicros horizon = Simulator::kMaxTimeMicros) {
  Simulator sim;
  if (shuffle_seed != 0) sim.SetTieShuffle(shuffle_seed, horizon);
  std::vector<int> order;
  for (int i = 0; i < n; ++i) {
    sim.ScheduleAt(at, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  return order;
}

TEST(TieShuffleTest, SeedZeroIsFifo) {
  const std::vector<int> order = RunTies(0, 12);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(order[i], i);
}

TEST(TieShuffleTest, ShuffleIsDeterministicPerSeed) {
  EXPECT_EQ(RunTies(7, 16), RunTies(7, 16));
  EXPECT_EQ(RunTies(1234567, 16), RunTies(1234567, 16));
}

TEST(TieShuffleTest, SomeSeedPermutesTies) {
  // At least one of a handful of seeds must produce a non-FIFO order over
  // 16 ties (all-identity across all seeds would mean the key is dead).
  bool permuted = false;
  for (uint64_t seed = 1; seed <= 5 && !permuted; ++seed) {
    const std::vector<int> order = RunTies(seed, 16);
    for (int i = 0; i < 16; ++i) {
      if (order[i] != i) permuted = true;
    }
  }
  EXPECT_TRUE(permuted);
}

TEST(TieShuffleTest, DistinctSeedsGiveDistinctPermutations) {
  bool differ = false;
  const std::vector<int> base = RunTies(1, 16);
  for (uint64_t seed = 2; seed <= 6 && !differ; ++seed) {
    if (RunTies(seed, 16) != base) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(TieShuffleTest, TimeOrderAlwaysRespected) {
  Simulator sim;
  sim.SetTieShuffle(99);
  std::vector<int> order;
  sim.ScheduleAt(30, [&order] { order.push_back(3); });
  sim.ScheduleAt(10, [&order] { order.push_back(1); });
  sim.ScheduleAt(20, [&order] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TieShuffleTest, PermutationVariesByTimestamp) {
  // The per-time permutation must differ across timestamps for the same
  // seed (the time is mixed into the key, so ties at t=50 and ties at
  // t=60 draw independent permutations). Find a seed where they differ.
  bool differ = false;
  for (uint64_t seed = 1; seed <= 8 && !differ; ++seed) {
    if (RunTies(seed, 12, 50) != RunTies(seed, 12, 60)) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(TieShuffleTest, HorizonBoundsShuffling) {
  // Ties at times >= horizon stay FIFO — the lever the divergence
  // minimizer uses to bisect for the first diverging timestamp.
  Simulator sim;
  sim.SetTieShuffle(7, /*horizon=*/100);
  std::vector<int> before, after;
  for (int i = 0; i < 12; ++i) {
    sim.ScheduleAt(150, [&after, i] { after.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 12; ++i) EXPECT_EQ(after[i], i);
}

TEST(TieShuffleTest, MidRunEnableReheapifies) {
  // Turning shuffling on from inside an event re-sorts already-queued
  // ties: with an identical schedule structure (same seqs), the mid-run
  // switch yields the same order as an always-on shuffle.
  std::vector<int> reference;
  {
    Simulator sim;
    sim.SetTieShuffle(7);
    sim.ScheduleAt(1, [] {});  // seq placeholder matching the switch event
    for (int i = 0; i < 10; ++i) {
      sim.ScheduleAt(50, [&reference, i] { reference.push_back(i); });
    }
    sim.Run();
  }
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(1, [&sim] { sim.SetTieShuffle(7); });
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(50, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_NE(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_EQ(order, reference);
}

TEST(TieShuffleTest, ShuffleSeedAccessorReflectsState) {
  Simulator sim;
  EXPECT_EQ(sim.tie_shuffle_seed(), 0u);
  sim.SetTieShuffle(41);
  EXPECT_EQ(sim.tie_shuffle_seed(), 41u);
}

}  // namespace
}  // namespace paxoscp::sim
