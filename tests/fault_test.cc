// Unit tests for the fault-injection subsystem (src/fault/): plan
// normalization, the random generator's envelope guarantees (matched
// heal events, concurrency cap, heal gaps, determinism), the injector's
// timing, and Transaction Service restarts through the cluster.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "core/checker.h"
#include "core/cluster.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "net/network.h"
#include "sim/coro.h"
#include "txn/txn.h"
#include "workload/runner.h"

namespace paxoscp::fault {
namespace {

PlanEnvelope SmallEnvelope(int dcs = 3) {
  PlanEnvelope envelope;
  envelope.num_datacenters = dcs;
  envelope.first_fault = 1 * kSecond;
  envelope.horizon = 10 * kSecond;
  envelope.min_episodes = 2;
  envelope.max_episodes = 4;
  return envelope;
}

TEST(FaultPlanTest, NormalizeSortsByTimeStably) {
  FaultPlan plan;
  plan.events.push_back({5 * kSecond, FaultKind::kDatacenterUp, 1, kNoDc, 0});
  plan.events.push_back({1 * kSecond, FaultKind::kDatacenterDown, 1, kNoDc, 0});
  plan.events.push_back({1 * kSecond, FaultKind::kLossBurst, kNoDc, kNoDc, .2});
  plan.Normalize();
  EXPECT_EQ(plan.events[0].kind, FaultKind::kDatacenterDown);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kLossBurst);  // stable at t=1s
  EXPECT_EQ(plan.events[2].kind, FaultKind::kDatacenterUp);
  EXPECT_EQ(plan.Horizon(), 5 * kSecond);
}

TEST(FaultPlanTest, ToStringIsOneReplayableLinePerEvent) {
  FaultPlan plan;
  plan.events.push_back({1500 * kMillisecond, FaultKind::kLinkOneWayDown,
                         0, 2, 0});
  plan.events.push_back({2 * kSecond, FaultKind::kLossBurst, kNoDc, kNoDc,
                         0.25});
  const std::string s = plan.ToString();
  EXPECT_NE(s.find("t=1.500s oneway_down 0->2"), std::string::npos) << s;
  EXPECT_NE(s.find("t=2.000s loss_burst p=0.250"), std::string::npos) << s;
}

TEST(RandomPlanGeneratorTest, SameSeedSamePlanDifferentSeedDiverges) {
  RandomPlanGenerator a(SmallEnvelope(), 123), b(SmallEnvelope(), 123);
  RandomPlanGenerator c(SmallEnvelope(), 124);
  const FaultPlan pa = a.Generate(), pb = b.Generate(), pc = c.Generate();
  EXPECT_EQ(pa.ToString(), pb.ToString());
  // Consecutive draws from one generator also replay identically.
  EXPECT_EQ(a.Generate().ToString(), b.Generate().ToString());
  EXPECT_NE(pa.ToString(), pc.ToString());
}

/// Replays a plan's events, checking envelope guarantees hold throughout.
void ValidateAgainstEnvelope(const FaultPlan& plan,
                             const PlanEnvelope& envelope) {
  std::set<DcId> down_dcs;
  std::map<std::pair<DcId, DcId>, int> cut_links;  // directed
  bool loss_active = false;
  bool duplicate_active = false;
  bool reorder_active = false;
  int max_concurrent = 0;
  TimeMicros previous = 0;
  for (const FaultEvent& e : plan.events) {
    ASSERT_GE(e.at, previous) << "events out of order";
    previous = e.at;
    ASSERT_GE(e.at, envelope.first_fault);
    ASSERT_LE(e.at, envelope.first_fault + envelope.horizon +
                        envelope.max_duration);
    switch (e.kind) {
      case FaultKind::kDatacenterDown:
        ASSERT_TRUE(down_dcs.insert(e.a).second) << "double down on " << e.a;
        break;
      case FaultKind::kDatacenterUp:
        ASSERT_EQ(down_dcs.erase(e.a), 1u) << "up without down on " << e.a;
        break;
      case FaultKind::kLinkDown:
        ++cut_links[{e.a, e.b}];
        ++cut_links[{e.b, e.a}];
        break;
      case FaultKind::kLinkUp: {
        const int forward = cut_links[{e.a, e.b}]--;
        const int backward = cut_links[{e.b, e.a}]--;
        ASSERT_GT(forward, 0);
        ASSERT_GT(backward, 0);
        break;
      }
      case FaultKind::kLinkOneWayDown:
        ++cut_links[{e.a, e.b}];
        break;
      case FaultKind::kLinkOneWayUp: {
        const int forward = cut_links[{e.a, e.b}]--;
        ASSERT_GT(forward, 0);
        break;
      }
      case FaultKind::kLossBurst:
        ASSERT_FALSE(loss_active) << "overlapping loss bursts";
        ASSERT_GE(e.loss, envelope.min_loss_burst);
        ASSERT_LE(e.loss, envelope.max_loss_burst);
        loss_active = true;
        break;
      case FaultKind::kLossRestore:
        ASSERT_TRUE(loss_active);
        loss_active = false;
        break;
      case FaultKind::kDuplicateBurst:
        ASSERT_FALSE(duplicate_active) << "overlapping duplicate bursts";
        ASSERT_GE(e.loss, envelope.min_duplicate_burst);
        ASSERT_LE(e.loss, envelope.max_duplicate_burst);
        duplicate_active = true;
        break;
      case FaultKind::kDuplicateRestore:
        ASSERT_TRUE(duplicate_active);
        duplicate_active = false;
        break;
      case FaultKind::kReorderBurst:
        ASSERT_FALSE(reorder_active) << "overlapping reorder bursts";
        ASSERT_GE(e.loss, envelope.min_reorder_burst);
        ASSERT_LE(e.loss, envelope.max_reorder_burst);
        ASSERT_GT(e.extra, 0);
        ASSERT_LE(e.extra, envelope.max_reorder_extra);
        reorder_active = true;
        break;
      case FaultKind::kReorderRestore:
        ASSERT_TRUE(reorder_active);
        reorder_active = false;
        break;
      case FaultKind::kServiceRestart:
        break;
    }
    if (e.a != kNoDc) {
      ASSERT_GE(e.a, 0);
      ASSERT_LT(e.a, envelope.num_datacenters);
    }
    if (e.b != kNoDc) {
      ASSERT_GE(e.b, 0);
      ASSERT_LT(e.b, envelope.num_datacenters);
    }
    max_concurrent =
        std::max(max_concurrent, static_cast<int>(down_dcs.size()));
  }
  // Every fault healed within the plan.
  EXPECT_TRUE(down_dcs.empty());
  EXPECT_FALSE(loss_active);
  EXPECT_FALSE(duplicate_active);
  EXPECT_FALSE(reorder_active);
  for (const auto& [link, count] : cut_links) EXPECT_EQ(count, 0);
  EXPECT_LE(max_concurrent, envelope.max_concurrent_dc_outages);
}

TEST(RandomPlanGeneratorTest, PlansRespectTheEnvelope) {
  for (int dcs : {2, 3, 5}) {
    RandomPlanGenerator generator(SmallEnvelope(dcs), 7);
    for (int i = 0; i < 200; ++i) {
      const FaultPlan plan = generator.Generate();
      ValidateAgainstEnvelope(plan, generator.envelope());
      if (::testing::Test::HasFatalFailure()) {
        ADD_FAILURE() << "offending plan (dcs=" << dcs << ", draw " << i
                      << "):\n" << plan.ToString();
        return;
      }
    }
  }
}

TEST(RandomPlanGeneratorTest, HealGapSeparatesEpisodesOnOneResource) {
  PlanEnvelope envelope = SmallEnvelope();
  // Force every episode onto the same resource so the gap must bind.
  envelope.allow_link_cut = envelope.allow_oneway_cut = false;
  envelope.allow_bisection = envelope.allow_loss_burst = false;
  envelope.allow_service_restart = false;
  envelope.num_datacenters = 1;  // single dc => single outage resource
  envelope.min_episodes = envelope.max_episodes = 4;
  RandomPlanGenerator generator(envelope, 3);
  for (int i = 0; i < 100; ++i) {
    const FaultPlan plan = generator.Generate();
    TimeMicros last_up = -1;
    for (const FaultEvent& e : plan.events) {
      if (e.kind == FaultKind::kDatacenterDown && last_up >= 0) {
        EXPECT_GE(e.at - last_up, envelope.min_heal_gap) << plan.ToString();
      }
      if (e.kind == FaultKind::kDatacenterUp) last_up = e.at;
    }
  }
}

TEST(RandomPlanGeneratorTest, AllShapesDisabledYieldsEmptyPlan) {
  PlanEnvelope envelope = SmallEnvelope();
  envelope.allow_dc_outage = envelope.allow_link_cut = false;
  envelope.allow_oneway_cut = envelope.allow_bisection = false;
  envelope.allow_loss_burst = envelope.allow_service_restart = false;
  RandomPlanGenerator generator(envelope, 1);
  EXPECT_TRUE(generator.Generate().events.empty());
}

// ---- Adversarial delivery faults (D10) -----------------------------------

TEST(FaultPlanTest, DeliveryFaultEventsPrintReplayableLines) {
  FaultPlan plan;
  plan.events.push_back(
      {1 * kSecond, FaultKind::kDuplicateBurst, kNoDc, kNoDc, 0.25});
  plan.events.push_back({2 * kSecond, FaultKind::kReorderBurst, kNoDc, kNoDc,
                         0.125, 500 * kMillisecond});
  plan.events.push_back(
      {3 * kSecond, FaultKind::kDuplicateRestore, kNoDc, kNoDc, 0});
  plan.events.push_back(
      {4 * kSecond, FaultKind::kReorderRestore, kNoDc, kNoDc, 0});
  const std::string s = plan.ToString();
  EXPECT_NE(s.find("t=1.000s duplicate_burst p=0.250"), std::string::npos) << s;
  EXPECT_NE(s.find("t=2.000s reorder_burst p=0.125 extra=0.500s"),
            std::string::npos)
      << s;
  EXPECT_NE(s.find("t=3.000s duplicate_restore"), std::string::npos) << s;
  EXPECT_NE(s.find("t=4.000s reorder_restore"), std::string::npos) << s;
}

TEST(RandomPlanGeneratorTest, DeliveryFaultShapesRespectTheEnvelope) {
  PlanEnvelope envelope = SmallEnvelope();
  envelope.allow_duplicate_burst = true;
  envelope.allow_reorder_burst = true;
  RandomPlanGenerator generator(envelope, 17);
  bool saw_duplicate = false, saw_reorder = false;
  for (int i = 0; i < 300; ++i) {
    const FaultPlan plan = generator.Generate();
    ValidateAgainstEnvelope(plan, generator.envelope());
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "offending plan (draw " << i << "):\n"
                    << plan.ToString();
      return;
    }
    for (const FaultEvent& e : plan.events) {
      saw_duplicate |= e.kind == FaultKind::kDuplicateBurst;
      saw_reorder |= e.kind == FaultKind::kReorderBurst;
    }
  }
  EXPECT_TRUE(saw_duplicate) << "sweep never drew a duplicate burst";
  EXPECT_TRUE(saw_reorder) << "sweep never drew a reorder burst";
}

TEST(RandomPlanGeneratorTest, DeliveryFaultShapesAreOffByDefault) {
  // Historical (seed, envelope) pairs must replay to the exact same plans:
  // the new shapes are appended after the originals and gated behind allow
  // flags that default to false, so a default envelope never draws them.
  RandomPlanGenerator generator(SmallEnvelope(), 99);
  for (int i = 0; i < 200; ++i) {
    for (const FaultEvent& e : generator.Generate().events) {
      EXPECT_NE(e.kind, FaultKind::kDuplicateBurst);
      EXPECT_NE(e.kind, FaultKind::kReorderBurst);
    }
  }
}

TEST(FaultInjectorTest, DeliveryFaultBurstsApplyAndRestoreBaselines) {
  sim::Simulator sim;
  std::vector<std::vector<TimeMicros>> rtt(2,
                                           std::vector<TimeMicros>(2, 1000));
  net::NetworkOptions options;
  options.duplicate_probability = 0.01;  // non-zero baselines must return
  options.reorder_probability = 0.02;
  options.reorder_extra_max = 40 * kMillisecond;
  net::Network network(&sim, rtt, options);

  FaultPlan plan;
  plan.events.push_back(
      {1 * kSecond, FaultKind::kDuplicateBurst, kNoDc, kNoDc, 0.5});
  plan.events.push_back({2 * kSecond, FaultKind::kReorderBurst, kNoDc, kNoDc,
                         0.25, 300 * kMillisecond});
  plan.events.push_back(
      {3 * kSecond, FaultKind::kDuplicateRestore, kNoDc, kNoDc, 0});
  plan.events.push_back(
      {4 * kSecond, FaultKind::kReorderRestore, kNoDc, kNoDc, 0});

  FaultInjector injector(&network);
  injector.Arm(plan);

  auto probe = [&](TimeMicros at, std::function<void()> check) {
    sim.ScheduleAt(at + kMillisecond, std::move(check));
  };
  probe(1 * kSecond, [&] { EXPECT_EQ(network.duplicate_probability(), 0.5); });
  probe(2 * kSecond, [&] {
    EXPECT_EQ(network.reorder_probability(), 0.25);
    EXPECT_EQ(network.reorder_extra_max(), 300 * kMillisecond);
  });
  probe(3 * kSecond,
        [&] { EXPECT_EQ(network.duplicate_probability(), 0.01); });
  probe(4 * kSecond, [&] {
    EXPECT_EQ(network.reorder_probability(), 0.02);
    EXPECT_EQ(network.reorder_extra_max(), 40 * kMillisecond);
  });
  sim.Run();
  EXPECT_EQ(injector.events_applied(), 4);
}

TEST(FaultInjectorTest, AppliesEventsAtScheduledTimes) {
  sim::Simulator sim;
  std::vector<std::vector<TimeMicros>> rtt(3,
                                           std::vector<TimeMicros>(3, 1000));
  net::NetworkOptions options;
  options.loss_probability = 0.01;
  net::Network network(&sim, rtt, options);

  FaultPlan plan;
  plan.events.push_back({1 * kSecond, FaultKind::kDatacenterDown, 1, kNoDc, 0});
  plan.events.push_back({2 * kSecond, FaultKind::kLossBurst, kNoDc, kNoDc, .5});
  plan.events.push_back({3 * kSecond, FaultKind::kDatacenterUp, 1, kNoDc, 0});
  plan.events.push_back({4 * kSecond, FaultKind::kLossRestore, kNoDc, kNoDc, 0});
  plan.events.push_back({5 * kSecond, FaultKind::kLinkOneWayDown, 0, 2, 0});
  plan.events.push_back({6 * kSecond, FaultKind::kLinkOneWayUp, 0, 2, 0});

  FaultInjector injector(&network);
  injector.Arm(plan);

  auto probe = [&](TimeMicros at, std::function<void()> check) {
    sim.ScheduleAt(at + kMillisecond, std::move(check));
  };
  probe(1 * kSecond, [&] { EXPECT_TRUE(network.IsDatacenterDown(1)); });
  probe(2 * kSecond, [&] { EXPECT_EQ(network.loss_probability(), 0.5); });
  probe(3 * kSecond, [&] { EXPECT_FALSE(network.IsDatacenterDown(1)); });
  probe(4 * kSecond, [&] { EXPECT_EQ(network.loss_probability(), 0.01); });
  probe(5 * kSecond, [&] {
    EXPECT_TRUE(network.IsLinkDown(0, 2));
    EXPECT_FALSE(network.IsLinkDown(2, 0));  // asymmetric
  });
  probe(6 * kSecond, [&] { EXPECT_FALSE(network.IsLinkDown(0, 2)); });
  sim.Run();
  EXPECT_EQ(injector.events_applied(), 6);
}

sim::Task CommitOne(txn::Session* session, int value, bool* committed) {
  txn::Txn txn = co_await session->Begin("g");
  if (!txn.active()) co_return;
  (void)txn.Write("r", "a", std::to_string(value));
  txn::CommitResult result = co_await txn.Commit();
  *committed = result.committed;
}

TEST(ServiceRestartTest, RestartRecoversDurableStateFromTheStore) {
  core::Cluster cluster(*core::ClusterConfig::FromCode("VVV"));
  ASSERT_TRUE(cluster.LoadInitialRow("g", "r", {{"a", "0"}}).ok());
  txn::Session session = cluster.CreateSession(0);

  bool first = false;
  CommitOne(&session, 1, &first);
  cluster.RunToCompletion();
  ASSERT_TRUE(first);
  const LogPos decided_before =
      cluster.service(0)->GroupLog("g")->MaxDecided();
  ASSERT_GT(decided_before, 0u);

  // Restart every service: the replacements must see the same logs (all
  // durable state lives in the store; services are stateless).
  for (DcId dc = 0; dc < cluster.num_datacenters(); ++dc) {
    txn::TransactionService* before = cluster.service(dc);
    cluster.RestartService(dc);
    EXPECT_NE(cluster.service(dc), before);
  }
  EXPECT_EQ(cluster.service(0)->GroupLog("g")->MaxDecided(), decided_before);

  // And the cluster keeps committing through the restarted services.
  bool second = false;
  CommitOne(&session, 2, &second);
  cluster.RunToCompletion();
  EXPECT_TRUE(second);

  core::Checker checker(&cluster);
  EXPECT_TRUE(checker.CheckAll("g", {}).ok);
}

TEST(ServiceRestartTest, MidRunRestartViaFaultPlanKeepsInvariants) {
  core::ClusterConfig config = *core::ClusterConfig::FromCode("VVV");
  config.seed = 5;
  core::Cluster cluster(config);

  FaultPlan plan;
  for (DcId dc = 0; dc < 3; ++dc) {
    plan.events.push_back({(2 + dc) * kSecond, FaultKind::kServiceRestart,
                           dc, kNoDc, 0});
  }
  FaultInjector* injector = cluster.ApplyFaultPlan(plan);

  workload::RunnerConfig runner;
  runner.total_txns = 20;
  runner.num_threads = 2;
  runner.target_rate_tps = 2.0;
  runner.seed = 9;
  workload::RunStats stats = workload::RunExperiment(&cluster, runner);
  EXPECT_EQ(injector->events_applied(), 3);
  EXPECT_TRUE(stats.all_threads_finished);
  EXPECT_GT(stats.committed, 0);
  EXPECT_TRUE(stats.check.ok) << stats.check.ToString();
}

}  // namespace
}  // namespace paxoscp::fault
