// Tests for the Database retry facade and the background applier.
#include <gtest/gtest.h>

#include "core/database.h"

namespace paxoscp::core {
namespace {

ClusterConfig TestConfig(uint64_t seed = 23) {
  ClusterConfig config = *ClusterConfig::FromCode("VVV");
  config.seed = seed;
  return config;
}

sim::Task Drive(Database* db, std::string group, TxnBody body,
                TxnResult* out) {
  *out = co_await db->RunTransaction(std::move(group), std::move(body));
}

TEST(DatabaseTest, CommitsSimpleTransaction) {
  Cluster cluster(TestConfig());
  ASSERT_TRUE(cluster.LoadInitialRow("g", "r", {{"n", "41"}}).ok());
  Database db(&cluster, 0);

  TxnResult result;
  Drive(&db, "g",
        [](TxnHandle* txn) -> sim::Coro<Status> {
          Result<std::string> n = co_await txn->Read("r", "n");
          if (!n.ok()) co_return n.status();
          co_return txn->Write("r", "n", std::to_string(std::stoi(*n) + 1));
        },
        &result);
  cluster.RunToCompletion();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.attempts, 1);
  EXPECT_TRUE(result.commit.committed);
}

TEST(DatabaseTest, RetriesConcurrencyAborts) {
  // Two counter increments race under basic Paxos (no promotion): one
  // aborts, and the retry loop re-executes it from a fresh snapshot so
  // both increments land.
  Cluster cluster(TestConfig(29));
  ASSERT_TRUE(cluster.LoadInitialRow("g", "r", {{"n", "0"}}).ok());
  txn::ClientOptions options;
  options.protocol = txn::Protocol::kBasicPaxos;
  Database db1(&cluster, 0, options);
  Database db2(&cluster, 1, options);

  TxnBody increment = [](TxnHandle* txn) -> sim::Coro<Status> {
    Result<std::string> n = co_await txn->Read("r", "n");
    if (!n.ok()) co_return n.status();
    co_return txn->Write("r", "n", std::to_string(std::stoi(*n) + 1));
  };
  TxnResult r1, r2;
  Drive(&db1, "g", increment, &r1);
  Drive(&db2, "g", increment, &r2);
  cluster.RunToCompletion();

  ASSERT_TRUE(r1.status.ok()) << r1.status.ToString();
  ASSERT_TRUE(r2.status.ok()) << r2.status.ToString();
  EXPECT_GE(r1.attempts + r2.attempts, 3);  // at least one retried

  // The counter reflects both increments (no lost update).
  TxnResult check;
  std::string final_value;
  Drive(&db1, "g",
        [&final_value](TxnHandle* txn) -> sim::Coro<Status> {
          Result<std::string> n = co_await txn->Read("r", "n");
          if (n.ok()) final_value = *n;
          co_return n.status();
        },
        &check);
  cluster.RunToCompletion();
  EXPECT_EQ(final_value, "2");
}

TEST(DatabaseTest, BodyErrorAbortsWithoutRetry) {
  Cluster cluster(TestConfig());
  ASSERT_TRUE(cluster.LoadInitialRow("g", "r", {{"n", "0"}}).ok());
  Database db(&cluster, 0);
  TxnResult result;
  Drive(&db, "g",
        [](TxnHandle*) -> sim::Coro<Status> {
          co_return Status::InvalidArgument("application rejected");
        },
        &result);
  cluster.RunToCompletion();
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(cluster.service(0)->GroupLog("g")->MaxDecided(), 0u);
}

TEST(DatabaseTest, GivesUpAfterMaxAttempts) {
  Cluster cluster(TestConfig(31));
  ASSERT_TRUE(cluster.LoadInitialRow("g", "r", {{"n", "0"}}).ok());
  cluster.SetDatacenterDown(1, true);
  cluster.SetDatacenterDown(2, true);  // no quorum: commits fail
  txn::ClientOptions options;
  options.max_rounds_per_position = 2;
  Database db(&cluster, 0, options);
  TxnResult result;
  Drive(&db, "g",
        [](TxnHandle* txn) -> sim::Coro<Status> {
          co_return txn->Write("r", "n", "1");
        },
        &result);
  cluster.RunToCompletion();
  EXPECT_FALSE(result.status.ok());
  // Unavailable is an infrastructure error, not a concurrency abort: the
  // facade does not burn retries on it.
  EXPECT_TRUE(result.status.IsUnavailable()) << result.status.ToString();
  EXPECT_EQ(result.attempts, 1);
}

// ------------------------------------------------------ background applier

sim::Task CommitWrites(txn::TransactionClient* client, int n, int* committed) {
  for (int i = 0; i < n; ++i) {
    if (!(co_await client->Begin("g")).ok()) continue;
    (void)client->Write("g", "r", "a", std::to_string(i));
    txn::CommitResult result = co_await client->Commit("g");
    if (result.committed) ++*committed;
  }
}

TEST(BackgroundApplierTest, AppliesLogWithoutReads) {
  Cluster cluster(TestConfig(37));
  ASSERT_TRUE(cluster.LoadInitialRow("g", "r", {{"a", "0"}}).ok());
  cluster.service(0)->StartBackgroundApplier(200 * kMillisecond);
  cluster.simulator()->ScheduleAt(
      30 * kSecond, [&cluster] { cluster.service(0)->StopBackgroundApplier(); });

  int committed = 0;
  CommitWrites(cluster.CreateClient(0, {}), 5, &committed);
  cluster.RunToCompletion();
  ASSERT_EQ(committed, 5);

  // No read ever touched DC 0, yet its data rows are applied.
  wal::WriteAheadLog* log = cluster.service(0)->GroupLog("g");
  EXPECT_EQ(log->AppliedThrough(), log->MaxDecided());
  EXPECT_GT(cluster.service(0)->background_applies(), 0u);
  wal::ItemRead read = log->ReadItem({"r", "a"}, log->MaxDecided());
  EXPECT_EQ(read.value, "4");
}

TEST(BackgroundApplierTest, GarbageCollectsOldVersions) {
  Cluster cluster(TestConfig(41));
  ASSERT_TRUE(cluster.LoadInitialRow("g", "r", {{"a", "0"}}).ok());
  cluster.service(0)->StartBackgroundApplier(200 * kMillisecond,
                                             /*gc_keep_versions=*/2);
  cluster.simulator()->ScheduleAt(
      60 * kSecond, [&cluster] { cluster.service(0)->StopBackgroundApplier(); });

  int committed = 0;
  CommitWrites(cluster.CreateClient(0, {}), 10, &committed);
  cluster.RunToCompletion();
  ASSERT_EQ(committed, 10);

  wal::WriteAheadLog* log = cluster.service(0)->GroupLog("g");
  const std::string data_key = log->DataKey("r");
  // Initial version + 10 writes = 11 versions without GC; the collector
  // keeps only the watermark snapshot plus the last two positions.
  EXPECT_LE(cluster.store(0)->VersionCount(data_key), 4u);
  // The latest value is intact.
  EXPECT_EQ(log->ReadItem({"r", "a"}, log->MaxDecided()).value, "9");
}

}  // namespace
}  // namespace paxoscp::core
