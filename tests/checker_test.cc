// Tests for the correctness checkers themselves: they must accept known-good
// histories and flag every class of violation (R1, L1-L3, MVSG cycles).
#include <gtest/gtest.h>

#include "core/checker.h"

namespace paxoscp::core {
namespace {

wal::TxnRecord Record(TxnId id, LogPos read_pos,
                      std::vector<wal::ReadRecord> reads,
                      std::vector<std::pair<std::string, std::string>> writes) {
  wal::TxnRecord t;
  t.id = id;
  t.origin_dc = TxnIdDc(id);
  t.read_pos = read_pos;
  t.reads = std::move(reads);
  for (auto& [attr, value] : writes) {
    t.writes.push_back(wal::WriteRecord{{"r", attr}, value});
  }
  return t;
}

wal::ReadRecord Read(const std::string& attr, TxnId writer, LogPos pos) {
  return wal::ReadRecord{{"r", attr}, writer, pos};
}

TEST(SerializabilityCheckerTest, AcceptsValidChain) {
  std::map<LogPos, wal::LogEntry> log;
  const TxnId t1 = MakeTxnId(0, 1), t2 = MakeTxnId(1, 1);
  log[1].txns.push_back(Record(t1, 0, {Read("a", 0, 0)}, {{"a", "1"}}));
  log[2].txns.push_back(Record(t2, 1, {Read("a", t1, 1)}, {{"a", "2"}}));
  CheckReport report;
  Checker::CheckOneCopySerializability(log, &report);
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(SerializabilityCheckerTest, FlagsStaleRead) {
  // t2 sits at position 3 but read "a" from the initial state even though
  // t1 wrote it at position 1 — a lost-update anomaly.
  std::map<LogPos, wal::LogEntry> log;
  const TxnId t1 = MakeTxnId(0, 1), t2 = MakeTxnId(1, 1);
  log[1].txns.push_back(Record(t1, 0, {}, {{"a", "1"}}));
  log[2].txns.push_back(Record(t2, 0, {Read("a", 0, 0)}, {{"a", "2"}}));
  CheckReport report;
  Checker::CheckOneCopySerializability(log, &report);
  EXPECT_FALSE(report.ok);
}

TEST(SerializabilityCheckerTest, FlagsPhantomPastWholeRowRead) {
  // t2 read the whole row at snapshot 0 (predicate read, Txn::ReadRow)
  // and committed at position 2, but t1 created attribute "b" at
  // position 1 — an attribute t2 observed as absent changed behind its
  // back (the phantom class the runtime's whole-row conflict rule must
  // prevent; the checker must see through it independently).
  std::map<LogPos, wal::LogEntry> log;
  const TxnId t1 = MakeTxnId(0, 1), t2 = MakeTxnId(1, 1);
  log[1].txns.push_back(Record(t1, 0, {}, {{"b", "created"}}));
  log[2].txns.push_back(Record(
      t2, 0, {wal::ReadRecord{{"r", wal::kWholeRowAttribute}, 0, 0}},
      {{"c", "derived"}}));
  CheckReport report;
  Checker::CheckOneCopySerializability(log, &report);
  EXPECT_FALSE(report.ok);
}

TEST(SerializabilityCheckerTest, AcceptsWholeRowReadOfFreshSnapshot) {
  // Same shape, but t2's snapshot (read_pos 1) already includes t1's
  // write: the predicate read is satisfied.
  std::map<LogPos, wal::LogEntry> log;
  const TxnId t1 = MakeTxnId(0, 1), t2 = MakeTxnId(1, 1);
  log[1].txns.push_back(Record(t1, 0, {}, {{"b", "created"}}));
  log[2].txns.push_back(Record(
      t2, 1,
      {wal::ReadRecord{{"r", wal::kWholeRowAttribute}, 0, 0},
       Read("b", t1, 1)},
      {{"c", "derived"}}));
  CheckReport report;
  Checker::CheckOneCopySerializability(log, &report);
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(SerializabilityCheckerTest, AcceptsLegalCombinedEntry) {
  // Two txns share position 1; the second does not read anything the first
  // wrote.
  std::map<LogPos, wal::LogEntry> log;
  log[1].txns.push_back(
      Record(MakeTxnId(0, 1), 0, {Read("x", 0, 0)}, {{"a", "1"}}));
  log[1].txns.push_back(
      Record(MakeTxnId(1, 1), 0, {Read("y", 0, 0)}, {{"b", "2"}}));
  CheckReport report;
  Checker::CheckOneCopySerializability(log, &report);
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(SerializabilityCheckerTest, FlagsIllegalCombinedEntry) {
  // The second txn in the entry read "a" from the initial state, but the
  // first txn in the same entry wrote "a" — list order violates L3.
  std::map<LogPos, wal::LogEntry> log;
  log[1].txns.push_back(Record(MakeTxnId(0, 1), 0, {}, {{"a", "1"}}));
  log[1].txns.push_back(
      Record(MakeTxnId(1, 1), 0, {Read("a", 0, 0)}, {{"b", "2"}}));
  CheckReport report;
  Checker::CheckOneCopySerializability(log, &report);
  EXPECT_FALSE(report.ok);
}

TEST(SerializabilityCheckerTest, FlagsIllegalPromotion) {
  // t2 read "a" at read position 1 (from t1), then was promoted past
  // position 2 whose winner t3 also wrote "a": t2's read is no longer the
  // latest preceding write in serial order.
  std::map<LogPos, wal::LogEntry> log;
  const TxnId t1 = MakeTxnId(0, 1), t3 = MakeTxnId(2, 1),
              t2 = MakeTxnId(1, 1);
  log[1].txns.push_back(Record(t1, 0, {}, {{"a", "1"}}));
  log[2].txns.push_back(Record(t3, 1, {}, {{"a", "3"}}));
  log[3].txns.push_back(Record(t2, 1, {Read("a", t1, 1)}, {{"b", "2"}}));
  CheckReport report;
  Checker::CheckOneCopySerializability(log, &report);
  EXPECT_FALSE(report.ok);
}

TEST(SerializabilityCheckerTest, AcceptsLegalPromotion) {
  // Same shape, but the intervening winner writes a different item.
  std::map<LogPos, wal::LogEntry> log;
  const TxnId t1 = MakeTxnId(0, 1), t3 = MakeTxnId(2, 1),
              t2 = MakeTxnId(1, 1);
  log[1].txns.push_back(Record(t1, 0, {}, {{"a", "1"}}));
  log[2].txns.push_back(Record(t3, 1, {}, {{"c", "3"}}));
  log[3].txns.push_back(Record(t2, 1, {Read("a", t1, 1)}, {{"b", "2"}}));
  CheckReport report;
  Checker::CheckOneCopySerializability(log, &report);
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(MvsgTest, AcyclicForValidHistory) {
  std::map<LogPos, wal::LogEntry> log;
  const TxnId t1 = MakeTxnId(0, 1), t2 = MakeTxnId(1, 1);
  log[1].txns.push_back(Record(t1, 0, {}, {{"a", "1"}}));
  log[2].txns.push_back(Record(t2, 1, {Read("a", t1, 1)}, {{"b", "2"}}));
  CheckReport report;
  Checker::CheckSerializationGraph(log, &report);
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(MvsgTest, DetectsCycleFromCrossReads) {
  // t1 reads the version of "b" written by t2 while t2 reads the version of
  // "a" written by t1 — a classic write-skew-like cycle that no serial
  // order satisfies.
  std::map<LogPos, wal::LogEntry> log;
  const TxnId t1 = MakeTxnId(0, 1), t2 = MakeTxnId(1, 1);
  log[1].txns.push_back(Record(t1, 0, {Read("b", t2, 2)}, {{"a", "1"}}));
  log[2].txns.push_back(Record(t2, 1, {Read("a", t1, 1)}, {{"b", "2"}}));
  CheckReport report;
  Checker::CheckSerializationGraph(log, &report);
  EXPECT_FALSE(report.ok);
}

TEST(MvsgTest, FlagsReadFromUnknownWriter) {
  std::map<LogPos, wal::LogEntry> log;
  log[1].txns.push_back(Record(MakeTxnId(0, 1), 0,
                               {Read("a", MakeTxnId(9, 9), 42)}, {}));
  CheckReport report;
  Checker::CheckSerializationGraph(log, &report);
  EXPECT_FALSE(report.ok);
}

TEST(OutcomeCheckerTest, CommittedMustAppear) {
  std::map<LogPos, wal::LogEntry> log;  // empty
  std::vector<ClientOutcome> outcomes(1);
  outcomes[0].id = MakeTxnId(0, 1);
  outcomes[0].committed = true;
  outcomes[0].position = 1;
  CheckReport report;
  Checker::CheckOutcomes(log, outcomes, &report);
  EXPECT_FALSE(report.ok);  // (L1) committed but missing
}

TEST(OutcomeCheckerTest, AbortedMustNotAppear) {
  std::map<LogPos, wal::LogEntry> log;
  log[1].txns.push_back(Record(MakeTxnId(0, 1), 0, {}, {{"a", "1"}}));
  std::vector<ClientOutcome> outcomes(1);
  outcomes[0].id = MakeTxnId(0, 1);
  outcomes[0].committed = false;
  CheckReport report;
  Checker::CheckOutcomes(log, outcomes, &report);
  EXPECT_FALSE(report.ok);  // (L1) aborted but present
}

TEST(OutcomeCheckerTest, UnknownOutcomeMayGoEitherWay) {
  std::map<LogPos, wal::LogEntry> log;
  log[1].txns.push_back(Record(MakeTxnId(0, 1), 0, {}, {{"a", "1"}}));
  std::vector<ClientOutcome> outcomes(2);
  outcomes[0].id = MakeTxnId(0, 1);
  outcomes[0].unknown = true;  // in the log: fine
  outcomes[1].id = MakeTxnId(0, 2);
  outcomes[1].unknown = true;  // absent: also fine
  CheckReport report;
  Checker::CheckOutcomes(log, outcomes, &report);
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(OutcomeCheckerTest, UnknownTxnInTwoPositionsStillViolatesL2) {
  // A crashed client's transaction may appear in the log or not (L1 waived)
  // — but appearing twice is an L2 violation no matter what the client saw.
  std::map<LogPos, wal::LogEntry> log;
  log[1].txns.push_back(Record(MakeTxnId(0, 1), 0, {}, {{"a", "1"}}));
  log[2].txns.push_back(Record(MakeTxnId(0, 1), 0, {}, {{"a", "1"}}));
  std::vector<ClientOutcome> outcomes(1);
  outcomes[0].id = MakeTxnId(0, 1);
  outcomes[0].unknown = true;
  CheckReport report;
  Checker::CheckOutcomes(log, outcomes, &report);
  EXPECT_FALSE(report.ok);
}

TEST(OutcomeCheckerTest, UnknownOutcomeIgnoresStalePositionClaim) {
  // A client that timed out mid-commit may carry a stale position guess;
  // the unknown flag waives the position cross-check along with L1.
  std::map<LogPos, wal::LogEntry> log;
  log[1].txns.push_back(Record(MakeTxnId(0, 1), 0, {}, {{"a", "1"}}));
  std::vector<ClientOutcome> outcomes(1);
  outcomes[0].id = MakeTxnId(0, 1);
  outcomes[0].unknown = true;
  outcomes[0].position = 7;  // wrong — but the client never learned it
  CheckReport report;
  Checker::CheckOutcomes(log, outcomes, &report);
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(OutcomeCheckerTest, TxnInTwoPositionsViolatesL2) {
  std::map<LogPos, wal::LogEntry> log;
  log[1].txns.push_back(Record(MakeTxnId(0, 1), 0, {}, {{"a", "1"}}));
  log[2].txns.push_back(Record(MakeTxnId(0, 1), 0, {}, {{"a", "1"}}));
  std::vector<ClientOutcome> outcomes(1);
  outcomes[0].id = MakeTxnId(0, 1);
  outcomes[0].committed = true;
  CheckReport report;
  Checker::CheckOutcomes(log, outcomes, &report);
  EXPECT_FALSE(report.ok);
}

TEST(OutcomeCheckerTest, PositionMismatchFlagged) {
  std::map<LogPos, wal::LogEntry> log;
  log[1].txns.push_back(Record(MakeTxnId(0, 1), 0, {}, {{"a", "1"}}));
  std::vector<ClientOutcome> outcomes(1);
  outcomes[0].id = MakeTxnId(0, 1);
  outcomes[0].committed = true;
  outcomes[0].position = 7;  // client believes the wrong position
  CheckReport report;
  Checker::CheckOutcomes(log, outcomes, &report);
  EXPECT_FALSE(report.ok);
}

TEST(OutcomeCheckerTest, ReadOnlyMustNotAppear) {
  std::map<LogPos, wal::LogEntry> log;
  log[1].txns.push_back(Record(MakeTxnId(0, 1), 0, {}, {}));
  std::vector<ClientOutcome> outcomes(1);
  outcomes[0].id = MakeTxnId(0, 1);
  outcomes[0].committed = true;
  outcomes[0].read_only = true;
  CheckReport report;
  Checker::CheckOutcomes(log, outcomes, &report);
  EXPECT_FALSE(report.ok);
}

TEST(ReportTest, ViolationAccumulates) {
  CheckReport report;
  EXPECT_TRUE(report.ok);
  report.Violation("first");
  report.Violation("second");
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.violations.size(), 2u);
  EXPECT_NE(report.ToString().find("first"), std::string::npos);
}

}  // namespace
}  // namespace paxoscp::core
