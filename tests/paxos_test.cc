// Unit tests for the Paxos module: ballots, the kvstore-backed acceptor
// (Algorithm 1), leader claims, and proposer value selection including
// every branch of enhancedFindWinningVal.
#include <gtest/gtest.h>

#include "kvstore/store.h"
#include "paxos/acceptor.h"
#include "paxos/ballot.h"
#include "paxos/value_selection.h"
#include "wal/log.h"

namespace paxoscp::paxos {
namespace {

wal::LogEntry EntryFor(TxnId id, std::vector<std::string> read_attrs = {},
                       std::vector<std::string> write_attrs = {"w"}) {
  wal::LogEntry e;
  e.winner_dc = TxnIdDc(id);
  wal::TxnRecord t;
  t.id = id;
  t.origin_dc = TxnIdDc(id);
  for (auto& attr : read_attrs) t.reads.push_back({{"r", attr}, 0, 0});
  for (auto& attr : write_attrs) t.writes.push_back({{"r", attr}, "v"});
  e.txns.push_back(std::move(t));
  return e;
}

// ---------------------------------------------------------------- Ballot

TEST(BallotTest, Ordering) {
  EXPECT_LT(kNullBallot, (Ballot{0, 0}));
  EXPECT_LT((Ballot{0, 2}), (Ballot{1, 0}));
  EXPECT_LT((Ballot{1, 0}), (Ballot{1, 1}));
  EXPECT_EQ((Ballot{3, 2}), (Ballot{3, 2}));
}

TEST(BallotTest, EncodeDecodeRoundTrip) {
  for (Ballot b : {kNullBallot, Ballot{0, 1}, Ballot{42, 3},
                   Ballot{INT64_MAX / 2, 15}}) {
    EXPECT_EQ(Ballot::Decode(b.Encode()), b) << b.ToString();
  }
}

TEST(BallotTest, DecodeEmptyIsNull) {
  EXPECT_TRUE(Ballot::Decode("").IsNull());
}

TEST(BallotTest, NullBallotEncodesEmpty) {
  // The store's missing-attribute convention: unset acceptor state reads as
  // "", so the null ballot must encode to exactly that.
  EXPECT_EQ(kNullBallot.Encode(), "");
}

TEST(BallotTest, ToStringIsHumanReadable) {
  // ToString is the log/debug form, distinct from the binary Encode().
  EXPECT_EQ((Ballot{3, 1}).ToString(), "3.1");
  EXPECT_EQ((Ballot{0, 2}).ToString(), "0.2");
  EXPECT_EQ(kNullBallot.ToString(), "null");
  EXPECT_NE((Ballot{300, 5}).ToString(), (Ballot{300, 5}).Encode());
}

TEST(BallotTest, NextBallotExceedsSeen) {
  EXPECT_EQ(NextBallot(kNullBallot, 2), (Ballot{1, 2}));
  EXPECT_EQ(NextBallot(Ballot{5, 0}, 2), (Ballot{6, 2}));
  EXPECT_GT(NextBallot(Ballot{5, 4}, 2), (Ballot{5, 4}));
}

TEST(BallotTest, FastPathClassification) {
  EXPECT_TRUE((Ballot{0, 3}).IsFastPath());
  EXPECT_FALSE((Ballot{1, 3}).IsFastPath());
  EXPECT_FALSE(kNullBallot.IsFastPath());
}

// -------------------------------------------------------------- Acceptor

class AcceptorTest : public ::testing::Test {
 protected:
  kvstore::MultiVersionStore store_;
  wal::WriteAheadLog log_{&store_, "g"};
  Acceptor acceptor_{&store_, &log_};
};

TEST_F(AcceptorTest, InitialStateIsNull) {
  Acceptor::State state = acceptor_.ReadState(1);
  EXPECT_TRUE(state.next_bal.IsNull());
  EXPECT_TRUE(state.vote_ballot.IsNull());
  EXPECT_FALSE(state.vote_value.has_value());
}

TEST_F(AcceptorTest, PrepareGrantsHigherBallot) {
  PrepareResult r = acceptor_.OnPrepare(1, Ballot{1, 0});
  EXPECT_TRUE(r.promised);
  EXPECT_EQ(r.next_bal, (Ballot{1, 0}));
  EXPECT_TRUE(r.vote_ballot.IsNull());
  EXPECT_FALSE(r.vote_value.has_value());
}

TEST_F(AcceptorTest, PrepareRejectsLowerOrEqualBallot) {
  ASSERT_TRUE(acceptor_.OnPrepare(1, Ballot{5, 1}).promised);
  EXPECT_FALSE(acceptor_.OnPrepare(1, Ballot{5, 1}).promised);  // equal
  PrepareResult lower = acceptor_.OnPrepare(1, Ballot{4, 2});
  EXPECT_FALSE(lower.promised);
  EXPECT_EQ(lower.next_bal, (Ballot{5, 1}));  // hint for nextPropNumber
}

TEST_F(AcceptorTest, PrepareReturnsLastVote) {
  const wal::LogEntry value = EntryFor(MakeTxnId(0, 1));
  ASSERT_TRUE(acceptor_.OnPrepare(1, Ballot{1, 0}).promised);
  ASSERT_TRUE(acceptor_.OnAccept(1, Ballot{1, 0}, value).accepted);
  PrepareResult r = acceptor_.OnPrepare(1, Ballot{2, 1});
  EXPECT_TRUE(r.promised);
  EXPECT_EQ(r.vote_ballot, (Ballot{1, 0}));
  ASSERT_TRUE(r.vote_value.has_value());
  EXPECT_EQ(r.vote_value->Fingerprint(), value.Fingerprint());
}

TEST_F(AcceptorTest, AcceptRequiresMatchingPromise) {
  const wal::LogEntry value = EntryFor(MakeTxnId(0, 1));
  // No promise yet and not a fast-path ballot: reject.
  EXPECT_FALSE(acceptor_.OnAccept(1, Ballot{1, 0}, value).accepted);
  ASSERT_TRUE(acceptor_.OnPrepare(1, Ballot{2, 0}).promised);
  // Stale ballot after a newer promise: reject (Algorithm 1 line 18).
  EXPECT_FALSE(acceptor_.OnAccept(1, Ballot{1, 0}, value).accepted);
  EXPECT_TRUE(acceptor_.OnAccept(1, Ballot{2, 0}, value).accepted);
}

TEST_F(AcceptorTest, AcceptFastPathOnUntouchedPosition) {
  const wal::LogEntry value = EntryFor(MakeTxnId(1, 1));
  EXPECT_TRUE(acceptor_.OnAccept(1, Ballot{0, 1}, value).accepted);
  Acceptor::State state = acceptor_.ReadState(1);
  EXPECT_EQ(state.vote_ballot, (Ballot{0, 1}));
}

TEST_F(AcceptorTest, FastPathRejectedAfterAnyPromise) {
  ASSERT_TRUE(acceptor_.OnPrepare(1, Ballot{1, 0}).promised);
  EXPECT_FALSE(
      acceptor_.OnAccept(1, Ballot{0, 1}, EntryFor(MakeTxnId(1, 1)))
          .accepted);
}

TEST_F(AcceptorTest, DuplicateAcceptIsIdempotent) {
  const wal::LogEntry value = EntryFor(MakeTxnId(0, 1));
  ASSERT_TRUE(acceptor_.OnPrepare(1, Ballot{1, 0}).promised);
  ASSERT_TRUE(acceptor_.OnAccept(1, Ballot{1, 0}, value).accepted);
  EXPECT_TRUE(acceptor_.OnAccept(1, Ballot{1, 0}, value).accepted);
}

TEST_F(AcceptorTest, VoteCanChangeAcrossBallots) {
  const wal::LogEntry v1 = EntryFor(MakeTxnId(0, 1));
  const wal::LogEntry v2 = EntryFor(MakeTxnId(1, 1));
  ASSERT_TRUE(acceptor_.OnPrepare(1, Ballot{1, 0}).promised);
  ASSERT_TRUE(acceptor_.OnAccept(1, Ballot{1, 0}, v1).accepted);
  ASSERT_TRUE(acceptor_.OnPrepare(1, Ballot{2, 1}).promised);
  ASSERT_TRUE(acceptor_.OnAccept(1, Ballot{2, 1}, v2).accepted);
  Acceptor::State state = acceptor_.ReadState(1);
  EXPECT_EQ(state.vote_value->Fingerprint(), v2.Fingerprint());
}

TEST_F(AcceptorTest, ApplyWritesLogAndRefreshesVote) {
  const wal::LogEntry value = EntryFor(MakeTxnId(0, 1));
  ASSERT_TRUE(acceptor_.OnApply(1, Ballot{1, 0}, value).ok());
  EXPECT_TRUE(log_.HasEntry(1));
  // A later prepare discovers the decided value.
  PrepareResult r = acceptor_.OnPrepare(1, Ballot{9, 1});
  ASSERT_TRUE(r.decided.has_value());
  EXPECT_EQ(r.decided->Fingerprint(), value.Fingerprint());
}

TEST_F(AcceptorTest, ConflictingApplyIsCorruption) {
  ASSERT_TRUE(
      acceptor_.OnApply(1, Ballot{1, 0}, EntryFor(MakeTxnId(0, 1))).ok());
  Status s = acceptor_.OnApply(1, Ballot{2, 1}, EntryFor(MakeTxnId(1, 1)));
  EXPECT_EQ(s.code(), Status::Code::kCorruption);
}

TEST_F(AcceptorTest, PositionsAreIndependent) {
  ASSERT_TRUE(acceptor_.OnPrepare(1, Ballot{5, 0}).promised);
  EXPECT_TRUE(acceptor_.OnPrepare(2, Ballot{1, 1}).promised);
}

TEST_F(AcceptorTest, LeadershipClaimedExactlyOnce) {
  EXPECT_TRUE(acceptor_.TryClaimLeadership(1));
  EXPECT_FALSE(acceptor_.TryClaimLeadership(1));
  EXPECT_TRUE(acceptor_.TryClaimLeadership(2));  // per-position
}

// ------------------------------------------------------- value selection

LastVote Vote(DcId dc, Ballot ballot, std::optional<wal::LogEntry> value) {
  return LastVote{dc, ballot, std::move(value)};
}

TEST(FindWinningValueTest, AllBottomReturnsNullopt) {
  std::vector<LastVote> votes = {Vote(0, kNullBallot, std::nullopt),
                                 Vote(1, kNullBallot, std::nullopt)};
  EXPECT_FALSE(FindWinningValue(votes).has_value());
}

TEST(FindWinningValueTest, PicksMaxBallotValue) {
  const wal::LogEntry low = EntryFor(MakeTxnId(0, 1));
  const wal::LogEntry high = EntryFor(MakeTxnId(1, 1));
  std::vector<LastVote> votes = {Vote(0, Ballot{1, 0}, low),
                                 Vote(1, Ballot{3, 1}, high),
                                 Vote(2, kNullBallot, std::nullopt)};
  auto winning = FindWinningValue(votes);
  ASSERT_TRUE(winning.has_value());
  EXPECT_EQ(winning->Fingerprint(), high.Fingerprint());
}

TEST(CanAppendTest, RejectsReadFromPredecessorWrite) {
  std::vector<wal::TxnRecord> list = {
      EntryFor(MakeTxnId(0, 1), {}, {"a"}).txns[0]};
  EXPECT_FALSE(CanAppend(list, EntryFor(MakeTxnId(1, 1), {"a"}, {"b"})
                                   .txns[0]));
  EXPECT_TRUE(CanAppend(list, EntryFor(MakeTxnId(1, 2), {"c"}, {"a"})
                                  .txns[0]));  // ww overlap is fine
}

TEST(CombineTest, MergesCompatibleTransactions) {
  const wal::LogEntry own = EntryFor(MakeTxnId(0, 1), {"x"}, {"a"});
  std::vector<wal::TxnRecord> candidates = {
      EntryFor(MakeTxnId(1, 1), {"y"}, {"b"}).txns[0],
      EntryFor(MakeTxnId(2, 1), {"z"}, {"c"}).txns[0]};
  wal::LogEntry combined = CombineTransactions(own, candidates, {});
  EXPECT_EQ(combined.txns.size(), 3u);
  EXPECT_EQ(combined.txns[0].id, MakeTxnId(0, 1));  // own first
}

TEST(CombineTest, ExcludesConflictingCandidate) {
  const wal::LogEntry own = EntryFor(MakeTxnId(0, 1), {}, {"a"});
  std::vector<wal::TxnRecord> candidates = {
      EntryFor(MakeTxnId(1, 1), {"a"}, {"b"}).txns[0],  // reads own write
      EntryFor(MakeTxnId(2, 1), {"c"}, {"d"}).txns[0]};
  wal::LogEntry combined = CombineTransactions(own, candidates, {});
  EXPECT_EQ(combined.txns.size(), 2u);
  EXPECT_FALSE(combined.ContainsTxn(MakeTxnId(1, 1)));
  EXPECT_TRUE(combined.ContainsTxn(MakeTxnId(2, 1)));
}

TEST(CombineTest, OrderSearchFindsMaximumList) {
  // t1 reads "a" (own writes "a") => t1 can never follow own... but t2
  // writes nothing t1 reads, and t1 writes nothing t2 reads-from, so the
  // best list is [own, t2] or [own, t2, t1]? t1 reads "a" which own wrote:
  // t1 is excluded in any position after own. Expect [own, t2].
  const wal::LogEntry own = EntryFor(MakeTxnId(0, 1), {}, {"a"});
  wal::TxnRecord t1 = EntryFor(MakeTxnId(1, 1), {"a"}, {"q"}).txns[0];
  wal::TxnRecord t2 = EntryFor(MakeTxnId(2, 1), {"p"}, {"r"}).txns[0];
  wal::LogEntry combined = CombineTransactions(own, {t1, t2}, {});
  EXPECT_EQ(combined.txns.size(), 2u);
  EXPECT_TRUE(combined.ContainsTxn(MakeTxnId(2, 1)));
}

TEST(CombineTest, OrderMattersAndSearchFindsIt) {
  // t1 reads "b"; t2 writes "b". Order [t2, t1] is illegal (t1 reads-from
  // predecessor t2) but [t1, t2] is legal — the exhaustive search must find
  // the ordering that admits both.
  const wal::LogEntry own = EntryFor(MakeTxnId(0, 1), {}, {"a"});
  wal::TxnRecord t1 = EntryFor(MakeTxnId(1, 1), {"b"}, {"c"}).txns[0];
  wal::TxnRecord t2 = EntryFor(MakeTxnId(2, 1), {"d"}, {"b"}).txns[0];
  wal::LogEntry combined = CombineTransactions(own, {t2, t1}, {});
  ASSERT_EQ(combined.txns.size(), 3u);
  // t1 must precede t2 in the final list.
  size_t i1 = 0, i2 = 0;
  for (size_t i = 0; i < combined.txns.size(); ++i) {
    if (combined.txns[i].id == MakeTxnId(1, 1)) i1 = i;
    if (combined.txns[i].id == MakeTxnId(2, 1)) i2 = i;
  }
  EXPECT_LT(i1, i2);
}

TEST(CombineTest, DeduplicatesOwnTransaction) {
  const wal::LogEntry own = EntryFor(MakeTxnId(0, 1), {}, {"a"});
  std::vector<wal::TxnRecord> candidates = {own.txns[0],
                                            own.txns[0]};  // echoes of self
  wal::LogEntry combined = CombineTransactions(own, candidates, {});
  EXPECT_EQ(combined.txns.size(), 1u);
}

TEST(CombineTest, GreedyBeyondExhaustiveLimit) {
  const wal::LogEntry own = EntryFor(MakeTxnId(0, 1), {}, {"a"});
  std::vector<wal::TxnRecord> candidates;
  for (int i = 0; i < 10; ++i) {
    // += instead of `"y" + std::to_string(i)`: GCC 12 -O2 flags the
    // prepend-into-temporary form with a spurious -Wrestrict.
    std::string item = "y";
    item += std::to_string(i);
    candidates.push_back(
        EntryFor(MakeTxnId(1, 100 + i), {"x"}, {item}).txns[0]);
  }
  CombinePolicy policy;
  policy.exhaustive_limit = 4;  // force the greedy path
  wal::LogEntry combined = CombineTransactions(own, candidates, policy);
  EXPECT_EQ(combined.txns.size(), 11u);  // all compatible
}

TEST(CombineTest, DisabledPolicyKeepsOwnOnly) {
  const wal::LogEntry own = EntryFor(MakeTxnId(0, 1), {}, {"a"});
  CombinePolicy policy;
  policy.enabled = false;
  wal::LogEntry combined = CombineTransactions(
      own, {EntryFor(MakeTxnId(1, 1), {"p"}, {"q"}).txns[0]}, policy);
  EXPECT_EQ(combined.txns.size(), 1u);
}

// ----------------------------------------------- enhancedFindWinningVal

TEST(EnhancedSelectionTest, NoVotesProposesOwn) {
  const wal::LogEntry own = EntryFor(MakeTxnId(0, 1));
  std::vector<LastVote> votes = {Vote(0, kNullBallot, std::nullopt),
                                 Vote(1, kNullBallot, std::nullopt),
                                 Vote(2, kNullBallot, std::nullopt)};
  SelectionDecision d = EnhancedFindWinningValue(votes, 3, 3, own, {});
  EXPECT_EQ(d.kind, SelectionKind::kPropose);
  EXPECT_EQ(d.value.Fingerprint(), own.Fingerprint());
  EXPECT_FALSE(d.combined);
}

TEST(EnhancedSelectionTest, CombinesInsideSafeWindow) {
  // One vote among three responses: no value can have a majority, so the
  // proposer merges the discovered transaction with its own.
  const wal::LogEntry own = EntryFor(MakeTxnId(0, 1), {"x"}, {"a"});
  const wal::LogEntry other = EntryFor(MakeTxnId(1, 1), {"y"}, {"b"});
  std::vector<LastVote> votes = {Vote(0, Ballot{1, 1}, other),
                                 Vote(1, kNullBallot, std::nullopt),
                                 Vote(2, kNullBallot, std::nullopt)};
  SelectionDecision d = EnhancedFindWinningValue(votes, 3, 3, own, {});
  EXPECT_EQ(d.kind, SelectionKind::kPropose);
  EXPECT_TRUE(d.combined);
  EXPECT_EQ(d.combined_txns, 1);
  EXPECT_TRUE(d.value.ContainsTxn(MakeTxnId(0, 1)));
  EXPECT_TRUE(d.value.ContainsTxn(MakeTxnId(1, 1)));
}

TEST(EnhancedSelectionTest, MissingResponsesShrinkTheWindow) {
  // Same single vote, but only two of five acceptors responded: the three
  // silent ones could all have voted for the same value, so combination is
  // unsafe and the basic rule applies (adopt the max-ballot vote).
  const wal::LogEntry own = EntryFor(MakeTxnId(0, 1));
  const wal::LogEntry other = EntryFor(MakeTxnId(1, 1));
  std::vector<LastVote> votes = {Vote(0, Ballot{1, 1}, other),
                                 Vote(1, kNullBallot, std::nullopt)};
  SelectionDecision d = EnhancedFindWinningValue(votes, 2, 5, own, {});
  EXPECT_EQ(d.kind, SelectionKind::kPropose);
  EXPECT_FALSE(d.combined);
  EXPECT_EQ(d.value.Fingerprint(), other.Fingerprint());  // adopted
}

TEST(EnhancedSelectionTest, SameBallotMajorityIsLost) {
  const wal::LogEntry own = EntryFor(MakeTxnId(0, 1));
  const wal::LogEntry winner = EntryFor(MakeTxnId(1, 1));
  std::vector<LastVote> votes = {Vote(0, Ballot{2, 1}, winner),
                                 Vote(1, Ballot{2, 1}, winner),
                                 Vote(2, kNullBallot, std::nullopt)};
  SelectionDecision d = EnhancedFindWinningValue(votes, 3, 3, own, {});
  EXPECT_EQ(d.kind, SelectionKind::kLost);
  EXPECT_EQ(d.value.Fingerprint(), winner.Fingerprint());
}

TEST(EnhancedSelectionTest, OwnInsideMajorityValueIsNotLost) {
  // Someone else combined our transaction into the winning list: we are
  // winning, not losing — fall through to the basic rule and drive it.
  const wal::LogEntry own = EntryFor(MakeTxnId(0, 1), {}, {"a"});
  wal::LogEntry list = EntryFor(MakeTxnId(1, 1), {}, {"b"});
  list.txns.push_back(own.txns[0]);
  std::vector<LastVote> votes = {Vote(0, Ballot{2, 1}, list),
                                 Vote(1, Ballot{2, 1}, list),
                                 Vote(2, kNullBallot, std::nullopt)};
  SelectionDecision d = EnhancedFindWinningValue(votes, 3, 3, own, {});
  EXPECT_EQ(d.kind, SelectionKind::kPropose);
  EXPECT_EQ(d.value.Fingerprint(), list.Fingerprint());
}

TEST(EnhancedSelectionTest, MixedBallotMajorityIsNotTreatedAsDecided) {
  // Three votes for the same value at *different* ballots do not prove the
  // value was chosen (docs/ARCHITECTURE.md note D1, the soundness
  // refinement): the
  // selection must fall back to the basic rule rather than reporting kLost.
  const wal::LogEntry own = EntryFor(MakeTxnId(0, 1));
  const wal::LogEntry leading = EntryFor(MakeTxnId(1, 1));
  std::vector<LastVote> votes = {Vote(0, Ballot{1, 1}, leading),
                                 Vote(1, Ballot{2, 1}, leading),
                                 Vote(2, Ballot{3, 1}, leading)};
  SelectionDecision d = EnhancedFindWinningValue(votes, 3, 3, own, {});
  EXPECT_EQ(d.kind, SelectionKind::kPropose);
  EXPECT_EQ(d.value.Fingerprint(), leading.Fingerprint());
}

TEST(EnhancedSelectionTest, TwoCompetingVotesCombine) {
  // D=5, all responded, two distinct single-vote values: window holds
  // (1 + 0 <= 2), so all three transactions can share the position.
  const wal::LogEntry own = EntryFor(MakeTxnId(0, 1), {}, {"a"});
  const wal::LogEntry v1 = EntryFor(MakeTxnId(1, 1), {}, {"b"});
  const wal::LogEntry v2 = EntryFor(MakeTxnId(2, 1), {}, {"c"});
  std::vector<LastVote> votes = {Vote(0, Ballot{1, 1}, v1),
                                 Vote(1, Ballot{1, 2}, v2),
                                 Vote(2, kNullBallot, std::nullopt),
                                 Vote(3, kNullBallot, std::nullopt),
                                 Vote(4, kNullBallot, std::nullopt)};
  SelectionDecision d = EnhancedFindWinningValue(votes, 5, 5, own, {});
  EXPECT_EQ(d.kind, SelectionKind::kPropose);
  EXPECT_EQ(d.combined_txns, 2);
  EXPECT_EQ(d.value.txns.size(), 3u);
}

}  // namespace
}  // namespace paxoscp::paxos
