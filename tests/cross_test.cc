// Cross-group transactions (design note D8): 2PC over the per-group
// Paxos-CP logs. Covers the wire format (v2 entries round-trip; plain
// entries keep the v1 bytes and fingerprints), the WAL side tables
// (pending prepares hold SafeReadPos and the applied watermark), the
// commit path (atomic multi-group transfer, conflict aborts, the shared
// commit order), coordinator-crash recovery (prepared-but-undecided
// transactions resolved to a canonical decision by a stateless recovery
// client), the checker's cross-group obligations, and the Session-level
// BeginCross / RunTransaction(groups, ...) API.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/db.h"
#include "net/network.h"
#include "sim/coro.h"
#include "txn/client.h"
#include "txn/cross.h"
#include "txn/messages.h"
#include "txn/service.h"
#include "txn/txn.h"
#include "wal/log.h"
#include "wal/log_entry.h"
#include "workload/generator.h"
#include "workload/runner.h"

namespace paxoscp {
namespace {

using txn::ClientOptions;
using txn::CrossCommitResult;
using txn::CrossTxn;
using txn::CrossTxnResult;
using txn::Session;
using txn::TxnOutcome;

core::ClusterConfig TestConfig(uint64_t seed = 31) {
  core::ClusterConfig config = *core::ClusterConfig::FromCode("VVV");
  config.seed = seed;
  return config;
}

// ------------------------------------------------------------ wire format

TEST(CrossLogEntryTest, PlainEntriesKeepV1BytesAndFingerprint) {
  wal::LogEntry entry;
  wal::TxnRecord t;
  t.id = MakeTxnId(1, 7);
  t.origin_dc = 1;
  t.read_pos = 3;
  t.reads.push_back({{"row", "a"}, MakeTxnId(0, 1), 2});
  t.writes.push_back({{"row", "b"}, "value"});
  entry.txns.push_back(t);
  entry.winner_dc = 1;

  ASSERT_FALSE(entry.HasCrossRecords());
  const std::string encoded = entry.Encode();
  // v1 layout: the first byte is the zigzag varint of winner_dc (1 -> 2),
  // NOT the v2 marker.
  ASSERT_FALSE(encoded.empty());
  EXPECT_EQ(static_cast<unsigned char>(encoded[0]), 2u);
  Result<wal::LogEntry> decoded = wal::LogEntry::Decode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, entry);
}

TEST(CrossLogEntryTest, PrepareAndDecideRecordsRoundTrip) {
  wal::LogEntry entry;
  wal::TxnRecord prepare;
  prepare.id = MakeTxnId(0, 9);
  prepare.origin_dc = 0;
  prepare.read_pos = 5;
  prepare.kind = wal::RecordKind::kPrepare;
  prepare.cross_ts = 123456;
  prepare.participants = {"alpha", "beta"};
  prepare.reads.push_back({{"row", "x"}, 0, 0});
  prepare.writes.push_back({{"row", "y"}, "v"});
  wal::TxnRecord decide;
  decide.id = MakeTxnId(2, 4);
  decide.origin_dc = 2;
  decide.kind = wal::RecordKind::kDecide;
  decide.commit_decision = true;
  wal::TxnRecord data;
  data.id = MakeTxnId(1, 1);
  data.origin_dc = 1;
  data.writes.push_back({{"row", "z"}, "w"});
  entry.txns = {prepare, data, decide};
  entry.winner_dc = 0;

  ASSERT_TRUE(entry.HasCrossRecords());
  Result<wal::LogEntry> decoded = wal::LogEntry::Decode(entry.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, entry);
  EXPECT_NE(entry.FindPrepare(prepare.id), nullptr);
  EXPECT_NE(entry.FindDecide(decide.id), nullptr);
  EXPECT_EQ(entry.FindDecide(prepare.id), nullptr);
}

// --------------------------------------------------------- WAL side tables

TEST(CrossWalTest, PendingPrepareHoldsSafeReadPosAndWatermark) {
  kvstore::MultiVersionStore store;
  wal::WriteAheadLog log(&store, "g");

  wal::LogEntry data;
  wal::TxnRecord u;
  u.id = MakeTxnId(0, 1);
  u.writes.push_back({{"r", "a"}, "1"});
  data.txns.push_back(u);
  data.winner_dc = 0;
  ASSERT_TRUE(log.SetEntry(1, data).ok());

  wal::LogEntry prep_entry;
  wal::TxnRecord p;
  p.id = MakeTxnId(1, 2);
  p.kind = wal::RecordKind::kPrepare;
  p.cross_ts = 10;
  p.participants = {"g", "h"};
  p.read_pos = 1;
  p.writes.push_back({{"r", "a"}, "2"});
  prep_entry.txns.push_back(p);
  prep_entry.winner_dc = 1;
  ASSERT_TRUE(log.SetEntry(2, prep_entry).ok());

  // The prepare is pending: reads and the watermark stay below it.
  EXPECT_EQ(log.MaxDecided(), 2u);
  EXPECT_EQ(log.SafeReadPos(), 1u);
  ASSERT_EQ(log.PendingPrepares().size(), 1u);
  EXPECT_EQ(log.PendingPrepares()[0].pos, 2u);
  EXPECT_EQ(log.PendingPrepares()[0].txn, p.id);
  LogPos missing = 0;
  TxnId undecided = 0;
  Status held = log.ApplyThrough(2, &missing, &undecided);
  EXPECT_EQ(held.code(), Status::Code::kFailedPrecondition);
  EXPECT_EQ(missing, 2u);
  EXPECT_EQ(undecided, p.id);
  EXPECT_EQ(log.AppliedThrough(), 1u);
  // The held-back write is invisible.
  EXPECT_EQ(log.ReadItem({"r", "a"}, 1).value, "1");

  // Commit-order watermark covers the prepare.
  uint64_t max_ts = 0;
  TxnId max_id = 0;
  log.MaxCrossOrder(&max_ts, &max_id);
  EXPECT_EQ(max_ts, 10u);
  EXPECT_EQ(max_id, p.id);

  // A commit decide unblocks everything and the write lands at the
  // *prepare* position.
  wal::LogEntry dec_entry;
  wal::TxnRecord d;
  d.id = p.id;
  d.kind = wal::RecordKind::kDecide;
  d.commit_decision = true;
  dec_entry.txns.push_back(d);
  dec_entry.winner_dc = 0;
  ASSERT_TRUE(log.SetEntry(3, dec_entry).ok());
  EXPECT_TRUE(log.PendingPrepares().empty());
  EXPECT_EQ(log.SafeReadPos(), 3u);
  ASSERT_TRUE(log.ApplyThrough(3).ok());
  wal::ItemRead read = log.ReadItem({"r", "a"}, 3);
  EXPECT_EQ(read.value, "2");
  EXPECT_EQ(read.writer, p.id);
  EXPECT_EQ(read.written_pos, 2u);
}

TEST(CrossWalTest, AbortDecidedPrepareIsANoOp) {
  kvstore::MultiVersionStore store;
  wal::WriteAheadLog log(&store, "g");

  wal::LogEntry prep_entry;
  wal::TxnRecord p;
  p.id = MakeTxnId(0, 5);
  p.kind = wal::RecordKind::kPrepare;
  p.cross_ts = 4;
  p.participants = {"g"};
  p.writes.push_back({{"r", "a"}, "doomed"});
  prep_entry.txns.push_back(p);
  prep_entry.winner_dc = 0;
  ASSERT_TRUE(log.SetEntry(1, prep_entry).ok());

  // Decide learned BEFORE the prepare would be applied (and decides can
  // even be learned before the prepare entry itself — born-decided).
  wal::LogEntry dec_entry;
  wal::TxnRecord d;
  d.id = p.id;
  d.kind = wal::RecordKind::kDecide;
  d.commit_decision = false;
  dec_entry.txns.push_back(d);
  dec_entry.winner_dc = 0;
  ASSERT_TRUE(log.SetEntry(2, dec_entry).ok());

  ASSERT_TRUE(log.ApplyThrough(2).ok());
  EXPECT_FALSE(log.ReadItem({"r", "a"}, 2).found);
  ASSERT_TRUE(log.DecisionFor(p.id).known);
  EXPECT_FALSE(log.DecisionFor(p.id).commit);
}

TEST(CrossWalTest, DecideLearnedBeforePrepareMeansNeverPending) {
  kvstore::MultiVersionStore store;
  wal::WriteAheadLog log(&store, "g");

  wal::TxnRecord d;
  d.id = MakeTxnId(0, 8);
  d.kind = wal::RecordKind::kDecide;
  d.commit_decision = true;
  wal::LogEntry dec_entry;
  dec_entry.txns.push_back(d);
  dec_entry.winner_dc = 0;
  ASSERT_TRUE(log.SetEntry(2, dec_entry).ok());

  wal::TxnRecord p;
  p.id = d.id;
  p.kind = wal::RecordKind::kPrepare;
  p.cross_ts = 9;
  p.participants = {"g"};
  p.writes.push_back({{"r", "a"}, "late"});
  wal::LogEntry prep_entry;
  prep_entry.txns.push_back(p);
  prep_entry.winner_dc = 0;
  ASSERT_TRUE(log.SetEntry(1, prep_entry).ok());

  EXPECT_TRUE(log.PendingPrepares().empty());
  EXPECT_EQ(log.SafeReadPos(), 2u);
  ASSERT_TRUE(log.ApplyThrough(2).ok());
  EXPECT_EQ(log.ReadItem({"r", "a"}, 2).value, "late");
}

// ------------------------------------------------------------ commit path

TEST(CrossTxnTest, AtomicTransferAcrossGroups) {
  Db db(TestConfig());
  ASSERT_TRUE(db.Load("acct_a", "row", {{"balance", "100"}}).ok());
  ASSERT_TRUE(db.Load("acct_b", "row", {{"balance", "100"}}).ok());
  Session session = db.Session(0);

  struct Probe {
    CrossCommitResult commit;
    std::string a_after, b_after;
    Status read_status = Status::OK();
  } probe;

  struct {
    sim::Task operator()(Session* s, Probe* out) {
      const std::vector<std::string> both = {"acct_a", "acct_b"};
      CrossTxn txn = co_await s->BeginCross(both);
      EXPECT_TRUE(txn.active()) << txn.begin_status().ToString();
      if (!txn.active()) co_return;
      Result<std::string> a = co_await txn.Read("acct_a", "row", "balance");
      Result<std::string> b = co_await txn.Read("acct_b", "row", "balance");
      EXPECT_TRUE(a.ok() && b.ok());
      if (!a.ok() || !b.ok()) co_return;
      (void)txn.Write("acct_a", "row", "balance",
                      std::to_string(std::stoi(*a) - 30));
      (void)txn.Write("acct_b", "row", "balance",
                      std::to_string(std::stoi(*b) + 30));
      out->commit = co_await txn.Commit();

      // A later transaction observes both effects.
      const std::vector<std::string> both2 = {"acct_a", "acct_b"};
      CrossTxn audit = co_await s->BeginCross(both2);
      EXPECT_TRUE(audit.active()) << audit.begin_status().ToString();
      if (!audit.active()) co_return;
      Result<std::string> a2 = co_await audit.Read("acct_a", "row", "balance");
      Result<std::string> b2 = co_await audit.Read("acct_b", "row", "balance");
      if (!a2.ok() || !b2.ok()) {
        out->read_status = a2.ok() ? b2.status() : a2.status();
      } else {
        out->a_after = *a2;
        out->b_after = *b2;
      }
      audit.Abort();
    }
  } run;
  run(&session, &probe);
  db.Run();

  ASSERT_TRUE(probe.commit.committed) << probe.commit.status.ToString();
  EXPECT_EQ(probe.commit.prepare_positions.size(), 2u);
  EXPECT_GT(probe.commit.decide_pos, 0u);
  ASSERT_TRUE(probe.read_status.ok()) << probe.read_status.ToString();
  EXPECT_EQ(probe.a_after, "70");
  EXPECT_EQ(probe.b_after, "130");

  core::CheckReport report = db.Check(std::vector<std::string>{"acct_a", "acct_b"});
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(CrossTxnTest, ReadManyReturnsSpecOrderWithPerSlotFailures) {
  // The batched read (D9) fans the specs out concurrently but must return
  // results in spec order, and an invalid spec — reserved attribute,
  // non-participant group — fails only its own slot.
  Db db(TestConfig());
  ASSERT_TRUE(db.Load("a", "row", {{"x", "1"}}).ok());
  ASSERT_TRUE(db.Load("b", "row", {{"y", "2"}}).ok());
  Session session = db.Session(0);

  struct Probe {
    std::vector<Result<std::string>> values;
  } probe;
  struct Run {
    sim::Task operator()(Session* s, Probe* out) {
      const std::vector<std::string> ab = {"a", "b"};
      CrossTxn txn = co_await s->BeginCross(ab);
      EXPECT_TRUE(txn.active()) << txn.begin_status().ToString();
      if (!txn.active()) co_return;
      // Deliberately out of group order, with a repeat and two bad specs.
      const std::vector<txn::CrossRead> batch = {
          {"b", "row", "y"},
          {"a", "row", "x"},
          {"a", "row", wal::kWholeRowAttribute},
          {"c", "row", "x"},
          {"b", "row", "y"},
      };
      out->values = co_await txn.ReadMany(&batch);
      txn.Abort();
    }
  } run;
  run(&session, &probe);
  db.Run();

  ASSERT_EQ(probe.values.size(), 5u);
  ASSERT_TRUE(probe.values[0].ok()) << probe.values[0].status().ToString();
  EXPECT_EQ(*probe.values[0], "2");
  ASSERT_TRUE(probe.values[1].ok()) << probe.values[1].status().ToString();
  EXPECT_EQ(*probe.values[1], "1");
  EXPECT_EQ(probe.values[2].status().code(),
            Status::Code::kInvalidArgument);  // reserved attribute
  EXPECT_EQ(probe.values[3].status().code(),
            Status::Code::kInvalidArgument);  // 'c' not a participant
  ASSERT_TRUE(probe.values[4].ok()) << probe.values[4].status().ToString();
  EXPECT_EQ(*probe.values[4], "2");
}

TEST(CrossTxnTest, RequiresPaxosCp) {
  Db db(TestConfig());
  ASSERT_TRUE(db.Load("a", "row", {{"x", "0"}}).ok());
  ClientOptions basic;
  basic.protocol = txn::Protocol::kBasicPaxos;
  Session session = db.Session(0, basic);

  struct Probe {
    Status begin = Status::OK();
  } probe;
  struct {
    sim::Task operator()(Session* s, Probe* out) {
      const std::vector<std::string> ab = {"a", "b"};
      CrossTxn txn = co_await s->BeginCross(ab);
      out->begin = txn.begin_status();
      EXPECT_FALSE(txn.active());
    }
  } run;
  run(&session, &probe);
  db.Run();
  EXPECT_EQ(probe.begin.code(), Status::Code::kInvalidArgument);
}

TEST(CrossTxnTest, ConflictingCrossTxnsSerializeOrAbort) {
  Db db(TestConfig());
  ASSERT_TRUE(db.Load("a", "row", {{"x", "0"}}).ok());
  ASSERT_TRUE(db.Load("b", "row", {{"y", "0"}}).ok());

  // Two sessions race read-modify-write transactions over the same two
  // groups and items; serializability across groups must hold whatever
  // interleaving the simulator produces.
  struct Probe {
    CrossTxnResult r1, r2;
  } probe;
  Session s1 = db.Session(0);
  Session s2 = db.Session(1);

  auto body = [](CrossTxn* txn) -> sim::Coro<Status> {
    Result<std::string> x = co_await txn->Read("a", "row", "x");
    if (!x.ok()) co_return x.status();
    Result<std::string> y = co_await txn->Read("b", "row", "y");
    if (!y.ok()) co_return y.status();
    Status wx = txn->Write("a", "row", "x", std::to_string(std::stoi(*y) + 1));
    if (!wx.ok()) co_return wx;
    Status wy = txn->Write("b", "row", "y", std::to_string(std::stoi(*x) + 1));
    if (!wy.ok()) co_return wy;
    co_return Status::OK();
  };

  struct {
    sim::Task operator()(Session* s, txn::CrossTxnBody body,
                         CrossTxnResult* out) {
      const std::vector<std::string> ab = {"a", "b"};
      *out = co_await s->RunTransaction(ab, std::move(body));
    }
  } run;
  run(&s1, body, &probe.r1);
  run(&s2, body, &probe.r2);
  db.Run();

  // With retries both should eventually commit (no deadlock, no livelock
  // in this 2-txn race), and the combined history must be serializable.
  EXPECT_TRUE(probe.r1.committed()) << probe.r1.status.ToString();
  EXPECT_TRUE(probe.r2.committed()) << probe.r2.status.ToString();
  core::CheckReport report = db.Check(std::vector<std::string>{"a", "b"});
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(CrossTxnTest, MixedSingleAndCrossTrafficStaysSerializable) {
  Db db(TestConfig(77));
  ASSERT_TRUE(db.Load("a", "row", {{"x", "0"}, {"w", "0"}}).ok());
  ASSERT_TRUE(db.Load("b", "row", {{"y", "0"}}).ok());
  Session cross_session = db.Session(0);
  Session single_session = db.Session(1);

  struct Probe {
    CrossTxnResult cross;
    txn::TxnResult single;
  } probe;

  struct CrossRun {
    sim::Task operator()(Session* s, CrossTxnResult* out) {
      const std::vector<std::string> ab = {"a", "b"};
      *out = co_await s->RunTransaction(
          ab, [](CrossTxn* txn) -> sim::Coro<Status> {
            Result<std::string> x = co_await txn->Read("a", "row", "x");
            if (!x.ok()) co_return x.status();
            Status w = txn->Write("b", "row", "y", *x + "!");
            if (!w.ok()) co_return w;
            co_return Status::OK();
          });
    }
  } cross_run;
  struct SingleRun {
    sim::Task operator()(Session* s, txn::TxnResult* out) {
      *out = co_await s->RunTransaction(
          "a", [](txn::Txn* txn) -> sim::Coro<Status> {
            Result<std::string> w = co_await txn->Read("row", "w");
            if (!w.ok()) co_return w.status();
            Status ww = txn->Write("row", "w", *w + "1");
            if (!ww.ok()) co_return ww;
            Status wx = txn->Write("row", "x", "9");
            if (!wx.ok()) co_return wx;
            co_return Status::OK();
          });
    }
  } single_run;
  cross_run(&cross_session, &probe.cross);
  single_run(&single_session, &probe.single);
  db.Run();

  EXPECT_TRUE(probe.cross.committed()) << probe.cross.status.ToString();
  EXPECT_TRUE(probe.single.committed()) << probe.single.status.ToString();
  core::CheckReport report = db.Check(std::vector<std::string>{"a", "b"});
  EXPECT_TRUE(report.ok) << report.ToString();
}

// ----------------------------------------------------- crash and recovery

TEST(CrossRecoveryTest, CoordinatorCrashBetweenPrepareAndDecideIsRecovered) {
  Db db(TestConfig(41));
  ASSERT_TRUE(db.Load("a", "row", {{"x", "0"}}).ok());
  ASSERT_TRUE(db.Load("b", "row", {{"y", "0"}}).ok());

  // The crashing coordinator: walks away after both prepares land,
  // leaving prepared-but-undecided records in both logs.
  ClientOptions crashy;
  crashy.crash_after_prepares = 2;
  Session doomed = db.Session(0, crashy);

  struct Probe {
    CrossCommitResult crash_commit;
    TxnId crashed_id = 0;
    Status held_read = Status::OK();
    LogPos held_read_pos = 99;
  } probe;

  struct CrashRun {
    sim::Task operator()(Session* s, Probe* out) {
      const std::vector<std::string> ab = {"a", "b"};
      CrossTxn txn = co_await s->BeginCross(ab);
      EXPECT_TRUE(txn.active()) << txn.begin_status().ToString();
      if (!txn.active()) co_return;
      out->crashed_id = txn.id();
      (void)txn.Write("a", "row", "x", "crashed");
      (void)txn.Write("b", "row", "y", "crashed");
      out->crash_commit = co_await txn.Commit();
    }
  } crash_run;
  crash_run(&doomed, &probe);
  db.Run();

  ASSERT_TRUE(probe.crash_commit.unknown)
      << probe.crash_commit.status.ToString();
  ASSERT_EQ(probe.crash_commit.prepare_positions.size(), 2u);
  // Both groups hold a pending prepare; the read frontier is held below it.
  for (const char* g : {"a", "b"}) {
    EXPECT_FALSE(
        db.cluster()->service(0)->GroupLog(g)->PendingPrepares().empty())
        << g;
  }

  struct HeldProbe {
    LogPos read_pos = 99;
  } held;
  Session reader = db.Session(1);
  struct HeldRun {
    sim::Task operator()(Session* s, HeldProbe* out, LogPos* prep_pos) {
      txn::Txn txn = co_await s->Begin("a");
      EXPECT_TRUE(txn.active());
      if (!txn.active()) co_return;
      out->read_pos = txn.read_pos();
      (void)*prep_pos;
      txn.Abort();
    }
  } held_run;
  LogPos prep_a = probe.crash_commit.prepare_positions.at("a");
  held_run(&reader, &held, &prep_a);
  db.Run();
  EXPECT_LT(held.read_pos, prep_a);

  // A recovery client (any client, anywhere) resolves the transaction.
  // No decide exists, so recovery forces abort in the commit group and
  // propagates it.
  struct RecoveryProbe {
    Status recovered = Status::Internal("unset");
  } rec;
  txn::TransactionClient* recovery =
      db.cluster()->CreateClient(2, ClientOptions{});
  struct RecoveryRun {
    sim::Task operator()(txn::TransactionClient* c, TxnId id,
                         RecoveryProbe* out) {
      out->recovered = co_await c->RecoverCrossTxn("a", id);
    }
  } recovery_run;
  recovery_run(recovery, probe.crashed_id, &rec);
  db.Run();
  ASSERT_TRUE(rec.recovered.ok()) << rec.recovered.ToString();

  // Pendings cleared everywhere that learned the decide; the crashed
  // writes never surface; the checker is green across both groups.
  EXPECT_TRUE(
      db.cluster()->service(0)->GroupLog("a")->PendingPrepares().empty());
  EXPECT_TRUE(
      db.cluster()->service(0)->GroupLog("b")->PendingPrepares().empty());

  struct AfterProbe {
    std::string x, y;
    Status status = Status::OK();
  } after;
  Session verify = db.Session(1);
  struct AfterRun {
    sim::Task operator()(Session* s, AfterProbe* out) {
      const std::vector<std::string> ab = {"a", "b"};
      CrossTxn txn = co_await s->BeginCross(ab);
      EXPECT_TRUE(txn.active()) << txn.begin_status().ToString();
      if (!txn.active()) co_return;
      Result<std::string> x = co_await txn.Read("a", "row", "x");
      Result<std::string> y = co_await txn.Read("b", "row", "y");
      if (!x.ok() || !y.ok()) {
        out->status = x.ok() ? y.status() : x.status();
      } else {
        out->x = *x;
        out->y = *y;
      }
      txn.Abort();
    }
  } after_run;
  after_run(&verify, &after);
  db.Run();
  ASSERT_TRUE(after.status.ok()) << after.status.ToString();
  EXPECT_EQ(after.x, "0");
  EXPECT_EQ(after.y, "0");

  core::CheckReport report = db.Check(std::vector<std::string>{"a", "b"});
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(CrossRecoveryTest, PartialPrepareCrashIsRecovered) {
  // The classic blocking-2PC window: the coordinator dies after ONE of
  // two prepares landed — group "a" holds a pending prepare, group "b"
  // was never contacted. Recovery must force abort through the commit
  // group and unblock "a" even though "b" has no trace of the txn.
  Db db(TestConfig(47));
  ASSERT_TRUE(db.Load("a", "row", {{"x", "0"}}).ok());
  ASSERT_TRUE(db.Load("b", "row", {{"y", "0"}}).ok());

  ClientOptions crashy;
  crashy.crash_after_prepares = 1;
  // Sequential mode: the "second group never contacted" window only
  // exists for a one-group-at-a-time coordinator. (The parallel window —
  // all legs in flight when the gate trips — is covered below in
  // ParallelPartialPrepareCrashIsRecovered.)
  crashy.parallel_commit = false;
  Session doomed = db.Session(0, crashy);

  struct Probe {
    CrossCommitResult crash_commit;
    TxnId crashed_id = 0;
  } probe;
  struct CrashRun {
    sim::Task operator()(Session* s, Probe* out) {
      const std::vector<std::string> ab = {"a", "b"};
      CrossTxn txn = co_await s->BeginCross(ab);
      EXPECT_TRUE(txn.active()) << txn.begin_status().ToString();
      if (!txn.active()) co_return;
      out->crashed_id = txn.id();
      (void)txn.Write("a", "row", "x", "half");
      (void)txn.Write("b", "row", "y", "half");
      out->crash_commit = co_await txn.Commit();
    }
  } crash_run;
  crash_run(&doomed, &probe);
  db.Run();

  ASSERT_TRUE(probe.crash_commit.unknown)
      << probe.crash_commit.status.ToString();
  // Exactly one prepare landed: the partial window is real.
  ASSERT_EQ(probe.crash_commit.prepare_positions.size(), 1u);
  EXPECT_FALSE(
      db.cluster()->service(0)->GroupLog("a")->PendingPrepares().empty());
  EXPECT_TRUE(
      db.cluster()->service(0)->GroupLog("b")->PendingPrepares().empty());

  struct RecoveryProbe {
    Status recovered = Status::Internal("unset");
  } rec;
  txn::TransactionClient* recovery =
      db.cluster()->CreateClient(1, ClientOptions{});
  struct RecoveryRun {
    sim::Task operator()(txn::TransactionClient* c, TxnId id,
                         RecoveryProbe* out) {
      out->recovered = co_await c->RecoverCrossTxn("a", id);
    }
  } recovery_run;
  recovery_run(recovery, probe.crashed_id, &rec);
  db.Run();
  ASSERT_TRUE(rec.recovered.ok()) << rec.recovered.ToString();

  EXPECT_TRUE(
      db.cluster()->service(0)->GroupLog("a")->PendingPrepares().empty());
  core::CheckReport report = db.Check(std::vector<std::string>{"a", "b"});
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(CrossRecoveryTest, ParallelPartialPrepareCrashIsRecovered) {
  // The parallel-fan-out flavor of the partial-prepare window (D9): with
  // both prepare legs in flight when the crash gate trips, anywhere from
  // one to both prepares may have landed — whatever the interleaving,
  // recovery must force abort through the commit group and release every
  // pending prepare.
  Db db(TestConfig(47));
  ASSERT_TRUE(db.Load("a", "row", {{"x", "0"}}).ok());
  ASSERT_TRUE(db.Load("b", "row", {{"y", "0"}}).ok());

  ClientOptions crashy;
  crashy.crash_after_prepares = 1;  // parallel_commit stays default (on)
  Session doomed = db.Session(0, crashy);

  struct Probe {
    CrossCommitResult crash_commit;
    TxnId crashed_id = 0;
  } probe;
  struct CrashRun {
    sim::Task operator()(Session* s, Probe* out) {
      const std::vector<std::string> ab = {"a", "b"};
      CrossTxn txn = co_await s->BeginCross(ab);
      EXPECT_TRUE(txn.active()) << txn.begin_status().ToString();
      if (!txn.active()) co_return;
      out->crashed_id = txn.id();
      (void)txn.Write("a", "row", "x", "half");
      (void)txn.Write("b", "row", "y", "half");
      out->crash_commit = co_await txn.Commit();
    }
  } crash_run;
  crash_run(&doomed, &probe);
  db.Run();

  ASSERT_TRUE(probe.crash_commit.unknown)
      << probe.crash_commit.status.ToString();
  const size_t landed = probe.crash_commit.prepare_positions.size();
  ASSERT_GE(landed, 1u);  // the gate trips only after a prepare landed
  ASSERT_LE(landed, 2u);

  // The window is real: some group holds a pending prepare. Find one to
  // hand to recovery (any replica that knows it will do).
  std::string stuck_group;
  for (const std::string& group : {std::string("a"), std::string("b")}) {
    for (DcId dc = 0; dc < db.num_datacenters(); ++dc) {
      if (!db.cluster()->service(dc)->GroupLog(group)->PendingPrepares()
               .empty()) {
        stuck_group = group;
      }
    }
  }
  ASSERT_FALSE(stuck_group.empty());

  struct RecoveryProbe {
    Status recovered = Status::Internal("unset");
  } rec;
  txn::TransactionClient* recovery =
      db.cluster()->CreateClient(1, ClientOptions{});
  struct RecoveryRun {
    sim::Task operator()(txn::TransactionClient* c, std::string group,
                         TxnId id, RecoveryProbe* out) {
      out->recovered = co_await c->RecoverCrossTxn(group, id);
    }
  } recovery_run;
  recovery_run(recovery, stuck_group, probe.crashed_id, &rec);
  db.Run();
  ASSERT_TRUE(rec.recovered.ok()) << rec.recovered.ToString();

  // Every frontier is released and the forced abort kept the old values.
  for (const std::string& group : {std::string("a"), std::string("b")}) {
    for (DcId dc = 0; dc < db.num_datacenters(); ++dc) {
      EXPECT_TRUE(db.cluster()
                      ->service(dc)
                      ->GroupLog(group)
                      ->PendingPrepares()
                      .empty())
          << "group " << group << " dc " << dc;
    }
  }
  wal::WriteAheadLog* log_a = db.cluster()->service(0)->GroupLog("a");
  ASSERT_TRUE(log_a->ApplyThrough(log_a->SafeReadPos()).ok());
  EXPECT_EQ(log_a->ReadItem({"row", "x"}, log_a->SafeReadPos()).value, "0");
  core::CheckReport report = db.Check(std::vector<std::string>{"a", "b"});
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(CrossRecoveryTest, RecoveryAdoptsExistingCommitDecision) {
  Db db(TestConfig(43));
  ASSERT_TRUE(db.Load("a", "row", {{"x", "0"}}).ok());
  ASSERT_TRUE(db.Load("b", "row", {{"y", "0"}}).ok());

  // Crash after prepares AND after the commit decide landed in the commit
  // group but before propagation: crash_after_prepares can't express
  // that, so emulate by committing fully, then re-running recovery — it
  // must adopt the existing commit decision, not abort.
  Session session = db.Session(0);
  struct Probe {
    CrossCommitResult commit;
    TxnId id = 0;
  } probe;
  struct CommitRun {
    sim::Task operator()(Session* s, Probe* out) {
      const std::vector<std::string> ab = {"a", "b"};
      CrossTxn txn = co_await s->BeginCross(ab);
      EXPECT_TRUE(txn.active());
      if (!txn.active()) co_return;
      out->id = txn.id();
      (void)txn.Write("a", "row", "x", "committed");
      (void)txn.Write("b", "row", "y", "committed");
      out->commit = co_await txn.Commit();
    }
  } commit_run;
  commit_run(&session, &probe);
  db.Run();
  ASSERT_TRUE(probe.commit.committed) << probe.commit.status.ToString();

  struct RecoveryProbe {
    Status recovered = Status::Internal("unset");
  } rec;
  txn::TransactionClient* recovery =
      db.cluster()->CreateClient(1, ClientOptions{});
  struct RecoveryRun {
    sim::Task operator()(txn::TransactionClient* c, TxnId id,
                         RecoveryProbe* out) {
      out->recovered = co_await c->RecoverCrossTxn("b", id);
    }
  } recovery_run;
  recovery_run(recovery, probe.id, &rec);
  db.Run();
  ASSERT_TRUE(rec.recovered.ok()) << rec.recovered.ToString();

  // Still committed (recovery must not flip a decided transaction) and
  // the writes survive.
  core::CheckReport report = db.Check(std::vector<std::string>{"a", "b"});
  EXPECT_TRUE(report.ok) << report.ToString();
  wal::WriteAheadLog* log_a = db.cluster()->service(0)->GroupLog("a");
  ASSERT_TRUE(log_a->ApplyThrough(log_a->SafeReadPos()).ok());
  wal::ItemRead x = log_a->ReadItem({"row", "x"}, log_a->SafeReadPos());
  EXPECT_EQ(x.value, "committed");
}

// ---------------------------------------------------------- determinism

/// Order-independent digest of one group's decided log: fold every decided
/// entry's fingerprint position-by-position (FNV-style). Two runs with the
/// same seed must produce byte-identical logs, so the digests must match.
uint64_t LogDigest(const wal::WriteAheadLog* log) {
  uint64_t digest = 1469598103934665603ull;
  for (LogPos pos = 1; pos <= log->MaxDecided(); ++pos) {
    if (!log->HasEntry(pos)) continue;
    Result<wal::LogEntry> entry = log->GetEntry(pos);
    digest ^= pos;
    digest *= 1099511628211ull;
    digest ^= entry.ok() ? entry->Fingerprint() : 0;
    digest *= 1099511628211ull;
  }
  return digest;
}

struct DeterminismRun {
  workload::RunStats stats;
  std::vector<uint64_t> digests;  // per group, per datacenter
};

DeterminismRun RunShardedWorkload(uint64_t seed) {
  core::ClusterConfig config = TestConfig(911);
  core::Cluster cluster(config);

  workload::RunnerConfig runner;
  runner.workload.num_attributes = 40;
  runner.workload.num_groups = 3;
  runner.workload.cross_fraction = 0.35;
  runner.workload.groups_per_cross_txn = 3;
  runner.total_txns = 90;
  runner.num_threads = 3;
  runner.stagger = 200 * kMillisecond;
  runner.target_rate_tps = 1.0;
  runner.seed = seed;  // parallel_commit stays default (on)

  DeterminismRun out;
  out.stats = workload::RunExperiment(&cluster, runner);
  for (int i = 0; i < runner.workload.num_groups; ++i) {
    const std::string name =
        workload::Generator::GroupName(runner.workload, i);
    for (DcId dc = 0; dc < config.num_datacenters(); ++dc) {
      out.digests.push_back(LogDigest(cluster.service(dc)->GroupLog(name)));
    }
  }
  return out;
}

TEST(CrossDeterminismTest, ShardedWorkloadReplaysIdentically) {
  // The async fan-out (parallel begins, prepares, decide propagation,
  // batched reads, concurrent client threads) must stay deterministic:
  // every waiter resumes through the simulator's event queue, so a fixed
  // seed replays to the same commits, the same logs, and the same checker
  // verdict. This is what makes chaos seeds replayable.
  DeterminismRun first = RunShardedWorkload(20260807);
  DeterminismRun second = RunShardedWorkload(20260807);

  EXPECT_EQ(first.stats.attempted, second.stats.attempted);
  EXPECT_EQ(first.stats.committed, second.stats.committed);
  EXPECT_EQ(first.stats.read_only, second.stats.read_only);
  EXPECT_EQ(first.stats.aborted, second.stats.aborted);
  EXPECT_EQ(first.stats.failed, second.stats.failed);
  EXPECT_EQ(first.stats.cross_attempted, second.stats.cross_attempted);
  EXPECT_EQ(first.stats.cross_committed, second.stats.cross_committed);
  EXPECT_EQ(first.stats.cross_aborted, second.stats.cross_aborted);
  EXPECT_EQ(first.stats.cross_unknown, second.stats.cross_unknown);
  EXPECT_EQ(first.stats.messages_sent, second.stats.messages_sent);
  EXPECT_EQ(first.stats.virtual_duration, second.stats.virtual_duration);
  EXPECT_EQ(first.digests, second.digests);

  // The workload actually exercised the parallel cross path, and both
  // replicas of the run pass the full invariant check.
  EXPECT_GT(first.stats.cross_attempted, 0);
  EXPECT_GT(first.stats.cross_committed, 0);
  EXPECT_TRUE(first.stats.check.ok) << first.stats.check.ToString();
  EXPECT_TRUE(second.stats.check.ok) << second.stats.check.ToString();
}

// ------------------------------------------------------- idempotence (D10)

/// Digests of every (group, dc) log — the before/after fingerprint for
/// "this delivery was a no-op" assertions.
std::vector<uint64_t> AllLogDigests(core::Cluster* cluster,
                                    const std::vector<std::string>& groups) {
  std::vector<uint64_t> digests;
  for (const std::string& group : groups) {
    for (DcId dc = 0; dc < cluster->num_datacenters(); ++dc) {
      digests.push_back(LogDigest(cluster->service(dc)->GroupLog(group)));
    }
  }
  return digests;
}

TEST(CrossIdempotenceTest, RedeliveredApplyBroadcastsAreNoOps) {
  // Re-deliver the apply broadcast of EVERY decided entry — which includes
  // the cross prepare entries and the decide entry — to every replica: a
  // network that duplicates messages (D10) does exactly this. Logs, side
  // tables, and the checker verdict must be byte-for-byte unchanged.
  Db db(TestConfig(53));
  ASSERT_TRUE(db.Load("a", "row", {{"x", "0"}}).ok());
  ASSERT_TRUE(db.Load("b", "row", {{"y", "0"}}).ok());

  Session session = db.Session(0);
  struct Probe {
    CrossCommitResult commit;
  } probe;
  struct CommitRun {
    sim::Task operator()(Session* s, Probe* out) {
      const std::vector<std::string> ab = {"a", "b"};
      CrossTxn txn = co_await s->BeginCross(ab);
      EXPECT_TRUE(txn.active());
      if (!txn.active()) co_return;
      (void)txn.Write("a", "row", "x", "once");
      (void)txn.Write("b", "row", "y", "once");
      out->commit = co_await txn.Commit();
    }
  } commit_run;
  commit_run(&session, &probe);
  db.Run();
  ASSERT_TRUE(probe.commit.committed) << probe.commit.status.ToString();

  const std::vector<std::string> groups = {"a", "b"};
  const std::vector<uint64_t> before = AllLogDigests(db.cluster(), groups);
  std::vector<size_t> pending_before;
  for (const std::string& group : groups) {
    for (DcId dc = 0; dc < db.num_datacenters(); ++dc) {
      pending_before.push_back(
          db.cluster()->service(dc)->GroupLog(group)->PendingPrepares().size());
    }
  }

  // Re-deliver every entry (prepares, the decide, plain writes) from dc1.
  int redelivered = 0;
  for (const std::string& group : groups) {
    wal::WriteAheadLog* log = db.cluster()->service(1)->GroupLog(group);
    for (LogPos pos = 1; pos <= log->MaxDecided(); ++pos) {
      if (!log->HasEntry(pos)) continue;
      Result<wal::LogEntry> entry = log->GetEntry(pos);
      ASSERT_TRUE(entry.ok());
      for (DcId dc = 0; dc < db.num_datacenters(); ++dc) {
        db.cluster()->network()->Call(
            1, dc,
            std::any(txn::ServiceRequest(
                txn::ApplyRequest{group, pos, paxos::Ballot(), *entry})));
        ++redelivered;
      }
    }
  }
  ASSERT_GT(redelivered, 0);
  db.Run();

  EXPECT_EQ(AllLogDigests(db.cluster(), groups), before);
  std::vector<size_t> pending_after;
  for (const std::string& group : groups) {
    for (DcId dc = 0; dc < db.num_datacenters(); ++dc) {
      pending_after.push_back(
          db.cluster()->service(dc)->GroupLog(group)->PendingPrepares().size());
    }
  }
  EXPECT_EQ(pending_after, pending_before);
  core::CheckReport report = db.Check(groups);
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(CrossIdempotenceTest, DuplicateRecoveryInvocationsConverge) {
  // Three recovery clients attack the same crashed transaction
  // concurrently, then a fourth re-runs after they finish (the daemon, a
  // quiesce client, and a duplicated request can all collide like this):
  // every invocation must succeed, agree on the outcome, and leave the
  // logs exactly as a single invocation would.
  Db db(TestConfig(41));
  ASSERT_TRUE(db.Load("a", "row", {{"x", "0"}}).ok());
  ASSERT_TRUE(db.Load("b", "row", {{"y", "0"}}).ok());

  ClientOptions crashy;
  crashy.crash_after_prepares = 2;
  Session doomed = db.Session(0, crashy);
  struct Probe {
    CrossCommitResult crash_commit;
    TxnId crashed_id = 0;
  } probe;
  struct CrashRun {
    sim::Task operator()(Session* s, Probe* out) {
      const std::vector<std::string> ab = {"a", "b"};
      CrossTxn txn = co_await s->BeginCross(ab);
      EXPECT_TRUE(txn.active());
      if (!txn.active()) co_return;
      out->crashed_id = txn.id();
      (void)txn.Write("a", "row", "x", "crashed");
      (void)txn.Write("b", "row", "y", "crashed");
      out->crash_commit = co_await txn.Commit();
    }
  } crash_run;
  crash_run(&doomed, &probe);
  db.Run();
  ASSERT_TRUE(probe.crash_commit.unknown);

  struct RecoveryProbe {
    Status recovered = Status::Internal("unset");
  };
  struct RecoveryRun {
    sim::Task operator()(txn::TransactionClient* c, TxnId id,
                         RecoveryProbe* out) {
      out->recovered = co_await c->RecoverCrossTxn("a", id);
    }
  } recovery_run;

  RecoveryProbe first, second, third;
  recovery_run(db.cluster()->CreateClient(0, ClientOptions{}),
               probe.crashed_id, &first);
  recovery_run(db.cluster()->CreateClient(1, ClientOptions{}),
               probe.crashed_id, &second);
  recovery_run(db.cluster()->CreateClient(2, ClientOptions{}),
               probe.crashed_id, &third);
  db.Run();
  EXPECT_TRUE(first.recovered.ok()) << first.recovered.ToString();
  EXPECT_TRUE(second.recovered.ok()) << second.recovered.ToString();
  EXPECT_TRUE(third.recovered.ok()) << third.recovered.ToString();

  const std::vector<std::string> groups = {"a", "b"};
  const std::vector<uint64_t> settled = AllLogDigests(db.cluster(), groups);

  // The late duplicate: recovery of an already-recovered transaction must
  // adopt the existing decision and change nothing.
  RecoveryProbe late;
  recovery_run(db.cluster()->CreateClient(1, ClientOptions{}),
               probe.crashed_id, &late);
  db.Run();
  EXPECT_TRUE(late.recovered.ok()) << late.recovered.ToString();
  EXPECT_EQ(AllLogDigests(db.cluster(), groups), settled);

  for (const std::string& group : groups) {
    for (DcId dc = 0; dc < db.num_datacenters(); ++dc) {
      EXPECT_TRUE(db.cluster()
                      ->service(dc)
                      ->GroupLog(group)
                      ->PendingPrepares()
                      .empty())
          << "group " << group << " dc " << dc;
    }
  }
  // The forced abort stuck: the crashed writes never surface.
  wal::WriteAheadLog* log_a = db.cluster()->service(0)->GroupLog("a");
  ASSERT_TRUE(log_a->ApplyThrough(log_a->SafeReadPos()).ok());
  EXPECT_EQ(log_a->ReadItem({"row", "x"}, log_a->SafeReadPos()).value, "0");
  core::CheckReport report = db.Check(groups);
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(CrossIdempotenceTest, DuplicatingNetworkKeepsWorkloadSerializable) {
  // End-to-end: a network that duplicates a quarter of all requests and
  // holds some back must leave the sharded workload serializable and
  // deterministic (two runs with the same seed produce identical logs).
  auto run_once = [](uint64_t seed) {
    core::Cluster cluster(TestConfig(911));
    cluster.network()->set_duplicate_probability(0.25);
    cluster.network()->set_reorder_probability(0.25);
    cluster.network()->set_reorder_extra_max(50 * kMillisecond);

    workload::RunnerConfig runner;
    runner.workload.num_attributes = 40;
    runner.workload.num_groups = 2;
    runner.workload.cross_fraction = 0.35;
    runner.total_txns = 60;
    runner.num_threads = 3;
    runner.stagger = 200 * kMillisecond;
    runner.target_rate_tps = 1.0;
    runner.seed = seed;

    DeterminismRun out;
    out.stats = workload::RunExperiment(&cluster, runner);
    EXPECT_GT(cluster.network()->messages_duplicated(), 0u);
    EXPECT_GT(cluster.network()->messages_reordered(), 0u);
    for (int i = 0; i < runner.workload.num_groups; ++i) {
      const std::string name =
          workload::Generator::GroupName(runner.workload, i);
      for (DcId dc = 0; dc < cluster.num_datacenters(); ++dc) {
        out.digests.push_back(LogDigest(cluster.service(dc)->GroupLog(name)));
      }
    }
    return out;
  };
  DeterminismRun first = run_once(8120);
  DeterminismRun second = run_once(8120);
  EXPECT_TRUE(first.stats.check.ok) << first.stats.check.ToString();
  EXPECT_GT(first.stats.committed, 0);
  EXPECT_GT(first.stats.cross_committed, 0);
  EXPECT_EQ(first.stats.attempted, second.stats.attempted);
  EXPECT_EQ(first.stats.committed, second.stats.committed);
  EXPECT_EQ(first.stats.messages_sent, second.stats.messages_sent);
  EXPECT_EQ(first.stats.virtual_duration, second.stats.virtual_duration);
  EXPECT_EQ(first.digests, second.digests);
}

// ------------------------------------- service-side recovery daemon (D10)

TEST(RecoveryDaemonTest, DaemonResolvesCrashedCoordinatorWithoutClients) {
  Db db(TestConfig(61));
  ASSERT_TRUE(db.Load("a", "row", {{"x", "0"}}).ok());
  ASSERT_TRUE(db.Load("b", "row", {{"y", "0"}}).ok());

  txn::RecoveryDaemonOptions daemon;
  for (DcId dc = 0; dc < db.num_datacenters(); ++dc) {
    db.cluster()->service(dc)->StartRecoveryDaemon(daemon);
  }

  ClientOptions crashy;
  crashy.crash_after_prepares = 2;
  Session doomed = db.Session(0, crashy);
  struct Probe {
    CrossCommitResult crash_commit;
  } probe;
  struct CrashRun {
    sim::Task operator()(Session* s, Probe* out) {
      const std::vector<std::string> ab = {"a", "b"};
      CrossTxn txn = co_await s->BeginCross(ab);
      EXPECT_TRUE(txn.active());
      if (!txn.active()) co_return;
      (void)txn.Write("a", "row", "x", "crashed");
      (void)txn.Write("b", "row", "y", "crashed");
      out->crash_commit = co_await txn.Commit();
    }
  } crash_run;
  crash_run(&doomed, &probe);
  db.Run();  // drains the crash AND the daemon's recovery
  ASSERT_TRUE(probe.crash_commit.unknown);

  // No client ever ran recovery, yet no replica holds a pending prepare.
  uint64_t started = 0, decided = 0, forced = 0;
  for (DcId dc = 0; dc < db.num_datacenters(); ++dc) {
    txn::TransactionService* service = db.cluster()->service(dc);
    started += service->recoveries_started();
    decided += service->recoveries_decided();
    forced += service->recoveries_forced_abort();
    for (const char* g : {"a", "b"}) {
      EXPECT_TRUE(service->GroupLog(g)->PendingPrepares().empty())
          << "dc " << dc << " group " << g;
    }
    EXPECT_GT(service->MaxSafeReadPosPin(db.simulator()->Now()), 0);
  }
  EXPECT_GE(started, 1u);
  EXPECT_GE(decided, 1u);
  EXPECT_GE(forced, 1u);  // no decide existed: only force-abort finishes it

  // The forced abort preserved the old values and the history checks out.
  wal::WriteAheadLog* log_a = db.cluster()->service(0)->GroupLog("a");
  ASSERT_TRUE(log_a->ApplyThrough(log_a->SafeReadPos()).ok());
  EXPECT_EQ(log_a->ReadItem({"row", "x"}, log_a->SafeReadPos()).value, "0");
  core::CheckReport report = db.Check(std::vector<std::string>{"a", "b"});
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(RecoveryDaemonTest, ArbiterDrivesWatchersStayQuiet) {
  // With every datacenter live, only the deterministic arbiter (lowest
  // DC) drives recovery; the watchers' deferral backoff outlasts the
  // arbiter's fix, so they never fire a duplicate drive.
  Db db(TestConfig(61));
  ASSERT_TRUE(db.Load("a", "row", {{"x", "0"}}).ok());
  ASSERT_TRUE(db.Load("b", "row", {{"y", "0"}}).ok());
  for (DcId dc = 0; dc < db.num_datacenters(); ++dc) {
    db.cluster()->service(dc)->StartRecoveryDaemon({});
  }

  ClientOptions crashy;
  crashy.crash_after_prepares = 2;
  Session doomed = db.Session(0, crashy);
  struct Probe {
    CrossCommitResult crash_commit;
  } probe;
  struct CrashRun {
    sim::Task operator()(Session* s, Probe* out) {
      const std::vector<std::string> ab = {"a", "b"};
      CrossTxn txn = co_await s->BeginCross(ab);
      EXPECT_TRUE(txn.active());
      if (!txn.active()) co_return;
      (void)txn.Write("a", "row", "x", "crashed");
      (void)txn.Write("b", "row", "y", "crashed");
      out->crash_commit = co_await txn.Commit();
    }
  } crash_run;
  crash_run(&doomed, &probe);
  db.Run();
  ASSERT_TRUE(probe.crash_commit.unknown);

  EXPECT_GE(db.cluster()->service(0)->recoveries_started(), 1u);
  EXPECT_EQ(db.cluster()->service(1)->recoveries_started(), 0u);
  EXPECT_EQ(db.cluster()->service(2)->recoveries_started(), 0u);
}

TEST(RecoveryDaemonTest, ArbitrationMovesWhenLowestDcIsDown) {
  // The arbiter role is "lowest LIVE datacenter": with dc0 down, dc1 must
  // recognize itself as arbiter and drive (majority dc1+dc2 suffices).
  Db db(TestConfig(67));
  ASSERT_TRUE(db.Load("a", "row", {{"x", "0"}}).ok());
  ASSERT_TRUE(db.Load("b", "row", {{"y", "0"}}).ok());
  db.cluster()->network()->SetDatacenterDown(0, true);
  for (DcId dc = 0; dc < db.num_datacenters(); ++dc) {
    db.cluster()->service(dc)->StartRecoveryDaemon({});
  }

  ClientOptions crashy;
  crashy.crash_after_prepares = 2;
  Session doomed = db.Session(1, crashy);
  struct Probe {
    CrossCommitResult crash_commit;
  } probe;
  struct CrashRun {
    sim::Task operator()(Session* s, Probe* out) {
      const std::vector<std::string> ab = {"a", "b"};
      CrossTxn txn = co_await s->BeginCross(ab);
      EXPECT_TRUE(txn.active());
      if (!txn.active()) co_return;
      (void)txn.Write("a", "row", "x", "crashed");
      (void)txn.Write("b", "row", "y", "crashed");
      out->crash_commit = co_await txn.Commit();
    }
  } crash_run;
  crash_run(&doomed, &probe);
  db.Run();
  ASSERT_TRUE(probe.crash_commit.unknown);

  EXPECT_EQ(db.cluster()->service(0)->recoveries_started(), 0u);
  EXPECT_GE(db.cluster()->service(1)->recoveries_started(), 1u);
  for (DcId dc : {1, 2}) {
    for (const char* g : {"a", "b"}) {
      EXPECT_TRUE(
          db.cluster()->service(dc)->GroupLog(g)->PendingPrepares().empty())
          << "dc " << dc << " group " << g;
    }
  }
}

TEST(RecoveryDaemonTest, StopCancelsAdoptedTimers) {
  Db db(TestConfig(41));
  ASSERT_TRUE(db.Load("a", "row", {{"x", "0"}}).ok());
  ASSERT_TRUE(db.Load("b", "row", {{"y", "0"}}).ok());

  ClientOptions crashy;
  crashy.crash_after_prepares = 2;
  Session doomed = db.Session(0, crashy);
  struct Probe {
    CrossCommitResult crash_commit;
  } probe;
  struct CrashRun {
    sim::Task operator()(Session* s, Probe* out) {
      const std::vector<std::string> ab = {"a", "b"};
      CrossTxn txn = co_await s->BeginCross(ab);
      EXPECT_TRUE(txn.active());
      if (!txn.active()) co_return;
      (void)txn.Write("a", "row", "x", "crashed");
      (void)txn.Write("b", "row", "y", "crashed");
      out->crash_commit = co_await txn.Commit();
    }
  } crash_run;
  crash_run(&doomed, &probe);
  db.Run();
  ASSERT_TRUE(probe.crash_commit.unknown);

  // Start adopts the existing pending prepares and arms timers; Stop's
  // generation bump turns every one of them into a no-op.
  for (DcId dc = 0; dc < db.num_datacenters(); ++dc) {
    db.cluster()->service(dc)->StartRecoveryDaemon({});
    EXPECT_TRUE(db.cluster()->service(dc)->recovery_daemon_running());
    db.cluster()->service(dc)->StopRecoveryDaemon();
    EXPECT_FALSE(db.cluster()->service(dc)->recovery_daemon_running());
  }
  db.Run();
  for (DcId dc = 0; dc < db.num_datacenters(); ++dc) {
    EXPECT_EQ(db.cluster()->service(dc)->recoveries_started(), 0u);
  }
  EXPECT_FALSE(
      db.cluster()->service(0)->GroupLog("a")->PendingPrepares().empty());
}

TEST(RecoveryDaemonTest, DaemonSurvivesServiceRestart) {
  // A mid-run service restart must not lose the daemon: the replacement
  // re-discovers pending prepares from the durable WAL side tables and
  // keeps healing.
  Db db(TestConfig(71));
  ASSERT_TRUE(db.Load("a", "row", {{"x", "0"}}).ok());
  ASSERT_TRUE(db.Load("b", "row", {{"y", "0"}}).ok());

  ClientOptions crashy;
  crashy.crash_after_prepares = 2;
  Session doomed = db.Session(0, crashy);
  struct Probe {
    CrossCommitResult crash_commit;
  } probe;
  struct CrashRun {
    sim::Task operator()(Session* s, Probe* out) {
      const std::vector<std::string> ab = {"a", "b"};
      CrossTxn txn = co_await s->BeginCross(ab);
      EXPECT_TRUE(txn.active());
      if (!txn.active()) co_return;
      (void)txn.Write("a", "row", "x", "crashed");
      (void)txn.Write("b", "row", "y", "crashed");
      out->crash_commit = co_await txn.Commit();
    }
  } crash_run;
  crash_run(&doomed, &probe);
  db.Run();
  ASSERT_TRUE(probe.crash_commit.unknown);

  // Daemon started only now (pendings already durable), then the arbiter's
  // process is immediately restarted: the replacement must adopt and heal.
  for (DcId dc = 0; dc < db.num_datacenters(); ++dc) {
    db.cluster()->service(dc)->StartRecoveryDaemon({});
  }
  db.cluster()->RestartService(0);
  EXPECT_TRUE(db.cluster()->service(0)->recovery_daemon_running());
  db.Run();

  for (DcId dc = 0; dc < db.num_datacenters(); ++dc) {
    for (const char* g : {"a", "b"}) {
      EXPECT_TRUE(
          db.cluster()->service(dc)->GroupLog(g)->PendingPrepares().empty())
          << "dc " << dc << " group " << g;
    }
  }
  EXPECT_GE(db.cluster()->service(0)->recoveries_started(), 1u);
  core::CheckReport report = db.Check(std::vector<std::string>{"a", "b"});
  EXPECT_TRUE(report.ok) << report.ToString();
}

// ------------------------------------------------------- checker coverage

TEST(CrossCheckerTest, DetectsAtomicityViolation) {
  // Hand-build a broken history: T committed canonically in its commit
  // group but its prepare is missing from participant 'b'.
  Db db(TestConfig());
  wal::WriteAheadLog* log_a =
      db.cluster()->service(0)->GroupLog("a");
  const TxnId id = MakeTxnId(0, 1);
  wal::TxnRecord p;
  p.id = id;
  p.kind = wal::RecordKind::kPrepare;
  p.cross_ts = 5;
  p.participants = {"a", "b"};
  p.writes.push_back({{"row", "x"}, "1"});
  wal::LogEntry prep;
  prep.txns.push_back(p);
  prep.winner_dc = 0;
  wal::TxnRecord d;
  d.id = id;
  d.kind = wal::RecordKind::kDecide;
  d.commit_decision = true;
  wal::LogEntry dec;
  dec.txns.push_back(d);
  dec.winner_dc = 0;
  for (DcId dc = 0; dc < db.num_datacenters(); ++dc) {
    ASSERT_TRUE(
        db.cluster()->service(dc)->GroupLog("a")->SetEntry(1, prep).ok());
    ASSERT_TRUE(
        db.cluster()->service(dc)->GroupLog("a")->SetEntry(2, dec).ok());
    // Give group b a non-empty log so the group exists.
    (void)db.cluster()->service(dc)->GroupLog("b");
  }
  (void)log_a;
  core::CheckReport report = db.Check(std::vector<std::string>{"a", "b"});
  EXPECT_FALSE(report.ok);
}

TEST(CrossCheckerTest, DetectsCommitOrderViolation) {
  // Two committed cross prepares in decreasing (cross_ts, id) order within
  // one group must be flagged even though each is individually fine.
  Db db(TestConfig());
  const TxnId t1 = MakeTxnId(0, 1);  // older id...
  const TxnId t2 = MakeTxnId(0, 2);
  auto prep = [](TxnId id, uint64_t ts) {
    wal::TxnRecord p;
    p.id = id;
    p.kind = wal::RecordKind::kPrepare;
    p.cross_ts = ts;
    p.participants = {"a"};
    return p;
  };
  auto dec = [](TxnId id) {
    wal::TxnRecord d;
    d.id = id;
    d.kind = wal::RecordKind::kDecide;
    d.commit_decision = true;
    return d;
  };
  wal::LogEntry e1, e2, e3, e4;
  e1.txns.push_back(prep(t2, /*ts=*/20));  // younger FIRST: order violation
  e1.winner_dc = 0;
  e2.txns.push_back(prep(t1, /*ts=*/10));
  e2.winner_dc = 0;
  e3.txns.push_back(dec(t1));
  e3.winner_dc = 0;
  e4.txns.push_back(dec(t2));
  e4.winner_dc = 0;
  for (DcId dc = 0; dc < db.num_datacenters(); ++dc) {
    wal::WriteAheadLog* log = db.cluster()->service(dc)->GroupLog("a");
    ASSERT_TRUE(log->SetEntry(1, e1).ok());
    ASSERT_TRUE(log->SetEntry(2, e2).ok());
    ASSERT_TRUE(log->SetEntry(3, e3).ok());
    ASSERT_TRUE(log->SetEntry(4, e4).ok());
  }
  core::CheckReport report = db.Check(std::vector<std::string>{"a"});
  EXPECT_FALSE(report.ok);
  bool found = false;
  for (const std::string& v : report.violations) {
    if (v.find("commit order") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << report.ToString();
}

}  // namespace
}  // namespace paxoscp
