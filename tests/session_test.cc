// Tests for the Session / Txn handle API (txn/txn.h): RAII handle
// semantics (abort-on-destruction releases the per-group slot, moved-from
// handles are inert), batched ReadRow / WriteRow, the RunTransaction retry
// combinator (attempt and deadline bounds under injected conflicts), and
// the TxnOutcome taxonomy — including kUnknownOutcome surfacing from a
// crashed-client fault plan.
#include <gtest/gtest.h>

#include "core/db.h"
#include "fault/fault_plan.h"
#include "sim/coro.h"
#include "txn/client.h"
#include "txn/txn.h"

namespace paxoscp {
namespace {

using txn::ClientOptions;
using txn::RetryPolicy;
using txn::Session;
using txn::Txn;
using txn::TxnOutcome;
using txn::TxnResult;

core::ClusterConfig TestConfig(uint64_t seed = 23) {
  core::ClusterConfig config = *core::ClusterConfig::FromCode("VVV");
  config.seed = seed;
  return config;
}

sim::Task Drive(Session* session, std::string group, txn::TxnBody body,
                TxnResult* out, RetryPolicy retry = {}) {
  *out = co_await session->RunTransaction(std::move(group), std::move(body),
                                          retry);
}

// ------------------------------------------------------- handle semantics

TEST(TxnHandleTest, AbortOnDestructionReleasesGroupSlot) {
  Db db(TestConfig());
  ASSERT_TRUE(db.Load("g", "r", {{"n", "0"}}).ok());
  Session session = db.Session(0);

  struct Probe {
    bool slot_taken_inside = false;
    bool slot_free_after = false;
    Status rebegin = Status::Internal("unset");
    LogPos decided = 99;
  } probe;

  struct {
    sim::Task operator()(Session* s, Probe* out) {
      {
        Txn txn = co_await s->Begin("g");
        EXPECT_TRUE(txn.active());
        out->slot_taken_inside = s->client()->HasActiveTxn("g");
        (void)txn.Write("r", "n", "discarded");
        // Handle dropped here without Commit: implicit abort.
      }
      out->slot_free_after = !s->client()->HasActiveTxn("g");
      // The slot is free again: a new transaction can begin...
      Txn again = co_await s->Begin("g");
      out->rebegin = again.begin_status();
      (void)co_await again.Commit();  // read-only
    }
  } run;
  run(&session, &probe);
  db.Run();

  EXPECT_TRUE(probe.slot_taken_inside);
  EXPECT_TRUE(probe.slot_free_after);
  EXPECT_TRUE(probe.rebegin.ok()) << probe.rebegin.ToString();
  // ...and the aborted write never reached any log.
  EXPECT_EQ(db.cluster()->service(0)->GroupLog("g")->MaxDecided(), 0u);
}

TEST(TxnHandleTest, MovedFromHandleIsInert) {
  Db db(TestConfig());
  ASSERT_TRUE(db.Load("g", "r", {{"n", "0"}}).ok());
  Session session = db.Session(0);

  struct Probe {
    bool moved_to_active = false;
    bool moved_from_active = true;
    Status inert_write = Status::OK();
    Status inert_read;
    txn::CommitResult inert_commit;
    txn::CommitResult real_commit;
  } probe;

  struct {
    sim::Task operator()(Session* s, Probe* out) {
      Txn a = co_await s->Begin("g");
      Txn b = std::move(a);
      out->moved_to_active = b.active();
      out->moved_from_active = a.active();
      // Every operation on the moved-from handle fails gracefully.
      out->inert_write = a.Write("r", "n", "x");
      Result<std::string> read = co_await a.Read("r", "n");
      out->inert_read = read.status();
      out->inert_commit = co_await a.Commit();
      a.Abort();  // no-op, must not release b's slot
      EXPECT_TRUE(s->client()->HasActiveTxn("g"));
      // The moved-to handle still works end to end.
      (void)b.Write("r", "n", "1");
      out->real_commit = co_await b.Commit();
    }
  } run;
  run(&session, &probe);
  db.Run();

  EXPECT_TRUE(probe.moved_to_active);
  EXPECT_FALSE(probe.moved_from_active);
  EXPECT_EQ(probe.inert_write.code(), Status::Code::kFailedPrecondition);
  EXPECT_EQ(probe.inert_read.code(), Status::Code::kFailedPrecondition);
  EXPECT_FALSE(probe.inert_commit.committed);
  EXPECT_TRUE(probe.real_commit.committed)
      << probe.real_commit.status.ToString();
}

TEST(TxnHandleTest, MoveAssignmentAbortsTheOverwrittenTxn) {
  Db db(TestConfig());
  ASSERT_TRUE(db.Load("g1", "r", {{"n", "0"}}).ok());
  ASSERT_TRUE(db.Load("g2", "r", {{"n", "0"}}).ok());
  Session session = db.Session(0);

  struct {
    sim::Task operator()(Session* s, bool* g1_released) {
      Txn t1 = co_await s->Begin("g1");
      (void)t1.Write("r", "n", "dropped");
      Txn t2 = co_await s->Begin("g2");
      t1 = std::move(t2);  // aborts the g1 transaction, adopts g2's
      *g1_released = !s->client()->HasActiveTxn("g1") &&
                     s->client()->HasActiveTxn("g2");
      (void)t1.Write("r", "n", "kept");
      (void)co_await t1.Commit();
    }
  } run;
  bool g1_released = false;
  run(&session, &g1_released);
  db.Run();

  EXPECT_TRUE(g1_released);
  EXPECT_EQ(db.cluster()->service(0)->GroupLog("g1")->MaxDecided(), 0u);
  EXPECT_EQ(db.cluster()->service(0)->GroupLog("g2")->MaxDecided(), 1u);
}

// -------------------------------------------------- batched row accessors

TEST(TxnHandleTest, ReadRowMergesSnapshotAndBufferedWrites) {
  Db db(TestConfig());
  ASSERT_TRUE(db.Load("g", "r", {{"a", "A0"}, {"b", "B0"}}).ok());
  Session session = db.Session(0);

  struct Probe {
    Result<kvstore::AttributeMap> row = Status::Internal("unset");
    size_t read_set_size = 0;
    txn::CommitResult commit;
  } probe;

  struct {
    sim::Task operator()(Session* s, Probe* out) {
      Txn txn = co_await s->Begin("g");
      // Buffer one overwrite and one brand-new attribute, then read the
      // whole row in one RPC.
      EXPECT_TRUE(txn.WriteRow("r", {{"b", "B1"}, {"c", "C1"}}).ok());
      out->row = co_await txn.ReadRow("r");
      out->read_set_size = txn.read_set_size();
      out->commit = co_await txn.Commit();
    }
  } run;
  run(&session, &probe);
  db.Run();

  ASSERT_TRUE(probe.row.ok()) << probe.row.status().ToString();
  EXPECT_EQ(probe.row->size(), 3u);
  EXPECT_EQ(probe.row->at("a"), "A0");  // snapshot
  EXPECT_EQ(probe.row->at("b"), "B1");  // buffered overwrite (A1)
  EXPECT_EQ(probe.row->at("c"), "C1");  // buffered new attribute
  // Read set: the snapshot-served attribute "a" plus the whole-row
  // predicate read ("b" and "c" were served from the write buffer,
  // property A1, and never enter the read set).
  EXPECT_EQ(probe.read_set_size, 2u);
  EXPECT_TRUE(probe.commit.committed);
  EXPECT_TRUE(db.Check("g").ok);
}

TEST(TxnHandleTest, ReadRowObservesCommittedWritesFromOtherDc) {
  Db db(TestConfig());
  ASSERT_TRUE(db.Load("g", "r", {{"a", "A0"}}).ok());
  Session writer = db.Session(0);

  struct {
    sim::Task operator()(Session* s, bool* committed) {
      Txn txn = co_await s->Begin("g");
      (void)txn.WriteRow("r", {{"a", "A1"}, {"b", "B1"}});
      txn::CommitResult commit = co_await txn.Commit();
      *committed = commit.committed;
    }
  } write;
  bool committed = false;
  write(&writer, &committed);
  db.Run();
  ASSERT_TRUE(committed);

  Session reader = db.Session(2);
  struct {
    sim::Task operator()(Session* s,
                         Result<kvstore::AttributeMap>* out) {
      Txn txn = co_await s->Begin("g");
      *out = co_await txn.ReadRow("r");
      (void)co_await txn.Commit();
    }
  } read;
  Result<kvstore::AttributeMap> row = Status::Internal("unset");
  read(&reader, &row);
  db.Run();

  ASSERT_TRUE(row.ok()) << row.status().ToString();
  EXPECT_EQ(row->at("a"), "A1");
  EXPECT_EQ(row->at("b"), "B1");
}

TEST(TxnHandleTest, ReservedWholeRowAttributeIsRejected) {
  // "*" (wal::kWholeRowAttribute) marks whole-row predicate reads in the
  // read set; user reads/writes must not be able to smuggle it in.
  Db db(TestConfig(45));
  ASSERT_TRUE(db.Load("g", "r", {{"a", "A0"}}).ok());
  Session session = db.Session(0);
  struct {
    sim::Task operator()(Session* s, std::vector<Status>* out) {
      Txn txn = co_await s->Begin("g");
      out->push_back(txn.Write("r", "*", "v"));
      out->push_back(txn.WriteRow("r", {{"ok", "v"}, {"*", "v"}}));
      out->push_back((co_await txn.Read("r", "*")).status());
      txn.Abort();
    }
  } run;
  std::vector<Status> results;
  run(&session, &results);
  db.Run();
  ASSERT_EQ(results.size(), 3u);
  for (const Status& s : results) {
    EXPECT_EQ(s.code(), Status::Code::kInvalidArgument) << s.ToString();
  }
  // Initial loading must not smuggle it in either.
  EXPECT_EQ(db.Load("g", "r2", {{"*", "x"}}).code(),
            Status::Code::kInvalidArgument);
}

TEST(TxnHandleTest, ReadRowAbsenceConflictsWithConcurrentCreation) {
  // Phantom protection: T1 reads the whole row and observes attribute "b"
  // as absent; a rival then commits a transaction *creating* "b"; T1
  // writes based on the observed absence. T1's whole-row predicate read
  // must conflict with the rival's creation — the commit aborts instead
  // of admitting a non-serializable history.
  Db db(TestConfig(43));
  ASSERT_TRUE(db.Load("g", "r", {{"a", "A0"}}).ok());
  Session victim = db.Session(0);
  Session rival = db.Session(1);

  struct Probe {
    bool saw_b_absent = false;
    bool rival_committed = false;
    txn::CommitResult commit;
  } probe;

  struct {
    sim::Task operator()(Session* victim, Session* rival, Probe* out) {
      Txn txn = co_await victim->Begin("g");
      Result<kvstore::AttributeMap> row = co_await txn.ReadRow("r");
      out->saw_b_absent = row.ok() && row->count("b") == 0;
      // Rival creates the attribute the victim observed as absent.
      Txn other = co_await rival->Begin("g");
      (void)other.Write("r", "b", "created");
      out->rival_committed = (co_await other.Commit()).committed;
      // Victim acts on the absence and tries to commit.
      (void)txn.Write("r", "c", "derived-from-b-absent");
      out->commit = co_await txn.Commit();
    }
  } run;
  run(&victim, &rival, &probe);
  db.Run();

  EXPECT_TRUE(probe.saw_b_absent);
  EXPECT_TRUE(probe.rival_committed);
  EXPECT_FALSE(probe.commit.committed);
  EXPECT_TRUE(probe.commit.status.IsAborted())
      << probe.commit.status.ToString();
  EXPECT_TRUE(db.Check("g").ok);
}

// -------------------------------------------------- RunTransaction basics

TEST(RunTransactionTest, CommitsSimpleTransaction) {
  Db db(TestConfig());
  ASSERT_TRUE(db.Load("g", "r", {{"n", "41"}}).ok());
  Session session = db.Session(0);

  TxnResult result;
  Drive(&session, "g",
        [](Txn* txn) -> sim::Coro<Status> {
          Result<std::string> n = co_await txn->Read("r", "n");
          if (!n.ok()) co_return n.status();
          co_return txn->Write("r", "n", std::to_string(std::stoi(*n) + 1));
        },
        &result);
  db.Run();
  EXPECT_EQ(result.outcome, TxnOutcome::kCommitted)
      << OutcomeName(result.outcome);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.committed());
  EXPECT_EQ(result.attempts, 1);
  EXPECT_TRUE(result.commit.committed);
}

TEST(RunTransactionTest, ReadOnlyBodyReportsReadOnlyOutcome) {
  Db db(TestConfig());
  ASSERT_TRUE(db.Load("g", "r", {{"n", "7"}}).ok());
  Session session = db.Session(0);
  TxnResult result;
  Drive(&session, "g",
        [](Txn* txn) -> sim::Coro<Status> {
          co_return (co_await txn->Read("r", "n")).status();
        },
        &result);
  db.Run();
  EXPECT_EQ(result.outcome, TxnOutcome::kReadOnly);
  EXPECT_TRUE(result.committed());
  EXPECT_EQ(db.cluster()->service(0)->GroupLog("g")->MaxDecided(), 0u);
}

TEST(RunTransactionTest, RetriesConcurrencyAborts) {
  // Two counter increments race under basic Paxos (no promotion): one
  // aborts, and the retry loop re-executes it from a fresh snapshot so
  // both increments land.
  Db db(TestConfig(29));
  ASSERT_TRUE(db.Load("g", "r", {{"n", "0"}}).ok());
  ClientOptions options;
  options.protocol = txn::Protocol::kBasicPaxos;
  Session s1 = db.Session(0, options);
  Session s2 = db.Session(1, options);

  txn::TxnBody increment = [](Txn* txn) -> sim::Coro<Status> {
    Result<std::string> n = co_await txn->Read("r", "n");
    if (!n.ok()) co_return n.status();
    co_return txn->Write("r", "n", std::to_string(std::stoi(*n) + 1));
  };
  TxnResult r1, r2;
  Drive(&s1, "g", increment, &r1);
  Drive(&s2, "g", increment, &r2);
  db.Run();

  EXPECT_TRUE(r1.committed()) << r1.status.ToString();
  EXPECT_TRUE(r2.committed()) << r2.status.ToString();
  EXPECT_GE(r1.attempts + r2.attempts, 3);  // at least one retried

  // The counter reflects both increments (no lost update).
  TxnResult check;
  std::string final_value;
  Drive(&s1, "g",
        [&final_value](Txn* txn) -> sim::Coro<Status> {
          Result<std::string> n = co_await txn->Read("r", "n");
          if (n.ok()) final_value = *n;
          co_return n.status();
        },
        &check);
  db.Run();
  EXPECT_EQ(final_value, "2");
}

TEST(RunTransactionTest, BodyErrorAbortsWithoutRetry) {
  Db db(TestConfig());
  ASSERT_TRUE(db.Load("g", "r", {{"n", "0"}}).ok());
  Session session = db.Session(0);
  TxnResult result;
  Drive(&session, "g",
        [](Txn*) -> sim::Coro<Status> {
          co_return Status::InvalidArgument("application rejected");
        },
        &result);
  db.Run();
  EXPECT_EQ(result.outcome, TxnOutcome::kUnavailable);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(db.cluster()->service(0)->GroupLog("g")->MaxDecided(), 0u);
  // The failed attempt released the slot (no leak).
  EXPECT_FALSE(session.client()->HasActiveTxn("g"));
}

// ----------------------------------------- retry bounds under conflicts

/// A body that conflicts deterministically on every attempt: it snapshot-
/// reads "n", then — before its own commit — commits a write of "n"
/// through `saboteur`, so the victim's commit position is always taken by
/// a transaction whose write set intersects the victim's read set.
txn::TxnBody AlwaysConflictingBody(Session* saboteur, int* sabotages) {
  return [saboteur, sabotages](Txn* txn) -> sim::Coro<Status> {
    Result<std::string> n = co_await txn->Read("r", "n");
    if (!n.ok()) co_return n.status();
    Txn rival = co_await saboteur->Begin("g");
    if (!rival.active()) co_return rival.begin_status();
    (void)rival.Write("r", "n", std::to_string(++*sabotages));
    txn::CommitResult commit = co_await rival.Commit();
    if (!commit.committed) co_return Status::Internal("sabotage failed");
    co_return txn->Write("r", "n", "victim");
  };
}

TEST(RunTransactionTest, RespectsMaxAttemptsUnderInjectedConflicts) {
  Db db(TestConfig(31));
  ASSERT_TRUE(db.Load("g", "r", {{"n", "0"}}).ok());
  Session victim = db.Session(0);
  Session saboteur = db.Session(1);

  int sabotages = 0;
  RetryPolicy retry;
  retry.max_attempts = 3;
  TxnResult result;
  Drive(&victim, "g", AlwaysConflictingBody(&saboteur, &sabotages), &result,
        retry);
  db.Run();

  EXPECT_EQ(result.outcome, TxnOutcome::kConflict)
      << OutcomeName(result.outcome) << " " << result.status.ToString();
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(sabotages, 3);  // every attempt ran the body afresh
  EXPECT_TRUE(result.status.IsAborted());
  EXPECT_TRUE(db.Check("g").ok);
}

TEST(RunTransactionTest, RespectsDeadlineUnderInjectedConflicts) {
  Db db(TestConfig(33));
  ASSERT_TRUE(db.Load("g", "r", {{"n", "0"}}).ok());
  Session victim = db.Session(0);
  Session saboteur = db.Session(1);

  int sabotages = 0;
  RetryPolicy retry;
  retry.max_attempts = 1000;  // the deadline must bind first
  retry.deadline = 2 * kSecond;
  const TimeMicros start = db.simulator()->Now();
  TxnResult result;
  Drive(&victim, "g", AlwaysConflictingBody(&saboteur, &sabotages), &result,
        retry);
  db.Run();
  const TimeMicros elapsed = db.simulator()->Now() - start;

  EXPECT_EQ(result.outcome, TxnOutcome::kConflict);
  EXPECT_GE(result.attempts, 1);
  EXPECT_LT(result.attempts, 1000);
  // No attempt starts after the deadline: total time is bounded by the
  // deadline plus one attempt's duration (an attempt may straddle it; one
  // attempt here is a begin + read + sabotage txn + commit, ~2-3 s).
  EXPECT_LE(elapsed, retry.deadline + 3 * kSecond);
}

// ----------------------------------------------- unknown-outcome surfacing

TEST(RunTransactionTest, UnknownOutcomeFromCrashedClientFaultPlan) {
  // A fault plan takes down both non-home datacenters just before the
  // commit protocol runs; with a tight round cap the client walks away
  // mid-commit — the paper's crashed/impatient client. The outcome is
  // genuinely unknown (acceptors may have decided it), so the combinator
  // must report kUnknownOutcome and must NOT retry.
  Db db(TestConfig(35));
  ASSERT_TRUE(db.Load("g", "r", {{"n", "0"}}).ok());

  fault::FaultPlan plan;
  plan.events.push_back(
      {100 * kMillisecond, fault::FaultKind::kDatacenterDown, 1, kNoDc, 0});
  plan.events.push_back(
      {100 * kMillisecond, fault::FaultKind::kDatacenterDown, 2, kNoDc, 0});
  db.cluster()->ApplyFaultPlan(plan);

  ClientOptions options;
  options.max_rounds_per_position = 2;  // crash-impatient client
  Session session = db.Session(0, options);

  int body_runs = 0;
  RetryPolicy retry;
  retry.max_attempts = 5;
  TxnResult result;
  struct {
    sim::Task operator()(Db* db, Session* s, int* body_runs,
                         RetryPolicy retry, TxnResult* out) {
      // Wait for the outage, then run a write-only transaction.
      co_await sim::SleepFor(db->simulator(), 200 * kMillisecond);
      *out = co_await s->RunTransaction(
          "g",
          [body_runs](Txn* txn) -> sim::Coro<Status> {
            ++*body_runs;
            co_return txn->Write("r", "n", "1");
          },
          retry);
    }
  } run;
  run(&db, &session, &body_runs, retry, &result);
  db.Run();

  EXPECT_EQ(result.outcome, TxnOutcome::kUnknownOutcome)
      << OutcomeName(result.outcome) << " " << result.status.ToString();
  EXPECT_TRUE(result.status.IsUnavailable()) << result.status.ToString();
  // An unknown outcome is never retried: retrying could commit twice.
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(body_runs, 1);
}

TEST(RunTransactionTest, BeginFailureIsUnavailableNotUnknown) {
  // With every datacenter down, begin itself fails: nothing was proposed,
  // so the fate is known (not committed) — kUnavailable, no retry.
  Db db(TestConfig(37));
  ASSERT_TRUE(db.Load("g", "r", {{"n", "0"}}).ok());
  for (DcId dc = 0; dc < db.num_datacenters(); ++dc) {
    db.cluster()->SetDatacenterDown(dc, true);
  }
  Session session = db.Session(0);
  TxnResult result;
  Drive(&session, "g",
        [](Txn* txn) -> sim::Coro<Status> {
          co_return txn->Write("r", "n", "1");
        },
        &result);
  db.Run();
  EXPECT_EQ(result.outcome, TxnOutcome::kUnavailable);
  // Begin fails over through every datacenter; the terminal status is the
  // last failure (a per-message timeout or unavailability).
  EXPECT_TRUE(result.status.IsUnavailable() || result.status.IsTimedOut())
      << result.status.ToString();
  EXPECT_EQ(result.attempts, 1);
}

}  // namespace
}  // namespace paxoscp
