// Tests for the core module: cluster configuration (region latency
// presets, cluster codes), cluster wiring, version garbage collection.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/config.h"
#include "sim/coro.h"
#include "txn/txn.h"

namespace paxoscp::core {
namespace {

TEST(ConfigTest, RegionCodesRoundTrip) {
  for (Region region :
       {Region::kVirginia, Region::kOregon, Region::kCalifornia}) {
    Result<Region> parsed = RegionFromCode(RegionCode(region));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, region);
  }
  EXPECT_FALSE(RegionFromCode('X').ok());
}

TEST(ConfigTest, PaperRtts) {
  EXPECT_EQ(RegionRtt(Region::kVirginia, Region::kVirginia), 1500);
  EXPECT_EQ(RegionRtt(Region::kVirginia, Region::kOregon),
            90 * kMillisecond);
  EXPECT_EQ(RegionRtt(Region::kVirginia, Region::kCalifornia),
            90 * kMillisecond);
  EXPECT_EQ(RegionRtt(Region::kOregon, Region::kCalifornia),
            20 * kMillisecond);
  EXPECT_EQ(RegionRtt(Region::kCalifornia, Region::kOregon),
            20 * kMillisecond);
}

TEST(ConfigTest, FromCodeBuildsDatacenters) {
  Result<ClusterConfig> config = ClusterConfig::FromCode("VOC");
  ASSERT_TRUE(config.ok());
  ASSERT_EQ(config->num_datacenters(), 3);
  EXPECT_EQ(config->datacenters[0].region, Region::kVirginia);
  EXPECT_EQ(config->datacenters[1].region, Region::kOregon);
  EXPECT_EQ(config->datacenters[2].region, Region::kCalifornia);
  EXPECT_TRUE(ClusterConfig::FromCode("voc").ok());  // case-insensitive
}

TEST(ConfigTest, FromCodeRejectsInvalid) {
  EXPECT_FALSE(ClusterConfig::FromCode("").ok());
  EXPECT_FALSE(ClusterConfig::FromCode("VXW").ok());
}

TEST(ConfigTest, PaperTestbedIsFiveNodes) {
  ClusterConfig config = ClusterConfig::PaperTestbed();
  ASSERT_EQ(config.num_datacenters(), 5);
  // V, V, V, O, C per the paper.
  EXPECT_EQ(config.datacenters[3].region, Region::kOregon);
  EXPECT_EQ(config.datacenters[4].region, Region::kCalifornia);
}

TEST(ConfigTest, RttMatrixIsSymmetricWithIntraDcDiagonal) {
  ClusterConfig config = *ClusterConfig::FromCode("VOC");
  auto rtt = config.RttMatrix();
  ASSERT_EQ(rtt.size(), 3u);
  for (int a = 0; a < 3; ++a) {
    EXPECT_EQ(rtt[a][a], kIntraDatacenterRtt);
    for (int b = 0; b < 3; ++b) {
      EXPECT_EQ(rtt[a][b], rtt[b][a]);
    }
  }
  EXPECT_EQ(rtt[0][1], 90 * kMillisecond);
  EXPECT_EQ(rtt[1][2], 20 * kMillisecond);
}

TEST(ClusterTest, WiringExposesAllComponents) {
  ClusterConfig config = *ClusterConfig::FromCode("VVV");
  config.seed = 4;
  Cluster cluster(config);
  EXPECT_EQ(cluster.num_datacenters(), 3);
  EXPECT_NE(cluster.simulator(), nullptr);
  EXPECT_NE(cluster.network(), nullptr);
  for (DcId dc = 0; dc < 3; ++dc) {
    EXPECT_NE(cluster.store(dc), nullptr);
    EXPECT_NE(cluster.service(dc), nullptr);
    EXPECT_EQ(cluster.service(dc)->dc(), dc);
  }
}

TEST(ClusterTest, SeedsAreDeterministic) {
  ClusterConfig config = *ClusterConfig::FromCode("VV");
  config.seed = 4;
  Cluster a(config), b(config);
  EXPECT_EQ(a.NextSeed(), b.NextSeed());
  EXPECT_EQ(a.NextSeed(), b.NextSeed());
}

TEST(ClusterTest, LoadInitialRowReachesEveryReplica) {
  ClusterConfig config = *ClusterConfig::FromCode("VVV");
  config.seed = 4;
  Cluster cluster(config);
  ASSERT_TRUE(cluster.LoadInitialRow("g", "r", {{"a", "seed"}}).ok());
  for (DcId dc = 0; dc < 3; ++dc) {
    wal::ItemRead read =
        cluster.service(dc)->GroupLog("g")->ReadItem({"r", "a"}, 0);
    EXPECT_TRUE(read.found) << "dc " << dc;
    EXPECT_EQ(read.value, "seed");
  }
}

sim::Task CommitN(txn::Session* session, int n, int* committed) {
  for (int i = 0; i < n; ++i) {
    txn::Txn txn = co_await session->Begin("g");
    if (!txn.active()) continue;
    (void)txn.Write("r", "a", std::to_string(i));
    txn::CommitResult result = co_await txn.Commit();
    if (result.committed) ++*committed;
  }
}

TEST(ClusterTest, VersionGarbageCollectionPreservesWatermarkSnapshot) {
  // After many commits, truncate old row versions below the applied
  // watermark; reads at or above the watermark still work.
  ClusterConfig config = *ClusterConfig::FromCode("VVV");
  config.seed = 4;
  Cluster cluster(config);
  ASSERT_TRUE(cluster.LoadInitialRow("g", "r", {{"a", "0"}}).ok());
  txn::Session session = cluster.CreateSession(0);
  int committed = 0;
  CommitN(&session, 10, &committed);
  cluster.RunToCompletion();
  ASSERT_EQ(committed, 10);

  wal::WriteAheadLog* log = cluster.service(0)->GroupLog("g");
  // Application to data rows is lazy (a background process or a read
  // triggers it, paper §3.2); force it for the GC test.
  ASSERT_TRUE(log->ApplyThrough(log->MaxDecided()).ok());
  const LogPos applied = log->AppliedThrough();
  ASSERT_GE(applied, 5u);
  const std::string data_key = log->DataKey("r");
  const size_t before = cluster.store(0)->VersionCount(data_key);
  const size_t removed =
      cluster.store(0)->TruncateVersions(data_key, applied - 2);
  EXPECT_GT(removed, 0u);
  EXPECT_LT(cluster.store(0)->VersionCount(data_key), before);

  // Snapshot at the GC watermark still readable; older ones are gone.
  EXPECT_TRUE(log->ReadItem({"r", "a"}, applied - 2).found);
  EXPECT_TRUE(log->ReadItem({"r", "a"}, applied).found);
}

TEST(ClusterTest, ClientsGetUniqueTxnIds) {
  ClusterConfig config = *ClusterConfig::FromCode("VV");
  config.seed = 4;
  Cluster cluster(config);
  ASSERT_TRUE(cluster.LoadInitialRow("g", "r", {{"a", "0"}}).ok());
  txn::Session s1 = cluster.CreateSession(0);
  txn::Session s2 = cluster.CreateSession(0);  // same DC

  struct {
    sim::Task operator()(txn::Session* s, TxnId* id) {
      txn::Txn txn = co_await s->Begin("g");
      *id = txn.id();
      txn.Abort();
    }
  } grab;
  TxnId id1 = 0, id2 = 0;
  grab(&s1, &id1);
  grab(&s2, &id2);
  cluster.RunToCompletion();
  EXPECT_NE(id1, 0u);
  EXPECT_NE(id2, 0u);
  EXPECT_NE(id1, id2);
  EXPECT_EQ(TxnIdDc(id1), 0);
  EXPECT_EQ(TxnIdDc(id2), 0);
}

}  // namespace
}  // namespace paxoscp::core
