// Unit tests for the multi-version key-value store — the paper §2.2
// contract: atomic read/write/checkAndWrite over multi-version rows —
// plus the copy-on-write representation guarantees of design note D5
// (docs/ARCHITECTURE.md): shared snapshots are immutable and survive both
// later writes and garbage collection.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "kvstore/store.h"

namespace paxoscp::kvstore {
namespace {

using AttrMap = AttributeMap;

// GCC 12 at -O2/-O3 emits a spurious -Wrestrict through libstdc++'s
// char_traits memcpy when `"lit" + std::to_string(n)` is fully inlined
// (GCC PR 105651); appending instead of concatenating sidesteps it.
template <typename N>
std::string Cat(const char* prefix, N n) {
  std::string s(prefix);
  s += std::to_string(n);
  return s;
}

TEST(StoreTest, ReadMissingKeyIsNotFound) {
  MultiVersionStore store;
  EXPECT_TRUE(store.Read("nope").status().IsNotFound());
  EXPECT_FALSE(store.Contains("nope"));
}

TEST(StoreTest, WriteThenReadLatest) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "1"}}).ok());
  Result<RowVersion> row = store.Read("k");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->attributes->at("a"), "1");
  EXPECT_EQ(row->timestamp, 1);
}

TEST(StoreTest, AutoTimestampsIncrease) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "1"}}).ok());
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "2"}}).ok());
  Result<RowVersion> row = store.Read("k");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->timestamp, 2);
  EXPECT_EQ(row->attributes->at("a"), "2");
  EXPECT_EQ(store.VersionCount("k"), 2u);
}

TEST(StoreTest, SnapshotReadsSeeOldVersions) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "v10"}}, 10).ok());
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "v20"}}, 20).ok());
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "v30"}}, 30).ok());

  EXPECT_TRUE(store.Read("k", 5).status().IsNotFound());
  EXPECT_EQ(store.Read("k", 10)->attributes->at("a"), "v10");
  EXPECT_EQ(store.Read("k", 15)->attributes->at("a"), "v10");
  EXPECT_EQ(store.Read("k", 20)->attributes->at("a"), "v20");
  EXPECT_EQ(store.Read("k", 29)->attributes->at("a"), "v20");
  EXPECT_EQ(store.Read("k", 1000)->attributes->at("a"), "v30");
  EXPECT_EQ(store.Read("k")->attributes->at("a"), "v30");
}

TEST(StoreTest, ExplicitTimestampConflictsBelowLatest) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "1"}}, 10).ok());
  EXPECT_TRUE(store.Write("k", AttrMap{{"a", "0"}}, 5).IsConflict());
  EXPECT_TRUE(store.Write("k", AttrMap{{"a", "0"}}, 10).IsConflict());
  EXPECT_TRUE(store.Write("k", AttrMap{{"a", "2"}}, 11).ok());
}

TEST(StoreTest, ReadAttrFindsAttribute) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "1"}, {"b", "2"}}).ok());
  EXPECT_EQ(*store.ReadAttr("k", "b"), "2");
  EXPECT_TRUE(store.ReadAttr("k", "c").status().IsNotFound());
  EXPECT_TRUE(store.ReadAttr("zzz", "a").status().IsNotFound());
}

TEST(StoreTest, ReadAttrViewBorrowsWithoutCopy) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "payload"}}).ok());
  Result<AttrView> view = store.ReadAttrView("k", "a");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->value, "payload");
  // The view aliases the shared version's storage, not a copy.
  EXPECT_EQ(view->value.data(), view->version->at("a").data());
  // The borrowed value stays valid across later writes to the key.
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "other"}}).ok());
  EXPECT_EQ(view->value, "payload");
}

TEST(StoreTest, CheckAndWriteSucceedsOnMatch) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"bal", "7"}}).ok());
  EXPECT_TRUE(store.CheckAndWrite("k", "bal", "7",
                                  AttrMap{{"bal", "8"}}).ok());
  EXPECT_EQ(*store.ReadAttr("k", "bal"), "8");
}

TEST(StoreTest, CheckAndWriteFailsOnMismatch) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"bal", "7"}}).ok());
  EXPECT_TRUE(store.CheckAndWrite("k", "bal", "6", AttrMap{{"bal", "8"}})
                  .IsConflict());
  EXPECT_EQ(*store.ReadAttr("k", "bal"), "7");
  EXPECT_EQ(store.VersionCount("k"), 1u);
}

TEST(StoreTest, CheckAndWriteMissingRowComparesEmpty) {
  MultiVersionStore store;
  EXPECT_TRUE(store.CheckAndWrite("new", "flag", "",
                                  AttrMap{{"flag", "1"}}).ok());
  EXPECT_TRUE(store.CheckAndWrite("new", "flag", "",
                                  AttrMap{{"flag", "2"}}).IsConflict());
  EXPECT_EQ(*store.ReadAttr("new", "flag"), "1");
}

TEST(StoreTest, CheckAndWriteMissingAttributeComparesEmpty) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"other", "x"}}).ok());
  EXPECT_TRUE(store.CheckAndWrite("k", "flag", "",
                                  AttrMap{{"flag", "1"}}).ok());
}

TEST(StoreTest, CheckAndWriteTestsLatestVersion) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "old"}}, 1).ok());
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "new"}}, 2).ok());
  EXPECT_TRUE(
      store.CheckAndWrite("k", "a", "old", AttrMap{{"a", "x"}}).IsConflict());
  EXPECT_TRUE(store.CheckAndWrite("k", "a", "new", AttrMap{{"a", "x"}}).ok());
}

TEST(StoreTest, MergeWritePreservesUntouchedAttributes) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "1"}, {"b", "2"}}, 1).ok());
  ASSERT_TRUE(store.MergeWrite("k", AttrMap{{"a", "9"}}, 5).ok());
  Result<RowVersion> row = store.Read("k");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->attributes->at("a"), "9");
  EXPECT_EQ(row->attributes->at("b"), "2");
  EXPECT_EQ(row->timestamp, 5);
}

TEST(StoreTest, MergeWriteIsIdempotentViaConflict) {
  MultiVersionStore store;
  ASSERT_TRUE(store.MergeWrite("k", AttrMap{{"a", "1"}}, 5).ok());
  EXPECT_TRUE(store.MergeWrite("k", AttrMap{{"a", "1"}}, 5).IsConflict());
  EXPECT_TRUE(store.MergeWrite("k", AttrMap{{"a", "0"}}, 3).IsConflict());
  EXPECT_EQ(store.VersionCount("k"), 1u);
}

TEST(StoreTest, MergeWriteAddsAndOverwritesInterleavedAttributes) {
  // Exercises every branch of the ordered-merge construction: update-only
  // keys before, between, and after base keys, plus overwritten ones.
  MultiVersionStore store;
  ASSERT_TRUE(
      store.Write("k", AttrMap{{"b", "b0"}, {"d", "d0"}, {"f", "f0"}}, 1)
          .ok());
  ASSERT_TRUE(store
                  .MergeWrite("k",
                              AttrMap{{"a", "a1"},
                                      {"d", "d1"},
                                      {"e", "e1"},
                                      {"g", "g1"}},
                              2)
                  .ok());
  Result<RowVersion> row = store.Read("k");
  ASSERT_TRUE(row.ok());
  const AttrMap expected{{"a", "a1"}, {"b", "b0"}, {"d", "d1"},
                         {"e", "e1"}, {"f", "f0"}, {"g", "g1"}};
  EXPECT_EQ(*row->attributes, expected);
}

TEST(StoreTest, MergeWriteWithEmptyUpdatesSharesSnapshot) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "1"}}, 1).ok());
  ASSERT_TRUE(store.MergeWrite("k", AttrMap{}, 2).ok());
  Result<RowVersion> v1 = store.Read("k", 1);
  Result<RowVersion> v2 = store.Read("k", 2);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v1->attributes.get(), v2->attributes.get());  // shared, not copied
}

// ------------------------------------------------------ COW representation

TEST(StoreTest, SnapshotsAreImmutableAcrossLaterWrites) {
  // A Read handed out before later writes/merges must keep observing its
  // version's exact bytes (the old deep-copy semantics).
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "1"}, {"b", "2"}}, 1).ok());
  Result<RowVersion> snapshot = store.Read("k", 1);
  ASSERT_TRUE(snapshot.ok());
  ASSERT_TRUE(store.MergeWrite("k", AttrMap{{"a", "9"}, {"c", "3"}}, 2).ok());
  ASSERT_TRUE(store.Write("k", AttrMap{{"z", "z"}}, 3).ok());
  const AttrMap expected{{"a", "1"}, {"b", "2"}};
  EXPECT_EQ(*snapshot->attributes, expected);
}

TEST(StoreTest, CowReadsMatchDeepCopySemantics) {
  // Property test: run a random op sequence against the COW store and an
  // eager deep-copy reference model; every snapshot read must observe
  // identical bytes.
  Rng rng(20260730);
  MultiVersionStore store;
  std::map<Timestamp, AttrMap> model;  // reference: full copy per version
  AttrMap latest;
  Timestamp ts = 0;
  for (int op = 0; op < 500; ++op) {
    const int kind = static_cast<int>(rng.Uniform(3));
    const std::string attr = Cat("a", rng.Uniform(8));
    const std::string value = Cat("v", rng.Uniform(1000));
    ++ts;
    if (kind == 0) {
      AttrMap row{{attr, value}};
      ASSERT_TRUE(store.Write("k", row, ts).ok());
      latest = row;
    } else if (kind == 1) {
      ASSERT_TRUE(store.MergeWrite("k", AttrMap{{attr, value}}, ts).ok());
      latest[attr] = value;
    } else {
      ASSERT_TRUE(store
                      .MergeWrite("k", AttrMap{{attr, value}, {"x", value}},
                                  ts)
                      .ok());
      latest[attr] = value;
      latest["x"] = value;
    }
    model[ts] = latest;
    // Probe a random historical snapshot against the reference model.
    const Timestamp probe = 1 + static_cast<Timestamp>(rng.Uniform(ts));
    Result<RowVersion> row = store.Read("k", probe);
    ASSERT_TRUE(row.ok());
    auto it = model.upper_bound(probe);
    ASSERT_NE(it, model.begin());
    --it;
    EXPECT_EQ(*row->attributes, it->second) << "probe ts=" << probe;
  }
}

// ----------------------------------------------------- GC vs. snapshots

TEST(StoreTest, TruncateKeepsSnapshotAtWatermark) {
  MultiVersionStore store;
  for (Timestamp ts = 1; ts <= 10; ++ts) {
    ASSERT_TRUE(
        store.Write("k", AttrMap{{"a", std::to_string(ts)}}, ts).ok());
  }
  const size_t removed = store.TruncateVersions("k", 7);
  EXPECT_EQ(removed, 6u);  // versions 1..6 go; 7 stays readable
  EXPECT_EQ(*store.ReadAttr("k", "a", 7), "7");
  EXPECT_EQ(*store.ReadAttr("k", "a", 8), "8");
  EXPECT_TRUE(store.Read("k", 6).status().IsNotFound());
}

TEST(StoreTest, TruncateWatermarkBetweenVersionsKeepsNewestBelow) {
  MultiVersionStore store;
  for (Timestamp ts : {2, 4, 6, 8}) {
    ASSERT_TRUE(store.Write("k", AttrMap{{"a", std::to_string(ts)}}, ts).ok());
  }
  // Watermark 5 falls between versions 4 and 6: version 4 is the newest
  // version <= watermark and must stay readable; only 2 is collectable.
  EXPECT_EQ(store.TruncateVersions("k", 5), 1u);
  EXPECT_EQ(*store.ReadAttr("k", "a", 5), "4");
  EXPECT_EQ(*store.ReadAttr("k", "a", 4), "4");
  EXPECT_TRUE(store.Read("k", 3).status().IsNotFound());
  EXPECT_EQ(store.VersionCount("k"), 3u);
}

TEST(StoreTest, TruncateBelowOldestVersionRemovesNothing) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "1"}}, 10).ok());
  EXPECT_EQ(store.TruncateVersions("k", 5), 0u);
  EXPECT_EQ(store.VersionCount("k"), 1u);
}

TEST(StoreTest, HeldSnapshotSurvivesTruncation) {
  // GC drops chain entries, but a snapshot already handed out shares the
  // attribute map and must stay readable and unchanged (D5 invariant).
  MultiVersionStore store;
  for (Timestamp ts = 1; ts <= 8; ++ts) {
    ASSERT_TRUE(store.Write("k", AttrMap{{"a", std::to_string(ts)}}, ts).ok());
  }
  Result<RowVersion> held = store.Read("k", 3);
  ASSERT_TRUE(held.ok());
  EXPECT_EQ(store.TruncateVersions("k", 8), 7u);
  EXPECT_EQ(held->timestamp, 3);
  EXPECT_EQ(held->attributes->at("a"), "3");
  // The store itself no longer serves the collected version...
  EXPECT_TRUE(store.Read("k", 3).status().IsNotFound());
  // ...but the surviving watermark version is intact.
  EXPECT_EQ(*store.ReadAttr("k", "a", 8), "8");
}

TEST(StoreTest, TruncateAllCoversEveryKey) {
  MultiVersionStore store;
  for (int k = 0; k < 3; ++k) {
    for (Timestamp ts = 1; ts <= 5; ++ts) {
      ASSERT_TRUE(
          store.Write(Cat("k", k), AttrMap{{"a", std::to_string(ts)}}, ts)
              .ok());
    }
  }
  EXPECT_EQ(store.TruncateAllVersions(5), 12u);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(store.VersionCount(Cat("k", k)), 1u);
  }
}

TEST(StoreTest, KeysWithPrefix) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("!log/g/000001", AttrMap{{"e", "x"}}).ok());
  ASSERT_TRUE(store.Write("!log/g/000002", AttrMap{{"e", "y"}}).ok());
  ASSERT_TRUE(store.Write("!log/h/000001", AttrMap{{"e", "z"}}).ok());
  ASSERT_TRUE(store.Write("d/g/row", AttrMap{{"a", "1"}}).ok());
  const auto keys = store.KeysWithPrefix("!log/g/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "!log/g/000001");
  EXPECT_EQ(keys[1], "!log/g/000002");
  EXPECT_EQ(store.KeyCount(), 4u);
}

TEST(StoreTest, ConcurrentCheckAndWriteGrantsExactlyOne) {
  // The store must be independently thread-safe (it is the substrate the
  // "stateless service processes" share). N threads race a leader claim;
  // exactly one may win.
  MultiVersionStore store;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> wins{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&store, &wins, i] {
      if (store
              .CheckAndWrite("claim", "owner", "",
                             AttrMap{{"owner", std::to_string(i)}})
              .ok()) {
        wins.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wins.load(), 1);
}

TEST(StoreTest, ConcurrentWritersKeepVersionOrder) {
  MultiVersionStore store;
  constexpr int kThreads = 4;
  constexpr int kWritesEach = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < kWritesEach; ++i) {
        (void)store.Write("k", AttrMap{{"a", "x"}});  // auto timestamps
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.VersionCount("k"), size_t{kThreads * kWritesEach});
  // Timestamps must be strictly increasing.
  Timestamp prev = 0;
  for (Timestamp ts = 1; ts <= kThreads * kWritesEach; ++ts) {
    Result<RowVersion> row = store.Read("k", ts);
    ASSERT_TRUE(row.ok());
    EXPECT_GT(row->timestamp, prev);
    prev = row->timestamp;
  }
}

}  // namespace
}  // namespace paxoscp::kvstore
