// Unit tests for the multi-version key-value store — the paper §2.2
// contract: atomic read/write/checkAndWrite over multi-version rows.
#include <gtest/gtest.h>

#include <thread>

#include "kvstore/store.h"

namespace paxoscp::kvstore {
namespace {

using AttrMap = std::map<std::string, std::string>;

TEST(StoreTest, ReadMissingKeyIsNotFound) {
  MultiVersionStore store;
  EXPECT_TRUE(store.Read("nope").status().IsNotFound());
  EXPECT_FALSE(store.Contains("nope"));
}

TEST(StoreTest, WriteThenReadLatest) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "1"}}).ok());
  Result<RowVersion> row = store.Read("k");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->attributes.at("a"), "1");
  EXPECT_EQ(row->timestamp, 1);
}

TEST(StoreTest, AutoTimestampsIncrease) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "1"}}).ok());
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "2"}}).ok());
  Result<RowVersion> row = store.Read("k");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->timestamp, 2);
  EXPECT_EQ(row->attributes.at("a"), "2");
  EXPECT_EQ(store.VersionCount("k"), 2u);
}

TEST(StoreTest, SnapshotReadsSeeOlderVersions) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "v10"}}, 10).ok());
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "v20"}}, 20).ok());
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "v30"}}, 30).ok());

  EXPECT_TRUE(store.Read("k", 5).status().IsNotFound());
  EXPECT_EQ(store.Read("k", 10)->attributes.at("a"), "v10");
  EXPECT_EQ(store.Read("k", 15)->attributes.at("a"), "v10");
  EXPECT_EQ(store.Read("k", 20)->attributes.at("a"), "v20");
  EXPECT_EQ(store.Read("k", 29)->attributes.at("a"), "v20");
  EXPECT_EQ(store.Read("k", 1000)->attributes.at("a"), "v30");
  EXPECT_EQ(store.Read("k")->attributes.at("a"), "v30");
}

TEST(StoreTest, WriteBelowExistingTimestampIsConflict) {
  // Paper: "If a version with greater timestamp exists, an error is
  // returned."
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "1"}}, 10).ok());
  EXPECT_TRUE(store.Write("k", AttrMap{{"a", "0"}}, 5).IsConflict());
  EXPECT_TRUE(store.Write("k", AttrMap{{"a", "0"}}, 10).IsConflict());
  EXPECT_TRUE(store.Write("k", AttrMap{{"a", "2"}}, 11).ok());
}

TEST(StoreTest, ReadAttrFindsAttribute) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "1"}, {"b", "2"}}).ok());
  EXPECT_EQ(*store.ReadAttr("k", "b"), "2");
  EXPECT_TRUE(store.ReadAttr("k", "c").status().IsNotFound());
  EXPECT_TRUE(store.ReadAttr("zzz", "a").status().IsNotFound());
}

TEST(StoreTest, CheckAndWriteSucceedsOnMatch) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"bal", "7"}}).ok());
  EXPECT_TRUE(store.CheckAndWrite("k", "bal", "7",
                                  AttrMap{{"bal", "8"}}).ok());
  EXPECT_EQ(*store.ReadAttr("k", "bal"), "8");
}

TEST(StoreTest, CheckAndWriteFailsOnMismatch) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"bal", "7"}}).ok());
  EXPECT_TRUE(store.CheckAndWrite("k", "bal", "6", AttrMap{{"bal", "8"}})
                  .IsConflict());
  EXPECT_EQ(*store.ReadAttr("k", "bal"), "7");
  EXPECT_EQ(store.VersionCount("k"), 1u);
}

TEST(StoreTest, CheckAndWriteMissingRowComparesToEmpty) {
  // Initializing writes use test_value = "" (used by the leader grant and
  // Paxos state rows).
  MultiVersionStore store;
  EXPECT_TRUE(store.CheckAndWrite("new", "flag", "",
                                  AttrMap{{"flag", "1"}}).ok());
  EXPECT_TRUE(store.CheckAndWrite("new", "flag", "",
                                  AttrMap{{"flag", "2"}}).IsConflict());
  EXPECT_EQ(*store.ReadAttr("new", "flag"), "1");
}

TEST(StoreTest, CheckAndWriteMissingAttributeComparesToEmpty) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"other", "x"}}).ok());
  EXPECT_TRUE(store.CheckAndWrite("k", "flag", "",
                                  AttrMap{{"flag", "1"}}).ok());
}

TEST(StoreTest, CheckAndWriteChecksLatestVersionOnly) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "old"}}, 1).ok());
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "new"}}, 2).ok());
  EXPECT_TRUE(
      store.CheckAndWrite("k", "a", "old", AttrMap{{"a", "x"}}).IsConflict());
  EXPECT_TRUE(store.CheckAndWrite("k", "a", "new", AttrMap{{"a", "x"}}).ok());
}

TEST(StoreTest, MergeWritePreservesUntouchedAttributes) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("k", AttrMap{{"a", "1"}, {"b", "2"}}, 1).ok());
  ASSERT_TRUE(store.MergeWrite("k", AttrMap{{"a", "9"}}, 5).ok());
  Result<RowVersion> row = store.Read("k");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->attributes.at("a"), "9");
  EXPECT_EQ(row->attributes.at("b"), "2");
  EXPECT_EQ(row->timestamp, 5);
}

TEST(StoreTest, MergeWriteIsIdempotentViaConflict) {
  MultiVersionStore store;
  ASSERT_TRUE(store.MergeWrite("k", AttrMap{{"a", "1"}}, 5).ok());
  EXPECT_TRUE(store.MergeWrite("k", AttrMap{{"a", "1"}}, 5).IsConflict());
  EXPECT_TRUE(store.MergeWrite("k", AttrMap{{"a", "0"}}, 3).IsConflict());
  EXPECT_EQ(store.VersionCount("k"), 1u);
}

TEST(StoreTest, TruncateKeepsSnapshotAtWatermark) {
  MultiVersionStore store;
  for (Timestamp ts = 1; ts <= 10; ++ts) {
    ASSERT_TRUE(
        store.Write("k", AttrMap{{"a", std::to_string(ts)}}, ts).ok());
  }
  const size_t removed = store.TruncateVersions("k", 7);
  EXPECT_EQ(removed, 6u);  // versions 1..6 go; 7 stays readable
  EXPECT_EQ(*store.ReadAttr("k", "a", 7), "7");
  EXPECT_EQ(*store.ReadAttr("k", "a", 8), "8");
  EXPECT_TRUE(store.Read("k", 6).status().IsNotFound());
}

TEST(StoreTest, TruncateAllCoversEveryKey) {
  MultiVersionStore store;
  for (int k = 0; k < 3; ++k) {
    for (Timestamp ts = 1; ts <= 5; ++ts) {
      ASSERT_TRUE(store
                      .Write("k" + std::to_string(k),
                             AttrMap{{"a", std::to_string(ts)}}, ts)
                      .ok());
    }
  }
  EXPECT_EQ(store.TruncateAllVersions(5), 12u);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(store.VersionCount("k" + std::to_string(k)), 1u);
  }
}

TEST(StoreTest, KeysWithPrefix) {
  MultiVersionStore store;
  ASSERT_TRUE(store.Write("!log/g/000001", AttrMap{{"e", "x"}}).ok());
  ASSERT_TRUE(store.Write("!log/g/000002", AttrMap{{"e", "y"}}).ok());
  ASSERT_TRUE(store.Write("!log/h/000001", AttrMap{{"e", "z"}}).ok());
  ASSERT_TRUE(store.Write("d/g/row", AttrMap{{"a", "1"}}).ok());
  const auto keys = store.KeysWithPrefix("!log/g/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "!log/g/000001");
  EXPECT_EQ(keys[1], "!log/g/000002");
  EXPECT_EQ(store.KeyCount(), 4u);
}

TEST(StoreTest, ConcurrentCheckAndWriteGrantsExactlyOne) {
  // The store must be independently thread-safe (it is the substrate the
  // "stateless service processes" share). N threads race a leader claim;
  // exactly one may win.
  MultiVersionStore store;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> wins{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&store, &wins, i] {
      if (store
              .CheckAndWrite("claim", "owner", "",
                             AttrMap{{"owner", std::to_string(i)}})
              .ok()) {
        wins.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wins.load(), 1);
}

TEST(StoreTest, ConcurrentWritersKeepVersionOrder) {
  MultiVersionStore store;
  constexpr int kThreads = 4;
  constexpr int kWritesEach = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < kWritesEach; ++i) {
        (void)store.Write("k", AttrMap{{"a", "x"}});  // auto timestamps
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.VersionCount("k"), size_t{kThreads * kWritesEach});
  // Timestamps must be strictly increasing.
  Timestamp prev = 0;
  for (Timestamp ts = 1; ts <= kThreads * kWritesEach; ++ts) {
    Result<RowVersion> row = store.Read("k", ts);
    ASSERT_TRUE(row.ok());
    EXPECT_GT(row->timestamp, prev);
    prev = row->timestamp;
  }
}

}  // namespace
}  // namespace paxoscp::kvstore
