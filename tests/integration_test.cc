// End-to-end integration tests: full clusters, real protocol runs over the
// simulated WAN, invariants checked after every scenario.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/checker.h"
#include "core/cluster.h"
#include "sim/coro.h"
#include "txn/txn.h"

namespace paxoscp {
namespace {

using core::Checker;
using core::Cluster;
using core::ClusterConfig;
using txn::ClientOptions;
using txn::CommitResult;
using txn::Protocol;
using txn::Session;
using txn::Txn;

constexpr char kGroup[] = "g";
constexpr char kRow[] = "r";

ClusterConfig TestConfig(const std::string& code, uint64_t seed = 42) {
  ClusterConfig config = *ClusterConfig::FromCode(code);
  config.seed = seed;
  return config;
}

ClientOptions OptionsFor(Protocol protocol) {
  ClientOptions options;
  options.protocol = protocol;
  return options;
}

/// Runs one read-modify-write transaction: reads `read_attr`, writes
/// `write_attr` = `value`, commits; stores the outcome.
sim::Task RunSimpleTxn(Session* session, std::string read_attr,
                       std::string write_attr, std::string value,
                       CommitResult* out) {
  Txn txn = co_await session->Begin(kGroup);
  if (!txn.active()) {
    out->status = txn.begin_status();
    co_return;
  }
  if (!read_attr.empty()) {
    Result<std::string> r = co_await txn.Read(kRow, read_attr);
    if (!r.ok()) {
      out->status = r.status();
      co_return;  // handle drop aborts
    }
  }
  if (!write_attr.empty()) {
    (void)txn.Write(kRow, write_attr, value);
  }
  *out = co_await txn.Commit();
}

/// Reads a single attribute in a fresh transaction.
sim::Task ReadAttr(Session* session, std::string attr,
                   Result<std::string>* out) {
  Txn txn = co_await session->Begin(kGroup);
  if (!txn.active()) {
    *out = txn.begin_status();
    co_return;
  }
  *out = co_await txn.Read(kRow, attr);
  (void)co_await txn.Commit();
}

TEST(IntegrationTest, SingleTransactionCommits) {
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "0"}}).ok());
  Session client = cluster.CreateSession(0, OptionsFor(Protocol::kPaxosCP));

  CommitResult result;
  RunSimpleTxn(&client, "a", "a", "1", &result);
  cluster.RunToCompletion();

  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(result.position, 1u);
  EXPECT_EQ(result.promotions, 0);

  Checker checker(&cluster);
  core::CheckReport report = checker.CheckAll(kGroup, {});
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(IntegrationTest, CommittedWriteVisibleToLaterTransaction) {
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "init"}}).ok());
  Session writer = cluster.CreateSession(0, OptionsFor(Protocol::kPaxosCP));
  CommitResult wr;
  RunSimpleTxn(&writer, "", "a", "updated", &wr);
  cluster.RunToCompletion();
  ASSERT_TRUE(wr.committed);

  Session reader = cluster.CreateSession(1, OptionsFor(Protocol::kPaxosCP));
  Result<std::string> read = Status::Internal("unset");
  ReadAttr(&reader, "a", &read);
  cluster.RunToCompletion();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, "updated");
}

TEST(IntegrationTest, ReadOnlyTransactionCommitsWithoutLogEntry) {
  Cluster cluster(TestConfig("VV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "x"}}).ok());
  Session client = cluster.CreateSession(0, OptionsFor(Protocol::kPaxosCP));
  CommitResult result;
  RunSimpleTxn(&client, "a", "", "", &result);
  cluster.RunToCompletion();
  EXPECT_TRUE(result.committed);
  EXPECT_TRUE(result.read_only);
  EXPECT_EQ(cluster.service(0)->GroupLog(kGroup)->MaxDecided(), 0u);
}

TEST(IntegrationTest, SequentialTransactionsFillConsecutivePositions) {
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "0"}}).ok());
  Session client = cluster.CreateSession(0, OptionsFor(Protocol::kPaxosCP));
  for (int i = 1; i <= 5; ++i) {
    CommitResult result;
    RunSimpleTxn(&client, "a", "a", std::to_string(i), &result);
    cluster.RunToCompletion();
    ASSERT_TRUE(result.committed) << "txn " << i << ": "
                                  << result.status.ToString();
    EXPECT_EQ(result.position, static_cast<LogPos>(i));
  }
  Checker checker(&cluster);
  EXPECT_TRUE(checker.CheckAll(kGroup, {}).ok);
}

TEST(IntegrationTest, ConcurrentNonConflictingTxns_BasicAbortsOne) {
  // Two clients read the same snapshot and write different attributes.
  // Under basic Paxos exactly one can win the log position; the other
  // aborts even though they do not conflict (concurrency *prevention*).
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(
      cluster.LoadInitialRow(kGroup, kRow, {{"a", "0"}, {"b", "0"}}).ok());
  Session c1 = cluster.CreateSession(0, OptionsFor(Protocol::kBasicPaxos));
  Session c2 = cluster.CreateSession(1, OptionsFor(Protocol::kBasicPaxos));

  CommitResult r1, r2;
  RunSimpleTxn(&c1, "a", "a", "1", &r1);
  RunSimpleTxn(&c2, "b", "b", "2", &r2);
  cluster.RunToCompletion();

  EXPECT_NE(r1.committed, r2.committed)
      << "exactly one of two competing transactions must win under basic "
         "Paxos; r1="
      << r1.status.ToString() << " r2=" << r2.status.ToString();
  Checker checker(&cluster);
  EXPECT_TRUE(checker.CheckAll(kGroup, {}).ok);
}

TEST(IntegrationTest, ConcurrentNonConflictingTxns_CpCommitsBoth) {
  // Same scenario under Paxos-CP: combination or promotion must let both
  // commit (they have no read-write conflict).
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(
      cluster.LoadInitialRow(kGroup, kRow, {{"a", "0"}, {"b", "0"}}).ok());
  Session c1 = cluster.CreateSession(0, OptionsFor(Protocol::kPaxosCP));
  Session c2 = cluster.CreateSession(1, OptionsFor(Protocol::kPaxosCP));

  CommitResult r1, r2;
  RunSimpleTxn(&c1, "a", "a", "1", &r1);
  RunSimpleTxn(&c2, "b", "b", "2", &r2);
  cluster.RunToCompletion();

  EXPECT_TRUE(r1.committed) << r1.status.ToString();
  EXPECT_TRUE(r2.committed) << r2.status.ToString();
  Checker checker(&cluster);
  core::CheckReport report = checker.CheckAll(kGroup, {});
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(IntegrationTest, ConflictingTxns_CpAbortsReader) {
  // c2 reads attribute "a" which c1 writes; if c1 wins the position, c2
  // must abort (promotion is illegal: it read-from the winner's write set).
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(
      cluster.LoadInitialRow(kGroup, kRow, {{"a", "0"}, {"b", "0"}}).ok());
  Session c1 = cluster.CreateSession(0, OptionsFor(Protocol::kPaxosCP));
  Session c2 = cluster.CreateSession(1, OptionsFor(Protocol::kPaxosCP));

  CommitResult r1, r2;
  RunSimpleTxn(&c1, "b", "a", "1", &r1);  // reads b, writes a
  RunSimpleTxn(&c2, "a", "b", "2", &r2);  // reads a, writes b
  cluster.RunToCompletion();

  // Both read the other's write target: whoever loses the position has a
  // true read-write conflict with the winner and must abort.
  EXPECT_NE(r1.committed, r2.committed);
  EXPECT_TRUE((r1.committed ? r2 : r1).status.IsAborted());
  Checker checker(&cluster);
  EXPECT_TRUE(checker.CheckAll(kGroup, {}).ok);
}

TEST(IntegrationTest, FiveReplicaCommit) {
  Cluster cluster(TestConfig("VVVOC"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "0"}}).ok());
  Session client = cluster.CreateSession(3, OptionsFor(Protocol::kPaxosCP));  // Oregon
  CommitResult result;
  RunSimpleTxn(&client, "a", "a", "1", &result);
  cluster.RunToCompletion();
  ASSERT_TRUE(result.committed) << result.status.ToString();
  // Every replica eventually holds the same entry.
  Checker checker(&cluster);
  EXPECT_TRUE(checker.CheckAll(kGroup, {}).ok);
  int replicas_with_entry = 0;
  for (DcId dc = 0; dc < cluster.num_datacenters(); ++dc) {
    if (cluster.service(dc)->GroupLog(kGroup)->HasEntry(1)) {
      ++replicas_with_entry;
    }
  }
  EXPECT_GE(replicas_with_entry, 3);  // at least a majority applied
}

TEST(IntegrationTest, CommitSurvivesMinorityOutage) {
  // One of three datacenters is down; commits must still succeed (majority
  // alive), paying the straggler timeout.
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "0"}}).ok());
  cluster.SetDatacenterDown(2, true);
  Session client = cluster.CreateSession(0, OptionsFor(Protocol::kPaxosCP));
  CommitResult result;
  RunSimpleTxn(&client, "a", "a", "1", &result);
  cluster.RunToCompletion();
  ASSERT_TRUE(result.committed) << result.status.ToString();
  EXPECT_FALSE(cluster.service(2)->GroupLog(kGroup)->HasEntry(1));

  // The recovered datacenter serves a consistent read by learning the
  // missing entry from its peers.
  cluster.SetDatacenterDown(2, false);
  Session reader = cluster.CreateSession(2, OptionsFor(Protocol::kPaxosCP));
  Result<std::string> read = Status::Internal("unset");
  ReadAttr(&reader, "a", &read);
  cluster.RunToCompletion();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  // DC2's log was behind: its own begin may have returned read_pos 0, in
  // which case it reads the initial value; what matters is that the system
  // stayed consistent.
  Checker checker(&cluster);
  EXPECT_TRUE(checker.CheckAll(kGroup, {}).ok);
}

TEST(IntegrationTest, MajorityOutageBlocksCommit) {
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "0"}}).ok());
  cluster.SetDatacenterDown(1, true);
  cluster.SetDatacenterDown(2, true);
  ClientOptions options = OptionsFor(Protocol::kPaxosCP);
  options.max_rounds_per_position = 3;  // keep the test fast
  Session client = cluster.CreateSession(0, options);
  CommitResult result;
  RunSimpleTxn(&client, "a", "a", "1", &result);
  cluster.RunToCompletion();
  EXPECT_FALSE(result.committed);
  EXPECT_TRUE(result.status.IsUnavailable()) << result.status.ToString();
  EXPECT_FALSE(cluster.service(0)->GroupLog(kGroup)->HasEntry(1));
}

TEST(IntegrationTest, ClientFailsOverReadsWhenHomeDown) {
  // The client's home transaction service is down; begin and reads must
  // fail over to other datacenters (paper step 1/2 failover).
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "seed"}}).ok());
  // A network where only the home *service* is gone: model by severing the
  // home's intra-DC link, which kills client->home-service traffic but not
  // client->remote traffic.
  cluster.SetLinkDown(0, 0, true);
  Session client = cluster.CreateSession(0, OptionsFor(Protocol::kPaxosCP));
  Result<std::string> read = Status::Internal("unset");
  ReadAttr(&client, "a", &read);
  cluster.RunToCompletion();
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, "seed");
}

TEST(IntegrationTest, MessageLossStillCommits) {
  ClusterConfig config = TestConfig("VVV", 7);
  config.loss_probability = 0.05;
  Cluster cluster(config);
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "0"}}).ok());
  Session client = cluster.CreateSession(0, OptionsFor(Protocol::kPaxosCP));
  int committed = 0;
  for (int i = 0; i < 10; ++i) {
    CommitResult result;
    RunSimpleTxn(&client, "a", "a", std::to_string(i), &result);
    cluster.RunToCompletion();
    if (result.committed) ++committed;
  }
  EXPECT_GE(committed, 8);  // sequential txns: loss may delay, rarely abort
  Checker checker(&cluster);
  EXPECT_TRUE(checker.CheckAll(kGroup, {}).ok);
}

TEST(IntegrationTest, BootstrapLeaderRaceIsSafe) {
  // Regression: two clients in different datacenters race for position 1
  // of a fresh log at the same instant. Both ask for the leader fast path;
  // the grant must be unique cluster-wide (canonical bootstrap leader), or
  // two distinct round-0 ballots could decide conflicting values — the R1
  // checker caught exactly this during development (docs/ARCHITECTURE.md,
  // note D3).
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Cluster cluster(TestConfig("VVV", seed));
    ASSERT_TRUE(
        cluster.LoadInitialRow(kGroup, kRow, {{"a", "0"}, {"b", "0"}}).ok());
    ClientOptions options = OptionsFor(Protocol::kBasicPaxos);
    Session s1 = cluster.CreateSession(0, options);
    Session s2 = cluster.CreateSession(1, options);
    CommitResult r1, r2;
    RunSimpleTxn(&s1, "", "a", "1", &r1);
    RunSimpleTxn(&s2, "", "b", "2", &r2);
    cluster.RunToCompletion();

    Checker checker(&cluster);
    core::CheckReport report = checker.CheckAll(kGroup, {});
    ASSERT_TRUE(report.ok) << "seed " << seed << ": " << report.ToString();
    EXPECT_NE(r1.committed, r2.committed) << "seed " << seed;
  }
}

TEST(IntegrationTest, TwoReplicaClusterNeedsBoth) {
  // With D=2, majority is 2: both must be reachable.
  Cluster cluster(TestConfig("VV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "0"}}).ok());
  Session client = cluster.CreateSession(0, OptionsFor(Protocol::kBasicPaxos));
  CommitResult result;
  RunSimpleTxn(&client, "a", "a", "1", &result);
  cluster.RunToCompletion();
  EXPECT_TRUE(result.committed);

  cluster.SetDatacenterDown(1, true);
  ClientOptions options = OptionsFor(Protocol::kBasicPaxos);
  options.max_rounds_per_position = 2;
  Session client2 = cluster.CreateSession(0, options);
  CommitResult result2;
  RunSimpleTxn(&client2, "a", "a", "2", &result2);
  cluster.RunToCompletion();
  EXPECT_FALSE(result2.committed);
}

}  // namespace
}  // namespace paxoscp
