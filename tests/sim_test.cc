// Unit tests for the discrete-event simulator and coroutine primitives.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/coro.h"
#include "sim/simulator.h"

namespace paxoscp::sim {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, FifoAmongEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  TimeMicros seen = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(50, [&] { seen = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(seen, 150);
}

TEST(SimulatorTest, PastEventsClampToNow) {
  Simulator sim;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAt(10, [&] { EXPECT_EQ(sim.Now(), 100); });
  });
  sim.Run();
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.ScheduleAt(10, [&] { ran = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.EventsExecuted(), 0u);
}

TEST(SimulatorTest, CancelIsSelective) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAt(10, [&] { ran += 1; });
  const EventId id = sim.ScheduleAt(10, [&] { ran += 10; });
  sim.ScheduleAt(10, [&] { ran += 100; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_EQ(ran, 101);
}

TEST(SimulatorTest, CancelAfterExecuteIsExactNoOp) {
  // Regression: the old implementation tracked cancellations in a tombstone
  // set sized against the queue, so cancelling an id that had already
  // executed skewed (and could underflow) PendingEvents().
  Simulator sim;
  int ran = 0;
  const EventId first = sim.ScheduleAt(1, [&] { ++ran; });
  sim.ScheduleAt(2, [&] { ++ran; });
  EXPECT_EQ(sim.PendingEvents(), 2u);
  ASSERT_TRUE(sim.Step());  // runs `first`
  sim.Cancel(first);        // stale: the event already executed
  EXPECT_EQ(sim.PendingEvents(), 1u);
  ASSERT_TRUE(sim.Step());
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.EventsExecuted(), 2u);
}

TEST(SimulatorTest, DoubleCancelCountsOnce) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.ScheduleAt(10, [&] { ran = true; });
  sim.ScheduleAt(11, [] {});
  sim.Cancel(id);
  sim.Cancel(id);  // second cancel of the same id must not double-decrement
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(SimulatorTest, PendingEventsExactUnderInterleavedCancelAndStep) {
  // Interleave Cancel and Step every way the accounting could drift:
  // cancel-before-run, cancel-after-run, double cancel, cancel of an
  // invalid id — PendingEvents() must stay exact throughout.
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(sim.ScheduleAt(i, [] {}));
  EXPECT_EQ(sim.PendingEvents(), 8u);
  sim.Cancel(ids[0]);
  sim.Cancel(ids[3]);
  EXPECT_EQ(sim.PendingEvents(), 6u);
  ASSERT_TRUE(sim.Step());  // runs event 1 (0 was cancelled)
  EXPECT_EQ(sim.PendingEvents(), 5u);
  sim.Cancel(ids[1]);  // already executed: no-op
  sim.Cancel(ids[0]);  // already cancelled-and-collected: no-op
  sim.Cancel(kInvalidEventId);
  EXPECT_EQ(sim.PendingEvents(), 5u);
  ASSERT_TRUE(sim.Step());  // runs event 2
  sim.Cancel(ids[7]);
  EXPECT_EQ(sim.PendingEvents(), 3u);
  EXPECT_EQ(sim.Run(), 3u);  // events 4, 5, 6
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_EQ(sim.EventsExecuted(), 5u);
}

TEST(SimulatorTest, StaleIdDoesNotCancelRecycledSlot) {
  // After an event runs, its pool slot may be recycled for a new event; a
  // stale cancel with the old id must not kill the new occupant.
  Simulator sim;
  const EventId old_id = sim.ScheduleAt(1, [] {});
  sim.Run();  // slot is freed and recycled below
  bool ran = false;
  sim.ScheduleAt(2, [&] { ran = true; });
  sim.Cancel(old_id);  // stale generation: must be a no-op
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.Run();
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<TimeMicros> times;
  for (TimeMicros t : {10, 20, 30, 40}) {
    sim.ScheduleAt(t, [&times, &sim] { times.push_back(sim.Now()); });
  }
  sim.RunUntil(25);
  EXPECT_EQ(times, (std::vector<TimeMicros>{10, 20}));
  EXPECT_EQ(sim.Now(), 25);
  sim.Run();
  EXPECT_EQ(times.size(), 4u);
}

TEST(SimulatorTest, RunUntilAdvancesTimeWhenIdle) {
  Simulator sim;
  sim.RunUntil(1000);
  EXPECT_EQ(sim.Now(), 1000);
}

TEST(SimulatorTest, MaxEventsBound) {
  Simulator sim;
  int count = 0;
  std::function<void()> reschedule = [&] {
    ++count;
    sim.ScheduleAfter(1, reschedule);
  };
  sim.ScheduleAfter(1, reschedule);
  sim.Run(/*max_events=*/100);
  EXPECT_EQ(count, 100);
}

// ------------------------------------------------------------ Coroutines --

Task SetFlagAfter(Simulator* sim, TimeMicros delay, bool* flag) {
  co_await SleepFor(sim, delay);
  *flag = true;
}

TEST(CoroTest, TaskSleepsInVirtualTime) {
  Simulator sim;
  bool flag = false;
  SetFlagAfter(&sim, 500, &flag);
  EXPECT_FALSE(flag);  // suspended at the sleep
  sim.Run();
  EXPECT_TRUE(flag);
  EXPECT_EQ(sim.Now(), 500);
}

Coro<int> AddAfter(Simulator* sim, TimeMicros delay, int a, int b) {
  co_await SleepFor(sim, delay);
  co_return a + b;
}

Task DriveAdd(Simulator* sim, int* out) {
  *out = co_await AddAfter(sim, 100, 2, 3);
}

TEST(CoroTest, CoroReturnsValueToParent) {
  Simulator sim;
  int out = 0;
  DriveAdd(&sim, &out);
  sim.Run();
  EXPECT_EQ(out, 5);
}

Coro<int> Nested(Simulator* sim, int depth) {
  if (depth == 0) co_return 1;
  const int below = co_await Nested(sim, depth - 1);
  co_await SleepFor(sim, 1);
  co_return below + 1;
}

Task DriveNested(Simulator* sim, int* out) {
  *out = co_await Nested(sim, 10);
}

TEST(CoroTest, NestedCorosCompose) {
  Simulator sim;
  int out = 0;
  DriveNested(&sim, &out);
  sim.Run();
  EXPECT_EQ(out, 11);
  EXPECT_EQ(sim.Now(), 10);
}

Coro<void> VoidCoro(Simulator* sim, int* counter) {
  co_await SleepFor(sim, 5);
  ++*counter;
}

Task DriveVoid(Simulator* sim, int* counter) {
  co_await VoidCoro(sim, counter);
  co_await VoidCoro(sim, counter);
}

TEST(CoroTest, VoidCoroRuns) {
  Simulator sim;
  int counter = 0;
  DriveVoid(&sim, &counter);
  sim.Run();
  EXPECT_EQ(counter, 2);
  EXPECT_EQ(sim.Now(), 10);
}

Task AwaitFuture(Future<int> f, int* out) { *out = co_await f; }

TEST(FutureTest, AwaitThenSet) {
  Simulator sim;
  Promise<int> promise(&sim);
  int out = 0;
  AwaitFuture(promise.GetFuture(), &out);
  EXPECT_EQ(out, 0);
  sim.ScheduleAt(50, [&] { promise.Set(99); });
  sim.Run();
  EXPECT_EQ(out, 99);
}

TEST(FutureTest, SetBeforeAwaitResumesImmediately) {
  Simulator sim;
  Promise<int> promise(&sim);
  promise.Set(7);
  int out = 0;
  AwaitFuture(promise.GetFuture(), &out);
  sim.Run();
  EXPECT_EQ(out, 7);
}

TEST(FutureTest, FirstSetWins) {
  Simulator sim;
  Promise<int> promise(&sim);
  int out = 0;
  AwaitFuture(promise.GetFuture(), &out);
  promise.Set(1);
  promise.Set(2);
  sim.Run();
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(promise.IsSet());
}

TEST(FutureTest, SetAfterWaiterResumedIsIgnored) {
  // Pins the other half of first-wins: a Set that arrives after the waiter
  // has already been resumed (not merely after an earlier Set) must be a
  // no-op. WhenAll's timeout races depend on this — the losing side of a
  // race may fire arbitrarily late.
  Simulator sim;
  Promise<int> promise(&sim);
  int out = 0;
  AwaitFuture(promise.GetFuture(), &out);
  sim.ScheduleAt(10, [&] { promise.Set(1); });
  sim.RunUntil(20);
  EXPECT_EQ(out, 1);  // waiter resumed with the first value
  promise.Set(2);     // late loser: must not re-deliver or corrupt state
  sim.Run();
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(promise.IsSet());
}

TEST(FutureTest, CallbackModeDeliversThroughQueue) {
  Simulator sim;
  Promise<std::string> promise(&sim);
  std::string got;
  promise.GetFuture().OnReady([&](std::string&& v) { got = std::move(v); });
  promise.Set("hello");
  EXPECT_EQ(got, "");  // not yet: delivery goes through the event queue
  sim.Run();
  EXPECT_EQ(got, "hello");
}

TEST(FutureTest, CallbackAttachedAfterSet) {
  Simulator sim;
  Promise<int> promise(&sim);
  promise.Set(5);
  int got = 0;
  promise.GetFuture().OnReady([&](int&& v) { got = v; });
  sim.Run();
  EXPECT_EQ(got, 5);
}

// ----------------------------------------------------- WhenAll / Gather --

Coro<int> ValueAfter(Simulator* sim, TimeMicros delay, int v) {
  co_await SleepFor(sim, delay);
  co_return v;
}

Coro<void> TouchAfter(Simulator* sim, TimeMicros delay, int* counter) {
  co_await SleepFor(sim, delay);
  ++*counter;
}

// NOTE: drivers take pointers, never aggregate class types by value, per the
// coroutine-parameter rules documented in txn/client.h.
Task DriveGather(Simulator* sim, std::vector<Coro<int>>* children,
                 std::vector<int>* out, bool* done) {
  Gather<int> g(sim, std::move(*children));
  *out = co_await std::move(g);
  *done = true;
}

Task DriveWhenAll(Simulator* sim, std::vector<Coro<void>>* children,
                  bool* done) {
  WhenAll all(sim, std::move(*children));
  co_await std::move(all);
  *done = true;
}

TEST(WhenAllTest, EmptySetCompletesThroughQueue) {
  Simulator sim;
  std::vector<Coro<void>> none;
  bool done = false;
  DriveWhenAll(&sim, &none, &done);
  // Even an empty join resumes its waiter via the event queue, never inline.
  EXPECT_FALSE(done);
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.Now(), 0);
}

TEST(WhenAllTest, GatherEmptyYieldsEmptyVector) {
  Simulator sim;
  std::vector<Coro<int>> none;
  std::vector<int> out{1, 2, 3};  // sentinel: must be replaced by empty
  bool done = false;
  DriveGather(&sim, &none, &out, &done);
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(out.empty());
}

TEST(WhenAllTest, SingleChild) {
  Simulator sim;
  std::vector<Coro<int>> kids;
  kids.push_back(ValueAfter(&sim, 25, 42));
  std::vector<int> out;
  bool done = false;
  DriveGather(&sim, &kids, &out, &done);
  EXPECT_FALSE(done);
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(out, (std::vector<int>{42}));
  EXPECT_EQ(sim.Now(), 25);
}

TEST(WhenAllTest, ResultsInInputOrderForEveryCompletionPermutation) {
  // Three children with delays assigned by permutation: whatever order they
  // complete in, Gather returns results by input index and the join fires
  // exactly when the slowest child resolves.
  const TimeMicros delays[3] = {10, 20, 30};
  int perm[3] = {0, 1, 2};
  do {
    Simulator sim;
    std::vector<Coro<int>> kids;
    for (int i = 0; i < 3; ++i) {
      kids.push_back(ValueAfter(&sim, delays[perm[i]], 100 + i));
    }
    std::vector<int> out;
    bool done = false;
    DriveGather(&sim, &kids, &out, &done);
    sim.Run();
    EXPECT_TRUE(done);
    EXPECT_EQ(out, (std::vector<int>{100, 101, 102}))
        << "perm " << perm[0] << perm[1] << perm[2];
    EXPECT_EQ(sim.Now(), 30);  // join completes with the slowest child
  } while (std::next_permutation(perm, perm + 3));
}

TEST(WhenAllTest, MixedCorosAndFuturesAllCountedOnce) {
  Simulator sim;
  int touched = 0;
  Promise<int> p1(&sim), p2(&sim);
  p1.Set(7);  // already resolved before the join is armed
  WhenAll all(&sim);
  all.Add(TouchAfter(&sim, 5, &touched));
  all.Add(p1.GetFuture());
  all.Add(p2.GetFuture());
  all.Add(TouchAfter(&sim, 15, &touched));
  EXPECT_EQ(all.size(), 4u);
  Promise<bool> done(&sim);
  std::move(all).Start(done);
  sim.ScheduleAt(10, [&] { p2.Set(8); });
  bool completed = false;
  done.GetFuture().OnReady([&](bool&& v) { completed = v; });
  sim.Run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(touched, 2);
}

TEST(WhenAllTest, NeverFiringDependencyLosesRaceToTimeout) {
  // A join whose dependency never resolves must still let the caller make
  // progress: racing the join against a timeout through one first-wins
  // Promise, the timeout delivers false. The straggler is then resolved and
  // the run drained, so teardown is provably leak-free (ASan-clean).
  Simulator sim;
  int touched = 0;
  Promise<int> never(&sim);
  WhenAll all(&sim);
  all.Add(TouchAfter(&sim, 5, &touched));
  all.Add(never.GetFuture());
  Promise<bool> done(&sim);
  std::move(all).Start(done);
  sim.ScheduleAfter(1000, [done]() mutable { done.Set(false); });
  bool completed = true;
  bool resumed = false;
  done.GetFuture().OnReady([&](bool&& v) {
    completed = v;
    resumed = true;
  });
  sim.Run();
  EXPECT_TRUE(resumed);
  EXPECT_FALSE(completed);  // timeout won
  EXPECT_EQ(touched, 1);    // the live child still ran to completion
  // Late resolution of the straggler: the join's Set(true) loses first-wins.
  never.Set(0);
  sim.Run();
  EXPECT_FALSE(completed);
}

TEST(WhenAllTest, DestroyedWithoutAwaitLeaksNothing) {
  // A WhenAll/Gather abandoned before being awaited or Start()ed never
  // starts its queued children; their frames are destroyed (deferred
  // through the queue) with it. ASan verifies no frame leaks.
  Simulator sim;
  int touched = 0;
  {
    WhenAll all(&sim);
    all.Add(TouchAfter(&sim, 5, &touched));
    all.Add(TouchAfter(&sim, 10, &touched));
  }  // dropped without await/Start
  {
    std::vector<Coro<int>> kids;
    kids.push_back(ValueAfter(&sim, 5, 1));
    Gather<int> g(&sim, std::move(kids));
  }  // dropped without await
  sim.Run();  // drains the deferred frame destructions
  EXPECT_EQ(touched, 0);
}

// Two tasks awaiting sleeps interleave deterministically.
Task Recorder(Simulator* sim, std::vector<std::string>* log, std::string name,
              TimeMicros step) {
  for (int i = 0; i < 3; ++i) {
    co_await SleepFor(sim, step);
    log->push_back(name + std::to_string(i));
  }
}

TEST(CoroTest, DeterministicInterleaving) {
  std::vector<std::string> log1, log2;
  for (auto* log : {&log1, &log2}) {
    Simulator sim;
    Recorder(&sim, log, "a", 10);
    Recorder(&sim, log, "b", 15);
    sim.Run();
  }
  EXPECT_EQ(log1, log2);
  EXPECT_EQ(log1.size(), 6u);
  EXPECT_EQ(log1[0], "a0");  // t=10 before t=15
}

}  // namespace
}  // namespace paxoscp::sim
