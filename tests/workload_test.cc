// Tests for the workload generator and the experiment runner.
#include <gtest/gtest.h>

#include <set>

#include "workload/generator.h"
#include "workload/runner.h"

namespace paxoscp::workload {
namespace {

TEST(GeneratorTest, DeterministicFromSeed) {
  WorkloadConfig config;
  Generator a(config, 5), b(config, 5);
  for (int i = 0; i < 20; ++i) {
    auto ops_a = a.NextTxnOps();
    auto ops_b = b.NextTxnOps();
    ASSERT_EQ(ops_a.size(), ops_b.size());
    for (size_t j = 0; j < ops_a.size(); ++j) {
      EXPECT_EQ(ops_a[j].is_read, ops_b[j].is_read);
      EXPECT_EQ(ops_a[j].attribute, ops_b[j].attribute);
      EXPECT_EQ(ops_a[j].value, ops_b[j].value);
    }
  }
}

TEST(GeneratorTest, OpsPerTxnRespected) {
  WorkloadConfig config;
  config.ops_per_txn = 7;
  Generator generator(config, 1);
  EXPECT_EQ(generator.NextTxnOps().size(), 7u);
}

TEST(GeneratorTest, ReadFractionApproximatelyHolds) {
  WorkloadConfig config;
  config.ops_per_txn = 10;
  config.read_fraction = 0.5;
  Generator generator(config, 2);
  int reads = 0, total = 0;
  for (int i = 0; i < 1000; ++i) {
    for (const Op& op : generator.NextTxnOps()) {
      reads += op.is_read ? 1 : 0;
      ++total;
    }
  }
  EXPECT_NEAR(double(reads) / total, 0.5, 0.03);
}

TEST(GeneratorTest, AttributesStayInRange) {
  WorkloadConfig config;
  config.num_attributes = 20;
  Generator generator(config, 3);
  std::set<std::string> valid;
  for (int i = 0; i < 20; ++i) valid.insert(Generator::AttributeName(i));
  for (int i = 0; i < 200; ++i) {
    for (const Op& op : generator.NextTxnOps()) {
      EXPECT_TRUE(valid.count(op.attribute)) << op.attribute;
    }
  }
}

TEST(GeneratorTest, WritesCarryValuesReadsDoNot) {
  Generator generator(WorkloadConfig{}, 4);
  for (int i = 0; i < 50; ++i) {
    for (const Op& op : generator.NextTxnOps()) {
      if (op.is_read) {
        EXPECT_TRUE(op.value.empty());
      } else {
        EXPECT_EQ(op.value.size(), 16u);
      }
    }
  }
}

TEST(GeneratorTest, InitialRowCoversAllAttributes) {
  WorkloadConfig config;
  config.num_attributes = 33;
  Generator generator(config, 5);
  auto row = generator.InitialRow();
  EXPECT_EQ(row.size(), 33u);
  EXPECT_TRUE(row.count("a0"));
  EXPECT_TRUE(row.count("a32"));
}

TEST(GeneratorTest, ZipfianModeSkewsAccess) {
  WorkloadConfig config;
  config.num_attributes = 100;
  config.zipfian = true;
  Generator generator(config, 6);
  std::map<std::string, int> counts;
  for (int i = 0; i < 2000; ++i) {
    for (const Op& op : generator.NextTxnOps()) counts[op.attribute]++;
  }
  // The most popular attribute should dominate a uniform share (1%).
  int max_count = 0, total = 0;
  for (auto& [attr, c] : counts) {
    max_count = std::max(max_count, c);
    total += c;
  }
  EXPECT_GT(double(max_count) / total, 0.05);
}

// ------------------------------------------------------------------ runner

RunnerConfig SmallRun(txn::Protocol protocol) {
  RunnerConfig config;
  config.total_txns = 40;
  config.num_threads = 4;
  config.stagger = 100 * kMillisecond;
  config.target_rate_tps = 4;
  config.workload.num_attributes = 50;
  config.client.protocol = protocol;
  config.seed = 77;
  return config;
}

TEST(RunnerTest, CompletesAndChecksInvariants) {
  core::ClusterConfig cluster = *core::ClusterConfig::FromCode("VVV");
  cluster.seed = 13;
  RunStats stats = RunExperiment(cluster, SmallRun(txn::Protocol::kPaxosCP));
  EXPECT_TRUE(stats.all_threads_finished);
  EXPECT_EQ(stats.attempted, 40);
  EXPECT_EQ(stats.attempted,
            stats.committed + stats.read_only + stats.aborted + stats.failed);
  EXPECT_TRUE(stats.check.ok) << stats.check.ToString();
  EXPECT_EQ(stats.outcomes.size(), 40u);
  EXPECT_GT(stats.messages_sent, 0u);
}

TEST(RunnerTest, CommitRateDefinitionsAgree) {
  // Regression for the old inconsistency where RunStats::CommitRate()
  // excluded read-only commits while WindowCounts::CommitRate() included
  // them: both now share one definition, (committed + read_only) /
  // attempted, and the windowed counts must reaggregate to the whole-run
  // numbers.
  core::ClusterConfig cluster = *core::ClusterConfig::FromCode("VVV");
  cluster.seed = 13;
  RunnerConfig config = SmallRun(txn::Protocol::kPaxosCP);
  config.availability_window = 2 * kSecond;
  RunStats stats = RunExperiment(cluster, config);

  WindowCounts total;
  for (const WindowCounts& w : stats.windows) {
    total.attempted += w.attempted;
    total.committed += w.committed;
    total.read_only += w.read_only;
    total.aborted += w.aborted;
    total.unavailable += w.unavailable;
  }
  EXPECT_EQ(total.attempted, stats.attempted);
  EXPECT_EQ(total.committed, stats.committed);
  EXPECT_EQ(total.read_only, stats.read_only);
  EXPECT_EQ(total.aborted, stats.aborted);
  EXPECT_EQ(total.unavailable, stats.failed);
  EXPECT_DOUBLE_EQ(total.CommitRate(), stats.CommitRate());
  // The read/write-only variant differs whenever read-only commits exist.
  EXPECT_LE(stats.ReadWriteCommitRate(), 1.0);
}

TEST(RunnerTest, DeterministicAcrossRuns) {
  core::ClusterConfig cluster = *core::ClusterConfig::FromCode("VVV");
  cluster.seed = 13;
  RunStats a = RunExperiment(cluster, SmallRun(txn::Protocol::kPaxosCP));
  RunStats b = RunExperiment(cluster, SmallRun(txn::Protocol::kPaxosCP));
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.commits_by_round, b.commits_by_round);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.virtual_duration, b.virtual_duration);
}

TEST(RunnerTest, SeedChangesOutcome) {
  core::ClusterConfig cluster = *core::ClusterConfig::FromCode("VVV");
  cluster.seed = 13;
  RunnerConfig config = SmallRun(txn::Protocol::kPaxosCP);
  RunStats a = RunExperiment(cluster, config);
  config.seed = 78;
  RunStats b = RunExperiment(cluster, config);
  // Different workloads: virtual durations virtually never coincide.
  EXPECT_NE(a.virtual_duration, b.virtual_duration);
}

TEST(RunnerTest, CpCommitsAtLeastAsManyAsBasic) {
  core::ClusterConfig cluster = *core::ClusterConfig::FromCode("VVV");
  cluster.seed = 13;
  RunStats basic =
      RunExperiment(cluster, SmallRun(txn::Protocol::kBasicPaxos));
  RunStats cp = RunExperiment(cluster, SmallRun(txn::Protocol::kPaxosCP));
  EXPECT_TRUE(basic.check.ok);
  EXPECT_TRUE(cp.check.ok);
  EXPECT_GE(cp.committed, basic.committed);
  // Basic Paxos never promotes.
  EXPECT_EQ(basic.max_promotions, 0);
}

TEST(RunnerTest, PerThreadHomesRouteClients) {
  core::ClusterConfig cluster = *core::ClusterConfig::FromCode("VOC");
  cluster.seed = 19;
  RunnerConfig config = SmallRun(txn::Protocol::kPaxosCP);
  config.num_threads = 3;
  config.thread_dcs = {0, 1, 2};
  RunStats stats = RunExperiment(cluster, config);
  EXPECT_TRUE(stats.all_threads_finished);
  EXPECT_EQ(stats.attempted_by_dc.size(), 3u);
  for (auto& [dc, attempted] : stats.attempted_by_dc) {
    EXPECT_GT(attempted, 0) << "dc " << dc;
  }
}

TEST(RunnerTest, SurvivesMessageLoss) {
  core::ClusterConfig cluster = *core::ClusterConfig::FromCode("VVV");
  cluster.seed = 13;
  cluster.loss_probability = 0.05;
  RunStats stats = RunExperiment(cluster, SmallRun(txn::Protocol::kPaxosCP));
  EXPECT_TRUE(stats.all_threads_finished);
  EXPECT_TRUE(stats.check.ok) << stats.check.ToString();
  EXPECT_GT(stats.committed, 0);
}

}  // namespace
}  // namespace paxoscp::workload
