// Unit tests for the simulated network: latency, timeouts, loss, outages,
// broadcast policies.
#include <gtest/gtest.h>

#include <string>

#include "net/network.h"
#include "sim/coro.h"

namespace paxoscp::net {
namespace {

constexpr TimeMicros kRtt = 10 * kMillisecond;

/// Echo service: replies with "<dc>:<payload>" after an optional delay.
ServiceHandler EchoHandler(sim::Simulator* sim, DcId dc,
                           TimeMicros service_time = 0) {
  return [sim, dc, service_time](DcId /*from*/,
                                 const std::any* request) -> sim::Coro<std::any> {
    if (service_time > 0) co_await sim::SleepFor(sim, service_time);
    co_return std::any(std::to_string(dc) + ":" +
                       std::any_cast<std::string>(*request));
  };
}

class NetworkTest : public ::testing::Test {
 protected:
  void Build(int dcs, NetworkOptions options = {}) {
    options.latency_jitter = 0;  // exact timing assertions
    std::vector<std::vector<TimeMicros>> rtt(
        dcs, std::vector<TimeMicros>(dcs, kRtt));
    for (int i = 0; i < dcs; ++i) rtt[i][i] = 1000;
    network_ = std::make_unique<Network>(&sim_, rtt, options);
    for (DcId dc = 0; dc < dcs; ++dc) {
      network_->RegisterEndpoint(dc, EchoHandler(&sim_, dc));
    }
  }

  sim::Simulator sim_;
  std::unique_ptr<Network> network_;
};

TEST_F(NetworkTest, CallDeliversResponse) {
  Build(2);
  std::optional<CallResult> result;
  network_->Call(0, 1, std::any(std::string("ping")))
      .OnReady([&](CallResult&& r) { result = std::move(r); });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->status.ok()) << result->status.ToString();
  EXPECT_EQ(std::any_cast<std::string>(result->response), "1:ping");
}

TEST_F(NetworkTest, CallTakesOneRoundTrip) {
  Build(2);
  TimeMicros completed_at = -1;
  network_->Call(0, 1, std::any(std::string("x")))
      .OnReady([&](CallResult&&) { completed_at = sim_.Now(); });
  sim_.RunUntil(kRtt + kMillisecond);
  EXPECT_GE(completed_at, kRtt);            // one full round trip
  EXPECT_LE(completed_at, kRtt + 2);        // plus delivery events
}

TEST_F(NetworkTest, IntraDatacenterCallIsFast) {
  Build(2);
  TimeMicros completed_at = -1;
  network_->Call(0, 0, std::any(std::string("x")))
      .OnReady([&](CallResult&&) { completed_at = sim_.Now(); });
  sim_.RunUntil(5 * kMillisecond);
  EXPECT_GE(completed_at, 0);
  EXPECT_LE(completed_at, 2 * kMillisecond);
}

TEST_F(NetworkTest, TimeoutFiresWhenDestinationDown) {
  Build(2);
  network_->SetDatacenterDown(1, true);
  std::optional<CallResult> result;
  network_->Call(0, 1, std::any(std::string("x")), 50 * kMillisecond)
      .OnReady([&](CallResult&& r) { result = std::move(r); });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->status.IsTimedOut());
}

TEST_F(NetworkTest, OutageMidFlightDropsDelivery) {
  Build(2);
  std::optional<CallResult> result;
  network_->Call(0, 1, std::any(std::string("x")), 50 * kMillisecond)
      .OnReady([&](CallResult&& r) { result = std::move(r); });
  // Take the destination down after the message left but before arrival.
  sim_.ScheduleAfter(kRtt / 4, [&] { network_->SetDatacenterDown(1, true); });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->status.IsTimedOut());
}

TEST_F(NetworkTest, LinkDownBlocksOnlyThatPair) {
  Build(3);
  network_->SetLinkDown(0, 1, true);
  std::optional<CallResult> blocked, open;
  network_->Call(0, 1, std::any(std::string("x")), 30 * kMillisecond)
      .OnReady([&](CallResult&& r) { blocked = std::move(r); });
  network_->Call(0, 2, std::any(std::string("x")), 30 * kMillisecond)
      .OnReady([&](CallResult&& r) { open = std::move(r); });
  sim_.Run();
  EXPECT_TRUE(blocked->status.IsTimedOut());
  EXPECT_TRUE(open->status.ok());
}

TEST_F(NetworkTest, TotalLossTimesOutEveryCall) {
  NetworkOptions options;
  options.loss_probability = 1.0;
  Build(2, options);
  std::optional<CallResult> result;
  network_->Call(0, 1, std::any(std::string("x")), 20 * kMillisecond)
      .OnReady([&](CallResult&& r) { result = std::move(r); });
  sim_.Run();
  EXPECT_TRUE(result->status.IsTimedOut());
  EXPECT_GT(network_->messages_dropped(), 0u);
}

TEST_F(NetworkTest, BroadcastCollectsAllTargets) {
  Build(3);
  std::optional<BroadcastResult> result;
  BroadcastOptions options;
  network_->Broadcast(0, {0, 1, 2}, std::any(std::string("hi")), options)
      .OnReady([&](BroadcastResult&& r) { result = std::move(r); });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ((*result)[i].dc, i);
    ASSERT_TRUE((*result)[i].status.ok());
    EXPECT_EQ(std::any_cast<std::string>((*result)[i].response),
              std::to_string(i) + ":hi");
  }
}

TEST_F(NetworkTest, BroadcastWithDownTargetMarksItTimedOut) {
  Build(3);
  network_->SetDatacenterDown(2, true);
  std::optional<BroadcastResult> result;
  BroadcastOptions options;
  options.timeout = 30 * kMillisecond;
  network_->Broadcast(0, {0, 1, 2}, std::any(std::string("hi")), options)
      .OnReady([&](BroadcastResult&& r) { result = std::move(r); });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE((*result)[0].status.ok());
  EXPECT_TRUE((*result)[1].status.ok());
  EXPECT_TRUE((*result)[2].status.IsTimedOut());
}

TEST_F(NetworkTest, QuorumEarlyPolicyReturnsBeforeStragglers) {
  Build(3);
  // DC 2 is slow: re-register with a long service time.
  network_->RegisterEndpoint(2, EchoHandler(&sim_, 2, 500 * kMillisecond));
  std::optional<BroadcastResult> result;
  TimeMicros completed_at = -1;
  BroadcastOptions options;
  options.policy = WaitPolicy::kQuorumEarly;
  options.quorum = 2;
  options.timeout = 2 * kSecond;
  network_->Broadcast(0, {0, 1, 2}, std::any(std::string("hi")), options)
      .OnReady([&](BroadcastResult&& r) {
        result = std::move(r);
        completed_at = sim_.Now();
      });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(completed_at, 100 * kMillisecond);  // did not wait for DC 2
  int ok = 0;
  for (const TargetResult& t : *result) ok += t.status.ok() ? 1 : 0;
  EXPECT_EQ(ok, 2);
}

TEST_F(NetworkTest, EmptyBroadcastResolvesImmediately) {
  Build(2);
  std::optional<BroadcastResult> result;
  network_->Broadcast(0, {}, std::any(std::string("hi")), {})
      .OnReady([&](BroadcastResult&& r) { result = std::move(r); });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->empty());
}

TEST_F(NetworkTest, MessageStatsCount) {
  Build(2);
  network_->Call(0, 1, std::any(std::string("x")));
  sim_.Run();
  EXPECT_EQ(network_->messages_sent(), 2u);  // request + response
  EXPECT_EQ(network_->calls_started(), 1u);
  network_->ResetStats();
  EXPECT_EQ(network_->messages_sent(), 0u);
}

TEST_F(NetworkTest, JitterStaysWithinBounds) {
  NetworkOptions options;
  options.latency_jitter = 0.1;
  options.seed = 9;
  std::vector<std::vector<TimeMicros>> rtt(2,
                                           std::vector<TimeMicros>(2, kRtt));
  Network network(&sim_, rtt, options);
  network.RegisterEndpoint(1, EchoHandler(&sim_, 1));
  for (int i = 0; i < 20; ++i) {
    TimeMicros start = sim_.Now();
    std::optional<CallResult> result;
    TimeMicros completed_at = -1;
    network.Call(0, 1, std::any(std::string("x")))
        .OnReady([&](CallResult&& r) {
          result = std::move(r);
          completed_at = sim_.Now();
        });
    sim_.Run();  // drains the response and the (losing) timeout event
    ASSERT_TRUE(result->status.ok());
    const TimeMicros elapsed = completed_at - start;
    EXPECT_GE(elapsed, static_cast<TimeMicros>(kRtt * 0.9) - 2);
    EXPECT_LE(elapsed, static_cast<TimeMicros>(kRtt * 1.1) + 2);
  }
}

TEST_F(NetworkTest, RecoveredDatacenterServesAgain) {
  Build(2);
  network_->SetDatacenterDown(1, true);
  std::optional<CallResult> first, second;
  network_->Call(0, 1, std::any(std::string("a")), 20 * kMillisecond)
      .OnReady([&](CallResult&& r) { first = std::move(r); });
  sim_.Run();
  EXPECT_TRUE(first->status.IsTimedOut());

  network_->SetDatacenterDown(1, false);
  network_->Call(0, 1, std::any(std::string("b")), 20 * kMillisecond)
      .OnReady([&](CallResult&& r) { second = std::move(r); });
  sim_.Run();
  EXPECT_TRUE(second->status.ok());
}

}  // namespace
}  // namespace paxoscp::net
