// Unit tests for the simulated network: latency, timeouts, loss, outages,
// broadcast policies.
#include <gtest/gtest.h>

#include <string>

#include "net/network.h"
#include "sim/coro.h"

namespace paxoscp::net {
namespace {

constexpr TimeMicros kRtt = 10 * kMillisecond;

/// Echo service: replies with "<dc>:<payload>" after an optional delay.
ServiceHandler EchoHandler(sim::Simulator* sim, DcId dc,
                           TimeMicros service_time = 0) {
  return [sim, dc, service_time](DcId /*from*/,
                                 const std::any* request) -> sim::Coro<std::any> {
    if (service_time > 0) co_await sim::SleepFor(sim, service_time);
    co_return std::any(std::to_string(dc) + ":" +
                       std::any_cast<std::string>(*request));
  };
}

class NetworkTest : public ::testing::Test {
 protected:
  void Build(int dcs, NetworkOptions options = {}) {
    options.latency_jitter = 0;  // exact timing assertions
    std::vector<std::vector<TimeMicros>> rtt(
        dcs, std::vector<TimeMicros>(dcs, kRtt));
    for (int i = 0; i < dcs; ++i) rtt[i][i] = 1000;
    network_ = std::make_unique<Network>(&sim_, rtt, options);
    for (DcId dc = 0; dc < dcs; ++dc) {
      network_->RegisterEndpoint(dc, EchoHandler(&sim_, dc));
    }
  }

  sim::Simulator sim_;
  std::unique_ptr<Network> network_;
};

TEST_F(NetworkTest, CallDeliversResponse) {
  Build(2);
  std::optional<CallResult> result;
  network_->Call(0, 1, std::any(std::string("ping")))
      .OnReady([&](CallResult&& r) { result = std::move(r); });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->status.ok()) << result->status.ToString();
  EXPECT_EQ(std::any_cast<std::string>(result->response), "1:ping");
}

TEST_F(NetworkTest, CallTakesOneRoundTrip) {
  Build(2);
  TimeMicros completed_at = -1;
  network_->Call(0, 1, std::any(std::string("x")))
      .OnReady([&](CallResult&&) { completed_at = sim_.Now(); });
  sim_.RunUntil(kRtt + kMillisecond);
  EXPECT_GE(completed_at, kRtt);            // one full round trip
  EXPECT_LE(completed_at, kRtt + 2);        // plus delivery events
}

TEST_F(NetworkTest, IntraDatacenterCallIsFast) {
  Build(2);
  TimeMicros completed_at = -1;
  network_->Call(0, 0, std::any(std::string("x")))
      .OnReady([&](CallResult&&) { completed_at = sim_.Now(); });
  sim_.RunUntil(5 * kMillisecond);
  EXPECT_GE(completed_at, 0);
  EXPECT_LE(completed_at, 2 * kMillisecond);
}

TEST_F(NetworkTest, TimeoutFiresWhenDestinationDown) {
  Build(2);
  network_->SetDatacenterDown(1, true);
  std::optional<CallResult> result;
  network_->Call(0, 1, std::any(std::string("x")), 50 * kMillisecond)
      .OnReady([&](CallResult&& r) { result = std::move(r); });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->status.IsTimedOut());
}

TEST_F(NetworkTest, OutageMidFlightDropsDelivery) {
  Build(2);
  std::optional<CallResult> result;
  network_->Call(0, 1, std::any(std::string("x")), 50 * kMillisecond)
      .OnReady([&](CallResult&& r) { result = std::move(r); });
  // Take the destination down after the message left but before arrival.
  sim_.ScheduleAfter(kRtt / 4, [&] { network_->SetDatacenterDown(1, true); });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->status.IsTimedOut());
}

TEST_F(NetworkTest, LinkDownBlocksOnlyThatPair) {
  Build(3);
  network_->SetLinkDown(0, 1, true);
  std::optional<CallResult> blocked, open;
  network_->Call(0, 1, std::any(std::string("x")), 30 * kMillisecond)
      .OnReady([&](CallResult&& r) { blocked = std::move(r); });
  network_->Call(0, 2, std::any(std::string("x")), 30 * kMillisecond)
      .OnReady([&](CallResult&& r) { open = std::move(r); });
  sim_.Run();
  EXPECT_TRUE(blocked->status.IsTimedOut());
  EXPECT_TRUE(open->status.ok());
}

TEST_F(NetworkTest, TotalLossTimesOutEveryCall) {
  NetworkOptions options;
  options.loss_probability = 1.0;
  Build(2, options);
  std::optional<CallResult> result;
  network_->Call(0, 1, std::any(std::string("x")), 20 * kMillisecond)
      .OnReady([&](CallResult&& r) { result = std::move(r); });
  sim_.Run();
  EXPECT_TRUE(result->status.IsTimedOut());
  EXPECT_GT(network_->messages_dropped(), 0u);
}

TEST_F(NetworkTest, BroadcastCollectsAllTargets) {
  Build(3);
  std::optional<BroadcastResult> result;
  BroadcastOptions options;
  network_->Broadcast(0, {0, 1, 2}, std::any(std::string("hi")), options)
      .OnReady([&](BroadcastResult&& r) { result = std::move(r); });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ((*result)[i].dc, i);
    ASSERT_TRUE((*result)[i].status.ok());
    EXPECT_EQ(std::any_cast<std::string>((*result)[i].response),
              std::to_string(i) + ":hi");
  }
}

TEST_F(NetworkTest, BroadcastWithDownTargetMarksItTimedOut) {
  Build(3);
  network_->SetDatacenterDown(2, true);
  std::optional<BroadcastResult> result;
  BroadcastOptions options;
  options.timeout = 30 * kMillisecond;
  network_->Broadcast(0, {0, 1, 2}, std::any(std::string("hi")), options)
      .OnReady([&](BroadcastResult&& r) { result = std::move(r); });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE((*result)[0].status.ok());
  EXPECT_TRUE((*result)[1].status.ok());
  EXPECT_TRUE((*result)[2].status.IsTimedOut());
}

TEST_F(NetworkTest, QuorumEarlyPolicyReturnsBeforeStragglers) {
  Build(3);
  // DC 2 is slow: re-register with a long service time.
  network_->RegisterEndpoint(2, EchoHandler(&sim_, 2, 500 * kMillisecond));
  std::optional<BroadcastResult> result;
  TimeMicros completed_at = -1;
  BroadcastOptions options;
  options.policy = WaitPolicy::kQuorumEarly;
  options.quorum = 2;
  options.timeout = 2 * kSecond;
  network_->Broadcast(0, {0, 1, 2}, std::any(std::string("hi")), options)
      .OnReady([&](BroadcastResult&& r) {
        result = std::move(r);
        completed_at = sim_.Now();
      });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(completed_at, 100 * kMillisecond);  // did not wait for DC 2
  int ok = 0;
  for (const TargetResult& t : *result) ok += t.status.ok() ? 1 : 0;
  EXPECT_EQ(ok, 2);
}

TEST_F(NetworkTest, EmptyBroadcastResolvesImmediately) {
  Build(2);
  std::optional<BroadcastResult> result;
  network_->Broadcast(0, {}, std::any(std::string("hi")), {})
      .OnReady([&](BroadcastResult&& r) { result = std::move(r); });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->empty());
}

TEST_F(NetworkTest, MessageStatsCount) {
  Build(2);
  network_->Call(0, 1, std::any(std::string("x")));
  sim_.Run();
  EXPECT_EQ(network_->messages_sent(), 2u);  // request + response
  EXPECT_EQ(network_->calls_started(), 1u);
  network_->ResetStats();
  EXPECT_EQ(network_->messages_sent(), 0u);
}

TEST_F(NetworkTest, JitterStaysWithinBounds) {
  NetworkOptions options;
  options.latency_jitter = 0.1;
  options.seed = 9;
  std::vector<std::vector<TimeMicros>> rtt(2,
                                           std::vector<TimeMicros>(2, kRtt));
  Network network(&sim_, rtt, options);
  network.RegisterEndpoint(1, EchoHandler(&sim_, 1));
  for (int i = 0; i < 20; ++i) {
    TimeMicros start = sim_.Now();
    std::optional<CallResult> result;
    TimeMicros completed_at = -1;
    network.Call(0, 1, std::any(std::string("x")))
        .OnReady([&](CallResult&& r) {
          result = std::move(r);
          completed_at = sim_.Now();
        });
    sim_.Run();  // drains the response and the (losing) timeout event
    ASSERT_TRUE(result->status.ok());
    const TimeMicros elapsed = completed_at - start;
    EXPECT_GE(elapsed, static_cast<TimeMicros>(kRtt * 0.9) - 2);
    EXPECT_LE(elapsed, static_cast<TimeMicros>(kRtt * 1.1) + 2);
  }
}

// ---- In-flight outage semantics (ARCHITECTURE.md design note D6) --------
// Intended semantics, pinned here: a message is lost if its destination (or
// the directed link it travels) goes down at ANY point during its flight,
// even if the fault heals before the scheduled delivery; a message whose
// source dies after it left is still delivered; responses already delivered
// stand.

TEST_F(NetworkTest, DownUpFlapWithinFlightWindowLosesMessage) {
  Build(2);
  std::optional<CallResult> result;
  network_->Call(0, 1, std::any(std::string("x")), 50 * kMillisecond)
      .OnReady([&](CallResult&& r) { result = std::move(r); });
  // One-way delay is kRtt/2 = 5 ms. The destination flaps down at 1 ms and
  // is back UP at 2 ms — well before the delivery event at 5 ms. The
  // message crossed an outage window, so it must be lost; a delivery-time
  // check alone would (wrongly) deliver it.
  sim_.ScheduleAfter(1 * kMillisecond,
                     [&] { network_->SetDatacenterDown(1, true); });
  sim_.ScheduleAfter(2 * kMillisecond,
                     [&] { network_->SetDatacenterDown(1, false); });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->status.IsTimedOut());
}

TEST_F(NetworkTest, DownUpDownFlapsWithinOneTimeoutWindow) {
  Build(2);
  // dc1 flaps twice inside a single 50 ms RPC timeout: down 1-2 ms, up
  // 2-3 ms, down 3-4 ms, up from 4 ms.
  for (TimeMicros t : {1, 3}) {
    sim_.ScheduleAfter(t * kMillisecond,
                       [&] { network_->SetDatacenterDown(1, true); });
    sim_.ScheduleAfter((t + 1) * kMillisecond,
                       [&] { network_->SetDatacenterDown(1, false); });
  }
  // Sent before the first flap, delivery (5 ms) after the last: lost.
  std::optional<CallResult> flapped;
  network_->Call(0, 1, std::any(std::string("a")), 50 * kMillisecond)
      .OnReady([&](CallResult&& r) { flapped = std::move(r); });
  sim_.Run();
  ASSERT_TRUE(flapped.has_value());
  EXPECT_TRUE(flapped->status.IsTimedOut());

  // Sent after the last recovery, same timeout window: clean round trip.
  std::optional<CallResult> clean;
  network_->Call(0, 1, std::any(std::string("b")), 50 * kMillisecond)
      .OnReady([&](CallResult&& r) { clean = std::move(r); });
  sim_.Run();
  ASSERT_TRUE(clean.has_value());
  EXPECT_TRUE(clean->status.ok()) << clean->status.ToString();
}

TEST_F(NetworkTest, BroadcastTargetFlappingMidFlightIsLostOthersStand) {
  Build(3);
  std::optional<BroadcastResult> result;
  BroadcastOptions options;
  options.timeout = 50 * kMillisecond;
  network_->Broadcast(0, {0, 1, 2}, std::any(std::string("hi")), options)
      .OnReady([&](BroadcastResult&& r) { result = std::move(r); });
  // dc2 goes down while the broadcast's requests are in flight and is back
  // before their arrival; dc0/dc1 deliveries already under way are
  // unaffected and their responses stand.
  sim_.ScheduleAfter(1 * kMillisecond,
                     [&] { network_->SetDatacenterDown(2, true); });
  sim_.ScheduleAfter(2 * kMillisecond,
                     [&] { network_->SetDatacenterDown(2, false); });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE((*result)[0].status.ok());
  EXPECT_TRUE((*result)[1].status.ok());
  EXPECT_TRUE((*result)[2].status.IsTimedOut());
}

TEST_F(NetworkTest, ResponseInFlightFromDownedSourceStillArrives) {
  Build(2);
  std::optional<CallResult> result;
  network_->Call(0, 1, std::any(std::string("x")), 50 * kMillisecond)
      .OnReady([&](CallResult&& r) { result = std::move(r); });
  // The response leaves dc1 at ~5 ms (instant handler); dc1 dies at 7 ms
  // while its response is in flight. The message already left the downed
  // datacenter, so it is delivered.
  sim_.ScheduleAfter(7 * kMillisecond,
                     [&] { network_->SetDatacenterDown(1, true); });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->status.ok()) << result->status.ToString();
  EXPECT_EQ(std::any_cast<std::string>(result->response), "1:x");
}

// ---- Asymmetric (one-way) link cuts --------------------------------------

TEST_F(NetworkTest, OneWayLinkCutBlocksOnlyThatDirection) {
  Build(3);
  int handled_at_0 = 0, handled_at_1 = 0;
  network_->RegisterEndpoint(
      0, [&](DcId, const std::any*) -> sim::Coro<std::any> {
        ++handled_at_0;
        co_return std::any(std::string("pong0"));
      });
  network_->RegisterEndpoint(
      1, [&](DcId, const std::any*) -> sim::Coro<std::any> {
        ++handled_at_1;
        co_return std::any(std::string("pong1"));
      });
  network_->SetLinkOneWayDown(0, 1, true);

  // 0 -> 1: the request itself travels the cut direction, never arrives.
  std::optional<CallResult> forward;
  network_->Call(0, 1, std::any(std::string("x")), 30 * kMillisecond)
      .OnReady([&](CallResult&& r) { forward = std::move(r); });
  sim_.Run();
  EXPECT_TRUE(forward->status.IsTimedOut());
  EXPECT_EQ(handled_at_1, 0);

  // 1 -> 0: the request arrives and is served; only the response (which
  // travels 0 -> 1) is black-holed. The caller sees the same timeout but
  // the side effect happened — the asymmetry 2PC/Paxos must tolerate.
  std::optional<CallResult> reverse;
  network_->Call(1, 0, std::any(std::string("y")), 30 * kMillisecond)
      .OnReady([&](CallResult&& r) { reverse = std::move(r); });
  sim_.Run();
  EXPECT_TRUE(reverse->status.IsTimedOut());
  EXPECT_EQ(handled_at_0, 1);

  // Unrelated pairs are untouched.
  std::optional<CallResult> other;
  network_->Call(2, 1, std::any(std::string("z")), 30 * kMillisecond)
      .OnReady([&](CallResult&& r) { other = std::move(r); });
  sim_.Run();
  EXPECT_TRUE(other->status.ok());

  // Healing restores the direction.
  network_->SetLinkOneWayDown(0, 1, false);
  std::optional<CallResult> healed;
  network_->Call(0, 1, std::any(std::string("w")), 30 * kMillisecond)
      .OnReady([&](CallResult&& r) { healed = std::move(r); });
  sim_.Run();
  EXPECT_TRUE(healed->status.ok());
  EXPECT_EQ(handled_at_1, 2);
}

TEST_F(NetworkTest, OneWayCutMidFlightDropsTheResponse) {
  Build(2);
  std::optional<CallResult> result;
  network_->Call(0, 1, std::any(std::string("x")), 50 * kMillisecond)
      .OnReady([&](CallResult&& r) { result = std::move(r); });
  // Cut the response direction (1 -> 0) at 7 ms, while the response is in
  // flight (left dc1 at ~5 ms, due at ~10 ms); heal immediately after. The
  // in-flight response is lost even though the link is up at delivery time.
  sim_.ScheduleAfter(7 * kMillisecond,
                     [&] { network_->SetLinkOneWayDown(1, 0, true); });
  sim_.ScheduleAfter(8 * kMillisecond,
                     [&] { network_->SetLinkOneWayDown(1, 0, false); });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->status.IsTimedOut());
}

// ---- Adversarial delivery faults (ARCHITECTURE.md design note D10) -------
// Duplication re-delivers the REQUEST (the handler runs twice — the
// idempotence exercise); responses race into a first-set-wins promise, so
// the caller always sees exactly one result. All duplication/reorder
// randomness draws from a dedicated fault stream, so enabling the faults
// never perturbs the primary copies' delivery schedule.

TEST_F(NetworkTest, DuplicateDeliversHandlerTwice) {
  Build(2);
  network_->set_duplicate_probability(1.0);
  int handled = 0;
  network_->RegisterEndpoint(
      1, [&](DcId, const std::any*) -> sim::Coro<std::any> {
        ++handled;
        co_return std::any(std::string("pong"));
      });
  std::optional<CallResult> result;
  network_->Call(0, 1, std::any(std::string("x")))
      .OnReady([&](CallResult&& r) { result = std::move(r); });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->status.ok()) << result->status.ToString();
  EXPECT_EQ(handled, 2);  // both copies reach the handler
  EXPECT_EQ(network_->messages_duplicated(), 1u);
}

TEST_F(NetworkTest, ReorderHoldsMessageBackWithinBound) {
  NetworkOptions options;
  options.reorder_probability = 1.0;
  options.reorder_extra_max = 20 * kMillisecond;
  Build(2, options);
  std::optional<CallResult> result;
  TimeMicros completed_at = -1;
  network_->Call(0, 1, std::any(std::string("x")), 2 * kSecond)
      .OnReady([&](CallResult&& r) {
        result = std::move(r);
        completed_at = sim_.Now();
      });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->status.ok());
  // Both legs drew an extra in (0, 20 ms]; total must exceed the clean RTT
  // and stay under RTT + 2 * extra_max (plus delivery-event slack).
  EXPECT_GT(completed_at, kRtt);
  EXPECT_LE(completed_at, kRtt + 2 * options.reorder_extra_max + 2);
  EXPECT_EQ(network_->messages_reordered(), 2u);  // request + response
}

TEST_F(NetworkTest, DeliveryFaultsAreDeterministicPerSeed) {
  // Same seed, same call pattern -> identical delivery schedule, twice.
  auto run_once = [&](std::vector<TimeMicros>* completions,
                      uint64_t* duplicated, uint64_t* reordered) {
    sim::Simulator sim;
    NetworkOptions options;
    options.seed = 42;
    options.latency_jitter = 0.1;
    options.duplicate_probability = 0.3;
    options.reorder_probability = 0.3;
    options.reorder_extra_max = 15 * kMillisecond;
    std::vector<std::vector<TimeMicros>> rtt(
        3, std::vector<TimeMicros>(3, kRtt));
    Network network(&sim, rtt, options);
    for (DcId dc = 0; dc < 3; ++dc) {
      network.RegisterEndpoint(dc, EchoHandler(&sim, dc));
    }
    for (int i = 0; i < 40; ++i) {
      network.Call(0, 1 + i % 2, std::any(std::to_string(i)))
          .OnReady([&](CallResult&&) { completions->push_back(sim.Now()); });
      sim.Run();
    }
    *duplicated = network.messages_duplicated();
    *reordered = network.messages_reordered();
  };
  std::vector<TimeMicros> first, second;
  uint64_t dup1 = 0, dup2 = 0, re1 = 0, re2 = 0;
  run_once(&first, &dup1, &re1);
  run_once(&second, &dup2, &re2);
  EXPECT_EQ(first, second);
  EXPECT_EQ(dup1, dup2);
  EXPECT_EQ(re1, re2);
  EXPECT_GT(dup1, 0u);  // the sweep actually exercised both faults
  EXPECT_GT(re1, 0u);
}

TEST_F(NetworkTest, FaultStreamNeverPerturbsPrimarySchedule) {
  // With jitter on (so the main RNG stream is live), enabling duplication
  // must leave every primary copy's completion time untouched: duplicate
  // scheduling and the duplicate's response leg draw only from the fault
  // stream.
  auto run_once = [&](double duplicate_probability,
                      std::vector<TimeMicros>* completions) {
    sim::Simulator sim;
    NetworkOptions options;
    options.seed = 7;
    options.latency_jitter = 0.1;
    options.duplicate_probability = duplicate_probability;
    std::vector<std::vector<TimeMicros>> rtt(
        2, std::vector<TimeMicros>(2, kRtt));
    Network network(&sim, rtt, options);
    network.RegisterEndpoint(1, EchoHandler(&sim, 1));
    for (int i = 0; i < 30; ++i) {
      network.Call(0, 1, std::any(std::to_string(i)))
          .OnReady([&](CallResult&&) { completions->push_back(sim.Now()); });
      sim.Run();
    }
  };
  std::vector<TimeMicros> clean, duplicated;
  run_once(0.0, &clean);
  run_once(1.0, &duplicated);
  EXPECT_EQ(clean, duplicated);
}

TEST_F(NetworkTest, DuplicateRespectsOutageWindows) {
  // The duplicate captures the same channel epoch as its original (D6): a
  // flap between the primary delivery and the duplicate's later delivery
  // kills the duplicate even though the link is up again when it arrives.
  NetworkOptions options;
  options.duplicate_probability = 1.0;
  options.reorder_extra_max = 20 * kMillisecond;  // bounds the dup lag
  Build(2, options);
  int handled = 0;
  network_->RegisterEndpoint(
      1, [&](DcId, const std::any*) -> sim::Coro<std::any> {
        ++handled;
        co_return std::any(std::string("pong"));
      });
  std::optional<CallResult> result;
  network_->Call(0, 1, std::any(std::string("x")), 100 * kMillisecond)
      .OnReady([&](CallResult&& r) { result = std::move(r); });
  // Primary arrives at 5 ms; the duplicate lags it by (0, 20 ms]. Flap the
  // destination down/up in between: epoch bumped, duplicate dead on
  // arrival.
  sim_.ScheduleAfter(5 * kMillisecond + 100,
                     [&] { network_->SetDatacenterDown(1, true); });
  sim_.ScheduleAfter(5 * kMillisecond + 200,
                     [&] { network_->SetDatacenterDown(1, false); });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->status.ok()) << result->status.ToString();
  EXPECT_EQ(handled, 1);  // only the primary copy was delivered
  EXPECT_EQ(network_->messages_duplicated(), 1u);
}

TEST_F(NetworkTest, RecoveredDatacenterServesAgain) {
  Build(2);
  network_->SetDatacenterDown(1, true);
  std::optional<CallResult> first, second;
  network_->Call(0, 1, std::any(std::string("a")), 20 * kMillisecond)
      .OnReady([&](CallResult&& r) { first = std::move(r); });
  sim_.Run();
  EXPECT_TRUE(first->status.IsTimedOut());

  network_->SetDatacenterDown(1, false);
  network_->Call(0, 1, std::any(std::string("b")), 20 * kMillisecond)
      .OnReady([&](CallResult&& r) { second = std::move(r); });
  sim_.Run();
  EXPECT_TRUE(second->status.ok());
}

}  // namespace
}  // namespace paxoscp::net
