// Unit tests for the write-ahead-log model: entry codec, log storage with
// the R1 guard, apply-to-data-rows, snapshot reads with provenance.
#include <gtest/gtest.h>

#include "common/coding.h"
#include "kvstore/store.h"
#include "wal/log.h"
#include "wal/log_entry.h"

namespace paxoscp::wal {
namespace {

TxnRecord MakeTxn(TxnId id, LogPos read_pos,
                  std::vector<std::string> read_attrs,
                  std::vector<std::pair<std::string, std::string>> writes) {
  TxnRecord t;
  t.id = id;
  t.origin_dc = TxnIdDc(id);
  t.read_pos = read_pos;
  for (auto& attr : read_attrs) {
    t.reads.push_back(ReadRecord{{"r", attr}, 0, 0});
  }
  for (auto& [attr, value] : writes) {
    t.writes.push_back(WriteRecord{{"r", attr}, value});
  }
  return t;
}

TEST(LogEntryTest, EncodeDecodeRoundTrip) {
  LogEntry entry;
  entry.winner_dc = 2;
  entry.txns.push_back(MakeTxn(MakeTxnId(1, 7), 41, {"a", "b"},
                               {{"c", "v1"}, {"d", "v2"}}));
  entry.txns.push_back(MakeTxn(MakeTxnId(2, 9), 41, {}, {{"e", ""}}));
  entry.txns[0].reads[0].observed_writer = MakeTxnId(0, 3);
  entry.txns[0].reads[0].observed_pos = 17;

  Result<LogEntry> decoded = LogEntry::Decode(entry.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, entry);
}

TEST(LogEntryTest, EmptyEntryRoundTrip) {
  LogEntry entry;
  Result<LogEntry> decoded = LogEntry::Decode(entry.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, entry);
  EXPECT_EQ(decoded->winner_dc, kNoDc);
}

TEST(LogEntryTest, DecodeRejectsTruncation) {
  LogEntry entry;
  entry.txns.push_back(MakeTxn(MakeTxnId(1, 1), 0, {"a"}, {{"b", "v"}}));
  std::string encoded = entry.Encode();
  for (size_t cut : {size_t{1}, encoded.size() / 2, encoded.size() - 1}) {
    EXPECT_FALSE(LogEntry::Decode(encoded.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(LogEntryTest, DecodeRejectsTrailingBytes) {
  LogEntry entry;
  entry.txns.push_back(MakeTxn(MakeTxnId(1, 1), 0, {}, {{"b", "v"}}));
  std::string encoded = entry.Encode() + "x";
  EXPECT_FALSE(LogEntry::Decode(encoded).ok());
}

TEST(LogEntryTest, FingerprintMatchesContent) {
  LogEntry a, b;
  a.winner_dc = b.winner_dc = 1;
  a.txns.push_back(MakeTxn(MakeTxnId(1, 1), 0, {"x"}, {{"y", "v"}}));
  b.txns.push_back(MakeTxn(MakeTxnId(1, 1), 0, {"x"}, {{"y", "v"}}));
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  b.txns[0].writes[0].value = "w";
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(LogEntryTest, StreamedFingerprintEqualsFingerprintOfEncoding) {
  // Fingerprint() streams the fields through a chunking-invariant hasher;
  // it must equal hashing the materialized encoding byte-for-byte.
  LogEntry entry;
  entry.winner_dc = 2;
  entry.txns.push_back(
      MakeTxn(MakeTxnId(1, 7), 3, {"a1", "a2"}, {{"a3", "v3"}, {"a4", "v4"}}));
  entry.txns.push_back(MakeTxn(MakeTxnId(2, 9), 3, {}, {{"a5", ""}}));
  EXPECT_EQ(entry.Fingerprint(), Fingerprint64(entry.Encode()));
  EXPECT_EQ(LogEntry{}.Fingerprint(), Fingerprint64(LogEntry{}.Encode()));
}

TEST(LogEntryTest, ContainsTxn) {
  LogEntry entry;
  entry.txns.push_back(MakeTxn(MakeTxnId(1, 1), 0, {}, {}));
  entry.txns.push_back(MakeTxn(MakeTxnId(2, 5), 0, {}, {}));
  EXPECT_TRUE(entry.ContainsTxn(MakeTxnId(1, 1)));
  EXPECT_TRUE(entry.ContainsTxn(MakeTxnId(2, 5)));
  EXPECT_FALSE(entry.ContainsTxn(MakeTxnId(3, 1)));
}

TEST(LogEntryTest, WritesItemReadBy) {
  LogEntry winners;
  winners.txns.push_back(MakeTxn(MakeTxnId(1, 1), 0, {}, {{"a", "v"}}));

  TxnRecord reads_a = MakeTxn(MakeTxnId(2, 1), 0, {"a"}, {{"b", "w"}});
  TxnRecord reads_b = MakeTxn(MakeTxnId(2, 2), 0, {"b"}, {{"a", "w"}});
  EXPECT_TRUE(winners.WritesItemReadBy(reads_a));
  // Write-write overlap alone is not a conflict for promotion.
  EXPECT_FALSE(winners.WritesItemReadBy(reads_b));
}

TEST(LogEntryTest, ReadsAndWritesHelpers) {
  TxnRecord t = MakeTxn(MakeTxnId(1, 1), 0, {"a"}, {{"b", "v"}});
  EXPECT_TRUE(t.Reads(ItemId{"r", "a"}));
  EXPECT_FALSE(t.Reads(ItemId{"r", "b"}));
  EXPECT_TRUE(t.Writes(ItemId{"r", "b"}));
  EXPECT_FALSE(t.Writes(ItemId{"r", "a"}));
  EXPECT_FALSE(t.Writes(ItemId{"other_row", "b"}));
  // A whole-row predicate read (Txn::ReadRow phantom protection) is
  // covered by any write to that row, and only that row.
  EXPECT_TRUE(t.Writes(ItemId{"r", kWholeRowAttribute}));
  EXPECT_FALSE(t.Writes(ItemId{"other_row", kWholeRowAttribute}));
}

TEST(PadPosTest, LexicographicOrderMatchesNumeric) {
  EXPECT_EQ(PadPos(1), "000000000001");
  EXPECT_EQ(PadPos(999999999999ULL), "999999999999");
  EXPECT_LT(PadPos(2), PadPos(10));
  EXPECT_LT(PadPos(99), PadPos(100));
}

class LogTest : public ::testing::Test {
 protected:
  kvstore::MultiVersionStore store_;
  WriteAheadLog log_{&store_, "g"};

  LogEntry Entry(TxnId id, std::vector<std::pair<std::string, std::string>>
                               writes) {
    LogEntry e;
    e.winner_dc = TxnIdDc(id);
    e.txns.push_back(MakeTxn(id, 0, {}, std::move(writes)));
    return e;
  }
};

TEST_F(LogTest, EmptyLog) {
  EXPECT_EQ(log_.MaxDecided(), 0u);
  EXPECT_EQ(log_.AppliedThrough(), 0u);
  EXPECT_FALSE(log_.HasEntry(1));
  EXPECT_TRUE(log_.GetEntry(1).status().IsNotFound());
}

TEST_F(LogTest, SetGetEntry) {
  LogEntry e = Entry(MakeTxnId(1, 1), {{"a", "v"}});
  ASSERT_TRUE(log_.SetEntry(1, e).ok());
  EXPECT_TRUE(log_.HasEntry(1));
  EXPECT_EQ(log_.MaxDecided(), 1u);
  Result<LogEntry> got = log_.GetEntry(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, e);
}

TEST_F(LogTest, SetEntryIdempotent) {
  LogEntry e = Entry(MakeTxnId(1, 1), {{"a", "v"}});
  ASSERT_TRUE(log_.SetEntry(1, e).ok());
  EXPECT_TRUE(log_.SetEntry(1, e).ok());  // same value: fine
}

TEST_F(LogTest, SetEntryConflictIsR1Violation) {
  ASSERT_TRUE(log_.SetEntry(1, Entry(MakeTxnId(1, 1), {{"a", "v"}})).ok());
  Status s = log_.SetEntry(1, Entry(MakeTxnId(2, 1), {{"a", "w"}}));
  EXPECT_EQ(s.code(), Status::Code::kCorruption);
}

TEST_F(LogTest, MaxDecidedTracksHighest) {
  ASSERT_TRUE(log_.SetEntry(3, Entry(MakeTxnId(1, 3), {{"a", "3"}})).ok());
  EXPECT_EQ(log_.MaxDecided(), 3u);
  ASSERT_TRUE(log_.SetEntry(1, Entry(MakeTxnId(1, 1), {{"a", "1"}})).ok());
  EXPECT_EQ(log_.MaxDecided(), 3u);  // does not regress
}

TEST_F(LogTest, ApplyThroughWritesDataRows) {
  ASSERT_TRUE(log_.SetEntry(1, Entry(MakeTxnId(1, 1), {{"a", "1"}})).ok());
  ASSERT_TRUE(
      log_.SetEntry(2, Entry(MakeTxnId(1, 2), {{"a", "2"}, {"b", "x"}}))
          .ok());
  ASSERT_TRUE(log_.ApplyThrough(2).ok());
  EXPECT_EQ(log_.AppliedThrough(), 2u);

  ItemRead read_a1 = log_.ReadItem(ItemId{"r", "a"}, 1);
  EXPECT_TRUE(read_a1.found);
  EXPECT_EQ(read_a1.value, "1");
  EXPECT_EQ(read_a1.writer, MakeTxnId(1, 1));
  EXPECT_EQ(read_a1.written_pos, 1u);

  ItemRead read_a2 = log_.ReadItem(ItemId{"r", "a"}, 2);
  EXPECT_EQ(read_a2.value, "2");
  EXPECT_EQ(read_a2.writer, MakeTxnId(1, 2));
}

TEST_F(LogTest, ApplyThroughReportsGap) {
  ASSERT_TRUE(log_.SetEntry(1, Entry(MakeTxnId(1, 1), {{"a", "1"}})).ok());
  ASSERT_TRUE(log_.SetEntry(3, Entry(MakeTxnId(1, 3), {{"a", "3"}})).ok());
  LogPos missing = 0;
  Status s = log_.ApplyThrough(3, &missing);
  EXPECT_EQ(s.code(), Status::Code::kFailedPrecondition);
  EXPECT_EQ(missing, 2u);
  EXPECT_EQ(log_.AppliedThrough(), 1u);  // applied what it could
}

TEST_F(LogTest, ApplyIsIdempotent) {
  ASSERT_TRUE(log_.SetEntry(1, Entry(MakeTxnId(1, 1), {{"a", "1"}})).ok());
  ASSERT_TRUE(log_.ApplyThrough(1).ok());
  ASSERT_TRUE(log_.ApplyThrough(1).ok());
  EXPECT_EQ(store_.VersionCount(log_.DataKey("r")), 1u);
}

TEST_F(LogTest, CombinedEntryAppliesInListOrder) {
  // Two transactions in one entry write the same attribute: the later one
  // in the list must win (serial order within the entry).
  LogEntry e;
  e.winner_dc = 0;
  e.txns.push_back(MakeTxn(MakeTxnId(1, 1), 0, {}, {{"a", "first"}}));
  e.txns.push_back(MakeTxn(MakeTxnId(2, 1), 0, {}, {{"a", "second"}}));
  ASSERT_TRUE(log_.SetEntry(1, e).ok());
  ASSERT_TRUE(log_.ApplyThrough(1).ok());
  ItemRead read = log_.ReadItem(ItemId{"r", "a"}, 1);
  EXPECT_EQ(read.value, "second");
  EXPECT_EQ(read.writer, MakeTxnId(2, 1));
}

TEST_F(LogTest, ReadItemInitialState) {
  ItemRead read = log_.ReadItem(ItemId{"r", "nope"}, 5);
  EXPECT_FALSE(read.found);
  EXPECT_EQ(read.value, "");
  EXPECT_EQ(read.writer, 0u);
  EXPECT_EQ(read.written_pos, 0u);
}

TEST_F(LogTest, LoadInitialRowReadableAtPositionZero) {
  ASSERT_TRUE(log_.LoadInitialRow("r", {{"a", "seed"}}).ok());
  ItemRead read = log_.ReadItem(ItemId{"r", "a"}, 0);
  EXPECT_TRUE(read.found);
  EXPECT_EQ(read.value, "seed");
  EXPECT_EQ(read.writer, 0u);  // initial state has no writer
}

TEST_F(LogTest, AllEntriesReturnsEverything) {
  for (LogPos pos = 1; pos <= 5; ++pos) {
    ASSERT_TRUE(
        log_.SetEntry(pos, Entry(MakeTxnId(1, pos), {{"a", "v"}})).ok());
  }
  auto all = log_.AllEntries();
  EXPECT_EQ(all.size(), 5u);
  EXPECT_TRUE(all.count(1) && all.count(5));
}

TEST_F(LogTest, LogsAreIsolatedPerGroup) {
  WriteAheadLog other(&store_, "h");
  ASSERT_TRUE(log_.SetEntry(1, Entry(MakeTxnId(1, 1), {{"a", "g"}})).ok());
  EXPECT_FALSE(other.HasEntry(1));
  EXPECT_EQ(other.MaxDecided(), 0u);
}

}  // namespace
}  // namespace paxoscp::wal
