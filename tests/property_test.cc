// Property-based sweeps: run the full stack across seeds x protocols x
// cluster shapes x fault regimes and assert, on every run, the paper's
// correctness obligations — (R1) replica agreement, (L1)/(L2) exactly the
// committed transactions in the log, (L3) one-copy serializability, and an
// acyclic multi-version serialization graph — regardless of message loss,
// datacenter outages, or contention level.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>

#include "workload/runner.h"

namespace paxoscp {
namespace {

using workload::RunExperiment;
using workload::RunnerConfig;
using workload::RunStats;

struct PropertyCase {
  std::string cluster;
  txn::Protocol protocol;
  double loss;
  uint64_t seed;
  int num_attributes;
  double rate_tps;
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  const PropertyCase& c = info.param;
  std::ostringstream os;
  os << c.cluster << "_" << txn::ProtocolName(c.protocol) << "_loss"
     << int(c.loss * 100) << "_seed" << c.seed << "_attrs"
     << c.num_attributes;
  std::string name = os.str();
  for (char& ch : name) {
    if (ch == '-' || ch == '.') ch = '_';
  }
  return name;
}

RunStats RunCase(const PropertyCase& c, int txns = 60) {
  core::ClusterConfig cluster = *core::ClusterConfig::FromCode(c.cluster);
  cluster.seed = c.seed * 31 + 7;
  cluster.loss_probability = c.loss;
  RunnerConfig config;
  config.total_txns = txns;
  config.num_threads = 4;
  config.stagger = 50 * kMillisecond;
  config.target_rate_tps = c.rate_tps;
  config.workload.num_attributes = c.num_attributes;
  config.client.protocol = c.protocol;
  config.seed = c.seed;
  return RunExperiment(cluster, config);
}

void AssertInvariants(const RunStats& stats) {
  EXPECT_TRUE(stats.all_threads_finished);
  ASSERT_TRUE(stats.check.ok) << stats.check.ToString();
  EXPECT_EQ(stats.attempted,
            stats.committed + stats.read_only + stats.aborted + stats.failed);
  // Accounting: every committed read/write txn appears in the log
  // (CheckOutcomes verified positions); totals must line up.
  EXPECT_EQ(stats.check.committed_txns_in_log, stats.committed);
}

class ProtocolSweep : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ProtocolSweep, InvariantsHold) {
  AssertInvariants(RunCase(GetParam()));
}

std::vector<PropertyCase> SweepCases() {
  std::vector<PropertyCase> cases;
  for (const std::string cluster : {"VV", "VVV", "VOC", "VVVOC"}) {
    for (txn::Protocol protocol :
         {txn::Protocol::kBasicPaxos, txn::Protocol::kPaxosCP}) {
      for (uint64_t seed : {1u, 2u, 3u}) {
        cases.push_back(
            PropertyCase{cluster, protocol, 0.0, seed, 30, 4.0});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Clusters, ProtocolSweep,
                         ::testing::ValuesIn(SweepCases()), CaseName);

class LossSweep : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(LossSweep, InvariantsHoldUnderLoss) {
  AssertInvariants(RunCase(GetParam(), /*txns=*/40));
}

std::vector<PropertyCase> LossCases() {
  std::vector<PropertyCase> cases;
  for (double loss : {0.02, 0.10, 0.25}) {
    for (txn::Protocol protocol :
         {txn::Protocol::kBasicPaxos, txn::Protocol::kPaxosCP}) {
      for (uint64_t seed : {4u, 5u}) {
        cases.push_back(PropertyCase{"VVV", protocol, loss, seed, 30, 4.0});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Loss, LossSweep, ::testing::ValuesIn(LossCases()),
                         CaseName);

class ContentionSweep : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ContentionSweep, InvariantsHoldUnderContention) {
  RunStats stats = RunCase(GetParam());
  AssertInvariants(stats);
  // Under contention some transactions must actually have competed; the
  // test is vacuous otherwise. (CP may still commit everything.)
  if (GetParam().protocol == txn::Protocol::kBasicPaxos) {
    EXPECT_GT(stats.aborted, 0) << "contention sweep produced no conflicts";
  }
}

std::vector<PropertyCase> ContentionCases() {
  std::vector<PropertyCase> cases;
  for (int attrs : {5, 10, 100}) {
    for (txn::Protocol protocol :
         {txn::Protocol::kBasicPaxos, txn::Protocol::kPaxosCP}) {
      for (uint64_t seed : {6u, 7u}) {
        cases.push_back(PropertyCase{"VVV", protocol, 0.0, seed, attrs,
                                     8.0});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Contention, ContentionSweep,
                         ::testing::ValuesIn(ContentionCases()), CaseName);

// ------------------------------------------------------- outage injection

class OutageSweep
    : public ::testing::TestWithParam<std::tuple<txn::Protocol, uint64_t>> {};

TEST_P(OutageSweep, MinorityOutageMidRunPreservesInvariants) {
  const auto [protocol, seed] = GetParam();
  core::ClusterConfig cluster_config = *core::ClusterConfig::FromCode("VVV");
  cluster_config.seed = seed;
  core::Cluster cluster(cluster_config);

  // Take one datacenter down partway through the run and bring it back
  // later: commits must continue (majority alive) and the recovered
  // replica must converge to an identical log.
  cluster.simulator()->ScheduleAt(3 * kSecond,
                                  [&] { cluster.SetDatacenterDown(2, true); });
  cluster.simulator()->ScheduleAt(
      12 * kSecond, [&] { cluster.SetDatacenterDown(2, false); });

  RunnerConfig config;
  config.total_txns = 40;
  config.num_threads = 4;
  config.target_rate_tps = 2.0;
  config.stagger = 100 * kMillisecond;
  config.workload.num_attributes = 50;
  config.client.protocol = protocol;
  config.seed = seed + 100;
  RunStats stats = RunExperiment(&cluster, config);

  EXPECT_TRUE(stats.all_threads_finished);
  ASSERT_TRUE(stats.check.ok) << stats.check.ToString();
  EXPECT_GT(stats.committed, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Outage, OutageSweep,
    ::testing::Combine(::testing::Values(txn::Protocol::kBasicPaxos,
                                         txn::Protocol::kPaxosCP),
                       ::testing::Values(11u, 12u, 13u)));

// -------------------------------------------------- flapping datacenters

class FlappingSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlappingSweep, RepeatedOutagesNeverBreakSerializability) {
  const uint64_t seed = GetParam();
  core::ClusterConfig cluster_config =
      *core::ClusterConfig::FromCode("VVVOC");
  cluster_config.seed = seed;
  core::Cluster cluster(cluster_config);

  // Rotate a single-down datacenter every 2 simulated seconds.
  for (int step = 0; step < 12; ++step) {
    const DcId victim = step % 5;
    cluster.simulator()->ScheduleAt(
        (2 + step * 2) * kSecond,
        [&cluster, victim] { cluster.SetDatacenterDown(victim, true); });
    cluster.simulator()->ScheduleAt(
        (3 + step * 2) * kSecond,
        [&cluster, victim] { cluster.SetDatacenterDown(victim, false); });
  }

  RunnerConfig config;
  config.total_txns = 50;
  config.num_threads = 5;
  config.thread_dcs = {0, 1, 2, 3, 4};
  config.target_rate_tps = 1.0;
  config.stagger = 200 * kMillisecond;
  config.workload.num_attributes = 40;
  config.client.protocol = txn::Protocol::kPaxosCP;
  config.seed = seed;
  RunStats stats = RunExperiment(&cluster, config);

  EXPECT_TRUE(stats.all_threads_finished);
  ASSERT_TRUE(stats.check.ok) << stats.check.ToString();
}

INSTANTIATE_TEST_SUITE_P(Flapping, FlappingSweep,
                         ::testing::Values(21u, 22u, 23u, 24u));

}  // namespace
}  // namespace paxoscp
