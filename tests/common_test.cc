// Unit tests for the common module: Status/Result, varint coding,
// deterministic RNG, histogram, ids, logging.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <vector>

#include "common/coding.h"
#include "common/histogram.h"
#include "common/inline_function.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "common/types.h"

namespace paxoscp {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Conflict("x").IsConflict());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_FALSE(Status::Aborted("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("missing row").ToString(),
            "NotFound: missing row");
  EXPECT_EQ(Status::Conflict().ToString(), "Conflict");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Conflict("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

// ---------------------------------------------------------------- Coding --

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed32(&buf, 0);
  PutFixed32(&buf, UINT32_MAX);
  std::string_view in = buf;
  uint32_t a = 0, b = 1, c = 2;
  ASSERT_TRUE(GetFixed32(&in, &a));
  ASSERT_TRUE(GetFixed32(&in, &b));
  ASSERT_TRUE(GetFixed32(&in, &c));
  EXPECT_EQ(a, 0xdeadbeefu);
  EXPECT_EQ(b, 0u);
  EXPECT_EQ(c, UINT32_MAX);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789abcdefULL);
  std::string_view in = buf;
  uint64_t v = 0;
  ASSERT_TRUE(GetFixed64(&in, &v));
  EXPECT_EQ(v, 0x0123456789abcdefULL);
}

TEST(CodingTest, VarintBoundaries) {
  const uint64_t cases[] = {0,       1,      127,        128,
                            16383,   16384,  UINT32_MAX, uint64_t{1} << 42,
                            UINT64_MAX};
  for (uint64_t expected : cases) {
    std::string buf;
    PutVarint64(&buf, expected);
    std::string_view in = buf;
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(&in, &got)) << expected;
    EXPECT_EQ(got, expected);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodingTest, VarintUnderflowFails) {
  std::string buf;
  PutVarint64(&buf, 1u << 20);
  buf.pop_back();  // truncate
  std::string_view in = buf;
  uint64_t v = 0;
  EXPECT_FALSE(GetVarint64(&in, &v));
}

TEST(CodingTest, Varint32RejectsOversized) {
  std::string buf;
  PutVarint64(&buf, uint64_t{UINT32_MAX} + 1);
  std::string_view in = buf;
  uint32_t v = 0;
  EXPECT_FALSE(GetVarint32(&in, &v));
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(300, 'x'));
  std::string_view in = buf;
  std::string_view a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c.size(), 300u);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, LengthPrefixedUnderflowFails) {
  std::string buf;
  PutVarint64(&buf, 10);
  buf += "short";
  std::string_view in = buf;
  std::string_view v;
  EXPECT_FALSE(GetLengthPrefixed(&in, &v));
}

TEST(CodingTest, ZigZagRoundTrip) {
  const int64_t cases[] = {0, -1, 1, -2, 2, INT64_MIN, INT64_MAX, -12345};
  for (int64_t expected : cases) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(expected)), expected);
    std::string buf;
    PutVarsint64(&buf, expected);
    std::string_view in = buf;
    int64_t got = 0;
    ASSERT_TRUE(GetVarsint64(&in, &got));
    EXPECT_EQ(got, expected);
  }
}

TEST(CodingTest, SmallNegativesEncodeCompactly) {
  std::string buf;
  PutVarsint64(&buf, -1);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(CodingTest, FingerprintDistinguishesAndRepeats) {
  EXPECT_EQ(Fingerprint64("abc"), Fingerprint64("abc"));
  EXPECT_NE(Fingerprint64("abc"), Fingerprint64("abd"));
  EXPECT_NE(Fingerprint64(""), Fingerprint64(std::string_view("\0", 1)));
}

TEST(CodingTest, EncodeVarint64ToMatchesPutVarint64) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{127}, uint64_t{128},
                     uint64_t{300}, uint64_t{1} << 40, UINT64_MAX}) {
    std::string expected;
    PutVarint64(&expected, v);
    char buf[kMaxVarint64Bytes];
    char* end = EncodeVarint64To(buf, v);
    EXPECT_EQ(std::string_view(buf, static_cast<size_t>(end - buf)),
              expected);
  }
}

TEST(CodingTest, FingerprinterIsChunkingInvariant) {
  const std::string data =
      "the digest must not depend on how the byte stream is sliced across "
      "Add calls, only on the bytes themselves: 0123456789abcdef";
  const uint64_t whole = Fingerprint64(data);
  for (size_t cut1 : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                      size_t{40}, data.size()}) {
    for (size_t cut2 : {cut1, cut1 + 3, data.size()}) {
      if (cut2 < cut1 || cut2 > data.size()) continue;
      Fingerprinter fp;
      fp.Add(std::string_view(data).substr(0, cut1));
      fp.Add(std::string_view(data).substr(cut1, cut2 - cut1));
      fp.Add(std::string_view(data).substr(cut2));
      EXPECT_EQ(fp.Finish(), whole) << "cuts at " << cut1 << "," << cut2;
    }
  }
}

TEST(CodingTest, FingerprinterTypedAddsMatchEncodedBytes) {
  // AddVarint64 / AddVarsint64 / AddFixed64 / AddLengthPrefixed must hash
  // exactly the bytes their Put* counterparts would append.
  std::string encoded;
  PutVarsint64(&encoded, -42);
  PutVarint64(&encoded, 1234567);
  PutFixed64(&encoded, 0xdeadbeefcafef00dULL);
  PutLengthPrefixed(&encoded, "length-prefixed-payload");
  PutFixed64(&encoded, 7);  // lands unaligned after the prefix above

  Fingerprinter fp;
  fp.AddVarsint64(-42);
  fp.AddVarint64(1234567);
  fp.AddFixed64(0xdeadbeefcafef00dULL);
  fp.AddLengthPrefixed("length-prefixed-payload");
  fp.AddFixed64(7);
  EXPECT_EQ(fp.Finish(), Fingerprint64(encoded));
}

// ---------------------------------------------------------------- Random --

TEST(RandomTest, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool any_diff = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    const int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, UniformCoversAllValues) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RandomTest, ExponentialHasRequestedMean) {
  Rng rng(23);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 2.5);
}

TEST(RandomTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng b = a.Fork();
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(ZipfianTest, StaysInRangeAndSkews) {
  Rng rng(3);
  ZipfianGenerator zipf(100, 0.99);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = zipf.Next(&rng);
    EXPECT_LT(v, 100u);
    if (v < 10) ++low;
  }
  // With theta=0.99 the first 10 of 100 items draw well over half the mass.
  EXPECT_GT(static_cast<double>(low) / n, 0.5);
}

TEST(ZipfianTest, SingleElementAlwaysZero) {
  Rng rng(3);
  ZipfianGenerator zipf(1, 0.99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Next(&rng), 0u);
}

// ------------------------------------------------------------- Histogram --

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0);
  EXPECT_EQ(h.Percentile(50), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_DOUBLE_EQ(h.Mean(), 1000);
  EXPECT_EQ(h.Percentile(50), 1000);
  EXPECT_EQ(h.Percentile(99), 1000);
}

TEST(HistogramTest, MeanAndExtremes) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i * 10);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_DOUBLE_EQ(h.Mean(), 505.0);
}

TEST(HistogramTest, PercentilesAreMonotone) {
  Histogram h;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) h.Record(rng.UniformRange(1, 1000000));
  double prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
  // Median of a uniform distribution is near the middle (log buckets are
  // coarse, allow 25% slack).
  EXPECT_NEAR(h.Percentile(50), 500000, 125000);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  a.Record(10);
  a.Record(20);
  b.Record(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 30);
  EXPECT_DOUBLE_EQ(a.Mean(), 20.0);
}

TEST(HistogramTest, StdDevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Record(42);
  EXPECT_NEAR(h.StdDev(), 0, 1e-9);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Record(5);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

namespace {

/// Reference implementation of the bucket lookup: the linear scan
/// BucketFor used before the binary search (bucket i covers
/// (limit(i-1), limit(i)], clamped to the last bucket).
int LinearBucketFor(int64_t value) {
  if (value <= 0) return 0;
  int i = 0;
  while (i < Histogram::kNumBuckets - 1 && Histogram::BucketLimit(i) < value) {
    ++i;
  }
  return i;
}

}  // namespace

TEST(HistogramTest, BinarySearchBucketMatchesLinearScan) {
  std::vector<int64_t> values = {0, std::numeric_limits<int64_t>::max()};
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    const int64_t limit = Histogram::BucketLimit(i);
    values.push_back(limit);
    if (limit > 0) values.push_back(limit - 1);
    if (limit < std::numeric_limits<int64_t>::max()) {
      values.push_back(limit + 1);
    }
  }
  // A pseudo-random sweep across the whole range on top of the edges.
  uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < 10000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(static_cast<int64_t>(x >> 1));  // non-negative
  }
  for (int64_t v : values) {
    EXPECT_EQ(Histogram::BucketFor(v), LinearBucketFor(v)) << "value " << v;
  }
}

TEST(HistogramTest, BucketLimitsAreNonDecreasingAndPadded) {
  for (int i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_GE(Histogram::BucketLimit(i), Histogram::BucketLimit(i - 1)) << i;
  }
  EXPECT_EQ(Histogram::BucketLimit(Histogram::kNumBuckets - 1),
            std::numeric_limits<int64_t>::max());
}

TEST(HistogramTest, NegativeRecordAssertsInDebugAndClampsInRelease) {
  Histogram h;
  // Debug builds assert (the sample is a caller bug); release builds
  // clamp the sample to 0 so every statistic stays sign-consistent.
  EXPECT_DEBUG_DEATH(h.Record(-1), "negative");
#ifdef NDEBUG
  ASSERT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Mean(), 0);
  EXPECT_EQ(h.Percentile(50), 0);
#endif
}

TEST(HistogramTest, AllNegativeHistogramStaysSignConsistent) {
#ifdef NDEBUG
  // The historical bug: min_ went negative while the buckets clamped at
  // 0, so Percentile() (bucket-based, clamped into [min, max]) and Mean()
  // (sum-based) disagreed in sign. With clamp-at-0 semantics every
  // statistic agrees.
  Histogram h;
  h.Record(-50);
  h.Record(-2);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Mean(), 0);
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_EQ(h.Percentile(99), 0);
  EXPECT_EQ(h.StdDev(), 0);
#endif
}

// ----------------------------------------------------------------- Types --

TEST(TypesTest, TxnIdPacksDcAndSeq) {
  const TxnId id = MakeTxnId(3, 77);
  EXPECT_EQ(TxnIdDc(id), 3);
  EXPECT_EQ(TxnIdSeq(id), 77u);
  EXPECT_EQ(TxnIdToString(id), "3.77");
}

TEST(TypesTest, TxnIdLargeSeq) {
  const uint64_t big = (uint64_t{1} << 47) + 5;
  const TxnId id = MakeTxnId(15, big);
  EXPECT_EQ(TxnIdDc(id), 15);
  EXPECT_EQ(TxnIdSeq(id), big);
}

// --------------------------------------------------------------- Logging --

TEST(LoggingTest, LevelGate) {
  const LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kWarn);
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
  SetLogLevel(LogLevel::kOff);
  EXPECT_FALSE(LogEnabled(LogLevel::kError));
  SetLogLevel(old);
}

// -------------------------------------------------------- InlineFunction --

TEST(InlineFunctionTest, EmptyAndAssignedStates) {
  InlineFunction<int()> f;
  EXPECT_FALSE(static_cast<bool>(f));
  f = [] { return 7; };
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(), 7);
  f = nullptr;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunctionTest, SmallCaptureStaysInline) {
  int counter = 0;
  InlineFunction<void()> f = [&counter] { ++counter; };
  f();
  f();
  EXPECT_EQ(counter, 2);
}

TEST(InlineFunctionTest, MoveTransfersOwnership) {
  auto owned = std::make_unique<int>(5);
  InlineFunction<int()> f = [p = std::move(owned)] { return *p; };
  InlineFunction<int()> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(g));
  EXPECT_EQ(g(), 5);
}

TEST(InlineFunctionTest, OversizedCaptureFallsBackToHeap) {
  struct Big {
    char bytes[128] = {};
  };
  Big big;
  big.bytes[100] = 42;
  InlineFunction<int()> f = [big] { return big.bytes[100]; };
  InlineFunction<int()> g = std::move(f);
  EXPECT_EQ(g(), 42);
}

TEST(InlineFunctionTest, ArgumentsAndReturnForwarded) {
  InlineFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
}

TEST(InlineFunctionTest, DestructorReleasesCapture) {
  auto shared = std::make_shared<int>(1);
  {
    InlineFunction<void()> f = [shared] {};
    EXPECT_EQ(shared.use_count(), 2);
  }
  EXPECT_EQ(shared.use_count(), 1);
}

}  // namespace
}  // namespace paxoscp
