// Adversarial Paxos safety tests: drive acceptors directly (no network)
// through hostile proposer interleavings and verify the one decided value
// per position is never contradicted — including the mixed-ballot corner
// where the paper's promotion trigger would misfire (docs/ARCHITECTURE.md,
// note D2).
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "kvstore/store.h"
#include "paxos/acceptor.h"
#include "paxos/value_selection.h"
#include "wal/log.h"

namespace paxoscp::paxos {
namespace {

constexpr int kD = 3;

struct Replicas {
  Replicas() {
    for (int i = 0; i < kD; ++i) {
      stores.push_back(std::make_unique<kvstore::MultiVersionStore>());
      logs.push_back(
          std::make_unique<wal::WriteAheadLog>(stores.back().get(), "g"));
      acceptors.push_back(
          std::make_unique<Acceptor>(stores.back().get(), logs.back().get()));
    }
  }

  /// Prepares at a subset of acceptors; returns the votes collected.
  std::vector<LastVote> Prepare(const Ballot& b,
                                std::vector<int> quorum) {
    std::vector<LastVote> votes;
    for (int i : quorum) {
      PrepareResult r = acceptors[i]->OnPrepare(1, b);
      if (r.promised) {
        votes.push_back(LastVote{i, r.vote_ballot, r.vote_value});
      }
    }
    return votes;
  }

  int Accept(const Ballot& b, const wal::LogEntry& v,
             std::vector<int> quorum) {
    int accepted = 0;
    for (int i : quorum) {
      if (acceptors[i]->OnAccept(1, b, v).accepted) ++accepted;
    }
    return accepted;
  }

  std::vector<std::unique_ptr<kvstore::MultiVersionStore>> stores;
  std::vector<std::unique_ptr<wal::WriteAheadLog>> logs;
  std::vector<std::unique_ptr<Acceptor>> acceptors;
};

wal::LogEntry Value(TxnId id) {
  wal::LogEntry e;
  e.winner_dc = TxnIdDc(id);
  wal::TxnRecord t;
  t.id = id;
  // += instead of `"w" + TxnIdToString(id)`: GCC 12 -O2 flags the
  // prepend-into-temporary form with a spurious -Wrestrict.
  std::string item = "w";
  item += TxnIdToString(id);
  t.writes.push_back({{"r", item}, "v"});
  e.txns.push_back(t);
  return e;
}

TEST(PaxosSafetyTest, LaterProposerMustAdoptChosenValue) {
  Replicas r;
  const wal::LogEntry chosen = Value(MakeTxnId(0, 1));
  // Proposer A: ballot 1, full quorum, value chosen at {0,1}.
  ASSERT_EQ(r.Prepare(Ballot{1, 0}, {0, 1, 2}).size(), 3u);
  ASSERT_EQ(r.Accept(Ballot{1, 0}, chosen, {0, 1}), 2);  // majority

  // Proposer B: higher ballot, any majority quorum must discover `chosen`.
  for (std::vector<int> quorum : {std::vector<int>{0, 1},
                                  std::vector<int>{1, 2},
                                  std::vector<int>{0, 2}}) {
    Replicas fresh;  // re-stage per quorum to keep state identical
    ASSERT_EQ(fresh.Prepare(Ballot{1, 0}, {0, 1, 2}).size(), 3u);
    ASSERT_EQ(fresh.Accept(Ballot{1, 0}, chosen, {0, 1}), 2);
    std::vector<LastVote> votes = fresh.Prepare(Ballot{2, 1}, quorum);
    std::optional<wal::LogEntry> adopted = FindWinningValue(votes);
    if (quorum == std::vector<int>{1, 2} ||
        quorum == std::vector<int>{0, 1} ||
        quorum == std::vector<int>{0, 2}) {
      // Every majority intersects the accept-majority {0,1}.
      ASSERT_TRUE(adopted.has_value());
      EXPECT_EQ(adopted->Fingerprint(), chosen.Fingerprint());
    }
  }
}

TEST(PaxosSafetyTest, StaleAcceptsRejectedAfterNewPromise) {
  Replicas r;
  const wal::LogEntry v1 = Value(MakeTxnId(0, 1));
  // A prepares ballot 1 everywhere but is slow to send accepts.
  ASSERT_EQ(r.Prepare(Ballot{1, 0}, {0, 1, 2}).size(), 3u);
  // B races past with ballot 2.
  ASSERT_EQ(r.Prepare(Ballot{2, 1}, {0, 1, 2}).size(), 3u);
  // A's stale accepts must be rejected by every acceptor.
  EXPECT_EQ(r.Accept(Ballot{1, 0}, v1, {0, 1, 2}), 0);
}

TEST(PaxosSafetyTest, MixedBallotVotesDoNotImplyDecision) {
  // Construct the adversarial state from docs/ARCHITECTURE.md note D2:
  // value v holds a
  // per-value "majority" of last votes across different ballots, yet a
  // later proposer with quorum {acceptor0, acceptor2} legally decides w.
  Replicas r;
  const wal::LogEntry v = Value(MakeTxnId(0, 1));
  const wal::LogEntry w = Value(MakeTxnId(1, 1));

  // P1 (ballot 1) reaches only acceptor 0 with v.
  ASSERT_EQ(r.Prepare(Ballot{1, 0}, {0, 1, 2}).size(), 3u);
  ASSERT_EQ(r.Accept(Ballot{1, 0}, v, {0}), 1);
  // P2 (ballot 2) prepared at {1,2} before seeing any vote; proposes w but
  // only acceptor 2 records it.
  ASSERT_EQ(r.Prepare(Ballot{2, 1}, {1, 2}).size(), 2u);
  ASSERT_EQ(r.Accept(Ballot{2, 1}, w, {2}), 1);
  // P3 (ballot 3) prepares at {0,1}: max vote is v@1 -> must propose v;
  // acceptor 1 votes v@3.
  std::vector<LastVote> p3_votes = r.Prepare(Ballot{3, 2}, {0, 1});
  std::optional<wal::LogEntry> p3_value = FindWinningValue(p3_votes);
  ASSERT_TRUE(p3_value.has_value());
  ASSERT_EQ(p3_value->Fingerprint(), v.Fingerprint());
  ASSERT_EQ(r.Accept(Ballot{3, 2}, *p3_value, {1}), 1);

  // Last votes now: acc0 = v@1, acc1 = v@3, acc2 = w@2. Per-value counting
  // gives v a 2/3 "majority" across mixed ballots — the paper's promotion
  // trigger would declare v the winner.
  std::vector<LastVote> all_votes = {
      {0, Ballot{1, 0}, v}, {1, Ballot{3, 2}, v}, {2, Ballot{2, 1}, w}};
  SelectionDecision d =
      EnhancedFindWinningValue(all_votes, 3, 3, Value(MakeTxnId(2, 9)), {});
  EXPECT_NE(d.kind, SelectionKind::kLost)
      << "mixed-ballot votes must not be treated as a decision";

  // And indeed w can still win: P4 (ballot 4) with quorum {0, 2} adopts the
  // max-ballot vote... which is v@1 vs w@2 -> w! It decides w at majority.
  std::vector<LastVote> p4_votes = r.Prepare(Ballot{4, 0}, {0, 2});
  std::optional<wal::LogEntry> p4_value = FindWinningValue(p4_votes);
  ASSERT_TRUE(p4_value.has_value());
  EXPECT_EQ(p4_value->Fingerprint(), w.Fingerprint());
  EXPECT_EQ(r.Accept(Ballot{4, 0}, *p4_value, {0, 2}), 2);  // w chosen!
}

TEST(PaxosSafetyTest, FastPathAndRegularProposerCannotBothWin) {
  Replicas r;
  const wal::LogEntry fast = Value(MakeTxnId(0, 1));
  const wal::LogEntry slow = Value(MakeTxnId(1, 1));

  // Fast-path client lands ballot-0 accepts on a minority only.
  ASSERT_EQ(r.Accept(Ballot{0, 0}, fast, {0}), 1);
  // Regular proposer prepares a majority {1,2} (sees no votes), proposes
  // its own value, and wins.
  std::vector<LastVote> votes = r.Prepare(Ballot{1, 1}, {1, 2});
  EXPECT_FALSE(FindWinningValue(votes).has_value());
  ASSERT_EQ(r.Accept(Ballot{1, 1}, slow, {1, 2}), 2);  // slow chosen

  // The fast client's remaining accepts must now be rejected.
  EXPECT_EQ(r.Accept(Ballot{0, 0}, fast, {1, 2}), 0);

  // Any later proposer adopts `slow`.
  std::vector<LastVote> later = r.Prepare(Ballot{5, 2}, {0, 1, 2});
  std::optional<wal::LogEntry> adopted = FindWinningValue(later);
  ASSERT_TRUE(adopted.has_value());
  EXPECT_EQ(adopted->Fingerprint(), slow.Fingerprint());
}

TEST(PaxosSafetyTest, DuelingProposersConvergeToOneValue) {
  // Two proposers alternate with increasing ballots; whoever first lands a
  // majority accept fixes the value forever after.
  Replicas r;
  const wal::LogEntry a = Value(MakeTxnId(0, 1));
  const wal::LogEntry b = Value(MakeTxnId(1, 1));

  ASSERT_EQ(r.Prepare(Ballot{1, 0}, {0, 1}).size(), 2u);
  ASSERT_EQ(r.Prepare(Ballot{2, 1}, {1, 2}).size(), 2u);
  // A's accept at ballot 1: acceptor 1 already promised 2 -> only 0 votes.
  EXPECT_EQ(r.Accept(Ballot{1, 0}, a, {0, 1}), 1);
  // B's accept at ballot 2 reaches {1,2}: majority, b chosen.
  EXPECT_EQ(r.Accept(Ballot{2, 1}, b, {1, 2}), 2);

  // A retries with ballot 3 over {0,1}: must adopt b (max ballot vote).
  std::vector<LastVote> votes = r.Prepare(Ballot{3, 0}, {0, 1});
  std::optional<wal::LogEntry> adopted = FindWinningValue(votes);
  ASSERT_TRUE(adopted.has_value());
  EXPECT_EQ(adopted->Fingerprint(), b.Fingerprint());
  EXPECT_EQ(r.Accept(Ballot{3, 0}, *adopted, {0, 1}), 2);

  // Both "chosen" events carry the same value b — no contradiction.
}

TEST(PaxosSafetyTest, ApplyPropagatesSingleDecisionToAllLogs) {
  Replicas r;
  const wal::LogEntry chosen = Value(MakeTxnId(0, 1));
  ASSERT_EQ(r.Prepare(Ballot{1, 0}, {0, 1, 2}).size(), 3u);
  ASSERT_EQ(r.Accept(Ballot{1, 0}, chosen, {0, 1, 2}), 3);
  for (int i = 0; i < kD; ++i) {
    ASSERT_TRUE(r.acceptors[i]->OnApply(1, Ballot{1, 0}, chosen).ok());
  }
  for (int i = 0; i < kD; ++i) {
    Result<wal::LogEntry> entry = r.logs[i]->GetEntry(1);
    ASSERT_TRUE(entry.ok());
    EXPECT_EQ(entry->Fingerprint(), chosen.Fingerprint());
  }
}

}  // namespace
}  // namespace paxoscp::paxos
