// Ordered containers iterate deterministically; unordered containers are
// fine for point lookups (find/count/insert/erase) — only *iteration*
// order is the replay hazard.
#include <map>
#include <string>
#include <unordered_map>

namespace paxoscp {

struct Index {
  std::map<std::string, int> ordered_;
  std::unordered_map<std::string, int> lookup_;

  int Sum() const {
    int total = 0;
    for (const auto& [key, value] : ordered_) total += value;
    return total;
  }

  bool Contains(const std::string& key) const {
    return lookup_.find(key) != lookup_.end();
  }

  void Put(const std::string& key, int value) { lookup_[key] = value; }
};

}  // namespace paxoscp
