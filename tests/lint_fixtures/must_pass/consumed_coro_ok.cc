// Consumed Coro<T> results — assignment (including multi-line), return
// position, condition position — and bare awaits of Coro<void>, which
// carry no value to drop.
namespace paxoscp {

template <typename T>
struct Coro {
  T value;
};

template <>
struct Coro<void> {};

struct Status {
  bool ok;
};

struct Engine {
  Coro<Status> ProposeDecide(int group);
  Coro<void> AwaitApplied(int group);
};

struct Driver {
  Engine* engine;

  Coro<Status> Run() {
    Status direct = co_await engine->ProposeDecide(1);
    Status wrapped =
        co_await engine->ProposeDecide(2);
    co_await engine->AwaitApplied(3);
    if (direct.ok && wrapped.ok) co_return direct;
    co_return co_await engine->ProposeDecide(4);
  }
};

}  // namespace paxoscp
