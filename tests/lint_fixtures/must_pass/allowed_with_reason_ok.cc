// A finding suppressed by a LINT:allow that carries a justification is
// clean — on the same line or on the line directly above.
#include <chrono>

namespace paxoscp {

long BenchFence() {
  // LINT:allow(wall-clock): host-side bench fence only; value never
  // reaches simulated state, so replay is unaffected
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long BenchFenceInline() {
  return std::chrono::steady_clock::now()  // LINT:allow(wall-clock): bench-only fence, result discarded before any simulated state
      .time_since_epoch()
      .count();
}

}  // namespace paxoscp
