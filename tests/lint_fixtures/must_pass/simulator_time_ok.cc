// Sanctioned time: virtual microseconds from the simulator, virtual
// delays through the event queue. Identifiers containing "time"/"clock"
// as substrings must not trip the wall-clock rule.
namespace paxoscp {

struct Simulator {
  long Now() const { return now_; }
  long now_ = 0;
};

struct Slot {
  long time = 0;
};

long Deadline(const Simulator& sim, long delay) { return sim.Now() + delay; }

long SlotTime(const Slot& slot) { return slot.time; }

}  // namespace paxoscp
