// Sanctioned randomness: the explicitly seeded common/random Rng,
// forked per consumer. Replays bit-identically from the seed.
#include <cstdint>

namespace paxoscp {

class Rng {
 public:
  explicit Rng(uint64_t seed);
  uint64_t Uniform(uint64_t n);
  Rng Fork();
};

uint64_t PickBackoff(Rng* rng, uint64_t limit) {
  return rng->Uniform(limit);
}

}  // namespace paxoscp
