// Sanctioned shapes next to the pointer-keyed rule's hazard: pointers as
// VALUES are fine (iteration order comes from the key), value keys are
// fine, an unordered map keyed by pointer is fine for point lookups
// (iterating it is unordered-iter's business), and a pointer key under a
// justified LINT:allow is accepted.
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>

namespace paxoscp {

struct Slot {
  int value = 0;
};

struct Table {
  std::map<uint64_t, Slot*> by_id_;         // pointer value, stable key
  std::set<std::string> names_;             // value key
  std::unordered_map<Slot*, int> lookup_;   // point lookups only

  // LINT:allow(pointer-keyed): ordering is never observed — the map is
  // drained via find/erase by exact handle, one element at a time.
  std::map<Slot*, int> handles_;

  int Find(Slot* s) const {
    auto it = lookup_.find(s);
    return it == lookup_.end() ? -1 : it->second;
  }

  Slot* ById(uint64_t id) const {
    auto it = by_id_.find(id);
    return it == by_id_.end() ? nullptr : it->second;
  }
};

}  // namespace paxoscp
