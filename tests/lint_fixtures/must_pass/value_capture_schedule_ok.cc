// Sanctioned event-queue captures: by value, by shared_ptr, by raw
// pointer whose lifetime the state object itself guarantees, and init
// captures that move ownership in. `this` is a pointer copy, not a
// reference capture.
#include <functional>
#include <memory>
#include <utility>

namespace paxoscp {

struct Simulator {
  template <typename F>
  void ScheduleAfter(long delay, F fn);
};

struct State : std::enable_shared_from_this<State> {
  Simulator* sim;
  int value = 0;

  void Deliver(std::function<void(int)> cb) {
    auto keep = shared_from_this();
    sim->ScheduleAfter(0, [keep, cb = std::move(cb)] { cb(keep->value); });
  }

  void Tick() {
    sim->ScheduleAfter(1, [this] { ++value; });
  }
};

}  // namespace paxoscp
