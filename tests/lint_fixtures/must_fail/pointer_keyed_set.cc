// EXPECT: pointer-keyed
// Same hazard as the map fixture, through std::set and a const pointer:
// the element order IS the address order.
#include <set>

namespace paxoscp {

struct Session {
  int id = 0;
};

struct Registry {
  std::set<const Session*> live_;

  const Session* First() const {
    return live_.empty() ? nullptr : *live_.begin();
  }
};

}  // namespace paxoscp
