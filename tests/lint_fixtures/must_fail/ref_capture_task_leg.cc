// EXPECT: ref-capture-schedule
// Detached coroutine legs (Task-returning functions) are spawn points:
// a reference capture in a callback passed to one outlives the caller.
#include <functional>

namespace paxoscp {

struct Task {};

Task DriveLeg(std::function<void()> on_done);

void Launch() {
  bool finished = false;
  DriveLeg([&finished] { finished = true; });
}

}  // namespace paxoscp
