// EXPECT: unseeded-random
// rand()/srand() draw from hidden global state; nothing records the seed.
#include <cstdlib>

namespace paxoscp {

int Jitter() { return rand() % 100; }

}  // namespace paxoscp
