// EXPECT: wall-clock
// Wall-clock reads differ run to run; all time must come from
// sim::Simulator::Now() so seeded replay stays bit-identical.
#include <chrono>

namespace paxoscp {

long NowMicros() {
  auto t = std::chrono::system_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             t.time_since_epoch())
      .count();
}

long MonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace paxoscp
