// EXPECT: discarded-coro
// A bare `co_await Fn(...);` throws away the T in Coro<T>. Results in
// this codebase carry statuses and commit decisions; dropping one hid a
// real decided-but-unapplied bug once (PR 3).
namespace paxoscp {

template <typename T>
struct Coro {
  T value;
};

struct Status {
  bool ok;
};

struct Engine {
  Coro<Status> PropagateDecide(int group);
};

struct Driver {
  Engine* engine;

  Coro<Status> Run() {
    co_await engine->PropagateDecide(7);
    co_return Status{true};
  }
};

}  // namespace paxoscp
