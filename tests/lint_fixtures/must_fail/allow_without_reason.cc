// EXPECT: annotation-error
// A LINT:allow with no justification is itself an error: suppressions
// without a recorded "why" are how invariants rot.
#include <chrono>

namespace paxoscp {

long Sample() {
  // LINT:allow(wall-clock)
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace paxoscp
