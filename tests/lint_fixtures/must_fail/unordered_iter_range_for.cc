// EXPECT: unordered-iter
// Range-for over an unordered_map visits elements in hash-layout order,
// which differs across toolchains/ASLR runs — replay-order hazard.
#include <string>
#include <unordered_map>

namespace paxoscp {

struct PendingSet {
  std::unordered_map<std::string, int> pending_;

  int Sum() const {
    int total = 0;
    for (const auto& [key, value] : pending_) total += value;
    return total;
  }
};

}  // namespace paxoscp
