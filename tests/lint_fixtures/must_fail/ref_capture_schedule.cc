// EXPECT: ref-capture-schedule
// A [&] lambda handed to the event queue runs after the enclosing frame
// may be gone — the classic coroutine-era dangling capture.
namespace paxoscp {

struct Simulator {
  template <typename F>
  void ScheduleAfter(long delay, F fn);
};

void Retry(Simulator* sim) {
  int attempts = 0;
  sim->ScheduleAfter(10, [&] { ++attempts; });
}

void RetryNamed(Simulator* sim) {
  int attempts = 0;
  sim->ScheduleAfter(10, [&attempts]() mutable { ++attempts; });
}

}  // namespace paxoscp
