// EXPECT: pointer-keyed
// A std::map keyed by a raw pointer compares addresses: iteration visits
// waiters in allocation order, which tracks heap layout and ASLR rather
// than anything in the seeded state. Replays across toolchains diverge
// the first time the visit order matters.
#include <map>

namespace paxoscp {

struct Waiter {
  int priority = 0;
};

struct WaitQueue {
  std::map<Waiter*, int> deadlines_;

  int Next() const {
    int best = -1;
    for (const auto& [waiter, deadline] : deadlines_) {
      if (best < 0 || deadline < best) best = deadline;
    }
    return best;
  }
};

}  // namespace paxoscp
