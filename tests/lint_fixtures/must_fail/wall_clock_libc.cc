// EXPECT: wall-clock
// The libc spellings of wall-clock time are banned the same as chrono's.
#include <ctime>

namespace paxoscp {

long EpochSeconds() { return static_cast<long>(time(nullptr)); }

}  // namespace paxoscp
