// EXPECT: unseeded-random
// std::random_device / mt19937 outside common/random break replay: the
// seed is not part of the experiment's recorded configuration.
#include <random>

namespace paxoscp {

int RollDice() {
  std::random_device rd;
  std::mt19937 gen(rd());
  return static_cast<int>(gen() % 6) + 1;
}

}  // namespace paxoscp
