// EXPECT: unordered-iter
// Explicit begin() iteration over an unordered_set is the same hazard as
// a range-for: the visit order is not part of the seeded state.
#include <unordered_set>

namespace paxoscp {

int FirstElement(const std::unordered_set<int>& s);

int Demo() {
  std::unordered_set<int> live_ids;
  live_ids.insert(7);
  auto it = live_ids.begin();
  return it == live_ids.end() ? -1 : *it;
}

}  // namespace paxoscp
