// EXPECT: annotation-error
// An allow that no longer suppresses anything must be deleted, not left
// to silently bless a future regression.
namespace paxoscp {

int PlainFunction() {
  // LINT:allow(wall-clock): this comment outlived the code it excused
  return 42;
}

}  // namespace paxoscp
