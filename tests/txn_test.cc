// Transaction-tier tests: handle read semantics (A1/A2), conflict helpers,
// promotion/abort decisions, and forced protocol interleavings (including
// the combination scenario that is rare under realistic timing). All
// client access goes through the Session/Txn handle API (txn/txn.h).
#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/cluster.h"
#include "sim/coro.h"
#include "txn/client.h"
#include "txn/transaction.h"
#include "txn/txn.h"

namespace paxoscp::txn {
namespace {

using core::Checker;
using core::Cluster;
using core::ClusterConfig;

constexpr char kGroup[] = "g";
constexpr char kRow[] = "r";

ClusterConfig TestConfig(const std::string& code, uint64_t seed = 3) {
  ClusterConfig config = *ClusterConfig::FromCode(code);
  config.seed = seed;
  return config;
}

// ------------------------------------------------------ conflict helpers

wal::TxnRecord Record(TxnId id, std::vector<std::string> reads,
                      std::vector<std::string> writes) {
  wal::TxnRecord t;
  t.id = id;
  for (auto& attr : reads) t.reads.push_back({{kRow, attr}, 0, 0});
  for (auto& attr : writes) t.writes.push_back({{kRow, attr}, "v"});
  return t;
}

TEST(ConflictTest, ReadWriteIntersectionDetected) {
  wal::LogEntry winners;
  winners.txns.push_back(Record(MakeTxnId(1, 1), {"q"}, {"a", "b"}));
  EXPECT_TRUE(PromotionConflicts(Record(MakeTxnId(2, 1), {"b"}, {}), winners));
  EXPECT_FALSE(
      PromotionConflicts(Record(MakeTxnId(2, 2), {"c"}, {"a"}), winners));
  EXPECT_FALSE(PromotionConflicts(Record(MakeTxnId(2, 3), {}, {}), winners));
}

TEST(ConflictTest, ConflictingItemsListsExactOverlap) {
  wal::LogEntry winners;
  winners.txns.push_back(Record(MakeTxnId(1, 1), {}, {"a", "b"}));
  winners.txns.push_back(Record(MakeTxnId(1, 2), {}, {"c"}));
  auto items = ConflictingItems(
      Record(MakeTxnId(2, 1), {"a", "c", "z"}, {}), winners);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].attribute, "a");
  EXPECT_EQ(items[1].attribute, "c");
}

TEST(ActiveTxnTest, ToRecordFreezesState) {
  ActiveTxn txn;
  txn.group = kGroup;
  txn.id = MakeTxnId(1, 5);
  txn.read_pos = 9;
  txn.reads.push_back({{kRow, "a"}, MakeTxnId(2, 1), 7});
  txn.writes[{kRow, "b"}] = "v1";
  txn.writes[{kRow, "b"}] = "v2";  // last write wins
  txn.writes[{kRow, "c"}] = "v3";

  wal::TxnRecord record = txn.ToRecord(1);
  EXPECT_EQ(record.id, MakeTxnId(1, 5));
  EXPECT_EQ(record.origin_dc, 1);
  EXPECT_EQ(record.read_pos, 9u);
  ASSERT_EQ(record.writes.size(), 2u);
  EXPECT_EQ(record.writes[0].value, "v2");
}

// --------------------------------------------------- handle read semantics

struct ReadProbe {
  Status begin = Status::Internal("unset");
  std::vector<Result<std::string>> values;
  size_t read_set_size = 0;
  CommitResult commit;
};

sim::Task ProbeReads(Session* session,
                     std::vector<std::pair<std::string, std::string>> script,
                     ReadProbe* out) {
  // script entries: ("read", attr) or ("write", attr) — writes use value
  // "W:<attr>".
  Txn txn = co_await session->Begin(kGroup);
  out->begin = txn.begin_status();
  if (!txn.active()) co_return;
  for (auto& [op, attr] : script) {
    if (op == "read") {
      out->values.push_back(co_await txn.Read(kRow, attr));
    } else {
      (void)txn.Write(kRow, attr, "W:" + attr);
    }
  }
  out->read_set_size = txn.read_set_size();
  out->commit = co_await txn.Commit();
}

TEST(HandleSemanticsTest, ReadYourOwnWrites_A1) {
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "old"}}).ok());
  Session session = cluster.CreateSession(0);
  ReadProbe probe;
  ProbeReads(&session, {{"read", "a"}, {"write", "a"}, {"read", "a"}},
             &probe);
  cluster.RunToCompletion();
  ASSERT_TRUE(probe.begin.ok());
  ASSERT_EQ(probe.values.size(), 2u);
  EXPECT_EQ(*probe.values[0], "old");    // snapshot before the write
  EXPECT_EQ(*probe.values[1], "W:a");    // (A1) own write visible
  EXPECT_TRUE(probe.commit.committed);
}

TEST(HandleSemanticsTest, OwnWriteReadsDoNotEnterReadSet) {
  // A read satisfied from the write buffer is not a snapshot read and must
  // not create artificial conflicts.
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "x"}}).ok());
  Session session = cluster.CreateSession(0);
  ReadProbe probe;
  ProbeReads(&session, {{"write", "a"}, {"read", "a"}}, &probe);
  cluster.RunToCompletion();
  EXPECT_TRUE(probe.commit.committed);
  EXPECT_EQ(probe.read_set_size, 0u);
  // The committed record must contain no reads at all.
  auto entries = cluster.service(0)->GroupLog(kGroup)->AllEntries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries.begin()->second.txns[0].reads.empty());
}

TEST(HandleSemanticsTest, RepeatedReadsReturnSameSnapshot_A2) {
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "v0"}}).ok());
  Session session = cluster.CreateSession(0);
  ReadProbe probe;
  ProbeReads(&session, {{"read", "a"}, {"read", "a"}, {"read", "a"}},
             &probe);
  cluster.RunToCompletion();
  for (auto& value : probe.values) {
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(*value, "v0");
  }
  // Only one snapshot read was recorded (and the txn is read-only).
  EXPECT_EQ(probe.read_set_size, 1u);
  EXPECT_TRUE(probe.commit.read_only);
}

TEST(HandleSemanticsTest, MissingItemReadsAsEmpty) {
  Cluster cluster(TestConfig("VV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "x"}}).ok());
  Session session = cluster.CreateSession(0);
  ReadProbe probe;
  ProbeReads(&session, {{"read", "never_written"}}, &probe);
  cluster.RunToCompletion();
  ASSERT_TRUE(probe.values[0].ok());
  EXPECT_EQ(*probe.values[0], "");
}

sim::Task BeginTwice(Session* session, Status* first, Status* second) {
  Txn one = co_await session->Begin(kGroup);
  *first = one.begin_status();
  Txn two = co_await session->Begin(kGroup);
  *second = two.begin_status();
  (void)co_await one.Commit();
}

TEST(HandleSemanticsTest, OneActiveTxnPerGroup) {
  Cluster cluster(TestConfig("VV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "x"}}).ok());
  Session session = cluster.CreateSession(0);
  Status first = Status::Internal("unset"), second = first;
  BeginTwice(&session, &first, &second);
  cluster.RunToCompletion();
  EXPECT_TRUE(first.ok());
  EXPECT_EQ(second.code(), Status::Code::kFailedPrecondition);
}

TEST(HandleSemanticsTest, AbortDiscardsBufferedState) {
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "x"}}).ok());
  Session session = cluster.CreateSession(0);
  ReadProbe probe;
  ProbeReads(&session, {{"write", "a"}}, &probe);
  cluster.RunToCompletion();
  ASSERT_TRUE(probe.commit.committed);

  // Explicit abort: begin, write, abort — nothing reaches the log.
  struct {
    sim::Task operator()(Session* s) {
      Txn txn = co_await s->Begin(kGroup);
      (void)txn.Write(kRow, "a", "discarded");
      txn.Abort();
    }
  } run_abort;
  run_abort(&session);
  cluster.RunToCompletion();
  EXPECT_EQ(cluster.service(0)->GroupLog(kGroup)->MaxDecided(), 1u);
  EXPECT_FALSE(session.client()->HasActiveTxn(kGroup));
}

// ----------------------------------------------- forced interleavings

sim::Task WriteOnlyTxn(Session* session, std::string attr,
                       CommitResult* out) {
  Txn txn = co_await session->Begin(kGroup);
  if (!txn.active()) {
    out->status = txn.begin_status();
    co_return;
  }
  (void)txn.Write(kRow, attr, "W:" + attr);
  *out = co_await txn.Commit();
}

TEST(InterleavingTest, SimultaneousWriteOnlyTxnsCombineIntoOnePosition) {
  // Two write-only transactions (no read latency variance) start their
  // commit protocols at exactly the same instant, with the leader fast
  // path disabled so both run full prepare/accept rounds. Their prepare
  // phases interleave; the combination window admits both transactions
  // into a single log entry — the Paxos-CP "Combination" enhancement.
  ClusterConfig config = TestConfig("VVV", 21);
  Cluster cluster(config);
  ASSERT_TRUE(
      cluster.LoadInitialRow(kGroup, kRow, {{"a", "0"}, {"b", "0"}}).ok());
  ClientOptions options;
  options.protocol = Protocol::kPaxosCP;
  options.leader_optimization = false;
  Session s1 = cluster.CreateSession(0, options);
  Session s2 = cluster.CreateSession(1, options);

  CommitResult r1, r2;
  WriteOnlyTxn(&s1, "a", &r1);
  WriteOnlyTxn(&s2, "b", &r2);
  cluster.RunToCompletion();

  ASSERT_TRUE(r1.committed) << r1.status.ToString();
  ASSERT_TRUE(r2.committed) << r2.status.ToString();

  Checker checker(&cluster);
  std::map<LogPos, wal::LogEntry> log;
  core::CheckReport replication = checker.CheckReplication(kGroup, &log);
  ASSERT_TRUE(replication.ok) << replication.ToString();
  core::CheckReport full = checker.CheckAll(kGroup, {});
  EXPECT_TRUE(full.ok) << full.ToString();

  // Both committed; whether they shared a position (combination) or used
  // two (promotion) depends on message interleaving — both are legal. With
  // this seed the protocols interleave tightly; assert the system made
  // progress within two positions either way.
  EXPECT_LE(log.rbegin()->first, 2u);
  if (log.size() == 1) {
    EXPECT_EQ(log.begin()->second.txns.size(), 2u);  // combined entry
  }
}

TEST(InterleavingTest, ManySimultaneousClientsAllCommitViaCp) {
  ClusterConfig config = TestConfig("VVVOC", 5);
  Cluster cluster(config);
  kvstore::AttributeMap row;
  for (int i = 0; i < 8; ++i) row["a" + std::to_string(i)] = "0";
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, row).ok());
  ClientOptions options;
  options.protocol = Protocol::kPaxosCP;
  options.leader_optimization = false;

  std::vector<Session> sessions;
  sessions.reserve(8);
  std::vector<CommitResult> results(8);
  for (int i = 0; i < 8; ++i) {
    sessions.push_back(cluster.CreateSession(i % 5, options));
    WriteOnlyTxn(&sessions[i], "a" + std::to_string(i), &results[i]);
  }
  cluster.RunToCompletion();

  int committed = 0;
  for (auto& r : results) committed += r.committed ? 1 : 0;
  // All transactions write disjoint attributes and read nothing: under CP
  // none may abort with a conflict (only Unavailable would excuse a miss).
  for (auto& r : results) {
    EXPECT_FALSE(r.status.IsAborted()) << r.status.ToString();
  }
  EXPECT_EQ(committed, 8);

  Checker checker(&cluster);
  core::CheckReport report = checker.CheckAll(kGroup, {});
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(InterleavingTest, ManySimultaneousClientsBasicCommitsExactlyOnePerPos) {
  ClusterConfig config = TestConfig("VVV", 6);
  Cluster cluster(config);
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "0"}}).ok());
  ClientOptions options;
  options.protocol = Protocol::kBasicPaxos;
  options.leader_optimization = false;

  std::vector<Session> sessions;
  sessions.reserve(6);
  std::vector<CommitResult> results(6);
  for (int i = 0; i < 6; ++i) {
    sessions.push_back(cluster.CreateSession(i % 3, options));
    WriteOnlyTxn(&sessions[i], "a", &results[i]);
  }
  cluster.RunToCompletion();

  // All six competed for position 1; exactly one wins under basic Paxos.
  int committed = 0;
  for (auto& r : results) committed += r.committed ? 1 : 0;
  EXPECT_EQ(committed, 1);
  EXPECT_EQ(cluster.service(0)->GroupLog(kGroup)->MaxDecided(), 1u);

  Checker checker(&cluster);
  EXPECT_TRUE(checker.CheckAll(kGroup, {}).ok);
}

TEST(InterleavingTest, PromotionCapZeroBehavesLikeBasicPlusCombination) {
  ClusterConfig config = TestConfig("VVV", 8);
  Cluster cluster(config);
  ASSERT_TRUE(
      cluster.LoadInitialRow(kGroup, kRow, {{"a", "0"}, {"b", "0"}}).ok());
  ClientOptions options;
  options.protocol = Protocol::kPaxosCP;
  options.promotion_cap = 0;

  Session s1 = cluster.CreateSession(0, options);
  Session s2 = cluster.CreateSession(1, options);
  CommitResult r1, r2;
  WriteOnlyTxn(&s1, "a", &r1);
  WriteOnlyTxn(&s2, "b", &r2);
  cluster.RunToCompletion();
  // Without promotion, a loser that was not combined must abort.
  const int committed = (r1.committed ? 1 : 0) + (r2.committed ? 1 : 0);
  EXPECT_GE(committed, 1);
  for (auto& r : {r1, r2}) {
    if (!r.committed) {
      EXPECT_TRUE(r.status.IsAborted());
    }
    EXPECT_EQ(r.promotions, 0);
  }
}

TEST(InterleavingTest, MultipleGroupsAreIndependent) {
  Cluster cluster(TestConfig("VVV", 9));
  ASSERT_TRUE(cluster.LoadInitialRow("g1", kRow, {{"a", "0"}}).ok());
  ASSERT_TRUE(cluster.LoadInitialRow("g2", kRow, {{"a", "0"}}).ok());
  Session session = cluster.CreateSession(0);

  struct {
    sim::Task operator()(Session* s, CommitResult* o1, CommitResult* o2) {
      // One session may hold concurrent transactions on two groups.
      Txn t1 = co_await s->Begin("g1");
      Txn t2 = co_await s->Begin("g2");
      (void)t1.Write(kRow, "a", "1");
      (void)t2.Write(kRow, "a", "2");
      *o1 = co_await t1.Commit();
      *o2 = co_await t2.Commit();
    }
  } run;
  CommitResult r1, r2;
  run(&session, &r1, &r2);
  cluster.RunToCompletion();
  EXPECT_TRUE(r1.committed);
  EXPECT_TRUE(r2.committed);
  EXPECT_EQ(cluster.service(0)->GroupLog("g1")->MaxDecided(), 1u);
  EXPECT_EQ(cluster.service(0)->GroupLog("g2")->MaxDecided(), 1u);
}

}  // namespace
}  // namespace paxoscp::txn
