// Transaction-tier tests: client read semantics (A1/A2), conflict helpers,
// promotion/abort decisions, and forced protocol interleavings (including
// the combination scenario that is rare under realistic timing).
#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/cluster.h"
#include "sim/coro.h"
#include "txn/client.h"
#include "txn/transaction.h"

namespace paxoscp::txn {
namespace {

using core::Checker;
using core::Cluster;
using core::ClusterConfig;

constexpr char kGroup[] = "g";
constexpr char kRow[] = "r";

ClusterConfig TestConfig(const std::string& code, uint64_t seed = 3) {
  ClusterConfig config = *ClusterConfig::FromCode(code);
  config.seed = seed;
  return config;
}

// ------------------------------------------------------ conflict helpers

wal::TxnRecord Record(TxnId id, std::vector<std::string> reads,
                      std::vector<std::string> writes) {
  wal::TxnRecord t;
  t.id = id;
  for (auto& attr : reads) t.reads.push_back({{kRow, attr}, 0, 0});
  for (auto& attr : writes) t.writes.push_back({{kRow, attr}, "v"});
  return t;
}

TEST(ConflictTest, ReadWriteIntersectionDetected) {
  wal::LogEntry winners;
  winners.txns.push_back(Record(MakeTxnId(1, 1), {"q"}, {"a", "b"}));
  EXPECT_TRUE(PromotionConflicts(Record(MakeTxnId(2, 1), {"b"}, {}), winners));
  EXPECT_FALSE(
      PromotionConflicts(Record(MakeTxnId(2, 2), {"c"}, {"a"}), winners));
  EXPECT_FALSE(PromotionConflicts(Record(MakeTxnId(2, 3), {}, {}), winners));
}

TEST(ConflictTest, ConflictingItemsListsExactOverlap) {
  wal::LogEntry winners;
  winners.txns.push_back(Record(MakeTxnId(1, 1), {}, {"a", "b"}));
  winners.txns.push_back(Record(MakeTxnId(1, 2), {}, {"c"}));
  auto items = ConflictingItems(
      Record(MakeTxnId(2, 1), {"a", "c", "z"}, {}), winners);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].attribute, "a");
  EXPECT_EQ(items[1].attribute, "c");
}

TEST(ActiveTxnTest, ToRecordFreezesState) {
  ActiveTxn txn;
  txn.group = kGroup;
  txn.id = MakeTxnId(1, 5);
  txn.read_pos = 9;
  txn.reads.push_back({{kRow, "a"}, MakeTxnId(2, 1), 7});
  txn.writes[{kRow, "b"}] = "v1";
  txn.writes[{kRow, "b"}] = "v2";  // last write wins
  txn.writes[{kRow, "c"}] = "v3";

  wal::TxnRecord record = txn.ToRecord(1);
  EXPECT_EQ(record.id, MakeTxnId(1, 5));
  EXPECT_EQ(record.origin_dc, 1);
  EXPECT_EQ(record.read_pos, 9u);
  ASSERT_EQ(record.writes.size(), 2u);
  EXPECT_EQ(record.writes[0].value, "v2");
}

// --------------------------------------------------- client read semantics

struct ReadProbe {
  Status begin = Status::Internal("unset");
  std::vector<Result<std::string>> values;
  CommitResult commit;
};

sim::Task ProbeReads(TransactionClient* client,
                     std::vector<std::pair<std::string, std::string>> script,
                     ReadProbe* out) {
  // script entries: ("read", attr) or ("write", attr) — writes use value
  // "W:<attr>".
  out->begin = co_await client->Begin(kGroup);
  if (!out->begin.ok()) co_return;
  for (auto& [op, attr] : script) {
    if (op == "read") {
      out->values.push_back(co_await client->Read(kGroup, kRow, attr));
    } else {
      (void)client->Write(kGroup, kRow, attr, "W:" + attr);
    }
  }
  out->commit = co_await client->Commit(kGroup);
}

TEST(ClientSemanticsTest, ReadYourOwnWrites_A1) {
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "old"}}).ok());
  TransactionClient* client = cluster.CreateClient(0, {});
  ReadProbe probe;
  ProbeReads(client, {{"read", "a"}, {"write", "a"}, {"read", "a"}}, &probe);
  cluster.RunToCompletion();
  ASSERT_TRUE(probe.begin.ok());
  ASSERT_EQ(probe.values.size(), 2u);
  EXPECT_EQ(*probe.values[0], "old");    // snapshot before the write
  EXPECT_EQ(*probe.values[1], "W:a");    // (A1) own write visible
  EXPECT_TRUE(probe.commit.committed);
}

TEST(ClientSemanticsTest, OwnWriteReadsDoNotEnterReadSet) {
  // A read satisfied from the write buffer is not a snapshot read and must
  // not create artificial conflicts.
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "x"}}).ok());
  TransactionClient* client = cluster.CreateClient(0, {});
  ReadProbe probe;
  sim::Simulator* sim = cluster.simulator();
  ProbeReads(client, {{"write", "a"}, {"read", "a"}}, &probe);
  (void)sim;
  cluster.RunToCompletion();
  EXPECT_TRUE(probe.commit.committed);
  // The committed record must contain no reads at all.
  auto entries = cluster.service(0)->GroupLog(kGroup)->AllEntries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries.begin()->second.txns[0].reads.empty());
}

TEST(ClientSemanticsTest, RepeatedReadsReturnSameSnapshot_A2) {
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "v0"}}).ok());
  TransactionClient* client = cluster.CreateClient(0, {});
  ReadProbe probe;
  ProbeReads(client, {{"read", "a"}, {"read", "a"}, {"read", "a"}}, &probe);
  cluster.RunToCompletion();
  for (auto& value : probe.values) {
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(*value, "v0");
  }
  // Only one snapshot read was recorded (and the txn is read-only).
  EXPECT_TRUE(probe.commit.read_only);
}

TEST(ClientSemanticsTest, MissingItemReadsAsEmpty) {
  Cluster cluster(TestConfig("VV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "x"}}).ok());
  TransactionClient* client = cluster.CreateClient(0, {});
  ReadProbe probe;
  ProbeReads(client, {{"read", "never_written"}}, &probe);
  cluster.RunToCompletion();
  ASSERT_TRUE(probe.values[0].ok());
  EXPECT_EQ(*probe.values[0], "");
}

TEST(ClientSemanticsTest, ApiErrorsWithoutActiveTxn) {
  Cluster cluster(TestConfig("VV"));
  TransactionClient* client = cluster.CreateClient(0, {});
  EXPECT_FALSE(client->Write(kGroup, kRow, "a", "v").ok());
  EXPECT_FALSE(client->Abort(kGroup).ok());
  EXPECT_FALSE(client->HasActiveTxn(kGroup));
  EXPECT_EQ(client->ActiveTxnId(kGroup), 0u);
}

sim::Task BeginTwice(TransactionClient* client, Status* first,
                     Status* second) {
  *first = co_await client->Begin(kGroup);
  *second = co_await client->Begin(kGroup);
  (void)co_await client->Commit(kGroup);
}

TEST(ClientSemanticsTest, OneActiveTxnPerGroup) {
  Cluster cluster(TestConfig("VV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "x"}}).ok());
  TransactionClient* client = cluster.CreateClient(0, {});
  Status first = Status::Internal("unset"), second = first;
  BeginTwice(client, &first, &second);
  cluster.RunToCompletion();
  EXPECT_TRUE(first.ok());
  EXPECT_EQ(second.code(), Status::Code::kFailedPrecondition);
}

TEST(ClientSemanticsTest, AbortDiscardsBufferedState) {
  Cluster cluster(TestConfig("VVV"));
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "x"}}).ok());
  TransactionClient* client = cluster.CreateClient(0, {});
  ReadProbe probe;
  ProbeReads(client, {{"write", "a"}}, &probe);
  // Abort after the Task finished Begin but before... simpler: commit runs;
  // verify a separate explicit abort path:
  cluster.RunToCompletion();
  ASSERT_TRUE(probe.commit.committed);

  // Explicit abort: begin, write, abort — nothing reaches the log.
  struct {
    sim::Task operator()(TransactionClient* c, Cluster* cl) {
      (void)co_await c->Begin(kGroup);
      (void)c->Write(kGroup, kRow, "a", "discarded");
      (void)c->Abort(kGroup);
      (void)cl;
    }
  } run_abort;
  run_abort(client, &cluster);
  cluster.RunToCompletion();
  EXPECT_EQ(cluster.service(0)->GroupLog(kGroup)->MaxDecided(), 1u);
}

// ----------------------------------------------- forced interleavings

sim::Task WriteOnlyTxn(TransactionClient* client, std::string attr,
                       CommitResult* out) {
  Status begin = co_await client->Begin(kGroup);
  if (!begin.ok()) {
    out->status = begin;
    co_return;
  }
  (void)client->Write(kGroup, kRow, attr, "W:" + attr);
  *out = co_await client->Commit(kGroup);
}

TEST(InterleavingTest, SimultaneousWriteOnlyTxnsCombineIntoOnePosition) {
  // Two write-only transactions (no read latency variance) start their
  // commit protocols at exactly the same instant, with the leader fast
  // path disabled so both run full prepare/accept rounds. Their prepare
  // phases interleave; the combination window admits both transactions
  // into a single log entry — the Paxos-CP "Combination" enhancement.
  ClusterConfig config = TestConfig("VVV", 21);
  Cluster cluster(config);
  ASSERT_TRUE(
      cluster.LoadInitialRow(kGroup, kRow, {{"a", "0"}, {"b", "0"}}).ok());
  ClientOptions options;
  options.protocol = Protocol::kPaxosCP;
  options.leader_optimization = false;
  TransactionClient* c1 = cluster.CreateClient(0, options);
  TransactionClient* c2 = cluster.CreateClient(1, options);

  CommitResult r1, r2;
  WriteOnlyTxn(c1, "a", &r1);
  WriteOnlyTxn(c2, "b", &r2);
  cluster.RunToCompletion();

  ASSERT_TRUE(r1.committed) << r1.status.ToString();
  ASSERT_TRUE(r2.committed) << r2.status.ToString();

  Checker checker(&cluster);
  std::map<LogPos, wal::LogEntry> log;
  core::CheckReport replication = checker.CheckReplication(kGroup, &log);
  ASSERT_TRUE(replication.ok) << replication.ToString();
  core::CheckReport full = checker.CheckAll(kGroup, {});
  EXPECT_TRUE(full.ok) << full.ToString();

  // Both committed; whether they shared a position (combination) or used
  // two (promotion) depends on message interleaving — both are legal. With
  // this seed the protocols interleave tightly; assert the system made
  // progress within two positions either way.
  EXPECT_LE(log.rbegin()->first, 2u);
  if (log.size() == 1) {
    EXPECT_EQ(log.begin()->second.txns.size(), 2u);  // combined entry
  }
}

TEST(InterleavingTest, ManySimultaneousClientsAllCommitViaCp) {
  ClusterConfig config = TestConfig("VVVOC", 5);
  Cluster cluster(config);
  kvstore::AttributeMap row;
  for (int i = 0; i < 8; ++i) row["a" + std::to_string(i)] = "0";
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, row).ok());
  ClientOptions options;
  options.protocol = Protocol::kPaxosCP;
  options.leader_optimization = false;

  std::vector<CommitResult> results(8);
  for (int i = 0; i < 8; ++i) {
    TransactionClient* client = cluster.CreateClient(i % 5, options);
    WriteOnlyTxn(client, "a" + std::to_string(i), &results[i]);
  }
  cluster.RunToCompletion();

  int committed = 0;
  for (auto& r : results) committed += r.committed ? 1 : 0;
  // All transactions write disjoint attributes and read nothing: under CP
  // none may abort with a conflict (only Unavailable would excuse a miss).
  for (auto& r : results) {
    EXPECT_FALSE(r.status.IsAborted()) << r.status.ToString();
  }
  EXPECT_EQ(committed, 8);

  Checker checker(&cluster);
  core::CheckReport report = checker.CheckAll(kGroup, {});
  EXPECT_TRUE(report.ok) << report.ToString();
}

TEST(InterleavingTest, ManySimultaneousClientsBasicCommitsExactlyOnePerPos) {
  ClusterConfig config = TestConfig("VVV", 6);
  Cluster cluster(config);
  ASSERT_TRUE(cluster.LoadInitialRow(kGroup, kRow, {{"a", "0"}}).ok());
  ClientOptions options;
  options.protocol = Protocol::kBasicPaxos;
  options.leader_optimization = false;

  std::vector<CommitResult> results(6);
  for (int i = 0; i < 6; ++i) {
    TransactionClient* client = cluster.CreateClient(i % 3, options);
    WriteOnlyTxn(client, "a", &results[i]);
  }
  cluster.RunToCompletion();

  // All six competed for position 1; exactly one wins under basic Paxos.
  int committed = 0;
  for (auto& r : results) committed += r.committed ? 1 : 0;
  EXPECT_EQ(committed, 1);
  EXPECT_EQ(cluster.service(0)->GroupLog(kGroup)->MaxDecided(), 1u);

  Checker checker(&cluster);
  EXPECT_TRUE(checker.CheckAll(kGroup, {}).ok);
}

TEST(InterleavingTest, PromotionCapZeroBehavesLikeBasicPlusCombination) {
  ClusterConfig config = TestConfig("VVV", 8);
  Cluster cluster(config);
  ASSERT_TRUE(
      cluster.LoadInitialRow(kGroup, kRow, {{"a", "0"}, {"b", "0"}}).ok());
  ClientOptions options;
  options.protocol = Protocol::kPaxosCP;
  options.promotion_cap = 0;

  CommitResult r1, r2;
  WriteOnlyTxn(cluster.CreateClient(0, options), "a", &r1);
  WriteOnlyTxn(cluster.CreateClient(1, options), "b", &r2);
  cluster.RunToCompletion();
  // Without promotion, a loser that was not combined must abort.
  const int committed = (r1.committed ? 1 : 0) + (r2.committed ? 1 : 0);
  EXPECT_GE(committed, 1);
  for (auto& r : {r1, r2}) {
    if (!r.committed) EXPECT_TRUE(r.status.IsAborted());
    EXPECT_EQ(r.promotions, 0);
  }
}

TEST(InterleavingTest, MultipleGroupsAreIndependent) {
  Cluster cluster(TestConfig("VVV", 9));
  ASSERT_TRUE(cluster.LoadInitialRow("g1", kRow, {{"a", "0"}}).ok());
  ASSERT_TRUE(cluster.LoadInitialRow("g2", kRow, {{"a", "0"}}).ok());
  TransactionClient* client = cluster.CreateClient(0, {});

  struct {
    sim::Task operator()(TransactionClient* c, CommitResult* o1,
                         CommitResult* o2) {
      (void)co_await c->Begin("g1");
      (void)co_await c->Begin("g2");  // concurrent txns on two groups
      (void)c->Write("g1", kRow, "a", "1");
      (void)c->Write("g2", kRow, "a", "2");
      *o1 = co_await c->Commit("g1");
      *o2 = co_await c->Commit("g2");
    }
  } run;
  CommitResult r1, r2;
  run(client, &r1, &r2);
  cluster.RunToCompletion();
  EXPECT_TRUE(r1.committed);
  EXPECT_TRUE(r2.committed);
  EXPECT_EQ(cluster.service(0)->GroupLog("g1")->MaxDecided(), 1u);
  EXPECT_EQ(cluster.service(0)->GroupLog("g2")->MaxDecided(), 1u);
}

}  // namespace
}  // namespace paxoscp::txn
