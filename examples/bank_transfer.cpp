// Bank-transfer workload: many concurrent clients move money between
// accounts of one entity group. Serializability guarantees the global
// balance is conserved — the classic invariant that eventually-consistent
// stores break. Run with Paxos-CP; the audit recomputes the total from
// every datacenter's replica.
//
//   ./build/examples/bank_transfer
#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/checker.h"
#include "core/cluster.h"
#include "sim/coro.h"
#include "txn/client.h"

using namespace paxoscp;

namespace {

constexpr int kAccounts = 8;
constexpr int kTransfersPerClient = 12;
constexpr int kClients = 4;
constexpr int kInitialBalance = 1000;

std::string Account(int i) { return "acct" + std::to_string(i); }

struct ClientStats {
  int committed = 0;
  int aborted = 0;
};

sim::Task RunTransfers(core::Cluster* cluster, txn::TransactionClient* client,
                       uint64_t seed, ClientStats* stats) {
  Rng rng(seed);
  sim::Simulator* sim = cluster->simulator();
  for (int i = 0; i < kTransfersPerClient; ++i) {
    co_await sim::SleepFor(sim, rng.UniformRange(10, 400) * kMillisecond);

    if (!(co_await client->Begin("bank")).ok()) continue;
    const int from = static_cast<int>(rng.Uniform(kAccounts));
    int to = static_cast<int>(rng.Uniform(kAccounts));
    if (to == from) to = (to + 1) % kAccounts;
    const int amount = static_cast<int>(rng.UniformRange(1, 50));

    Result<std::string> from_balance =
        co_await client->Read("bank", "ledger", Account(from));
    Result<std::string> to_balance =
        co_await client->Read("bank", "ledger", Account(to));
    if (!from_balance.ok() || !to_balance.ok()) {
      (void)client->Abort("bank");
      continue;
    }
    (void)client->Write("bank", "ledger", Account(from),
                        std::to_string(std::stoi(*from_balance) - amount));
    (void)client->Write("bank", "ledger", Account(to),
                        std::to_string(std::stoi(*to_balance) + amount));

    txn::CommitResult commit = co_await client->Commit("bank");
    if (commit.committed) {
      ++stats->committed;
    } else {
      ++stats->aborted;  // concurrency control rejected it: retry-able
    }
  }
}

/// Audits one datacenter's replica: reads every balance in one snapshot
/// transaction and sums.
sim::Task Audit(txn::TransactionClient* client, long* total) {
  *total = -1;
  if (!(co_await client->Begin("bank")).ok()) co_return;
  long sum = 0;
  for (int i = 0; i < kAccounts; ++i) {
    Result<std::string> balance =
        co_await client->Read("bank", "ledger", Account(i));
    if (!balance.ok()) co_return;
    sum += std::stol(*balance);
  }
  (void)co_await client->Commit("bank");
  *total = sum;
}

}  // namespace

int main() {
  core::ClusterConfig config = *core::ClusterConfig::FromCode("VVVOC");
  config.seed = 99;
  core::Cluster cluster(config);

  kvstore::AttributeMap ledger;
  for (int i = 0; i < kAccounts; ++i) {
    ledger[Account(i)] = std::to_string(kInitialBalance);
  }
  (void)cluster.LoadInitialRow("bank", "ledger", ledger);

  txn::ClientOptions options;  // Paxos-CP
  std::vector<ClientStats> stats(kClients);
  for (int c = 0; c < kClients; ++c) {
    txn::TransactionClient* client =
        cluster.CreateClient(c % cluster.num_datacenters(), options);
    RunTransfers(&cluster, client, 1000 + c, &stats[c]);
  }
  cluster.RunToCompletion();

  int committed = 0, aborted = 0;
  for (const ClientStats& s : stats) {
    committed += s.committed;
    aborted += s.aborted;
  }
  std::printf("transfers: %d committed, %d aborted (retryable)\n", committed,
              aborted);

  // Audit the ledger from every datacenter: each must report the exact
  // conserved total.
  const long expected = static_cast<long>(kAccounts) * kInitialBalance;
  bool all_consistent = true;
  for (DcId dc = 0; dc < cluster.num_datacenters(); ++dc) {
    long total = -1;
    Audit(cluster.CreateClient(dc, options), &total);
    cluster.RunToCompletion();
    std::printf("audit @dc%d: total=%ld (expected %ld)\n", dc, total,
                expected);
    all_consistent = all_consistent && total == expected;
  }

  core::Checker checker(&cluster);
  core::CheckReport report = checker.CheckAll("bank", {});
  std::printf("invariants: %s\n", report.ToString().c_str());
  return (all_consistent && report.ok) ? 0 : 1;
}
