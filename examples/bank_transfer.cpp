// Bank-transfer workload: many concurrent clients move money between
// accounts of one entity group, each transfer running through the
// Session::RunTransaction retry combinator — a conflict abort (the
// expected outcome of optimistic concurrency control) is re-executed from
// a fresh snapshot with randomized backoff. Serializability guarantees
// the global balance is conserved — the classic invariant that
// eventually-consistent stores break. The audit re-reads the whole ledger
// row (one batched RPC) from every datacenter's replica.
//
//   ./build/examples/bank_transfer
#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/db.h"
#include "sim/coro.h"

using namespace paxoscp;

namespace {

constexpr char kGroup[] = "bank";
constexpr char kLedgerRow[] = "ledger";
constexpr int kAccounts = 8;
constexpr int kTransfersPerClient = 12;
constexpr int kClients = 4;
constexpr int kInitialBalance = 1000;

std::string Account(int i) { return "acct" + std::to_string(i); }

struct ClientStats {
  int committed = 0;
  int given_up = 0;   // conflicts that exhausted the retry budget
  int retries = 0;    // extra attempts spent on eventually-committed txns
};

sim::Task RunTransfers(Db* db, txn::Session* session, uint64_t seed,
                       ClientStats* stats) {
  Rng rng(seed);
  sim::Simulator* sim = db->simulator();
  for (int i = 0; i < kTransfersPerClient; ++i) {
    co_await sim::SleepFor(sim, rng.UniformRange(10, 400) * kMillisecond);

    const int from = static_cast<int>(rng.Uniform(kAccounts));
    int to = static_cast<int>(rng.Uniform(kAccounts));
    if (to == from) to = (to + 1) % kAccounts;
    const int amount = static_cast<int>(rng.UniformRange(1, 50));

    // The body re-runs from a fresh snapshot on every conflict retry, so
    // it must re-read the balances it adjusts.
    txn::TxnBody transfer = [from, to, amount](
                                txn::Txn* txn) -> sim::Coro<Status> {
      Result<std::string> from_balance =
          co_await txn->Read(kLedgerRow, Account(from));
      Result<std::string> to_balance =
          co_await txn->Read(kLedgerRow, Account(to));
      if (!from_balance.ok()) co_return from_balance.status();
      if (!to_balance.ok()) co_return to_balance.status();
      (void)txn->Write(kLedgerRow, Account(from),
                       std::to_string(std::stoi(*from_balance) - amount));
      (void)txn->Write(kLedgerRow, Account(to),
                       std::to_string(std::stoi(*to_balance) + amount));
      co_return Status::OK();
    };

    txn::TxnResult result =
        co_await session->RunTransaction(kGroup, std::move(transfer));
    if (result.committed()) {
      ++stats->committed;
      stats->retries += result.attempts - 1;
    } else {
      ++stats->given_up;
    }
  }
}

/// Audits one datacenter's replica: one batched snapshot read of the whole
/// ledger row, then sums the balances.
sim::Task Audit(txn::Session* session, long* total) {
  *total = -1;
  txn::Txn txn = co_await session->Begin(kGroup);
  if (!txn.active()) co_return;
  Result<kvstore::AttributeMap> ledger = co_await txn.ReadRow(kLedgerRow);
  (void)co_await txn.Commit();  // read-only: free
  if (!ledger.ok() || ledger->size() != kAccounts) co_return;
  long sum = 0;
  for (const auto& [account, balance] : *ledger) sum += std::stol(balance);
  *total = sum;
}

}  // namespace

int main() {
  core::ClusterConfig config = *core::ClusterConfig::FromCode("VVVOC");
  config.seed = 99;
  Db db(config);

  kvstore::AttributeMap ledger;
  for (int i = 0; i < kAccounts; ++i) {
    ledger[Account(i)] = std::to_string(kInitialBalance);
  }
  (void)db.Load(kGroup, kLedgerRow, ledger);

  std::vector<txn::Session> sessions;
  sessions.reserve(kClients);
  std::vector<ClientStats> stats(kClients);
  for (int c = 0; c < kClients; ++c) {
    sessions.push_back(db.Session(c % db.num_datacenters()));
    RunTransfers(&db, &sessions[c], 1000 + c, &stats[c]);
  }
  db.Run();

  int committed = 0, given_up = 0, retries = 0;
  for (const ClientStats& s : stats) {
    committed += s.committed;
    given_up += s.given_up;
    retries += s.retries;
  }
  std::printf("transfers: %d committed (%d conflict retries absorbed), "
              "%d gave up\n",
              committed, retries, given_up);

  // Audit the ledger from every datacenter: each must report the exact
  // conserved total.
  const long expected = static_cast<long>(kAccounts) * kInitialBalance;
  bool all_consistent = true;
  for (DcId dc = 0; dc < db.num_datacenters(); ++dc) {
    long total = -1;
    txn::Session auditor = db.Session(dc);
    Audit(&auditor, &total);
    db.Run();
    std::printf("audit @dc%d: total=%ld (expected %ld)\n", dc, total,
                expected);
    all_consistent = all_consistent && total == expected;
  }

  core::CheckReport report = db.Check(kGroup);
  std::printf("invariants: %s\n", report.ToString().c_str());
  return (committed > 0 && all_consistent && report.ok) ? 0 : 1;
}
