// Availability demonstration (the paper's motivation, §1): a workload keeps
// committing while an entire datacenter is down, because any majority of
// replicas can decide log positions; when the datacenter recovers, its
// Transaction Service learns the missed log entries via catch-up Paxos
// instances and serves consistent reads again.
//
//   ./build/examples/outage_failover
#include <cstdio>

#include "core/db.h"
#include "sim/coro.h"

using namespace paxoscp;

namespace {

constexpr char kGroup[] = "g";
constexpr char kRow[] = "r";

sim::Task WriteLoop(Db* db, txn::Session* session, int txns, int* committed) {
  sim::Simulator* sim = db->simulator();
  for (int i = 0; i < txns; ++i) {
    co_await sim::SleepFor(sim, 500 * kMillisecond);
    txn::Txn txn = co_await session->Begin(kGroup);
    if (!txn.active()) continue;
    (void)txn.Write(kRow, "seq", std::to_string(i));
    txn::CommitResult commit = co_await txn.Commit();
    if (commit.committed) ++*committed;
    std::printf("  t=%5.1fs txn %2d -> %s\n",
                sim->Now() / 1e6, i, commit.status.ToString().c_str());
  }
}

sim::Task ReadSeq(txn::Session* session, std::string* out) {
  *out = "<unavailable>";
  txn::Txn txn = co_await session->Begin(kGroup);
  if (!txn.active()) co_return;
  Result<std::string> value = co_await txn.Read(kRow, "seq");
  (void)co_await txn.Commit();
  if (value.ok()) *out = *value;
}

}  // namespace

int main() {
  core::ClusterConfig config = *core::ClusterConfig::FromCode("VVV");
  config.seed = 7;
  Db db(config);
  (void)db.Load(kGroup, kRow, {{"seq", "-1"}});

  txn::Session writer = db.Session(0);

  std::printf("phase 1: all datacenters up\n");
  std::printf("phase 2: datacenter 2 goes down at t=2.2s, back at t=6.2s\n");
  db.simulator()->ScheduleAt(2200 * kMillisecond, [&db] {
    std::printf("  *** datacenter 2 OFFLINE ***\n");
    db.cluster()->SetDatacenterDown(2, true);
  });
  db.simulator()->ScheduleAt(6200 * kMillisecond, [&db] {
    std::printf("  *** datacenter 2 BACK ONLINE ***\n");
    db.cluster()->SetDatacenterDown(2, false);
  });

  int committed = 0;
  WriteLoop(&db, &writer, 12, &committed);
  db.Run();
  std::printf("committed %d/12 transactions across the outage\n", committed);

  // The log at the recovered datacenter was left behind during the outage;
  // a read triggers catch-up and returns the latest committed value.
  const LogPos behind = db.cluster()->service(2)->GroupLog(kGroup)->MaxDecided();
  const LogPos ahead = db.cluster()->service(0)->GroupLog(kGroup)->MaxDecided();
  std::printf("log positions before catch-up: dc0=%llu dc2=%llu\n",
              static_cast<unsigned long long>(ahead),
              static_cast<unsigned long long>(behind));

  std::string seq;
  txn::Session reader = db.Session(2);
  ReadSeq(&reader, &seq);
  db.Run();
  std::printf("read from recovered dc2: seq=%s (learn instances run: %llu)\n",
              seq.c_str(),
              static_cast<unsigned long long>(
                  db.cluster()->service(2)->learn_instances()));

  core::CheckReport report = db.Check(kGroup);
  std::printf("invariants: %s\n", report.ToString().c_str());
  return (committed > 0 && report.ok) ? 0 : 1;
}
