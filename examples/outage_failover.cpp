// Availability demonstration (the paper's motivation, §1): a workload keeps
// committing while an entire datacenter is down, because any majority of
// replicas can decide log positions; when the datacenter recovers, its
// Transaction Service learns the missed log entries via catch-up Paxos
// instances and serves consistent reads again.
//
//   ./build/examples/outage_failover
#include <cstdio>

#include "core/checker.h"
#include "core/cluster.h"
#include "sim/coro.h"
#include "txn/client.h"

using namespace paxoscp;

namespace {

sim::Task WriteLoop(core::Cluster* cluster, txn::TransactionClient* client,
                    int txns, int* committed) {
  sim::Simulator* sim = cluster->simulator();
  for (int i = 0; i < txns; ++i) {
    co_await sim::SleepFor(sim, 500 * kMillisecond);
    if (!(co_await client->Begin("g")).ok()) continue;
    (void)client->Write("g", "r", "seq", std::to_string(i));
    txn::CommitResult commit = co_await client->Commit("g");
    if (commit.committed) ++*committed;
    std::printf("  t=%5.1fs txn %2d -> %s\n",
                sim->Now() / 1e6, i, commit.status.ToString().c_str());
  }
}

sim::Task ReadSeq(txn::TransactionClient* client, std::string* out) {
  *out = "<unavailable>";
  if (!(co_await client->Begin("g")).ok()) co_return;
  Result<std::string> value = co_await client->Read("g", "r", "seq");
  (void)co_await client->Commit("g");
  if (value.ok()) *out = *value;
}

}  // namespace

int main() {
  core::ClusterConfig config = *core::ClusterConfig::FromCode("VVV");
  config.seed = 7;
  core::Cluster cluster(config);
  (void)cluster.LoadInitialRow("g", "r", {{"seq", "-1"}});

  txn::TransactionClient* client = cluster.CreateClient(0, {});

  std::printf("phase 1: all datacenters up\n");
  std::printf("phase 2: datacenter 2 goes down at t=2.2s, back at t=6.2s\n");
  cluster.simulator()->ScheduleAt(2200 * kMillisecond, [&cluster] {
    std::printf("  *** datacenter 2 OFFLINE ***\n");
    cluster.SetDatacenterDown(2, true);
  });
  cluster.simulator()->ScheduleAt(6200 * kMillisecond, [&cluster] {
    std::printf("  *** datacenter 2 BACK ONLINE ***\n");
    cluster.SetDatacenterDown(2, false);
  });

  int committed = 0;
  WriteLoop(&cluster, client, 12, &committed);
  cluster.RunToCompletion();
  std::printf("committed %d/12 transactions across the outage\n", committed);

  // The log at the recovered datacenter was left behind during the outage;
  // a read triggers catch-up and returns the latest committed value.
  const LogPos behind = cluster.service(2)->GroupLog("g")->MaxDecided();
  const LogPos ahead = cluster.service(0)->GroupLog("g")->MaxDecided();
  std::printf("log positions before catch-up: dc0=%llu dc2=%llu\n",
              static_cast<unsigned long long>(ahead),
              static_cast<unsigned long long>(behind));

  std::string seq;
  ReadSeq(cluster.CreateClient(2, {}), &seq);
  cluster.RunToCompletion();
  std::printf("read from recovered dc2: seq=%s (learn instances run: %llu)\n",
              seq.c_str(),
              static_cast<unsigned long long>(
                  cluster.service(2)->learn_instances()));

  core::Checker checker(&cluster);
  core::CheckReport report = checker.CheckAll("g", {});
  std::printf("invariants: %s\n", report.ToString().c_str());
  return (committed > 0 && report.ok) ? 0 : 1;
}
