// Quickstart: bring up a three-datacenter cluster, run a read-modify-write
// transaction through the Paxos-CP commit protocol, and read the result
// back from a different datacenter.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/checker.h"
#include "core/cluster.h"
#include "sim/coro.h"
#include "txn/client.h"

using namespace paxoscp;

namespace {

// Application logic runs as simulation tasks (each models one application
// instance thread in the paper's application platform).
sim::Task Transfer(txn::TransactionClient* client, bool* done) {
  // begin(): fetches the read position from the local Transaction Service.
  Status begin = co_await client->Begin("accounts");
  if (!begin.ok()) co_return;

  // Snapshot reads at the read position.
  Result<std::string> alice = co_await client->Read("accounts", "row", "alice");
  Result<std::string> bob = co_await client->Read("accounts", "row", "bob");
  if (!alice.ok() || !bob.ok()) co_return;
  const int a = std::stoi(*alice), b = std::stoi(*bob);
  std::printf("[txn] read alice=%d bob=%d\n", a, b);

  // Buffered writes; replicated on commit via Paxos-CP.
  (void)client->Write("accounts", "row", "alice", std::to_string(a - 30));
  (void)client->Write("accounts", "row", "bob", std::to_string(b + 30));

  txn::CommitResult commit = co_await client->Commit("accounts");
  std::printf("[txn] commit: %s (log position %llu, %d promotions)\n",
              commit.status.ToString().c_str(),
              static_cast<unsigned long long>(commit.position),
              commit.promotions);
  *done = commit.committed;
}

sim::Task ReadBack(txn::TransactionClient* client) {
  (void)co_await client->Begin("accounts");
  Result<std::string> alice = co_await client->Read("accounts", "row", "alice");
  Result<std::string> bob = co_await client->Read("accounts", "row", "bob");
  (void)co_await client->Commit("accounts");  // read-only: free
  std::printf("[remote] alice=%s bob=%s (read from another datacenter)\n",
              alice.ok() ? alice->c_str() : "?",
              bob.ok() ? bob->c_str() : "?");
}

}  // namespace

int main() {
  // Three Virginia datacenters (paper §6: ~1.5 ms RTT between availability
  // zones); everything is simulated and deterministic.
  core::ClusterConfig config = *core::ClusterConfig::FromCode("VVV");
  config.seed = 2026;
  core::Cluster cluster(config);

  // Pre-load the entity group ("accounts") with one row.
  (void)cluster.LoadInitialRow("accounts", "row",
                               {{"alice", "100"}, {"bob", "50"}});

  txn::ClientOptions options;  // defaults: Paxos-CP, 2 s timeouts
  txn::TransactionClient* writer = cluster.CreateClient(/*dc=*/0, options);
  txn::TransactionClient* reader = cluster.CreateClient(/*dc=*/2, options);

  bool committed = false;
  Transfer(writer, &committed);
  cluster.RunToCompletion();
  if (!committed) {
    std::printf("transfer did not commit\n");
    return 1;
  }

  ReadBack(reader);
  cluster.RunToCompletion();

  // Verify the run satisfied every correctness obligation of the paper.
  core::Checker checker(&cluster);
  core::CheckReport report = checker.CheckAll("accounts", {});
  std::printf("invariants: %s\n", report.ToString().c_str());
  return report.ok ? 0 : 1;
}
