// Quickstart: bring up a three-datacenter database, run a read-modify-write
// transaction through the Paxos-CP commit protocol, and read the result
// back from a different datacenter.
//
// The application-facing API is three types (see docs/ARCHITECTURE.md,
// design note D7):
//   * Db            — wraps cluster construction, data loading, sessions.
//   * txn::Session  — per-application-instance entry point; Begin() and
//                     the RunTransaction retry combinator.
//   * txn::Txn      — movable RAII handle owning one active transaction;
//                     dropping it aborts (locally, for free).
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/db.h"
#include "sim/coro.h"

using namespace paxoscp;

namespace {

constexpr char kGroup[] = "accounts";
constexpr char kRow[] = "row";

// Application logic runs as simulation tasks (each models one application
// instance thread in the paper's application platform).
sim::Task Transfer(txn::Session* session, bool* done) {
  // Begin(): fetches the read position from the local Transaction Service
  // and returns the owning handle.
  txn::Txn txn = co_await session->Begin(kGroup);
  if (!txn.active()) co_return;  // begin_status() says why

  // Snapshot reads at the read position.
  Result<std::string> alice = co_await txn.Read(kRow, "alice");
  Result<std::string> bob = co_await txn.Read(kRow, "bob");
  if (!alice.ok() || !bob.ok()) co_return;  // handle drop aborts
  const int a = std::stoi(*alice), b = std::stoi(*bob);
  std::printf("[txn] read alice=%d bob=%d\n", a, b);

  // Buffered writes; replicated on commit via Paxos-CP.
  (void)txn.Write(kRow, "alice", std::to_string(a - 30));
  (void)txn.Write(kRow, "bob", std::to_string(b + 30));

  txn::CommitResult commit = co_await txn.Commit();
  std::printf("[txn] commit: %s (log position %llu, %d promotions)\n",
              commit.status.ToString().c_str(),
              static_cast<unsigned long long>(commit.position),
              commit.promotions);
  *done = commit.committed;
}

sim::Task ReadBack(txn::Session* session) {
  txn::Txn txn = co_await session->Begin(kGroup);
  if (!txn.active()) co_return;
  // Batched read: the whole row in one RPC.
  Result<kvstore::AttributeMap> row = co_await txn.ReadRow(kRow);
  (void)co_await txn.Commit();  // read-only: free
  if (!row.ok()) co_return;
  std::printf("[remote] alice=%s bob=%s (read from another datacenter)\n",
              row->count("alice") ? row->at("alice").c_str() : "?",
              row->count("bob") ? row->at("bob").c_str() : "?");
}

}  // namespace

int main() {
  // Three Virginia datacenters (paper §6: ~1.5 ms RTT between availability
  // zones); everything is simulated and deterministic.
  core::ClusterConfig config = *core::ClusterConfig::FromCode("VVV");
  config.seed = 2026;
  Db db(config);

  // Pre-load the entity group ("accounts") with one row.
  (void)db.Load(kGroup, kRow, {{"alice", "100"}, {"bob", "50"}});

  // Sessions (defaults: Paxos-CP, 2 s timeouts).
  txn::Session writer = db.Session(/*dc=*/0);
  txn::Session reader = db.Session(/*dc=*/2);

  bool committed = false;
  Transfer(&writer, &committed);
  db.Run();
  if (!committed) {
    std::printf("transfer did not commit\n");
    return 1;
  }

  ReadBack(&reader);
  db.Run();

  // Verify the run satisfied every correctness obligation of the paper.
  core::CheckReport report = db.Check(kGroup);
  std::printf("invariants: %s\n", report.ToString().c_str());
  return report.ok ? 0 : 1;
}
